#!/usr/bin/env bash
# Continuous-integration driver: regular build + tier-1 tests, then the same
# suite under AddressSanitizer + UndefinedBehaviorSanitizer, then (when
# clang-tidy is installed) the static C++ lint target.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}

echo "=== build (RelWithDebInfo) ==="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"

echo "=== tier-1 tests ==="
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "=== lint built-in workloads (all ISA configurations) ==="
./build/src/driver/ksim lint --workload all --isa all

echo "=== build (ASan+UBSan) ==="
cmake -B build-asan -S . -DKSIM_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$JOBS"

echo "=== tier-1 tests (ASan+UBSan) ==="
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-asan --output-on-failure -j"$JOBS"

echo "=== clang-tidy ==="
cmake --build build --target lint-cxx

echo "ci.sh: all stages passed"
