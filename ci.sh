#!/usr/bin/env bash
# Continuous-integration driver: regular build + tier-1 tests (with the
# superblock engine and the kjit translator on and off), the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer, the static C++ lint target
# (when clang-tidy is installed), a checkpoint/replay equivalence gate with
# and without the JIT, a perf smoke that refreshes the checked-in
# BENCH_simperf.json / BENCH_jit.json / BENCH_ksimd.json trajectories and
# gates the kjit speedup on capable hosts, and a ksimd service soak that
# forces preemption under multi-tenant load and byte-diffs the resumed
# job's report against an uninterrupted run.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}

echo "=== build (RelWithDebInfo) ==="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"

echo "=== tier-1 tests (superblock engine, default) ==="
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "=== tier-1 tests (jit disabled fallback) ==="
KSIM_NO_JIT=1 ctest --test-dir build --output-on-failure -j"$JOBS"

echo "=== tier-1 tests (superblocks disabled fallback) ==="
# Disabling superblocks also disables the JIT (its translations are
# superblock traces), so this leg covers the fully interpreted engine.
KSIM_NO_SUPERBLOCKS=1 ctest --test-dir build --output-on-failure -j"$JOBS"

echo "=== lint built-in workloads (all ISA configurations) ==="
./build/src/driver/ksim lint --workload all --isa all

echo "=== lint fixture binaries vs golden JSON reports ==="
# Every fixture is linted in --format json and byte-diffed against its
# checked-in golden: any drift in the finding set, the schema, or the key
# order fails CI.  tests/goldens/regen.sh refreshes the files after an
# intentional change.  Exit 1 (findings) is expected for the known-positive
# fixtures; exit 2 (usage/input error) is always a failure.
while read -r name isa; do
  rc=0
  ./build/src/driver/ksim lint "tests/fixtures/$name.s" --isa "$isa" \
    --format json > "build/lint_$name.json" || rc=$?
  if [ "$rc" -ge 2 ]; then
    echo "lint golden: $name@$isa: ksim lint failed (exit $rc)"; exit 1
  fi
  diff -u "tests/goldens/$name@$isa.json" "build/lint_$name.json" || {
    echo "lint golden: $name@$isa drifted (regen: tests/goldens/regen.sh)"
    exit 1
  }
done < tests/goldens/manifest.txt

echo "=== build (ASan+UBSan) ==="
# Sanitizers and generated host code are mutually exclusive: the KSIM_SANITIZE
# / KSIM_TSAN builds compile the JIT stub (no KSIM_JIT_HOST), so these suites
# run the interpreter-only engine by construction — same as any non-x86-64
# host, where the CMake arch check stubs the translator out.
cmake -B build-asan -S . -DKSIM_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$JOBS"

echo "=== tier-1 tests (ASan+UBSan) ==="
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-asan --output-on-failure -j"$JOBS"

echo "=== build (TSan: sweep + dse + api + ksimd tests) ==="
cmake -B build-tsan -S . -DKSIM_TSAN=ON >/dev/null
cmake --build build-tsan -j"$JOBS" --target test_sweep test_dse test_api test_ksimd

echo "=== sweep engine + kdse + ksimd service under ThreadSanitizer ==="
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_sweep
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_dse
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_api
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_ksimd

echo "=== sweep smoke (CLI, parallel, machine-readable report) ==="
./build/src/driver/ksim sweep --workloads dct --isas RISC,VLIW4 \
  --models ilp,doe --threads 4 --json build/sweep_smoke.json
grep -q '"schema": "ksim.sweep"' build/sweep_smoke.json
grep -q '"ok": true' build/sweep_smoke.json
grep -q '"pareto"' build/sweep_smoke.json

echo "=== kdse resume gate (kill mid-sweep, --resume == uninterrupted) ==="
# A journaled geometry sweep is killed mid-flight, then resumed; the resumed
# run's final JSON must be byte-identical to an uninterrupted run of the
# same manifest (the ksim.sweep document is deliberately wall-clock-free).
DSE_TMP=$(mktemp -d)
trap 'rm -rf "$DSE_TMP"' EXIT
cat > "$DSE_TMP/manifest.json" <<'EOF'
{"workloads": ["dct"], "isas": ["RISC", "VLIW4"], "models": ["doe"],
 "memories": [{"l1": {"sets": {"min": 8, "max": 64}}}], "threads": 2}
EOF
./build/src/driver/ksim sweep --manifest "$DSE_TMP/manifest.json" \
  --json "$DSE_TMP/straight.json" >/dev/null 2>&1
./build/src/driver/ksim sweep --manifest "$DSE_TMP/manifest.json" \
  --journal "$DSE_TMP/swp" >/dev/null 2>&1 &
DSE_PID=$!
# Let a few points land in the journal, then kill the sweep mid-flight.
for _ in $(seq 1 200); do
  [ -s "$DSE_TMP/swp/journal.kswpj" ] && break; sleep 0.02
done
sleep 0.2
kill -9 "$DSE_PID" 2>/dev/null || true
wait "$DSE_PID" 2>/dev/null || true
./build/src/driver/ksim sweep --resume "$DSE_TMP/swp" \
  --json "$DSE_TMP/resumed.json" >"$DSE_TMP/resume.log" 2>&1
diff -u "$DSE_TMP/straight.json" "$DSE_TMP/resumed.json" || {
  echo "ci.sh: kdse resume gate: resumed sweep JSON differs from the" \
       "uninterrupted run" >&2
  exit 1
}
echo "kdse resume gate OK (resumed JSON byte-identical)"

echo "=== clang-tidy (gating: WarningsAsErrors '*') ==="
cmake --build build --target lint-cxx

echo "=== checkpoint equivalence gate (interrupt + resume == straight run) ==="
KSIM=./build/src/driver/ksim
CKPT_TMP=$(mktemp -d)
trap 'rm -rf "$DSE_TMP" "$CKPT_TMP"' EXIT
# Two legs: under a DOE cycle model (per-operation hooks; the JIT never
# dispatches) and bare model-none (the JIT's fast path; snapshots land inside
# translated regions).  The jit stats line is deliberately NOT compared —
# a restored session re-earns hotness, so its translation counters are
# process-local by design (DESIGN.md §9); everything the program defines
# must still match to the byte.
ckpt_equivalence_leg() { # <leg-name> <isa> <needles...> -- <extra run flags...>
  local leg="$1" leg_isa="$2"; shift 2
  local needles=()
  while [ "$1" != "--" ]; do needles+=("$1"); shift; done
  shift
  local dir="$CKPT_TMP/$leg"
  mkdir -p "$dir"
  # Straight-through reference run.
  $KSIM run --workload cjpeg --isa "$leg_isa" "$@" \
    >"$dir/straight.out" 2>"$dir/straight.err"
  # The same run interrupted mid-flight with periodic snapshots, then resumed.
  $KSIM run --workload cjpeg --isa "$leg_isa" "$@" \
    --checkpoint-every 200000 --ckpt-dir "$dir/ckpt" --max-instr 600000 \
    >"$dir/part1.out" 2>/dev/null
  $KSIM resume "$dir/ckpt" \
    >"$dir/resumed.out" 2>"$dir/resumed.err"
  # The resumed run must report the exact same final totals...
  local needle want got
  for needle in "${needles[@]}"; do
    want=$(grep -F "$needle" "$dir/straight.err")
    got=$(grep -F "$needle" "$dir/resumed.err")
    if [ "$want" != "$got" ]; then
      echo "ci.sh: checkpoint equivalence ($leg) FAILED on '$needle':" >&2
      echo "  straight: $want" >&2
      echo "  resumed:  $got" >&2
      exit 1
    fi
  done
  # ...and the straight-through stdout must end with the resumed stdout.
  tail -c "$(wc -c <"$dir/resumed.out")" "$dir/straight.out" \
    | cmp -s - "$dir/resumed.out" || {
      echo "ci.sh: resumed stdout ($leg) is not a suffix of the straight run" >&2
      exit 1
    }
  # Deterministic replay self-check on the surviving snapshot.
  $KSIM replay "$dir/ckpt"
  echo "checkpoint equivalence OK ($leg)"
}
ckpt_equivalence_leg doe RISC "exited after" "DOE cycles" "superblocks:" \
  -- --model doe
ckpt_equivalence_leg jit RISC "exited after" "superblocks:" --
# VLIW leg: snapshots land while translated issue-group bundles and inline
# block chains are in full swing; the resumed totals must still match.
ckpt_equivalence_leg jit-vliw VLIW4 "exited after" "superblocks:" --

echo "=== perf smoke (machine-readable; simperf/jit trajectories checked in) ==="
# BENCH_simperf.json, BENCH_jit.json and BENCH_ksimd.json are tracked in
# git (the perf trajectory across PRs); commit the refreshed files with the
# change that moved them.  BENCH_ckpt/BENCH_sweep stay local-only.
./build/bench/bench_simperf_mips --quick --json BENCH_simperf.json
./build/bench/bench_jit --quick --json BENCH_jit.json
./build/bench/bench_ckpt --quick --json BENCH_ckpt.json
./build/bench/bench_sweep --quick --json BENCH_sweep.json
./build/bench/bench_ksimd --quick --json BENCH_ksimd.json
# BENCH_dse.json is also tracked: DSE points/s, the journal's overhead and
# the cost of a full --resume.
./build/bench/bench_dse --quick --json BENCH_dse.json

# kjit speedup gates: translated superblocks must beat the superblock
# interpreter by >= 3x on cjpeg RISC and >= 2.5x on the VLIW instances
# (issue-group translation) — gated only where the translator can engage
# (x86-64, no sanitizers, KSIM_NO_JIT unset); the bench records the engine's
# availability honestly.
JIT_AVAILABLE=$(sed -n 's/.*"jit_available": \(true\|false\).*/\1/p' BENCH_jit.json)
jit_speedup_gate() { # <json key> <minimum> <description>
  local key="$1" min="$2" what="$3" speedup
  speedup=$(sed -n "s/.*\"$key\": \([0-9.]*\).*/\1/p" BENCH_jit.json)
  awk -v s="$speedup" -v m="$min" 'BEGIN { exit !(s >= m) }' || {
    echo "ci.sh: kjit speedup gate FAILED: ${speedup}x on $what" \
         "(need >= ${min}x over the superblock interpreter)" >&2
    exit 1
  }
  echo "kjit speedup gate OK (${speedup}x on $what)"
}
if [ "$JIT_AVAILABLE" = "true" ]; then
  jit_speedup_gate "cjpeg.speedup" 3.0 "cjpeg RISC"
  jit_speedup_gate "cjpeg.vliw2.speedup" 2.5 "cjpeg VLIW2"
  jit_speedup_gate "cjpeg.vliw4.speedup" 2.5 "cjpeg VLIW4"
else
  echo "kjit speedup not gated (translator unavailable on this host/config)"
fi

# Thread-scaling gate: the 8-worker sweep must be >= 3x the single-threaded
# throughput — but only where that is physically possible.  hw_threads is
# recorded honestly in BENCH_sweep.json; on 1-2 core CI boxes the sweep can
# only verify determinism, not scaling.
HW_THREADS=$(sed -n 's/.*"hw_threads": \([0-9]*\).*/\1/p' BENCH_sweep.json)
SPEEDUP8=$(sed -n 's/.*"threads\.8\.speedup": \([0-9.]*\).*/\1/p' BENCH_sweep.json)
if [ "${HW_THREADS:-0}" -ge 4 ]; then
  awk -v s="$SPEEDUP8" 'BEGIN { exit !(s >= 3.0) }' || {
    echo "ci.sh: sweep thread scaling FAILED: ${SPEEDUP8}x at 8 threads" \
         "on ${HW_THREADS} hardware threads (need >= 3x)" >&2
    exit 1
  }
  echo "sweep thread scaling OK (${SPEEDUP8}x at 8 threads)"
else
  echo "sweep thread scaling not gated (${HW_THREADS} hardware thread(s))"
fi

echo "=== ksimd soak (daemon under multi-tenant load; preemption equivalence) ==="
# A low-priority cjpeg job is evicted when an urgent tenant floods both
# workers, resumed from its in-memory eviction snapshot, and must stream
# back a report byte-identical to an uninterrupted local run of the same
# configuration.  Eviction snapshots live only in daemon memory: any
# *.kckpt file left on disk after the drain is a leak and fails the stage.
SOAK_TMP=$(mktemp -d)
trap 'rm -rf "$DSE_TMP" "$CKPT_TMP" "$SOAK_TMP"' EXIT
$KSIM run --workload cjpeg --isa RISC --model doe --no-jit \
  --json "$SOAK_TMP/straight.json" >/dev/null 2>&1
$KSIM serve --port 0 --workers 2 --slice 100000 \
  --port-file "$SOAK_TMP/port" >"$SOAK_TMP/serve.log" 2>&1 &
SOAK_SERVE=$!
for _ in $(seq 1 100); do [ -s "$SOAK_TMP/port" ] && break; sleep 0.05; done
SOAK_PORT=$(cat "$SOAK_TMP/port")
$KSIM submit --port "$SOAK_PORT" --tenant batch --priority 0 \
  --workload cjpeg --isa RISC --model doe --no-jit \
  --json "$SOAK_TMP/preempted.json" >"$SOAK_TMP/low.log" 2>&1 &
SOAK_LOW=$!
# Wait for the victim's first progress event, then flood both workers with
# urgent traffic so the scheduler has to evict it.
for _ in $(seq 1 200); do
  grep -q "running at" "$SOAK_TMP/low.log" && break; sleep 0.02
done
for i in 1 2 3 4; do
  $KSIM submit --port "$SOAK_PORT" --tenant urgent --priority 5 \
    --workload dct --isa RISC --no-jit >"$SOAK_TMP/urgent$i.log" 2>&1 &
done
wait "$SOAK_LOW" || {
  echo "ci.sh: ksimd soak: low-priority job failed" >&2; exit 1; }
grep -q "preempted at" "$SOAK_TMP/low.log" || {
  echo "ci.sh: ksimd soak: low-priority job was never preempted" >&2; exit 1; }
grep -q "resumed at" "$SOAK_TMP/low.log" || {
  echo "ci.sh: ksimd soak: preempted job was never resumed" >&2; exit 1; }
$KSIM shutdown --port "$SOAK_PORT" >/dev/null
wait "$SOAK_SERVE" || {
  echo "ci.sh: ksimd soak: daemon exited nonzero" >&2; exit 1; }
wait
diff -u "$SOAK_TMP/straight.json" "$SOAK_TMP/preempted.json" || {
  echo "ci.sh: ksimd soak: preempted+resumed report differs from the" \
       "uninterrupted run" >&2
  exit 1
}
LEFTOVER=$(find "$SOAK_TMP" -name '*.kckpt' | wc -l)
if [ "$LEFTOVER" -ne 0 ]; then
  echo "ci.sh: ksimd soak: $LEFTOVER orphaned checkpoint file(s)" >&2
  exit 1
fi
echo "ksimd soak OK (preempted, resumed, report byte-identical, no orphans)"

echo "=== ksimd sweep fan-out smoke (sweep-as-a-service == local sweep) ==="
# The same manifest run locally and as daemon fan-out (ksim sweep --port)
# must produce byte-identical ksim.sweep documents: point jobs are the exact
# Sessions run_sweep would build, and outcomes land at spec-order indices.
FAN_TMP=$(mktemp -d)
trap 'rm -rf "$DSE_TMP" "$CKPT_TMP" "$SOAK_TMP" "$FAN_TMP"' EXIT
cat > "$FAN_TMP/manifest.json" <<'EOF'
{"workloads": ["dct"], "isas": ["RISC", "VLIW2"], "models": ["ilp"],
 "memories": [{"l1": {"sets": [8, 16]}}], "jit": false}
EOF
$KSIM sweep --manifest "$FAN_TMP/manifest.json" \
  --json "$FAN_TMP/local.json" >/dev/null 2>&1
$KSIM serve --port 0 --workers 2 \
  --port-file "$FAN_TMP/port" >"$FAN_TMP/serve.log" 2>&1 &
FAN_SERVE=$!
for _ in $(seq 1 100); do [ -s "$FAN_TMP/port" ] && break; sleep 0.05; done
FAN_PORT=$(cat "$FAN_TMP/port")
$KSIM sweep --manifest "$FAN_TMP/manifest.json" --port "$FAN_PORT" \
  --json "$FAN_TMP/remote.json" >"$FAN_TMP/remote.log" 2>&1 || {
  echo "ci.sh: ksimd fan-out: remote sweep failed" >&2
  cat "$FAN_TMP/remote.log" >&2
  exit 1
}
$KSIM shutdown --port "$FAN_PORT" >/dev/null
wait "$FAN_SERVE" || {
  echo "ci.sh: ksimd fan-out: daemon exited nonzero" >&2; exit 1; }
diff -u "$FAN_TMP/local.json" "$FAN_TMP/remote.json" || {
  echo "ci.sh: ksimd fan-out: daemon sweep report differs from the local" \
       "sweep of the same manifest" >&2
  exit 1
}
echo "ksimd sweep fan-out OK (report byte-identical to local sweep)"

echo "ci.sh: all stages passed"
