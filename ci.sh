#!/usr/bin/env bash
# Continuous-integration driver: regular build + tier-1 tests (with the
# superblock engine on and off), the same suite under AddressSanitizer +
# UndefinedBehaviorSanitizer, the static C++ lint target (when clang-tidy is
# installed), and a quick perf smoke that records BENCH_simperf.json.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}

echo "=== build (RelWithDebInfo) ==="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"

echo "=== tier-1 tests (superblock engine, default) ==="
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "=== tier-1 tests (superblocks disabled fallback) ==="
KSIM_NO_SUPERBLOCKS=1 ctest --test-dir build --output-on-failure -j"$JOBS"

echo "=== lint built-in workloads (all ISA configurations) ==="
./build/src/driver/ksim lint --workload all --isa all

echo "=== build (ASan+UBSan) ==="
cmake -B build-asan -S . -DKSIM_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$JOBS"

echo "=== tier-1 tests (ASan+UBSan) ==="
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-asan --output-on-failure -j"$JOBS"

echo "=== clang-tidy ==="
cmake --build build --target lint-cxx

echo "=== perf smoke (non-gating numbers, machine-readable) ==="
./build/bench/bench_simperf_mips --quick --json BENCH_simperf.json

echo "ci.sh: all stages passed"
