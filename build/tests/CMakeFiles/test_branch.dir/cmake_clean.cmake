file(REMOVE_RECURSE
  "CMakeFiles/test_branch.dir/branch_test.cpp.o"
  "CMakeFiles/test_branch.dir/branch_test.cpp.o.d"
  "test_branch"
  "test_branch.pdb"
  "test_branch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
