# Empty dependencies file for test_branch.
# This may be replaced when dependencies are built.
