file(REMOVE_RECURSE
  "CMakeFiles/test_retarget.dir/retarget_test.cpp.o"
  "CMakeFiles/test_retarget.dir/retarget_test.cpp.o.d"
  "test_retarget"
  "test_retarget.pdb"
  "test_retarget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retarget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
