# Empty dependencies file for test_retarget.
# This may be replaced when dependencies are built.
