file(REMOVE_RECURSE
  "CMakeFiles/test_cycle.dir/cycle_test.cpp.o"
  "CMakeFiles/test_cycle.dir/cycle_test.cpp.o.d"
  "test_cycle"
  "test_cycle.pdb"
  "test_cycle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
