file(REMOVE_RECURSE
  "CMakeFiles/test_elf.dir/elf_test.cpp.o"
  "CMakeFiles/test_elf.dir/elf_test.cpp.o.d"
  "test_elf"
  "test_elf.pdb"
  "test_elf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
