file(REMOVE_RECURSE
  "CMakeFiles/test_sim_edge.dir/sim_edge_test.cpp.o"
  "CMakeFiles/test_sim_edge.dir/sim_edge_test.cpp.o.d"
  "test_sim_edge"
  "test_sim_edge.pdb"
  "test_sim_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
