
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_edge_test.cpp" "tests/CMakeFiles/test_sim_edge.dir/sim_edge_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim_edge.dir/sim_edge_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/ksim_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ksim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/kcc/CMakeFiles/ksim_kcc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ksim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cycle/CMakeFiles/ksim_cycle.dir/DependInfo.cmake"
  "/root/repo/build/src/kasm/CMakeFiles/ksim_kasm.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/ksim_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ksim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/ksim_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ksim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
