file(REMOVE_RECURSE
  "CMakeFiles/test_features.dir/features_test.cpp.o"
  "CMakeFiles/test_features.dir/features_test.cpp.o.d"
  "test_features"
  "test_features.pdb"
  "test_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
