file(REMOVE_RECURSE
  "CMakeFiles/test_kcc.dir/kcc_test.cpp.o"
  "CMakeFiles/test_kcc.dir/kcc_test.cpp.o.d"
  "test_kcc"
  "test_kcc.pdb"
  "test_kcc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
