# Empty compiler generated dependencies file for test_kcc.
# This may be replaced when dependencies are built.
