file(REMOVE_RECURSE
  "CMakeFiles/test_adl.dir/adl_test.cpp.o"
  "CMakeFiles/test_adl.dir/adl_test.cpp.o.d"
  "test_adl"
  "test_adl.pdb"
  "test_adl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
