# Empty dependencies file for test_adl.
# This may be replaced when dependencies are built.
