# Empty dependencies file for test_kcc_unit.
# This may be replaced when dependencies are built.
