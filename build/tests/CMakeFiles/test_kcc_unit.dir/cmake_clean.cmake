file(REMOVE_RECURSE
  "CMakeFiles/test_kcc_unit.dir/kcc_unit_test.cpp.o"
  "CMakeFiles/test_kcc_unit.dir/kcc_unit_test.cpp.o.d"
  "test_kcc_unit"
  "test_kcc_unit.pdb"
  "test_kcc_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kcc_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
