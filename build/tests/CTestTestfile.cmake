# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_adl[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_elf[1]_include.cmake")
include("/root/repo/build/tests/test_asm[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_kcc[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_cycle[1]_include.cmake")
include("/root/repo/build/tests/test_branch[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_kcc_unit[1]_include.cmake")
include("/root/repo/build/tests/test_retarget[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_sim_edge[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
