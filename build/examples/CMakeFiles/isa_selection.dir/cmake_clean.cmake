file(REMOVE_RECURSE
  "CMakeFiles/isa_selection.dir/isa_selection.cpp.o"
  "CMakeFiles/isa_selection.dir/isa_selection.cpp.o.d"
  "isa_selection"
  "isa_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
