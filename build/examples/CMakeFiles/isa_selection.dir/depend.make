# Empty dependencies file for isa_selection.
# This may be replaced when dependencies are built.
