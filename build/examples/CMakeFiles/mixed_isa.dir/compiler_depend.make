# Empty compiler generated dependencies file for mixed_isa.
# This may be replaced when dependencies are built.
