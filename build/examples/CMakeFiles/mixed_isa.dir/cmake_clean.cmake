file(REMOVE_RECURSE
  "CMakeFiles/mixed_isa.dir/mixed_isa.cpp.o"
  "CMakeFiles/mixed_isa.dir/mixed_isa.cpp.o.d"
  "mixed_isa"
  "mixed_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
