# Empty dependencies file for fabric_threads.
# This may be replaced when dependencies are built.
