file(REMOVE_RECURSE
  "CMakeFiles/fabric_threads.dir/fabric_threads.cpp.o"
  "CMakeFiles/fabric_threads.dir/fabric_threads.cpp.o.d"
  "fabric_threads"
  "fabric_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
