# Empty compiler generated dependencies file for compile_and_profile.
# This may be replaced when dependencies are built.
