file(REMOVE_RECURSE
  "CMakeFiles/compile_and_profile.dir/compile_and_profile.cpp.o"
  "CMakeFiles/compile_and_profile.dir/compile_and_profile.cpp.o.d"
  "compile_and_profile"
  "compile_and_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_and_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
