
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kcc/codegen.cpp" "src/kcc/CMakeFiles/ksim_kcc.dir/codegen.cpp.o" "gcc" "src/kcc/CMakeFiles/ksim_kcc.dir/codegen.cpp.o.d"
  "/root/repo/src/kcc/compiler.cpp" "src/kcc/CMakeFiles/ksim_kcc.dir/compiler.cpp.o" "gcc" "src/kcc/CMakeFiles/ksim_kcc.dir/compiler.cpp.o.d"
  "/root/repo/src/kcc/ir.cpp" "src/kcc/CMakeFiles/ksim_kcc.dir/ir.cpp.o" "gcc" "src/kcc/CMakeFiles/ksim_kcc.dir/ir.cpp.o.d"
  "/root/repo/src/kcc/irgen.cpp" "src/kcc/CMakeFiles/ksim_kcc.dir/irgen.cpp.o" "gcc" "src/kcc/CMakeFiles/ksim_kcc.dir/irgen.cpp.o.d"
  "/root/repo/src/kcc/lexer.cpp" "src/kcc/CMakeFiles/ksim_kcc.dir/lexer.cpp.o" "gcc" "src/kcc/CMakeFiles/ksim_kcc.dir/lexer.cpp.o.d"
  "/root/repo/src/kcc/parser.cpp" "src/kcc/CMakeFiles/ksim_kcc.dir/parser.cpp.o" "gcc" "src/kcc/CMakeFiles/ksim_kcc.dir/parser.cpp.o.d"
  "/root/repo/src/kcc/regalloc.cpp" "src/kcc/CMakeFiles/ksim_kcc.dir/regalloc.cpp.o" "gcc" "src/kcc/CMakeFiles/ksim_kcc.dir/regalloc.cpp.o.d"
  "/root/repo/src/kcc/schedule.cpp" "src/kcc/CMakeFiles/ksim_kcc.dir/schedule.cpp.o" "gcc" "src/kcc/CMakeFiles/ksim_kcc.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ksim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ksim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/ksim_adl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
