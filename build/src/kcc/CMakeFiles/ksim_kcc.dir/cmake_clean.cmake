file(REMOVE_RECURSE
  "CMakeFiles/ksim_kcc.dir/codegen.cpp.o"
  "CMakeFiles/ksim_kcc.dir/codegen.cpp.o.d"
  "CMakeFiles/ksim_kcc.dir/compiler.cpp.o"
  "CMakeFiles/ksim_kcc.dir/compiler.cpp.o.d"
  "CMakeFiles/ksim_kcc.dir/ir.cpp.o"
  "CMakeFiles/ksim_kcc.dir/ir.cpp.o.d"
  "CMakeFiles/ksim_kcc.dir/irgen.cpp.o"
  "CMakeFiles/ksim_kcc.dir/irgen.cpp.o.d"
  "CMakeFiles/ksim_kcc.dir/lexer.cpp.o"
  "CMakeFiles/ksim_kcc.dir/lexer.cpp.o.d"
  "CMakeFiles/ksim_kcc.dir/parser.cpp.o"
  "CMakeFiles/ksim_kcc.dir/parser.cpp.o.d"
  "CMakeFiles/ksim_kcc.dir/regalloc.cpp.o"
  "CMakeFiles/ksim_kcc.dir/regalloc.cpp.o.d"
  "CMakeFiles/ksim_kcc.dir/schedule.cpp.o"
  "CMakeFiles/ksim_kcc.dir/schedule.cpp.o.d"
  "libksim_kcc.a"
  "libksim_kcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksim_kcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
