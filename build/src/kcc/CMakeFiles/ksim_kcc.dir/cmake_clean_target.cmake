file(REMOVE_RECURSE
  "libksim_kcc.a"
)
