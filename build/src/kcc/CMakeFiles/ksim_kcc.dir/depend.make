# Empty dependencies file for ksim_kcc.
# This may be replaced when dependencies are built.
