# Empty dependencies file for ksim_isa.
# This may be replaced when dependencies are built.
