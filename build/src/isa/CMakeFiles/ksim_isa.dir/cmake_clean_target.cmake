file(REMOVE_RECURSE
  "libksim_isa.a"
)
