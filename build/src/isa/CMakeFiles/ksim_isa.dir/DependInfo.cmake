
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/arch_state.cpp" "src/isa/CMakeFiles/ksim_isa.dir/arch_state.cpp.o" "gcc" "src/isa/CMakeFiles/ksim_isa.dir/arch_state.cpp.o.d"
  "/root/repo/src/isa/kisa.cpp" "src/isa/CMakeFiles/ksim_isa.dir/kisa.cpp.o" "gcc" "src/isa/CMakeFiles/ksim_isa.dir/kisa.cpp.o.d"
  "/root/repo/src/isa/kisa_adl.cpp" "src/isa/CMakeFiles/ksim_isa.dir/kisa_adl.cpp.o" "gcc" "src/isa/CMakeFiles/ksim_isa.dir/kisa_adl.cpp.o.d"
  "/root/repo/src/isa/optable.cpp" "src/isa/CMakeFiles/ksim_isa.dir/optable.cpp.o" "gcc" "src/isa/CMakeFiles/ksim_isa.dir/optable.cpp.o.d"
  "/root/repo/src/isa/semantics.cpp" "src/isa/CMakeFiles/ksim_isa.dir/semantics.cpp.o" "gcc" "src/isa/CMakeFiles/ksim_isa.dir/semantics.cpp.o.d"
  "/root/repo/src/isa/targetgen.cpp" "src/isa/CMakeFiles/ksim_isa.dir/targetgen.cpp.o" "gcc" "src/isa/CMakeFiles/ksim_isa.dir/targetgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adl/CMakeFiles/ksim_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ksim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
