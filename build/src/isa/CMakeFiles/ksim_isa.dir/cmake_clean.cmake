file(REMOVE_RECURSE
  "CMakeFiles/ksim_isa.dir/arch_state.cpp.o"
  "CMakeFiles/ksim_isa.dir/arch_state.cpp.o.d"
  "CMakeFiles/ksim_isa.dir/kisa.cpp.o"
  "CMakeFiles/ksim_isa.dir/kisa.cpp.o.d"
  "CMakeFiles/ksim_isa.dir/kisa_adl.cpp.o"
  "CMakeFiles/ksim_isa.dir/kisa_adl.cpp.o.d"
  "CMakeFiles/ksim_isa.dir/optable.cpp.o"
  "CMakeFiles/ksim_isa.dir/optable.cpp.o.d"
  "CMakeFiles/ksim_isa.dir/semantics.cpp.o"
  "CMakeFiles/ksim_isa.dir/semantics.cpp.o.d"
  "CMakeFiles/ksim_isa.dir/targetgen.cpp.o"
  "CMakeFiles/ksim_isa.dir/targetgen.cpp.o.d"
  "libksim_isa.a"
  "libksim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
