# Empty compiler generated dependencies file for ksim_cycle.
# This may be replaced when dependencies are built.
