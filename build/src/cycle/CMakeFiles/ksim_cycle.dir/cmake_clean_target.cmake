file(REMOVE_RECURSE
  "libksim_cycle.a"
)
