file(REMOVE_RECURSE
  "CMakeFiles/ksim_cycle.dir/branch_predict.cpp.o"
  "CMakeFiles/ksim_cycle.dir/branch_predict.cpp.o.d"
  "CMakeFiles/ksim_cycle.dir/mem_hierarchy.cpp.o"
  "CMakeFiles/ksim_cycle.dir/mem_hierarchy.cpp.o.d"
  "CMakeFiles/ksim_cycle.dir/models.cpp.o"
  "CMakeFiles/ksim_cycle.dir/models.cpp.o.d"
  "libksim_cycle.a"
  "libksim_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksim_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
