file(REMOVE_RECURSE
  "CMakeFiles/ksim.dir/ksim_main.cpp.o"
  "CMakeFiles/ksim.dir/ksim_main.cpp.o.d"
  "ksim"
  "ksim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
