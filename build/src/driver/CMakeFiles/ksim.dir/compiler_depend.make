# Empty compiler generated dependencies file for ksim.
# This may be replaced when dependencies are built.
