file(REMOVE_RECURSE
  "libksim_adl.a"
)
