file(REMOVE_RECURSE
  "CMakeFiles/ksim_adl.dir/model.cpp.o"
  "CMakeFiles/ksim_adl.dir/model.cpp.o.d"
  "CMakeFiles/ksim_adl.dir/parser.cpp.o"
  "CMakeFiles/ksim_adl.dir/parser.cpp.o.d"
  "libksim_adl.a"
  "libksim_adl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksim_adl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
