# Empty compiler generated dependencies file for ksim_adl.
# This may be replaced when dependencies are built.
