file(REMOVE_RECURSE
  "libksim_sim.a"
)
