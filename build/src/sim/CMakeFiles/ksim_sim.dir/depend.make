# Empty dependencies file for ksim_sim.
# This may be replaced when dependencies are built.
