
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/decode_cache.cpp" "src/sim/CMakeFiles/ksim_sim.dir/decode_cache.cpp.o" "gcc" "src/sim/CMakeFiles/ksim_sim.dir/decode_cache.cpp.o.d"
  "/root/repo/src/sim/fabric.cpp" "src/sim/CMakeFiles/ksim_sim.dir/fabric.cpp.o" "gcc" "src/sim/CMakeFiles/ksim_sim.dir/fabric.cpp.o.d"
  "/root/repo/src/sim/libc_emul.cpp" "src/sim/CMakeFiles/ksim_sim.dir/libc_emul.cpp.o" "gcc" "src/sim/CMakeFiles/ksim_sim.dir/libc_emul.cpp.o.d"
  "/root/repo/src/sim/profiler.cpp" "src/sim/CMakeFiles/ksim_sim.dir/profiler.cpp.o" "gcc" "src/sim/CMakeFiles/ksim_sim.dir/profiler.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/ksim_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/ksim_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/ksim_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/ksim_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cycle/CMakeFiles/ksim_cycle.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/ksim_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ksim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/kasm/CMakeFiles/ksim_kasm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ksim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/ksim_adl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
