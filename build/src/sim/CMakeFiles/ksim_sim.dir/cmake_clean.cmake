file(REMOVE_RECURSE
  "CMakeFiles/ksim_sim.dir/decode_cache.cpp.o"
  "CMakeFiles/ksim_sim.dir/decode_cache.cpp.o.d"
  "CMakeFiles/ksim_sim.dir/fabric.cpp.o"
  "CMakeFiles/ksim_sim.dir/fabric.cpp.o.d"
  "CMakeFiles/ksim_sim.dir/libc_emul.cpp.o"
  "CMakeFiles/ksim_sim.dir/libc_emul.cpp.o.d"
  "CMakeFiles/ksim_sim.dir/profiler.cpp.o"
  "CMakeFiles/ksim_sim.dir/profiler.cpp.o.d"
  "CMakeFiles/ksim_sim.dir/simulator.cpp.o"
  "CMakeFiles/ksim_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ksim_sim.dir/trace.cpp.o"
  "CMakeFiles/ksim_sim.dir/trace.cpp.o.d"
  "libksim_sim.a"
  "libksim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
