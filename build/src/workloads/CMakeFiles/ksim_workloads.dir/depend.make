# Empty dependencies file for ksim_workloads.
# This may be replaced when dependencies are built.
