file(REMOVE_RECURSE
  "CMakeFiles/ksim_workloads.dir/build.cpp.o"
  "CMakeFiles/ksim_workloads.dir/build.cpp.o.d"
  "CMakeFiles/ksim_workloads.dir/sources.cpp.o"
  "CMakeFiles/ksim_workloads.dir/sources.cpp.o.d"
  "libksim_workloads.a"
  "libksim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
