file(REMOVE_RECURSE
  "libksim_workloads.a"
)
