
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/rtl_sim.cpp" "src/rtl/CMakeFiles/ksim_rtl.dir/rtl_sim.cpp.o" "gcc" "src/rtl/CMakeFiles/ksim_rtl.dir/rtl_sim.cpp.o.d"
  "/root/repo/src/rtl/trace_recorder.cpp" "src/rtl/CMakeFiles/ksim_rtl.dir/trace_recorder.cpp.o" "gcc" "src/rtl/CMakeFiles/ksim_rtl.dir/trace_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cycle/CMakeFiles/ksim_cycle.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ksim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ksim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/ksim_adl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
