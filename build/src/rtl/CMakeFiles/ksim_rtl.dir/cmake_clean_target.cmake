file(REMOVE_RECURSE
  "libksim_rtl.a"
)
