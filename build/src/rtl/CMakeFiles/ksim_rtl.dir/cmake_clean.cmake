file(REMOVE_RECURSE
  "CMakeFiles/ksim_rtl.dir/rtl_sim.cpp.o"
  "CMakeFiles/ksim_rtl.dir/rtl_sim.cpp.o.d"
  "CMakeFiles/ksim_rtl.dir/trace_recorder.cpp.o"
  "CMakeFiles/ksim_rtl.dir/trace_recorder.cpp.o.d"
  "libksim_rtl.a"
  "libksim_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksim_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
