# Empty compiler generated dependencies file for ksim_rtl.
# This may be replaced when dependencies are built.
