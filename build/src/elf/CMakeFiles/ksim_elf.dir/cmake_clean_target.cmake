file(REMOVE_RECURSE
  "libksim_elf.a"
)
