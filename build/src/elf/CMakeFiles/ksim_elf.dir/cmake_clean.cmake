file(REMOVE_RECURSE
  "CMakeFiles/ksim_elf.dir/elf.cpp.o"
  "CMakeFiles/ksim_elf.dir/elf.cpp.o.d"
  "CMakeFiles/ksim_elf.dir/loader.cpp.o"
  "CMakeFiles/ksim_elf.dir/loader.cpp.o.d"
  "libksim_elf.a"
  "libksim_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksim_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
