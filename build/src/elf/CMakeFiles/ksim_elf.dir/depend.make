# Empty dependencies file for ksim_elf.
# This may be replaced when dependencies are built.
