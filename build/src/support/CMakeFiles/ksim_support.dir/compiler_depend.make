# Empty compiler generated dependencies file for ksim_support.
# This may be replaced when dependencies are built.
