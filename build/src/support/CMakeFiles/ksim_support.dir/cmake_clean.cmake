file(REMOVE_RECURSE
  "CMakeFiles/ksim_support.dir/diag.cpp.o"
  "CMakeFiles/ksim_support.dir/diag.cpp.o.d"
  "CMakeFiles/ksim_support.dir/strings.cpp.o"
  "CMakeFiles/ksim_support.dir/strings.cpp.o.d"
  "libksim_support.a"
  "libksim_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksim_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
