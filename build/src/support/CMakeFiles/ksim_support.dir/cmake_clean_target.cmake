file(REMOVE_RECURSE
  "libksim_support.a"
)
