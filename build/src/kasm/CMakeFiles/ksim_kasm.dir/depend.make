# Empty dependencies file for ksim_kasm.
# This may be replaced when dependencies are built.
