file(REMOVE_RECURSE
  "libksim_kasm.a"
)
