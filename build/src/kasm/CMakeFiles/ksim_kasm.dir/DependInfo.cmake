
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kasm/assembler.cpp" "src/kasm/CMakeFiles/ksim_kasm.dir/assembler.cpp.o" "gcc" "src/kasm/CMakeFiles/ksim_kasm.dir/assembler.cpp.o.d"
  "/root/repo/src/kasm/disasm.cpp" "src/kasm/CMakeFiles/ksim_kasm.dir/disasm.cpp.o" "gcc" "src/kasm/CMakeFiles/ksim_kasm.dir/disasm.cpp.o.d"
  "/root/repo/src/kasm/linker.cpp" "src/kasm/CMakeFiles/ksim_kasm.dir/linker.cpp.o" "gcc" "src/kasm/CMakeFiles/ksim_kasm.dir/linker.cpp.o.d"
  "/root/repo/src/kasm/stubs.cpp" "src/kasm/CMakeFiles/ksim_kasm.dir/stubs.cpp.o" "gcc" "src/kasm/CMakeFiles/ksim_kasm.dir/stubs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elf/CMakeFiles/ksim_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ksim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ksim_support.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/ksim_adl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
