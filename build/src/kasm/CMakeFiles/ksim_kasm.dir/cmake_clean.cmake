file(REMOVE_RECURSE
  "CMakeFiles/ksim_kasm.dir/assembler.cpp.o"
  "CMakeFiles/ksim_kasm.dir/assembler.cpp.o.d"
  "CMakeFiles/ksim_kasm.dir/disasm.cpp.o"
  "CMakeFiles/ksim_kasm.dir/disasm.cpp.o.d"
  "CMakeFiles/ksim_kasm.dir/linker.cpp.o"
  "CMakeFiles/ksim_kasm.dir/linker.cpp.o.d"
  "CMakeFiles/ksim_kasm.dir/stubs.cpp.o"
  "CMakeFiles/ksim_kasm.dir/stubs.cpp.o.d"
  "libksim_kasm.a"
  "libksim_kasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksim_kasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
