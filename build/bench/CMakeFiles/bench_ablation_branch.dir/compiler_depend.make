# Empty compiler generated dependencies file for bench_ablation_branch.
# This may be replaced when dependencies are built.
