file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_branch.dir/bench_ablation_branch.cpp.o"
  "CMakeFiles/bench_ablation_branch.dir/bench_ablation_branch.cpp.o.d"
  "bench_ablation_branch"
  "bench_ablation_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
