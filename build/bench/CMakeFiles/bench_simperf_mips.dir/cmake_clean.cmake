file(REMOVE_RECURSE
  "CMakeFiles/bench_simperf_mips.dir/bench_simperf_mips.cpp.o"
  "CMakeFiles/bench_simperf_mips.dir/bench_simperf_mips.cpp.o.d"
  "bench_simperf_mips"
  "bench_simperf_mips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simperf_mips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
