# Empty compiler generated dependencies file for bench_simperf_mips.
# This may be replaced when dependencies are built.
