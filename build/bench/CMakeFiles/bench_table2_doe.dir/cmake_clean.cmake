file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_doe.dir/bench_table2_doe.cpp.o"
  "CMakeFiles/bench_table2_doe.dir/bench_table2_doe.cpp.o.d"
  "bench_table2_doe"
  "bench_table2_doe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_doe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
