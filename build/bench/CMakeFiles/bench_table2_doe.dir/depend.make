# Empty dependencies file for bench_table2_doe.
# This may be replaced when dependencies are built.
