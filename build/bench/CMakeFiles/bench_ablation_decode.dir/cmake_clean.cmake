file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decode.dir/bench_ablation_decode.cpp.o"
  "CMakeFiles/bench_ablation_decode.dir/bench_ablation_decode.cpp.o.d"
  "bench_ablation_decode"
  "bench_ablation_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
