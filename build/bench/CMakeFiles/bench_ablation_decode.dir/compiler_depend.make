# Empty compiler generated dependencies file for bench_ablation_decode.
# This may be replaced when dependencies are built.
