# Empty dependencies file for bench_ablation_memhier.
# This may be replaced when dependencies are built.
