file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_memhier.dir/bench_ablation_memhier.cpp.o"
  "CMakeFiles/bench_ablation_memhier.dir/bench_ablation_memhier.cpp.o.d"
  "bench_ablation_memhier"
  "bench_ablation_memhier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memhier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
