file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ilp.dir/bench_fig4_ilp.cpp.o"
  "CMakeFiles/bench_fig4_ilp.dir/bench_fig4_ilp.cpp.o.d"
  "bench_fig4_ilp"
  "bench_fig4_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
