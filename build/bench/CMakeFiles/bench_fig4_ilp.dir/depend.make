# Empty dependencies file for bench_fig4_ilp.
# This may be replaced when dependencies are built.
