#include <gtest/gtest.h>

#include "cycle/branch_predict.h"
#include "cycle/models.h"
#include "support/error.h"
#include "support/prng.h"
#include "workloads/build.h"

namespace ksim::cycle {
namespace {

TEST(Predictors, FactoryAndNames) {
  EXPECT_EQ(make_predictor("not-taken")->name(), "static-not-taken");
  EXPECT_EQ(make_predictor("taken")->name(), "static-taken");
  EXPECT_EQ(make_predictor("1bit")->name(), "1-bit");
  EXPECT_EQ(make_predictor("2bit")->name(), "2-bit");
  EXPECT_EQ(make_predictor("gshare")->name(), "gshare");
  EXPECT_THROW(make_predictor("oracle"), Error);
}

TEST(Predictors, StaticPredictorsNeverLearn) {
  NotTakenPredictor nt;
  TakenPredictor t;
  for (int i = 0; i < 10; ++i) {
    nt.observe(0x1000, true); // always wrong
    t.observe(0x1000, true);  // always right
  }
  EXPECT_EQ(nt.stats().mispredictions, 10u);
  EXPECT_EQ(t.stats().mispredictions, 0u);
}

TEST(Predictors, OneBitTracksLastOutcome) {
  OneBitPredictor p(64);
  // Alternating outcomes defeat a 1-bit predictor completely (after warmup).
  for (int i = 0; i < 100; ++i) p.observe(0x2000, i % 2 == 0);
  EXPECT_GE(p.stats().mispredictions, 98u);
  p.reset();
  EXPECT_EQ(p.stats().branches, 0u);
  // A monomorphic branch is perfectly predicted after one miss.
  for (int i = 0; i < 50; ++i) p.observe(0x2000, true);
  EXPECT_EQ(p.stats().mispredictions, 1u);
}

TEST(Predictors, TwoBitToleratesLoopExits) {
  // Loop pattern: taken 9 times, not-taken once, repeated.
  OneBitPredictor one(64);
  TwoBitPredictor two(64);
  for (int rep = 0; rep < 50; ++rep)
    for (int i = 0; i < 10; ++i) {
      const bool taken = i != 9;
      one.observe(0x3000, taken);
      two.observe(0x3000, taken);
    }
  // 1-bit mispredicts twice per loop (exit + first re-entry); 2-bit once.
  EXPECT_GT(one.stats().mispredictions, two.stats().mispredictions);
  EXPECT_LE(two.stats().mispredictions, 51u);
}

TEST(Predictors, GshareLearnsAlternation) {
  // Global history lets gshare predict a strict alternation perfectly.
  GsharePredictor g(8);
  TwoBitPredictor two(256);
  for (int i = 0; i < 400; ++i) {
    g.observe(0x4000, i % 2 == 0);
    two.observe(0x4000, i % 2 == 0);
  }
  EXPECT_LT(g.stats().miss_rate(), 0.1);
  EXPECT_GT(two.stats().miss_rate(), 0.4);
}

TEST(Predictors, DistinctBranchesDoNotAliasInLargeTables) {
  TwoBitPredictor p(4096);
  Prng prng(7);
  // 16 branches with stable but different behaviour.
  bool dir[16];
  for (bool& d : dir) d = prng.next_below(2) != 0;
  for (int round = 0; round < 64; ++round)
    for (int b = 0; b < 16; ++b) p.observe(0x1000 + static_cast<uint32_t>(b) * 4, dir[b]);
  // At most a couple of warmup misses per branch.
  EXPECT_LE(p.stats().mispredictions, 32u);
}

// -- integration with the cycle models -------------------------------------------

TEST(BranchModels, MispredictionPenaltyIncreasesDoeCycles) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("qsort"), "RISC");

  MemoryHierarchy mem_perfect;
  DoeModel perfect(&mem_perfect);
  workloads::run_executable(exe, &perfect);

  MemoryHierarchy mem_bp;
  DoeModel with_bp(&mem_bp);
  TwoBitPredictor predictor;
  with_bp.set_branch_prediction(&predictor, 3);
  workloads::run_executable(exe, &with_bp);

  EXPECT_GT(predictor.stats().branches, 10000u);
  EXPECT_GT(predictor.stats().mispredictions, 0u);
  EXPECT_GT(with_bp.cycles(), perfect.cycles());
  // The extra cycles are bounded by mispredicts * penalty.
  EXPECT_LE(with_bp.cycles(),
            perfect.cycles() + predictor.stats().mispredictions * 3 +
                predictor.stats().mispredictions);
}

TEST(BranchModels, ZeroPenaltyMatchesPerfectPredictionInAie) {
  const elf::ElfFile exe = workloads::build_workload(workloads::by_name("fft"), "RISC");
  MemoryHierarchy mem_a;
  AieModel perfect(&mem_a);
  workloads::run_executable(exe, &perfect);

  MemoryHierarchy mem_b;
  AieModel with_bp(&mem_b);
  NotTakenPredictor predictor;
  with_bp.set_branch_prediction(&predictor, 0);
  workloads::run_executable(exe, &with_bp);
  EXPECT_EQ(with_bp.cycles(), perfect.cycles());
}

TEST(BranchModels, BetterPredictorNeverCostsMoreCycles) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("cjpeg"), "RISC");
  uint64_t cycles_nt = 0;
  uint64_t cycles_2bit = 0;
  {
    MemoryHierarchy mem;
    DoeModel model(&mem);
    NotTakenPredictor predictor;
    model.set_branch_prediction(&predictor, 5);
    workloads::run_executable(exe, &model);
    cycles_nt = model.cycles();
  }
  {
    MemoryHierarchy mem;
    DoeModel model(&mem);
    TwoBitPredictor predictor;
    model.set_branch_prediction(&predictor, 5);
    workloads::run_executable(exe, &model);
    cycles_2bit = model.cycles();
  }
  EXPECT_LE(cycles_2bit, cycles_nt);
}

TEST(BranchModels, LoopyCodePredictsWell) {
  // cjpeg is loop-heavy: a 2-bit predictor should be well under 10% misses.
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("cjpeg"), "RISC");
  MemoryHierarchy mem;
  DoeModel model(&mem);
  TwoBitPredictor predictor;
  model.set_branch_prediction(&predictor, 3);
  workloads::run_executable(exe, &model);
  EXPECT_LT(predictor.stats().miss_rate(), 0.10);
}

} // namespace
} // namespace ksim::cycle
