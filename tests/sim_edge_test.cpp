// Edge-case tests of the interpreter: stepping, prediction across ISA
// switches, decode-cache invalidation, indirect jumps through data tables.
#include <gtest/gtest.h>

#include "cycle/models.h"
#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "sim/simulator.h"

namespace ksim::sim {
namespace {

elf::ElfFile build_asm(const std::string& body, const std::string& entry_isa = "RISC") {
  kasm::LinkOptions lopt;
  lopt.entry_isa = isa::kisa().find_isa(entry_isa)->id;
  return kasm::link_or_throw(
      {kasm::assemble_or_throw(kasm::start_stub_assembly(entry_isa)),
       kasm::assemble_or_throw(body),
       kasm::assemble_or_throw(kasm::libc_stub_assembly())},
      lopt);
}

TEST(SimEdge, StepMatchesRun) {
  const char* src = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 50
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  mv r4, r5
  ret
)";
  Simulator by_run(isa::kisa());
  by_run.load(build_asm(src));
  const StopReason r1 = by_run.run();

  Simulator by_step(isa::kisa());
  by_step.load(build_asm(src));
  std::optional<StopReason> r2;
  uint64_t steps = 0;
  while (!(r2 = by_step.step()).has_value()) ++steps;
  EXPECT_EQ(r1, *r2);
  EXPECT_EQ(by_run.stats().instructions, steps + 1);
  EXPECT_EQ(by_run.exit_code(), by_step.exit_code());
}

TEST(SimEdge, PredictionStaysCorrectAcrossRepeatedIsaSwitches) {
  // A loop whose body switches ISA twice per iteration stresses the
  // prediction/decode-cache interaction (links must never cross an ISA
  // switch, and cache keys include the ISA id).
  const char* src = R"(
.global main
main:
  addi r20, r0, 0      # i
  addi r21, r0, 200
  addi r22, r0, 0      # acc
loop:
  switchtarget VLIW2
.isa VLIW2
  addi r22, r22, 3 || addi r23, r0, 1
  switchtarget RISC
.isa RISC
  add r20, r20, r23
  bne r20, r21, loop
  mv r4, r22
  ret
)";
  SimOptions opts; // cache + prediction on
  Simulator sim(isa::kisa(), opts);
  sim.load(build_asm(src));
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_EQ(sim.exit_code(), 600);
  EXPECT_EQ(sim.stats().isa_switches, 400u);
  // The same addresses were decoded under both ISA ids at most once each.
  EXPECT_LT(sim.stats().decodes, 40u);
}

TEST(SimEdge, SameAddressDecodesDifferentlyPerIsa) {
  // Two RISC single-op words form one 2-op VLIW2 instruction when the first
  // word's stop bit is clear.  Executing the same bytes under both ISAs must
  // give per-ISA decodes (cache keyed by ISA id).
  const char* src = R"(
.global main
main:
  switchtarget VLIW2
.isa VLIW2
  addi r5, r0, 1 || addi r6, r0, 2
  switchtarget RISC
.isa RISC
  add r4, r5, r6
  ret
)";
  Simulator sim(isa::kisa());
  sim.load(build_asm(src));
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_EQ(sim.exit_code(), 3);
}

TEST(SimEdge, ClearDecodeCacheKeepsExecutionCorrect) {
  const char* src = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 100
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  mv r4, r5
  ret
)";
  Simulator sim(isa::kisa());
  sim.load(build_asm(src));
  for (int i = 0; i < 50; ++i)
    if (sim.step().has_value()) break;
  sim.clear_decode_cache();
  std::optional<StopReason> stop;
  while (!(stop = sim.step()).has_value()) {
  }
  EXPECT_EQ(*stop, StopReason::Exited);
  EXPECT_EQ(sim.exit_code(), 100);
}

TEST(SimEdge, IndirectJumpThroughDataTable) {
  // A jump table in .data holds code addresses (ABS32 relocations); the
  // program dispatches through it with JR.
  const char* src = R"(
.data
table: .word case0, case1, case2
.global main
.text
main:
  addi r5, r0, 1          # select case1
  la r6, table
  slli r7, r5, 2
  add r6, r6, r7
  lw r8, 0(r6)
  jr r8
case0:
  addi r4, r0, 10
  ret
case1:
  addi r4, r0, 20
  ret
case2:
  addi r4, r0, 30
  ret
)";
  Simulator sim(isa::kisa());
  sim.load(build_asm(src));
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_EQ(sim.exit_code(), 20);
}

TEST(SimEdge, SelfModifyingCodeNeedsCacheClear) {
  // The decode cache intentionally does not snoop stores (real KAHRISMA
  // would flush its instruction path); after patching code, stale decodes
  // execute until the cache is cleared.
  const char* src = R"(
.global main
main:
  la r5, patchme
  lw r6, 0(r5)        # read the ADDI r4, r0, 1 word
  la r7, template
  lw r8, 0(r7)        # ADDI r4, r0, 7 word
  sw r8, 0(r5)        # patch
patchme:
  addi r4, r0, 1
  ret
template:
  addi r4, r0, 7
  ret
)";
  // Without clearing: the patch happens before patchme was ever decoded, so
  // the fresh decode already sees the new word.
  Simulator sim(isa::kisa());
  sim.load(build_asm(src));
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_EQ(sim.exit_code(), 7);
}

TEST(SimEdge, InstructionLimitResumable) {
  const char* src = R"(
.global main
main:
  addi r5, r0, 0
  li r6, 100000
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  mv r4, r0
  ret
)";
  SimOptions opts;
  opts.max_instructions = 1000;
  Simulator sim(isa::kisa(), opts);
  sim.load(build_asm(src));
  EXPECT_EQ(sim.run(), StopReason::InstructionLimit);
  EXPECT_EQ(sim.stats().instructions, 1000u);
}

TEST(SimEdge, ZeroRegisterIgnoresVliwWrites) {
  const char* src = R"(
.global main
main:
  switchtarget VLIW4
.isa VLIW4
  addi r0, r0, 99 || addi r5, r0, 4
  add r4, r5, r0
  ret
)";
  Simulator sim(isa::kisa());
  sim.load(build_asm(src));
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_EQ(sim.exit_code(), 4);
}

TEST(SimEdge, CycleModelSwitchMidRunViaFreshSimulator) {
  // Attaching a model after load only accounts instructions from that point;
  // verify a model attached from the start sees every instruction.
  const char* src = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 10
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  mv r4, r0
  ret
)";
  cycle::IlpModel model;
  Simulator sim(isa::kisa());
  sim.load(build_asm(src));
  sim.set_cycle_model(&model);
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_EQ(model.operations(), sim.stats().operations);
}

} // namespace
} // namespace ksim::sim
