#include <gtest/gtest.h>

#include "adl/parser.h"
#include "isa/kisa_adl.h"

namespace ksim::adl {
namespace {

constexpr const char* kTinyAdl = R"(
adl tiny
stopbit 31
opcodefield 30:25
isa RISC id=0 issue=1 default
isa V2 id=1 issue=2
regfile r count=4 zero=0
reg IP
format R fields=rd:24:20,ra:19:15,rb:14:10,funct:9:4
format S fields=imm:14:0:u
op ADD format=R match=opcode:0,funct:0 sem=add delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op HALT format=S match=opcode:32 sem=halt delay=1 serial syntax=
)";

TEST(AdlParser, ParsesTinyModel) {
  AdlModel m = parse_adl_or_throw(kTinyAdl, "tiny.adl");
  EXPECT_EQ(m.name, "tiny");
  EXPECT_EQ(m.stop_bit, 31);
  EXPECT_EQ(m.opcode_field.hi, 30);
  EXPECT_EQ(m.opcode_field.lo, 25);
  ASSERT_EQ(m.isas.size(), 2u);
  EXPECT_EQ(m.default_isa().name, "RISC");
  EXPECT_EQ(m.find_isa("V2")->issue_width, 2);
  EXPECT_EQ(m.find_isa_by_id(1)->name, "V2");
  EXPECT_EQ(m.general_register_count(), 4);
  EXPECT_TRUE(m.find_register("r0")->is_zero);
  EXPECT_TRUE(m.find_register("IP")->is_special);
  ASSERT_NE(m.find_operation("ADD"), nullptr);
  const OperationDef& add = *m.find_operation("ADD");
  EXPECT_EQ(add.semantic, "add");
  EXPECT_EQ(add.delay, 1);
  ASSERT_EQ(add.match.size(), 2u);
  EXPECT_EQ(add.match[1].field, "funct");
  EXPECT_TRUE(m.find_operation("HALT")->serial_only);
}

TEST(AdlParser, FieldLookup) {
  AdlModel m = parse_adl_or_throw(kTinyAdl);
  const FormatDef* fmt = m.find_format("R");
  ASSERT_NE(fmt, nullptr);
  const FieldDef* rd = fmt->find_field("rd");
  ASSERT_NE(rd, nullptr);
  EXPECT_EQ(rd->hi, 24);
  EXPECT_EQ(rd->lo, 20);
  EXPECT_EQ(rd->width(), 5u);
  EXPECT_EQ(fmt->find_field("nope"), nullptr);
}

TEST(AdlParser, SignedFieldFlag) {
  AdlModel m = parse_adl_or_throw(R"(
adl t
stopbit 31
opcodefield 30:25
isa A id=0 issue=1 default
regfile r count=2 zero=0
format I fields=imm:14:0:s
op X format=I match=opcode:1 sem=nop delay=1 syntax=imm
)");
  EXPECT_TRUE(m.formats[0].fields[0].is_signed);
}

struct BadAdlCase {
  const char* name;
  const char* text;
  const char* expect; ///< substring of the diagnostic
};

class AdlParserErrors : public ::testing::TestWithParam<BadAdlCase> {};

TEST_P(AdlParserErrors, Reports) {
  DiagEngine diags;
  parse_adl(GetParam().text, "bad.adl", diags);
  ASSERT_TRUE(diags.has_errors()) << GetParam().name;
  EXPECT_NE(diags.to_string().find(GetParam().expect), std::string::npos)
      << diags.to_string();
}

const char* with_prologue(const char* tail) {
  static std::string storage;
  storage = std::string(R"(
adl t
stopbit 31
opcodefield 30:25
isa A id=0 issue=1 default
regfile r count=4 zero=0
format R fields=rd:24:20,ra:19:15,rb:14:10,funct:9:4
)") + tail;
  return storage.c_str();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AdlParserErrors,
    ::testing::Values(
        BadAdlCase{"unknown_keyword", "frobnicate x\n", "unknown ADL keyword"},
        BadAdlCase{"dup_isa_id",
                   "adl t\nstopbit 31\nopcodefield 30:25\n"
                   "isa A id=0 issue=1 default\nisa B id=0 issue=2\n",
                   "duplicate ISA id"},
        BadAdlCase{"two_defaults",
                   "adl t\nstopbit 31\nopcodefield 30:25\n"
                   "isa A id=0 issue=1 default\nisa B id=1 issue=2 default\n",
                   "more than one default"},
        BadAdlCase{"bad_range", "format X fields=f:2:5\n", "malformed field range"},
        BadAdlCase{"overlap", "format X fields=a:10:5,b:7:2\n", "overlaps"},
        BadAdlCase{"stopbit_overlap", "format X fields=a:31:28\n", "overlaps"}),
    [](const ::testing::TestParamInfo<BadAdlCase>& info) { return info.param.name; });

TEST(AdlParserErrors, OpValidation) {
  { // unknown format
    DiagEngine d;
    parse_adl(with_prologue("op X format=Q match=opcode:1 sem=nop delay=1 syntax=\n"),
              "t", d);
    EXPECT_NE(d.to_string().find("unknown format"), std::string::npos);
  }
  { // missing opcode match
    DiagEngine d;
    parse_adl(with_prologue("op X format=R match=funct:1 sem=nop delay=1 syntax=\n"),
              "t", d);
    EXPECT_NE(d.to_string().find("missing opcode match"), std::string::npos);
  }
  { // bad read field
    DiagEngine d;
    parse_adl(with_prologue(
                  "op X format=R match=opcode:1 sem=nop delay=1 reads=zz syntax=\n"),
              "t", d);
    EXPECT_NE(d.to_string().find("read field"), std::string::npos);
  }
  { // mem op must use delay=mem
    DiagEngine d;
    parse_adl(with_prologue(
                  "op X format=R match=opcode:1 sem=nop delay=2 mem=load syntax=\n"),
              "t", d);
    EXPECT_NE(d.to_string().find("delay=mem"), std::string::npos);
  }
  { // unknown implicit register
    DiagEngine d;
    parse_adl(with_prologue(
                  "op X format=R match=opcode:1 sem=nop delay=1 iwrites=IP syntax=\n"),
              "t", d);
    EXPECT_NE(d.to_string().find("unknown implicit register"), std::string::npos);
  }
}

TEST(KisaAdl, ParsesCleanly) {
  DiagEngine diags;
  AdlModel m = parse_adl(isa::kisa_adl_text(), "kisa.adl", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  EXPECT_EQ(m.isas.size(), 5u);
  EXPECT_EQ(m.general_register_count(), 32);
  EXPECT_GE(m.operations.size(), 50u);
  // The paper's headline features must be present.
  EXPECT_NE(m.find_operation("SWITCHTARGET"), nullptr);
  EXPECT_NE(m.find_operation("SIMOP"), nullptr);
  EXPECT_EQ(m.find_isa("VLIW8")->issue_width, 8);
  EXPECT_EQ(m.find_isa("VLIW6")->id, 3);
}

} // namespace
} // namespace ksim::adl
