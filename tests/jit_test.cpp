// kjit — the dynamic binary translator (DESIGN.md §9) is, like the
// superblock engine it rides on, a pure performance optimization: with
// use_jit on or off every observable — exit code, output, architectural
// state, traps, traces, cycle approximations and the program-describing
// statistics — must be identical.  These tests pin that equivalence across
// workloads, ISA instances and mixed-ISA programs, and exercise the
// machinery itself: hotness promotion, guard bailouts (faults, division by
// zero), invalidation, and the hook exclusions that keep translated code
// off any instrumented path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "cycle/models.h"
#include "isa/kisa.h"
#include "jit/jit.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "sim/simulator.h"
#include "support/byte_stream.h"
#include "workloads/build.h"

namespace ksim::sim {
namespace {

SimOptions with_jit(bool on) {
  SimOptions opts;
  opts.use_jit = on;
  return opts;
}

/// The constructor normalizes use_jit against the KSIM_NO_JIT /
/// KSIM_NO_SUPERBLOCKS escape hatches and host support, so assertions about
/// translation activity only hold when the engine actually engages.
bool engine_available() {
  return Simulator(isa::kisa(), with_jit(true)).options().use_jit;
}

elf::ElfFile build_exe(const std::string& source,
                       const std::string& entry_isa = "RISC") {
  kasm::AsmOptions opt;
  opt.file_name = "jit_test.s";
  const elf::ElfFile user = kasm::assemble_or_throw(source, opt);
  const elf::ElfFile start =
      kasm::assemble_or_throw(kasm::start_stub_assembly(entry_isa));
  const elf::ElfFile libc = kasm::assemble_or_throw(kasm::libc_stub_assembly());
  kasm::LinkOptions link_opt;
  link_opt.entry_isa = isa::kisa().find_isa(entry_isa)->id;
  return kasm::link_or_throw({start, user, libc}, link_opt);
}

/// Asserts the observables of a finished run match between the translated
/// and the purely interpreted engine, down to the serialized ArchState.
void expect_equivalent(Simulator& jit, Simulator& interp) {
  EXPECT_EQ(jit.exit_code(), interp.exit_code());
  EXPECT_EQ(jit.libc().output(), interp.libc().output());
  EXPECT_EQ(jit.state().ip(), interp.state().ip());
  EXPECT_EQ(jit.state().isa_id(), interp.state().isa_id());
  for (unsigned r = 0; r < 32; ++r)
    EXPECT_EQ(jit.state().reg(r), interp.state().reg(r)) << "register r" << r;
  EXPECT_EQ(jit.stats().instructions, interp.stats().instructions);
  EXPECT_EQ(jit.stats().operations, interp.stats().operations);
  EXPECT_EQ(jit.stats().decodes, interp.stats().decodes);
  EXPECT_EQ(jit.stats().isa_switches, interp.stats().isa_switches);
  EXPECT_EQ(jit.stats().libc_calls, interp.stats().libc_calls);
  // Even the engine-internal accounting is replicated exactly: the jit
  // micro-loop mirrors dispatch, chain and prediction counting.
  EXPECT_EQ(jit.stats().blocks_formed, interp.stats().blocks_formed);
  EXPECT_EQ(jit.stats().block_dispatches, interp.stats().block_dispatches);
  EXPECT_EQ(jit.stats().block_chain_hits, interp.stats().block_chain_hits);
  EXPECT_EQ(jit.stats().pred_hits, interp.stats().pred_hits);
  // Strongest form: complete architectural states serialize identically
  // (registers, every RAM byte, IP ring, pending trap).
  support::ByteWriter wj, wi;
  jit.state().save(wj);
  interp.state().save(wi);
  EXPECT_EQ(wj.buffer(), wi.buffer());
}

TEST(Jit, WorkloadsBitIdenticalWithAndWithoutJit) {
  for (const workloads::Workload& w : workloads::all()) {
    SCOPED_TRACE(w.name);
    const elf::ElfFile exe = workloads::build_workload(w, "RISC");
    Simulator jit(isa::kisa(), with_jit(true));
    Simulator interp(isa::kisa(), with_jit(false));
    jit.load(exe);
    interp.load(exe);
    EXPECT_EQ(jit.run(), StopReason::Exited);
    EXPECT_EQ(interp.run(), StopReason::Exited);
    expect_equivalent(jit, interp);
    EXPECT_EQ(interp.stats().jit_blocks_translated, 0u);
    EXPECT_EQ(interp.stats().jit_dispatches, 0u);
  }
}

TEST(Jit, HotRiscWorkloadActuallyTranslates) {
  if (!engine_available()) GTEST_SKIP() << "jit engine unavailable";
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  Simulator sim(isa::kisa(), with_jit(true));
  sim.load(exe);
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_GT(sim.stats().jit_blocks_translated, 0u);
  EXPECT_GT(sim.stats().jit_dispatches, 0u);
  // The steady state runs translated: most dispatches go through host code.
  EXPECT_GT(sim.stats().jit_dispatches, sim.stats().block_dispatches / 2);
}

TEST(Jit, VliwWorkloadMatrixBitIdentical) {
  // The v2 translator compiles VLIW issue groups with two-phase bundle
  // semantics; every workload on every VLIW instance must stay bit-identical
  // to the interpreter — and must actually run translated, not fall back.
  uint64_t translated = 0;
  for (const char* isa : {"VLIW2", "VLIW4"}) {
    for (const workloads::Workload& w : workloads::all()) {
      SCOPED_TRACE(std::string(isa) + "/" + w.name);
      const elf::ElfFile exe = workloads::build_workload(w, isa);
      Simulator jit(isa::kisa(), with_jit(true));
      Simulator interp(isa::kisa(), with_jit(false));
      jit.load(exe);
      interp.load(exe);
      EXPECT_EQ(jit.run(), StopReason::Exited);
      EXPECT_EQ(interp.run(), StopReason::Exited);
      expect_equivalent(jit, interp);
      translated += jit.stats().jit_blocks_translated;
    }
  }
  if (engine_available()) EXPECT_GT(translated, 0u);
}

TEST(Jit, VliwHotWorkloadActuallyTranslates) {
  if (!engine_available()) GTEST_SKIP() << "jit engine unavailable";
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "VLIW4");
  Simulator sim(isa::kisa(), with_jit(true));
  sim.load(exe);
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_GT(sim.stats().jit_blocks_translated, 0u);
  // The steady state runs translated: most dispatches go through host code.
  EXPECT_GT(sim.stats().jit_dispatches, sim.stats().block_dispatches / 2);
}

TEST(Jit, IntraBundleReadBeforeWrite) {
  // A parallel register swap: both slots read the other's pre-bundle value.
  // A translator that committed slot results sequentially would collapse
  // both registers to the same value; two-phase commit must swap.  4001
  // (odd) iterations so the wrong answer cannot alias the right one.
  const std::string source = R"(
.isa VLIW2
.global main
main:
  addi r5, r0, 111
  addi r6, r0, 222
  addi r9, r0, 0
  li r8, 4001
loop:
  add r5, r6, r0 || add r6, r5, r0
  addi r9, r9, 1
  bne r9, r8, loop
  mv r4, r5
  ret
)";
  const elf::ElfFile exe = build_exe(source, "VLIW2");
  Simulator jit(isa::kisa(), with_jit(true));
  Simulator interp(isa::kisa(), with_jit(false));
  jit.load(exe);
  interp.load(exe);
  EXPECT_EQ(jit.run(), StopReason::Exited);
  EXPECT_EQ(interp.run(), StopReason::Exited);
  EXPECT_EQ(jit.exit_code(), 222);
  expect_equivalent(jit, interp);
  if (engine_available()) EXPECT_GT(jit.stats().jit_blocks_translated, 0u);
}

TEST(Jit, BundleLoadFaultBailsWithPreBundleState) {
  // The faulting load shares a bundle with an op that advances the address;
  // the guard must bail before *any* slot of the bundle commits, so the
  // interpreter re-executes from pre-bundle state and traps identically.
  const std::string source = R"(
.isa VLIW2
.global main
main:
  addi r5, r0, 0
  li r6, 100000
  li r8, 0
  li r10, 65536
loop:
  lw r9, 0(r8) || add r8, r8, r10
  addi r5, r5, 1
  bne r5, r6, loop
  ret
)";
  const elf::ElfFile exe = build_exe(source, "VLIW2");
  Simulator jit(isa::kisa(), with_jit(true));
  Simulator interp(isa::kisa(), with_jit(false));
  jit.load(exe);
  interp.load(exe);
  EXPECT_EQ(jit.run(), StopReason::Trap);
  EXPECT_EQ(interp.run(), StopReason::Trap);
  EXPECT_EQ(jit.stats().instructions, interp.stats().instructions);
  EXPECT_EQ(jit.state().ip(), interp.state().ip());
  EXPECT_EQ(jit.error_report(), interp.error_report());
  EXPECT_EQ(jit.ip_history(), interp.ip_history());
  for (unsigned r = 0; r < 32; ++r)
    EXPECT_EQ(jit.state().reg(r), interp.state().reg(r)) << "register r" << r;
  if (engine_available()) {
    EXPECT_GT(jit.stats().jit_dispatches, 0u);
    EXPECT_GT(jit.stats().jit_bailouts, 0u);
  }
}

TEST(Jit, BundleDivZeroBailsToInterpreterTrap) {
  const std::string source = R"(
.isa VLIW2
.global main
main:
  addi r5, r0, 200
  addi r9, r0, 0
loop:
  addi r5, r5, -1
  div r7, r5, r5 || addi r9, r9, 1
  bne r5, r0, loop
  ret
)";
  const elf::ElfFile exe = build_exe(source, "VLIW2");
  Simulator jit(isa::kisa(), with_jit(true));
  Simulator interp(isa::kisa(), with_jit(false));
  jit.load(exe);
  interp.load(exe);
  EXPECT_EQ(jit.run(), StopReason::Trap);
  EXPECT_EQ(interp.run(), StopReason::Trap);
  EXPECT_EQ(jit.stats().instructions, interp.stats().instructions);
  EXPECT_EQ(jit.state().ip(), interp.state().ip());
  EXPECT_EQ(jit.error_report(), interp.error_report());
  for (unsigned r = 0; r < 32; ++r)
    EXPECT_EQ(jit.state().reg(r), interp.state().reg(r)) << "register r" << r;
  if (engine_available()) EXPECT_GT(jit.stats().jit_bailouts, 0u);
}

TEST(Jit, VliwCheckpointBytesIdentical) {
  // The issue's strongest equivalence bar: complete simulator snapshots —
  // architectural state, caches, superblock graph, libc state, serialized
  // statistics — are byte-identical JIT on vs off, taken mid-run on a VLIW
  // workload (inline chains and bundle commits in full swing).
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "VLIW4");
  Simulator jit(isa::kisa(), with_jit(true));
  Simulator interp(isa::kisa(), with_jit(false));
  jit.load(exe);
  interp.load(exe);
  jit.set_max_instructions(50000);
  interp.set_max_instructions(50000);
  EXPECT_EQ(jit.run(), StopReason::InstructionLimit);
  EXPECT_EQ(interp.run(), StopReason::InstructionLimit);
  support::ByteWriter wj, wi;
  jit.save_state(wj);
  interp.save_state(wi);
  EXPECT_EQ(wj.buffer(), wi.buffer());
  jit.set_max_instructions(0);
  interp.set_max_instructions(0);
  EXPECT_EQ(jit.run(), StopReason::Exited);
  EXPECT_EQ(interp.run(), StopReason::Exited);
  expect_equivalent(jit, interp);
}

TEST(Jit, SimopFastPathsBitIdentical) {
  // rand/srand/malloc/free run inline in translated code (the narrowed
  // kJitSimop veto); the emulator state they mutate — LCG, heap cursor,
  // call counter — must advance exactly as the interpreter's handlers do.
  const std::string source = R"(
.global main
main:
  li r4, 99
  call srand
  addi r10, r0, 0
  li r11, 3000
  li r12, 0
loop:
  call rand
  add r12, r12, r4
  addi r4, r0, 24
  call malloc
  add r12, r12, r4
  call free
  addi r10, r10, 1
  bne r10, r11, loop
  srli r4, r12, 24
  call exit
)";
  const elf::ElfFile exe = build_exe(source);
  Simulator jit(isa::kisa(), with_jit(true));
  Simulator interp(isa::kisa(), with_jit(false));
  jit.load(exe);
  interp.load(exe);
  EXPECT_EQ(jit.run(), StopReason::Exited);
  EXPECT_EQ(interp.run(), StopReason::Exited);
  expect_equivalent(jit, interp);
  EXPECT_EQ(jit.libc().heap_used(), interp.libc().heap_used());
  support::ByteWriter wj, wi;
  jit.save_state(wj);
  interp.save_state(wi);
  EXPECT_EQ(wj.buffer(), wi.buffer());
  if (engine_available()) {
    EXPECT_GT(jit.stats().jit_blocks_translated, 0u);
    EXPECT_EQ(jit.stats().jit_bailouts, 0u); // fast paths never bail
  }
}

TEST(Jit, CacheExhaustionFlushesAndRewarms) {
  if (!engine_available()) GTEST_SKIP() << "jit engine unavailable";
  // A loop body far larger than a deliberately tiny code cache: translation
  // demand exceeds the arena every few blocks, so the engine must flush and
  // re-warm (not permanently decline) — and stay bit-identical throughout.
  std::string source = ".global main\nmain:\n  addi r5, r0, 0\n  li r6, 100\nloop:\n";
  for (int i = 0; i < 1200; ++i) source += "  addi r7, r7, 1\n";
  source += "  addi r5, r5, 1\n  bne r5, r6, loop\n  mv r4, r5\n  ret\n";
  const elf::ElfFile exe = build_exe(source);
  Simulator jit(isa::kisa(), with_jit(true));
  Simulator interp(isa::kisa(), with_jit(false));
  jit.set_jit_cache_budget(4096, 4096);
  jit.load(exe);
  interp.load(exe);
  EXPECT_EQ(jit.run(), StopReason::Exited);
  EXPECT_EQ(interp.run(), StopReason::Exited);
  EXPECT_EQ(jit.exit_code(), 100);
  expect_equivalent(jit, interp);
  EXPECT_GT(jit.stats().jit_cache_flushes, 0u);
  // Re-warming means translation kept happening after the first flush.
  EXPECT_GT(jit.stats().jit_blocks_translated, jit.stats().jit_cache_flushes);
  EXPECT_GT(jit.stats().jit_dispatches, 0u);
}

TEST(Jit, ChainedBlocksInvalidateAndRepatch) {
  if (!engine_available()) GTEST_SKIP() << "jit engine unavailable";
  // Two alternating hot blocks chain inline (patched direct jmps); a
  // mid-run invalidation must unlink every patch together with the code,
  // and the resumed run must re-translate, re-patch and finish with the
  // same results as an uninterrupted one.
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  li r6, 20000
loop:
  addi r5, r5, 1
  andi r8, r5, 1
  bne r8, r0, odd
  addi r9, r9, 2
  j next
odd:
  addi r9, r9, 1
next:
  bne r5, r6, loop
  mv r4, r0
  ret
)";
  const elf::ElfFile exe = build_exe(source);
  Simulator interrupted(isa::kisa(), with_jit(true));
  interrupted.load(exe);
  interrupted.set_max_instructions(40000);
  EXPECT_EQ(interrupted.run(), StopReason::InstructionLimit);
  EXPECT_GT(interrupted.stats().jit_blocks_translated, 0u);
  EXPECT_GT(interrupted.stats().block_chain_hits, 0u);
  const uint64_t translated_before = interrupted.stats().jit_blocks_translated;

  interrupted.clear_decode_cache(); // drops code, chain patches and blocks
  interrupted.set_max_instructions(0);
  EXPECT_EQ(interrupted.run(), StopReason::Exited);
  EXPECT_GT(interrupted.stats().jit_blocks_translated, translated_before);

  Simulator straight(isa::kisa(), with_jit(true));
  straight.load(exe);
  EXPECT_EQ(straight.run(), StopReason::Exited);
  Simulator interp(isa::kisa(), with_jit(false));
  interp.load(exe);
  EXPECT_EQ(interp.run(), StopReason::Exited);
  EXPECT_EQ(interrupted.exit_code(), straight.exit_code());
  EXPECT_EQ(interrupted.stats().instructions, straight.stats().instructions);
  for (unsigned r = 0; r < 32; ++r)
    EXPECT_EQ(interrupted.state().reg(r), straight.state().reg(r));
  expect_equivalent(straight, interp);
}

TEST(Jit, MixedIsaProgramBitIdentical) {
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 500
outer:
  switchtarget VLIW4
.isa VLIW4
  addi r5, r5, 1 || addi r7, r0, 2
  mul r7, r7, r5
  switchtarget RISC
.isa RISC
  bne r5, r6, outer
  srli r7, r7, 2
  add r4, r5, r7
  ret
)";
  const elf::ElfFile exe = build_exe(source);
  Simulator jit(isa::kisa(), with_jit(true));
  Simulator interp(isa::kisa(), with_jit(false));
  jit.load(exe);
  interp.load(exe);
  EXPECT_EQ(jit.run(), StopReason::Exited);
  EXPECT_EQ(interp.run(), StopReason::Exited);
  EXPECT_EQ(jit.exit_code(), 750);
  expect_equivalent(jit, interp);
  EXPECT_EQ(jit.stats().isa_switches, 1000u);
}

TEST(Jit, CycleModelsIdenticalAndExcludedFromTranslation) {
  // A cycle model needs per-operation callbacks, so translated code must
  // never dispatch under one — and cycles must match the jit-off run.
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  for (const char kind : {'i', 'a', 'd'}) {
    SCOPED_TRACE(kind);
    uint64_t cycles[2];
    for (const bool jit_on : {true, false}) {
      cycle::MemoryHierarchy memory;
      cycle::IlpModel ilp;
      cycle::AieModel aie(&memory);
      cycle::DoeModel doe(&memory);
      cycle::CycleModel* model = kind == 'i' ? static_cast<cycle::CycleModel*>(&ilp)
                                 : kind == 'a' ? static_cast<cycle::CycleModel*>(&aie)
                                               : static_cast<cycle::CycleModel*>(&doe);
      Simulator sim(isa::kisa(), with_jit(jit_on));
      sim.load(exe);
      sim.set_cycle_model(model);
      EXPECT_EQ(sim.run(), StopReason::Exited);
      EXPECT_EQ(sim.stats().jit_dispatches, 0u);
      cycles[jit_on ? 0 : 1] = model->cycles();
    }
    EXPECT_EQ(cycles[0], cycles[1]);
  }
}

TEST(Jit, TraceHookSuppressesTranslationAndOutputIdentical) {
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 2000
loop:
  addi r5, r5, 1
  mul r7, r5, r5
  bne r5, r6, loop
  mv r4, r0
  ret
)";
  const elf::ElfFile exe = build_exe(source);
  std::string traces[2];
  for (const bool jit_on : {true, false}) {
    Simulator sim(isa::kisa(), with_jit(jit_on));
    sim.load(exe);
    std::ostringstream os;
    TraceWriter trace(os);
    sim.set_trace(&trace);
    EXPECT_EQ(sim.run(), StopReason::Exited);
    EXPECT_EQ(sim.stats().jit_dispatches, 0u); // tracing is per-instruction
    traces[jit_on ? 0 : 1] = os.str();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(Jit, ColdBlocksStayInterpreted) {
  // Eight iterations never reach the hotness threshold: nothing translates,
  // but the run still completes through the interpreter.
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 8
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  mv r4, r5
  ret
)";
  Simulator sim(isa::kisa(), with_jit(true));
  sim.load(build_exe(source));
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_EQ(sim.exit_code(), 8);
  EXPECT_EQ(sim.stats().jit_blocks_translated, 0u);
  EXPECT_EQ(sim.stats().jit_dispatches, 0u);
}

TEST(Jit, HotLoopPromotesAtThreshold) {
  if (!engine_available()) GTEST_SKIP() << "jit engine unavailable";
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  li r6, 5000
loop:
  addi r5, r5, 1
  addi r7, r5, 3
  xor r8, r7, r5
  bne r5, r6, loop
  mv r4, r0
  ret
)";
  Simulator sim(isa::kisa(), with_jit(true));
  sim.load(build_exe(source));
  EXPECT_EQ(sim.run(), StopReason::Exited);
  const SimStats& s = sim.stats();
  EXPECT_GT(s.jit_blocks_translated, 0u);
  // Dispatches before the threshold stay interpreted; everything after the
  // promotion runs as host code.
  EXPECT_GT(s.jit_dispatches, s.block_dispatches - 2 * jit::kHotThreshold -
                                  2 * s.jit_blocks_translated);
  EXPECT_EQ(s.jit_bailouts, 0u);
}

TEST(Jit, GuardBailoutOnLoadFaultMatchesInterpreter) {
  // The load address marches out of RAM while the loop is hot: the
  // translated block's range guard fails, the bailout hands the partially
  // executed block to the interpreter, and the interpreter raises the same
  // trap at the same instruction count as a jit-off run.
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  li r6, 100000
  li r8, 0
  li r10, 65536
loop:
  lw r9, 0(r8)
  add r8, r8, r10
  addi r5, r5, 1
  bne r5, r6, loop
  ret
)";
  const elf::ElfFile exe = build_exe(source);
  Simulator jit(isa::kisa(), with_jit(true));
  Simulator interp(isa::kisa(), with_jit(false));
  jit.load(exe);
  interp.load(exe);
  EXPECT_EQ(jit.run(), StopReason::Trap);
  EXPECT_EQ(interp.run(), StopReason::Trap);
  EXPECT_EQ(jit.stats().instructions, interp.stats().instructions);
  EXPECT_EQ(jit.state().ip(), interp.state().ip());
  EXPECT_EQ(jit.error_report(), interp.error_report());
  EXPECT_EQ(jit.ip_history(), interp.ip_history());
  if (engine_available()) {
    EXPECT_GT(jit.stats().jit_dispatches, 0u);
    EXPECT_GT(jit.stats().jit_bailouts, 0u);
  }
}

TEST(Jit, DivisionByZeroBailsToInterpreterTrap)  {
  // The divisor reaches zero only after the block is hot; the zero-divisor
  // guard bails and the interpreter's trap semantics apply unchanged.
  const std::string source = R"(
.global main
main:
  addi r5, r0, 200
loop:
  addi r5, r5, -1
  div r7, r5, r5      # 1 while r5 != 0; 0/0 traps on the last iteration
  bne r5, r0, loop
  ret
)";
  const elf::ElfFile exe = build_exe(source);
  Simulator jit(isa::kisa(), with_jit(true));
  Simulator interp(isa::kisa(), with_jit(false));
  jit.load(exe);
  interp.load(exe);
  EXPECT_EQ(jit.run(), StopReason::Trap);
  EXPECT_EQ(interp.run(), StopReason::Trap);
  EXPECT_EQ(jit.stats().instructions, interp.stats().instructions);
  EXPECT_EQ(jit.state().ip(), interp.state().ip());
  EXPECT_EQ(jit.error_report(), interp.error_report());
  if (engine_available()) EXPECT_GT(jit.stats().jit_bailouts, 0u);
}

TEST(Jit, InvalidationDropsTranslationsAndRetranslates) {
  if (!engine_available()) GTEST_SKIP() << "jit engine unavailable";
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  li r6, 10000
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  mv r4, r5
  ret
)";
  const elf::ElfFile exe = build_exe(source);
  Simulator interrupted(isa::kisa(), with_jit(true));
  interrupted.load(exe);
  interrupted.set_max_instructions(5000);
  EXPECT_EQ(interrupted.run(), StopReason::InstructionLimit);
  const uint64_t translated_before = interrupted.stats().jit_blocks_translated;
  EXPECT_GT(translated_before, 0u);

  // Invalidation drops every superblock, cached decode and translation; the
  // resumed run re-forms and re-translates, and results are unchanged.
  interrupted.clear_decode_cache();
  interrupted.set_max_instructions(0);
  EXPECT_EQ(interrupted.run(), StopReason::Exited);
  EXPECT_GT(interrupted.stats().jit_blocks_translated, translated_before);

  Simulator straight(isa::kisa(), with_jit(true));
  straight.load(exe);
  EXPECT_EQ(straight.run(), StopReason::Exited);
  EXPECT_EQ(interrupted.exit_code(), straight.exit_code());
  EXPECT_EQ(interrupted.stats().instructions, straight.stats().instructions);
  for (unsigned r = 0; r < 32; ++r)
    EXPECT_EQ(interrupted.state().reg(r), straight.state().reg(r));
}

TEST(Jit, InstructionLimitExactUnderTranslation) {
  // The limit falls mid-hot-loop: translated blocks refuse dispatch without
  // full budget, so the count is hit exactly, never overshot.
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  li r6, 100000
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  mv r4, r5
  ret
)";
  Simulator sim(isa::kisa(), with_jit(true));
  sim.load(build_exe(source));
  sim.set_max_instructions(7777);
  EXPECT_EQ(sim.run(), StopReason::InstructionLimit);
  EXPECT_EQ(sim.stats().instructions, 7777u);
}

TEST(Jit, OpStatsHookSuppressesTranslation) {
  SimOptions opts = with_jit(true);
  opts.collect_op_stats = true;
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  Simulator sim(isa::kisa(), opts);
  sim.load(exe);
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_EQ(sim.stats().jit_dispatches, 0u);
  uint64_t ops = 0;
  for (const auto& [op, count] : sim.op_histogram()) ops += count;
  EXPECT_EQ(ops, sim.stats().operations);
}

TEST(Jit, DisabledEngineTranslatesNothing) {
  Simulator sim(isa::kisa(), with_jit(false));
  sim.load(build_exe(R"(
.global main
main:
  addi r4, r0, 7
  ret
)"));
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_EQ(sim.exit_code(), 7);
  EXPECT_EQ(sim.stats().jit_blocks_translated, 0u);
  EXPECT_EQ(sim.stats().jit_dispatches, 0u);
  EXPECT_EQ(sim.stats().jit_bailouts, 0u);
}

} // namespace
} // namespace ksim::sim
