#include <gtest/gtest.h>

#include "cycle/mem_hierarchy.h"
#include "cycle/models.h"
#include "isa/kisa.h"
#include "support/error.h"
#include "support/prng.h"
#include "support/strings.h"

namespace ksim::cycle {
namespace {

// -- MainMemory ----------------------------------------------------------------

TEST(MainMemory, FixedDelay) {
  MainMemory mem(18);
  EXPECT_EQ(mem.access(0x1000, AccessType::Read, 0, 100), 118u);
  EXPECT_EQ(mem.access(0x2000, AccessType::Write, 3, 0), 18u);
  EXPECT_EQ(mem.stats().accesses, 2u);
  mem.reset();
  EXPECT_EQ(mem.stats().accesses, 0u);
}

// -- CacheModule ----------------------------------------------------------------

CacheConfig small_cache() {
  CacheConfig c;
  c.size_bytes = 256;
  c.line_size = 32;
  c.associativity = 2; // 4 sets
  c.delay = 3;
  c.name = "L1";
  return c;
}

TEST(Cache, MissThenHit) {
  MainMemory mem(18);
  CacheModule cache(small_cache(), &mem);
  // Miss: 3 (lookup) + 18 (memory) + 3 (fill) = 24.
  EXPECT_EQ(cache.access(0x100, AccessType::Read, 0, 0), 24u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // Hit afterwards: start + delay, but never before the line was filled.
  EXPECT_EQ(cache.access(0x104, AccessType::Read, 0, 100), 103u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, HitWaitsForLineFill) {
  // Out-of-order call support (§VI-D): a "later" access that executes first
  // fills the line at cycle X; an earlier-cycle hit must not complete before X.
  MainMemory mem(18);
  CacheModule cache(small_cache(), &mem);
  const uint64_t fill = cache.access(0x100, AccessType::Read, 0, 50); // 74
  EXPECT_EQ(fill, 74u);
  // A hit with start cycle 0 completes no earlier than the fill cycle.
  EXPECT_EQ(cache.access(0x108, AccessType::Read, 0, 0), fill);
}

TEST(Cache, WriteBackOfDirtyVictim) {
  MainMemory mem(18);
  CacheModule cache(small_cache(), &mem);
  // Write-allocate a line and dirty it (set 0: addr bits [6:5] choose set).
  cache.access(0x000, AccessType::Write, 0, 0);
  // Fill the second way of set 0.
  cache.access(0x080, AccessType::Read, 0, 100);
  EXPECT_EQ(cache.stats().writebacks, 0u);
  // Third distinct line in set 0 evicts the dirty line → write-back.
  const uint64_t t = cache.access(0x100, AccessType::Read, 0, 200);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  // 3 (lookup) + 18 (fetch) + 18 (write-back) + 3 (fill) = 242.
  EXPECT_EQ(t, 242u);
}

TEST(Cache, LruReplacement) {
  MainMemory mem(18);
  CacheModule cache(small_cache(), &mem);
  cache.access(0x000, AccessType::Read, 0, 0);   // way A
  cache.access(0x080, AccessType::Read, 0, 50);  // way B
  cache.access(0x000, AccessType::Read, 0, 100); // touch A → B is LRU
  cache.access(0x100, AccessType::Read, 0, 150); // evicts B
  EXPECT_EQ(cache.stats().misses, 3u);
  // A must still hit.
  const uint64_t before_hits = cache.stats().hits;
  cache.access(0x000, AccessType::Read, 0, 200);
  EXPECT_EQ(cache.stats().hits, before_hits + 1);
  // B must miss again.
  cache.access(0x080, AccessType::Read, 0, 250);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(Cache, RejectsBadGeometry) {
  MainMemory mem(18);
  CacheConfig bad = small_cache();
  bad.size_bytes = 100; // not a power of two
  EXPECT_THROW(CacheModule(bad, &mem), Error);
  CacheConfig bad2 = small_cache();
  bad2.line_size = 24;
  EXPECT_THROW(CacheModule(bad2, &mem), Error);
}

struct CacheSweepParam {
  uint32_t size;
  uint32_t line;
  uint32_t assoc;
};

class CacheSweep : public ::testing::TestWithParam<CacheSweepParam> {};

TEST_P(CacheSweep, SequentialSweepMissesOncePerLine) {
  // Property: streaming over exactly the cache's capacity misses once per
  // line on the first pass and hits everywhere on the second.
  MainMemory mem(10);
  CacheConfig cfg;
  cfg.size_bytes = GetParam().size;
  cfg.line_size = GetParam().line;
  cfg.associativity = GetParam().assoc;
  cfg.delay = 1;
  CacheModule cache(cfg, &mem);
  uint64_t now = 0;
  for (uint32_t a = 0; a < cfg.size_bytes; a += 4)
    now = cache.access(a, AccessType::Read, 0, now);
  EXPECT_EQ(cache.stats().misses, cfg.size_bytes / cfg.line_size);
  const uint64_t misses_after_pass1 = cache.stats().misses;
  for (uint32_t a = 0; a < cfg.size_bytes; a += 4)
    now = cache.access(a, AccessType::Read, 0, now);
  EXPECT_EQ(cache.stats().misses, misses_after_pass1);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(CacheSweepParam{2048, 32, 4}, CacheSweepParam{1024, 16, 2},
                      CacheSweepParam{4096, 64, 8}, CacheSweepParam{512, 32, 1},
                      CacheSweepParam{256 * 1024, 32, 4}),
    [](const ::testing::TestParamInfo<CacheSweepParam>& info) {
      return strf("s%u_l%u_a%u", info.param.size, info.param.line, info.param.assoc);
    });

TEST(Cache, ThrashingSetExceedsAssociativity) {
  // 3 lines mapping to the same set of a 2-way cache never stop missing.
  MainMemory mem(10);
  CacheModule cache(small_cache(), &mem); // 4 sets → same set every 0x80
  uint64_t now = 0;
  for (int round = 0; round < 10; ++round)
    for (uint32_t a : {0x000u, 0x080u, 0x100u})
      now = cache.access(a, AccessType::Read, 0, now);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 30u);
}

// -- ConnectionLimit ---------------------------------------------------------------

TEST(ConnectionLimit, SerializesOverlappingAccesses) {
  MainMemory mem(5);
  ConnectionLimit limit(1, &mem);
  // Two accesses starting at the same cycle: the second must shift by 1.
  const uint64_t c1 = limit.access(0x0, AccessType::Read, 0, 10);
  const uint64_t c2 = limit.access(0x4, AccessType::Read, 1, 10);
  EXPECT_EQ(c1, 15u);
  // Start pushed to 11, completion 16 (and the completion port is free).
  EXPECT_EQ(c2, 16u);
  EXPECT_GT(limit.stats().port_stalls, 0u);
}

TEST(ConnectionLimit, MultiplePortsAllowParallelism) {
  MainMemory mem(5);
  ConnectionLimit limit(2, &mem);
  const uint64_t c1 = limit.access(0x0, AccessType::Read, 0, 10);
  const uint64_t c2 = limit.access(0x4, AccessType::Read, 1, 10);
  EXPECT_EQ(c1, 15u);
  // Same start cycle fits within 2 ports; both completions land on 15 and
  // also fit within 2 ports.
  EXPECT_EQ(c2, 15u);
  EXPECT_EQ(limit.stats().port_stalls, 0u);
}

TEST(ConnectionLimit, CompletionCyclePortIsChecked) {
  // The same mechanism applies to the completion cycle (paper §VI-D).
  MainMemory mem(5);
  ConnectionLimit limit(1, &mem);
  limit.access(0x0, AccessType::Read, 0, 10);  // occupies start 10, completion 15
  // An access starting at 15 must shift: cycle 15 is taken by the completion.
  const uint64_t c = limit.access(0x4, AccessType::Read, 0, 15);
  EXPECT_EQ(c, 21u); // start 16 → completion 21
}

TEST(ConnectionLimit, PropertyNeverMoreThanPortsPerCycle) {
  // Property test: random accesses; reconstruct per-cycle port usage from
  // completions and starts — but the module's invariant is internal, so we
  // check the observable: with 1 port, all granted (start, completion) cycles
  // are pairwise distinct.
  MainMemory mem(0x7); // odd delay spreads completions
  ConnectionLimit limit(1, &mem);
  Prng prng(123);
  std::vector<uint64_t> completions;
  for (int i = 0; i < 200; ++i) {
    const uint64_t start = prng.next_below(500);
    completions.push_back(limit.access(prng.next_u32(), AccessType::Read, 0, start));
  }
  std::sort(completions.begin(), completions.end());
  EXPECT_TRUE(std::adjacent_find(completions.begin(), completions.end()) ==
              completions.end());
}

// -- MemoryHierarchy --------------------------------------------------------------

TEST(MemoryHierarchy, PaperConfiguration) {
  MemoryHierarchy h;
  EXPECT_EQ(h.l1().config().size_bytes, 2048u);
  EXPECT_EQ(h.l1().config().associativity, 4u);
  EXPECT_EQ(h.l1().config().delay, 3u);
  EXPECT_EQ(h.l2().config().size_bytes, 256u * 1024u);
  EXPECT_EQ(h.l2().config().delay, 6u);

  // Cold access goes through all three levels:
  // L1: 3 + (L2: 6 + (mem: 18) + 6) + 3 = 36.
  EXPECT_EQ(h.entry().access(0x4000, AccessType::Read, 0, 0), 36u);
  // Warm access: 3 cycles.
  const uint64_t t = h.entry().access(0x4000, AccessType::Read, 0, 1000);
  EXPECT_EQ(t, 1003u);
  h.reset();
  EXPECT_EQ(h.l1().stats().accesses, 0u);
}

// -- cycle models -------------------------------------------------------------------

/// Builds a synthetic decoded instruction from op names and register triples.
struct SynthOp {
  const char* name;
  uint8_t rd, ra, rb;
  int32_t imm = 0;
};

isa::DecodedInstr make_instr(std::initializer_list<SynthOp> ops) {
  isa::DecodedInstr di;
  di.num_ops = 0;
  for (const SynthOp& s : ops) {
    const isa::OpInfo* info = isa::kisa().find_op(s.name);
    EXPECT_NE(info, nullptr) << s.name;
    isa::DecodedOp& op = di.ops[di.num_ops++];
    op.info = info;
    op.fn = info->fn;
    op.rd = s.rd;
    op.ra = s.ra;
    op.rb = s.rb;
    op.imm = s.imm;
  }
  di.size_bytes = static_cast<uint8_t>(di.num_ops * 4);
  return di;
}

isa::ExecCtx make_ctx() {
  isa::ExecCtx ctx;
  ctx.begin_instruction(0);
  return ctx;
}

TEST(IlpModel, IndependentOpsOverlapDependentOnesDoNot) {
  IlpModel model;
  auto ctx = make_ctx();
  // Three independent adds: all start at cycle 0, complete at 1.
  model.on_instruction(make_instr({{"ADD", 5, 1, 2}}), ctx);
  model.on_instruction(make_instr({{"ADD", 6, 1, 2}}), ctx);
  model.on_instruction(make_instr({{"ADD", 7, 1, 2}}), ctx);
  EXPECT_EQ(model.cycles(), 1u);
  EXPECT_DOUBLE_EQ(model.ilp(), 3.0);
  // A dependent chain serializes.
  model.on_instruction(make_instr({{"ADD", 8, 5, 6}}), ctx);  // needs 5,6 → start 1
  model.on_instruction(make_instr({{"ADD", 9, 8, 7}}), ctx);  // needs 8 → start 2
  EXPECT_EQ(model.cycles(), 3u);
}

TEST(IlpModel, BranchFormsSchedulingBarrier) {
  IlpModel model;
  auto ctx = make_ctx();
  model.on_instruction(make_instr({{"ADD", 5, 1, 2}}), ctx);   // completes 1
  model.on_instruction(make_instr({{"BEQ", 0, 3, 4}}), ctx);   // completes 1
  // Independent op after the branch cannot start before the branch completes.
  model.on_instruction(make_instr({{"ADD", 6, 1, 2}}), ctx);
  EXPECT_EQ(model.cycles(), 2u);
}

TEST(IlpModel, PessimisticStoreOrdering) {
  IlpModel model;
  auto ctx = make_ctx();
  // A store whose address depends on a long chain.
  model.on_instruction(make_instr({{"MUL", 5, 1, 2}}), ctx);   // completes 3
  auto st = make_instr({{"SW", 6, 5, 0}});
  ctx.mem[0] = {0x100, 4, true, true};
  model.on_instruction(st, ctx);                                // starts 3
  // An unrelated load still waits for the store's *start* cycle.
  auto ld = make_instr({{"LW", 7, 1, 0}});
  ctx.mem[0] = {0x200, 4, false, true};
  model.on_instruction(ld, ctx);
  // Load start = 3 (store start), completes 3 + 3 (ideal memory delay) = 6.
  EXPECT_EQ(model.cycles(), 6u);
}

TEST(IlpModel, MemoryDelayIsConfigurable) {
  IlpModel fast(1);
  auto ctx = make_ctx();
  auto ld = make_instr({{"LW", 7, 1, 0}});
  ctx.mem[0] = {0x200, 4, false, true};
  fast.on_instruction(ld, ctx);
  EXPECT_EQ(fast.cycles(), 1u);
}

TEST(AieModel, InstructionsFullySerialize) {
  MemoryHierarchy mem;
  AieModel model(&mem);
  auto ctx = make_ctx();
  // Independent ALU ops still execute one instruction after the other.
  model.on_instruction(make_instr({{"ADD", 5, 1, 2}}), ctx);
  model.on_instruction(make_instr({{"ADD", 6, 1, 2}}), ctx);
  EXPECT_EQ(model.cycles(), 2u);
  // A VLIW group's delay is the max of its operations (MUL = 3).
  model.on_instruction(make_instr({{"ADD", 7, 1, 2}, {"MUL", 8, 1, 2}}), ctx);
  EXPECT_EQ(model.cycles(), 5u);
  EXPECT_EQ(model.operations(), 4u);
}

TEST(DoeModel, SlotsDriftIndependently) {
  MemoryHierarchy mem;
  DoeModel model(&mem);
  auto ctx = make_ctx();
  // Slot 0 carries a dependence chain; slot 1 carries independent work.
  // Slot 1 keeps issuing one op per cycle regardless of slot 0's stalls.
  model.on_instruction(make_instr({{"MUL", 5, 1, 2}, {"ADD", 10, 1, 2}}), ctx);
  model.on_instruction(make_instr({{"MUL", 6, 5, 2}, {"ADD", 11, 1, 2}}), ctx);
  model.on_instruction(make_instr({{"MUL", 7, 6, 2}, {"ADD", 12, 1, 2}}), ctx);
  // Slot 0: issues at 1, 4, 7 → completes 10. Slot 1: issues 1,2,3.
  EXPECT_EQ(model.cycles(), 10u);
}

TEST(DoeModel, OneIssuePerSlotPerCycle) {
  MemoryHierarchy mem;
  DoeModel model(&mem);
  auto ctx = make_ctx();
  // Fully independent single-op instructions: the single slot still limits
  // issue to one per cycle.
  for (int i = 0; i < 10; ++i)
    model.on_instruction(make_instr({{"ADD", static_cast<uint8_t>(5 + i), 1, 2}}), ctx);
  EXPECT_EQ(model.cycles(), 11u); // issues at 1..10, each completes +1
}

TEST(DoeModel, MemoryGoesThroughTheHierarchy) {
  MemoryHierarchy mem;
  DoeModel model(&mem);
  auto ctx = make_ctx();
  auto ld = make_instr({{"LW", 7, 1, 0}});
  ctx.mem[0] = {0x4000, 4, false, true};
  model.on_instruction(ld, ctx);
  EXPECT_EQ(mem.l1().stats().misses, 1u);
  EXPECT_GT(model.cycles(), 30u); // cold miss through L1+L2+memory
}

TEST(Models, ResetClearsState) {
  MemoryHierarchy mem;
  DoeModel doe(&mem);
  IlpModel ilp;
  AieModel aie(&mem);
  auto ctx = make_ctx();
  for (CycleModel* m : std::initializer_list<CycleModel*>{&doe, &ilp, &aie}) {
    m->on_instruction(make_instr({{"ADD", 5, 1, 2}}), ctx);
    EXPECT_GT(m->cycles(), 0u) << m->name();
    m->reset();
    EXPECT_EQ(m->cycles(), 0u) << m->name();
    EXPECT_EQ(m->operations(), 0u) << m->name();
  }
}

} // namespace
} // namespace ksim::cycle
