// Property-based tests across module boundaries: encoder/decoder round
// trips with randomized operands, ELF robustness against corrupted inputs,
// randomized MiniC expression evaluation against a host-compiled oracle.
#include <gtest/gtest.h>

#include <functional>

#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/disasm.h"
#include "sim/simulator.h"
#include "support/bits.h"
#include "support/error.h"
#include "support/prng.h"
#include "support/strings.h"
#include "workloads/build.h"

namespace ksim {
namespace {

// -- encode → detect → extract round trip over every operation -------------------

TEST(Property, EncodeDetectExtractRoundTripAllOps) {
  const isa::IsaSet& set = isa::kisa();
  const isa::IsaInfo& risc = *set.find_isa("RISC");
  Prng prng(2024);

  for (const isa::OpInfo* op : set.all_ops()) {
    for (int trial = 0; trial < 32; ++trial) {
      uint32_t word = op->match_bits | (1u << set.stop_bit());
      const uint32_t rd = prng.next_below(32);
      const uint32_t ra = prng.next_below(32);
      const uint32_t rb = prng.next_below(32);
      uint32_t imm = 0;
      if (op->f_rd.valid) word = insert_bits(word, op->f_rd.hi, op->f_rd.lo, rd);
      if (op->f_ra.valid) word = insert_bits(word, op->f_ra.hi, op->f_ra.lo, ra);
      if (op->f_rb.valid) word = insert_bits(word, op->f_rb.hi, op->f_rb.lo, rb);
      if (op->f_imm.valid) {
        const unsigned width = op->f_imm.hi - op->f_imm.lo + 1u;
        imm = prng.next_u32() & ((width >= 32 ? 0xFFFFFFFFu : (1u << width) - 1u));
        word = insert_bits(word, op->f_imm.hi, op->f_imm.lo, imm);
      }

      // Detection must still identify the operation regardless of operands.
      ASSERT_EQ(set.detect(risc, word), op) << op->name;
      // Field extraction must return what was inserted.
      if (op->f_rd.valid) EXPECT_EQ(op->f_rd.extract(word), rd);
      if (op->f_ra.valid) EXPECT_EQ(op->f_ra.extract(word), ra);
      if (op->f_rb.valid) EXPECT_EQ(op->f_rb.extract(word), rb);
      if (op->f_imm.valid) {
        const unsigned width = op->f_imm.hi - op->f_imm.lo + 1u;
        const uint32_t extracted = op->f_imm.extract(word);
        if (op->f_imm.is_signed)
          EXPECT_EQ(static_cast<int32_t>(extracted), sign_extend(imm, width));
        else
          EXPECT_EQ(extracted, imm);
      }
    }
  }
}

TEST(Property, DisassembleReassembleRoundTrip) {
  // Disassembling an encodable operation and re-assembling its text must
  // reproduce the original word (for ops whose syntax covers all fields).
  const isa::IsaSet& set = isa::kisa();
  const isa::IsaInfo& risc = *set.find_isa("RISC");
  Prng prng(77);

  for (const isa::OpInfo* op : set.all_ops()) {
    // Only fields that appear in the op's assembly syntax round-trip through
    // text; branch/jump immediates encode label addresses and are skipped.
    if (op->reloc != adl::RelocKind::None) continue;
    bool uses_rd = false;
    bool uses_ra = false;
    bool uses_rb = false;
    bool uses_imm = false;
    for (const std::string& tok : op->syntax) {
      uses_rd |= tok == "rd";
      uses_ra |= tok == "ra" || tok == "imm(ra)";
      uses_rb |= tok == "rb";
      uses_imm |= tok == "imm" || tok == "imm(ra)";
    }
    for (int trial = 0; trial < 8; ++trial) {
      uint32_t word = op->match_bits | (1u << set.stop_bit());
      if (uses_rd)
        word = insert_bits(word, op->f_rd.hi, op->f_rd.lo, prng.next_below(32));
      if (uses_ra)
        word = insert_bits(word, op->f_ra.hi, op->f_ra.lo, prng.next_below(32));
      if (uses_rb)
        word = insert_bits(word, op->f_rb.hi, op->f_rb.lo, prng.next_below(32));
      if (uses_imm && op->name != "SWITCHTARGET" && op->name != "SIMOP") {
        const unsigned width = op->f_imm.hi - op->f_imm.lo + 1u;
        word = insert_bits(word, op->f_imm.hi, op->f_imm.lo,
                           prng.next_u32() & ((1u << width) - 1u));
      }

      const std::string text = kasm::disassemble_op(set, risc, word);
      const elf::ElfFile obj = kasm::assemble_or_throw(text + "\n");
      const elf::Section* textsec = obj.find_section(".text");
      ASSERT_NE(textsec, nullptr);
      ASSERT_EQ(textsec->data.size(), 4u) << op->name << ": " << text;
      uint32_t reassembled = 0;
      for (int b = 3; b >= 0; --b)
        reassembled = (reassembled << 8) | textsec->data[static_cast<size_t>(b)];
      EXPECT_EQ(reassembled, word) << op->name << ": " << text;
    }
  }
}

// -- ELF robustness ------------------------------------------------------------------

TEST(Property, CorruptedElfNeverCrashes) {
  // Flip bytes all over a valid executable; parsing must either succeed or
  // throw ksim::Error — never crash or hang.
  const elf::ElfFile good =
      workloads::build_executable("int main() { return 0; }", "RISC");
  const std::vector<uint8_t> bytes = good.serialize();
  Prng prng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> corrupt = bytes;
    const int flips = 1 + static_cast<int>(prng.next_below(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = prng.next_below(static_cast<uint32_t>(corrupt.size()));
      corrupt[pos] ^= static_cast<uint8_t>(1u << prng.next_below(8));
    }
    try {
      const elf::ElfFile parsed = elf::ElfFile::parse(corrupt);
      (void)parsed;
    } catch (const Error&) {
      // rejected — fine
    }
  }
}

TEST(Property, TruncatedElfNeverCrashes) {
  const elf::ElfFile good =
      workloads::build_executable("int main() { return 0; }", "RISC");
  const std::vector<uint8_t> bytes = good.serialize();
  for (size_t len = 0; len < bytes.size(); len += 7) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<long>(len));
    try {
      elf::ElfFile::parse(cut);
    } catch (const Error&) {
    }
  }
}

// -- randomized expression evaluation vs host oracle -----------------------------

/// A tiny random expression generator over three variables with both MiniC
/// text and a host-side evaluator, restricted to operations with identical
/// semantics on the host (no division to avoid UB corners).
struct ExprGen {
  Prng prng;
  explicit ExprGen(uint64_t seed) : prng(seed) {}

  std::string text;
  int32_t eval = 0;

  void gen(int depth, int32_t a, int32_t b, int32_t c) {
    struct Result {
      std::string t;
      int32_t v;
    };
    const std::function<Result(int)> rec = [&](int d) -> Result {
      if (d == 0 || prng.next_below(3) == 0) {
        switch (prng.next_below(4)) {
          case 0: return {"a", a};
          case 1: return {"b", b};
          case 2: return {"c", c};
          default: {
            const int32_t lit = prng.next_range(-100, 100);
            return {"(" + std::to_string(lit) + ")", lit};
          }
        }
      }
      const Result lhs = rec(d - 1);
      const Result rhs = rec(d - 1);
      const uint32_t ul = static_cast<uint32_t>(lhs.v);
      const uint32_t ur = static_cast<uint32_t>(rhs.v);
      switch (prng.next_below(8)) {
        case 0: return {"(" + lhs.t + " + " + rhs.t + ")", static_cast<int32_t>(ul + ur)};
        case 1: return {"(" + lhs.t + " - " + rhs.t + ")", static_cast<int32_t>(ul - ur)};
        case 2: return {"(" + lhs.t + " * " + rhs.t + ")", static_cast<int32_t>(ul * ur)};
        case 3: return {"(" + lhs.t + " & " + rhs.t + ")", static_cast<int32_t>(ul & ur)};
        case 4: return {"(" + lhs.t + " | " + rhs.t + ")", static_cast<int32_t>(ul | ur)};
        case 5: return {"(" + lhs.t + " ^ " + rhs.t + ")", static_cast<int32_t>(ul ^ ur)};
        case 6:
          return {"(" + lhs.t + " < " + rhs.t + ")", lhs.v < rhs.v ? 1 : 0};
        default:
          return {"(" + lhs.t + " == " + rhs.t + ")", lhs.v == rhs.v ? 1 : 0};
      }
    };
    const Result r = rec(depth);
    text = r.t;
    eval = r.v;
  }
};

TEST(Property, RandomExpressionsMatchHostEvaluation) {
  Prng seeds(5150);
  for (int trial = 0; trial < 20; ++trial) {
    ExprGen gen(seeds.next_u64());
    const int32_t a = seeds.next_range(-1000, 1000);
    const int32_t b = seeds.next_range(-1000, 1000);
    const int32_t c = seeds.next_range(-1000, 1000);
    gen.gen(4, a, b, c);

    const std::string src = strf(
        "int main() {\n  int a = %d; int b = %d; int c = %d;\n"
        "  put_int(%s);\n  return 0;\n}\n",
        a, b, c, gen.text.c_str());
    const workloads::RunOutcome r =
        workloads::run_executable(workloads::build_executable(src, "VLIW4", "expr.c"));
    EXPECT_EQ(r.output, std::to_string(gen.eval) + "\n")
        << "expr: " << gen.text << " a=" << a << " b=" << b << " c=" << c;
  }
}

// -- libc edge cases -------------------------------------------------------------------

TEST(Property, PrintfWithStackArguments) {
  // printf with 9 arguments exercises the >6-argument stack convention both
  // in the compiler (caller side) and in the libc emulation (callee side).
  const char* src = R"(
int main() {
  printf("%d %d %d %d %d %d %d %d\n", 1, 2, 3, 4, 5, 6, 7, 8);
  printf("%s=%d\n", "x", 42);
  return 0;
}
)";
  const workloads::RunOutcome r =
      workloads::run_executable(workloads::build_executable(src, "RISC"));
  EXPECT_EQ(r.output, "1 2 3 4 5 6 7 8\nx=42\n");
}

} // namespace
} // namespace ksim
