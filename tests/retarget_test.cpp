// Retargetability test: the whole point of the ADL-based framework (paper
// §IV) is that the simulator retargets to *any* architecture described in the
// ADL.  Here a deliberately different toy architecture ("Tiny16": 16
// registers, different opcodes, different field layout, a 3-issue VLIW) is
// described in ADL text, built through the same TargetGen, assembled with the
// same assembler and executed by the same simulator loop.
#include <gtest/gtest.h>

#include "adl/parser.h"
#include "isa/targetgen.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "sim/simulator.h"

namespace ksim {
namespace {

constexpr const char* kTiny16Adl = R"(
adl tiny16
stopbit 31
opcodefield 30:26

isa SCALAR id=0 issue=1 default
isa WIDE   id=1 issue=3

regfile g count=16 zero=0
reg IP

format R fields=rd:25:22,ra:21:18,rb:17:14,funct:13:8
format I fields=rd:25:22,ra:21:18,imm:13:0:s
format B fields=ra:25:22,rb:21:18,imm:13:0:s
format S fields=imm:13:0:u

op ADD  format=R match=opcode:1,funct:0 sem=add delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op SUB  format=R match=opcode:1,funct:1 sem=sub delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op MUL  format=R match=opcode:1,funct:2 sem=mul delay=4 reads=ra,rb writes=rd syntax=rd,ra,rb
op ADDI format=I match=opcode:2 sem=addi delay=1 reads=ra writes=rd syntax=rd,ra,imm
op LW   format=I match=opcode:3 sem=lw delay=mem mem=load reads=ra writes=rd syntax=rd,imm(ra)
op SW   format=I match=opcode:4 sem=sw delay=mem mem=store reads=rd,ra syntax=rd,imm(ra)
op BNE  format=B match=opcode:5 sem=bne delay=1 branch reads=ra,rb iwrites=IP syntax=ra,rb,imm reloc=pcrel
op HALT format=S match=opcode:6 sem=halt delay=1 serial syntax=
op NOP  format=S match=opcode:7 sem=nop delay=1 syntax=
)";

const isa::IsaSet& tiny16() {
  static const isa::IsaSet set =
      isa::TargetGen::build(adl::parse_adl_or_throw(kTiny16Adl, "tiny16.adl"));
  return set;
}

TEST(Retarget, TinyArchitectureBuilds) {
  const isa::IsaSet& set = tiny16();
  EXPECT_EQ(set.register_count(), 16);
  EXPECT_EQ(set.isas().size(), 2u);
  EXPECT_EQ(set.find_isa("WIDE")->issue_width, 3);
  ASSERT_NE(set.find_op("MUL"), nullptr);
  EXPECT_EQ(set.find_op("MUL")->delay, 4);
  // Detection works with the different field layout.
  for (const isa::OpInfo* op : set.all_ops()) {
    const uint32_t word = op->match_bits | (1u << set.stop_bit());
    EXPECT_EQ(set.detect(*set.find_isa("SCALAR"), word), op) << op->name;
  }
}

TEST(Retarget, AssembleAndRunOnTiny16) {
  // 10 * (1+2+...+5) computed on the toy architecture.  Register names use
  // the g prefix declared in the ADL... the assembler's register parser only
  // knows r-names, so ADL register prefixes must be r for now — use raw
  // indices through rN aliases.
  kasm::AsmOptions opt;
  opt.isa_set = &tiny16();
  opt.initial_isa = "SCALAR";
  const elf::ElfFile obj = kasm::assemble_or_throw(R"(
.global _start
_start:
  addi r1, r0, 0      # sum
  addi r2, r0, 5      # i
loop:
  add r1, r1, r2
  addi r2, r2, -1
  bne r2, r0, loop
  addi r3, r0, 10
  mul r1, r1, r3
  sw r1, 256(r0)
  halt
)",
                                                   opt);
  kasm::LinkOptions lopt;
  const elf::ElfFile exe = kasm::link_or_throw({obj}, lopt);

  sim::Simulator simulator(tiny16());
  simulator.load(exe);
  EXPECT_EQ(simulator.run(), sim::StopReason::Halted);
  EXPECT_EQ(simulator.state().load32(256), 150u);
}

TEST(Retarget, WideIsaPacksThreeOps) {
  kasm::AsmOptions opt;
  opt.isa_set = &tiny16();
  opt.initial_isa = "WIDE";
  const elf::ElfFile obj = kasm::assemble_or_throw(R"(
.global _start
_start:
  addi r1, r0, 7 || addi r2, r0, 9 || addi r3, r0, 100
  add r4, r1, r2 || sub r5, r3, r1
  sw r4, 0(r3)
  sw r5, 4(r3)
  halt
)",
                                                   opt);
  kasm::LinkOptions lopt;
  lopt.entry_isa = tiny16().find_isa("WIDE")->id;
  const elf::ElfFile exe = kasm::link_or_throw({obj}, lopt);
  sim::Simulator simulator(tiny16());
  simulator.load(exe);
  EXPECT_EQ(simulator.run(), sim::StopReason::Halted);
  EXPECT_EQ(simulator.state().load32(100), 16u);
  EXPECT_EQ(simulator.state().load32(104), 93u);
  EXPECT_EQ(simulator.stats().operations, 8u);
  EXPECT_EQ(simulator.stats().instructions, 5u);
}

TEST(Retarget, FourIssueGroupRejectedOnThreeIssueIsa) {
  kasm::AsmOptions opt;
  opt.isa_set = &tiny16();
  opt.initial_isa = "WIDE";
  DiagEngine diags;
  kasm::assemble(
      "addi r1, r0, 1 || addi r2, r0, 2 || addi r3, r0, 3 || addi r4, r0, 4\n", opt,
      diags);
  EXPECT_TRUE(diags.has_errors());
}

} // namespace
} // namespace ksim
