#include <gtest/gtest.h>

#include "isa/kisa.h"
#include "isa/semantics.h"
#include "isa/targetgen.h"
#include "support/error.h"

namespace ksim::isa {
namespace {

TEST(Kisa, BuildsOnce) {
  const IsaSet& set = kisa();
  EXPECT_EQ(&set, &kisa()); // singleton
  EXPECT_EQ(set.isas().size(), 5u);
  EXPECT_EQ(set.register_count(), 32);
  EXPECT_EQ(set.zero_register(), 0);
  EXPECT_EQ(set.stop_bit(), 31);
  EXPECT_EQ(set.default_isa().name, "RISC");
}

TEST(Kisa, IsaLookup) {
  const IsaSet& set = kisa();
  EXPECT_EQ(set.find_isa(kIsaVliw4)->name, "VLIW4");
  EXPECT_EQ(set.find_isa("VLIW2")->issue_width, 2);
  EXPECT_EQ(set.find_isa(99), nullptr);
  EXPECT_EQ(set.find_isa("nope"), nullptr);
  EXPECT_EQ(set.max_isa_id(), 4);
}

TEST(Kisa, OperationMetadata) {
  const IsaSet& set = kisa();
  const OpInfo* add = set.find_op("ADD");
  ASSERT_NE(add, nullptr);
  EXPECT_TRUE(add->rd_is_dst);
  EXPECT_TRUE(add->ra_is_src);
  EXPECT_TRUE(add->rb_is_src);
  EXPECT_FALSE(add->rd_is_src);
  EXPECT_EQ(add->delay, 1);
  EXPECT_FALSE(add->is_branch);

  const OpInfo* sw = set.find_op("SW");
  ASSERT_NE(sw, nullptr);
  EXPECT_TRUE(sw->rd_is_src);  // store value
  EXPECT_FALSE(sw->rd_is_dst);
  EXPECT_TRUE(sw->is_store());
  EXPECT_TRUE(sw->uses_memory_model());

  const OpInfo* jal = set.find_op("JAL");
  ASSERT_NE(jal, nullptr);
  EXPECT_TRUE(jal->is_branch);
  EXPECT_TRUE(jal->is_call);
  // JAL implicitly writes IP (bit 32) and r1 (bit 1).
  EXPECT_NE(jal->implicit_writes & (uint64_t{1} << kIpRegIndex), 0u);
  EXPECT_NE(jal->implicit_writes & (uint64_t{1} << 1), 0u);

  const OpInfo* simop = set.find_op("SIMOP");
  ASSERT_NE(simop, nullptr);
  EXPECT_TRUE(simop->serial_only);
  EXPECT_NE(simop->implicit_reads & (uint64_t{1} << 4), 0u);

  const OpInfo* mul = set.find_op("MUL");
  ASSERT_NE(mul, nullptr);
  EXPECT_EQ(mul->delay, 3);
  const OpInfo* div = set.find_op("DIV");
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->delay, 12);
}

TEST(Kisa, DetectionIsUnambiguous) {
  // Every operation's canonical encoding (match bits + stop bit) must detect
  // as exactly that operation, in every ISA containing it.
  const IsaSet& set = kisa();
  for (const IsaInfo& isa : set.isas()) {
    for (const OpInfo* op : isa.ops) {
      const uint32_t word = op->match_bits | (1u << set.stop_bit());
      EXPECT_EQ(set.detect(isa, word), op) << op->name << " in " << isa.name;
    }
  }
}

TEST(Kisa, DetectRejectsGarbage) {
  const IsaSet& set = kisa();
  const IsaInfo& risc = *set.find_isa("RISC");
  // Opcode 63 is unassigned.
  EXPECT_EQ(set.detect(risc, 63u << 25), nullptr);
}

TEST(Kisa, AllIsasShareTheFullOpSet) {
  // K-ISA declares no per-ISA restrictions, so every table has all ops.
  const IsaSet& set = kisa();
  for (const IsaInfo& isa : set.isas())
    EXPECT_EQ(isa.ops.size(), set.all_ops().size()) << isa.name;
}

TEST(Semantics, RegistryLookups) {
  EXPECT_NE(find_semantic("add"), nullptr);
  EXPECT_NE(find_semantic("switchtarget"), nullptr);
  EXPECT_NE(find_semantic("simop"), nullptr);
  EXPECT_EQ(find_semantic("definitely-not-a-semantic"), nullptr);
}

TEST(TargetGen, RejectsUnknownSemantic) {
  adl::AdlModel model;
  model.stop_bit = 31;
  model.opcode_field = {"opcode", 30, 25, false};
  model.isas.push_back({"A", 0, 1, true});
  for (int i = 0; i < 4; ++i)
    model.registers.push_back({"r" + std::to_string(i), i, i == 0, false});
  adl::FormatDef fmt;
  fmt.name = "S";
  fmt.fields.push_back({"imm", 14, 0, false});
  model.formats.push_back(fmt);
  adl::OperationDef op;
  op.name = "X";
  op.format = "S";
  op.match.push_back({"opcode", 1});
  op.semantic = "no-such-semantic";
  model.operations.push_back(op);
  EXPECT_THROW(TargetGen::build(std::move(model)), Error);
}

TEST(TargetGen, RejectsAmbiguousEncodings) {
  adl::AdlModel model;
  model.stop_bit = 31;
  model.opcode_field = {"opcode", 30, 25, false};
  model.isas.push_back({"A", 0, 1, true});
  for (int i = 0; i < 4; ++i)
    model.registers.push_back({"r" + std::to_string(i), i, i == 0, false});
  adl::FormatDef fmt;
  fmt.name = "S";
  fmt.fields.push_back({"imm", 14, 0, false});
  model.formats.push_back(fmt);
  for (const char* name : {"X", "Y"}) {
    adl::OperationDef op;
    op.name = name;
    op.format = "S";
    op.match.push_back({"opcode", 7}); // same opcode, no distinguishing field
    op.semantic = "nop";
    model.operations.push_back(op);
  }
  EXPECT_THROW(TargetGen::build(std::move(model)), Error);
}

TEST(TargetGen, EmitCppMentionsEveryOperation) {
  const IsaSet& set = kisa();
  const std::string code = TargetGen::emit_cpp(set);
  for (const OpInfo* op : set.all_ops())
    EXPECT_NE(code.find("\"" + op->name + "\""), std::string::npos) << op->name;
  for (const IsaInfo& isa : set.isas())
    EXPECT_NE(code.find("kIsa" + isa.name + "Ops"), std::string::npos);
}

TEST(ArchState, RegisterZeroStaysZero) {
  ArchState st(4096);
  st.set_reg(0, 123);
  EXPECT_EQ(st.reg(0), 0u);
  st.set_reg(5, 42);
  EXPECT_EQ(st.reg(5), 42u);
}

TEST(ArchState, MemoryRoundTripLittleEndian) {
  ArchState st(4096);
  st.store32(0x100, 0xA1B2C3D4);
  EXPECT_EQ(st.load32(0x100), 0xA1B2C3D4u);
  EXPECT_EQ(st.load8(0x100), 0xD4u);  // little endian
  EXPECT_EQ(st.load8(0x103), 0xA1u);
  EXPECT_EQ(st.load16(0x102), 0xA1B2u);
  EXPECT_FALSE(st.trapped());
}

TEST(ArchState, TrapsOnOutOfRangeAndMisaligned) {
  ArchState st(4096);
  st.load32(5000);
  EXPECT_TRUE(st.trapped());
  st.clear_trap();
  st.load32(0x101); // misaligned
  EXPECT_TRUE(st.trapped());
  st.clear_trap();
  st.store16(0x101, 1); // misaligned
  EXPECT_TRUE(st.trapped());
  st.clear_trap();
  uint32_t w = 0;
  EXPECT_FALSE(st.fetch32(0x101, w));
  EXPECT_FALSE(st.trapped()); // fetch does not trap, it reports
}

TEST(ArchState, ReadCString) {
  ArchState st(4096);
  const char* msg = "hello";
  st.write_block(0x200, msg, 6);
  EXPECT_EQ(st.read_cstring(0x200), "hello");
}

} // namespace
} // namespace ksim::isa
