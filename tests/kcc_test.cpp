#include <gtest/gtest.h>

#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "kcc/compiler.h"
#include "sim/simulator.h"
#include "support/strings.h"

namespace ksim::kcc {
namespace {

struct RunResult {
  sim::StopReason reason;
  int exit_code;
  std::string output;
  sim::SimStats stats;
};

elf::ElfFile compile_and_link(const std::string& source,
                              const std::string& default_isa = "RISC") {
  CompileOptions copt;
  copt.file_name = "test.c";
  copt.codegen.default_isa = default_isa;
  const std::string assembly = compile_or_throw(source, copt);

  kasm::AsmOptions aopt;
  aopt.file_name = "test.s";
  const elf::ElfFile user = kasm::assemble_or_throw(assembly, aopt);
  const elf::ElfFile start =
      kasm::assemble_or_throw(kasm::start_stub_assembly(default_isa));
  const elf::ElfFile libc = kasm::assemble_or_throw(kasm::libc_stub_assembly());
  kasm::LinkOptions lopt;
  lopt.entry_isa = isa::kisa().find_isa(default_isa)->id;
  return kasm::link_or_throw({start, user, libc}, lopt);
}

RunResult run_c(const std::string& source, const std::string& default_isa = "RISC") {
  sim::Simulator simulator(isa::kisa());
  simulator.load(compile_and_link(source, default_isa));
  const sim::StopReason reason = simulator.run();
  EXPECT_NE(reason, sim::StopReason::Trap) << simulator.error_report();
  EXPECT_NE(reason, sim::StopReason::DecodeError) << simulator.error_report();
  return {reason, simulator.exit_code(), simulator.libc().output(), simulator.stats()};
}

TEST(Kcc, ReturnsConstant) {
  EXPECT_EQ(run_c("int main(void) { return 42; }").exit_code, 42);
}

TEST(Kcc, Arithmetic) {
  EXPECT_EQ(run_c("int main() { return (7*6 - 2) / 2 % 9 + (1 << 4); }").exit_code, 18);
  EXPECT_EQ(run_c("int main() { int a = -15; return a / 4; }").exit_code, -3);
  EXPECT_EQ(run_c("int main() { int a = -15; return a % 4; }").exit_code, -3);
  EXPECT_EQ(run_c("int main() { unsigned a = 15; return a / 4; }").exit_code, 3);
  EXPECT_EQ(run_c("int main() { return 10 - 3 - 2; }").exit_code, 5);
}

TEST(Kcc, UnsignedVsSignedShift) {
  EXPECT_EQ(run_c("int main() { int a = -8; return a >> 1; }").exit_code, -4);
  EXPECT_EQ(
      run_c("int main() { unsigned a = 0x80000000u; return (int)(a >> 28); }").exit_code,
      8);
}

TEST(Kcc, Comparisons) {
  const char* src = R"(
int main() {
  int r = 0;
  if (1 < 2) r += 1;
  if (2 <= 2) r += 2;
  if (3 > 2) r += 4;
  if (3 >= 4) r += 8;      // false
  if (5 == 5) r += 16;
  if (5 != 5) r += 32;     // false
  unsigned big = 0xFFFFFFF0u;
  if (big > 100u) r += 64; // unsigned comparison
  int neg = -1;
  if (neg < 1) r += 128;   // signed comparison
  return r;
}
)";
  EXPECT_EQ(run_c(src).exit_code, 1 + 2 + 4 + 16 + 64 + 128);
}

TEST(Kcc, ControlFlow) {
  const char* src = R"(
int main() {
  int sum = 0;
  for (int i = 1; i <= 10; i++) sum += i;       // 55
  int j = 0;
  while (j < 5) { sum += 2; j++; }              // +10
  int k = 0;
  do { sum++; k++; } while (k < 3);             // +3
  for (;;) { break; }
  for (int i = 0; i < 10; i++) {
    if (i % 2 == 0) continue;
    sum += 1;                                   // +5 (odd i)
  }
  return sum;
}
)";
  EXPECT_EQ(run_c(src).exit_code, 55 + 10 + 3 + 5);
}

TEST(Kcc, ShortCircuit) {
  const char* src = R"(
int hits = 0;
int bump(int v) { hits++; return v; }
int main() {
  int r = 0;
  if (bump(0) && bump(1)) r += 1;   // second not evaluated
  if (bump(1) || bump(1)) r += 2;   // second not evaluated
  if (bump(1) && bump(1)) r += 4;
  r += (bump(0) || bump(0)) ? 8 : 16;
  return r * 100 + hits;            // r = 2+4+16 = 22, hits = 1+1+2+2 = 6
}
)";
  EXPECT_EQ(run_c(src).exit_code, 2206);
}

TEST(Kcc, TernaryAndLogicalNot) {
  EXPECT_EQ(run_c("int main() { int a = 5; return a > 3 ? 7 : 9; }").exit_code, 7);
  EXPECT_EQ(run_c("int main() { return !0 * 10 + !7; }").exit_code, 10);
}

TEST(Kcc, FunctionsAndRecursion) {
  const char* src = R"(
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main() { return fib(10); }
)";
  EXPECT_EQ(run_c(src).exit_code, 55);
}

TEST(Kcc, ManyArguments) {
  const char* src = R"(
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
  return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
}
int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }
)";
  EXPECT_EQ(run_c(src).exit_code, 1 + 4 + 9 + 16 + 25 + 36 + 49 + 64);
}

TEST(Kcc, GlobalsAndArrays) {
  const char* src = R"(
int table[4] = {10, 20, 30, 40};
int counter;
unsigned char bytes[3] = {250, 251, 252};
int main() {
  counter = 5;
  int sum = 0;
  for (int i = 0; i < 4; i++) sum += table[i];
  table[2] = 7;
  sum += table[2];
  sum += bytes[0] + bytes[2];
  return sum + counter;
}
)";
  EXPECT_EQ(run_c(src).exit_code, 100 + 7 + 250 + 252 + 5);
}

TEST(Kcc, LocalArraysAndPointers) {
  const char* src = R"(
int main() {
  int a[5];
  for (int i = 0; i < 5; i++) a[i] = i * i;
  int *p = a;
  int sum = 0;
  for (int i = 0; i < 5; i++) sum += *(p + i);
  p = &a[3];
  sum += *p;          // 9
  sum += p[1];        // 16
  return sum;         // 0+1+4+9+16 + 9 + 16 = 55
}
)";
  EXPECT_EQ(run_c(src).exit_code, 55);
}

TEST(Kcc, PointerArithmeticAndDifference) {
  const char* src = R"(
int main() {
  int a[8];
  int *p = &a[1];
  int *q = &a[6];
  int diff = q - p;        // 5 elements
  p[0] = 3; *(q - 1) = 4;  // a[1]=3, a[5]=4
  return diff * 10 + a[1] + a[5];
}
)";
  EXPECT_EQ(run_c(src).exit_code, 57);
}

TEST(Kcc, AddressOfScalar) {
  const char* src = R"(
void set(int *p, int v) { *p = v; }
int main() {
  int x = 1;
  set(&x, 33);
  return x;
}
)";
  EXPECT_EQ(run_c(src).exit_code, 33);
}

TEST(Kcc, CharArraysAndStrings) {
  const char* src = R"(
char msg[] = "abc";
int main() {
  char buf[8];
  buf[0] = msg[2];
  buf[1] = 'z';
  buf[2] = 0;
  if (buf[0] != 'c') return 1;
  if (strlen(buf) != 2u) return 2;
  char neg = (char)200;   // signed char: -56
  if (neg >= 0) return 3;
  unsigned char uc = (unsigned char)200;
  if (uc != 200) return 4;
  return 0;
}
)";
  EXPECT_EQ(run_c(src).exit_code, 0);
}

TEST(Kcc, CompoundAssignAndIncDec) {
  const char* src = R"(
int main() {
  int a = 10;
  a += 5; a -= 2; a *= 3; a /= 2; a %= 12;  // ((13*3)/2)%12 = 19%12? -> a=((13)*3)=39/2=19%12=7
  int b = 1;
  b <<= 4; b |= 3; b ^= 1; b &= 30;         // 16|3=19 ^1=18 &30=18
  int c = 0;
  int arr[3]; arr[0] = arr[1] = arr[2] = 0;
  arr[c++] = 5;   // arr[0]=5, c=1
  arr[++c] = 7;   // c=2, arr[2]=7
  int d = c--;    // d=2, c=1
  return a * 1000 + b * 10 + arr[0] + arr[2] + d + c; // 7000+180+5+7+2+1
}
)";
  EXPECT_EQ(run_c(src).exit_code, 7195);
}

TEST(Kcc, PrintfOutput) {
  const char* src = R"(
int main() {
  printf("hello %s, %d + %d = %d\n", "world", 2, 3, 2 + 3);
  printf("hex=%x pad=%04d char=%c\n", 255, 7, 'Q');
  return 0;
}
)";
  EXPECT_EQ(run_c(src).output, "hello world, 2 + 3 = 5\nhex=ff pad=0007 char=Q\n");
}

TEST(Kcc, MallocAndMemset) {
  const char* src = R"(
int main() {
  char *p = malloc(16u);
  memset(p, 7, 16u);
  int sum = 0;
  for (int i = 0; i < 16; i++) sum += p[i];
  free(p);
  return sum;
}
)";
  EXPECT_EQ(run_c(src).exit_code, 112);
}

TEST(Kcc, GlobalConstTables) {
  const char* src = R"(
const int weights[8] = {1, -1, 2, -2, 3, -3, 4, -4};
int main() {
  int acc = 0;
  for (int i = 0; i < 8; i++) acc += weights[i] * (i + 1);
  return acc; // 1-2+6-8+15-18+28-32 = -10
}
)";
  EXPECT_EQ(run_c(src).exit_code, -10);
}

TEST(Kcc, NestedLoops2DIndexing) {
  const char* src = R"(
int m[16];
int main() {
  for (int r = 0; r < 4; r++)
    for (int c = 0; c < 4; c++)
      m[r * 4 + c] = r * c;
  int trace = 0;
  for (int i = 0; i < 4; i++) trace += m[i * 4 + i];
  return trace; // 0+1+4+9
}
)";
  EXPECT_EQ(run_c(src).exit_code, 14);
}

TEST(Kcc, MulDivByPowerOfTwoStrengthReduction) {
  const char* src = R"(
int main() {
  unsigned a = 100;
  int b = 25;
  return (int)(a / 8u) + (a % 8u) + b * 4; // 12 + 4 + 100
}
)";
  EXPECT_EQ(run_c(src).exit_code, 116);
}

TEST(Kcc, HighRegisterPressureSpills) {
  // 40 simultaneously live values force spilling; the sum checks all of them.
  std::string src = "int main() {\n";
  for (int i = 0; i < 40; ++i)
    src += strf("  int v%d = %d * 3 + 1;\n", i, i);
  src += "  int sum = 0;\n";
  for (int i = 0; i < 40; ++i) src += strf("  sum += v%d;\n", i);
  src += "  return sum;\n}\n";
  int expect = 0;
  for (int i = 0; i < 40; ++i) expect += i * 3 + 1;
  EXPECT_EQ(run_c(src).exit_code, expect);
}

TEST(Kcc, DeepCallChainUsesCalleeSaved) {
  const char* src = R"(
int leaf(int x) { return x + 1; }
int chain(int x) {
  int a = leaf(x);
  int b = leaf(a);
  int c = leaf(b);
  int d = leaf(c);
  return a + b + c + d - 3 * x;
}
int main() { return chain(10); }
)";
  EXPECT_EQ(run_c(src).exit_code, 11 + 12 + 13 + 14 - 30);
}

// -- VLIW compilation -----------------------------------------------------------

struct IsaCase {
  const char* name;
};

class KccAllIsas : public ::testing::TestWithParam<IsaCase> {};

TEST_P(KccAllIsas, DctLikeKernelRunsCorrectly) {
  // A small 4x4 transform with plenty of ILP, compiled for every ISA width.
  const char* src = R"(
int in[16] = {1,2,3,4, 5,6,7,8, 9,10,11,12, 13,14,15,16};
int out[16];
int main() {
  int a0 = in[0] + in[12]; int a1 = in[4] + in[8];
  int a2 = in[0] - in[12]; int a3 = in[4] - in[8];
  out[0] = a0 + a1; out[4] = a2 + a3;
  out[8] = a0 - a1; out[12] = a2 - a3;
  int b0 = in[1] + in[13]; int b1 = in[5] + in[9];
  int b2 = in[1] - in[13]; int b3 = in[5] - in[9];
  out[1] = b0 + b1; out[5] = b2 + b3;
  out[9] = b0 - b1; out[13] = b2 - b3;
  int s = 0;
  for (int i = 0; i < 16; i++) s += out[i] * (i + 1);
  return s;
}
)";
  const RunResult r = run_c(src, GetParam().name);
  // Reference computed with the same arithmetic on the host.
  int in[16] = {1,2,3,4, 5,6,7,8, 9,10,11,12, 13,14,15,16};
  int out[16] = {0};
  int a0 = in[0]+in[12], a1 = in[4]+in[8], a2 = in[0]-in[12], a3 = in[4]-in[8];
  out[0]=a0+a1; out[4]=a2+a3; out[8]=a0-a1; out[12]=a2-a3;
  int b0 = in[1]+in[13], b1 = in[5]+in[9], b2 = in[1]-in[13], b3 = in[5]-in[9];
  out[1]=b0+b1; out[5]=b2+b3; out[9]=b0-b1; out[13]=b2-b3;
  int expect = 0;
  for (int i = 0; i < 16; ++i) expect += out[i] * (i + 1);
  EXPECT_EQ(r.exit_code, expect);
}

TEST_P(KccAllIsas, RecursionAndCallsWork) {
  const char* src = R"(
int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
int main() { return fact(6); }
)";
  EXPECT_EQ(run_c(src, GetParam().name).exit_code, 720);
}

INSTANTIATE_TEST_SUITE_P(Widths, KccAllIsas,
                         ::testing::Values(IsaCase{"RISC"}, IsaCase{"VLIW2"},
                                           IsaCase{"VLIW4"}, IsaCase{"VLIW6"},
                                           IsaCase{"VLIW8"}),
                         [](const ::testing::TestParamInfo<IsaCase>& info) {
                           return info.param.name;
                         });

TEST(Kcc, VliwCodeActuallyPacksGroups) {
  const char* src = R"(
int a[8] = {1,2,3,4,5,6,7,8};
int main() {
  int s0 = a[0] + a[1];
  int s1 = a[2] + a[3];
  int s2 = a[4] + a[5];
  int s3 = a[6] + a[7];
  return s0 + s1 + s2 + s3;
}
)";
  CompileOptions copt;
  copt.codegen.default_isa = "VLIW4";
  const std::string assembly = compile_or_throw(src, copt);
  EXPECT_NE(assembly.find("||"), std::string::npos) << assembly;
}

TEST(Kcc, MixedIsaAttributeInsertsSwitchTarget) {
  const char* src = R"(
isa("VLIW4") int kernel(int x) { return x * 2 + 1; }
int main() { return kernel(20); }
)";
  CompileOptions copt;
  copt.codegen.default_isa = "RISC";
  const std::string assembly = compile_or_throw(src, copt);
  EXPECT_NE(assembly.find("switchtarget"), std::string::npos) << assembly;

  const RunResult r = run_c(src, "RISC");
  EXPECT_EQ(r.exit_code, 41);
  EXPECT_GE(r.stats.isa_switches, 2u);
}

TEST(Kcc, MixedIsaRoundTripThroughThreeIsas) {
  const char* src = R"(
isa("VLIW2") int twice(int x) { return x + x; }
isa("VLIW8") int addmul(int x, int y) { return x * y + twice(x); }
int main() { return addmul(3, 4) + twice(5); }
)";
  const RunResult r = run_c(src, "RISC");
  EXPECT_EQ(r.exit_code, 12 + 6 + 10);
  EXPECT_GE(r.stats.isa_switches, 4u);
}

// -- diagnostics ------------------------------------------------------------------

TEST(KccErrors, UndeclaredVariable) {
  DiagEngine diags;
  compile("int main() { return nope; }", {}, diags);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("undeclared identifier"), std::string::npos);
}

TEST(KccErrors, UndeclaredFunction) {
  DiagEngine diags;
  compile("int main() { return foo(1); }", {}, diags);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("undeclared function"), std::string::npos);
}

TEST(KccErrors, WrongArgumentCount) {
  DiagEngine diags;
  compile("int f(int a, int b) { return a + b; } int main() { return f(1); }", {},
          diags);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("wrong number of arguments"), std::string::npos);
}

TEST(KccErrors, BreakOutsideLoop) {
  DiagEngine diags;
  compile("int main() { break; return 0; }", {}, diags);
  ASSERT_TRUE(diags.has_errors());
}

TEST(KccErrors, AssignToArray) {
  DiagEngine diags;
  compile("int a[3]; int main() { a = 0; return 0; }", {}, diags);
  ASSERT_TRUE(diags.has_errors());
}

TEST(KccErrors, SyntaxErrorHasLocation) {
  DiagEngine diags;
  compile("int main() {\n  int x = ;\n}", {}, diags);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.diags().front().loc.line, 2);
}

TEST(KccErrors, RedefinitionOfFunction) {
  DiagEngine diags;
  compile("int f() { return 1; } int f() { return 2; } int main() { return f(); }", {},
          diags);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("redefinition"), std::string::npos);
}

} // namespace
} // namespace ksim::kcc
