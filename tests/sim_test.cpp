#include <gtest/gtest.h>

#include <sstream>

#include "cycle/models.h"
#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "sim/simulator.h"

namespace ksim::sim {
namespace {

/// Assembles `source` (which must define main), links it with the start and
/// libc stubs, and returns the executable.
elf::ElfFile build_exe(const std::string& source, const std::string& entry_isa = "RISC") {
  kasm::AsmOptions opt;
  opt.file_name = "test.s";
  const elf::ElfFile user = kasm::assemble_or_throw(source, opt);
  const elf::ElfFile start = kasm::assemble_or_throw(kasm::start_stub_assembly(entry_isa));
  const elf::ElfFile libc = kasm::assemble_or_throw(kasm::libc_stub_assembly());
  kasm::LinkOptions link_opt;
  link_opt.entry_isa = isa::kisa().find_isa(entry_isa)->id;
  return kasm::link_or_throw({start, user, libc}, link_opt);
}

struct RunResult {
  StopReason reason;
  int exit_code;
  std::string output;
  SimStats stats;
};

RunResult run_main(const std::string& source, SimOptions opts = {},
                   const std::string& entry_isa = "RISC") {
  Simulator sim(isa::kisa(), opts);
  sim.load(build_exe(source, entry_isa));
  const StopReason reason = sim.run();
  return {reason, sim.exit_code(), sim.libc().output(), sim.stats()};
}

TEST(Sim, ReturnsExitCode) {
  const RunResult r = run_main(R"(
.global main
main:
  addi r4, r0, 42
  ret
)");
  EXPECT_EQ(r.reason, StopReason::Exited);
  EXPECT_EQ(r.exit_code, 42);
}

TEST(Sim, ArithmeticSemantics) {
  // Computes ((7*6-2)/2) % 9 + (1<<4) = ((40)/2)%9 + 16 = 2 + 16 = 18.
  const RunResult r = run_main(R"(
.global main
main:
  addi r5, r0, 7
  addi r6, r0, 6
  mul r7, r5, r6      # 42
  addi r7, r7, -2     # 40
  addi r8, r0, 2
  div r7, r7, r8      # 20
  addi r9, r0, 9
  rem r7, r7, r9      # 2
  addi r10, r0, 1
  slli r10, r10, 4    # 16
  add r4, r7, r10
  ret
)");
  EXPECT_EQ(r.exit_code, 18);
}

TEST(Sim, SignedUnsignedComparisons) {
  // slt(-1, 1) = 1 ; sltu(-1, 1) = 0 → exit 1*2 + 0 = 2.
  const RunResult r = run_main(R"(
.global main
main:
  addi r5, r0, -1
  addi r6, r0, 1
  slt r7, r5, r6
  sltu r8, r5, r6
  slli r7, r7, 1
  add r4, r7, r8
  ret
)");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Sim, LoadsStoresAllWidths) {
  const RunResult r = run_main(R"(
.data
buf: .space 16
.global main
.text
main:
  la r5, buf
  li r6, 0x12345678
  sw r6, 0(r5)
  lb r7, 0(r5)        # 0x78
  lbu r8, 3(r5)       # 0x12
  lh r9, 0(r5)        # 0x5678
  lhu r10, 2(r5)      # 0x1234
  sh r9, 8(r5)
  lw r11, 8(r5)       # 0x5678
  sb r7, 12(r5)
  lbu r12, 12(r5)     # 0x78
  add r4, r7, r8
  add r4, r4, r9
  add r4, r4, r10
  add r4, r4, r11
  add r4, r4, r12
  ret
)");
  EXPECT_EQ(r.exit_code, 0x78 + 0x12 + 0x5678 + 0x1234 + 0x5678 + 0x78);
}

TEST(Sim, SignExtendingLoads) {
  const RunResult r = run_main(R"(
.data
vals: .byte 0x80
.align 2
h: .half 0x8000
.global main
.text
main:
  la r5, vals
  lb r6, 0(r5)        # -128
  la r7, h
  lh r8, 0(r7)        # -32768
  add r4, r6, r8
  ret
)");
  EXPECT_EQ(r.exit_code, -128 - 32768);
}

TEST(Sim, LoopAndBranches) {
  // Sum 1..10 = 55.
  const RunResult r = run_main(R"(
.global main
main:
  addi r5, r0, 0      # sum
  addi r6, r0, 1      # i
  addi r7, r0, 10
loop:
  add r5, r5, r6
  addi r6, r6, 1
  ble_check:
  bge r7, r6, loop
  mv r4, r5
  ret
)");
  EXPECT_EQ(r.exit_code, 55);
}

TEST(Sim, FunctionCallsNested) {
  const RunResult r = run_main(R"(
.global main
main:
  addi sp, sp, -8
  sw ra, 0(sp)
  addi r4, r0, 5
  call double_it
  call double_it
  lw ra, 0(sp)
  addi sp, sp, 8
  ret

.func double_it
  add r4, r4, r4
  ret
.endfunc
)");
  EXPECT_EQ(r.exit_code, 20);
}

TEST(Sim, VliwParallelReadBeforeWrite) {
  // Classic swap: both ops read the old values before any write-back (§V-B).
  const RunResult r = run_main(R"(
.global main
main:
  switchtarget VLIW2
.isa VLIW2
  addi r5, r0, 3
  addi r6, r0, 4
  mv r5, r6 || mv r6, r5
  slli r5, r5, 4
  add r4, r5, r6      # expect (4<<4) + 3 = 67
  switchtarget RISC
.isa RISC
  ret
)", {}, "RISC");
  EXPECT_EQ(r.exit_code, 67);
  EXPECT_EQ(r.stats.isa_switches, 2u);
}

TEST(Sim, VliwStoreThenLoadInOneGroupSeesProgramOrder) {
  const RunResult r = run_main(R"(
.data
cell: .word 0
.global main
.text
main:
  switchtarget VLIW4
.isa VLIW4
  la r5, cell
  addi r6, r0, 9
  sw r6, 0(r5) || lw r7, 0(r5)
  mv r4, r7
  switchtarget RISC
.isa RISC
  ret
)");
  EXPECT_EQ(r.exit_code, 9); // slot order = program order for memory
}

TEST(Sim, MixedIsaSwitchingRoundTrip) {
  const RunResult r = run_main(R"(
.global main
main:
  addi r5, r0, 1
  switchtarget VLIW4
.isa VLIW4
  addi r5, r5, 10 || addi r6, r0, 100
  add r5, r5, r6
  switchtarget RISC
.isa RISC
  addi r4, r5, 3   # 1+10+100+3
  ret
)");
  EXPECT_EQ(r.exit_code, 114);
  EXPECT_EQ(r.stats.isa_switches, 2u);
}

TEST(Sim, LibcPutsAndPrintf) {
  const RunResult r = run_main(R"(
.data
msg: .asciz "hello"
fmt: .asciz "n=%d h=%x s=%s c=%c%%\n"
.global main
.text
main:
  addi sp, sp, -8
  sw ra, 0(sp)
  la r4, msg
  call puts
  la r4, fmt
  addi r5, r0, -7
  addi r6, r0, 255
  la r7, msg
  addi r8, r0, 65
  call printf
  lw ra, 0(sp)
  addi sp, sp, 8
  addi r4, r0, 0
  ret
)");
  EXPECT_EQ(r.reason, StopReason::Exited);
  EXPECT_EQ(r.output, "hello\nn=-7 h=ff s=hello c=A%\n");
}

TEST(Sim, LibcMallocMemsetMemcpyStrlen) {
  const RunResult r = run_main(R"(
.global main
main:
  addi sp, sp, -8
  sw ra, 0(sp)
  addi r4, r0, 64
  call malloc
  mv r20, r4          # p
  beqz r4, fail
  mv r4, r20
  addi r5, r0, 65     # 'A'
  addi r6, r0, 8
  call memset
  addi r4, r20, 8
  mv r5, r20
  addi r6, r0, 8
  call memcpy
  sb r0, 16(r20)      # terminate
  mv r4, r20
  call strlen         # 16
  lw ra, 0(sp)
  addi sp, sp, 8
  ret
fail:
  addi r4, r0, -1
  lw ra, 0(sp)
  addi sp, sp, 8
  ret
)");
  EXPECT_EQ(r.exit_code, 16);
}

TEST(Sim, TrapOnDivisionByZero) {
  Simulator sim(isa::kisa());
  sim.load(build_exe(R"(
.global main
.func main
  addi r5, r0, 3
  div r4, r5, r0
  ret
.endfunc
)"));
  EXPECT_EQ(sim.run(), StopReason::Trap);
  EXPECT_NE(sim.error_report().find("division by zero"), std::string::npos);
  EXPECT_NE(sim.error_report().find("main"), std::string::npos);
}

TEST(Sim, TrapOnBadMemoryAccessWithHistory) {
  Simulator sim(isa::kisa());
  sim.load(build_exe(R"(
.global main
main:
  li r5, 0x7FFFFFF0
  lw r4, 0(r5)
  ret
)"));
  EXPECT_EQ(sim.run(), StopReason::Trap);
  const std::string report = sim.error_report();
  EXPECT_NE(report.find("invalid 4-byte load"), std::string::npos);
  EXPECT_NE(report.find("instruction pointer history"), std::string::npos);
  EXPECT_FALSE(sim.ip_history().empty());
}

TEST(Sim, DecodeErrorOnGarbage) {
  Simulator sim(isa::kisa());
  sim.load(build_exe(R"(
.global main
main:
  .word 0x7E000000   # opcode 63: unassigned, no stop bit
  ret
)"));
  EXPECT_EQ(sim.run(), StopReason::DecodeError);
  EXPECT_NE(sim.error_report().find("undecodable"), std::string::npos);
}

TEST(Sim, DecodeCacheAvoidsRedecodes) {
  const RunResult r = run_main(R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 1000
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  mv r4, r0
  ret
)");
  EXPECT_GT(r.stats.instructions, 2000u);
  EXPECT_LT(r.stats.decodes, 40u); // each address decoded once
  EXPECT_GT(r.stats.decode_avoidance(), 0.98);
  // Prediction removes almost all hash lookups in the loop.
  EXPECT_GT(r.stats.lookup_avoidance(), 0.95);
}

TEST(Sim, NoCacheModeStillCorrect) {
  SimOptions opts;
  opts.use_decode_cache = false;
  const RunResult r = run_main(R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 100
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  mv r4, r5
  ret
)", opts);
  EXPECT_EQ(r.exit_code, 100);
  EXPECT_EQ(r.stats.decodes, r.stats.instructions); // every instruction decoded
  EXPECT_EQ(r.stats.pred_hits, 0u);
}

TEST(Sim, InstructionLimitStops) {
  SimOptions opts;
  opts.max_instructions = 50;
  const RunResult r = run_main(R"(
.global main
main:
  j main
)", opts);
  EXPECT_EQ(r.reason, StopReason::InstructionLimit);
  EXPECT_EQ(r.stats.instructions, 50u);
}

TEST(Sim, TraceRecordsOperations) {
  Simulator sim(isa::kisa());
  sim.load(build_exe(R"(
.global main
main:
  addi r5, r0, 3
  addi r4, r5, 4
  ret
)"));
  std::ostringstream os;
  TraceWriter trace(os);
  sim.set_trace(&trace);
  EXPECT_EQ(sim.run(), StopReason::Exited);
  const std::string t = os.str();
  EXPECT_GT(trace.records(), 5u);
  EXPECT_NE(t.find("ADDI"), std::string::npos);
  EXPECT_NE(t.find("imm=3"), std::string::npos);
  EXPECT_NE(t.find("out r5=0x00000003"), std::string::npos);
  EXPECT_NE(t.find("JR"), std::string::npos);
}

TEST(Sim, ProfilerAttributesToFunctions) {
  Simulator sim(isa::kisa());
  Profiler prof;
  sim.set_profiler(&prof);
  sim.load(build_exe(R"(
.global main
main:
  addi sp, sp, -8
  sw ra, 0(sp)
  addi r20, r0, 0
  addi r21, r0, 5
mloop:
  call work
  addi r20, r20, 1
  bne r20, r21, mloop
  lw ra, 0(sp)
  addi sp, sp, 8
  mv r4, r0
  ret

.func work
  addi r6, r0, 10
wloop:
  addi r6, r6, -1
  bnez r6, wloop
  ret
.endfunc
)"));
  EXPECT_EQ(sim.run(), StopReason::Exited);
  const auto report = prof.report();
  ASSERT_FALSE(report.empty());
  const auto work = std::find_if(report.begin(), report.end(),
                                 [](const FuncProfile& p) { return p.name == "work"; });
  ASSERT_NE(work, report.end());
  EXPECT_EQ(work->calls, 5u);
  EXPECT_GT(work->instructions, 100u); // 5 * (2 + 10*2)
}

TEST(Sim, CycleModelsProduceSaneOrdering) {
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 200
loop:
  addi r5, r5, 1
  mul r7, r5, r5
  bne r5, r6, loop
  mv r4, r0
  ret
)";
  cycle::IlpModel ilp;
  cycle::MemoryHierarchy mem_aie;
  cycle::AieModel aie(&mem_aie);
  cycle::MemoryHierarchy mem_doe;
  cycle::DoeModel doe(&mem_doe);

  uint64_t cycles[3];
  cycle::CycleModel* models[3] = {&ilp, &aie, &doe};
  for (int i = 0; i < 3; ++i) {
    Simulator sim(isa::kisa());
    sim.load(build_exe(source));
    sim.set_cycle_model(models[i]);
    EXPECT_EQ(sim.run(), StopReason::Exited);
    cycles[i] = models[i]->cycles();
    EXPECT_GT(cycles[i], 0u);
  }
  // ILP is an upper bound on parallelism → fewest cycles; AIE serializes whole
  // instructions → at least as many cycles as DOE on a RISC stream.
  EXPECT_LE(cycles[0], cycles[2]);
  EXPECT_LE(cycles[2], cycles[1] + 1);
}

TEST(Sim, HaltWithoutExitReportsHalted) {
  Simulator sim(isa::kisa());
  sim.load(build_exe(R"(
.global main
main:
  halt
)"));
  EXPECT_EQ(sim.run(), StopReason::Halted);
}

} // namespace
} // namespace ksim::sim
