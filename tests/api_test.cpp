// Tests for libksim (src/api/): RunConfig, Session, the versioned report
// schema, and the support/json parser + writer they build on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "analysis/lint.h"
#include "api/report.h"
#include "api/run_config.h"
#include "api/session.h"
#include "cycle/models.h"
#include "support/error.h"
#include "support/json.h"
#include "workloads/build.h"

namespace ksim {
namespace {

using support::JsonValue;
using support::JsonWriter;
using support::parse_json;

// --- support/json parser -----------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool("v"));
  EXPECT_FALSE(parse_json("false").as_bool("v"));
  EXPECT_DOUBLE_EQ(parse_json("3.5").as_number("v"), 3.5);
  EXPECT_EQ(parse_json("-17").as_int("v"), -17);
  EXPECT_EQ(parse_json("\"hi\\nthere\"").as_string("v"), "hi\nthere");
  EXPECT_EQ(parse_json("\"\\u0041\\u00e9\"").as_string("v"), "A\xc3\xa9");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = parse_json(R"({
    "name": "sweep", "threads": 8, "nested": {"ok": true},
    "list": [1, 2, 3], "empty": [], "eobj": {}
  })");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").as_string("name"), "sweep");
  EXPECT_EQ(v.at("threads").as_int("threads"), 8);
  EXPECT_TRUE(v.at("nested").at("ok").as_bool("ok"));
  ASSERT_EQ(v.at("list").array.size(), 3u);
  EXPECT_EQ(v.at("list").array[1].as_int("e"), 2);
  EXPECT_TRUE(v.at("empty").array.empty());
  EXPECT_TRUE(v.at("eobj").entries.empty());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, PreservesObjectKeyOrder) {
  const JsonValue v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.entries.size(), 3u);
  EXPECT_EQ(v.entries[0].first, "z");
  EXPECT_EQ(v.entries[1].first, "a");
  EXPECT_EQ(v.entries[2].first, "m");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("[1, 2,]"), Error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), Error);
  EXPECT_THROW(parse_json("\"unterminated"), Error);
  EXPECT_THROW(parse_json("12 34"), Error);
  EXPECT_THROW(parse_json("nul"), Error);
  EXPECT_THROW(parse_json(""), Error);
}

TEST(Json, ErrorsNameOriginAndPosition) {
  try {
    parse_json("{\n  \"a\": ?\n}", "manifest.json");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("manifest.json:2"), std::string::npos)
        << e.what();
  }
}

// --- support/json writer -----------------------------------------------------

TEST(Json, WriterEmitsStableKeyOrderAndRoundTrips) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "ksim.test");
  w.field("schema_version", support::kJsonSchemaVersion);
  w.field("count", static_cast<uint64_t>(42));
  w.field("ratio", 0.5);
  w.field("flag", true);
  w.begin_array("names");
  w.element("a\"b");
  w.element("c\\d");
  w.end();
  w.begin_object("inner");
  w.field("x", -1);
  w.end();
  w.end();
  const std::string doc = w.str();

  // Keys must appear in insertion order.
  EXPECT_LT(doc.find("\"schema\""), doc.find("\"schema_version\""));
  EXPECT_LT(doc.find("\"schema_version\""), doc.find("\"count\""));
  EXPECT_LT(doc.find("\"count\""), doc.find("\"ratio\""));
  EXPECT_LT(doc.find("\"names\""), doc.find("\"inner\""));

  const JsonValue v = parse_json(doc);
  EXPECT_EQ(v.at("schema").as_string("schema"), "ksim.test");
  EXPECT_EQ(v.at("schema_version").as_int("v"), support::kJsonSchemaVersion);
  EXPECT_EQ(v.at("count").as_int("count"), 42);
  EXPECT_TRUE(v.at("flag").as_bool("flag"));
  EXPECT_EQ(v.at("names").array[0].as_string("n"), "a\"b");
  EXPECT_EQ(v.at("names").array[1].as_string("n"), "c\\d");
  EXPECT_EQ(v.at("inner").at("x").as_int("x"), -1);
}

TEST(Json, WriterIsByteDeterministic) {
  const auto render = [] {
    JsonWriter w;
    w.begin_object();
    w.field("a", 1);
    w.field("b", "two");
    w.end();
    return w.str();
  };
  EXPECT_EQ(render(), render());
}

// --- RunConfig ---------------------------------------------------------------

TEST(RunConfig, DefaultsMatchSimOptions) {
  const api::RunConfig cfg;
  const sim::SimOptions sopt = cfg.sim_options();
  EXPECT_TRUE(sopt.use_decode_cache);
  EXPECT_TRUE(sopt.use_prediction);
  EXPECT_TRUE(sopt.use_superblocks);
  EXPECT_FALSE(sopt.collect_op_stats);
  EXPECT_EQ(sopt.max_instructions, 0u);
  EXPECT_EQ(sopt.libc_seed, 1u);
}

TEST(RunConfig, ValidateRejectsBadNames) {
  api::RunConfig cfg;
  cfg.isa = "MIPS";
  EXPECT_THROW(cfg.validate(), Error);
  cfg.isa = "RISC";
  cfg.model = "cache";
  EXPECT_THROW(cfg.validate(), Error);
  cfg.model = "ilp";
  cfg.bp_kind = "gshare"; // predictor without aie/doe
  EXPECT_THROW(cfg.validate(), Error);
  cfg.model = "doe";
  EXPECT_NO_THROW(cfg.validate());
  cfg.bp_kind = "oracle";
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(RunConfig, ValidateRejectsBadCheckpointCombos) {
  api::RunConfig cfg;
  cfg.ckpt_every = 1000; // without a directory
  EXPECT_THROW(cfg.validate(), Error);
  cfg.ckpt_dir = "/tmp/ckpt";
  EXPECT_NO_THROW(cfg.validate());
  cfg.model = "rtl";
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(RunConfig, RunRecordRoundTrip) {
  api::RunConfig cfg;
  cfg.model = "aie";
  cfg.bp_kind = "2bit";
  cfg.bp_penalty = 5;
  cfg.seed = 77;
  cfg.use_prediction = false;
  cfg.collect_op_stats = true;
  cfg.max_instructions = 123456;
  const ckpt::RunRecord rec = cfg.run_record("label@RISC");
  EXPECT_EQ(rec.workload, "label@RISC");
  EXPECT_TRUE(rec.elf_bytes.empty());

  const api::RunConfig back = api::RunConfig::from_run_record(rec);
  EXPECT_EQ(back.model, cfg.model);
  EXPECT_EQ(back.bp_kind, cfg.bp_kind);
  EXPECT_EQ(back.bp_penalty, cfg.bp_penalty);
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(back.use_prediction, cfg.use_prediction);
  EXPECT_EQ(back.collect_op_stats, cfg.collect_op_stats);
  EXPECT_EQ(back.max_instructions, cfg.max_instructions);
}

TEST(RunConfig, EnvOverridesApplyAndReport) {
  // KSIM_NO_SUPERBLOCKS / KSIM_NO_JIT may be set by the fallback CI
  // passes — tolerate them.
  const char* engine_env = std::getenv("KSIM_NO_SUPERBLOCKS");
  const char* jit_env = std::getenv("KSIM_NO_JIT");
  ::setenv("KSIM_NO_DECODE_CACHE", "1", 1);
  ::setenv("KSIM_SEED", "99", 1);
  api::RunConfig cfg;
  std::vector<api::EnvOverride> applied = api::apply_env_overrides(cfg);
  ::unsetenv("KSIM_NO_DECODE_CACHE");
  ::unsetenv("KSIM_SEED");
  EXPECT_FALSE(cfg.use_decode_cache);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.use_superblocks, engine_env == nullptr);
  EXPECT_EQ(cfg.use_jit, jit_env == nullptr);
  std::erase_if(applied, [](const api::EnvOverride& o) {
    return o.var == "KSIM_NO_SUPERBLOCKS" || o.var == "KSIM_NO_JIT";
  });
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0].var, "KSIM_NO_DECODE_CACHE");
  EXPECT_EQ(applied[0].replacement, "--no-decode-cache");
  EXPECT_EQ(applied[1].var, "KSIM_SEED");
}

TEST(RunConfig, NoEnvNoOverrides) {
  // KSIM_NO_SUPERBLOCKS / KSIM_NO_JIT may legitimately be set by the
  // fallback CI passes; the others must not leak into this environment.
  ::unsetenv("KSIM_NO_DECODE_CACHE");
  ::unsetenv("KSIM_NO_PREDICTION");
  ::unsetenv("KSIM_SEED");
  const size_t engine_envs =
      (std::getenv("KSIM_NO_SUPERBLOCKS") != nullptr ? 1u : 0u) +
      (std::getenv("KSIM_NO_JIT") != nullptr ? 1u : 0u);
  api::RunConfig cfg;
  const std::vector<api::EnvOverride> applied = api::apply_env_overrides(cfg);
  EXPECT_EQ(applied.size(), engine_envs);
  EXPECT_TRUE(cfg.use_decode_cache);
}

// --- Session -----------------------------------------------------------------

api::RunConfig quiet_workload_config(const std::string& workload,
                                     const std::string& isa,
                                     const std::string& model) {
  api::RunConfig cfg;
  cfg.workload = workload;
  cfg.isa = isa;
  cfg.model = model;
  cfg.echo_output = false;
  return cfg;
}

TEST(Session, MatchesRunExecutableHelper) {
  const api::RunConfig cfg = quiet_workload_config("dct", "VLIW4", "ilp");
  api::Session session(cfg);
  const sim::StopReason reason = session.run();
  EXPECT_EQ(reason, sim::StopReason::Exited);

  cycle::IlpModel reference_model;
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "VLIW4");
  const workloads::RunOutcome reference =
      workloads::run_executable(exe, &reference_model);

  EXPECT_EQ(session.simulator().stats().instructions, reference.stats.instructions);
  EXPECT_EQ(session.simulator().stats().operations, reference.stats.operations);
  EXPECT_EQ(session.model()->cycles(), reference.cycles);
  EXPECT_EQ(session.simulator().libc().output(), reference.output);
  EXPECT_EQ(session.label(), "dct@VLIW4");
}

TEST(Session, SharedImageSessionsAreIndependent) {
  api::RunConfig cfg = quiet_workload_config("dct", "RISC", "none");
  const api::ProgramImage image = api::resolve_input(cfg);
  api::Session a(cfg, image);
  api::Session b(cfg, image);
  EXPECT_EQ(a.run(), sim::StopReason::Exited);
  EXPECT_EQ(b.run(), sim::StopReason::Exited);
  EXPECT_EQ(a.simulator().stats().instructions, b.simulator().stats().instructions);
  EXPECT_EQ(a.simulator().libc().output(), b.simulator().libc().output());
}

TEST(Session, ReportJsonIsVersionedAndOrdered) {
  api::Session session(quiet_workload_config("dct", "RISC", "doe"));
  const sim::StopReason reason = session.run();
  const api::Report report = session.report(reason);
  const std::string doc = api::render_report_json(report);

  // Header keys first, in order; the document must parse with our own parser.
  const JsonValue v = parse_json(doc);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.entries[0].first, "schema");
  EXPECT_EQ(v.entries[0].second.as_string("schema"), "ksim.run");
  EXPECT_EQ(v.entries[1].first, "schema_version");
  EXPECT_EQ(v.entries[1].second.as_int("schema_version"), api::kSchemaVersion);
  EXPECT_EQ(v.at("target").as_string("target"), "dct@RISC");
  EXPECT_EQ(v.at("model").as_string("model"), "doe");
  EXPECT_EQ(v.at("stop_reason").as_string("stop_reason"), "exited");
  EXPECT_EQ(static_cast<uint64_t>(v.at("instructions").as_int("instructions")),
            session.simulator().stats().instructions);
  EXPECT_EQ(static_cast<uint64_t>(v.at("cycles").as_int("cycles")),
            session.model()->cycles());
}

TEST(Session, ReportTextMatchesClassicShape) {
  api::Session session(quiet_workload_config("dct", "RISC", "ilp"));
  const api::Report report = session.report(session.run());
  const std::string text = api::render_report_text(report);
  EXPECT_NE(text.find("[ksim] exited after"), std::string::npos) << text;
  EXPECT_NE(text.find("ILP cycles:"), std::string::npos) << text;
  if (session.simulator().options().use_superblocks)
    EXPECT_NE(text.find("[ksim] superblocks:"), std::string::npos) << text;
  else
    EXPECT_EQ(text.find("[ksim] superblocks:"), std::string::npos) << text;
}

// --- libc per-session isolation (no shared statics) --------------------------

/// A MiniC program whose output depends on the emulated rand() stream and on
/// accumulated printf output — the state that must be strictly per-Session.
const char* kRandProgram = R"(
int main() {
  int i;
  int acc = 0;
  for (i = 0; i < 8; i++) {
    int r = rand();
    acc = acc + (r & 1023);
    printf("r%d=%d\n", i, r);
  }
  printf("acc=%d\n", acc);
  return 0;
}
)";

TEST(Session, InterleavedSessionsMatchSerialRuns) {
  const elf::ElfFile exe =
      workloads::build_executable(kRandProgram, "RISC", "rand.c");
  api::RunConfig cfg_a;
  cfg_a.echo_output = false;
  cfg_a.seed = 1;
  api::RunConfig cfg_b = cfg_a;
  cfg_b.seed = 0xDEADBEEF;

  // Reference: two serial runs.
  const api::ProgramImage image{exe, "rand@RISC"};
  api::Session serial_a(cfg_a, image);
  EXPECT_EQ(serial_a.run(), sim::StopReason::Exited);
  api::Session serial_b(cfg_b, image);
  EXPECT_EQ(serial_b.run(), sim::StopReason::Exited);
  const std::string out_a = serial_a.simulator().libc().output();
  const std::string out_b = serial_b.simulator().libc().output();
  EXPECT_NE(out_a, out_b); // different seeds → different streams

  // Interleaved: alternate single steps between two live sessions.  Any
  // shared libc state (rand LCG, output buffer, heap pointer) would bleed
  // between them and change at least one output.
  api::Session inter_a(cfg_a, image);
  api::Session inter_b(cfg_b, image);
  bool a_done = false;
  bool b_done = false;
  while (!a_done || !b_done) {
    if (!a_done && inter_a.simulator().step().has_value()) a_done = true;
    if (!b_done && inter_b.simulator().step().has_value()) b_done = true;
  }
  EXPECT_EQ(inter_a.simulator().libc().output(), out_a);
  EXPECT_EQ(inter_b.simulator().libc().output(), out_b);
  EXPECT_EQ(inter_a.simulator().stats().instructions,
            serial_a.simulator().stats().instructions);
  EXPECT_EQ(inter_b.simulator().stats().instructions,
            serial_b.simulator().stats().instructions);
}

TEST(Session, LintReachableThroughApi) {
  api::Session session(quiet_workload_config("dct", "RISC", "none"));
  // lint() is independent of run(): usable before simulating.
  const analysis::LintResult before = session.lint();
  EXPECT_TRUE(before.clean());
  EXPECT_GT(before.functions, 0);
  EXPECT_GT(before.callgraph.nodes, 0);
  EXPECT_GT(before.callgraph.edges, 0);
  EXPECT_FALSE(before.translatability.functions.empty());
  EXPECT_GT(before.translatability.total_functions,
            before.translatability.safe_functions);

  // ... and after, with identical results (the image is immutable).
  EXPECT_EQ(session.run(), sim::StopReason::Exited);
  const analysis::LintResult after = session.lint();
  EXPECT_EQ(analysis::render_json(after, "t"),
            analysis::render_json(before, "t"));
}

TEST(RunConfig, EnvWarningsDeduplicatePerProcess) {
  // Sweeps and embedders construct many Sessions; each deprecated variable
  // must warn at most once per process no matter how often it is reported.
  const std::vector<api::EnvOverride> overrides = {
      {"KSIM_TEST_DEDUP_VAR", "--test-dedup"}};
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  api::warn_env_overrides(overrides);
  api::warn_env_overrides(overrides);
  api::warn_env_overrides(overrides);
  std::cerr.rdbuf(old);
  size_t hits = 0;
  for (size_t pos = captured.str().find("KSIM_TEST_DEDUP_VAR");
       pos != std::string::npos;
       pos = captured.str().find("KSIM_TEST_DEDUP_VAR", pos + 1))
    ++hits;
  EXPECT_EQ(hits, 1u);
}

} // namespace
} // namespace ksim
