#include <gtest/gtest.h>

#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/disasm.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "support/error.h"

namespace ksim::kasm {
namespace {

uint32_t text_word(const elf::ElfFile& obj, uint32_t index) {
  const elf::Section* text = obj.find_section(".text");
  EXPECT_NE(text, nullptr);
  uint32_t w = 0;
  for (int i = 3; i >= 0; --i)
    w = (w << 8) | text->data.at(index * 4 + static_cast<uint32_t>(i));
  return w;
}

TEST(Assembler, EncodesRType) {
  const elf::ElfFile obj = assemble_or_throw("add r4, r5, r6\n");
  const uint32_t w = text_word(obj, 0);
  EXPECT_EQ(w >> 31, 1u);            // stop bit (RISC: every op ends its instruction)
  EXPECT_EQ((w >> 25) & 0x3F, 0u);   // opcode 0 (R-type)
  EXPECT_EQ((w >> 20) & 0x1F, 4u);   // rd
  EXPECT_EQ((w >> 15) & 0x1F, 5u);   // ra
  EXPECT_EQ((w >> 10) & 0x1F, 6u);   // rb
  EXPECT_EQ((w >> 4) & 0x3F, 0u);    // funct ADD
}

TEST(Assembler, EncodesITypeWithNegativeImmediate) {
  const elf::ElfFile obj = assemble_or_throw("addi r4, r5, -3\n");
  const uint32_t w = text_word(obj, 0);
  EXPECT_EQ((w >> 25) & 0x3F, 1u);
  EXPECT_EQ(w & 0x7FFF, 0x7FFDu); // -3 in 15 bits
}

TEST(Assembler, EncodesMemoryOperand) {
  const elf::ElfFile obj = assemble_or_throw("lw r4, 8(r2)\nsw r4, -4(sp)\n");
  const uint32_t lw = text_word(obj, 0);
  EXPECT_EQ((lw >> 25) & 0x3F, 16u);
  EXPECT_EQ((lw >> 15) & 0x1F, 2u);
  EXPECT_EQ(lw & 0x7FFF, 8u);
  const uint32_t sw = text_word(obj, 1);
  EXPECT_EQ(sw & 0x7FFF, 0x7FFCu); // -4
}

TEST(Assembler, RegisterAliases) {
  const elf::ElfFile obj = assemble_or_throw("add zero, ra, sp\n");
  const uint32_t w = text_word(obj, 0);
  EXPECT_EQ((w >> 20) & 0x1F, 0u);
  EXPECT_EQ((w >> 15) & 0x1F, 1u);
  EXPECT_EQ((w >> 10) & 0x1F, 2u);
}

TEST(Assembler, LocalBranchResolvedWithoutReloc) {
  const elf::ElfFile obj = assemble_or_throw(R"(
loop:
  addi r4, r4, 1
  bne r4, r5, loop
)");
  // bne at word 1; target = loop (word 0); offset = (0 - 8)/4 = -2.
  const uint32_t w = text_word(obj, 1);
  EXPECT_EQ(static_cast<int32_t>((w & 0x7FFF) << 17) >> 17, -2);
  EXPECT_TRUE(obj.relocations.empty());
}

TEST(Assembler, ForwardBranchResolved) {
  const elf::ElfFile obj = assemble_or_throw(R"(
  beq r1, r2, done
  addi r4, r4, 1
done:
  halt
)");
  const uint32_t w = text_word(obj, 0);
  EXPECT_EQ(static_cast<int32_t>((w & 0x7FFF) << 17) >> 17, 1); // skip one word
}

TEST(Assembler, UndefinedSymbolGetsReloc) {
  const elf::ElfFile obj = assemble_or_throw("call external_fn\n");
  ASSERT_EQ(obj.relocations.size(), 1u);
  const auto& relocs = obj.relocations.front().second;
  ASSERT_EQ(relocs.size(), 1u);
  EXPECT_EQ(relocs[0].type, elf::R_KISA_ABS25);
  EXPECT_EQ(obj.symbols[relocs[0].symbol].name, "external_fn");
  EXPECT_EQ(obj.symbols[relocs[0].symbol].shndx, elf::SHN_UNDEF);
}

TEST(Assembler, LaEmitsHiLoRelocs) {
  const elf::ElfFile obj = assemble_or_throw(".data\nbuf: .space 16\n.text\nla r4, buf\n");
  ASSERT_EQ(obj.relocations.size(), 1u);
  const auto& relocs = obj.relocations.front().second;
  ASSERT_EQ(relocs.size(), 2u);
  EXPECT_EQ(relocs[0].type, elf::R_KISA_HI16);
  EXPECT_EQ(relocs[1].type, elf::R_KISA_LO16);
}

TEST(Assembler, LiSmallAndLarge) {
  const elf::ElfFile small = assemble_or_throw("li r4, 100\n");
  EXPECT_EQ(small.find_section(".text")->data.size(), 4u); // single ADDI
  const elf::ElfFile large = assemble_or_throw("li r4, 0x12345678\n");
  EXPECT_EQ(large.find_section(".text")->data.size(), 8u); // LUI + ORLO
  const elf::ElfFile highonly = assemble_or_throw("li r4, 0x10000\n");
  EXPECT_EQ(highonly.find_section(".text")->data.size(), 4u); // LUI only
}

TEST(Assembler, VliwGroupStopBits) {
  AsmOptions opt;
  opt.initial_isa = "VLIW4";
  const elf::ElfFile obj =
      assemble_or_throw("add r4, r5, r6 || sub r7, r8, r9 || and r10, r11, r12\n", opt);
  EXPECT_EQ(text_word(obj, 0) >> 31, 0u);
  EXPECT_EQ(text_word(obj, 1) >> 31, 0u);
  EXPECT_EQ(text_word(obj, 2) >> 31, 1u); // last op carries the stop bit
}

TEST(Assembler, IsaDirectiveSwitchesIssueWidth) {
  DiagEngine diags;
  assemble("add r1, r2, r3 || add r4, r5, r6\n", {}, diags);
  EXPECT_TRUE(diags.has_errors()); // RISC is 1-issue

  const elf::ElfFile ok = assemble_or_throw(".isa VLIW2\nadd r1, r2, r3 || add r4, r5, r6\n");
  EXPECT_EQ(ok.find_section(".text")->data.size(), 8u);
}

TEST(Assembler, GroupRestrictions) {
  AsmOptions opt;
  opt.initial_isa = "VLIW4";
  { // serial-only op in a group
    DiagEngine d;
    assemble("simop 0 || add r1, r2, r3\n", opt, d);
    EXPECT_TRUE(d.has_errors());
  }
  { // two branches in one group
    DiagEngine d;
    assemble("beq r1, r2, x || bne r3, r4, x\nx: halt\n", opt, d);
    EXPECT_TRUE(d.has_errors());
  }
  { // multi-op pseudo in a group
    DiagEngine d;
    assemble("la r4, x || add r1, r2, r3\nx: halt\n", opt, d);
    EXPECT_TRUE(d.has_errors());
  }
}

TEST(Assembler, SwitchTargetAcceptsIsaName) {
  const elf::ElfFile obj = assemble_or_throw("switchtarget VLIW4\nswt 2\n");
  EXPECT_EQ(text_word(obj, 0) & 0x7FFF, 2u); // VLIW4 has id 2
  EXPECT_EQ(text_word(obj, 1) & 0x7FFF, 2u);
}

TEST(Assembler, DataDirectives) {
  const elf::ElfFile obj = assemble_or_throw(R"(
.data
vals: .word 1, -2, 0x30
h: .half 7, 8
b: .byte 255
s: .asciz "hi\n"
.align 4
end: .word 0
)");
  const elf::Section* data = obj.find_section(".data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->data[0], 1u);
  EXPECT_EQ(data->data[4], 0xFEu); // -2
  EXPECT_EQ(data->data[8], 0x30u);
  EXPECT_EQ(data->data[12], 7u);
  EXPECT_EQ(data->data[16], 255u);
  EXPECT_EQ(data->data[17], 'h');
  EXPECT_EQ(data->data[19], '\n');
  EXPECT_EQ(data->data[20], 0u); // NUL from .asciz
  const elf::Symbol* end = obj.find_symbol("end");
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(end->value % 4, 0u);
}

TEST(Assembler, FuncSymbolsCarrySize) {
  const elf::ElfFile obj = assemble_or_throw(R"(
.global f
.func f
  addi r4, r4, 1
  ret
.endfunc
)");
  const elf::Symbol* f = obj.find_symbol("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(elf::st_type(f->info), elf::STT_FUNC);
  EXPECT_EQ(f->size, 8u);
}

TEST(Assembler, ErrorsHaveLineNumbers) {
  DiagEngine diags;
  assemble("add r1, r2, r3\nbogus r1\n", {}, diags);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.diags().front().loc.line, 2);
}

TEST(Assembler, RangeChecks) {
  DiagEngine d1;
  assemble("addi r4, r5, 20000\n", {}, d1); // > 2^14-1
  EXPECT_TRUE(d1.has_errors());
  DiagEngine d2;
  assemble("lw r4, 999999(r2)\n", {}, d2);
  EXPECT_TRUE(d2.has_errors());
}

TEST(Disasm, RoundTripsRepresentativeOps) {
  const isa::IsaSet& set = isa::kisa();
  const isa::IsaInfo& risc = *set.find_isa("RISC");
  struct Case {
    const char* source;
    const char* expect;
  };
  const Case cases[] = {
      {"add r4, r5, r6", "add r4, r5, r6"},
      {"addi r4, r5, -3", "addi r4, r5, -3"},
      {"lw r4, 8(r2)", "lw r4, 8(r2)"},
      {"jr r1", "jr r1"},
      {"halt", "halt"},
      {"simop 3", "simop 3"},
  };
  for (const Case& c : cases) {
    const elf::ElfFile obj = assemble_or_throw(std::string(c.source) + "\n");
    uint32_t w = text_word(obj, 0);
    EXPECT_EQ(disassemble_op(set, risc, w), c.expect);
  }
}

// ---- linker -------------------------------------------------------------------

TEST(Linker, ResolvesCrossObjectCalls) {
  const elf::ElfFile a = assemble_or_throw(R"(
.global _start
.func _start
  call helper
  halt
.endfunc
)");
  const elf::ElfFile b = assemble_or_throw(R"(
.global helper
.func helper
  addi r4, r0, 42
  ret
.endfunc
)");
  const elf::ElfFile exe = link_or_throw({a, b});
  EXPECT_EQ(exe.type, elf::ET_EXEC);
  EXPECT_EQ(exe.entry, isa::kCodeBase);
  const elf::Symbol* helper = exe.find_symbol("helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->value, isa::kCodeBase + 8); // after _start's two words
  // The JAL at word 0 must now encode helper's word address.
  const elf::Section* text = exe.find_section(".text");
  uint32_t w = 0;
  for (int i = 3; i >= 0; --i) w = (w << 8) | text->data[static_cast<size_t>(i)];
  EXPECT_EQ(w & 0x1FFFFFF, (isa::kCodeBase + 8) / 4);
}

TEST(Linker, ReportsUndefinedSymbol) {
  const elf::ElfFile a = assemble_or_throw(".global _start\n_start: call missing\n");
  DiagEngine diags;
  link({a}, {}, diags);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("undefined symbol 'missing'"), std::string::npos);
}

TEST(Linker, ReportsDuplicateSymbol) {
  const elf::ElfFile a = assemble_or_throw(".global f\nf: halt\n.global _start\n_start: halt\n");
  const elf::ElfFile b = assemble_or_throw(".global f\nf: halt\n");
  DiagEngine diags;
  link({a, b}, {}, diags);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("duplicate definition"), std::string::npos);
}

TEST(Linker, AppliesHiLoRelocsAcrossObjects) {
  const elf::ElfFile a = assemble_or_throw(R"(
.global _start
_start:
  la r4, shared_buf
  halt
)");
  const elf::ElfFile b = assemble_or_throw(R"(
.global shared_buf
.data
shared_buf: .word 1, 2, 3
)");
  const elf::ElfFile exe = link_or_throw({a, b});
  const elf::Symbol* buf = exe.find_symbol("shared_buf");
  ASSERT_NE(buf, nullptr);
  const elf::Section* text = exe.find_section(".text");
  auto word_at = [&](size_t i) {
    uint32_t w = 0;
    for (int k = 3; k >= 0; --k) w = (w << 8) | text->data[i * 4 + static_cast<size_t>(k)];
    return w;
  };
  const uint32_t lui = word_at(0);
  const uint32_t orlo = word_at(1);
  const uint32_t assembled = ((lui & 0xFFFF) << 16) | (orlo & 0xFFFF);
  EXPECT_EQ(assembled, buf->value);
}

TEST(Linker, MergesDebugLineMaps) {
  AsmOptions oa;
  oa.file_name = "a.s";
  const elf::ElfFile a = assemble_or_throw(".global _start\n_start: halt\n", oa);
  AsmOptions ob;
  ob.file_name = "b.s";
  const elf::ElfFile b = assemble_or_throw("f: addi r4, r4, 1\n", ob);
  const elf::ElfFile exe = link_or_throw({a, b});
  const elf::Section* dbg = exe.find_section(".kdbg.asm");
  ASSERT_NE(dbg, nullptr);
  const elf::LineMap map = elf::LineMap::parse(dbg->data);
  ASSERT_EQ(map.entries.size(), 2u);
  EXPECT_EQ(map.files[map.entries[0].file], "a.s");
  EXPECT_EQ(map.files[map.entries[1].file], "b.s");
  EXPECT_EQ(map.entries[1].addr, isa::kCodeBase + 4);
}

TEST(Stubs, LibcStubsAssembleAndExportEveryFunction) {
  const elf::ElfFile obj = assemble_or_throw(libc_stub_assembly());
  for (int i = 0; i < isa::kNumLibcOps; ++i) {
    const std::string name(isa::libc_op_name(static_cast<isa::LibcOp>(i)));
    const elf::Symbol* sym = obj.find_symbol(name);
    ASSERT_NE(sym, nullptr) << name;
    EXPECT_EQ(elf::st_type(sym->info), elf::STT_FUNC);
    EXPECT_EQ(sym->size, 8u); // SIMOP + RET
  }
}

TEST(Stubs, StartStubLinksAgainstMain) {
  const elf::ElfFile start = assemble_or_throw(start_stub_assembly());
  const elf::ElfFile main_obj = assemble_or_throw(R"(
.global main
.func main
  addi r4, r0, 7
  ret
.endfunc
)");
  const elf::ElfFile exe = link_or_throw({start, main_obj});
  EXPECT_NE(exe.find_symbol("_start"), nullptr);
  EXPECT_EQ(exe.entry, exe.find_symbol("_start")->value);
}

} // namespace
} // namespace ksim::kasm
