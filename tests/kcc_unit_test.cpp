// Unit tests for the MiniC compiler internals: lexer, parser, IR generation,
// block layout, register allocation and the VLIW scheduler.
#include <gtest/gtest.h>

#include "isa/kisa.h"
#include "kcc/irgen.h"
#include "kcc/lexer.h"
#include "kcc/parser.h"
#include "kcc/regalloc.h"
#include "kcc/schedule.h"

namespace ksim::kcc {
namespace {

// -- lexer ---------------------------------------------------------------------

std::vector<Token> lex_ok(const std::string& src) {
  DiagEngine diags;
  auto tokens = lex(src, "t.c", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  return tokens;
}

TEST(Lexer, TokenKindsAndValues) {
  const auto t = lex_ok("int x = 0x1F + 42; // comment\nchar c = 'a';");
  ASSERT_GE(t.size(), 12u);
  EXPECT_EQ(t[0].kind, Tok::KwInt);
  EXPECT_EQ(t[1].kind, Tok::Ident);
  EXPECT_EQ(t[1].text, "x");
  EXPECT_EQ(t[2].kind, Tok::Assign);
  EXPECT_EQ(t[3].kind, Tok::IntLit);
  EXPECT_EQ(t[3].value, 31);
  EXPECT_EQ(t[4].kind, Tok::Plus);
  EXPECT_EQ(t[5].value, 42);
  EXPECT_EQ(t[7].kind, Tok::KwChar);
  const auto lit = std::find_if(t.begin(), t.end(),
                                [](const Token& x) { return x.kind == Tok::CharLit; });
  ASSERT_NE(lit, t.end());
  EXPECT_EQ(lit->value, 'a');
}

TEST(Lexer, MultiCharOperators) {
  const auto t = lex_ok("a <<= 1; b >>= 2; c <= d; e >= f; g == h; i != j; "
                        "k && l; m || n; o++; p--; q += r;");
  auto count = [&](Tok k) {
    return std::count_if(t.begin(), t.end(), [&](const Token& x) { return x.kind == k; });
  };
  EXPECT_EQ(count(Tok::ShlAssign), 1);
  EXPECT_EQ(count(Tok::ShrAssign), 1);
  EXPECT_EQ(count(Tok::Le), 1);
  EXPECT_EQ(count(Tok::Ge), 1);
  EXPECT_EQ(count(Tok::EqEq), 1);
  EXPECT_EQ(count(Tok::NotEq), 1);
  EXPECT_EQ(count(Tok::AndAnd), 1);
  EXPECT_EQ(count(Tok::OrOr), 1);
  EXPECT_EQ(count(Tok::Inc), 1);
  EXPECT_EQ(count(Tok::Dec), 1);
  EXPECT_EQ(count(Tok::PlusAssign), 1);
}

TEST(Lexer, StringEscapesAndComments) {
  const auto t = lex_ok("/* block\ncomment */ \"a\\n\\t\\\"b\\\\\"");
  ASSERT_EQ(t.size(), 2u); // string + eof
  EXPECT_EQ(t[0].kind, Tok::StrLit);
  EXPECT_EQ(t[0].text, "a\n\t\"b\\");
}

TEST(Lexer, LineAndColumnTracking) {
  const auto t = lex_ok("int\n  foo;");
  EXPECT_EQ(t[0].line, 1);
  EXPECT_EQ(t[1].line, 2);
  EXPECT_EQ(t[1].column, 3);
}

TEST(Lexer, ReportsBadTokens) {
  DiagEngine diags;
  lex("int a = `;", "t.c", diags);
  EXPECT_TRUE(diags.has_errors());
  DiagEngine diags2;
  lex("\"unterminated", "t.c", diags2);
  EXPECT_TRUE(diags2.has_errors());
}

// -- parser ----------------------------------------------------------------------

TranslationUnit parse_ok(const std::string& src) {
  DiagEngine diags;
  TranslationUnit unit = parse(src, "t.c", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  return unit;
}

TEST(Parser, PrecedenceShapesTheTree) {
  const TranslationUnit u = parse_ok("int x = 1 + 2 * 3;");
  ASSERT_EQ(u.globals.size(), 1u);
  const Expr& e = *u.globals[0]->init;
  ASSERT_EQ(e.kind, Expr::Kind::Binary);
  EXPECT_EQ(e.op, Tok::Plus);
  EXPECT_EQ(e.b->op, Tok::Star); // * binds tighter
}

TEST(Parser, UnaryAndPostfixChain) {
  const TranslationUnit u = parse_ok("int f(int *p) { return -*p + p[1]++; }");
  ASSERT_EQ(u.functions.size(), 1u);
  EXPECT_EQ(u.functions[0]->params.size(), 1u);
  EXPECT_EQ(u.functions[0]->params[0].type.ptr, 1);
}

TEST(Parser, IsaAttribute) {
  const TranslationUnit u = parse_ok("isa(\"VLIW4\") int f() { return 0; }");
  EXPECT_EQ(u.functions[0]->isa, "VLIW4");
}

TEST(Parser, ArraySizeFromInitializer) {
  const TranslationUnit u = parse_ok("int a[] = {1, 2, 3};\nchar s[] = \"hi\";");
  EXPECT_EQ(u.globals[0]->array_size, 3);
  EXPECT_EQ(u.globals[1]->array_size, 3); // "hi" + NUL
}

TEST(Parser, ConstantExpressionArraySize) {
  const TranslationUnit u = parse_ok("int a[4 * 8 + 2];");
  EXPECT_EQ(u.globals[0]->array_size, 34);
}

TEST(Parser, ForLoopVariants) {
  parse_ok("int f() { for (;;) break; for (int i = 0; i < 3; i++) {} "
           "int j; for (j = 9; j; j--) continue; return 0; }");
}

TEST(Parser, RecoverAfterError) {
  DiagEngine diags;
  const TranslationUnit u = parse("int f() { int x = ; } int g() { return 1; }",
                                  "t.c", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(u.functions.size(), 2u); // parser recovered and saw g()
}

// -- IR generation -------------------------------------------------------------------

IrProgram ir_ok(const std::string& src) {
  DiagEngine diags;
  const TranslationUnit unit = parse(src, "t.c", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  IrProgram prog = generate_ir(unit, "t.c", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  return prog;
}

TEST(IrGen, EveryBlockEndsWithTerminator) {
  const IrProgram prog = ir_ok(R"(
int f(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    if (i == 3) continue;
    if (i == 7) break;
    s += i;
  }
  while (s > 100) s /= 2;
  return s;
}
int main() { return f(20); }
)");
  for (const IrFunction& fn : prog.functions)
    for (const IrBlock& b : fn.blocks) {
      ASSERT_FALSE(b.insts.empty()) << fn.name << " b" << b.id;
      const IrOp op = b.insts.back().op;
      EXPECT_TRUE(op == IrOp::Br || op == IrOp::CondBr || op == IrOp::Ret)
          << fn.name << " b" << b.id;
    }
}

TEST(IrGen, LayoutTargetsAreValid) {
  const IrProgram prog = ir_ok(R"(
int f(int n) {
  int r = 1;
  do { r = r * 2 + (n & 1); n >>= 1; } while (n);
  return r;
}
int main() { return f(77); }
)");
  for (const IrFunction& fn : prog.functions) {
    const int n = static_cast<int>(fn.blocks.size());
    for (const IrBlock& b : fn.blocks) {
      EXPECT_EQ(fn.blocks[static_cast<size_t>(b.id)].id, b.id);
      const IrInst& t = b.insts.back();
      if (t.op == IrOp::Br) EXPECT_LT(t.target, n);
      if (t.op == IrOp::CondBr) {
        EXPECT_LT(t.target, n);
        EXPECT_LT(t.target2, n);
      }
    }
  }
}

TEST(IrGen, ConstantFoldingCollapsesExpressions) {
  const IrProgram prog = ir_ok("int main() { return (3 + 4) * (10 - 2) / 2; }");
  // The whole expression folds into one constant: li 28; ret.
  const IrFunction& fn = prog.functions.back();
  int li_count = 0;
  for (const IrBlock& b : fn.blocks)
    for (const IrInst& i : b.insts)
      if (i.op == IrOp::LiConst) {
        EXPECT_EQ(i.imm, 28);
        ++li_count;
      }
  EXPECT_EQ(li_count, 1);
}

TEST(IrGen, StringsAreInternedOnce) {
  const IrProgram prog = ir_ok(R"(
int main() {
  puts("shared");
  puts("shared");
  puts("different");
  return 0;
}
)");
  int string_globals = 0;
  for (const GlobalVar& g : prog.globals)
    if (g.name.rfind(".Lstr", 0) == 0) ++string_globals;
  EXPECT_EQ(string_globals, 2);
}

TEST(IrGen, DumpContainsFunctionStructure) {
  const IrProgram prog = ir_ok("int main() { int x = 1; return x + 2; }");
  const std::string text = dump(prog);
  EXPECT_NE(text.find("function main"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

// -- register allocation -----------------------------------------------------------

IrFunction first_fn(IrProgram& prog, const std::string& name) {
  for (IrFunction& fn : prog.functions)
    if (fn.name == name) return std::move(fn);
  ADD_FAILURE() << "no function " << name;
  return {};
}

TEST(RegAlloc, LeafFunctionUsesCallerSavedOnly) {
  IrProgram prog = ir_ok("int leaf(int a, int b) { return a * b + a - b; }");
  const IrFunction fn = first_fn(prog, "leaf");
  const Allocation alloc = allocate_registers(fn);
  EXPECT_EQ(alloc.num_spill_slots, 0);
  for (int r = regs::kCalleeFirst; r <= regs::kCalleeLast; ++r)
    EXPECT_FALSE(alloc.callee_used[static_cast<size_t>(r)]);
}

TEST(RegAlloc, ValuesLiveAcrossCallsGetCalleeSaved) {
  IrProgram prog = ir_ok(R"(
int g(int x);
int f(int a) {
  int keep = a * 3;
  int r = g(a);
  return keep + r;
}
int g(int x) { return x + 1; }
)");
  const IrFunction fn = first_fn(prog, "f");
  const Allocation alloc = allocate_registers(fn);
  bool any_callee = false;
  for (int r = regs::kCalleeFirst; r <= regs::kCalleeLast; ++r)
    any_callee |= alloc.callee_used[static_cast<size_t>(r)];
  EXPECT_TRUE(any_callee);
}

TEST(RegAlloc, SpillsWhenPressureExceedsRegisters) {
  std::string src = "int f() {\n";
  for (int i = 0; i < 40; ++i)
    src += "  int v" + std::to_string(i) + " = " + std::to_string(i) + " * 3;\n";
  src += "  int s = 0;\n";
  for (int i = 0; i < 40; ++i) src += "  s += v" + std::to_string(i) + ";\n";
  src += "  return s;\n}\n";
  IrProgram prog = ir_ok(src);
  const IrFunction fn = first_fn(prog, "f");
  const Allocation alloc = allocate_registers(fn);
  EXPECT_GT(alloc.num_spill_slots, 0);
}

TEST(RegAlloc, EveryUsedVregGetsALocation) {
  IrProgram prog = ir_ok(R"(
int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) acc += i * i;
  return acc;
}
)");
  const IrFunction fn = first_fn(prog, "f");
  const Allocation alloc = allocate_registers(fn);
  std::vector<int> uses;
  for (const IrBlock& b : fn.blocks)
    for (const IrInst& inst : b.insts) {
      uses.clear();
      ir_uses(inst, uses);
      for (int v : uses)
        EXPECT_TRUE(alloc.reg[static_cast<size_t>(v)] >= 0 ||
                    alloc.spill_slot[static_cast<size_t>(v)] >= 0)
            << "v" << v;
    }
}

// -- scheduler ----------------------------------------------------------------------

MachineOp make_op(const char* name, int rd, int ra, int rb, int32_t imm = 0) {
  MachineOp op;
  op.info = isa::kisa().find_op(name);
  EXPECT_NE(op.info, nullptr) << name;
  op.rd = static_cast<uint8_t>(rd);
  op.ra = static_cast<uint8_t>(ra);
  op.rb = static_cast<uint8_t>(rb);
  op.imm = imm;
  return op;
}

TEST(Scheduler, IndependentOpsPackIntoOneGroup) {
  std::vector<MachineOp> ops = {
      make_op("ADD", 5, 1, 2), make_op("SUB", 6, 1, 2), make_op("XOR", 7, 1, 2),
      make_op("AND", 8, 1, 2)};
  const auto groups = schedule_block(ops, 4);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 4u);
}

TEST(Scheduler, RawDependenceSplitsGroups) {
  std::vector<MachineOp> ops = {make_op("ADD", 5, 1, 2), make_op("ADD", 6, 5, 2)};
  const auto groups = schedule_block(ops, 8);
  ASSERT_EQ(groups.size(), 2u);
}

TEST(Scheduler, WarMayShareAGroupButNeverReorders) {
  // op0 reads r5, op1 writes r5: legal in one group (read-before-write).
  std::vector<MachineOp> ops = {make_op("ADD", 6, 5, 2), make_op("ADD", 5, 1, 2)};
  const auto groups = schedule_block(ops, 8);
  ASSERT_EQ(groups.size(), 1u);
  // The reader must come first in slot order.
  EXPECT_EQ(groups[0][0].rd, 6);
}

TEST(Scheduler, WawNeverSharesAGroup) {
  std::vector<MachineOp> ops = {make_op("ADD", 5, 1, 2), make_op("SUB", 5, 3, 4)};
  const auto groups = schedule_block(ops, 8);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(Scheduler, MemoryOrderingIsPessimistic) {
  // load; store; load — the second load may not cross the store.
  std::vector<MachineOp> ops = {
      make_op("LW", 5, 2, 0, 0),
      make_op("SW", 6, 2, 0, 4),
      make_op("LW", 7, 2, 0, 8),
  };
  const auto groups = schedule_block(ops, 8);
  ASSERT_GE(groups.size(), 2u);
  // Find positions: the second LW must come after the SW's group.
  int sw_group = -1;
  int lw2_group = -1;
  for (size_t g = 0; g < groups.size(); ++g)
    for (const MachineOp& op : groups[g]) {
      if (op.info->name == "SW") sw_group = static_cast<int>(g);
      if (op.info->name == "LW" && op.rd == 7) lw2_group = static_cast<int>(g);
    }
  EXPECT_GT(lw2_group, sw_group);
}

TEST(Scheduler, TwoLoadsMayShareAGroup) {
  std::vector<MachineOp> ops = {make_op("LW", 5, 2, 0, 0), make_op("LW", 6, 2, 0, 4)};
  const auto groups = schedule_block(ops, 8);
  EXPECT_EQ(groups.size(), 1u);
}

TEST(Scheduler, BranchStaysLast) {
  std::vector<MachineOp> ops = {make_op("ADD", 5, 1, 2), make_op("ADD", 6, 1, 2),
                                make_op("ADD", 7, 1, 2)};
  MachineOp br = make_op("BNE", 0, 5, 0);
  br.has_sym = true;
  br.sym = "somewhere";
  ops.push_back(br);
  const auto groups = schedule_block(ops, 8);
  // The branch depends on r5 (RAW) → its group comes after r5's producer;
  // and it must be in the final group.
  EXPECT_TRUE(groups.back().back().info->is_branch ||
              groups.back().front().info->is_branch);
  for (size_t g = 0; g + 1 < groups.size(); ++g)
    for (const MachineOp& op : groups[g]) EXPECT_FALSE(op.info->is_branch);
}

TEST(Scheduler, NoGroupOpsAreAlone) {
  std::vector<MachineOp> ops = {make_op("ADD", 5, 1, 2)};
  MachineOp call = make_op("JAL", 0, 0, 0);
  call.has_sym = true;
  call.sym = "f";
  call.no_group = true;
  ops.push_back(call);
  ops.push_back(make_op("ADD", 6, 1, 2));
  const auto groups = schedule_block(ops, 8);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[1].size(), 1u);
  EXPECT_EQ(groups[1][0].info->name, "JAL");
}

TEST(Scheduler, Width1EmitsSequentially) {
  std::vector<MachineOp> ops = {make_op("ADD", 5, 1, 2), make_op("SUB", 6, 1, 2)};
  const auto groups = schedule_block(ops, 1);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0][0].info->name, "ADD");
}

TEST(Scheduler, RenderFormatsOperands) {
  EXPECT_EQ(render(make_op("ADD", 4, 5, 6)), "add r4, r5, r6");
  EXPECT_EQ(render(make_op("LW", 4, 2, 0, 8)), "lw r4, 8(r2)");
  MachineOp la = make_op("LUI", 7, 0, 0);
  la.has_sym = true;
  la.sym = "table";
  la.sym_add = 4;
  EXPECT_EQ(render(la), "lui r7, table+4");
}

} // namespace
} // namespace ksim::kcc
