// kckpt checkpoint/restore and deterministic replay (DESIGN.md §5c).
//
// The contract under test: saving simulator + cycle-model state at an
// arbitrary block/step boundary and restoring it into a freshly constructed
// session must continue the run *bit-identically* — same architectural
// state, output, statistics, trace lines and cycle approximation as a run
// that was never interrupted — and the serialized form must be canonical
// (identical states encode to identical bytes).  Damaged snapshots must be
// rejected loudly before any live object is touched.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "ckpt/checkpoint.h"
#include "cycle/branch_predict.h"
#include "cycle/mem_hierarchy.h"
#include "cycle/models.h"
#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "support/byte_stream.h"
#include "support/error.h"
#include "support/strings.h"
#include "workloads/build.h"

namespace ksim {
namespace {

namespace fs = std::filesystem;

// -- harness -----------------------------------------------------------------

struct SessionConfig {
  std::string model; ///< "", "ilp", "aie", "doe"
  std::string bp;    ///< "", "1bit", "2bit", "gshare", ...
  unsigned bp_penalty = 3;
  sim::SimOptions sopt;
};

struct TestSession {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<cycle::MemoryHierarchy> memory;
  std::unique_ptr<cycle::CycleModel> model;
  std::unique_ptr<cycle::BranchPredictor> predictor;

  ckpt::Participants parts() {
    ckpt::Participants p;
    p.sim = sim.get();
    p.model = model.get();
    p.memory = memory.get();
    p.predictor = predictor.get();
    return p;
  }
};

TestSession make_session(const elf::ElfFile& exe, const SessionConfig& cfg) {
  TestSession s;
  s.sim = std::make_unique<sim::Simulator>(isa::kisa(), cfg.sopt);
  s.sim->load(exe);
  if (cfg.model == "ilp") {
    s.model = std::make_unique<cycle::IlpModel>();
  } else if (!cfg.model.empty()) {
    s.memory = std::make_unique<cycle::MemoryHierarchy>();
    if (cfg.model == "aie")
      s.model = std::make_unique<cycle::AieModel>(s.memory.get());
    else
      s.model = std::make_unique<cycle::DoeModel>(s.memory.get());
  }
  if (!cfg.bp.empty()) {
    s.predictor = cycle::make_predictor(cfg.bp);
    if (auto* doe = dynamic_cast<cycle::DoeModel*>(s.model.get()); doe != nullptr)
      doe->set_branch_prediction(s.predictor.get(), cfg.bp_penalty);
    else if (auto* aie = dynamic_cast<cycle::AieModel*>(s.model.get()); aie != nullptr)
      aie->set_branch_prediction(s.predictor.get(), cfg.bp_penalty);
  }
  if (s.model != nullptr) s.sim->set_cycle_model(s.model.get());
  return s;
}

ckpt::RunRecord record_for(const elf::ElfFile& exe, const SessionConfig& cfg) {
  ckpt::RunRecord run;
  run.workload = "test";
  run.elf_bytes = exe.serialize();
  run.model = cfg.model;
  run.bp_kind = cfg.bp;
  run.bp_penalty = cfg.bp_penalty;
  run.seed = cfg.sopt.libc_seed;
  run.use_decode_cache = cfg.sopt.use_decode_cache ? 1 : 0;
  run.use_prediction = cfg.sopt.use_prediction ? 1 : 0;
  run.use_superblocks = cfg.sopt.use_superblocks ? 1 : 0;
  run.use_jit = cfg.sopt.use_jit ? 1 : 0;
  run.collect_op_stats = cfg.sopt.collect_op_stats ? 1 : 0;
  run.max_instructions = cfg.sopt.max_instructions;
  return run;
}

elf::ElfFile build_exe(const std::string& source,
                       const std::string& entry_isa = "RISC") {
  kasm::AsmOptions opt;
  opt.file_name = "ckpt_test.s";
  const elf::ElfFile user = kasm::assemble_or_throw(source, opt);
  const elf::ElfFile start =
      kasm::assemble_or_throw(kasm::start_stub_assembly(entry_isa));
  const elf::ElfFile libc = kasm::assemble_or_throw(kasm::libc_stub_assembly());
  kasm::LinkOptions link_opt;
  link_opt.entry_isa = isa::kisa().find_isa(entry_isa)->id;
  return kasm::link_or_throw({start, user, libc}, link_opt);
}

void expect_same_stats(const sim::SimStats& x, const sim::SimStats& y) {
  EXPECT_EQ(x.instructions, y.instructions);
  EXPECT_EQ(x.operations, y.operations);
  EXPECT_EQ(x.decodes, y.decodes);
  EXPECT_EQ(x.cache_lookups, y.cache_lookups);
  EXPECT_EQ(x.pred_hits, y.pred_hits);
  EXPECT_EQ(x.isa_switches, y.isa_switches);
  EXPECT_EQ(x.libc_calls, y.libc_calls);
  EXPECT_EQ(x.blocks_formed, y.blocks_formed);
  EXPECT_EQ(x.block_dispatches, y.block_dispatches);
  EXPECT_EQ(x.block_chain_hits, y.block_chain_hits);
}

/// The core property: snapshot at `ckpt_at` instructions, restore into a
/// fresh session, and both the resumed session and the uninterrupted one
/// must finish in bit-identical state (down to the serialized bytes).
void expect_bit_identical_continuation(const elf::ElfFile& exe,
                                       const SessionConfig& cfg,
                                       uint64_t ckpt_at) {
  const ckpt::RunRecord run = record_for(exe, cfg);

  TestSession ref = make_session(exe, cfg); // never interrupted
  ASSERT_EQ(ref.sim->run(), sim::StopReason::Exited);

  TestSession a = make_session(exe, cfg); // snapshots, then continues
  std::vector<uint8_t> snapshot;
  a.sim->set_checkpoint_hook(ckpt_at, [&](sim::Simulator&) {
    snapshot = ckpt::encode_checkpoint(run, a.parts());
    return true;
  });
  ASSERT_EQ(a.sim->run(), sim::StopReason::Checkpoint);
  ASSERT_FALSE(snapshot.empty());
  ASSERT_GE(a.sim->stats().instructions, ckpt_at);
  a.sim->set_checkpoint_hook(0, nullptr);
  ASSERT_EQ(a.sim->run(), sim::StopReason::Exited);

  TestSession b = make_session(exe, cfg); // restored mid-run
  const ckpt::Checkpoint ck = ckpt::parse_checkpoint(snapshot);
  ckpt::apply_checkpoint(ck, b.parts());
  ASSERT_EQ(b.sim->stats().instructions, ck.instructions);
  ASSERT_EQ(b.sim->run(), sim::StopReason::Exited);

  for (sim::Simulator* other : {a.sim.get(), b.sim.get()}) {
    EXPECT_EQ(other->exit_code(), ref.sim->exit_code());
    EXPECT_EQ(other->libc().output(), ref.sim->libc().output());
    EXPECT_EQ(other->state().ip(), ref.sim->state().ip());
    EXPECT_EQ(other->state().isa_id(), ref.sim->state().isa_id());
    for (unsigned r = 0; r < 32; ++r)
      EXPECT_EQ(other->state().reg(r), ref.sim->state().reg(r)) << "r" << r;
    expect_same_stats(other->stats(), ref.sim->stats());
  }
  if (ref.model != nullptr) {
    EXPECT_EQ(a.model->cycles(), ref.model->cycles());
    EXPECT_EQ(b.model->cycles(), ref.model->cycles());
    EXPECT_EQ(b.model->operations(), ref.model->operations());
  }
  if (ref.predictor != nullptr) {
    EXPECT_EQ(b.predictor->stats().branches, ref.predictor->stats().branches);
    EXPECT_EQ(b.predictor->stats().mispredictions,
              ref.predictor->stats().mispredictions);
  }

  // Strongest form: the complete serialized end states are byte-identical.
  const std::vector<uint8_t> end_ref = ckpt::encode_checkpoint(run, ref.parts());
  EXPECT_EQ(ckpt::encode_checkpoint(run, a.parts()), end_ref);
  EXPECT_EQ(ckpt::encode_checkpoint(run, b.parts()), end_ref);
}

// -- byte stream -------------------------------------------------------------

TEST(ByteStream, RoundTripsAllEncodings) {
  support::ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.str("kahrisma");
  const uint8_t raw[3] = {1, 2, 3};
  w.bytes(raw, sizeof raw);

  support::ByteReader r(w.buffer(), "test");
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.str(), "kahrisma");
  uint8_t out[3] = {};
  r.bytes(out, sizeof out);
  EXPECT_EQ(out[2], 3);
  EXPECT_TRUE(r.at_end());
  r.expect_end();
}

TEST(ByteStream, ThrowsOnUnderrunAndTrailingBytes) {
  support::ByteWriter w;
  w.u16(7);
  support::ByteReader r(w.buffer(), "unit");
  EXPECT_THROW(r.u32(), Error);          // 2 bytes left, 4 wanted
  support::ByteReader r2(w.buffer(), "unit");
  EXPECT_EQ(r2.u8(), 7);
  EXPECT_THROW(r2.expect_end(), Error);  // 1 byte unconsumed
}

TEST(ByteStream, Crc32MatchesReferenceVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(support::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(support::crc32("", 0), 0u);
}

// -- component round trips ---------------------------------------------------

TEST(CkptComponents, ArchStateSerializesCanonically) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  SessionConfig cfg;
  cfg.sopt.max_instructions = 5000;
  TestSession a = make_session(exe, cfg);
  ASSERT_EQ(a.sim->run(), sim::StopReason::InstructionLimit);

  support::ByteWriter w1;
  a.sim->state().save(w1);

  TestSession b = make_session(exe, cfg);
  support::ByteReader r(w1.buffer(), "arch");
  b.sim->state().restore(r);
  r.expect_end();

  support::ByteWriter w2;
  b.sim->state().save(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
  EXPECT_EQ(b.sim->state().ip(), a.sim->state().ip());
  for (unsigned i = 0; i < 32; ++i)
    EXPECT_EQ(b.sim->state().reg(i), a.sim->state().reg(i));
}

TEST(CkptComponents, MemoryHierarchyRoundTripsAndStaysDeterministic) {
  uint32_t lcg = 12345;
  auto next = [&]() { return lcg = lcg * 1103515245u + 12345u; };

  cycle::MemoryHierarchy h1;
  uint64_t cycle_cursor = 0;
  for (int i = 0; i < 4000; ++i)
    cycle_cursor = h1.entry().access(next() & 0xFFFFF,
                                     (next() & 1) != 0 ? cycle::AccessType::Write
                                                       : cycle::AccessType::Read,
                                     0, cycle_cursor);

  support::ByteWriter w1;
  h1.save(w1);
  cycle::MemoryHierarchy h2;
  support::ByteReader r(w1.buffer(), "mem");
  h2.restore(r);
  r.expect_end();
  support::ByteWriter w2;
  h2.save(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
  EXPECT_EQ(h2.l1().stats().misses, h1.l1().stats().misses);

  // Identical futures: the same access sequence completes at the same cycles.
  uint32_t lcg2 = lcg;
  uint64_t c1 = cycle_cursor, c2 = cycle_cursor;
  for (int i = 0; i < 500; ++i) {
    const uint32_t addr = lcg = lcg * 1103515245u + 12345u;
    const auto type = (lcg & 2) != 0 ? cycle::AccessType::Write
                                     : cycle::AccessType::Read;
    c1 = h1.entry().access(addr & 0xFFFFF, type, 0, c1);
    lcg2 = lcg2 * 1103515245u + 12345u;
    c2 = h2.entry().access(addr & 0xFFFFF, type, 0, c2);
    ASSERT_EQ(c1, c2) << "diverged at access " << i;
  }
}

TEST(CkptComponents, BranchPredictorsRoundTrip) {
  for (const char* kind : {"1bit", "2bit", "gshare"}) {
    SCOPED_TRACE(kind);
    auto p1 = cycle::make_predictor(kind);
    uint32_t lcg = 99;
    for (int i = 0; i < 3000; ++i) {
      lcg = lcg * 1664525u + 1013904223u;
      p1->observe((lcg & 0x3FF) << 2, (lcg & 0x30000) != 0);
    }
    support::ByteWriter w1;
    p1->save(w1);

    auto p2 = cycle::make_predictor(kind);
    support::ByteReader r(w1.buffer(), "bp");
    p2->restore(r);
    r.expect_end();
    support::ByteWriter w2;
    p2->save(w2);
    EXPECT_EQ(w1.buffer(), w2.buffer());
    EXPECT_EQ(p2->stats().branches, p1->stats().branches);
    EXPECT_EQ(p2->stats().mispredictions, p1->stats().mispredictions);
    for (uint32_t pc = 0; pc < 64; ++pc)
      EXPECT_EQ(p2->predict(pc << 2), p1->predict(pc << 2)) << pc;
  }
}

TEST(CkptComponents, PredictorTableShapeMismatchRejected) {
  cycle::OneBitPredictor small(256), big(1024);
  support::ByteWriter w;
  small.save(w);
  support::ByteReader r(w.buffer(), "bp");
  EXPECT_THROW(big.restore(r), Error);
}

// -- mid-run save/restore property tests -------------------------------------

TEST(CkptResume, DctRiscPlainEngine) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  SessionConfig cfg;
  for (const uint64_t at : {1u, 777u, 5000u})
    expect_bit_identical_continuation(exe, cfg, at);
}

TEST(CkptResume, DctVliw4IlpModel) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "VLIW4");
  SessionConfig cfg;
  cfg.model = "ilp";
  expect_bit_identical_continuation(exe, cfg, 2500);
}

TEST(CkptResume, QsortVliw4DoeGshare) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("qsort"), "VLIW4");
  SessionConfig cfg;
  cfg.model = "doe";
  cfg.bp = "gshare";
  cfg.bp_penalty = 4;
  expect_bit_identical_continuation(exe, cfg, 60000);
}

TEST(CkptResume, FftVliw2AieModel) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("fft"), "VLIW2");
  SessionConfig cfg;
  cfg.model = "aie";
  cfg.bp = "2bit";
  expect_bit_identical_continuation(exe, cfg, 10000);
}

TEST(CkptResume, MixedIsaProgramAcrossSwitches) {
  const elf::ElfFile exe = build_exe(R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 500
outer:
  switchtarget VLIW4
.isa VLIW4
  addi r5, r5, 1 || addi r7, r0, 2
  mul r7, r7, r5
  switchtarget RISC
.isa RISC
  bne r5, r6, outer
  srli r7, r7, 2
  add r4, r5, r7
  ret
)");
  SessionConfig cfg;
  // Checkpoint points land between (and on) ISA reconfigurations.
  for (const uint64_t at : {50u, 1203u, 2000u})
    expect_bit_identical_continuation(exe, cfg, at);
  SessionConfig doe = cfg;
  doe.model = "doe";
  expect_bit_identical_continuation(exe, doe, 1203);
}

TEST(CkptResume, StepPathWithoutSuperblocks) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  SessionConfig cfg;
  cfg.sopt.use_superblocks = false;
  expect_bit_identical_continuation(exe, cfg, 3000);
  SessionConfig bare = cfg;
  bare.sopt.use_decode_cache = false; // also disables prediction
  expect_bit_identical_continuation(exe, bare, 1000);
}

TEST(CkptResume, JitSaveInsideTranslatedRegion) {
  // The snapshot lands deep inside a hot loop that the JIT has long since
  // translated (the hotness threshold is crossed within the first hundred
  // instructions).  A checkpoint must carry no trace of the host code: the
  // restored session starts cold, re-earns hotness, rebuilds its code cache
  // lazily — and still finishes bit-identically.
  const elf::ElfFile exe = build_exe(R"(
.global main
main:
  addi r5, r0, 0
  li r6, 20000
loop:
  addi r5, r5, 1
  addi r7, r5, 3
  xor r8, r7, r5
  bne r5, r6, loop
  mv r4, r0
  ret
)");
  SessionConfig cfg; // jit on by default
  for (const uint64_t at : {5000u, 40011u})
    expect_bit_identical_continuation(exe, cfg, at);
}

TEST(CkptResume, JitWorkloadsAcrossIsasAndModels) {
  // The full matrix the kjit PR promises: plain and cycle-model sessions,
  // RISC and VLIW instances.  Under a cycle model the JIT never dispatches
  // (hooks need per-instruction bookkeeping), so these legs pin that the
  // exclusion itself is checkpoint-transparent too.
  struct Leg {
    const char* workload;
    const char* isa;
    const char* model;
    uint64_t at;
  };
  for (const Leg& leg : {Leg{"dct", "RISC", "", 20000},
                         Leg{"dct", "VLIW2", "ilp", 2500},
                         Leg{"fft", "VLIW4", "aie", 10000},
                         Leg{"qsort", "RISC", "doe", 60000}}) {
    SCOPED_TRACE(std::string(leg.workload) + "@" + leg.isa + "/" +
                 (*leg.model != '\0' ? leg.model : "none"));
    const elf::ElfFile exe =
        workloads::build_workload(workloads::by_name(leg.workload), leg.isa);
    SessionConfig cfg;
    cfg.model = leg.model;
    expect_bit_identical_continuation(exe, cfg, leg.at);
  }
}

TEST(CkptResume, JitStateNeverLeaksIntoSnapshots) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  SessionConfig jit_cfg;                 // jit on (default)
  SessionConfig off_cfg;
  off_cfg.sopt.use_jit = false;

  // Take a snapshot from a session that has translated blocks.
  TestSession hot = make_session(exe, jit_cfg);
  const ckpt::RunRecord run = record_for(exe, jit_cfg);
  std::vector<uint8_t> snapshot;
  hot.sim->set_checkpoint_hook(20000, [&](sim::Simulator&) {
    snapshot = ckpt::encode_checkpoint(run, hot.parts());
    return true;
  });
  ASSERT_EQ(hot.sim->run(), sim::StopReason::Checkpoint);
  ASSERT_FALSE(snapshot.empty());

  // An identically-placed snapshot from a jit-off session is byte-identical:
  // translation leaves zero checkpoint footprint.
  TestSession cold = make_session(exe, off_cfg);
  std::vector<uint8_t> off_snapshot;
  cold.sim->set_checkpoint_hook(20000, [&](sim::Simulator&) {
    off_snapshot = ckpt::encode_checkpoint(run, cold.parts());
    return true;
  });
  ASSERT_EQ(cold.sim->run(), sim::StopReason::Checkpoint);
  EXPECT_EQ(off_snapshot, snapshot);

  // The volatile jit counters restart from zero on restore, and the restored
  // run finishes identically whether the restoring session enables the JIT
  // or not.
  const ckpt::Checkpoint ck = ckpt::parse_checkpoint(snapshot);
  TestSession with_jit = make_session(exe, jit_cfg);
  TestSession without_jit = make_session(exe, off_cfg);
  ckpt::apply_checkpoint(ck, with_jit.parts());
  ckpt::apply_checkpoint(ck, without_jit.parts());
  EXPECT_EQ(with_jit.sim->stats().jit_blocks_translated, 0u);
  EXPECT_EQ(with_jit.sim->stats().jit_dispatches, 0u);
  ASSERT_EQ(with_jit.sim->run(), sim::StopReason::Exited);
  ASSERT_EQ(without_jit.sim->run(), sim::StopReason::Exited);
  EXPECT_EQ(with_jit.sim->libc().output(), without_jit.sim->libc().output());
  EXPECT_EQ(with_jit.sim->exit_code(), without_jit.sim->exit_code());
  expect_same_stats(with_jit.sim->stats(), without_jit.sim->stats());
  const std::vector<uint8_t> end_a = ckpt::encode_checkpoint(run, with_jit.parts());
  const std::vector<uint8_t> end_b = ckpt::encode_checkpoint(run, without_jit.parts());
  EXPECT_EQ(end_a, end_b);
}

TEST(CkptResume, OpHistogramSurvivesRestore) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  SessionConfig cfg;
  cfg.sopt.collect_op_stats = true;
  expect_bit_identical_continuation(exe, cfg, 4000);
}

TEST(CkptResume, TraceContinuationMatchesStraightRun) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  SessionConfig cfg;
  const ckpt::RunRecord run = record_for(exe, cfg);

  std::ostringstream full_stream;
  sim::TraceWriter full_trace(full_stream);
  TestSession ref = make_session(exe, cfg);
  ref.sim->set_trace(&full_trace);
  std::vector<uint8_t> snapshot;
  ref.sim->set_checkpoint_hook(2000, [&](sim::Simulator&) {
    snapshot = ckpt::encode_checkpoint(run, ref.parts());
    return false; // snapshot in passing; the reference run never stops
  });
  ASSERT_EQ(ref.sim->run(), sim::StopReason::Exited);
  ASSERT_FALSE(snapshot.empty());

  std::ostringstream tail_stream;
  sim::TraceWriter tail_trace(tail_stream);
  TestSession b = make_session(exe, cfg);
  ckpt::apply_checkpoint(ckpt::parse_checkpoint(snapshot), b.parts());
  b.sim->set_trace(&tail_trace);
  ASSERT_EQ(b.sim->run(), sim::StopReason::Exited);

  const std::string full = full_stream.str();
  const std::string tail = tail_stream.str();
  ASSERT_FALSE(tail.empty());
  ASSERT_GE(full.size(), tail.size());
  EXPECT_EQ(full.substr(full.size() - tail.size()), tail)
      << "resumed trace is not a suffix of the straight-through trace";
}

TEST(CkptResume, SeedIsPlumbedIntoLibcEmulation) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  SessionConfig cfg;
  cfg.sopt.libc_seed = 20260806;
  TestSession s = make_session(exe, cfg);
  EXPECT_EQ(s.sim->libc().seed(), 20260806u);

  // The seed travels through the checkpoint record.
  const ckpt::RunRecord run = record_for(exe, cfg);
  support::ByteWriter w;
  run.save(w);
  ckpt::RunRecord back;
  support::ByteReader r(w.buffer(), "run");
  back.restore(r);
  r.expect_end();
  EXPECT_EQ(back.seed, 20260806u);
  EXPECT_EQ(back.elf_bytes, run.elf_bytes);
}

// -- robustness --------------------------------------------------------------

class CkptRobustness : public ::testing::Test {
protected:
  void SetUp() override {
    exe_ = workloads::build_workload(workloads::by_name("dct"), "RISC");
    cfg_.model = "doe";
    session_ = make_session(exe_, cfg_);
    std::vector<uint8_t>& snap = snapshot_;
    session_.sim->set_checkpoint_hook(1500, [this, &snap](sim::Simulator&) {
      snap = ckpt::encode_checkpoint(record_for(exe_, cfg_), session_.parts());
      return true;
    });
    ASSERT_EQ(session_.sim->run(), sim::StopReason::Checkpoint);
    ASSERT_FALSE(snapshot_.empty());
  }

  elf::ElfFile exe_;
  SessionConfig cfg_;
  TestSession session_;
  std::vector<uint8_t> snapshot_;
};

TEST_F(CkptRobustness, ParsesItsOwnOutput) {
  const ckpt::Checkpoint ck = ckpt::parse_checkpoint(snapshot_);
  EXPECT_EQ(ck.instructions, session_.sim->stats().instructions);
  EXPECT_TRUE(ck.has_model);
  EXPECT_TRUE(ck.has_memory);
  EXPECT_FALSE(ck.has_predictor);
  EXPECT_EQ(ck.run.model, "doe");
}

TEST_F(CkptRobustness, RejectsBadMagic) {
  std::vector<uint8_t> bad = snapshot_;
  bad[0] ^= 0xFF;
  try {
    ckpt::parse_checkpoint(bad);
    FAIL() << "bad magic accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
}

TEST_F(CkptRobustness, RejectsVersionMismatch) {
  std::vector<uint8_t> bad = snapshot_;
  bad[8] = 0x7F; // the u32 version field follows the 8-byte magic
  try {
    ckpt::parse_checkpoint(bad);
    FAIL() << "future version accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(CkptRobustness, RejectsCorruptPayload) {
  std::vector<uint8_t> bad = snapshot_;
  bad[bad.size() / 2] ^= 0x40; // damage a section body
  try {
    ckpt::parse_checkpoint(bad);
    FAIL() << "corrupt payload accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos);
  }
}

TEST_F(CkptRobustness, RejectsTruncation) {
  for (const size_t keep : {4u, 64u}) {
    std::vector<uint8_t> bad(snapshot_.begin(),
                             snapshot_.begin() + static_cast<long>(keep));
    EXPECT_THROW(ckpt::parse_checkpoint(bad), Error) << "kept " << keep;
  }
  std::vector<uint8_t> bad = snapshot_;
  bad.resize(bad.size() - 9);
  EXPECT_THROW(ckpt::parse_checkpoint(bad), Error);
}

TEST_F(CkptRobustness, MismatchedSessionRejectedBeforeMutation) {
  const ckpt::Checkpoint ck = ckpt::parse_checkpoint(snapshot_);
  SessionConfig plain; // no cycle model attached
  TestSession b = make_session(exe_, plain);
  EXPECT_THROW(ckpt::apply_checkpoint(ck, b.parts()), Error);
  // The presence check fires before any restore: the session is untouched
  // and still runs from instruction zero.
  EXPECT_EQ(b.sim->stats().instructions, 0u);
  EXPECT_EQ(b.sim->run(), sim::StopReason::Exited);
}

TEST_F(CkptRobustness, SnapshotIsSelfContained) {
  // A checkpoint carries the complete memory image (RAM pages absent from
  // the file are zero-filled on restore), so it continues correctly even
  // in a session that had a *different* program loaded beforehand.
  const ckpt::Checkpoint ck = ckpt::parse_checkpoint(snapshot_);
  const elf::ElfFile other =
      workloads::build_workload(workloads::by_name("qsort"), "RISC");
  TestSession b = make_session(other, cfg_);
  ckpt::apply_checkpoint(ck, b.parts());
  ASSERT_EQ(b.sim->run(), sim::StopReason::Exited);

  session_.sim->set_checkpoint_hook(0, nullptr); // finish the dct original
  ASSERT_EQ(session_.sim->run(), sim::StopReason::Exited);
  EXPECT_EQ(b.sim->libc().output(), session_.sim->libc().output());
  EXPECT_EQ(b.sim->exit_code(), session_.sim->exit_code());
  expect_same_stats(b.sim->stats(), session_.sim->stats());
}

// -- files: atomicity, rotation, discovery -----------------------------------

TEST(CkptFiles, AtomicWriteRotationAndLatest) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "kckpt_rotate").string();
  fs::remove_all(dir);

  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  SessionConfig cfg;
  TestSession s = make_session(exe, cfg);
  const ckpt::RunRecord run = record_for(exe, cfg);

  ckpt::CheckpointSink sink(dir, 2);
  s.sim->set_checkpoint_hook(1000, [&](sim::Simulator&) {
    sink.write(run, s.parts());
    return false;
  });
  ASSERT_EQ(s.sim->run(), sim::StopReason::Exited);
  ASSERT_GE(sink.written(), 3u) << "dct must run long enough for rotation";

  size_t files = 0;
  uint64_t newest = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos)
        << "torn temp file left behind: " << name;
    ++files;
    const uint64_t n = std::stoull(name.substr(5));
    newest = std::max(newest, n);
  }
  EXPECT_EQ(files, 2u); // keep-last-K honored
  const std::string latest = ckpt::latest_checkpoint(dir);
  ASSERT_FALSE(latest.empty());
  EXPECT_NE(latest.find(strf("ckpt-%llu", static_cast<unsigned long long>(newest))),
            std::string::npos);

  // Every surviving snapshot is complete and valid.
  const ckpt::Checkpoint ck = ckpt::read_checkpoint(latest);
  EXPECT_EQ(ck.run.workload, "test");
}

TEST(CkptFiles, LatestCheckpointIgnoresForeignFiles) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "kckpt_latest").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir + "/notes.txt") << "x";
  std::ofstream(dir + "/ckpt-abc.kckpt") << "x";
  EXPECT_EQ(ckpt::latest_checkpoint(dir), "");
  std::ofstream(dir + "/ckpt-7.kckpt") << "x";
  std::ofstream(dir + "/ckpt-1200.kckpt") << "x";
  EXPECT_NE(ckpt::latest_checkpoint(dir).find("ckpt-1200"), std::string::npos);
  EXPECT_EQ(ckpt::latest_checkpoint(dir + "/does-not-exist"), "");
}

} // namespace
} // namespace ksim
