// End-to-end tests of the ksim command line driver (subprocess smoke tests).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>

#include "support/strings.h"

namespace ksim {
namespace {

#ifndef KSIM_BIN
#error "KSIM_BIN must be defined by the build"
#endif

struct CmdResult {
  int exit_code = -1;
  std::string output; // stdout + stderr
};

CmdResult run_cmd(const std::string& args) {
  const std::string cmd = std::string(KSIM_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CmdResult result;
  std::array<char, 4096> buf;
  size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    result.output.append(buf.data(), n);
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string write_temp(const std::string& name, const std::string& contents) {
  const std::string path = std::string(::testing::TempDir()) + name;
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(Driver, ListsWorkloads) {
  const CmdResult r = run_cmd("workloads");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* name : {"cjpeg", "djpeg", "fft", "qsort", "aes", "dct"})
    EXPECT_NE(r.output.find(name), std::string::npos) << r.output;
}

TEST(Driver, RunsWorkloadWithModel) {
  const CmdResult r = run_cmd("run --workload dct --isa VLIW4 --model doe");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("dct OK"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("DOE cycles"), std::string::npos);
}

TEST(Driver, CompilesAndRunsCFile) {
  const std::string path = write_temp("drv.c", R"(
int main() { printf("answer %d\n", 6 * 7); return 5; }
)");
  const CmdResult r = run_cmd("run " + path);
  EXPECT_EQ(r.exit_code, 5); // program exit code propagates
  EXPECT_NE(r.output.find("answer 42"), std::string::npos) << r.output;
}

TEST(Driver, RunsAssemblyFile) {
  const std::string path = write_temp("drv.s", R"(
.global main
main:
  addi r4, r0, 9
  ret
)");
  const CmdResult r = run_cmd("run " + path);
  EXPECT_EQ(r.exit_code, 9);
}

TEST(Driver, CcEmitsAssembly) {
  const std::string path = write_temp("cc.c", "int main() { return 1 + 2; }\n");
  const CmdResult r = run_cmd("cc --isa VLIW4 " + path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find(".isa VLIW4"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find(".func main"), std::string::npos);
}

TEST(Driver, BuildAndDisasmRoundTrip) {
  const std::string src = write_temp("bd.c", "int main() { return 3; }\n");
  const std::string out = std::string(::testing::TempDir()) + "bd.elf";
  const CmdResult b = run_cmd("build -o " + out + " " + src);
  EXPECT_EQ(b.exit_code, 0) << b.output;

  const CmdResult d = run_cmd("disasm " + out);
  EXPECT_EQ(d.exit_code, 0) << d.output;
  EXPECT_NE(d.output.find("jal"), std::string::npos);   // _start calls main
  EXPECT_NE(d.output.find("simop"), std::string::npos); // libc stubs

  const CmdResult r = run_cmd("run " + out);
  EXPECT_EQ(r.exit_code, 3);
}

TEST(Driver, BranchPredictorOption) {
  const CmdResult r =
      run_cmd("run --workload qsort --model doe --bp 2bit --bp-penalty 4");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("branch predictor 2-bit"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("mispredicts"), std::string::npos);
}

TEST(Driver, OpStatsOption) {
  const CmdResult r = run_cmd("run --workload fft --opstats");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("operation histogram"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("MUL"), std::string::npos);
}

TEST(Driver, TraceFileOption) {
  const std::string trace = std::string(::testing::TempDir()) + "t.trace";
  const CmdResult r = run_cmd("run --workload dct --max-instr 100 --trace " + trace);
  // Instruction limit is not an error exit for the driver (exit_code comes
  // from the simulated program; with a limit it's whatever is in r4) — just
  // check the trace exists and looks right.
  std::ifstream in(trace);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("0x"), std::string::npos);
}

TEST(Driver, ProfileOption) {
  const CmdResult r = run_cmd("run --workload fft --model doe --profile");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("profile"), std::string::npos);
  EXPECT_NE(r.output.find("fft_rec"), std::string::npos) << r.output;
}

TEST(Driver, CompileErrorReportsDiagnostics) {
  const std::string path = write_temp("bad.c", "int main() { return nope; }\n");
  const CmdResult r = run_cmd("run " + path);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("undeclared"), std::string::npos) << r.output;
}

TEST(Driver, TrapReportsErrorContext) {
  const std::string path = write_temp("trap.c", R"(
int main() {
  int *p = (int*)0x7F000000;
  return *p;
}
)");
  const CmdResult r = run_cmd("run " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("trap"), std::string::npos) << r.output;
}

TEST(Driver, UsageOnBadArguments) {
  EXPECT_EQ(run_cmd("frobnicate").exit_code, 2);
  EXPECT_EQ(run_cmd("").exit_code, 2);
}

} // namespace
} // namespace ksim
