// End-to-end tests of the ksim command line driver (subprocess smoke tests).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/strings.h"

namespace ksim {
namespace {

#ifndef KSIM_BIN
#error "KSIM_BIN must be defined by the build"
#endif

struct CmdResult {
  int exit_code = -1;
  std::string output; // stdout + stderr
};

CmdResult run_cmd(const std::string& args, const std::string& env_prefix = "") {
  const std::string cmd =
      env_prefix + std::string(KSIM_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CmdResult result;
  std::array<char, 4096> buf;
  size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    result.output.append(buf.data(), n);
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string write_temp(const std::string& name, const std::string& contents) {
  const std::string path = std::string(::testing::TempDir()) + name;
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(Driver, ListsWorkloads) {
  const CmdResult r = run_cmd("workloads");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* name : {"cjpeg", "djpeg", "fft", "qsort", "aes", "dct"})
    EXPECT_NE(r.output.find(name), std::string::npos) << r.output;
}

TEST(Driver, RunsWorkloadWithModel) {
  const CmdResult r = run_cmd("run --workload dct --isa VLIW4 --model doe");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("dct OK"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("DOE cycles"), std::string::npos);
}

TEST(Driver, CompilesAndRunsCFile) {
  const std::string path = write_temp("drv.c", R"(
int main() { printf("answer %d\n", 6 * 7); return 5; }
)");
  const CmdResult r = run_cmd("run " + path);
  EXPECT_EQ(r.exit_code, 5); // program exit code propagates
  EXPECT_NE(r.output.find("answer 42"), std::string::npos) << r.output;
}

TEST(Driver, RunsAssemblyFile) {
  const std::string path = write_temp("drv.s", R"(
.global main
main:
  addi r4, r0, 9
  ret
)");
  const CmdResult r = run_cmd("run " + path);
  EXPECT_EQ(r.exit_code, 9);
}

TEST(Driver, CcEmitsAssembly) {
  const std::string path = write_temp("cc.c", "int main() { return 1 + 2; }\n");
  const CmdResult r = run_cmd("cc --isa VLIW4 " + path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find(".isa VLIW4"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find(".func main"), std::string::npos);
}

TEST(Driver, BuildAndDisasmRoundTrip) {
  const std::string src = write_temp("bd.c", "int main() { return 3; }\n");
  const std::string out = std::string(::testing::TempDir()) + "bd.elf";
  const CmdResult b = run_cmd("build -o " + out + " " + src);
  EXPECT_EQ(b.exit_code, 0) << b.output;

  const CmdResult d = run_cmd("disasm " + out);
  EXPECT_EQ(d.exit_code, 0) << d.output;
  EXPECT_NE(d.output.find("jal"), std::string::npos);   // _start calls main
  EXPECT_NE(d.output.find("simop"), std::string::npos); // libc stubs

  const CmdResult r = run_cmd("run " + out);
  EXPECT_EQ(r.exit_code, 3);
}

TEST(Driver, BranchPredictorOption) {
  const CmdResult r =
      run_cmd("run --workload qsort --model doe --bp 2bit --bp-penalty 4");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("branch predictor 2-bit"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("mispredicts"), std::string::npos);
}

TEST(Driver, OpStatsOption) {
  const CmdResult r = run_cmd("run --workload fft --opstats");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("operation histogram"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("MUL"), std::string::npos);
}

TEST(Driver, TraceFileOption) {
  const std::string trace = std::string(::testing::TempDir()) + "t.trace";
  const CmdResult r = run_cmd("run --workload dct --max-instr 100 --trace " + trace);
  // Instruction limit is not an error exit for the driver (exit_code comes
  // from the simulated program; with a limit it's whatever is in r4) — just
  // check the trace exists and looks right.
  std::ifstream in(trace);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("0x"), std::string::npos);
}

TEST(Driver, ProfileOption) {
  const CmdResult r = run_cmd("run --workload fft --model doe --profile");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("profile"), std::string::npos);
  EXPECT_NE(r.output.find("fft_rec"), std::string::npos) << r.output;
}

TEST(Driver, CompileErrorReportsDiagnostics) {
  const std::string path = write_temp("bad.c", "int main() { return nope; }\n");
  const CmdResult r = run_cmd("run " + path);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("undeclared"), std::string::npos) << r.output;
}

TEST(Driver, TrapReportsErrorContext) {
  const std::string path = write_temp("trap.c", R"(
int main() {
  int *p = (int*)0x7F000000;
  return *p;
}
)");
  const CmdResult r = run_cmd("run " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("trap"), std::string::npos) << r.output;
}

TEST(Driver, UsageOnBadArguments) {
  EXPECT_EQ(run_cmd("frobnicate").exit_code, 2);
  EXPECT_EQ(run_cmd("").exit_code, 2);
}

TEST(Driver, LintExitCodeContract) {
  // 0: clean program, both output formats.
  EXPECT_EQ(run_cmd("lint --workload dct --isa RISC").exit_code, 0);
  EXPECT_EQ(run_cmd("lint --workload dct --isa RISC --format json").exit_code, 0);

  // 1: findings — identically in text and json mode.
  const std::string dirty = write_temp("dirty.s", R"(.isa RISC
.global main
.func main
  add r4, r10, r11
  ret
.endfunc
)");
  const CmdResult text = run_cmd("lint " + dirty + " --isa RISC");
  EXPECT_EQ(text.exit_code, 1);
  EXPECT_NE(text.output.find("uninit-read"), std::string::npos) << text.output;
  const CmdResult json = run_cmd("lint " + dirty + " --isa RISC --format json");
  EXPECT_EQ(json.exit_code, 1);
  EXPECT_NE(json.output.find("\"clean\": false"), std::string::npos) << json.output;
  EXPECT_NE(json.output.find("\"schema\": \"ksim.lint\""), std::string::npos);

  // 2: usage or input errors, never conflated with findings.
  EXPECT_EQ(run_cmd("lint --workload dct --isa NOPE").exit_code, 2);
  EXPECT_EQ(run_cmd("lint --workload nosuch --isa RISC").exit_code, 2);
  EXPECT_EQ(run_cmd("lint /nonexistent/missing.s --isa RISC").exit_code, 2);
  EXPECT_EQ(run_cmd("lint --workload dct --format yaml").exit_code, 2);
}

TEST(Driver, LintTextReportsCallgraphAndTranslatability) {
  const CmdResult r = run_cmd("lint --workload qsort --isa RISC");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("callgraph:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("recursive"), std::string::npos);
  EXPECT_NE(r.output.find("translatability:"), std::string::npos);
  EXPECT_NE(r.output.find("JIT-safe"), std::string::npos);
}

// -- checkpoint/resume/replay (kckpt) ----------------------------------------

namespace fs = std::filesystem;

/// Fresh per-test checkpoint directory under the gtest temp dir.
std::string ckpt_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  fs::remove_all(dir);
  return dir;
}

/// The first full line of `text` containing `needle` ("" if absent).
std::string line_with(const std::string& text, const std::string& needle) {
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return "";
  const size_t begin = text.rfind('\n', pos) + 1; // npos+1 == 0
  const size_t end = text.find('\n', pos);
  return text.substr(begin, end - begin);
}

TEST(Driver, CheckpointResumeMatchesStraightRun) {
  const CmdResult straight = run_cmd("run --workload dct --isa RISC --model doe");
  ASSERT_EQ(straight.exit_code, 0);

  const std::string dir = ckpt_dir("ckpt_resume");
  const CmdResult part1 =
      run_cmd("run --workload dct --isa RISC --model doe"
              " --checkpoint-every 2000 --ckpt-dir " + dir + " --max-instr 6000");
  EXPECT_NE(part1.output.find("instruction limit"), std::string::npos)
      << part1.output;
  ASSERT_FALSE(fs::is_empty(dir)) << "no checkpoint written";

  const CmdResult part2 = run_cmd("resume " + dir);
  EXPECT_EQ(part2.exit_code, 0) << part2.output;
  EXPECT_NE(part2.output.find("[ksim] resumed"), std::string::npos) << part2.output;
  EXPECT_NE(part2.output.find("dct OK"), std::string::npos) << part2.output;
  // The resumed run must report the same totals as the uninterrupted one.
  // (The superblock line disappears entirely under KSIM_NO_SUPERBLOCKS=1;
  // equality of empty strings is the right assertion there too.)
  for (const char* needle : {"exited after", "DOE cycles"}) {
    const std::string expect = line_with(straight.output, needle);
    ASSERT_FALSE(expect.empty()) << needle;
    EXPECT_EQ(line_with(part2.output, needle), expect) << part2.output;
  }
  EXPECT_EQ(line_with(part2.output, "superblocks:"),
            line_with(straight.output, "superblocks:"));
}

TEST(Driver, ReplayVerifiesCheckpoint) {
  const std::string dir = ckpt_dir("ckpt_replay");
  const CmdResult r =
      run_cmd("run --workload dct --isa RISC --model aie --bp 2bit"
              " --checkpoint-every 3000 --ckpt-dir " + dir + " --max-instr 8000");
  ASSERT_FALSE(fs::is_empty(dir)) << r.output;
  const CmdResult replay = run_cmd("replay " + dir);
  EXPECT_EQ(replay.exit_code, 0) << replay.output;
  EXPECT_NE(replay.output.find("replay OK"), std::string::npos) << replay.output;
  EXPECT_NE(replay.output.find("bit-identically"), std::string::npos);
}

TEST(Driver, CorruptCheckpointRejected) {
  const std::string dir = ckpt_dir("ckpt_corrupt");
  run_cmd("run --workload dct --isa RISC --checkpoint-every 2000 --ckpt-dir " +
          dir + " --max-instr 4000 --ckpt-keep 1");
  std::string path;
  for (const fs::directory_entry& e : fs::directory_iterator(dir))
    path = e.path().string();
  ASSERT_FALSE(path.empty());

  // Flip one byte in the middle of the file: resume must refuse with a
  // checksum diagnostic and a nonzero exit code.
  const auto size = fs::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x20);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&b, 1);
  }
  const CmdResult corrupt = run_cmd("resume " + path);
  EXPECT_EQ(corrupt.exit_code, 1) << corrupt.output;
  EXPECT_NE(corrupt.output.find("checksum mismatch"), std::string::npos)
      << corrupt.output;

  // A truncated file (a simulated torn write) is also refused cleanly.
  fs::resize_file(path, size / 3);
  const CmdResult torn = run_cmd("resume " + path);
  EXPECT_EQ(torn.exit_code, 1) << torn.output;
  EXPECT_NE(torn.output.find("truncated"), std::string::npos) << torn.output;
}

TEST(Driver, ResumeWithoutCheckpointFails) {
  const std::string dir = ckpt_dir("ckpt_none");
  fs::create_directories(dir);
  const CmdResult r = run_cmd("resume " + dir);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("no checkpoint"), std::string::npos) << r.output;
}

TEST(Driver, SeedChangesRandStream) {
  const std::string path = write_temp("seed.c", R"(
int main() {
  printf("draw %d %d %d\n", rand(), rand(), rand());
  return 0;
}
)");
  const CmdResult a1 = run_cmd("run --seed 1 " + path);
  const CmdResult a2 = run_cmd("run --seed 1 " + path);
  const CmdResult b = run_cmd("run --seed 20260806 " + path);
  ASSERT_EQ(a1.exit_code, 0) << a1.output;
  const std::string draw1 = line_with(a1.output, "draw");
  const std::string draw2 = line_with(b.output, "draw");
  ASSERT_FALSE(draw1.empty());
  ASSERT_FALSE(draw2.empty());
  EXPECT_EQ(line_with(a2.output, "draw"), draw1); // same seed, same stream
  EXPECT_NE(draw2, draw1);                        // different seed, different
}

TEST(Driver, RunEmitsVersionedJsonReport) {
  const std::string json_path = std::string(::testing::TempDir()) + "run.json";
  const CmdResult r =
      run_cmd("run --workload dct --model ilp --json " + json_path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(json_path);
  const std::string doc((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  // Header keys first, then the documented report fields.
  EXPECT_LT(doc.find("\"schema\": \"ksim.run\""), doc.find("\"schema_version\""))
      << doc;
  EXPECT_NE(doc.find("\"target\": \"dct@RISC\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"model\": \"ilp\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"stop_reason\": \"exited\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"cycles\""), std::string::npos) << doc;

  // "-" streams the same document to stdout.
  const CmdResult piped = run_cmd("run --workload dct --model ilp --json -");
  EXPECT_EQ(piped.exit_code, 0);
  EXPECT_NE(piped.output.find("\"schema\": \"ksim.run\""), std::string::npos)
      << piped.output;
}

TEST(Driver, DeprecatedEnvKnobWarnsOnce) {
  const CmdResult r = run_cmd("run --workload dct", "KSIM_NO_DECODE_CACHE=1 ");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(
      r.output.find("warning: KSIM_NO_DECODE_CACHE is deprecated; "
                    "use --no-decode-cache instead"),
      std::string::npos)
      << r.output;
  // The knob must still take effect: no decode cache, no cache lookups.
  const CmdResult clean = run_cmd("run --workload dct");
  EXPECT_EQ(clean.output.find("warning: KSIM_NO_DECODE_CACHE"),
            std::string::npos)
      << clean.output;
}

TEST(Driver, SweepFromFlags) {
  const CmdResult r = run_cmd(
      "sweep --workloads dct --isas RISC,VLIW2 --models ilp --threads 2");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  // Per-point progress lines, the summary, and the Figure-4-style table.
  EXPECT_NE(r.output.find("[sweep] (1/2)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[sweep] (2/2)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("2 points"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("dct"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("VLIW2"), std::string::npos) << r.output;
}

TEST(Driver, SweepFromManifestWithJsonReport) {
  const std::string manifest = write_temp("sweep.json", R"({
    "workloads": ["dct"],
    "isas": ["RISC"],
    "models": ["ilp", "doe"],
    "threads": 2
  })");
  const std::string out_path = std::string(::testing::TempDir()) + "sweep_out.json";
  const CmdResult r =
      run_cmd("sweep --manifest " + manifest + " --json " + out_path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(out_path);
  const std::string doc((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  EXPECT_LT(doc.find("\"schema\": \"ksim.sweep\""),
            doc.find("\"schema_version\""))
      << doc;
  EXPECT_NE(doc.find("\"model\": \"doe\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"ok\": true"), std::string::npos) << doc;
}

TEST(Driver, SweepRejectsBadGrid) {
  const CmdResult r = run_cmd("sweep --workloads dct --models rtl");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("rtl"), std::string::npos) << r.output;
}

TEST(Driver, SweepDumpManifestRoundTrips) {
  // Flag grids are sugar over a manifest: --dump-manifest emits the
  // canonical form without running anything, and feeding it back through
  // --manifest --dump-manifest is a fixed point (one expansion path).
  const CmdResult first = run_cmd(
      "sweep --workloads dct --isas RISC --models ilp --dump-manifest -");
  ASSERT_EQ(first.exit_code, 0) << first.output;
  EXPECT_NE(first.output.find("\"workloads\""), std::string::npos)
      << first.output;
  EXPECT_NE(first.output.find("\"memories\""), std::string::npos)
      << first.output;
  EXPECT_EQ(first.output.find("[sweep]"), std::string::npos) << first.output;

  // run_cmd merges stderr into stdout; skip anything before the manifest
  // itself (e.g. the KSIM_NO_JIT deprecation warning in CI fallback legs).
  const size_t brace = first.output.find('{');
  ASSERT_NE(brace, std::string::npos) << first.output;
  const std::string manifest = first.output.substr(brace);
  const std::string path = write_temp("dumped.json", manifest);
  const CmdResult second =
      run_cmd("sweep --manifest " + path + " --dump-manifest -");
  ASSERT_EQ(second.exit_code, 0) << second.output;
  ASSERT_NE(second.output.find('{'), std::string::npos) << second.output;
  EXPECT_EQ(second.output.substr(second.output.find('{')), manifest);
}

TEST(Driver, SweepImpossibleGeometryExitsTwo) {
  // The typed ConfigError contract: impossible geometries are a distinct
  // exit code (2) from grid/usage errors (1).
  const std::string manifest = write_temp("badgeom.json", R"({
    "workloads": ["dct"], "isas": ["RISC"], "models": ["ilp"],
    "memory": {"l1": {"sets": 17}}
  })");
  const CmdResult r = run_cmd("sweep --manifest " + manifest);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("power of two"), std::string::npos) << r.output;

  const std::string zero_ports = write_temp("zeroports.json", R"({
    "workloads": ["dct"], "isas": ["RISC"], "models": ["ilp"],
    "memory": {"ports": 0}
  })");
  EXPECT_EQ(run_cmd("sweep --manifest " + zero_ports).exit_code, 2);
}

TEST(Driver, CheckpointOptionValidation) {
  // --checkpoint-every needs --ckpt-dir (and vice versa), and the RTL
  // trace recorder opts out of checkpointing.
  const CmdResult no_dir = run_cmd("run --workload dct --checkpoint-every 1000");
  EXPECT_EQ(no_dir.exit_code, 1);
  EXPECT_NE(no_dir.output.find("must be used together"), std::string::npos)
      << no_dir.output;
  const std::string dir = ckpt_dir("ckpt_opts");
  EXPECT_EQ(run_cmd("run --workload dct --ckpt-dir " + dir).exit_code, 1);
  const CmdResult rtl = run_cmd("run --workload dct --model rtl"
                                " --checkpoint-every 1000 --ckpt-dir " + dir);
  EXPECT_NE(rtl.exit_code, 0);
  EXPECT_NE(rtl.output.find("rtl"), std::string::npos) << rtl.output;
}

// -- signals & service daemon (DESIGN.md §10) --------------------------------

/// Runs a raw shell script through popen, capturing stdout+stderr of the
/// whole script (including backgrounded children).
CmdResult run_shell(const std::string& script) {
  FILE* pipe = popen(("( " + script + " ) 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CmdResult result;
  std::array<char, 4096> buf;
  size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    result.output.append(buf.data(), n);
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(Driver, ResumeMaxInstrIsAbsolute) {
  const std::string dir = ckpt_dir("ckpt_absolute");
  const CmdResult part1 =
      run_cmd("run --workload dct --isa RISC --model doe"
              " --checkpoint-every 40000 --ckpt-dir " + dir +
              " --max-instr 80000");
  ASSERT_NE(part1.output.find("instruction limit after 80000 instructions"),
            std::string::npos)
      << part1.output;
  ASSERT_FALSE(fs::is_empty(dir)) << part1.output;

  // --max-instr on resume is an absolute budget (total instructions since
  // program start), not an increment: a run stopped at 80k and resumed with
  // --max-instr 120000 executes 40k more and stops at exactly 120k.
  const CmdResult part2 = run_cmd("resume " + dir + " --max-instr 120000");
  EXPECT_NE(part2.output.find("[ksim] resumed dct@RISC"), std::string::npos)
      << part2.output;
  EXPECT_NE(part2.output.find("instruction limit after 120000 instructions"),
            std::string::npos)
      << part2.output;
}

TEST(Driver, RunSigintWritesFinalCheckpoint) {
  // A multi-second busy loop: the built-in workloads finish in well under a
  // second on the slowed interpreter path, too fast to interrupt reliably.
  const std::string src = write_temp("busy.c", R"(
int main() {
  int acc = 0;
  for (int i = 0; i < 3000; ++i)
    for (int j = 0; j < 3000; ++j)
      acc = acc + 1;
  printf("acc %d\n", acc);
  return 0;
}
)");
  const std::string dir = ckpt_dir("ckpt_sigint");
  const CmdResult r = run_shell(
      std::string(KSIM_BIN) + " run " + src +
      " --isa RISC --model doe --no-jit --no-superblocks --no-prediction"
      " --checkpoint-every 50000 --ckpt-dir " + dir + " &\n"
      "pid=$!\n"
      "sleep 0.3\n"
      "kill -INT $pid\n"
      "wait $pid\n"
      "echo \"run_exit=$?\"\n");
  EXPECT_NE(r.output.find("run_exit=130"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[ksim] interrupted at"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[ksim] checkpoint after"), std::string::npos)
      << r.output;
  ASSERT_FALSE(fs::is_empty(dir)) << r.output;

  // The final checkpoint written by the signal handler path is resumable:
  // the run completes from where it was interrupted, program output intact.
  const CmdResult resumed = run_cmd("resume " + dir);
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("acc 9000000"), std::string::npos)
      << resumed.output;
  EXPECT_NE(resumed.output.find("exited after"), std::string::npos)
      << resumed.output;
}

TEST(Driver, ServeSubmitJobsShutdownRoundTrip) {
  const std::string dir = ckpt_dir("ksimd_cli");
  fs::create_directories(dir);
  const std::string bin = KSIM_BIN;
  const std::string pf = dir + "/port";
  // One script drives the whole session: daemon on an ephemeral port
  // (discovered via --port-file), a submit streaming to completion, the
  // job table, a cancel of an unknown id, and a drained shutdown.
  const CmdResult r = run_shell(
      bin + " serve --port 0 --workers 2 --slice 100000 --port-file " + pf +
      " &\n"
      "spid=$!\n"
      "i=0; while [ $i -lt 100 ] && [ ! -s " + pf +
      " ]; do sleep 0.05; i=$((i+1)); done\n"
      "p=$(cat " + pf + ")\n" +
      bin + " submit --port $p --tenant acme --workload dct --isa RISC"
      " --no-jit --max-instr 300000 --json " + dir + "/job.json\n"
      "echo \"submit=$?\"\n" +
      bin + " jobs --port $p\n" +
      bin + " cancel --port $p 999\n"
      "echo \"cancel=$?\"\n" +
      bin + " shutdown --port $p\n"
      "echo \"shutdown=$?\"\n"
      "wait $spid\n"
      "echo \"serve=$?\"\n");
  EXPECT_NE(r.output.find("[ksimd] job 1 accepted"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[ksimd] job 1 finished (exit 0)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("submit=0"), std::string::npos) << r.output;
  EXPECT_NE(line_with(r.output, "dct@RISC").find("done"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("unknown_job"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("cancel=1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("shutdown=0"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("serve=0"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[ksimd] drained, exiting"), std::string::npos)
      << r.output;

  // The --json report streamed back over the wire is a complete ksim.run
  // document, byte-for-byte what an uninterrupted local run would write.
  std::ifstream in(dir + "/job.json");
  const std::string doc((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(doc.find("\"schema\": \"ksim.run\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"stop_reason\": \"instruction limit\""),
            std::string::npos)
      << doc;
}

} // namespace
} // namespace ksim
