// Self-checks over the generated operation tables: the ADL → TargetGen
// pipeline must produce tables whose detection patterns are unambiguous,
// whose entries are fully populated, and whose encodings round-trip through
// the assembler and disassembler.
#include <gtest/gtest.h>

#include <cstring>

#include "isa/kisa.h"
#include "isa/optable.h"
#include "isa/reg_use.h"
#include "kasm/assembler.h"
#include "kasm/disasm.h"
#include "support/strings.h"

namespace ksim::isa {
namespace {

// Two detection patterns are ambiguous when some word satisfies both:
// exactly when their constant bits agree on the overlap of their masks.
bool patterns_overlap(const OpInfo& a, const OpInfo& b) {
  const uint32_t common = a.match_mask & b.match_mask;
  return (a.match_bits & common) == (b.match_bits & common);
}

TEST(OptableConsistency, MatchPatternsMutuallyExclusivePerIsa) {
  const IsaSet& set = kisa();
  for (const IsaInfo& isa : set.isas()) {
    for (size_t i = 0; i < isa.ops.size(); ++i) {
      for (size_t j = i + 1; j < isa.ops.size(); ++j) {
        EXPECT_FALSE(patterns_overlap(*isa.ops[i], *isa.ops[j]))
            << isa.name << ": " << isa.ops[i]->name << " and "
            << isa.ops[j]->name << " can match the same word";
      }
    }
  }
}

TEST(OptableConsistency, MatchMaskAgreesWithMatchFields) {
  const IsaSet& set = kisa();
  for (const OpInfo* op : set.all_ops()) {
    uint32_t mask = 0, bits = 0;
    for (const OpInfo::MatchField& mf : op->match_fields) {
      uint32_t field_mask = 0;
      for (unsigned b = mf.field.lo; b <= mf.field.hi; ++b)
        field_mask |= 1u << b;
      mask |= field_mask;
      bits |= (mf.value << mf.field.lo) & field_mask;
    }
    EXPECT_EQ(mask, op->match_mask) << op->name;
    EXPECT_EQ(bits, op->match_bits) << op->name;
  }
}

TEST(OptableConsistency, EveryOperationFullyPopulated) {
  const IsaSet& set = kisa();
  ASSERT_FALSE(set.all_ops().empty());
  for (const OpInfo* op : set.all_ops()) {
    EXPECT_FALSE(op->name.empty());
    EXPECT_NE(op->fn, nullptr) << op->name << " has no semantics function";
    EXPECT_NE(op->def, nullptr) << op->name << " has no ADL definition";
    EXPECT_FALSE(op->match_fields.empty())
        << op->name << " has no detection pattern";
    EXPECT_NE(op->match_mask, 0u) << op->name;
    // A destination register requires an rd field, and vice versa for the
    // explicit source flags.
    if (op->rd_is_dst || op->rd_is_src) EXPECT_TRUE(op->f_rd.valid) << op->name;
    if (op->ra_is_src) EXPECT_TRUE(op->f_ra.valid) << op->name;
    if (op->rb_is_src) EXPECT_TRUE(op->f_rb.valid) << op->name;
  }
}

TEST(OptableConsistency, EveryOperationReachableByDetect) {
  // encode_op(op) must be detected as exactly `op` in every ISA that lists
  // it — the encoder and the detection patterns describe the same format.
  const IsaSet& set = kisa();
  for (const IsaInfo& isa : set.isas()) {
    for (const OpInfo* op : isa.ops) {
      OpOperands operands;
      operands.rd = 5;
      operands.ra = 6;
      operands.rb = 7;
      operands.imm = 0;
      const uint32_t word = set.encode_op(*op, operands, true);
      EXPECT_EQ(set.detect(isa, word), op)
          << isa.name << ": " << op->name << " encodes to " << hex32(word)
          << " which detects as something else";
    }
  }
}

TEST(OptableConsistency, OperandFieldsRoundTripThroughEncode) {
  const IsaSet& set = kisa();
  for (const OpInfo* op : set.all_ops()) {
    OpOperands operands;
    operands.rd = 9;
    operands.ra = 17;
    operands.rb = 31;
    operands.imm = op->f_imm.valid && op->f_imm.is_signed ? -3 : 3;
    const uint32_t word = set.encode_op(*op, operands, false);
    EXPECT_FALSE(set.is_stop(word));
    if (op->f_rd.valid) EXPECT_EQ(op->f_rd.extract(word), operands.rd);
    if (op->f_ra.valid) EXPECT_EQ(op->f_ra.extract(word), operands.ra);
    if (op->f_rb.valid) EXPECT_EQ(op->f_rb.extract(word), operands.rb);
    if (op->f_imm.valid)
      EXPECT_EQ(static_cast<int32_t>(op->f_imm.extract(word)), operands.imm)
          << op->name;
  }
}

// encode_op → disassemble_op → assembler → same word.  Relocated operations
// (branches, address materialisation) take labels in assembly and are
// covered by the detect/extract round-trips above.
TEST(OptableConsistency, AsmDisasmRoundTrip) {
  const IsaSet& set = kisa();
  const IsaInfo& risc = set.default_isa();
  int covered = 0;
  for (const OpInfo* op : risc.ops) {
    if (op->reloc != adl::RelocKind::None) continue;
    if (op->name == "SWITCHTARGET") continue; // imm is an ISA name in asm
    // Only operands the assembly syntax mentions survive the text form, so
    // leave everything else at zero.
    OpOperands operands;
    for (const std::string& pat : op->syntax) {
      if (pat == "rd") operands.rd = 4;
      if (pat == "ra" || pat == "imm(ra)") operands.ra = 10;
      if (pat == "rb") operands.rb = 11;
      if (pat == "imm" || pat == "imm(ra)")
        operands.imm = op->f_imm.is_signed ? -8 : 8;
    }
    const uint32_t word = set.encode_op(*op, operands, true);
    const std::string text = kasm::disassemble_op(set, risc, word);
    ASSERT_EQ(text.find(".word"), std::string::npos)
        << op->name << " did not disassemble: " << text;

    const std::string source = strf(
        ".isa RISC\n.global f\n.func f\n  %s\n  ret\n.endfunc\n", text.c_str());
    elf::ElfFile obj;
    ASSERT_NO_THROW(obj = kasm::assemble_or_throw(source))
        << op->name << ": " << text;
    const elf::Section* sec = obj.find_section(".text");
    ASSERT_NE(sec, nullptr);
    ASSERT_GE(sec->data.size(), 4u);
    uint32_t reassembled = 0;
    std::memcpy(&reassembled, sec->data.data(), 4);
    EXPECT_EQ(reassembled, word) << op->name << ": \"" << text << "\"";
    ++covered;
  }
  EXPECT_GT(covered, 10) << "round-trip covered suspiciously few operations";
}

TEST(OptableConsistency, RegUseMasksMatchOperandFlags) {
  // op_src_mask/op_dst_mask (the analysis layer's view) must agree with the
  // operand flags and implicit masks in the table.
  const IsaSet& set = kisa();
  for (const OpInfo* op : set.all_ops()) {
    const RegMask src = op_src_mask(*op, 9, 17, 31);
    const RegMask dst = op_dst_mask(*op, 9);
    if (op->ra_is_src) EXPECT_NE(src & (1u << 17), 0u) << op->name;
    if (op->rb_is_src) EXPECT_NE(src & (1u << 31), 0u) << op->name;
    if (op->rd_is_src) EXPECT_NE(src & (1u << 9), 0u) << op->name;
    if (op->rd_is_dst) EXPECT_NE(dst & (1u << 9), 0u) << op->name;
    if (!op->rd_is_dst)
      EXPECT_EQ(dst, static_cast<RegMask>(op->implicit_writes & 0xFFFFFFFFu))
          << op->name;
    // The zero register never counts as a destination.
    EXPECT_EQ(op_dst_mask(*op, 0) & 1u, 0u) << op->name;
  }
}

} // namespace
} // namespace ksim::isa
