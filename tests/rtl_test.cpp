#include <gtest/gtest.h>

#include "cycle/models.h"
#include "rtl/rtl_sim.h"
#include "workloads/build.h"

namespace ksim::rtl {
namespace {

Trace record_trace(const std::string& workload, const std::string& isa) {
  TraceRecorder recorder;
  workloads::run_executable(
      workloads::build_workload(workloads::by_name(workload), isa), &recorder);
  return recorder.take_trace();
}

TEST(Rtl, TraceRecorderCapturesOps) {
  const Trace t = record_trace("dct", "RISC");
  EXPECT_GT(t.ops.size(), 100000u);
  EXPECT_EQ(t.max_slots, 1);
  EXPECT_GT(t.num_instructions, 0u);
  // A RISC trace has one op per instruction.
  EXPECT_EQ(t.ops.size(), t.num_instructions);
  bool any_load = false;
  bool any_store = false;
  bool any_branch = false;
  bool any_mul = false;
  for (const TraceOp& op : t.ops) {
    any_load |= op.kind == OpKind::Load;
    any_store |= op.kind == OpKind::Store;
    any_branch |= op.kind == OpKind::Branch;
    any_mul |= op.kind == OpKind::Mul;
    EXPECT_LE(op.num_srcs, 8);
  }
  EXPECT_TRUE(any_load && any_store && any_branch && any_mul);
}

TEST(Rtl, VliwTraceHasMultipleSlots) {
  const Trace t = record_trace("dct", "VLIW4");
  EXPECT_GT(t.max_slots, 1);
  EXPECT_LE(t.max_slots, 4);
  EXPECT_GT(t.ops.size(), t.num_instructions); // some groups have >1 op
}

TEST(Rtl, CycleCountIsAtLeastOnePerSlotIssue) {
  const Trace t = record_trace("qsort", "RISC");
  RtlSimulator sim;
  const RtlStats stats = sim.run(t);
  // One issue per slot per cycle: a RISC (1-slot) trace needs >= #ops cycles.
  EXPECT_GE(stats.cycles, t.ops.size());
  EXPECT_EQ(stats.operations, t.ops.size());
}

TEST(Rtl, WiderIssueWidthReducesCycles) {
  const Trace risc = record_trace("dct", "RISC");
  const Trace v4 = record_trace("dct", "VLIW4");
  RtlSimulator sim_a;
  RtlSimulator sim_b;
  const uint64_t c_risc = sim_a.run(risc).cycles;
  const uint64_t c_v4 = sim_b.run(v4).cycles;
  EXPECT_LT(c_v4, c_risc);
}

TEST(Rtl, DoeApproximationIsCloseToRtl) {
  // The Table II claim: the DOE model approximates the detailed model within
  // a few percent.  Use a loose 15% bound as a regression guard; the bench
  // reports the exact figures.
  for (const char* isa : {"RISC", "VLIW4"}) {
    cycle::MemoryHierarchy mem;
    cycle::DoeModel doe(&mem);
    TraceRecorder recorder;

    sim::Simulator simulator(isa::kisa());
    simulator.load(workloads::build_workload(workloads::by_name("dct"), isa));
    simulator.set_cycle_model(&doe);
    ASSERT_EQ(simulator.run(), sim::StopReason::Exited);
    // Re-run to record the trace (same executable → same path).
    const Trace t = record_trace("dct", isa);

    RtlSimulator rtl;
    const RtlStats stats = rtl.run(t);
    const double err =
        std::abs(static_cast<double>(doe.cycles()) - static_cast<double>(stats.cycles)) /
        static_cast<double>(stats.cycles);
    EXPECT_LT(err, 0.15) << isa << ": doe=" << doe.cycles()
                         << " rtl=" << stats.cycles;
  }
}

TEST(Rtl, TighterDriftBoundNeverSpeedsUp) {
  const Trace t = record_trace("fft", "VLIW4");
  RtlConfig loose;
  loose.max_drift = 64;
  RtlConfig tight;
  tight.max_drift = 1;
  const uint64_t c_loose = RtlSimulator(loose).run(t).cycles;
  const uint64_t c_tight = RtlSimulator(tight).run(t).cycles;
  EXPECT_GE(c_tight, c_loose);
}

TEST(Rtl, QueueDepthSensitivityIsBounded) {
  // Queue depth is not monotonic (deeper queues issue memory operations more
  // densely, which can lengthen load completions through port contention),
  // but the effect must stay bounded and every configuration must respect
  // the one-issue-per-slot-per-cycle lower bound.
  const Trace t = record_trace("aes", "VLIW4");
  uint64_t lo = ~uint64_t{0};
  uint64_t hi = 0;
  for (int depth : {2, 4, 8, 16}) {
    RtlConfig cfg;
    cfg.queue_depth = depth;
    const RtlStats stats = RtlSimulator(cfg).run(t);
    lo = std::min(lo, stats.cycles);
    hi = std::max(hi, stats.cycles);
    // At least ceil(ops / slots) issue cycles are needed.
    EXPECT_GE(stats.cycles, t.ops.size() / static_cast<size_t>(t.max_slots));
  }
  EXPECT_LT(static_cast<double>(hi - lo) / static_cast<double>(lo), 0.25);
}

TEST(Rtl, SharedMultiplierCostsCycles) {
  const Trace t = record_trace("cjpeg", "VLIW8");
  RtlConfig shared;
  shared.shared_multiplier = true;
  RtlConfig private_mul;
  private_mul.shared_multiplier = false;
  const uint64_t c_shared = RtlSimulator(shared).run(t).cycles;
  const uint64_t c_private = RtlSimulator(private_mul).run(t).cycles;
  EXPECT_GE(c_shared, c_private);
}

} // namespace
} // namespace ksim::rtl
