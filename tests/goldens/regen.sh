#!/usr/bin/env bash
# Regenerates the lint JSON golden files from the current build.  Run from
# the repository root after an intentional change to the lint schema or the
# checker set, then review the diff — CI fails on any unreviewed drift.
set -euo pipefail
cd "$(dirname "$0")/../.."
KSIM=${KSIM:-./build/src/driver/ksim}
while read -r name isa; do
  "$KSIM" lint "tests/fixtures/$name.s" --isa "$isa" --format json \
    > "tests/goldens/$name@$isa.json" || true
done < tests/goldens/manifest.txt
