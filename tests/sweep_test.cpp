// Tests for the parallel sweep engine (src/api/sweep.*): spec validation,
// manifest parsing, deterministic expansion order, and the headline
// guarantee — per-point results are bit-identical to serial runs at any
// thread count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/report.h"
#include "api/session.h"
#include "api/sweep.h"
#include "support/error.h"
#include "support/json.h"

namespace ksim {
namespace {

api::SweepSpec small_spec() {
  api::SweepSpec spec;
  spec.workloads = {"cjpeg", "dct"};
  spec.isas = {"RISC", "VLIW2", "VLIW4"};
  spec.models = {"ilp", "aie", "doe"};
  return spec;
}

TEST(SweepSpec, ValidateAcceptsAndRejects) {
  api::SweepSpec spec = small_spec();
  EXPECT_NO_THROW(spec.validate());

  api::SweepSpec bad = spec;
  bad.workloads.clear();
  EXPECT_THROW(bad.validate(), Error);

  bad = spec;
  bad.workloads.push_back("no-such-workload");
  EXPECT_THROW(bad.validate(), Error);

  bad = spec;
  bad.isas = {"VLIW3"};
  EXPECT_THROW(bad.validate(), Error);

  bad = spec;
  bad.models = {"rtl"}; // trace replay is per-run, not sweepable
  EXPECT_THROW(bad.validate(), Error);

  bad = spec;
  bad.threads = 0;
  EXPECT_THROW(bad.validate(), Error);

  bad = spec;
  bad.base.ckpt_every = 100;
  bad.base.ckpt_dir = "/tmp/x";
  EXPECT_THROW(bad.validate(), Error);
}

TEST(SweepSpec, FromManifest) {
  const api::SweepSpec spec = api::SweepSpec::from_manifest(R"({
    "workloads": ["dct", "aes"],
    "isas": ["RISC", "VLIW4"],
    "models": ["ilp", "doe"],
    "threads": 4,
    "seed": 7,
    "max_instructions": 5000
  })", "test-manifest");
  EXPECT_EQ(spec.workloads, (std::vector<std::string>{"dct", "aes"}));
  EXPECT_EQ(spec.isas, (std::vector<std::string>{"RISC", "VLIW4"}));
  EXPECT_EQ(spec.models, (std::vector<std::string>{"ilp", "doe"}));
  EXPECT_EQ(spec.threads, 4);
  EXPECT_EQ(spec.base.seed, 7u);
  EXPECT_EQ(spec.base.max_instructions, 5000u);
  EXPECT_FALSE(spec.require_lint_clean); // off unless the manifest asks
  EXPECT_NO_THROW(spec.validate());
}

TEST(SweepSpec, FromManifestParsesLintGate) {
  const api::SweepSpec spec = api::SweepSpec::from_manifest(R"({
    "workloads": ["dct"], "isas": ["RISC"], "models": ["none"],
    "require_lint_clean": true
  })", "m");
  EXPECT_TRUE(spec.require_lint_clean);
  EXPECT_THROW(api::SweepSpec::from_manifest(
                   R"({"workloads": ["dct"], "isas": ["RISC"],
                       "models": ["none"], "require_lint_clean": 3})", "m"),
               Error);
}

TEST(Sweep, LintGatePassesCleanImages) {
  // Every built-in workload is lint-clean, so gating must not cost points.
  api::SweepSpec spec;
  spec.workloads = {"dct"};
  spec.isas = {"RISC", "VLIW4"};
  spec.models = {"none"};
  spec.base.echo_output = false;
  spec.require_lint_clean = true;
  const api::SweepResult result = api::run_sweep(spec);
  EXPECT_EQ(result.failed, 0u);
  for (const api::SweepPoint& p : result.points) EXPECT_TRUE(p.ok) << p.error;
}

TEST(SweepSpec, FromManifestErrors) {
  EXPECT_THROW(api::SweepSpec::from_manifest("[]", "m"), Error);
  EXPECT_THROW(api::SweepSpec::from_manifest("{", "m"), Error);
  EXPECT_THROW(
      api::SweepSpec::from_manifest(R"({"workloads": ["dct"]})", "m"), Error);
  EXPECT_THROW(api::SweepSpec::from_manifest(
                   R"({"workloads": "dct", "isas": ["RISC"],
                       "models": ["ilp"]})", "m"),
               Error);
}

TEST(Sweep, ExpandOrderIsWorkloadMajor) {
  const std::vector<api::SweepPoint> points = expand_points(small_spec());
  ASSERT_EQ(points.size(), 18u);
  // Workload-major, then ISA, then model.
  EXPECT_EQ(points[0].workload, "cjpeg");
  EXPECT_EQ(points[0].isa, "RISC");
  EXPECT_EQ(points[0].model, "ilp");
  EXPECT_EQ(points[1].model, "aie");
  EXPECT_EQ(points[2].model, "doe");
  EXPECT_EQ(points[3].isa, "VLIW2");
  EXPECT_EQ(points[3].model, "ilp");
  EXPECT_EQ(points[9].workload, "dct");
  EXPECT_EQ(points[9].isa, "RISC");
  EXPECT_EQ(points[17].workload, "dct");
  EXPECT_EQ(points[17].isa, "VLIW4");
  EXPECT_EQ(points[17].model, "doe");
}

/// Renders the comparable identity of a finished point: the full versioned
/// report (every counter, cycle count and predictor stat) — "bit-identical"
/// means these documents match byte for byte.
std::string point_identity(const api::SweepPoint& p) {
  std::string id = p.workload + "@" + p.isa + "/" + p.model + ":";
  id += p.ok ? render_report_json(p.report) : "FAIL " + p.error;
  return id;
}

TEST(Sweep, ParallelRunsAreBitIdenticalToSerial) {
  api::SweepSpec spec = small_spec();
  spec.base.echo_output = false;

  // Serial reference: each point run as its own standalone Session, exactly
  // as `ksim run --workload W --isa I --model M` would.
  std::vector<std::string> reference;
  for (const api::SweepPoint& p : expand_points(spec)) {
    api::RunConfig cfg = spec.base;
    cfg.workload = p.workload;
    cfg.isa = p.isa;
    cfg.model = p.model;
    api::Session session(cfg);
    const sim::StopReason reason = session.run();
    api::SweepPoint done = p;
    done.ok = true;
    done.report = session.report(reason);
    reference.push_back(point_identity(done));
    ASSERT_EQ(reason, sim::StopReason::Exited) << point_identity(done);
  }

  for (const int threads : {1, 2, 8}) {
    spec.threads = threads;
    size_t progress_calls = 0;
    const api::SweepResult result = api::run_sweep(
        spec, [&](const api::SweepPoint&, size_t, size_t) { ++progress_calls; });
    ASSERT_EQ(result.points.size(), reference.size()) << threads << " threads";
    EXPECT_EQ(result.failed, 0u) << threads << " threads";
    EXPECT_EQ(progress_calls, reference.size()) << threads << " threads";
    for (size_t i = 0; i < reference.size(); ++i)
      EXPECT_EQ(point_identity(result.points[i]), reference[i])
          << threads << " threads, point " << i;
  }
}

TEST(Sweep, JsonReportIsVersionedAndInSpecOrder) {
  api::SweepSpec spec;
  spec.workloads = {"dct"};
  spec.isas = {"RISC", "VLIW2"};
  spec.models = {"ilp"};
  spec.base.echo_output = false;
  const api::SweepResult result = api::run_sweep(spec);

  const std::string doc = api::render_sweep_json(spec, result);
  const support::JsonValue v = support::parse_json(doc);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.entries[0].first, "schema");
  EXPECT_EQ(v.entries[0].second.as_string("schema"), "ksim.sweep");
  EXPECT_EQ(v.entries[1].first, "schema_version");
  EXPECT_EQ(v.entries[1].second.as_int("v"), api::kSchemaVersion);
  const support::JsonValue& points = v.at("points");
  ASSERT_EQ(points.array.size(), 2u);
  EXPECT_EQ(points.array[0].at("isa").as_string("isa"), "RISC");
  EXPECT_EQ(points.array[1].at("isa").as_string("isa"), "VLIW2");
  EXPECT_TRUE(points.array[0].at("ok").as_bool("ok"));
  EXPECT_GT(points.array[0].at("cycles").as_int("cycles"), 0);

  const std::string table = api::render_sweep_table(spec, result);
  EXPECT_NE(table.find("dct"), std::string::npos) << table;
  EXPECT_NE(table.find("RISC"), std::string::npos) << table;
}

TEST(Sweep, FailedPointIsRecordedNotFatal) {
  api::SweepSpec spec;
  spec.workloads = {"dct"};
  spec.isas = {"RISC"};
  spec.models = {"ilp"};
  spec.base.echo_output = false;
  spec.base.max_instructions = 10; // stops long before exit
  const api::SweepResult result = api::run_sweep(spec);
  ASSERT_EQ(result.points.size(), 1u);
  // An instruction-limit stop is not an error: the point reports its reason.
  EXPECT_TRUE(result.points[0].ok);
  EXPECT_EQ(result.points[0].report.stop_reason, "instruction limit");
}

} // namespace
} // namespace ksim
