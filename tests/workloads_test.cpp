#include <gtest/gtest.h>

#include "cycle/models.h"
#include "support/error.h"
#include "workloads/build.h"

namespace ksim::workloads {
namespace {

struct WorkloadCase {
  const char* name;
};

class WorkloadsRun : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadsRun, SelfChecksPassOnRisc) {
  const Workload& w = by_name(GetParam().name);
  const RunOutcome r = run_executable(build_workload(w, "RISC"));
  EXPECT_EQ(r.reason, sim::StopReason::Exited) << r.output;
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find(std::string(GetParam().name) + " OK"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("FAIL"), std::string::npos) << r.output;
}

TEST_P(WorkloadsRun, OutputIdenticalAcrossAllIsas) {
  const Workload& w = by_name(GetParam().name);
  const std::string reference = run_executable(build_workload(w, "RISC")).output;
  for (const char* isa : {"VLIW2", "VLIW4", "VLIW6", "VLIW8"}) {
    const RunOutcome r = run_executable(build_workload(w, isa));
    EXPECT_EQ(r.output, reference) << w.name << " differs on " << isa;
    EXPECT_EQ(r.exit_code, 0) << w.name << " on " << isa;
  }
}

TEST_P(WorkloadsRun, WiderIssueExecutesFewerInstructionsButSameOps) {
  // VLIW code packs several operations per instruction: the dynamic
  // *instruction* count must drop while the program still does the same work.
  const Workload& w = by_name(GetParam().name);
  const RunOutcome risc = run_executable(build_workload(w, "RISC"));
  const RunOutcome v4 = run_executable(build_workload(w, "VLIW4"));
  EXPECT_LT(v4.stats.instructions, risc.stats.instructions) << w.name;
  EXPECT_GE(v4.stats.operations, v4.stats.instructions);
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadsRun,
                         ::testing::Values(WorkloadCase{"cjpeg"}, WorkloadCase{"djpeg"},
                                           WorkloadCase{"fft"}, WorkloadCase{"qsort"},
                                           WorkloadCase{"aes"}, WorkloadCase{"dct"}),
                         [](const ::testing::TestParamInfo<WorkloadCase>& info) {
                           return info.param.name;
                         });

TEST(Workloads, CatalogIsComplete) {
  ASSERT_EQ(all().size(), 6u);
  EXPECT_EQ(all()[0].name, "cjpeg");
  EXPECT_THROW(by_name("nope"), ksim::Error);
  for (const Workload& w : all()) {
    EXPECT_FALSE(w.source.empty());
    EXPECT_FALSE(w.description.empty());
  }
}

TEST(Workloads, AesStressesTheL1Cache) {
  // The paper attributes AES's poor VLIW scaling to its working set not
  // fitting the 2 KiB L1 (14% misses).  Verify our AES has a much higher L1
  // miss rate than the small-footprint DCT.
  cycle::MemoryHierarchy aes_mem;
  cycle::DoeModel aes_model(&aes_mem);
  run_executable(build_workload(by_name("aes"), "RISC"), &aes_model);

  cycle::MemoryHierarchy dct_mem;
  cycle::DoeModel dct_model(&dct_mem);
  run_executable(build_workload(by_name("dct"), "RISC"), &dct_model);

  EXPECT_GT(aes_mem.l1().miss_rate(), 2.0 * dct_mem.l1().miss_rate());
  EXPECT_GT(aes_mem.l1().miss_rate(), 0.02);
}

TEST(Workloads, DctHasHighIlpAndQsortLow) {
  // Figure 4's qualitative claim: DCT/AES offer high ILP, quicksort low.
  cycle::IlpModel dct_ilp;
  run_executable(build_workload(by_name("dct"), "RISC"), &dct_ilp);
  cycle::IlpModel qsort_ilp;
  run_executable(build_workload(by_name("qsort"), "RISC"), &qsort_ilp);
  EXPECT_GT(dct_ilp.ilp(), qsort_ilp.ilp());
  EXPECT_GT(dct_ilp.ilp(), 3.0);
  EXPECT_LT(qsort_ilp.ilp(), 3.0);
}

} // namespace
} // namespace ksim::workloads
