#include <gtest/gtest.h>

#include "isa/kisa.h"
#include "sim/fabric.h"
#include "support/error.h"
#include "workloads/build.h"

namespace ksim::sim {
namespace {

elf::ElfFile simple_program(const char* body, const std::string& isa = "RISC") {
  return workloads::build_executable(body, isa, "fabric.c");
}

constexpr const char* kCountdown = R"(
int main() {
  int n = 0;
  for (int i = 0; i < 500; i++) n += i;
  put_int(n);
  return n & 127;
}
)";

TEST(Fabric, SpawnsUpToCapacity) {
  Fabric fabric(isa::kisa(), {.total_edpes = 8});
  const elf::ElfFile risc = simple_program(kCountdown, "RISC");
  const elf::ElfFile v4 = simple_program(kCountdown, "VLIW4");

  EXPECT_GE(fabric.spawn(risc, "a"), 0); // 1 EDPE
  EXPECT_GE(fabric.spawn(v4, "b"), 0);   // 4 EDPEs
  EXPECT_GE(fabric.spawn(v4, "c"), -1);  // would need 4, only 3 free
  EXPECT_EQ(fabric.spawn(v4, "c"), -1);
  EXPECT_GE(fabric.spawn(risc, "d"), 0); // 1 more fits
  EXPECT_EQ(fabric.edpes_in_use(), 6);
}

TEST(Fabric, ThreadsRunInterleavedToCompletion) {
  Fabric fabric(isa::kisa(), {.total_edpes = 8});
  const int a = fabric.spawn(simple_program(kCountdown, "RISC"), "risc");
  const int b = fabric.spawn(simple_program(kCountdown, "VLIW4"), "vliw4");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  fabric.run_to_completion();

  for (int id : {a, b}) {
    const ThreadStatus s = fabric.status(id);
    EXPECT_EQ(s.state, ThreadState::Finished);
    ASSERT_TRUE(s.stop.has_value());
    EXPECT_EQ(*s.stop, StopReason::Exited);
    EXPECT_EQ(s.exit_code, 124750 & 127);
    EXPECT_EQ(fabric.output(id), "124750\n");
  }
  // A finished thread releases its EDPEs.
  EXPECT_EQ(fabric.edpes_in_use(), 0);
  // The VLIW4 instance needed fewer instructions for the same work.
  EXPECT_LT(fabric.status(b).instructions, fabric.status(a).instructions);
}

TEST(Fabric, CapacityFreesWhenThreadsFinish) {
  Fabric fabric(isa::kisa(), {.total_edpes = 4});
  const int a = fabric.spawn(simple_program(kCountdown, "VLIW4"), "big");
  ASSERT_GE(a, 0);
  EXPECT_EQ(fabric.spawn(simple_program(kCountdown, "RISC"), "late"), -1);
  fabric.run_to_completion();
  // Now the fabric is empty again: spawning works.
  EXPECT_GE(fabric.spawn(simple_program(kCountdown, "RISC"), "late"), 0);
  fabric.run_to_completion();
}

TEST(Fabric, UpSwitchWaitsForFreeEdpes) {
  // Thread A occupies 6 of 8 EDPEs with a long RISC busy-loop prologue and
  // exits; thread B starts as RISC and switches up to VLIW8, which cannot
  // fit until A is gone.
  const char* blocker = R"(
int main() {
  int n = 0;
  for (int i = 0; i < 20000; i++) n += i;
  return n & 7;
}
)";
  const char* switcher = R"(
isa("VLIW8") int wide(int x) { return x * 2 + 1; }
int main() { return wide(20); }
)";
  Fabric fabric(isa::kisa(), {.total_edpes = 8});
  const int a = fabric.spawn(simple_program(blocker, "VLIW6"), "blocker");
  const int b = fabric.spawn(simple_program(switcher, "RISC"), "switcher");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  fabric.run_to_completion();

  EXPECT_EQ(fabric.status(b).exit_code, 41);
  // The switcher really had to wait for the blocker's EDPEs.
  EXPECT_GT(fabric.status(b).waited_steps, 0u);
  EXPECT_EQ(*fabric.status(a).stop, StopReason::Exited);
}

TEST(Fabric, DeadlockIsDetected) {
  // Two VLIW2 threads on a 5-EDPE fabric (2+2 used, 1 free) that both want
  // to reconfigure to VLIW4 (+2 each): neither up-switch can ever proceed.
  const char* greedy = R"(
isa("VLIW4") int wide(int x) { return x + 1; }
int main() { return wide(1); }
)";
  Fabric fabric(isa::kisa(), {.total_edpes = 5});
  ASSERT_GE(fabric.spawn(simple_program(greedy, "VLIW2"), "g1"), 0);
  ASSERT_GE(fabric.spawn(simple_program(greedy, "VLIW2"), "g2"), 0);
  EXPECT_THROW(fabric.run_to_completion(), Error);
}

TEST(Fabric, RejectsZeroEdpeFabric) {
  EXPECT_THROW(Fabric(isa::kisa(), {.total_edpes = 0}), Error);
}

} // namespace
} // namespace ksim::sim
