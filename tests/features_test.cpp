// Tests for the §V-E simulated-libc replacement and the per-operation
// histogram.
#include <gtest/gtest.h>

#include "cycle/models.h"
#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "kcc/compiler.h"
#include "sim/simulator.h"
#include "workloads/build.h"

namespace ksim {
namespace {

TEST(SimulatedLibc, StubExclusionOmitsReplacedFunctions) {
  const elf::ElfFile full = kasm::assemble_or_throw(kasm::libc_stub_assembly());
  const elf::ElfFile partial =
      kasm::assemble_or_throw(kasm::libc_stub_assembly({"memcpy", "strlen"}));
  EXPECT_NE(full.find_symbol("memcpy"), nullptr);
  EXPECT_EQ(partial.find_symbol("memcpy"), nullptr);
  EXPECT_EQ(partial.find_symbol("strlen"), nullptr);
  EXPECT_NE(partial.find_symbol("puts"), nullptr);
}

constexpr const char* kMemProgram = R"(
char src[4096];
char dst[4096];
int main() {
  for (int i = 0; i < 4096; i++) src[i] = (char)(i * 7);
  for (int rep = 0; rep < 8; rep++) memcpy(dst, src, 4096u);
  int bad = 0;
  for (int i = 0; i < 4096; i++)
    if (dst[i] != src[i]) bad++;
  return bad;
}
)";

TEST(SimulatedLibc, NativeAndSimulatedAgreeFunctionally) {
  const workloads::RunOutcome native = workloads::run_executable(
      workloads::build_executable(kMemProgram, "RISC", "mem.c"));
  workloads::BuildOptions opts;
  opts.simulated_libc = true;
  const workloads::RunOutcome simulated = workloads::run_executable(
      workloads::build_executable(kMemProgram, "RISC", "mem.c", opts));
  EXPECT_EQ(native.exit_code, 0);
  EXPECT_EQ(simulated.exit_code, 0);
  // The simulated implementation executes real instructions for each byte.
  EXPECT_GT(simulated.stats.instructions, native.stats.instructions + 8 * 4096);
}

TEST(SimulatedLibc, CyclesAreCountedOnlyWhenSimulated) {
  // The paper §V-E: native execution does not count library cycles; a real
  // implementation on the simulated ISA does.
  cycle::MemoryHierarchy mem_native;
  cycle::DoeModel doe_native(&mem_native);
  workloads::run_executable(
      workloads::build_executable(kMemProgram, "RISC", "mem.c"), &doe_native);

  workloads::BuildOptions opts;
  opts.simulated_libc = true;
  cycle::MemoryHierarchy mem_sim;
  cycle::DoeModel doe_sim(&mem_sim);
  workloads::run_executable(
      workloads::build_executable(kMemProgram, "RISC", "mem.c", opts), &doe_sim);

  // 8 x 4096 copied bytes at >= 2 memory ops each dominate the difference.
  EXPECT_GT(doe_sim.cycles(), doe_native.cycles() + 8 * 4096);
}

TEST(SimulatedLibc, AllFiveFunctionsWork) {
  const char* prog = R"(
char a[64];
char b[64];
int main() {
  memset(a, 'x', 10u);
  a[10] = 0;
  if (strlen(a) != 10u) return 1;
  strcpy(b, a);
  if (strcmp(a, b) != 0) return 2;
  b[3] = 'y';              /* 'x' < 'y' -> a < b */
  if (strcmp(a, b) >= 0) return 3;
  if (strcmp(b, a) <= 0) return 4;
  memcpy(b, a, 11u);
  if (strcmp(a, b) != 0) return 5;
  return 0;
}
)";
  workloads::BuildOptions opts;
  opts.simulated_libc = true;
  for (const char* isa : {"RISC", "VLIW4"}) {
    const workloads::RunOutcome r = workloads::run_executable(
        workloads::build_executable(prog, isa, "five.c", opts));
    EXPECT_EQ(r.exit_code, 0) << isa;
  }
}

TEST(SimulatedLibc, UserOverrideOfBuiltinCompiles) {
  // A user-provided strlen replaces the builtin declaration.
  const char* prog = R"(
unsigned strlen(char *s) {
  unsigned n = 0u;
  while (s[n]) n++;
  return n + 100u;   /* deliberately different to prove it's ours */
}
int main() { return (int)strlen("abc"); }
)";
  kasm::AsmOptions unused;
  (void)unused;
  const elf::ElfFile exe = [&] {
    // Exclude the builtin stub so the user definition links cleanly.
    kcc::CompileOptions copt;
    copt.file_name = "override.c";
    const std::string assembly = kcc::compile_or_throw(prog, copt);
    const elf::ElfFile user = kasm::assemble_or_throw(assembly);
    const elf::ElfFile start = kasm::assemble_or_throw(kasm::start_stub_assembly());
    const elf::ElfFile libc =
        kasm::assemble_or_throw(kasm::libc_stub_assembly({"strlen"}));
    return kasm::link_or_throw({start, user, libc});
  }();
  const workloads::RunOutcome r = workloads::run_executable(exe);
  EXPECT_EQ(r.exit_code, 103);
}

TEST(OpHistogram, CountsMatchTotals) {
  sim::SimOptions opts;
  opts.collect_op_stats = true;
  sim::Simulator simulator(isa::kisa(), opts);
  simulator.load(workloads::build_workload(workloads::by_name("dct"), "RISC"));
  ASSERT_EQ(simulator.run(), sim::StopReason::Exited);

  const auto hist = simulator.op_histogram();
  ASSERT_FALSE(hist.empty());
  uint64_t total = 0;
  for (const auto& [op, count] : hist) {
    EXPECT_GT(count, 0u);
    total += count;
  }
  EXPECT_EQ(total, simulator.stats().operations);
  // Sorted descending.
  for (size_t i = 1; i < hist.size(); ++i)
    EXPECT_GE(hist[i - 1].second, hist[i].second);
  // dct is multiply-heavy: MUL must appear.
  const bool has_mul = std::any_of(hist.begin(), hist.end(), [](const auto& e) {
    return e.first->name == "MUL";
  });
  EXPECT_TRUE(has_mul);
}

TEST(OpHistogram, DisabledByDefault) {
  sim::Simulator simulator(isa::kisa());
  simulator.load(workloads::build_workload(workloads::by_name("qsort"), "RISC"));
  ASSERT_EQ(simulator.run(), sim::StopReason::Exited);
  EXPECT_TRUE(simulator.op_histogram().empty());
}

} // namespace
} // namespace ksim
