// Tests for the klint static-analysis subsystem: each diagnostic is
// triggered by a minimal fixture, the CFG/dataflow infrastructure is checked
// on known shapes, and every built-in workload must lint clean at every ISA
// configuration.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/ilp_bound.h"
#include "analysis/lint.h"
#include "analysis/program.h"
#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "workloads/build.h"
#include "workloads/workloads.h"

namespace ksim::analysis {
namespace {

elf::ElfFile link_fixture(const std::string& source,
                          const std::string& entry_isa = "RISC") {
  const elf::ElfFile obj = kasm::assemble_or_throw(source);
  const elf::ElfFile start =
      kasm::assemble_or_throw(kasm::start_stub_assembly(entry_isa));
  const elf::ElfFile libc =
      kasm::assemble_or_throw(kasm::libc_stub_assembly());
  kasm::LinkOptions options;
  options.entry_isa = isa::kisa().find_isa(entry_isa)->id;
  return kasm::link_or_throw({start, obj, libc}, options);
}

LintResult lint_fixture(const std::string& source,
                        const std::string& entry_isa = "RISC",
                        const LintOptions& options = {}) {
  return run_lint(link_fixture(source, entry_isa), isa::kisa(), options);
}

int count(const LintResult& r, const std::string& check, Severity severity) {
  int n = 0;
  for (const Finding& f : r.findings)
    if (f.check == check && f.severity == severity) ++n;
  return n;
}

// --- one fixture per diagnostic ---------------------------------------------

TEST(Checks, UninitReadErrorOnEveryPath) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  add r4, r10, r11
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "uninit-read", Severity::Error), 1);
  EXPECT_FALSE(r.clean());
}

TEST(Checks, UninitReadWarningOnSomePath) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  beq r4, r0, skip
  addi r10, r0, 1
skip:
  add r4, r10, r10
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "uninit-read", Severity::Warning), 1);
  EXPECT_EQ(count(r, "uninit-read", Severity::Error), 0);
}

TEST(Checks, NoUninitReadWhenBothPathsWrite) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  beq r4, r0, other
  addi r10, r0, 1
  b join
other:
  addi r10, r0, 2
join:
  add r4, r10, r10
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "uninit-read", Severity::Warning), 0);
  EXPECT_EQ(count(r, "uninit-read", Severity::Error), 0);
  EXPECT_TRUE(r.clean());
}

TEST(Checks, UnreachableAndFallthrough) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  addi r4, r0, 1
  b done
  addi r4, r0, 2
done:
  addi r4, r0, 3
.endfunc
)");
  EXPECT_EQ(count(r, "unreachable", Severity::Warning), 1);
  EXPECT_EQ(count(r, "fallthrough", Severity::Error), 1);
}

TEST(Checks, BundleWawErrorAndRawWarning) {
  const LintResult r = lint_fixture(R"(.isa VLIW2
.global main
.func main
  addi r6, r0, 1
  addi r7, r0, 2
  addi r8, r0, 3
  add r5, r6, r7 || add r5, r7, r8
  add r6, r7, r8 || add r4, r6, r7
  ret
.endfunc
)",
                                    "VLIW2");
  EXPECT_EQ(count(r, "bundle-waw", Severity::Error), 1);
  EXPECT_EQ(count(r, "bundle-raw", Severity::Warning), 1);
}

TEST(Checks, BundleRawSilentOnSwapIdiom) {
  // Earlier slot reading a later slot's destination is the parallel swap
  // idiom (§V-B: all slots read before any writes) and must stay silent.
  const LintResult r = lint_fixture(R"(.isa VLIW2
.global main
.func main
  addi r5, r0, 1
  addi r6, r0, 2
  add r7, r6, r0 || add r6, r5, r0
  add r4, r7, r6
  ret
.endfunc
)",
                                    "VLIW2");
  EXPECT_EQ(count(r, "bundle-raw", Severity::Warning), 0);
  EXPECT_EQ(count(r, "bundle-waw", Severity::Error), 0);
  EXPECT_TRUE(r.clean());
}

TEST(Checks, OversubscriptionWithinFunction) {
  // Clear the stop bit of main's second word: under the 1-issue RISC decode
  // no stop bit appears within the issue width.  (The second word, not the
  // first, so the broken decode is reached from within main itself and is
  // reported as an encoding defect, not a transition problem.)
  elf::ElfFile exe = link_fixture(R"(.isa RISC
.global main
.func main
  addi r4, r0, 1
  ret
.endfunc
)");
  const elf::Symbol* main_sym = exe.find_symbol("main");
  ASSERT_NE(main_sym, nullptr);
  elf::Section* text = exe.find_section(".text");
  ASSERT_NE(text, nullptr);
  const uint32_t off = main_sym->value - text->addr;
  ASSERT_LT(off + 8u, text->data.size());
  text->data[off + 7] &= 0x7F; // stop bit is bit 31, little-endian byte 3

  const LintResult r = run_lint(exe, isa::kisa());
  EXPECT_EQ(count(r, "oversubscription", Severity::Error), 1);
  EXPECT_FALSE(r.clean());
}

TEST(Checks, IsaTransitionOnCrossIsaCallWithoutSwitchtarget) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  call vfunc
  ret
.endfunc
.isa VLIW4
.global vfunc
.func vfunc
  add r4, r5, r6 || add r7, r8, r9
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "isa-transition", Severity::Error), 1);
  EXPECT_FALSE(r.clean());
}

TEST(Checks, SwitchtargetMakesCrossIsaCallClean) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  switchtarget VLIW4
  call vfunc
  switchtarget RISC
  ret
.endfunc
.isa VLIW4
.global vfunc
.func vfunc
  add r4, r5, r6 || add r7, r8, r9
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "isa-transition", Severity::Error), 0);
  EXPECT_TRUE(r.clean());
}

// --- infrastructure ----------------------------------------------------------

TEST(Cfg, DiamondHasFourBlocksAndEntryDominatesAll) {
  const elf::ElfFile exe = link_fixture(R"(.isa RISC
.global main
.func main
  beq r4, r0, other
  addi r10, r0, 1
  b join
other:
  addi r10, r0, 2
join:
  add r4, r10, r10
  ret
.endfunc
)");
  const Program program = decode_program(exe, isa::kisa());
  const FuncRegion* main_fn = program.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  const Cfg cfg = build_cfg(program, *main_fn);
  ASSERT_EQ(cfg.blocks.size(), 4u);
  const BasicBlock* entry = &cfg.blocks[0];
  EXPECT_TRUE(entry->is_entry);
  EXPECT_EQ(entry->succs.size(), 2u);
  for (const BasicBlock& b : cfg.blocks)
    EXPECT_TRUE(cfg.dominates(0, b.id));
  // The join block is dominated by the entry only, not by either arm.
  const BasicBlock* join = cfg.block_at(main_fn->addr + 4 * 4);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->preds.size(), 2u);
  EXPECT_EQ(cfg.idom[static_cast<size_t>(join->id)], 0);
}

TEST(Dataflow, LivenessSeesBranchConsumer) {
  const elf::ElfFile exe = link_fixture(R"(.isa RISC
.global main
.func main
  addi r10, r0, 5
loop:
  addi r10, r10, -1
  bne r10, r0, loop
  addi r4, r0, 0
  ret
.endfunc
)");
  const Program program = decode_program(exe, isa::kisa());
  const FuncRegion* main_fn = program.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  const Cfg cfg = build_cfg(program, *main_fn);
  const std::vector<LivenessState> live = compute_liveness(cfg, abi_exit_live());
  // r10 is live into the loop block (read by the decrement and the branch).
  const BasicBlock* loop = cfg.block_at(main_fn->addr + 4);
  ASSERT_NE(loop, nullptr);
  EXPECT_NE(live[static_cast<size_t>(loop->id)].live_in & (1u << 10), 0u);
}

TEST(Ilp, IndependentBundleRaisesStaticBound) {
  const elf::ElfFile exe = link_fixture(R"(.isa VLIW4
.global main
.func main
  addi r5, r0, 1 || addi r6, r0, 2 || addi r7, r0, 3 || addi r8, r0, 4
  add r4, r5, r6
  ret
.endfunc
)",
                                        "VLIW4");
  const Program program = decode_program(exe, isa::kisa());
  const FuncRegion* main_fn = program.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  const FuncIlp ilp = compute_static_ilp(build_cfg(program, *main_fn));
  EXPECT_GT(ilp.max_block_bound, 1.5); // the 4-wide bundle dominates
  EXPECT_GT(ilp.ops, 0u);
}

TEST(Ilp, SerialChainBoundsToOne) {
  const elf::ElfFile exe = link_fixture(R"(.isa VLIW4
.global main
.func main
  addi r4, r0, 1
  addi r4, r4, 1
  addi r4, r4, 1
  ret
.endfunc
)",
                                        "VLIW4");
  const Program program = decode_program(exe, isa::kisa());
  const FuncRegion* main_fn = program.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  const FuncIlp ilp = compute_static_ilp(build_cfg(program, *main_fn));
  const BlockIlp* entry = nullptr;
  for (const BlockIlp& b : ilp.block_bounds)
    if (b.addr == main_fn->addr) entry = &b;
  ASSERT_NE(entry, nullptr);
  // The three addi form a 3-cycle dependence chain; only the return (which
  // reads the link register, ready at entry) can overlap it.
  EXPECT_EQ(entry->ops, 4u);
  EXPECT_EQ(entry->critical_path, 3u);
  EXPECT_NEAR(entry->bound(), 4.0 / 3.0, 1e-9);
}

TEST(Render, JsonContainsFindingsAndSummary) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  add r4, r10, r11
  ret
.endfunc
)");
  const std::string json = render_json(r, "fixture");
  EXPECT_NE(json.find("\"target\": \"fixture\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
  EXPECT_NE(json.find("\"check\": \"uninit-read\""), std::string::npos);
  const std::string text = render_text(r, "fixture", false);
  EXPECT_NE(text.find("NOT clean"), std::string::npos);
}

// --- the real programs -------------------------------------------------------

TEST(Workloads, AllLintCleanAtEveryIsa) {
  const char* isas[] = {"RISC", "VLIW2", "VLIW4", "VLIW6", "VLIW8"};
  for (const workloads::Workload& wl : workloads::all()) {
    for (const char* isa_name : isas) {
      const elf::ElfFile exe = workloads::build_workload(wl, isa_name);
      const LintResult r = run_lint(exe, isa::kisa());
      EXPECT_TRUE(r.clean())
          << wl.name << "@" << isa_name << ":\n"
          << render_text(r, wl.name, true);
    }
  }
}

} // namespace
} // namespace ksim::analysis
