// Tests for the klint static-analysis subsystem: each diagnostic is
// triggered by a minimal fixture, the CFG/dataflow infrastructure is checked
// on known shapes, and every built-in workload must lint clean at every ISA
// configuration.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/ilp_bound.h"
#include "analysis/lint.h"
#include "analysis/program.h"
#include "analysis/summaries.h"
#include "analysis/value_range.h"
#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "workloads/build.h"
#include "workloads/workloads.h"

namespace ksim::analysis {
namespace {

elf::ElfFile link_fixture(const std::string& source,
                          const std::string& entry_isa = "RISC") {
  const elf::ElfFile obj = kasm::assemble_or_throw(source);
  const elf::ElfFile start =
      kasm::assemble_or_throw(kasm::start_stub_assembly(entry_isa));
  const elf::ElfFile libc =
      kasm::assemble_or_throw(kasm::libc_stub_assembly());
  kasm::LinkOptions options;
  options.entry_isa = isa::kisa().find_isa(entry_isa)->id;
  return kasm::link_or_throw({start, obj, libc}, options);
}

LintResult lint_fixture(const std::string& source,
                        const std::string& entry_isa = "RISC",
                        const LintOptions& options = {}) {
  return run_lint(link_fixture(source, entry_isa), isa::kisa(), options);
}

int count(const LintResult& r, const std::string& check, Severity severity) {
  int n = 0;
  for (const Finding& f : r.findings)
    if (f.check == check && f.severity == severity) ++n;
  return n;
}

// --- one fixture per diagnostic ---------------------------------------------

TEST(Checks, UninitReadErrorOnEveryPath) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  add r4, r10, r11
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "uninit-read", Severity::Error), 1);
  EXPECT_FALSE(r.clean());
}

TEST(Checks, UninitReadWarningOnSomePath) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  beq r4, r0, skip
  addi r10, r0, 1
skip:
  add r4, r10, r10
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "uninit-read", Severity::Warning), 1);
  EXPECT_EQ(count(r, "uninit-read", Severity::Error), 0);
}

TEST(Checks, NoUninitReadWhenBothPathsWrite) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  beq r4, r0, other
  addi r10, r0, 1
  b join
other:
  addi r10, r0, 2
join:
  add r4, r10, r10
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "uninit-read", Severity::Warning), 0);
  EXPECT_EQ(count(r, "uninit-read", Severity::Error), 0);
  EXPECT_TRUE(r.clean());
}

TEST(Checks, UnreachableAndFallthrough) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  addi r4, r0, 1
  b done
  addi r4, r0, 2
done:
  addi r4, r0, 3
.endfunc
)");
  EXPECT_EQ(count(r, "unreachable", Severity::Warning), 1);
  EXPECT_EQ(count(r, "fallthrough", Severity::Error), 1);
}

TEST(Checks, BundleWawErrorAndRawWarning) {
  const LintResult r = lint_fixture(R"(.isa VLIW2
.global main
.func main
  addi r6, r0, 1
  addi r7, r0, 2
  addi r8, r0, 3
  add r5, r6, r7 || add r5, r7, r8
  add r6, r7, r8 || add r4, r6, r7
  ret
.endfunc
)",
                                    "VLIW2");
  EXPECT_EQ(count(r, "bundle-waw", Severity::Error), 1);
  EXPECT_EQ(count(r, "bundle-raw", Severity::Warning), 1);
}

TEST(Checks, BundleRawSilentOnSwapIdiom) {
  // Earlier slot reading a later slot's destination is the parallel swap
  // idiom (§V-B: all slots read before any writes) and must stay silent.
  const LintResult r = lint_fixture(R"(.isa VLIW2
.global main
.func main
  addi r5, r0, 1
  addi r6, r0, 2
  add r7, r6, r0 || add r6, r5, r0
  add r4, r7, r6
  ret
.endfunc
)",
                                    "VLIW2");
  EXPECT_EQ(count(r, "bundle-raw", Severity::Warning), 0);
  EXPECT_EQ(count(r, "bundle-waw", Severity::Error), 0);
  EXPECT_TRUE(r.clean());
}

TEST(Checks, OversubscriptionWithinFunction) {
  // Clear the stop bit of main's second word: under the 1-issue RISC decode
  // no stop bit appears within the issue width.  (The second word, not the
  // first, so the broken decode is reached from within main itself and is
  // reported as an encoding defect, not a transition problem.)
  elf::ElfFile exe = link_fixture(R"(.isa RISC
.global main
.func main
  addi r4, r0, 1
  ret
.endfunc
)");
  const elf::Symbol* main_sym = exe.find_symbol("main");
  ASSERT_NE(main_sym, nullptr);
  elf::Section* text = exe.find_section(".text");
  ASSERT_NE(text, nullptr);
  const uint32_t off = main_sym->value - text->addr;
  ASSERT_LT(off + 8u, text->data.size());
  text->data[off + 7] &= 0x7F; // stop bit is bit 31, little-endian byte 3

  const LintResult r = run_lint(exe, isa::kisa());
  EXPECT_EQ(count(r, "oversubscription", Severity::Error), 1);
  EXPECT_FALSE(r.clean());
}

TEST(Checks, IsaTransitionOnCrossIsaCallWithoutSwitchtarget) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  call vfunc
  ret
.endfunc
.isa VLIW4
.global vfunc
.func vfunc
  add r4, r5, r6 || add r7, r8, r9
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "isa-transition", Severity::Error), 1);
  EXPECT_FALSE(r.clean());
}

TEST(Checks, SwitchtargetMakesCrossIsaCallClean) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  switchtarget VLIW4
  call vfunc
  switchtarget RISC
  ret
.endfunc
.isa VLIW4
.global vfunc
.func vfunc
  add r4, r5, r6 || add r7, r8, r9
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "isa-transition", Severity::Error), 0);
  EXPECT_TRUE(r.clean());
}

// --- infrastructure ----------------------------------------------------------

TEST(Cfg, DiamondHasFourBlocksAndEntryDominatesAll) {
  const elf::ElfFile exe = link_fixture(R"(.isa RISC
.global main
.func main
  beq r4, r0, other
  addi r10, r0, 1
  b join
other:
  addi r10, r0, 2
join:
  add r4, r10, r10
  ret
.endfunc
)");
  const Program program = decode_program(exe, isa::kisa());
  const FuncRegion* main_fn = program.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  const Cfg cfg = build_cfg(program, *main_fn);
  ASSERT_EQ(cfg.blocks.size(), 4u);
  const BasicBlock* entry = &cfg.blocks[0];
  EXPECT_TRUE(entry->is_entry);
  EXPECT_EQ(entry->succs.size(), 2u);
  for (const BasicBlock& b : cfg.blocks)
    EXPECT_TRUE(cfg.dominates(0, b.id));
  // The join block is dominated by the entry only, not by either arm.
  const BasicBlock* join = cfg.block_at(main_fn->addr + 4 * 4);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->preds.size(), 2u);
  EXPECT_EQ(cfg.idom[static_cast<size_t>(join->id)], 0);
}

TEST(Dataflow, LivenessSeesBranchConsumer) {
  const elf::ElfFile exe = link_fixture(R"(.isa RISC
.global main
.func main
  addi r10, r0, 5
loop:
  addi r10, r10, -1
  bne r10, r0, loop
  addi r4, r0, 0
  ret
.endfunc
)");
  const Program program = decode_program(exe, isa::kisa());
  const FuncRegion* main_fn = program.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  const Cfg cfg = build_cfg(program, *main_fn);
  const std::vector<LivenessState> live = compute_liveness(cfg, abi_exit_live());
  // r10 is live into the loop block (read by the decrement and the branch).
  const BasicBlock* loop = cfg.block_at(main_fn->addr + 4);
  ASSERT_NE(loop, nullptr);
  EXPECT_NE(live[static_cast<size_t>(loop->id)].live_in & (1u << 10), 0u);
}

TEST(Ilp, IndependentBundleRaisesStaticBound) {
  const elf::ElfFile exe = link_fixture(R"(.isa VLIW4
.global main
.func main
  addi r5, r0, 1 || addi r6, r0, 2 || addi r7, r0, 3 || addi r8, r0, 4
  add r4, r5, r6
  ret
.endfunc
)",
                                        "VLIW4");
  const Program program = decode_program(exe, isa::kisa());
  const FuncRegion* main_fn = program.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  const FuncIlp ilp = compute_static_ilp(build_cfg(program, *main_fn));
  EXPECT_GT(ilp.max_block_bound, 1.5); // the 4-wide bundle dominates
  EXPECT_GT(ilp.ops, 0u);
}

TEST(Ilp, SerialChainBoundsToOne) {
  const elf::ElfFile exe = link_fixture(R"(.isa VLIW4
.global main
.func main
  addi r4, r0, 1
  addi r4, r4, 1
  addi r4, r4, 1
  ret
.endfunc
)",
                                        "VLIW4");
  const Program program = decode_program(exe, isa::kisa());
  const FuncRegion* main_fn = program.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  const FuncIlp ilp = compute_static_ilp(build_cfg(program, *main_fn));
  const BlockIlp* entry = nullptr;
  for (const BlockIlp& b : ilp.block_bounds)
    if (b.addr == main_fn->addr) entry = &b;
  ASSERT_NE(entry, nullptr);
  // The three addi form a 3-cycle dependence chain; only the return (which
  // reads the link register, ready at entry) can overlap it.
  EXPECT_EQ(entry->ops, 4u);
  EXPECT_EQ(entry->critical_path, 3u);
  EXPECT_NEAR(entry->bound(), 4.0 / 3.0, 1e-9);
}

TEST(Render, JsonContainsFindingsAndSummary) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  add r4, r10, r11
  ret
.endfunc
)");
  const std::string json = render_json(r, "fixture");
  EXPECT_NE(json.find("\"target\": \"fixture\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
  EXPECT_NE(json.find("\"check\": \"uninit-read\""), std::string::npos);
  const std::string text = render_text(r, "fixture", false);
  EXPECT_NE(text.find("NOT clean"), std::string::npos);
}

// --- value-range abstract interpretation -------------------------------------

TEST(ValueRange, LatticeJoinAndWiden) {
  const ValueRange a = ValueRange::constant(4);
  const ValueRange b = ValueRange::constant(12);
  const ValueRange j = a.join(b);
  EXPECT_TRUE(j.is_plain_range());
  EXPECT_EQ(j.lo, 4);
  EXPECT_EQ(j.hi, 12);
  EXPECT_TRUE(a.join(ValueRange::top()).is_top());
  EXPECT_EQ(a.join(ValueRange::bottom()), a);
  // sp-relative and absolute values have no common finite bound.
  EXPECT_TRUE(a.join(ValueRange::sp_offset(-8, -8)).is_top());
  // A growing bound widens to infinity, which clamps to ⊤.
  EXPECT_TRUE(j.widen(ValueRange::interval(4, 20)).is_top());
  // A stable fixed point does not widen.
  EXPECT_EQ(j.widen(j), j);
}

TEST(ValueRange, ArithmeticAndSpTracking) {
  const ValueRange sp0 = ValueRange::sp_offset(0, 0);
  const ValueRange down = vr_add_const(sp0, -16);
  EXPECT_TRUE(down.is_sp_constant());
  EXPECT_EQ(down.lo, -16);
  const ValueRange sum = vr_add(ValueRange::constant(8), ValueRange::interval(0, 4));
  EXPECT_TRUE(sum.is_plain_range());
  EXPECT_EQ(sum.lo, 8);
  EXPECT_EQ(sum.hi, 12);
  // sp - sp cancels to a plain difference (the unsigned plain domain keeps
  // non-negative results; a negative difference clamps to ⊤); sp + sp is
  // meaningless.
  EXPECT_TRUE(vr_sub(sp0, down).is_plain_range());
  EXPECT_EQ(vr_sub(sp0, down).lo, 16);
  EXPECT_TRUE(vr_sub(down, sp0).is_top());
  EXPECT_TRUE(vr_add(sp0, sp0).is_top());
  // Leaving the unsigned 32-bit domain degrades to ⊤, never wraps.
  EXPECT_TRUE(vr_add(ValueRange::constant(0xFFFFFFFF), ValueRange::constant(8))
                  .is_top());
}

TEST(ValueRange, ConstantsFlowThroughStackSlots) {
  const elf::ElfFile exe = link_fixture(R"(.isa RISC
.global main
.func main
  addi sp, sp, -16
  li r5, 0x100
  addi r6, r5, 32
  sw r6, 4(sp)
  lw r7, 4(sp)
  add r4, r7, r0
  addi sp, sp, 16
  ret
.endfunc
)");
  const Program program = decode_program(exe, isa::kisa());
  const FuncRegion* main_fn = program.function_named("main");
  ASSERT_NE(main_fn, nullptr);
  const Cfg cfg = build_cfg(program, *main_fn);
  const ValueAnalysis va = analyze_values(program, cfg);
  // Before the add, r7 holds the constant that travelled through the slot.
  const StaticInstr* add = program.instr_at(main_fn->addr + 5 * 4);
  ASSERT_NE(add, nullptr);
  const ValueRange r7 = value_before(program, va, *add, 7);
  EXPECT_TRUE(r7.is_constant());
  EXPECT_EQ(r7.lo, 0x120);
  // And sp is a known entry-relative constant.
  const ValueRange sp = value_before(program, va, *add, 2);
  EXPECT_TRUE(sp.is_sp_constant());
  EXPECT_EQ(sp.lo, -16);
}

// --- whole-program call graph ------------------------------------------------

/// Builds program + analyses + call graph for a fixture in one shot.
struct WholeProgramFixture {
  elf::ElfFile exe;
  Program program;
  FuncAnalyses fa;
  CallGraph cg;

  explicit WholeProgramFixture(const std::string& source,
                               const std::string& entry_isa = "RISC")
      : exe(link_fixture(source, entry_isa)),
        program(decode_program(exe, isa::kisa())),
        fa(analyze_functions(program)),
        cg(build_callgraph(exe, program, fa)) {}

  int node_of(std::string_view name) const {
    for (size_t i = 0; i < program.functions.size(); ++i)
      if (program.functions[i].name == name) return static_cast<int>(i);
    return -1;
  }
};

TEST(Callgraph, DirectEdgesReachabilityAndDeadness) {
  const WholeProgramFixture f(R"(.isa RISC
.global main
.func main
  addi sp, sp, -8
  sw ra, 4(sp)
  call helper
  lw ra, 4(sp)
  addi sp, sp, 8
  ret
.endfunc
.global helper
.func helper
  addi r4, r0, 1
  ret
.endfunc
.global orphan
.func orphan
  addi r4, r0, 2
  ret
.endfunc
)");
  const int main_n = f.node_of("main");
  const int helper_n = f.node_of("helper");
  const int orphan_n = f.node_of("orphan");
  ASSERT_GE(main_n, 0);
  ASSERT_GE(helper_n, 0);
  ASSERT_GE(orphan_n, 0);
  EXPECT_TRUE(f.cg.nodes[static_cast<size_t>(main_n)].reachable);
  EXPECT_TRUE(f.cg.nodes[static_cast<size_t>(helper_n)].reachable);
  EXPECT_FALSE(f.cg.nodes[static_cast<size_t>(orphan_n)].reachable);
  // main → helper is a resolved direct non-tail edge.
  bool found = false;
  for (const int e : f.cg.nodes[static_cast<size_t>(main_n)].calls) {
    const CallEdge& edge = f.cg.edges[static_cast<size_t>(e)];
    if (edge.callee == helper_n) {
      found = true;
      EXPECT_EQ(edge.kind, CallKind::Direct);
      EXPECT_FALSE(edge.tail);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(f.cg.unresolved_sites.empty());
  // node_at maps interior addresses back to their function.
  const FuncRegion& helper_fn = f.program.functions[static_cast<size_t>(helper_n)];
  EXPECT_EQ(f.cg.node_at(f.program, helper_fn.addr + 4), helper_n);
}

TEST(Callgraph, JumpTableCallResolvesEveryTarget) {
  const WholeProgramFixture f(R"(.isa RISC
.data
handlers: .word inc, dec
cell: .word 0
.text
.global main
.func main
  addi sp, sp, -8
  sw ra, 4(sp)
  la r6, cell
  lw r5, 0(r6)
  andi r5, r5, 1
  slli r5, r5, 2
  la r6, handlers
  add r6, r6, r5
  lw r8, 0(r6)
  jalr r1, r8
  lw ra, 4(sp)
  addi sp, sp, 8
  ret
.endfunc
.global inc
.func inc
  addi r4, r0, 1
  ret
.endfunc
.global dec
.func dec
  addi r4, r0, -1
  ret
.endfunc
)");
  const int main_n = f.node_of("main");
  const int inc_n = f.node_of("inc");
  const int dec_n = f.node_of("dec");
  ASSERT_GE(main_n, 0);
  EXPECT_TRUE(f.cg.unresolved_sites.empty());
  EXPECT_FALSE(f.cg.nodes[static_cast<size_t>(main_n)].has_unresolved_call);
  int table_edges = 0;
  for (const int e : f.cg.nodes[static_cast<size_t>(main_n)].calls) {
    const CallEdge& edge = f.cg.edges[static_cast<size_t>(e)];
    if (edge.kind != CallKind::Table) continue;
    ++table_edges;
    EXPECT_TRUE(edge.callee == inc_n || edge.callee == dec_n);
  }
  EXPECT_EQ(table_edges, 2);
  // Both handler entry addresses appear as table words: address-taken.
  EXPECT_TRUE(f.cg.nodes[static_cast<size_t>(inc_n)].address_taken);
  EXPECT_TRUE(f.cg.nodes[static_cast<size_t>(dec_n)].address_taken);
}

TEST(Callgraph, MutualRecursionSharesAnScc) {
  const WholeProgramFixture f(R"(.isa RISC
.global main
.func main
  addi sp, sp, -8
  sw ra, 4(sp)
  addi r5, r0, 4
  call ping
  lw ra, 4(sp)
  addi sp, sp, 8
  ret
.endfunc
.global ping
.func ping
  beq r5, r0, out
  addi sp, sp, -8
  sw ra, 4(sp)
  addi r5, r5, -1
  call pong
  lw ra, 4(sp)
  addi sp, sp, 8
out:
  ret
.endfunc
.global pong
.func pong
  addi sp, sp, -8
  sw ra, 4(sp)
  call ping
  lw ra, 4(sp)
  addi sp, sp, 8
  ret
.endfunc
)");
  const int ping_n = f.node_of("ping");
  const int pong_n = f.node_of("pong");
  const int main_n = f.node_of("main");
  EXPECT_TRUE(f.cg.nodes[static_cast<size_t>(ping_n)].recursive);
  EXPECT_TRUE(f.cg.nodes[static_cast<size_t>(pong_n)].recursive);
  EXPECT_FALSE(f.cg.nodes[static_cast<size_t>(main_n)].recursive);
  EXPECT_EQ(f.cg.nodes[static_cast<size_t>(ping_n)].scc,
            f.cg.nodes[static_cast<size_t>(pong_n)].scc);
  EXPECT_NE(f.cg.nodes[static_cast<size_t>(main_n)].scc,
            f.cg.nodes[static_cast<size_t>(ping_n)].scc);
  // bottom_up visits callees before callers for out-of-cycle edges.
  int pos_main = -1, pos_ping = -1;
  for (size_t i = 0; i < f.cg.bottom_up.size(); ++i) {
    if (f.cg.bottom_up[i] == main_n) pos_main = static_cast<int>(i);
    if (f.cg.bottom_up[i] == ping_n) pos_ping = static_cast<int>(i);
  }
  EXPECT_LT(pos_ping, pos_main);
}

// --- interprocedural summaries -----------------------------------------------

TEST(Summaries, LeafFrameDepthAndCallerFold) {
  const WholeProgramFixture f(R"(.isa RISC
.global main
.func main
  addi sp, sp, -8
  sw ra, 4(sp)
  call helper
  lw ra, 4(sp)
  addi sp, sp, 8
  ret
.endfunc
.global helper
.func helper
  addi sp, sp, -16
  sw r0, 0(sp)
  addi r4, r0, 1
  addi sp, sp, 16
  ret
.endfunc
)");
  const FuncSummaries summaries = compute_summaries(f.program, f.cg, f.fa);
  const FuncRegion* helper_fn = f.program.function_named("helper");
  const FuncRegion* main_fn = f.program.function_named("main");
  ASSERT_NE(helper_fn, nullptr);
  ASSERT_NE(main_fn, nullptr);

  const auto helper_it = summaries.find(helper_fn->addr);
  ASSERT_NE(helper_it, summaries.end());
  const FuncSummary& helper_sum = helper_it->second;
  EXPECT_TRUE(helper_sum.returns);
  EXPECT_FALSE(helper_sum.has_simop);
  EXPECT_TRUE(helper_sum.frame_known);
  EXPECT_EQ(helper_sum.frame_bytes, 16);
  EXPECT_TRUE(helper_sum.depth_known);
  EXPECT_EQ(helper_sum.max_depth, 16);
  EXPECT_NE(helper_sum.must_def & (1u << 4), 0u); // writes the return value
  const int risc_id = isa::kisa().find_isa("RISC")->id;
  EXPECT_NE(helper_sum.exit_isa_mask & (1u << risc_id), 0u);

  // The caller's worst-case depth folds its own frame over the callee's.
  const auto main_it = summaries.find(main_fn->addr);
  ASSERT_NE(main_it, summaries.end());
  EXPECT_TRUE(main_it->second.depth_known);
  EXPECT_EQ(main_it->second.max_depth, 8 + 16);
}

// --- whole-program checkers --------------------------------------------------

TEST(Checks, OobStoreConstantIsError) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  li r5, 0x2000000
  addi r6, r0, 7
  sw r6, 0(r5)
  addi r4, r0, 0
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "oob-access", Severity::Error), 1);
  EXPECT_FALSE(r.clean());
}

TEST(Checks, OobStoreStraddlingRangeIsWarning) {
  const LintResult r = lint_fixture(R"(.isa RISC
.data
cell: .word 0
.text
.global main
.func main
  la r9, cell
  lw r9, 0(r9)
  li r7, 0xFFFFF8
  beq r9, r0, store
  li r7, 0x1000008
store:
  sw r0, 0(r7)
  addi r4, r0, 0
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "oob-access", Severity::Warning), 1);
  EXPECT_EQ(count(r, "oob-access", Severity::Error), 0);
}

TEST(Checks, InBoundsStackTrafficStaysClean) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  addi sp, sp, -16
  sw r0, 0(sp)
  lw r4, 0(sp)
  addi sp, sp, 16
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "oob-access", Severity::Error), 0);
  EXPECT_EQ(count(r, "oob-access", Severity::Warning), 0);
  EXPECT_TRUE(r.clean());
}

TEST(Checks, StackOverflowOnOversizedFrame) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  li r5, 0x200000
  sub sp, sp, r5
  sw r0, 0(sp)
  add sp, sp, r5
  addi r4, r0, 0
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "stack-overflow", Severity::Error), 1);
  EXPECT_FALSE(r.clean());
}

TEST(Checks, RecursionDemotesStackDepthToNote) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  addi sp, sp, -8
  sw ra, 4(sp)
  addi r5, r0, 5
  call down
  lw ra, 4(sp)
  addi sp, sp, 8
  ret
.endfunc
.global down
.func down
  beq r5, r0, out
  addi sp, sp, -8
  sw ra, 4(sp)
  addi r5, r5, -1
  call down
  lw ra, 4(sp)
  addi sp, sp, 8
  ret
out:
  addi r4, r0, 0
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "recursion-cycle", Severity::Note), 1);
  EXPECT_EQ(count(r, "stack-depth-unknown", Severity::Note), 1);
  EXPECT_EQ(count(r, "stack-overflow", Severity::Error), 0);
  EXPECT_TRUE(r.clean()); // notes never dirty a program
}

TEST(Checks, DeadFunctionNoteNamesTheOrphan) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  addi r4, r0, 0
  ret
.endfunc
.global orphan
.func orphan
  addi r4, r0, 2
  ret
.endfunc
)");
  bool orphan_noted = false;
  for (const Finding& f : r.findings)
    if (f.check == "dead-function" && f.function == "orphan") orphan_noted = true;
  EXPECT_TRUE(orphan_noted);
  EXPECT_TRUE(r.clean());
}

TEST(Checks, IsaReturnMismatchIsError) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  switchtarget VLIW4
  call vfunc
  switchtarget RISC
  ret
.endfunc
.isa VLIW4
.global vfunc
.func vfunc
  switchtarget RISC
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "isa-return", Severity::Error), 1);
  EXPECT_FALSE(r.clean());
}

TEST(Checks, MatchingIsaReturnStaysClean) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  switchtarget VLIW4
  call vfunc
  switchtarget RISC
  ret
.endfunc
.isa VLIW4
.global vfunc
.func vfunc
  add r4, r5, r6 || add r7, r8, r9
  ret
.endfunc
)");
  EXPECT_EQ(count(r, "isa-return", Severity::Error), 0);
  EXPECT_TRUE(r.clean());
}

// --- JIT-readiness classification --------------------------------------------

TEST(Translatability, LeafSafeSimopAndWritableTableUnsafe) {
  const LintResult r = lint_fixture(R"(.isa RISC
.data
table: .word case0, case1
.text
.global main
.func main
  la r6, table
  lw r8, 0(r6)
  jr r8
case0:
  addi r4, r0, 1
  ret
case1:
  addi r4, r0, 2
  ret
.endfunc
.global leaf
.func leaf
  addi r4, r0, 3
  ret
.endfunc
)");
  const auto func_report = [&](std::string_view name) -> const FuncTranslatability* {
    for (const FuncTranslatability& f : r.translatability.functions)
      if (f.name == name) return &f;
    return nullptr;
  };
  // A pure-compute leaf is fully JIT-safe.
  const FuncTranslatability* leaf = func_report("leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_TRUE(leaf->jit_safe());
  EXPECT_EQ(leaf->safe_blocks, leaf->total_blocks);
  // The dispatch through a writable table is not (a store may retarget it).
  const FuncTranslatability* main_fn = func_report("main");
  ASSERT_NE(main_fn, nullptr);
  EXPECT_FALSE(main_fn->jit_safe());
  EXPECT_NE(main_fn->reasons & kJitUnresolvedIndirect, 0u);
  // The libc exit stub traps into the simulator: SIMOP-unsafe.
  const FuncTranslatability* exit_fn = func_report("exit");
  ASSERT_NE(exit_fn, nullptr);
  EXPECT_NE(exit_fn->reasons & kJitSimop, 0u);
  EXPECT_GT(r.translatability.total_functions, r.translatability.safe_functions);
}

// --- report plumbing ---------------------------------------------------------

TEST(Render, CallgraphStatsAndTranslatabilityInJson) {
  const LintResult r = lint_fixture(R"(.isa RISC
.global main
.func main
  addi sp, sp, -8
  sw ra, 4(sp)
  call helper
  lw ra, 4(sp)
  addi sp, sp, 8
  ret
.endfunc
.global helper
.func helper
  addi r4, r0, 1
  ret
.endfunc
)");
  EXPECT_GT(r.callgraph.nodes, 0);
  EXPECT_GT(r.callgraph.edges, 0);
  EXPECT_EQ(r.callgraph.unresolved_sites, 0);
  EXPECT_EQ(r.callgraph.max_stack_depth, 8);
  const std::string json = render_json(r, "fixture");
  EXPECT_NE(json.find("\"schema\": \"ksim.lint\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"callgraph\": {"), std::string::npos);
  EXPECT_NE(json.find("\"max_stack_depth\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"translatability\": {"), std::string::npos);
  EXPECT_NE(json.find("\"jit_safe\""), std::string::npos);
  // Byte-stable: rendering the same result twice is identical.
  EXPECT_EQ(json, render_json(r, "fixture"));
}

// --- the real programs -------------------------------------------------------

TEST(Workloads, AllLintCleanAtEveryIsa) {
  const char* isas[] = {"RISC", "VLIW2", "VLIW4", "VLIW6", "VLIW8"};
  for (const workloads::Workload& wl : workloads::all()) {
    for (const char* isa_name : isas) {
      const elf::ElfFile exe = workloads::build_workload(wl, isa_name);
      const LintResult r = run_lint(exe, isa::kisa());
      EXPECT_TRUE(r.clean())
          << wl.name << "@" << isa_name << ":\n"
          << render_text(r, wl.name, true);
    }
  }
}

} // namespace
} // namespace ksim::analysis
