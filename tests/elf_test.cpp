#include <gtest/gtest.h>

#include "elf/elf.h"
#include "elf/loader.h"
#include "support/error.h"

namespace ksim::elf {
namespace {

ElfFile make_sample_object() {
  ElfFile f;
  f.type = ET_REL;
  Section text;
  text.name = ".text";
  text.flags = SHF_ALLOC | SHF_EXECINSTR;
  text.data = {1, 2, 3, 4, 5, 6, 7, 8};
  f.sections.push_back(text);
  Section data;
  data.name = ".data";
  data.flags = SHF_ALLOC | SHF_WRITE;
  data.data = {9, 10};
  f.sections.push_back(data);
  Section bss;
  bss.name = ".bss";
  bss.type = SHT_NOBITS;
  bss.flags = SHF_ALLOC | SHF_WRITE;
  bss.size = 64;
  f.sections.push_back(bss);

  Symbol local;
  local.name = "loop";
  local.value = 4;
  local.info = st_info(STB_LOCAL, STT_NOTYPE);
  local.shndx = 1;
  f.symbols.push_back(local);
  Symbol global;
  global.name = "main";
  global.value = 0;
  global.size = 8;
  global.info = st_info(STB_GLOBAL, STT_FUNC);
  global.shndx = 1;
  f.symbols.push_back(global);
  Symbol undef;
  undef.name = "puts";
  undef.info = st_info(STB_GLOBAL, STT_NOTYPE);
  undef.shndx = SHN_UNDEF;
  f.symbols.push_back(undef);

  f.relocations.push_back({1, {{0, R_KISA_ABS25, 2, 0}, {4, R_KISA_PCREL15, 0, -4}}});
  return f;
}

TEST(Elf, SerializeParseRoundTrip) {
  const ElfFile original = make_sample_object();
  const std::vector<uint8_t> bytes = original.serialize();
  ASSERT_GE(bytes.size(), 52u);
  EXPECT_EQ(bytes[0], 0x7F);
  EXPECT_EQ(bytes[1], 'E');

  const ElfFile parsed = ElfFile::parse(bytes);
  EXPECT_EQ(parsed.type, ET_REL);
  // The writer synthesizes symtab/strtab/shstrtab/rela sections; the parser
  // folds them back into the object model, leaving only the user sections.
  ASSERT_EQ(parsed.sections.size(), 3u);
  EXPECT_NE(parsed.find_section(".text"), nullptr);
  EXPECT_EQ(parsed.find_section(".text")->data, original.find_section(".text")->data);
  EXPECT_EQ(parsed.find_section(".bss")->size, 64u);
  EXPECT_EQ(parsed.find_section(".bss")->type, SHT_NOBITS);

  ASSERT_EQ(parsed.symbols.size(), 3u);
  const Symbol* main_sym = parsed.find_symbol("main");
  ASSERT_NE(main_sym, nullptr);
  EXPECT_EQ(main_sym->size, 8u);
  EXPECT_EQ(st_type(main_sym->info), STT_FUNC);
  EXPECT_EQ(st_bind(main_sym->info), STB_GLOBAL);
  const Symbol* undef = parsed.find_symbol("puts");
  ASSERT_NE(undef, nullptr);
  EXPECT_EQ(undef->shndx, SHN_UNDEF);

  ASSERT_EQ(parsed.relocations.size(), 1u);
  const auto& [target, relocs] = parsed.relocations.front();
  EXPECT_EQ(parsed.sections[target - 1].name, ".text");
  ASSERT_EQ(relocs.size(), 2u);
  EXPECT_EQ(relocs[0].type, R_KISA_ABS25);
  EXPECT_EQ(parsed.symbols[relocs[0].symbol].name, "puts");
  EXPECT_EQ(relocs[1].type, R_KISA_PCREL15);
  EXPECT_EQ(parsed.symbols[relocs[1].symbol].name, "loop");
  EXPECT_EQ(relocs[1].addend, -4);
}

TEST(Elf, ExecutableRoundTripKeepsEntryAndFlags) {
  ElfFile f = make_sample_object();
  f.type = ET_EXEC;
  f.entry = 0x1234;
  f.flags = 3; // entry ISA id
  f.sections[0].addr = 0x1000;
  const ElfFile parsed = ElfFile::parse(f.serialize());
  EXPECT_EQ(parsed.type, ET_EXEC);
  EXPECT_EQ(parsed.entry, 0x1234u);
  EXPECT_EQ(parsed.flags, 3u);
  EXPECT_EQ(parsed.find_section(".text")->addr, 0x1000u);
}

TEST(Elf, ParseRejectsGarbage) {
  std::vector<uint8_t> junk(100, 0xAB);
  EXPECT_THROW(ElfFile::parse(junk), Error);
  std::vector<uint8_t> tiny = {0x7F, 'E', 'L', 'F'};
  EXPECT_THROW(ElfFile::parse(tiny), Error);
}

TEST(Elf, ParseRejectsWrongMachine) {
  ElfFile f = make_sample_object();
  std::vector<uint8_t> bytes = f.serialize();
  bytes[18] = 0x03; // EM_386
  bytes[19] = 0x00;
  EXPECT_THROW(ElfFile::parse(bytes), Error);
}

TEST(LineMap, RoundTripAndLookup) {
  LineMap map;
  const uint32_t f0 = map.intern_file("a.s");
  const uint32_t f1 = map.intern_file("b.c");
  EXPECT_EQ(map.intern_file("a.s"), f0); // deduplicated
  map.entries = {{0x1000, f0, 10}, {0x1008, f1, 20}, {0x1010, f0, 30}};

  const LineMap parsed = LineMap::parse(map.serialize());
  ASSERT_EQ(parsed.files.size(), 2u);
  ASSERT_EQ(parsed.entries.size(), 3u);
  EXPECT_EQ(parsed.files[1], "b.c");

  EXPECT_EQ(parsed.lookup(0x0FFF), nullptr);
  EXPECT_EQ(parsed.lookup(0x1000)->line, 10u);
  EXPECT_EQ(parsed.lookup(0x1004)->line, 10u);
  EXPECT_EQ(parsed.lookup(0x1008)->line, 20u);
  EXPECT_EQ(parsed.lookup(0x5000)->line, 30u);
}

TEST(Loader, LoadsSectionsAndMetadata) {
  ElfFile f = make_sample_object();
  f.type = ET_EXEC;
  f.entry = 0x1000;
  f.flags = 0;
  f.find_section(".text")->addr = 0x1000;
  f.find_section(".data")->addr = 0x2000;
  f.find_section(".bss")->addr = 0x2010;
  // Executable symbol values are absolute (the linker produces them so).
  for (Symbol& sym : f.symbols)
    if (sym.shndx != SHN_UNDEF) sym.value += 0x1000;
  // Pre-dirty the bss range to verify zeroing.
  isa::ArchState st(64 * 1024);
  st.store32(0x2010, 0xFFFFFFFF);

  LineMap src;
  src.intern_file("m.c");
  src.entries = {{0x1000, 0, 5}};
  Section dbg;
  dbg.name = ".kdbg.src";
  dbg.data = src.serialize();
  f.sections.push_back(dbg);

  const LoadedImage img = load_executable(f, st);
  EXPECT_EQ(img.entry, 0x1000u);
  EXPECT_EQ(st.load8(0x1000), 1u);
  EXPECT_EQ(st.load8(0x2001), 10u);
  EXPECT_EQ(st.load32(0x2010), 0u); // bss zeroed
  EXPECT_EQ(img.image_end, 0x2010u + 64u);

  ASSERT_EQ(img.functions.size(), 1u);
  EXPECT_EQ(img.functions[0].name, "main");
  EXPECT_EQ(img.find_function(0x1004)->name, "main");
  EXPECT_EQ(img.find_function(0x1008), nullptr); // past main's 8 bytes
  EXPECT_NE(img.describe(0x1000).find("main"), std::string::npos);
  EXPECT_NE(img.describe(0x1000).find("m.c:5"), std::string::npos);
}

TEST(Loader, RejectsRelocatable) {
  const ElfFile f = make_sample_object();
  isa::ArchState st(4096);
  EXPECT_THROW(load_executable(f, st), Error);
}

} // namespace
} // namespace ksim::elf
