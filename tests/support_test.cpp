#include <gtest/gtest.h>

#include "support/bits.h"
#include "support/diag.h"
#include "support/prng.h"
#include "support/strings.h"

namespace ksim {
namespace {

TEST(Bits, ExtractInsertRoundTrip) {
  const uint32_t word = 0xDEADBEEF;
  EXPECT_EQ(extract_bits(word, 31, 0), word);
  EXPECT_EQ(extract_bits(word, 7, 0), 0xEFu);
  EXPECT_EQ(extract_bits(word, 31, 28), 0xDu);
  EXPECT_EQ(insert_bits(0, 7, 4, 0xA), 0xA0u);
  EXPECT_EQ(insert_bits(0xFFFFFFFF, 7, 4, 0), 0xFFFFFF0Fu);
  // Insert then extract returns the inserted value for every field position.
  for (unsigned lo = 0; lo < 28; lo += 3) {
    const unsigned hi = lo + 4;
    const uint32_t v = 0x15; // 5-bit pattern
    EXPECT_EQ(extract_bits(insert_bits(0, hi, lo, v), hi, lo), v);
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x7FFF, 16), 0x7FFF);
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x1F, 5), -1);
  EXPECT_EQ(sign_extend(0xF, 5), 15);
  EXPECT_EQ(sign_extend(0xFFFFFFFF, 32), -1);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(16383, 15));
  EXPECT_FALSE(fits_signed(16384, 15));
  EXPECT_TRUE(fits_signed(-16384, 15));
  EXPECT_FALSE(fits_signed(-16385, 15));
  EXPECT_TRUE(fits_unsigned(65535, 16));
  EXPECT_FALSE(fits_unsigned(65536, 16));
  EXPECT_FALSE(fits_unsigned(-1, 16));
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2048));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(24));
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2048), 11u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  const auto ws = split_ws("  one\ttwo   three ");
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(ws[1], "two");
}

TEST(Strings, ParseInt) {
  int64_t v = 0;
  EXPECT_TRUE(parse_int("123", v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(parse_int("-45", v));
  EXPECT_EQ(v, -45);
  EXPECT_TRUE(parse_int("0x1F", v));
  EXPECT_EQ(v, 31);
  EXPECT_TRUE(parse_int("  42 ", v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("12x", v));
  EXPECT_FALSE(parse_int("0x", v));
  EXPECT_FALSE(parse_int("--3", v));
}

TEST(Strings, Strf) {
  EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(hex32(0x1234), "0x00001234");
}

TEST(Diag, CollectsAndThrows) {
  DiagEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning({"f", 1, 0}, "w");
  EXPECT_FALSE(diags.has_errors());
  diags.error({"f", 2, 3}, "bad");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1);
  EXPECT_NE(diags.to_string().find("f:2:3: error: bad"), std::string::npos);
  EXPECT_THROW(diags.throw_if_errors(), Error);
}

TEST(Prng, DeterministicAndBounded) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Prng c(7);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t v = c.next_below(10);
    EXPECT_LT(v, 10u);
    const int32_t r = c.next_range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

} // namespace
} // namespace ksim
