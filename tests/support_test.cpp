#include <gtest/gtest.h>

#include "support/bits.h"
#include "support/diag.h"
#include "support/error.h"
#include "support/json.h"
#include "support/prng.h"
#include "support/strings.h"

namespace ksim {
namespace {

TEST(Bits, ExtractInsertRoundTrip) {
  const uint32_t word = 0xDEADBEEF;
  EXPECT_EQ(extract_bits(word, 31, 0), word);
  EXPECT_EQ(extract_bits(word, 7, 0), 0xEFu);
  EXPECT_EQ(extract_bits(word, 31, 28), 0xDu);
  EXPECT_EQ(insert_bits(0, 7, 4, 0xA), 0xA0u);
  EXPECT_EQ(insert_bits(0xFFFFFFFF, 7, 4, 0), 0xFFFFFF0Fu);
  // Insert then extract returns the inserted value for every field position.
  for (unsigned lo = 0; lo < 28; lo += 3) {
    const unsigned hi = lo + 4;
    const uint32_t v = 0x15; // 5-bit pattern
    EXPECT_EQ(extract_bits(insert_bits(0, hi, lo, v), hi, lo), v);
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x7FFF, 16), 0x7FFF);
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x1F, 5), -1);
  EXPECT_EQ(sign_extend(0xF, 5), 15);
  EXPECT_EQ(sign_extend(0xFFFFFFFF, 32), -1);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(16383, 15));
  EXPECT_FALSE(fits_signed(16384, 15));
  EXPECT_TRUE(fits_signed(-16384, 15));
  EXPECT_FALSE(fits_signed(-16385, 15));
  EXPECT_TRUE(fits_unsigned(65535, 16));
  EXPECT_FALSE(fits_unsigned(65536, 16));
  EXPECT_FALSE(fits_unsigned(-1, 16));
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2048));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(24));
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(2048), 11u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  const auto ws = split_ws("  one\ttwo   three ");
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(ws[1], "two");
}

TEST(Strings, ParseInt) {
  int64_t v = 0;
  EXPECT_TRUE(parse_int("123", v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(parse_int("-45", v));
  EXPECT_EQ(v, -45);
  EXPECT_TRUE(parse_int("0x1F", v));
  EXPECT_EQ(v, 31);
  EXPECT_TRUE(parse_int("  42 ", v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("12x", v));
  EXPECT_FALSE(parse_int("0x", v));
  EXPECT_FALSE(parse_int("--3", v));
}

TEST(Strings, Strf) {
  EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(hex32(0x1234), "0x00001234");
}

TEST(Diag, CollectsAndThrows) {
  DiagEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning({"f", 1, 0}, "w");
  EXPECT_FALSE(diags.has_errors());
  diags.error({"f", 2, 3}, "bad");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1);
  EXPECT_NE(diags.to_string().find("f:2:3: error: bad"), std::string::npos);
  EXPECT_THROW(diags.throw_if_errors(), Error);
}

TEST(Prng, DeterministicAndBounded) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Prng c(7);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t v = c.next_below(10);
    EXPECT_LT(v, 10u);
    const int32_t r = c.next_range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

TEST(Json, StringEscapes) {
  using support::parse_json;
  const support::JsonValue v =
      parse_json(R"({"s": "a\"b\\c\/d\b\f\n\r\te", "u": "Aé€"})");
  EXPECT_EQ(v.at("s").as_string("s"), "a\"b\\c/d\b\f\n\r\te");
  // A = 'A' (1 byte), é = é (2 bytes), € = € (3 bytes).
  EXPECT_EQ(v.at("u").as_string("u"), "A\xC3\xA9\xE2\x82\xAC");
  EXPECT_THROW(parse_json(R"("\q")"), Error);        // unknown escape
  EXPECT_THROW(parse_json(R"("\u12")"), Error);      // truncated \u
  EXPECT_THROW(parse_json(R"("\u12zz")"), Error);    // bad hex digit
  EXPECT_THROW(parse_json("\"a\nb\""), Error);       // raw control character
  EXPECT_THROW(parse_json(R"("open)"), Error);       // unterminated string
}

TEST(Json, EscapeWriteParseRoundTrip) {
  // Every byte the writer escapes must come back identical through the
  // parser, including embedded control characters.
  const std::string original = "line1\nline2\ttab \"quoted\" back\\slash \x01";
  const std::string doc = "{\"k\": \"" + support::json_escape(original) + "\"}";
  EXPECT_EQ(support::parse_json(doc).at("k").as_string("k"), original);
}

TEST(Json, NestingDepthLimit) {
  const auto nested = [](int depth) {
    std::string s(static_cast<size_t>(depth), '[');
    s += "1";
    s.append(static_cast<size_t>(depth), ']');
    return s;
  };
  EXPECT_NO_THROW(support::parse_json(nested(support::kMaxNestingDepth)));
  EXPECT_THROW(support::parse_json(nested(support::kMaxNestingDepth + 1)), Error);
  // Mixed object/array nesting counts the same levels.
  std::string mixed;
  for (int i = 0; i < support::kMaxNestingDepth; ++i) mixed += R"({"k":)";
  mixed += "0";
  mixed.append(static_cast<size_t>(support::kMaxNestingDepth), '}');
  EXPECT_THROW(support::parse_json("[" + mixed + "]"), Error);
}

TEST(Json, MalformedInputRejection) {
  using support::parse_json;
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("[1, 2"), Error);
  EXPECT_THROW(parse_json("[1 2]"), Error);            // missing comma
  EXPECT_THROW(parse_json(R"({"a" 1})"), Error);       // missing colon
  EXPECT_THROW(parse_json(R"({a: 1})"), Error);        // unquoted key
  EXPECT_THROW(parse_json("1 2"), Error);              // trailing document
  EXPECT_THROW(parse_json("truth"), Error);            // not a keyword
  EXPECT_THROW(parse_json("1.2.3"), Error);            // malformed number
  EXPECT_THROW(parse_json("-"), Error);
  // The diagnostic carries origin:line:column context.
  try {
    parse_json("{\n  \"a\": }", "grid.json");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("grid.json:2"), std::string::npos);
  }
}

TEST(Json, RoundTripKeyOrderStability) {
  // The writer promises byte-stable output with keys in insertion order;
  // the parser preserves that order in `entries`, so write → parse →
  // re-write reproduces the document exactly.
  support::JsonWriter w;
  w.begin_object();
  w.field("zeta", 1);
  w.field("alpha", "two");
  w.begin_object("nested");
  w.field("b", true);
  w.field("a", 3.5);
  w.end();
  w.begin_array("list");
  w.element(uint64_t{7});
  w.element("x");
  w.end();
  w.end();
  const std::string doc = w.str();

  const support::JsonValue v = support::parse_json(doc);
  ASSERT_EQ(v.entries.size(), 4u);
  EXPECT_EQ(v.entries[0].first, "zeta");
  EXPECT_EQ(v.entries[1].first, "alpha");
  EXPECT_EQ(v.entries[2].first, "nested");
  EXPECT_EQ(v.entries[3].first, "list");
  ASSERT_EQ(v.at("nested").entries.size(), 2u);
  EXPECT_EQ(v.at("nested").entries[0].first, "b");
  EXPECT_EQ(v.at("nested").entries[1].first, "a");

  support::JsonWriter w2;
  w2.begin_object();
  w2.field("zeta", v.at("zeta").as_int("zeta"));
  w2.field("alpha", v.at("alpha").as_string("alpha"));
  w2.begin_object("nested");
  w2.field("b", v.at("nested").at("b").as_bool("b"));
  w2.field("a", v.at("nested").at("a").as_number("a"));
  w2.end();
  w2.begin_array("list");
  w2.element(static_cast<uint64_t>(v.at("list").array[0].as_int("0")));
  w2.element(v.at("list").array[1].as_string("1"));
  w2.end();
  w2.end();
  EXPECT_EQ(w2.str(), doc);
}

TEST(Json, CompactStyleIsOneLine) {
  // The ksimd service frames one document per line, so the Compact style
  // must render any nesting without embedded newlines and still parse back
  // identically to its Pretty twin.
  const auto build = [](support::JsonWriter& w) {
    w.begin_object();
    w.field("schema", "ksim.test");
    w.field("count", 3);
    w.begin_array("items");
    w.element(uint64_t{1});
    w.element("two");
    w.end();
    w.begin_object("empty");
    w.end();
    w.begin_array("none");
    w.end();
    w.end();
  };
  support::JsonWriter compact(support::JsonStyle::Compact);
  build(compact);
  const std::string line = compact.str();
  EXPECT_EQ(line,
            "{\"schema\": \"ksim.test\", \"count\": 3, \"items\": [1, \"two\"],"
            " \"empty\": {}, \"none\": []}\n");
  // Exactly one line: the terminating newline is the only one.
  EXPECT_EQ(line.find('\n'), line.size() - 1);

  support::JsonWriter pretty;
  build(pretty);
  const support::JsonValue from_compact = support::parse_json(line);
  const support::JsonValue from_pretty = support::parse_json(pretty.str());
  ASSERT_EQ(from_compact.entries.size(), from_pretty.entries.size());
  for (size_t i = 0; i < from_compact.entries.size(); ++i)
    EXPECT_EQ(from_compact.entries[i].first, from_pretty.entries[i].first);
}

TEST(Json, TruncatedDocumentsAlwaysFail) {
  // Service condition: a client can disconnect mid-message, leaving any
  // strict prefix of a document in the buffer.  No prefix may parse as a
  // complete document (the trailing '\n' is the frame terminator, so the
  // prefixes run to the full unterminated text).
  support::JsonWriter w(support::JsonStyle::Compact);
  w.begin_object();
  w.field("schema", "ksim.job.submit");
  w.field("schema_version", 2);
  w.field("tenant", "acme");
  w.begin_object("config");
  w.field("workload", "dct");
  w.field("max_instr", uint64_t{1000000});
  w.end();
  w.end();
  std::string doc = w.str();
  EXPECT_EQ(doc.back(), '\n');
  doc.pop_back();
  EXPECT_NO_THROW(support::parse_json(doc));
  for (size_t len = 0; len < doc.size(); ++len)
    EXPECT_THROW(support::parse_json(doc.substr(0, len)), Error)
        << "prefix length " << len;
}

} // namespace
} // namespace ksim
