// kdse tests (DESIGN.md §11): memory-geometry round-trips (nested JSON,
// checkpoint RUN record, raw save/restore bytes), the flat-key compatibility
// shim, Pareto-front extraction edge cases, and the resumable sweep's
// headline guarantee — a journal-resumed sweep renders final JSON
// byte-identical to an uninterrupted run at any thread count.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "api/report.h"
#include "api/run_config.h"
#include "api/sweep.h"
#include "api/sweep_journal.h"
#include "ckpt/checkpoint.h"
#include "cycle/mem_hierarchy.h"
#include "support/byte_stream.h"
#include "support/error.h"
#include "support/json.h"

namespace ksim {
namespace {

cycle::MemGeometry non_default_geometry() {
  cycle::MemGeometry g;
  g.line_size = 64;
  g.l1 = {64, 2, 2};
  g.l2 = {4096, 8, 9};
  g.ports = 2;
  g.miss_latency = 40;
  return g;
}

// -- geometry round-trips ----------------------------------------------------

TEST(DseGeometry, NestedJsonRoundTrips) {
  const cycle::MemGeometry g = non_default_geometry();
  support::JsonWriter w;
  w.begin_object();
  api::write_mem_geometry(w, "memory", g);
  w.end();
  const support::JsonValue v = support::parse_json(w.str());
  EXPECT_EQ(api::mem_geometry_from_json(v.at("memory"), "test"), g);

  // Missing keys keep their defaults; unknown keys are typed config errors.
  const support::JsonValue partial =
      support::parse_json(R"({"l1": {"sets": 32}})");
  cycle::MemGeometry expect;
  expect.l1.sets = 32;
  EXPECT_EQ(api::mem_geometry_from_json(partial, "test"), expect);
  EXPECT_THROW(api::mem_geometry_from_json(
                   support::parse_json(R"({"l3": {}})"), "test"),
               ConfigError);
  EXPECT_THROW(api::mem_geometry_from_json(
                   support::parse_json(R"({"ports": -1})"), "test"),
               ConfigError);
}

TEST(DseGeometry, RunRecordRoundTrips) {
  api::RunConfig cfg;
  cfg.workload = "dct";
  cfg.model = "doe";
  cfg.memory = non_default_geometry();
  const ckpt::RunRecord run = cfg.run_record("dct@RISC");
  EXPECT_EQ(run.memory, cfg.memory);
  const api::RunConfig back = api::RunConfig::from_run_record(run);
  EXPECT_EQ(back.memory, cfg.memory);
  EXPECT_EQ(back.model, cfg.model);
}

TEST(DseGeometry, SaveRestoreRoundTrips) {
  const cycle::MemGeometry g = non_default_geometry();
  support::ByteWriter w;
  g.save(w);
  support::ByteReader r(w.buffer(), "geometry");
  cycle::MemGeometry back;
  back.restore(r);
  EXPECT_EQ(back, g);
}

TEST(DseGeometry, ValidateRejectsImpossibleGeometries) {
  EXPECT_NO_THROW(cycle::MemGeometry{}.validate());
  EXPECT_NO_THROW(non_default_geometry().validate());

  cycle::MemGeometry bad;
  bad.l1.sets = 17; // non-power-of-two
  EXPECT_THROW(bad.validate(), ConfigError);

  bad = cycle::MemGeometry{};
  bad.ports = 0;
  EXPECT_THROW(bad.validate(), ConfigError);

  bad = cycle::MemGeometry{};
  bad.line_size = 48;
  EXPECT_THROW(bad.validate(), ConfigError);

  bad = cycle::MemGeometry{};
  bad.l2.hit_latency = 0;
  EXPECT_THROW(bad.validate(), ConfigError);

  // ConfigError is an Error: legacy catch sites keep working.
  bad = cycle::MemGeometry{};
  bad.l1.ways = 0;
  EXPECT_THROW(bad.validate(), Error);
}

TEST(DseGeometry, IdAndAreaProxyAreStable) {
  EXPECT_EQ(cycle::MemGeometry{}.id(),
            "l1:16x4@3,l2:2048x4@6,line:32,ports:1,mem:18");

  // Doubling a cache dimension strictly grows the area proxy; extra L1
  // ports cost area without adding capacity.
  const cycle::MemGeometry base;
  cycle::MemGeometry bigger = base;
  bigger.l1.sets *= 2;
  EXPECT_GT(bigger.area_proxy(), base.area_proxy());
  cycle::MemGeometry ported = base;
  ported.ports = 2;
  EXPECT_GT(ported.area_proxy(), base.area_proxy());
  EXPECT_NE(bigger.id(), base.id());
}

TEST(DseGeometry, FlatKeysApplyWithDeprecationShim) {
  cycle::MemGeometry g;
  const support::JsonValue v = support::parse_json("64");
  EXPECT_TRUE(api::apply_flat_mem_key(g, "mem_l1_sets", v, "test"));
  EXPECT_EQ(g.l1.sets, 64u);
  EXPECT_TRUE(api::apply_flat_mem_key(g, "mem_ports", v, "test"));
  EXPECT_EQ(g.ports, 64u);
  EXPECT_FALSE(api::apply_flat_mem_key(g, "workloads", v, "test"));
  EXPECT_THROW(api::apply_flat_mem_key(g, "mem_l2_ways",
                                       support::parse_json("\"x\""), "test"),
               ConfigError);
}

// -- Pareto extraction -------------------------------------------------------

using CyclesArea = std::vector<std::pair<uint64_t, uint64_t>>;

TEST(DsePareto, SinglePointIsItsOwnFront) {
  EXPECT_EQ(api::pareto_front(CyclesArea{{100, 2048}}),
            (std::vector<size_t>{0}));
  EXPECT_TRUE(api::pareto_front(CyclesArea{}).empty());
}

TEST(DsePareto, ExactTiesAllSurvive) {
  // Two identical optima plus one dominated point: both ties stay, sorted
  // by area then cycles then index.
  const CyclesArea pts = {{100, 10}, {100, 10}, {200, 20}};
  EXPECT_EQ(api::pareto_front(pts), (std::vector<size_t>{0, 1}));
}

TEST(DsePareto, AllDominatedCollapseToOne) {
  const CyclesArea pts = {{300, 30}, {100, 10}, {200, 20}, {100, 20}};
  EXPECT_EQ(api::pareto_front(pts), (std::vector<size_t>{1}));
}

TEST(DsePareto, TradeoffCurveSurvivesSortedByArea) {
  // Classic frontier: cheaper-but-slower vs bigger-but-faster, with one
  // strictly dominated interior point (index 2).
  const CyclesArea pts = {{100, 40}, {400, 10}, {350, 30}, {200, 20}};
  EXPECT_EQ(api::pareto_front(pts), (std::vector<size_t>{1, 3, 0}));
}

// -- resumable sweeps --------------------------------------------------------

api::SweepSpec resume_spec() {
  api::SweepSpec spec;
  spec.workloads = {"dct"};
  spec.isas = {"RISC", "VLIW4"};
  spec.models = {"ilp"};
  cycle::MemGeometry small;
  small.l1.sets = 8;
  spec.geometries = {cycle::MemGeometry{}, small};
  spec.base.echo_output = false;
  return spec;
}

api::SweepOutcome outcome_of(const api::SweepPoint& p, size_t index) {
  api::SweepOutcome o;
  o.point_index = index;
  o.ok = p.ok;
  o.error = p.error;
  o.stop_reason = p.report.stop_reason;
  o.exit_code = p.report.exit_code;
  o.instructions = p.report.stats.instructions;
  o.operations = p.report.stats.operations;
  o.has_cycles = p.report.has_cycles;
  o.cycles = p.report.cycles;
  o.ops_per_cycle = p.report.ops_per_cycle;
  o.output_bytes = p.report.output_bytes;
  return o;
}

TEST(DseSweep, ResumedSweepIsByteIdenticalAcrossThreadCounts) {
  api::SweepSpec spec = resume_spec();
  const api::SweepResult reference = api::run_sweep(spec);
  ASSERT_EQ(reference.failed, 0u);
  ASSERT_EQ(reference.points.size(), 4u);
  const std::string expected = api::render_sweep_json(spec, reference);

  for (const int threads : {1, 2, 8}) {
    // Simulate a sweep killed after two points: the journal holds their
    // outcomes, the resumed run must only execute the remaining two and
    // still render the exact same bytes.
    const std::string dir = std::string(::testing::TempDir()) +
                            "dse_resume_t" + std::to_string(threads);
    std::filesystem::remove_all(dir);
    {
      api::SweepJournal journal =
          api::SweepJournal::create(dir, api::render_sweep_manifest(spec));
      journal.append(outcome_of(reference.points[0], 0));
      journal.append(outcome_of(reference.points[2], 2)); // out of order is fine
    }
    api::SweepJournal resumed = api::SweepJournal::resume(dir);
    EXPECT_EQ(resumed.completed().size(), 2u) << threads << " threads";

    spec.threads = threads;
    const api::SweepResult result = api::run_sweep(spec, {}, &resumed);
    EXPECT_EQ(result.resumed, 2u) << threads << " threads";
    EXPECT_EQ(result.failed, 0u) << threads << " threads";
    EXPECT_EQ(api::render_sweep_json(spec, result), expected)
        << threads << " threads";
  }
}

TEST(DseSweep, JournalRejectsForeignManifest) {
  const api::SweepSpec spec = resume_spec();
  const std::string dir = std::string(::testing::TempDir()) + "dse_foreign";
  std::filesystem::remove_all(dir);
  { api::SweepJournal::create(dir, api::render_sweep_manifest(spec)); }

  // Swapping the pinned manifest breaks the CRC binding in the journal
  // header: a resumed sweep can never silently run a different grid.
  api::SweepSpec other = resume_spec();
  other.workloads = {"aes"};
  {
    std::ofstream out(dir + "/" + api::kManifestFileName);
    out << api::render_sweep_manifest(other);
  }
  EXPECT_THROW(api::SweepJournal::resume(dir), Error);
}

TEST(DseSweep, ManifestRoundTripsThroughCanonicalRender) {
  api::SweepSpec spec = resume_spec();
  spec.threads = 3;
  spec.base.seed = 7;
  const std::string manifest = api::render_sweep_manifest(spec);
  const api::SweepSpec back = api::SweepSpec::from_manifest(manifest, "<rt>");
  EXPECT_EQ(back.workloads, spec.workloads);
  EXPECT_EQ(back.isas, spec.isas);
  EXPECT_EQ(back.models, spec.models);
  EXPECT_EQ(back.geometries, spec.geometries);
  EXPECT_EQ(back.threads, spec.threads);
  EXPECT_EQ(back.base.seed, spec.base.seed);
  // Canonical render is a fixed point.
  EXPECT_EQ(api::render_sweep_manifest(back), manifest);
}

TEST(DseSweep, SweepJsonCarriesGeometriesAndPareto) {
  api::SweepSpec spec = resume_spec();
  const api::SweepResult result = api::run_sweep(spec);
  const support::JsonValue v =
      support::parse_json(api::render_sweep_json(spec, result));
  const support::JsonValue& memories = v.at("memories");
  ASSERT_EQ(memories.array.size(), 2u);
  EXPECT_EQ(memories.array[0].at("id").as_string("id"),
            cycle::MemGeometry{}.id());
  EXPECT_GT(memories.array[0].at("area_proxy").as_int("area"), 0);
  const support::JsonValue& pareto = v.at("pareto");
  // One front per (workload, isa, model) group with cycle-counted points.
  ASSERT_EQ(pareto.array.size(), 2u);
  for (const support::JsonValue& front : pareto.array) {
    EXPECT_EQ(front.at("workload").as_string("w"), "dct");
    EXPECT_GE(front.at("points").array.size(), 1u);
    EXPECT_LE(front.at("points").array.size(), 2u);
  }
}

} // namespace
} // namespace ksim
