// Unit tests for the decode-cache storage layer (arena + open-addressing
// table, see arena.h) and the superblock cache built on top of it.  The
// documented duplicate-key contract — insert overwrites in place and keeps
// pointer identity — is what lets prediction links and superblocks hold raw
// DecodedInstr pointers, so it is pinned here.
#include <gtest/gtest.h>

#include <vector>

#include "sim/decode_cache.h"
#include "sim/superblock.h"

namespace ksim::sim {
namespace {

isa::DecodedInstr make_instr(uint32_t addr, uint8_t num_ops) {
  isa::DecodedInstr di;
  di.addr = addr;
  di.num_ops = num_ops;
  di.size_bytes = 4;
  return di;
}

TEST(DecodeCache, InsertLookupRoundTrip) {
  DecodeCache cache;
  EXPECT_EQ(cache.lookup(0x1000, 0), nullptr);
  isa::DecodedInstr* in = cache.insert(0x1000, 0, make_instr(0x1000, 1));
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(cache.lookup(0x1000, 0), in);
  EXPECT_EQ(in->addr, 0x1000u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DecodeCache, KeyIncludesIsaId) {
  // The same address decodes differently after SWITCHTARGET (§V-D), so the
  // ISA id is part of the key.
  DecodeCache cache;
  isa::DecodedInstr* risc = cache.insert(0x2000, 0, make_instr(0x2000, 1));
  isa::DecodedInstr* vliw = cache.insert(0x2000, 3, make_instr(0x2000, 4));
  EXPECT_NE(risc, vliw);
  EXPECT_EQ(cache.lookup(0x2000, 0), risc);
  EXPECT_EQ(cache.lookup(0x2000, 3), vliw);
  EXPECT_EQ(cache.lookup(0x2000, 1), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(DecodeCache, DuplicateInsertOverwritesInPlace) {
  DecodeCache cache;
  isa::DecodedInstr* first = cache.insert(0x3000, 0, make_instr(0x3000, 1));

  // Re-inserting the same key must refresh the contents but return the SAME
  // pointer: prediction links and superblocks cache raw pointers and must
  // observe the new decode rather than dangle (documented in decode_cache.h).
  isa::DecodedInstr* second = cache.insert(0x3000, 0, make_instr(0x3000, 2));
  EXPECT_EQ(first, second);
  EXPECT_EQ(first->num_ops, 2);
  EXPECT_EQ(cache.size(), 1u); // still one logical entry
  EXPECT_EQ(cache.lookup(0x3000, 0), first);
}

TEST(DecodeCache, GrowsPastInitialCapacityAndChunkSize) {
  DecodeCache cache;
  const size_t initial_capacity = cache.table_capacity();
  constexpr uint32_t kEntries = 10000; // > 1024-slot table, > 256-entry chunks
  std::vector<isa::DecodedInstr*> ptrs;
  for (uint32_t i = 0; i < kEntries; ++i)
    ptrs.push_back(cache.insert(0x1000 + 4 * i, static_cast<int>(i % 5),
                                make_instr(0x1000 + 4 * i, 1)));
  EXPECT_EQ(cache.size(), kEntries);
  EXPECT_GT(cache.table_capacity(), initial_capacity); // rehashed
  // Pointer stability across growth: every earlier pointer still resolves.
  for (uint32_t i = 0; i < kEntries; ++i) {
    EXPECT_EQ(cache.lookup(0x1000 + 4 * i, static_cast<int>(i % 5)), ptrs[i]);
    EXPECT_EQ(ptrs[i]->addr, 0x1000 + 4 * i);
  }
}

TEST(DecodeCache, ClearInvalidatesEverything) {
  DecodeCache cache;
  cache.insert(0x1000, 0, make_instr(0x1000, 1));
  cache.insert(0x1004, 0, make_instr(0x1004, 1));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(0x1000, 0), nullptr);
  EXPECT_EQ(cache.lookup(0x1004, 0), nullptr);
  // Usable again after the flush.
  isa::DecodedInstr* again = cache.insert(0x1000, 0, make_instr(0x1000, 2));
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->num_ops, 2);
}

TEST(AddrIsaMap, KeySeparatesAddressAndIsa) {
  using Map = AddrIsaMap<int>;
  EXPECT_NE(Map::make_key(0x1000, 0), Map::make_key(0x1000, 1));
  EXPECT_NE(Map::make_key(0x1000, 0), Map::make_key(0x1004, 0));
  EXPECT_EQ(Map::make_key(0x1000, 2), Map::make_key(0x1000, 2));
  // A negative/unknown ISA id must not alias a valid (addr, isa) pair.
  EXPECT_NE(Map::make_key(0x1000, -1), Map::make_key(0x1000, 0));
}

TEST(SuperblockCache, CreateInsertLookup) {
  SuperblockCache cache;
  EXPECT_EQ(cache.lookup(0x4000, 0), nullptr);
  Superblock* sb = cache.create(0x4000, 0);
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(sb->entry_addr, 0x4000u);
  EXPECT_EQ(sb->num_instrs, 0);
  EXPECT_EQ(sb->succ[0], nullptr);
  EXPECT_EQ(sb->succ[1], nullptr);
  // create() does not index; formation installs the block explicitly.
  EXPECT_EQ(cache.lookup(0x4000, 0), nullptr);
  cache.insert(sb);
  EXPECT_EQ(cache.lookup(0x4000, 0), sb);
  EXPECT_EQ(cache.lookup(0x4000, 1), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SuperblockCache, ReformationDisplacesButKeepsOldBlockAlive) {
  SuperblockCache cache;
  Superblock* old_block = cache.create(0x4000, 0);
  old_block->num_instrs = 3;
  cache.insert(old_block);

  Superblock* new_block = cache.create(0x4000, 0);
  new_block->num_instrs = 7;
  cache.insert(new_block);

  // Newest formation wins the index, but the displaced block must stay
  // readable: chained succ[] edges may still point at it.
  EXPECT_EQ(cache.lookup(0x4000, 0), new_block);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(old_block->num_instrs, 3);
}

TEST(SuperblockCache, ClearDropsBlocks) {
  SuperblockCache cache;
  cache.insert(cache.create(0x4000, 0));
  cache.insert(cache.create(0x4020, 2));
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(0x4000, 0), nullptr);
  EXPECT_EQ(cache.lookup(0x4020, 2), nullptr);
}

TEST(ChunkArena, PointerStableAcrossChunks) {
  ChunkArena<int, 4> arena;
  std::vector<int*> ptrs;
  for (int i = 0; i < 11; ++i) {
    int* p = arena.alloc();
    *p = i;
    ptrs.push_back(p);
  }
  EXPECT_EQ(arena.size(), 11u);
  for (int i = 0; i < 11; ++i) EXPECT_EQ(*ptrs[i], i);
  arena.clear();
  EXPECT_EQ(arena.size(), 0u);
}

} // namespace
} // namespace ksim::sim
