// The superblock engine is a pure performance optimization: with
// use_superblocks on or off, every observable — exit code, output,
// architectural state, statistics that describe the program (instructions,
// operations, decodes, ISA switches, libc calls), cycle approximations and
// traces — must be identical.  These tests pin that equivalence across
// workloads, ISA instances, mixed-ISA programs, hooks and invalidation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "cycle/models.h"
#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "sim/simulator.h"
#include "workloads/build.h"

namespace ksim::sim {
namespace {

SimOptions with_superblocks(bool on) {
  SimOptions opts;
  opts.use_superblocks = on;
  return opts;
}

/// The KSIM_NO_SUPERBLOCKS escape hatch overrides SimOptions, so assertions
/// about block formation only hold when the engine is actually available.
bool engine_forced_off() { return std::getenv("KSIM_NO_SUPERBLOCKS") != nullptr; }

elf::ElfFile build_exe(const std::string& source, const std::string& entry_isa = "RISC") {
  kasm::AsmOptions opt;
  opt.file_name = "superblock_test.s";
  const elf::ElfFile user = kasm::assemble_or_throw(source, opt);
  const elf::ElfFile start = kasm::assemble_or_throw(kasm::start_stub_assembly(entry_isa));
  const elf::ElfFile libc = kasm::assemble_or_throw(kasm::libc_stub_assembly());
  kasm::LinkOptions link_opt;
  link_opt.entry_isa = isa::kisa().find_isa(entry_isa)->id;
  return kasm::link_or_throw({start, user, libc}, link_opt);
}

/// Asserts the observables of a finished run match between the block engine
/// and the per-instruction fallback.
void expect_equivalent(Simulator& fast, Simulator& slow) {
  EXPECT_EQ(fast.exit_code(), slow.exit_code());
  EXPECT_EQ(fast.libc().output(), slow.libc().output());
  EXPECT_EQ(fast.state().ip(), slow.state().ip());
  EXPECT_EQ(fast.state().isa_id(), slow.state().isa_id());
  for (unsigned r = 0; r < 32; ++r)
    EXPECT_EQ(fast.state().reg(r), slow.state().reg(r)) << "register r" << r;
  EXPECT_EQ(fast.stats().instructions, slow.stats().instructions);
  EXPECT_EQ(fast.stats().operations, slow.stats().operations);
  EXPECT_EQ(fast.stats().decodes, slow.stats().decodes);
  EXPECT_EQ(fast.stats().isa_switches, slow.stats().isa_switches);
  EXPECT_EQ(fast.stats().libc_calls, slow.stats().libc_calls);
}

TEST(Superblock, WorkloadsBitIdenticalAcrossEngines) {
  for (const workloads::Workload& w : workloads::all()) {
    SCOPED_TRACE(w.name);
    const elf::ElfFile exe = workloads::build_workload(w, "RISC");
    const workloads::RunOutcome fast =
        workloads::run_executable(exe, nullptr, with_superblocks(true));
    const workloads::RunOutcome slow =
        workloads::run_executable(exe, nullptr, with_superblocks(false));
    EXPECT_EQ(fast.reason, sim::StopReason::Exited);
    EXPECT_EQ(fast.exit_code, slow.exit_code);
    EXPECT_EQ(fast.output, slow.output);
    EXPECT_EQ(fast.stats.instructions, slow.stats.instructions);
    EXPECT_EQ(fast.stats.operations, slow.stats.operations);
    EXPECT_EQ(fast.stats.decodes, slow.stats.decodes);
    EXPECT_EQ(fast.stats.isa_switches, slow.stats.isa_switches);
    EXPECT_EQ(fast.stats.libc_calls, slow.stats.libc_calls);
    if (!engine_forced_off()) EXPECT_GT(fast.stats.blocks_formed, 0u);
    EXPECT_EQ(slow.stats.blocks_formed, 0u);
  }
}

TEST(Superblock, VliwInstancesBitIdenticalAcrossEngines) {
  const workloads::Workload& dct = workloads::by_name("dct");
  for (const char* isa : {"VLIW2", "VLIW4", "VLIW8"}) {
    SCOPED_TRACE(isa);
    const elf::ElfFile exe = workloads::build_workload(dct, isa);
    const workloads::RunOutcome fast =
        workloads::run_executable(exe, nullptr, with_superblocks(true));
    const workloads::RunOutcome slow =
        workloads::run_executable(exe, nullptr, with_superblocks(false));
    EXPECT_EQ(fast.exit_code, slow.exit_code);
    EXPECT_EQ(fast.output, slow.output);
    EXPECT_EQ(fast.stats.instructions, slow.stats.instructions);
    EXPECT_EQ(fast.stats.operations, slow.stats.operations);
  }
}

TEST(Superblock, CycleModelsExactUnderBlockExecution) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("dct"), "RISC");
  for (const char kind : {'i', 'a', 'd'}) {
    SCOPED_TRACE(kind);
    uint64_t cycles[2];
    for (const bool superblocks : {true, false}) {
      cycle::MemoryHierarchy memory;
      cycle::IlpModel ilp;
      cycle::AieModel aie(&memory);
      cycle::DoeModel doe(&memory);
      cycle::CycleModel* model = kind == 'i' ? static_cast<cycle::CycleModel*>(&ilp)
                                 : kind == 'a' ? static_cast<cycle::CycleModel*>(&aie)
                                               : static_cast<cycle::CycleModel*>(&doe);
      const workloads::RunOutcome r =
          workloads::run_executable(exe, model, with_superblocks(superblocks));
      EXPECT_EQ(r.reason, sim::StopReason::Exited);
      cycles[superblocks ? 0 : 1] = r.cycles;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
  }
}

TEST(Superblock, MixedIsaProgramBitIdentical) {
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 50
outer:
  switchtarget VLIW4
.isa VLIW4
  addi r5, r5, 1 || addi r7, r0, 2
  mul r7, r7, r5
  switchtarget RISC
.isa RISC
  bne r5, r6, outer
  srli r7, r7, 2
  add r4, r5, r7      # 50 + (2*50)/4 = 75
  ret
)";
  const elf::ElfFile exe = build_exe(source);
  Simulator fast(isa::kisa(), with_superblocks(true));
  Simulator slow(isa::kisa(), with_superblocks(false));
  fast.load(exe);
  slow.load(exe);
  EXPECT_EQ(fast.run(), StopReason::Exited);
  EXPECT_EQ(slow.run(), StopReason::Exited);
  EXPECT_EQ(fast.exit_code(), 75);
  expect_equivalent(fast, slow);
  EXPECT_EQ(fast.stats().isa_switches, 100u);
}

TEST(Superblock, TraceOutputIdentical) {
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 5
loop:
  addi r5, r5, 1
  mul r7, r5, r5
  bne r5, r6, loop
  mv r4, r7
  ret
)";
  const elf::ElfFile exe = build_exe(source);
  std::string traces[2];
  for (const bool superblocks : {true, false}) {
    Simulator sim(isa::kisa(), with_superblocks(superblocks));
    sim.load(exe);
    std::ostringstream os;
    TraceWriter trace(os);
    sim.set_trace(&trace);
    EXPECT_EQ(sim.run(), StopReason::Exited);
    EXPECT_EQ(sim.exit_code(), 25);
    traces[superblocks ? 0 : 1] = os.str();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(Superblock, ProfilerAndOpStatsExactUnderBlockExecution) {
  const elf::ElfFile exe =
      workloads::build_workload(workloads::by_name("qsort"), "RISC");
  uint64_t work_instrs[2];
  for (const bool superblocks : {true, false}) {
    SimOptions opts = with_superblocks(superblocks);
    opts.collect_op_stats = true;
    Simulator sim(isa::kisa(), opts);
    Profiler prof;
    sim.set_profiler(&prof);
    sim.load(exe);
    EXPECT_EQ(sim.run(), StopReason::Exited);
    uint64_t total = 0;
    for (const FuncProfile& p : prof.report()) total += p.instructions;
    work_instrs[superblocks ? 0 : 1] = total;
    // The histogram must account for every executed operation.
    uint64_t ops = 0;
    for (const auto& [op, count] : sim.op_histogram()) ops += count;
    EXPECT_EQ(ops, sim.stats().operations);
  }
  EXPECT_EQ(work_instrs[0], work_instrs[1]);
}

TEST(Superblock, InstructionLimitExactAndResumable) {
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 10000
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  mv r4, r5
  ret
)";
  const elf::ElfFile exe = build_exe(source);

  Simulator interrupted(isa::kisa(), with_superblocks(true));
  interrupted.load(exe);
  interrupted.set_max_instructions(777);
  EXPECT_EQ(interrupted.run(), StopReason::InstructionLimit);
  EXPECT_EQ(interrupted.stats().instructions, 777u);

  // Invalidation mid-run must not change results: drop every superblock and
  // cached decode, then resume to completion.
  interrupted.clear_decode_cache();
  interrupted.set_max_instructions(0);
  EXPECT_EQ(interrupted.run(), StopReason::Exited);

  Simulator straight(isa::kisa(), with_superblocks(true));
  straight.load(exe);
  EXPECT_EQ(straight.run(), StopReason::Exited);

  EXPECT_EQ(interrupted.exit_code(), straight.exit_code());
  EXPECT_EQ(interrupted.stats().instructions, straight.stats().instructions);
  EXPECT_EQ(interrupted.stats().operations, straight.stats().operations);
  for (unsigned r = 0; r < 32; ++r)
    EXPECT_EQ(interrupted.state().reg(r), straight.state().reg(r));
  // The resumed run re-formed blocks after the flush.
  if (!engine_forced_off())
    EXPECT_GT(interrupted.stats().blocks_formed, straight.stats().blocks_formed);
}

TEST(Superblock, StepAndRunInterleave) {
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 100
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  mv r4, r5
  ret
)";
  const elf::ElfFile exe = build_exe(source);
  Simulator sim(isa::kisa(), with_superblocks(true));
  sim.load(exe);
  for (int i = 0; i < 25; ++i) EXPECT_EQ(sim.step(), std::nullopt);
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_EQ(sim.exit_code(), 100);
}

TEST(Superblock, TrapStateIdenticalAcrossEngines) {
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  addi r6, r0, 64
loop:
  addi r5, r5, 1
  bne r5, r6, loop
  li r7, 0x7FFFFFF0
  lw r4, 0(r7)        # faults after the loop is hot
  ret
)";
  const elf::ElfFile exe = build_exe(source);
  Simulator fast(isa::kisa(), with_superblocks(true));
  Simulator slow(isa::kisa(), with_superblocks(false));
  fast.load(exe);
  slow.load(exe);
  EXPECT_EQ(fast.run(), StopReason::Trap);
  EXPECT_EQ(slow.run(), StopReason::Trap);
  // The trapping instruction does not retire in either engine.
  EXPECT_EQ(fast.stats().instructions, slow.stats().instructions);
  EXPECT_EQ(fast.state().ip(), slow.state().ip());
  EXPECT_EQ(fast.error_report(), slow.error_report());
  EXPECT_FALSE(fast.ip_history().empty());
  EXPECT_EQ(fast.ip_history(), slow.ip_history());
}

TEST(Superblock, ChainingStatsOnHotLoop) {
  const std::string source = R"(
.global main
main:
  addi r5, r0, 0
  li r6, 20000
loop:
  addi r5, r5, 1
  addi r7, r5, 3
  xor r8, r7, r5
  bne r5, r6, loop
  mv r4, r0
  ret
)";
  if (engine_forced_off()) GTEST_SKIP() << "KSIM_NO_SUPERBLOCKS set";
  Simulator sim(isa::kisa(), with_superblocks(true));
  sim.load(build_exe(source));
  EXPECT_EQ(sim.run(), StopReason::Exited);
  const SimStats& s = sim.stats();
  EXPECT_GT(s.blocks_formed, 0u);
  EXPECT_LT(s.blocks_formed, 40u);
  EXPECT_GT(s.block_dispatches, 10000u);
  // Steady state resolves successors through cached edges, not the table...
  EXPECT_GT(s.block_chain_avoidance(), 0.99);
  // ...so almost no hash lookups remain per instruction.
  EXPECT_GT(s.lookup_avoidance(), 0.95);
  EXPECT_GT(s.decode_avoidance(), 0.98);
}

TEST(Superblock, DisabledEngineFormsNoBlocks) {
  Simulator sim(isa::kisa(), with_superblocks(false));
  sim.load(build_exe(R"(
.global main
main:
  addi r4, r0, 7
  ret
)"));
  EXPECT_EQ(sim.run(), StopReason::Exited);
  EXPECT_EQ(sim.exit_code(), 7);
  EXPECT_EQ(sim.stats().blocks_formed, 0u);
  EXPECT_EQ(sim.stats().block_dispatches, 0u);
}

} // namespace
} // namespace ksim::sim
