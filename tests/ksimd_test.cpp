// ksimd service tests: wire protocol (framing, fixtures, truncation),
// scheduler (multi-tenant admission, preemption/resume bit-identity,
// quotas, cancellation, drain) and the TCP server end to end.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "api/report.h"
#include "api/session.h"
#include "api/sweep.h"
#include "ckpt/checkpoint.h"
#include "ksimd/protocol.h"
#include "ksimd/scheduler.h"
#include "ksimd/server.h"
#include "support/error.h"

namespace ksim::ksimd {
namespace {

#ifndef KSIMD_FIXTURES
#error "KSIMD_FIXTURES must be defined by the build"
#endif

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(KSIMD_FIXTURES) + "/" + name);
}

/// Collects a job's event stream; tests block on predicates over it.
class EventLog {
public:
  EventFn fn() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lk(m_);
      events_.push_back(parse_message(line));
      cv_.notify_all();
    };
  }

  /// Number of events whose schema kind matches.
  template <typename T>
  size_t count() {
    std::lock_guard<std::mutex> lk(m_);
    size_t n = 0;
    for (const Message& m : events_)
      if (std::holds_alternative<T>(m)) ++n;
    return n;
  }

  size_t count_progress(Progress::Kind kind) {
    std::lock_guard<std::mutex> lk(m_);
    size_t n = 0;
    for (const Message& m : events_)
      if (const auto* p = std::get_if<Progress>(&m); p && p->kind == kind) ++n;
    return n;
  }

  /// Blocks until at least one Progress event of `kind` arrived.
  void wait_for_progress(Progress::Kind kind) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] {
      for (const Message& m : events_)
        if (const auto* p = std::get_if<Progress>(&m); p && p->kind == kind)
          return true;
      return false;
    });
  }

  Done last_done() {
    std::lock_guard<std::mutex> lk(m_);
    for (auto it = events_.rbegin(); it != events_.rend(); ++it)
      if (const auto* d = std::get_if<Done>(&*it)) return *d;
    ADD_FAILURE() << "no done event recorded";
    return {};
  }

  /// Most recent event of type T (e.g. the terminal SweepDone).
  template <typename T>
  T last_of() {
    std::lock_guard<std::mutex> lk(m_);
    for (auto it = events_.rbegin(); it != events_.rend(); ++it)
      if (const auto* e = std::get_if<T>(&*it)) return *e;
    ADD_FAILURE() << "no event of the requested type recorded";
    return {};
  }

private:
  std::mutex m_;
  std::condition_variable cv_;
  std::vector<Message> events_;
};

api::RunConfig job_config(const std::string& workload, uint64_t max_instr = 0) {
  api::RunConfig cfg;
  cfg.workload = workload;
  cfg.isa = "RISC";
  cfg.use_jit = false; // jit_* report counters are process-volatile
  cfg.max_instructions = max_instr;
  return cfg;
}

// -- LineSplitter ------------------------------------------------------------

TEST(LineSplitter, SplitsAcrossArbitraryChunkBoundaries) {
  const std::string stream = "first line\n{\"second\": 2}\n\nlast\n";
  for (size_t chunk = 1; chunk <= 5; ++chunk) {
    LineSplitter splitter;
    for (size_t i = 0; i < stream.size(); i += chunk)
      splitter.feed(std::string_view(stream).substr(i, chunk));
    EXPECT_FALSE(splitter.overflowed());
    std::vector<std::string> lines;
    while (auto line = splitter.next()) lines.push_back(*line);
    ASSERT_EQ(lines.size(), 4u) << "chunk=" << chunk;
    EXPECT_EQ(lines[0], "first line");
    EXPECT_EQ(lines[1], "{\"second\": 2}");
    EXPECT_EQ(lines[2], "");
    EXPECT_EQ(lines[3], "last");
  }
}

TEST(LineSplitter, HoldsPartialLineUntilTerminated) {
  LineSplitter splitter;
  splitter.feed("incompl");
  EXPECT_FALSE(splitter.next().has_value());
  splitter.feed("ete\nnext");
  const auto line = splitter.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "incomplete");
  EXPECT_FALSE(splitter.next().has_value());
}

TEST(LineSplitter, RejectsOversizedLines) {
  LineSplitter splitter(16);
  splitter.feed("ok line\n");
  splitter.feed(std::string(17, 'x')); // no terminator needed to overflow
  EXPECT_TRUE(splitter.overflowed());
  // Lines completed before the overflow still drain; new input is ignored.
  ASSERT_TRUE(splitter.next().has_value());
  splitter.feed("after\n");
  EXPECT_FALSE(splitter.next().has_value());
}

// -- protocol fixtures -------------------------------------------------------
// One checked-in fixture per message type pins the wire format byte for
// byte: encode(message) must equal the fixture, and the fixture must parse
// and re-encode to itself (round-trip).

void expect_wire(const Message& message, const std::string& fixture_name) {
  const std::string expected = fixture(fixture_name);
  const std::string encoded =
      std::visit([](const auto& m) { return encode(m); }, message);
  EXPECT_EQ(encoded, expected) << fixture_name;
  EXPECT_EQ(encoded.back(), '\n') << fixture_name << ": one-line framing";
  EXPECT_EQ(encoded.find('\n'), encoded.size() - 1)
      << fixture_name << ": one-line framing";
  const Message reparsed = parse_message(expected);
  EXPECT_EQ(std::visit([](const auto& m) { return encode(m); }, reparsed),
            expected)
      << fixture_name << ": round trip";
}

TEST(Protocol, SubmitWire) {
  SubmitRequest m;
  m.tenant = "acme";
  m.priority = 5;
  m.config.workload = "dct";
  m.config.isa = "VLIW4";
  m.config.model = "doe";
  m.config.bp_kind = "gshare";
  m.config.use_jit = false;
  m.config.max_instructions = 1000000;
  m.config.seed = 42;
  m.config.memory.l1.sets = 32; // non-default kdse geometry rides the wire
  m.config.memory.ports = 2;
  expect_wire(m, "submit.json");
}

TEST(Protocol, SweepSubmitWire) {
  SweepSubmitRequest m;
  m.tenant = "acme";
  m.priority = 5;
  m.manifest = "{\"workloads\": [\"dct\"]}";
  expect_wire(m, "sweep_submit.json");
}

TEST(Protocol, SweepProgressWire) {
  SweepProgress m;
  m.id = 9;
  m.done = 3;
  m.total = 12;
  m.label = "dct@RISC doe [l1:16x4@3,l2:2048x4@6,line:32,ports:1,mem:18]";
  m.ok = false;
  expect_wire(m, "sweep_progress.json");
}

TEST(Protocol, SweepDoneWire) {
  SweepDone m;
  m.id = 9;
  m.state = JobState::Done;
  m.points_failed = 1;
  m.report = "{\"schema\": \"ksim.sweep\"}";
  expect_wire(m, "sweep_done.json");
}

TEST(Protocol, ListWire) {
  ListRequest m;
  m.tenant = "acme";
  expect_wire(m, "list.json");
}

TEST(Protocol, CancelWire) {
  CancelRequest m;
  m.id = 7;
  expect_wire(m, "cancel.json");
}

TEST(Protocol, ShutdownWire) { expect_wire(ShutdownRequest{}, "shutdown.json"); }

TEST(Protocol, AcceptedWire) {
  Accepted m;
  m.id = 7;
  expect_wire(m, "accepted.json");
}

TEST(Protocol, RejectedWire) {
  Rejected m;
  m.code = "queue_full";
  m.error = "job queue is full (64 jobs)";
  m.retry_after_ms = 1000;
  expect_wire(m, "rejected.json");
}

TEST(Protocol, ProgressWire) {
  Progress m;
  m.id = 7;
  m.instructions = 150000;
  expect_wire(m, "progress.json");
  m.kind = Progress::Kind::Preempted;
  expect_wire(m, "preempted.json");
  m.kind = Progress::Kind::Resumed;
  expect_wire(m, "resumed.json");
}

TEST(Protocol, DoneWire) {
  Done m;
  m.id = 7;
  m.state = JobState::Done;
  m.exit_code = 0;
  m.report = "{\n  \"schema\": \"ksim.run\"\n}\n"; // escaping exercised
  expect_wire(m, "done.json");
}

TEST(Protocol, StatusWire) {
  StatusReply m;
  JobInfo a;
  a.id = 1;
  a.tenant = "acme";
  a.priority = 5;
  a.state = JobState::Running;
  a.label = "dct@VLIW4";
  a.instructions = 250000;
  JobInfo b;
  b.id = 2;
  b.tenant = "batch";
  b.state = JobState::Preempted;
  b.label = "cjpeg@RISC";
  b.instructions = 600000;
  b.preemptions = 1;
  m.jobs = {a, b};
  expect_wire(m, "status.json");
}

TEST(Protocol, OkWire) {
  Ok m;
  m.message = "draining";
  expect_wire(m, "ok.json");
}

TEST(Protocol, RejectsTruncatedMessages) {
  // Every strict prefix of a framed message (sans terminator) must fail to
  // parse — the service never acts on a partially received document.
  std::string line = fixture("submit.json");
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();
  for (size_t len = 1; len < line.size(); ++len)
    EXPECT_THROW(parse_message(line.substr(0, len)), Error) << "len=" << len;
}

TEST(Protocol, RejectsUnknownSchemaVersionAndConfigKeys) {
  EXPECT_THROW(parse_message("{\"schema\": \"ksim.job.nope\","
                             " \"schema_version\": 3}"),
               Error);
  EXPECT_THROW(parse_message("{\"schema\": \"ksim.job.cancel\","
                             " \"schema_version\": 99, \"id\": 1}"),
               Error);
  EXPECT_THROW(
      parse_message("{\"schema\": \"ksim.job.submit\", \"schema_version\": 3,"
                    " \"tenant\": \"t\", \"priority\": 0,"
                    " \"config\": {\"workload\": \"dct\", \"evil\": 1}}"),
      Error);
  EXPECT_THROW(parse_message("not json at all"), Error);
}

// -- scheduler ---------------------------------------------------------------

TEST(Scheduler, RunsManyJobsFromTwoTenants) {
  SchedulerOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 64;
  opts.quota.max_queued = 32;
  opts.slice_instructions = 100000;
  Scheduler sched(opts);

  std::vector<std::unique_ptr<EventLog>> logs;
  for (int i = 0; i < 32; ++i) {
    auto log = std::make_unique<EventLog>();
    SubmitRequest req;
    req.tenant = i % 2 == 0 ? "alpha" : "beta";
    req.config = job_config("dct", 150000);
    const auto outcome = sched.submit(req, log->fn());
    ASSERT_TRUE(std::holds_alternative<Accepted>(outcome)) << "job " << i;
    logs.push_back(std::move(log));
  }
  sched.wait_idle();
  for (size_t i = 0; i < logs.size(); ++i) {
    ASSERT_EQ(logs[i]->count<Done>(), 1u) << "job " << i;
    const Done done = logs[i]->last_done();
    EXPECT_EQ(done.state, JobState::Done) << "job " << i;
    EXPECT_EQ(done.exit_code, 0) << "job " << i;
  }
  // 32 identical dct@RISC jobs shared one cached build.
  const api::ImageCache::Stats stats = sched.image_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 31u);
}

TEST(Scheduler, PreemptedJobResumesBitIdentically) {
  // Reference: the same configuration run uninterrupted in-process.
  const api::RunConfig cfg = [] {
    api::RunConfig c = job_config("cjpeg");
    c.echo_output = false; // scheduler jobs never echo
    return c;
  }();
  std::string reference;
  {
    api::Session s(cfg);
    const sim::StopReason reason = s.run();
    reference = api::render_report_json(s.report(reason));
  }

  SchedulerOptions opts;
  opts.workers = 1; // the high-priority job can only run by evicting
  opts.slice_instructions = 25000;
  Scheduler sched(opts);

  EventLog low_log;
  SubmitRequest low;
  low.tenant = "batch";
  low.priority = 0;
  low.config = job_config("cjpeg");
  ASSERT_TRUE(std::holds_alternative<Accepted>(sched.submit(low, low_log.fn())));
  low_log.wait_for_progress(Progress::Kind::Running);

  EventLog high_log;
  SubmitRequest high;
  high.tenant = "urgent";
  high.priority = 5;
  high.config = job_config("dct", 400000);
  ASSERT_TRUE(
      std::holds_alternative<Accepted>(sched.submit(high, high_log.fn())));

  sched.wait_idle();
  EXPECT_GE(low_log.count_progress(Progress::Kind::Preempted), 1u);
  EXPECT_GE(low_log.count_progress(Progress::Kind::Resumed), 1u);
  EXPECT_EQ(high_log.last_done().state, JobState::Done);

  const Done done = low_log.last_done();
  EXPECT_EQ(done.state, JobState::Done);
  // The preempted-then-resumed job's report is byte-identical to the
  // uninterrupted run: checkpoint eviction is invisible to simulation.
  EXPECT_EQ(done.report, reference);
  sched.shutdown(true);
}

TEST(Scheduler, RejectsWhenQueueFull) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.retry_after_ms = 250;
  Scheduler sched(opts);

  EventLog logs[3];
  SubmitRequest req;
  req.config = job_config("cjpeg");
  ASSERT_TRUE(
      std::holds_alternative<Accepted>(sched.submit(req, logs[0].fn())));
  ASSERT_TRUE(
      std::holds_alternative<Accepted>(sched.submit(req, logs[1].fn())));
  const auto outcome = sched.submit(req, logs[2].fn());
  const auto* rejected = std::get_if<Rejected>(&outcome);
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->code, "queue_full");
  EXPECT_EQ(rejected->retry_after_ms, 250);
  sched.shutdown(true);
}

TEST(Scheduler, EnforcesTenantQuotas) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.quota.max_queued = 1;
  opts.quota.max_instructions = 500000;
  Scheduler sched(opts);

  EventLog logs[4];
  SubmitRequest req;
  req.tenant = "greedy";
  req.config = job_config("cjpeg", 400000);
  ASSERT_TRUE(
      std::holds_alternative<Accepted>(sched.submit(req, logs[0].fn())));

  // Second live job for the same tenant: over max_queued.
  const auto queued = sched.submit(req, logs[1].fn());
  const auto* rejected = std::get_if<Rejected>(&queued);
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->code, "quota_queued");

  // Another tenant is unaffected — but must respect the instruction quota.
  SubmitRequest other = req;
  other.tenant = "modest";
  other.config.max_instructions = 0; // unlimited: over max_instructions
  const auto unlimited = sched.submit(other, logs[2].fn());
  const auto* unlimited_rejected = std::get_if<Rejected>(&unlimited);
  ASSERT_NE(unlimited_rejected, nullptr);
  EXPECT_EQ(unlimited_rejected->code, "quota_instructions");

  other.config.max_instructions = 400000;
  EXPECT_TRUE(
      std::holds_alternative<Accepted>(sched.submit(other, logs[3].fn())));
  sched.wait_idle();
  sched.shutdown(true);
}

TEST(Scheduler, RejectsBadConfigs) {
  Scheduler sched(SchedulerOptions{});
  EventLog log;
  SubmitRequest req;
  req.config = job_config("dct");
  req.config.isa = "MIPS"; // unknown ISA fails RunConfig::validate
  const auto bad_isa = sched.submit(req, log.fn());
  const auto* rejected = std::get_if<Rejected>(&bad_isa);
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->code, "bad_config");

  req.config = job_config("dct");
  req.config.workload.clear();
  req.config.inputs = {"/tmp/some_file.c"}; // file inputs are not jobs
  const auto file_input = sched.submit(req, log.fn());
  ASSERT_TRUE(std::holds_alternative<Rejected>(file_input));
  EXPECT_EQ(std::get<Rejected>(file_input).code, "bad_config");
  sched.shutdown(false);
}

TEST(Scheduler, CancelsQueuedAndRunningJobs) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.slice_instructions = 25000;
  Scheduler sched(opts);

  EventLog running_log;
  SubmitRequest req;
  req.config = job_config("cjpeg");
  const auto running = sched.submit(req, running_log.fn());
  const auto* running_id = std::get_if<Accepted>(&running);
  ASSERT_NE(running_id, nullptr);

  EventLog queued_log;
  const auto queued = sched.submit(req, queued_log.fn());
  const auto* queued_id = std::get_if<Accepted>(&queued);
  ASSERT_NE(queued_id, nullptr);

  running_log.wait_for_progress(Progress::Kind::Running);
  EXPECT_TRUE(sched.cancel(queued_id->id));  // immediate: still queued
  EXPECT_TRUE(sched.cancel(running_id->id)); // at the next slice boundary
  EXPECT_FALSE(sched.cancel(99));            // unknown id

  sched.wait_idle();
  EXPECT_EQ(queued_log.last_done().state, JobState::Cancelled);
  EXPECT_EQ(running_log.last_done().state, JobState::Cancelled);
  EXPECT_FALSE(sched.cancel(queued_id->id)); // already terminal
  sched.shutdown(true);
}

TEST(Scheduler, DrainsOnShutdown) {
  SchedulerOptions opts;
  opts.workers = 2;
  Scheduler sched(opts);

  EventLog logs[4];
  SubmitRequest req;
  req.config = job_config("dct", 200000);
  for (auto& log : logs)
    ASSERT_TRUE(std::holds_alternative<Accepted>(sched.submit(req, log.fn())));
  sched.shutdown(true); // drain: every accepted job still completes
  for (auto& log : logs) EXPECT_EQ(log.last_done().state, JobState::Done);

  EventLog late;
  const auto outcome = sched.submit(req, late.fn());
  ASSERT_TRUE(std::holds_alternative<Rejected>(outcome));
  EXPECT_EQ(std::get<Rejected>(outcome).code, "draining");
}

// -- sweep fan-out (kdse sweep-as-a-service) ---------------------------------

TEST(Scheduler, SweepFanOutMatchesLocalSweep) {
  const std::string manifest = R"({
    "workloads": ["dct"], "isas": ["RISC", "VLIW2"], "models": ["ilp"],
    "memories": [{"l1": {"sets": [8, 16]}}], "jit": false})";

  // Reference: the same manifest run locally, as `ksim sweep --manifest`
  // would (the daemon forces echo_output off exactly like run_sweep's
  // points never echo here).
  api::SweepSpec spec = api::SweepSpec::from_manifest(manifest, "<test>");
  spec.base.echo_output = false;
  const api::SweepResult local = api::run_sweep(spec);
  ASSERT_EQ(local.failed, 0u);
  const std::string reference = api::render_sweep_json(spec, local);

  SchedulerOptions opts;
  opts.workers = 2;
  Scheduler sched(opts);
  EventLog log;
  SweepSubmitRequest req;
  req.tenant = "dse";
  req.manifest = manifest;
  ASSERT_TRUE(
      std::holds_alternative<Accepted>(sched.submit_sweep(req, log.fn())));
  sched.wait_idle();

  EXPECT_EQ(log.count<SweepProgress>(), 4u);
  const SweepDone done = log.last_of<SweepDone>();
  EXPECT_EQ(done.state, JobState::Done);
  EXPECT_EQ(done.points_failed, 0u);
  // The distributed sweep's terminal report is byte-identical to the local
  // sweep of the same manifest: point jobs are the exact Sessions run_sweep
  // would build, and outcomes land at spec-order indices.
  EXPECT_EQ(done.report, reference);
  sched.shutdown(true);
}

TEST(Scheduler, SweepRejectsBadManifestAndLintGate) {
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(opts);

  EventLog log;
  SweepSubmitRequest req;
  req.manifest = R"({"workloads": ["no-such-workload"], "isas": ["RISC"],)"
                 R"( "models": ["ilp"]})";
  auto outcome = sched.submit_sweep(req, log.fn());
  const auto* rejected = std::get_if<Rejected>(&outcome);
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->code, "bad_config");

  // The daemon never runs the serial lint phase.
  req.manifest = R"({"workloads": ["dct"], "isas": ["RISC"],)"
                 R"( "models": ["ilp"], "require_lint_clean": true})";
  outcome = sched.submit_sweep(req, log.fn());
  rejected = std::get_if<Rejected>(&outcome);
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->code, "bad_config");
  sched.shutdown(true);
}

// -- Session snapshot helpers used by the service ----------------------------

TEST(SessionSnapshot, HeaderPeekMatchesFullParse) {
  const std::string dir =
      std::string(::testing::TempDir()) + "ksimd_snap_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  api::RunConfig cfg = job_config("dct");
  cfg.echo_output = false;
  cfg.ckpt_every = 100000;
  cfg.ckpt_dir = dir;
  api::Session s(cfg);
  ASSERT_EQ(s.run(), sim::StopReason::Exited);
  const std::string path = s.snapshot_now(); // explicit final snapshot

  const std::string bytes = read_file(path);
  const std::span<const uint8_t> span(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  const ckpt::Checkpoint ck = ckpt::parse_checkpoint(span);
  EXPECT_EQ(ckpt::checkpoint_instructions(span), ck.instructions);
  EXPECT_GT(ck.instructions, 0u);
  std::filesystem::remove_all(dir);
}

// -- server ------------------------------------------------------------------

class ServerFixture : public ::testing::Test {
protected:
  std::unique_ptr<Server> server_;
  std::thread server_thread_;

  void start(SchedulerOptions sched) {
    server_ = std::make_unique<Server>(sched, ServerOptions{});
    server_thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (!server_) return;
    server_->request_stop(false);
    server_thread_.join();
    server_.reset();
  }
};

TEST_F(ServerFixture, AcceptsManyJobsFromConcurrentTenants) {
  SchedulerOptions sched;
  sched.workers = 4;
  sched.queue_capacity = 64;
  sched.quota.max_queued = 32;
  start(sched);

  auto tenant_client = [&](const std::string& tenant, size_t jobs,
                           size_t& done_count) {
    Client client("127.0.0.1", server_->port());
    SubmitRequest req;
    req.tenant = tenant;
    req.config = job_config("dct", 150000);
    for (size_t i = 0; i < jobs; ++i) client.send_line(encode(req));
    size_t accepted = 0;
    while (done_count < jobs) {
      const auto msg = client.read_message();
      ASSERT_TRUE(msg.has_value()) << tenant << ": daemon hung up";
      if (std::holds_alternative<Accepted>(*msg)) ++accepted;
      ASSERT_FALSE(std::holds_alternative<Rejected>(*msg))
          << tenant << ": " << std::get<Rejected>(*msg).error;
      if (const auto* done = std::get_if<Done>(&*msg)) {
        EXPECT_EQ(done->state, JobState::Done);
        ++done_count;
      }
    }
    EXPECT_EQ(accepted, jobs);
  };

  size_t done_a = 0;
  size_t done_b = 0;
  std::thread a([&] { tenant_client("alpha", 16, done_a); });
  std::thread b([&] { tenant_client("beta", 16, done_b); });
  a.join();
  b.join();
  EXPECT_EQ(done_a, 16u);
  EXPECT_EQ(done_b, 16u);
}

TEST_F(ServerFixture, ListsCancelsAndRejectsOverWire) {
  SchedulerOptions sched;
  sched.workers = 1;
  sched.queue_capacity = 2;
  start(sched);

  Client submitter("127.0.0.1", server_->port());
  SubmitRequest req;
  req.tenant = "acme";
  req.config = job_config("cjpeg");
  submitter.send_line(encode(req));
  submitter.send_line(encode(req));
  uint64_t first_id = 0;
  for (int i = 0; i < 2; ++i) {
    const auto msg = submitter.read_message();
    ASSERT_TRUE(msg.has_value());
    if (const auto* accepted = std::get_if<Accepted>(&*msg); accepted && i == 0)
      first_id = accepted->id;
  }

  // Queue full: the third submission is rejected with the typed error.
  submitter.send_line(encode(req));
  for (;;) {
    const auto msg = submitter.read_message();
    ASSERT_TRUE(msg.has_value());
    if (const auto* rejected = std::get_if<Rejected>(&*msg)) {
      EXPECT_EQ(rejected->code, "queue_full");
      EXPECT_GT(rejected->retry_after_ms, 0);
      break;
    }
  }

  Client controller("127.0.0.1", server_->port());
  ListRequest list;
  controller.send_line(encode(list));
  const auto status = controller.read_message();
  ASSERT_TRUE(status.has_value());
  const auto* reply = std::get_if<StatusReply>(&*status);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->jobs.size(), 2u);

  CancelRequest cancel;
  cancel.id = first_id;
  controller.send_line(encode(cancel));
  const auto ok = controller.read_message();
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(std::holds_alternative<Ok>(*ok));

  cancel.id = 12345;
  controller.send_line(encode(cancel));
  const auto unknown = controller.read_message();
  ASSERT_TRUE(unknown.has_value());
  const auto* unknown_rejected = std::get_if<Rejected>(&*unknown);
  ASSERT_NE(unknown_rejected, nullptr);
  EXPECT_EQ(unknown_rejected->code, "unknown_job");

  // Malformed line: typed error, connection stays usable.
  controller.send_line("{\"schema\": \"ksim.job.nope\", \"schema_version\": 3}\n");
  const auto bad = controller.read_message();
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(std::get<Rejected>(*bad).code, "bad_message");
  controller.send_line(encode(list));
  EXPECT_TRUE(controller.read_message().has_value());
}

TEST_F(ServerFixture, RejectsOversizedPayloadAndDrainsOnShutdownMessage) {
  SchedulerOptions sched;
  sched.workers = 1;
  start(sched);

  {
    Client flooder("127.0.0.1", server_->port());
    flooder.send_line(std::string(kMaxLineBytes + 2, 'x') + "\n");
    const auto msg = flooder.read_message();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get<Rejected>(*msg).code, "oversized");
    EXPECT_FALSE(flooder.read_line().has_value()); // connection dropped
  }

  Client client("127.0.0.1", server_->port());
  SubmitRequest req;
  req.config = job_config("dct", 200000);
  client.send_line(encode(req));
  client.send_line(encode(ShutdownRequest{}));
  bool saw_done = false;
  bool saw_ok = false;
  for (;;) {
    const auto msg = client.read_message();
    if (!msg.has_value()) break; // daemon drained and hung up
    if (std::holds_alternative<Ok>(*msg)) saw_ok = true;
    if (const auto* done = std::get_if<Done>(&*msg)) {
      EXPECT_EQ(done->state, JobState::Done); // drained, not cancelled
      saw_done = true;
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_done);
  server_thread_.join();
  server_.reset();
}

} // namespace
} // namespace ksim::ksimd
