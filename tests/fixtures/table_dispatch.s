# Known-negative fixture (RISC) for jump-table target resolution: a computed
# goto through a word table.  The value-range analysis bounds the table
# address, the words resolve to in-function labels (no unresolved indirect
# sites, no dead dispatch arms), but the table lives in writable .data, so
# the dispatch block is conservatively classified JIT-unsafe — a runtime
# store could retarget it.
.isa RISC
.data
table: .word case0, case1, case2
.text
.global main
.func main
  addi r5, r0, 1
  la r6, table
  slli r7, r5, 2
  add r6, r6, r7
  lw r8, 0(r6)
  jr r8
case0:
  addi r4, r0, 10
  ret
case1:
  addi r4, r0, 20
  ret
case2:
  addi r4, r0, 30
  ret
.endfunc
