# Known-positive fixture (RISC) for the stack-depth checker: main carves a
# 2 MiB frame, twice the simulator's 1 MiB stack budget, so the statically
# bounded worst-case depth from the entry point overflows (error).
.isa RISC
.global main
.func main
  li r5, 0x200000
  sub sp, sp, r5
  sw r0, 0(sp)
  add sp, sp, r5
  addi r4, r0, 0
  ret
.endfunc
