# Known-negative fixture (VLIW4): hazard-free bundles with the §V-B
# parallel-read swap idiom.  Must lint clean at entry ISA VLIW4.
.isa VLIW4
.global main
.func main
  addi r5, r0, 3 || addi r6, r0, 4 || addi r7, r0, 5
  add r8, r5, r6 || add r9, r6, r7
  add r10, r6, r0 || add r6, r5, r0
  add r4, r8, r9
  ret
.endfunc
