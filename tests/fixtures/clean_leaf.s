# Known-negative fixture (RISC): a leaf function with a small stack frame,
# in-bounds loads and stores, and a statically bounded call chain.  Must lint
# completely clean (exit 0) and be fully JIT-safe outside the libc stubs.
.isa RISC
.global main
.func main
  addi sp, sp, -16
  sw ra, 12(sp)
  addi r5, r0, 21
  sw r5, 0(sp)
  call double_it
  lw r6, 0(sp)
  add r4, r4, r6
  lw ra, 12(sp)
  addi sp, sp, 16
  ret
.endfunc

.global double_it
.func double_it
  lw r5, 0(sp)
  add r4, r5, r5
  ret
.endfunc
