# Known-negative fixture (mixed-ISA): a RISC caller reconfiguring to a
# VLIW4 callee and back with explicit SWITCHTARGETs (§V-D).  Exercises the
# cross-call ISA-transition and isa-return checkers on their happy path.
.isa RISC
.global main
.func main
  switchtarget VLIW4
  call wide_sum
  switchtarget RISC
  ret
.endfunc

.isa VLIW4
.global wide_sum
.func wide_sum
  addi r5, r0, 1 || addi r6, r0, 2 || addi r7, r0, 3
  add r4, r5, r6 || add r8, r7, r0
  add r4, r4, r8
  ret
.endfunc
