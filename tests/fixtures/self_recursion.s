# Fixture (RISC) for the recursion-cycle and stack-depth-unknown notes: a
# counting-down self-recursive function.  Notes do not dirty the program, so
# this still exits 0 — the JSON golden pins the notes themselves.
.isa RISC
.global main
.func main
  addi sp, sp, -8
  sw ra, 4(sp)
  addi r5, r0, 5
  call countdown
  lw ra, 4(sp)
  addi sp, sp, 8
  ret
.endfunc

.global countdown
.func countdown
  beq r5, r0, done
  addi sp, sp, -8
  sw ra, 4(sp)
  addi r5, r5, -1
  call countdown
  lw ra, 4(sp)
  addi sp, sp, 8
  ret
done:
  addi r4, r0, 0
  ret
.endfunc
