# Known-positive fixture (RISC) for the out-of-bounds access checker: the
# first store's address is constant and entirely outside the 16 MiB simulated
# RAM (error); the second one's interval straddles the RAM boundary after a
# branch join (warning).
.isa RISC
.data
cell: .word 0
.text
.global main
.func main
  li r5, 0x2000000
  addi r6, r0, 7
  sw r6, 0(r5)
  la r9, cell
  lw r9, 0(r9)
  li r7, 0xFFFFF8
  beq r9, r0, high
  li r7, 0x1000008
high:
  sw r6, 0(r7)
  addi r4, r0, 0
  ret
.endfunc
