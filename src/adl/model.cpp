#include "adl/model.h"

#include "support/error.h"

namespace ksim::adl {

const FieldDef* FormatDef::find_field(std::string_view field_name) const {
  for (const FieldDef& f : fields)
    if (f.name == field_name) return &f;
  return nullptr;
}

const IsaDef* AdlModel::find_isa(std::string_view isa_name) const {
  for (const IsaDef& i : isas)
    if (i.name == isa_name) return &i;
  return nullptr;
}

const IsaDef* AdlModel::find_isa_by_id(int id) const {
  for (const IsaDef& i : isas)
    if (i.id == id) return &i;
  return nullptr;
}

const IsaDef& AdlModel::default_isa() const {
  for (const IsaDef& i : isas)
    if (i.is_default) return i;
  check(!isas.empty(), "ADL model has no ISAs");
  return isas.front();
}

const FormatDef* AdlModel::find_format(std::string_view format_name) const {
  for (const FormatDef& f : formats)
    if (f.name == format_name) return &f;
  return nullptr;
}

const RegisterDef* AdlModel::find_register(std::string_view reg_name) const {
  for (const RegisterDef& r : registers)
    if (r.name == reg_name) return &r;
  return nullptr;
}

const OperationDef* AdlModel::find_operation(std::string_view op_name) const {
  for (const OperationDef& o : operations)
    if (o.name == op_name) return &o;
  return nullptr;
}

int AdlModel::general_register_count() const {
  int n = 0;
  for (const RegisterDef& r : registers)
    if (!r.is_special) ++n;
  return n;
}

} // namespace ksim::adl
