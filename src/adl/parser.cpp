#include "adl/parser.h"

#include <algorithm>
#include <string>

#include "support/strings.h"

namespace ksim::adl {
namespace {

/// Splits "key=value" → (key, value); flags become (word, "").
std::pair<std::string_view, std::string_view> split_attr(std::string_view token) {
  const size_t eq = token.find('=');
  if (eq == std::string_view::npos) return {token, {}};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

class Parser {
public:
  Parser(std::string_view text, std::string_view file, DiagEngine& diags)
      : text_(text), file_(file), diags_(diags) {}

  AdlModel run() {
    int line_no = 0;
    for (std::string_view raw : split(text_, '\n')) {
      ++line_no;
      line_no_ = line_no;
      std::string_view line = raw;
      if (const size_t hash = line.find('#'); hash != std::string_view::npos)
        line = line.substr(0, hash);
      line = trim(line);
      if (line.empty()) continue;
      parse_line(line);
    }
    validate();
    return std::move(model_);
  }

private:
  SrcLoc loc() const { return SrcLoc{std::string(file_), line_no_, 0}; }
  void error(std::string msg) { diags_.error(loc(), std::move(msg)); }

  bool parse_range(std::string_view s, uint8_t& hi, uint8_t& lo) {
    const auto parts = split(s, ':');
    int64_t h = 0;
    int64_t l = 0;
    if (parts.size() != 2 || !parse_int(parts[0], h) || !parse_int(parts[1], l) || h < l ||
        h > 31 || l < 0) {
      error("malformed bit range '" + std::string(s) + "' (expected hi:lo within 31:0)");
      return false;
    }
    hi = static_cast<uint8_t>(h);
    lo = static_cast<uint8_t>(l);
    return true;
  }

  void parse_line(std::string_view line) {
    const auto tokens = split_ws(line);
    const std::string_view kw = tokens[0];
    if (kw == "adl") {
      if (tokens.size() >= 2) model_.name = std::string(tokens[1]);
    } else if (kw == "stopbit") {
      int64_t v = 0;
      if (tokens.size() != 2 || !parse_int(tokens[1], v) || v < 0 || v > 31)
        error("stopbit expects one bit index");
      else
        model_.stop_bit = static_cast<uint8_t>(v);
    } else if (kw == "opcodefield") {
      if (tokens.size() != 2 ||
          !parse_range(tokens[1], model_.opcode_field.hi, model_.opcode_field.lo))
        error("opcodefield expects hi:lo");
      model_.opcode_field.name = "opcode";
    } else if (kw == "isa") {
      parse_isa(tokens);
    } else if (kw == "regfile") {
      parse_regfile(tokens);
    } else if (kw == "reg") {
      parse_reg(tokens);
    } else if (kw == "format") {
      parse_format(tokens);
    } else if (kw == "op") {
      parse_op(tokens);
    } else {
      error("unknown ADL keyword '" + std::string(kw) + "'");
    }
  }

  void parse_isa(const std::vector<std::string_view>& tokens) {
    if (tokens.size() < 2) {
      error("isa expects a name");
      return;
    }
    IsaDef isa;
    isa.name = std::string(tokens[1]);
    for (size_t i = 2; i < tokens.size(); ++i) {
      const auto [key, value] = split_attr(tokens[i]);
      int64_t v = 0;
      if (key == "id" && parse_int(value, v))
        isa.id = static_cast<int>(v);
      else if (key == "issue" && parse_int(value, v) && v >= 1 && v <= 8)
        isa.issue_width = static_cast<int>(v);
      else if (key == "default")
        isa.is_default = true;
      else
        error("bad isa attribute '" + std::string(tokens[i]) + "'");
    }
    model_.isas.push_back(std::move(isa));
  }

  void parse_regfile(const std::vector<std::string_view>& tokens) {
    if (tokens.size() < 3) {
      error("regfile expects: regfile <prefix> count=N [zero=N]");
      return;
    }
    const std::string prefix(tokens[1]);
    int64_t count = 0;
    int64_t zero = -1;
    for (size_t i = 2; i < tokens.size(); ++i) {
      const auto [key, value] = split_attr(tokens[i]);
      int64_t v = 0;
      if (key == "count" && parse_int(value, v))
        count = v;
      else if (key == "zero" && parse_int(value, v))
        zero = v;
      else
        error("bad regfile attribute '" + std::string(tokens[i]) + "'");
    }
    if (count <= 0 || count > 64) {
      error("regfile count must be in 1..64");
      return;
    }
    for (int i = 0; i < count; ++i) {
      RegisterDef r;
      r.name = prefix + std::to_string(i);
      r.index = i;
      r.is_zero = (i == zero);
      model_.registers.push_back(std::move(r));
    }
  }

  void parse_reg(const std::vector<std::string_view>& tokens) {
    if (tokens.size() != 2) {
      error("reg expects a name");
      return;
    }
    RegisterDef r;
    r.name = std::string(tokens[1]);
    r.index = static_cast<int>(model_.registers.size());
    r.is_special = true;
    model_.registers.push_back(std::move(r));
  }

  void parse_format(const std::vector<std::string_view>& tokens) {
    if (tokens.size() < 2) {
      error("format expects a name");
      return;
    }
    FormatDef fmt;
    fmt.name = std::string(tokens[1]);
    for (size_t i = 2; i < tokens.size(); ++i) {
      const auto [key, value] = split_attr(tokens[i]);
      if (key != "fields") {
        error("bad format attribute '" + std::string(tokens[i]) + "'");
        continue;
      }
      for (std::string_view spec : split(value, ',')) {
        // name:hi:lo[:s|:u]
        auto parts = split(spec, ':');
        if (parts.size() < 3 || parts.size() > 4) {
          error("malformed field spec '" + std::string(spec) + "'");
          continue;
        }
        FieldDef f;
        f.name = std::string(parts[0]);
        int64_t hi = 0;
        int64_t lo = 0;
        if (!parse_int(parts[1], hi) || !parse_int(parts[2], lo) || hi < lo || hi > 31 ||
            lo < 0) {
          error("malformed field range in '" + std::string(spec) + "'");
          continue;
        }
        f.hi = static_cast<uint8_t>(hi);
        f.lo = static_cast<uint8_t>(lo);
        if (parts.size() == 4) {
          if (parts[3] == "s")
            f.is_signed = true;
          else if (parts[3] != "u")
            error("field qualifier must be s or u in '" + std::string(spec) + "'");
        }
        fmt.fields.push_back(std::move(f));
      }
    }
    model_.formats.push_back(std::move(fmt));
  }

  void parse_op(const std::vector<std::string_view>& tokens) {
    if (tokens.size() < 2) {
      error("op expects a mnemonic");
      return;
    }
    OperationDef op;
    op.name = std::string(tokens[1]);
    for (size_t i = 2; i < tokens.size(); ++i) {
      const auto [key, value] = split_attr(tokens[i]);
      if (key == "format") {
        op.format = std::string(value);
      } else if (key == "match") {
        for (std::string_view m : split(value, ',')) {
          const auto parts = split(m, ':');
          int64_t v = 0;
          if (parts.size() != 2 || !parse_int(parts[1], v)) {
            error("malformed match '" + std::string(m) + "'");
            continue;
          }
          op.match.push_back({std::string(parts[0]), static_cast<uint32_t>(v)});
        }
      } else if (key == "sem") {
        op.semantic = std::string(value);
      } else if (key == "delay") {
        if (value == "mem") {
          op.delay = kDelayMem;
        } else {
          int64_t v = 0;
          if (!parse_int(value, v) || v < 1 || v > 1000)
            error("delay must be a positive cycle count or 'mem'");
          else
            op.delay = static_cast<int>(v);
        }
      } else if (key == "mem") {
        if (value == "load")
          op.mem = MemKind::Load;
        else if (value == "store")
          op.mem = MemKind::Store;
        else
          error("mem must be load or store");
      } else if (key == "branch") {
        op.is_branch = true;
      } else if (key == "call") {
        op.is_call = true;
      } else if (key == "ret") {
        op.is_ret = true;
      } else if (key == "serial") {
        op.serial_only = true;
      } else if (key == "reads") {
        for (auto f : split(value, ',')) op.reads.emplace_back(f);
      } else if (key == "writes") {
        for (auto f : split(value, ',')) op.writes.emplace_back(f);
      } else if (key == "ireads") {
        for (auto f : split(value, ',')) op.implicit_reads.emplace_back(f);
      } else if (key == "iwrites") {
        for (auto f : split(value, ',')) op.implicit_writes.emplace_back(f);
      } else if (key == "syntax") {
        for (auto f : split(value, ','))
          if (!f.empty()) op.syntax.emplace_back(f);
      } else if (key == "reloc") {
        if (value == "pcrel")
          op.reloc = RelocKind::PcRel;
        else if (value == "abs25")
          op.reloc = RelocKind::Abs25;
        else
          error("reloc must be pcrel or abs25");
      } else if (key == "isas") {
        for (auto f : split(value, ',')) op.isas.emplace_back(f);
      } else {
        error("bad op attribute '" + std::string(tokens[i]) + "'");
      }
    }
    model_.operations.push_back(std::move(op));
  }

  // -- semantic validation -------------------------------------------------

  void validate() {
    validate_isas();
    validate_formats();
    for (const OperationDef& op : model_.operations) validate_op(op);
  }

  void validate_isas() {
    for (size_t i = 0; i < model_.isas.size(); ++i)
      for (size_t j = i + 1; j < model_.isas.size(); ++j) {
        if (model_.isas[i].id == model_.isas[j].id)
          error("duplicate ISA id " + std::to_string(model_.isas[i].id));
        if (model_.isas[i].name == model_.isas[j].name)
          error("duplicate ISA name " + model_.isas[i].name);
      }
    const int defaults = static_cast<int>(
        std::count_if(model_.isas.begin(), model_.isas.end(),
                      [](const IsaDef& i) { return i.is_default; }));
    if (defaults > 1) error("more than one default ISA");
  }

  void validate_formats() {
    for (const FormatDef& fmt : model_.formats) {
      uint32_t used = (1u << model_.stop_bit);
      for (uint8_t b = model_.opcode_field.lo; b <= model_.opcode_field.hi; ++b)
        used |= (1u << b);
      for (const FieldDef& f : fmt.fields) {
        uint32_t mask = 0;
        for (uint8_t b = f.lo; b <= f.hi; ++b) mask |= (1u << b);
        if ((mask & used) != 0 && f.name != "opcode")
          error("format " + fmt.name + ": field " + f.name +
                " overlaps another field, the opcode field, or the stop bit");
        used |= mask;
      }
    }
  }

  void validate_op(const OperationDef& op) {
    const FormatDef* fmt = model_.find_format(op.format);
    if (fmt == nullptr) {
      error("op " + op.name + ": unknown format '" + op.format + "'");
      return;
    }
    auto field_exists = [&](const std::string& name) {
      return name == "opcode" || fmt->find_field(name) != nullptr;
    };
    for (const MatchDef& m : op.match)
      if (!field_exists(m.field))
        error("op " + op.name + ": match field '" + m.field + "' not in format " + op.format);
    bool has_opcode_match = false;
    for (const MatchDef& m : op.match) has_opcode_match |= (m.field == "opcode");
    if (!has_opcode_match) error("op " + op.name + ": missing opcode match");
    for (const auto& f : op.reads)
      if (fmt->find_field(f) == nullptr)
        error("op " + op.name + ": read field '" + f + "' not in format");
    for (const auto& f : op.writes)
      if (fmt->find_field(f) == nullptr)
        error("op " + op.name + ": write field '" + f + "' not in format");
    for (const auto& r : op.implicit_reads)
      if (model_.find_register(r) == nullptr)
        error("op " + op.name + ": unknown implicit register '" + r + "'");
    for (const auto& r : op.implicit_writes)
      if (model_.find_register(r) == nullptr)
        error("op " + op.name + ": unknown implicit register '" + r + "'");
    for (const auto& isa : op.isas)
      if (model_.find_isa(isa) == nullptr)
        error("op " + op.name + ": unknown ISA '" + isa + "'");
    for (const auto& tok : op.syntax) {
      // A token is a field name or "fieldA(fieldB)".
      std::string_view t = tok;
      const size_t paren = t.find('(');
      if (paren != std::string_view::npos) {
        if (t.back() != ')') {
          error("op " + op.name + ": malformed syntax token '" + tok + "'");
          continue;
        }
        const std::string outer(t.substr(0, paren));
        const std::string inner(t.substr(paren + 1, t.size() - paren - 2));
        if (fmt->find_field(outer) == nullptr || fmt->find_field(inner) == nullptr)
          error("op " + op.name + ": syntax token '" + tok + "' names unknown fields");
      } else if (fmt->find_field(std::string(t)) == nullptr) {
        error("op " + op.name + ": syntax token '" + tok + "' not a field of " + op.format);
      }
    }
    if (op.semantic.empty()) error("op " + op.name + ": missing sem= attribute");
    if (op.mem != MemKind::None && op.delay != kDelayMem)
      error("op " + op.name + ": memory operations must use delay=mem");
  }

  std::string_view text_;
  std::string_view file_;
  DiagEngine& diags_;
  AdlModel model_;
  int line_no_ = 0;
};

} // namespace

AdlModel parse_adl(std::string_view text, std::string_view file_name, DiagEngine& diags) {
  return Parser(text, file_name, diags).run();
}

AdlModel parse_adl_or_throw(std::string_view text, std::string_view file_name) {
  DiagEngine diags;
  AdlModel model = parse_adl(text, file_name, diags);
  diags.throw_if_errors();
  return model;
}

} // namespace ksim::adl
