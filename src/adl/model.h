// Architecture Description Language (ADL) object model.
//
// The ADL describes, for a family of ISA configurations sharing one register
// file: the ISAs (name, id, issue width), the registers, the instruction
// formats (named bit fields of a 32-bit operation word), and the operations
// (constant match fields, operand fields, implicit registers, delay class,
// memory behaviour and the name of the simulation function implementing the
// semantics).  TargetGen (src/isa/targetgen.h) turns this description into the
// operation tables the simulator executes from, mirroring the code-generation
// step of the paper's framework.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ksim::adl {

/// One ISA configuration (e.g. RISC or a 4-issue VLIW).
struct IsaDef {
  std::string name;
  int id = 0;          ///< unique identification number (SWITCHTARGET operand)
  int issue_width = 1; ///< max operations per instruction
  bool is_default = false;
};

/// One architectural register.
struct RegisterDef {
  std::string name;
  int index = 0;       ///< dense index into the register file (IP gets its own)
  bool is_zero = false;///< hardwired to zero
  bool is_special = false; ///< not part of the general register file (e.g. IP)
};

/// A bit field of an operation word.
struct FieldDef {
  std::string name;
  uint8_t hi = 0;
  uint8_t lo = 0;
  bool is_signed = false; ///< immediate fields: sign-extend on extraction

  unsigned width() const { return hi - lo + 1u; }
};

/// A named instruction format: a set of non-overlapping fields.
struct FormatDef {
  std::string name;
  std::vector<FieldDef> fields;

  const FieldDef* find_field(std::string_view field_name) const;
};

/// A constant field constraint used for operation detection.
struct MatchDef {
  std::string field; ///< "opcode", "funct", ...
  uint32_t value = 0;
};

enum class MemKind : uint8_t { None, Load, Store };

/// How the assembler resolves a symbolic operand for this operation.
enum class RelocKind : uint8_t {
  None,   ///< immediate is a plain number
  PcRel,  ///< signed word offset relative to the *next* instruction
  Abs25,  ///< absolute word address in a 25-bit field
};

/// One operation (machine instruction of one slot).
struct OperationDef {
  std::string name;     ///< mnemonic
  std::string format;   ///< format name
  std::vector<MatchDef> match; ///< constant fields identifying the operation
  std::string semantic; ///< simulation-function name in the semantics registry
  int delay = 1;        ///< execution latency in cycles; kDelayMem = memory model
  MemKind mem = MemKind::None;
  bool is_branch = false;
  bool is_call = false;
  bool is_ret = false;
  bool serial_only = false; ///< must be the only operation of its instruction
  std::vector<std::string> reads;   ///< operand fields read as registers
  std::vector<std::string> writes;  ///< operand fields written as registers
  std::vector<std::string> implicit_reads;  ///< register names read implicitly
  std::vector<std::string> implicit_writes; ///< register names written implicitly
  std::vector<std::string> syntax;  ///< assembly operand pattern, e.g. {"rd","ra","rb"}
  RelocKind reloc = RelocKind::None;
  std::vector<std::string> isas;    ///< restrict to these ISAs; empty = all
};

/// Delay value meaning "ask the memory model".
inline constexpr int kDelayMem = -1;

/// The complete architecture description.
struct AdlModel {
  std::string name;
  uint8_t stop_bit = 31;       ///< bit marking the last operation of an instruction
  FieldDef opcode_field;       ///< primary constant field shared by all formats
  std::vector<IsaDef> isas;
  std::vector<RegisterDef> registers;
  std::vector<FormatDef> formats;
  std::vector<OperationDef> operations;

  const IsaDef* find_isa(std::string_view isa_name) const;
  const IsaDef* find_isa_by_id(int id) const;
  const IsaDef& default_isa() const;
  const FormatDef* find_format(std::string_view format_name) const;
  const RegisterDef* find_register(std::string_view reg_name) const;
  const OperationDef* find_operation(std::string_view op_name) const;

  /// Number of general (non-special) registers.
  int general_register_count() const;
};

} // namespace ksim::adl
