// Parser for the textual ADL format.
//
// The format is line based.  `#` starts a comment.  Example:
//
//   adl kahrisma
//   stopbit 31
//   opcodefield 30:25
//   isa RISC id=0 issue=1 default
//   regfile r count=32 zero=0
//   reg IP
//   format R fields=rd:24:20,ra:19:15,rb:14:10,funct:9:4
//   op ADD format=R match=opcode:0,funct:0 sem=add delay=1
//      reads=ra,rb writes=rd syntax=rd,ra,rb   (one op per line)
//
// Recognised op attributes: format=, match=, sem=, delay=<n|mem>,
// mem=load|store, reads=, writes=, ireads=, iwrites=, syntax=,
// reloc=pcrel|abs25, isas=, and the flags branch, call, ret, serial.
#pragma once

#include <string_view>

#include "adl/model.h"
#include "support/diag.h"

namespace ksim::adl {

/// Parses an ADL description.  Reports problems to `diags`; returns the
/// (possibly partial) model.  Callers should check diags.has_errors().
AdlModel parse_adl(std::string_view text, std::string_view file_name, DiagEngine& diags);

/// Convenience wrapper that throws ksim::Error on any diagnostic error.
AdlModel parse_adl_or_throw(std::string_view text, std::string_view file_name = "<adl>");

} // namespace ksim::adl
