#include "rtl/trace_recorder.h"

#include <algorithm>

namespace ksim::rtl {
namespace {

OpKind classify(const isa::OpInfo& info) {
  if (info.is_load()) return OpKind::Load;
  if (info.is_store()) return OpKind::Store;
  if (info.is_branch) return OpKind::Branch;
  if (info.name == "MUL" || info.name == "MULH" || info.name == "MULHU") return OpKind::Mul;
  if (info.name == "DIV" || info.name == "DIVU" || info.name == "REM" ||
      info.name == "REMU")
    return OpKind::Div;
  if (info.serial_only) return OpKind::System;
  return OpKind::Alu;
}

} // namespace

void TraceRecorder::on_instruction(const isa::DecodedInstr& di, const isa::ExecCtx& ctx) {
  const uint32_t index = trace_.num_instructions++;
  trace_.max_slots = std::max(trace_.max_slots, static_cast<int>(di.num_ops));
  for (int s = 0; s < di.num_ops; ++s) {
    const isa::DecodedOp& op = di.ops[s];
    const isa::OpInfo& info = *op.info;
    TraceOp t;
    t.instr_index = index;
    t.slot = static_cast<uint8_t>(s);
    t.kind = classify(info);
    t.latency = static_cast<uint8_t>(std::max(info.delay, 1));

    if (info.rd_is_dst && op.rd != 0) t.dst = op.rd;
    auto add_src = [&](uint8_t r) {
      if (r == 0 || t.num_srcs >= 8) return;
      for (int i = 0; i < t.num_srcs; ++i)
        if (t.srcs[i] == r) return;
      t.srcs[t.num_srcs++] = r;
    };
    if (info.ra_is_src) add_src(op.ra);
    if (info.rb_is_src) add_src(op.rb);
    if (info.rd_is_src) add_src(op.rd);
    uint64_t mask = info.implicit_reads & 0xFFFFFFFFull;
    while (mask != 0) {
      add_src(static_cast<uint8_t>(__builtin_ctzll(mask)));
      mask &= mask - 1;
    }
    // Implicit register destinations (e.g. JAL's link register).
    uint64_t wmask = info.implicit_writes & 0xFFFFFFFFull;
    while (wmask != 0 && t.dst == 0xFF) {
      const unsigned r = static_cast<unsigned>(__builtin_ctzll(wmask));
      wmask &= wmask - 1;
      if (r != 0) t.dst = static_cast<uint8_t>(r);
    }

    if (ctx.mem[s].valid) t.mem_addr = ctx.mem[s].addr;
    trace_.ops.push_back(t);
  }
}

void TraceRecorder::reset() { trace_ = Trace{}; }

} // namespace ksim::rtl
