// Dynamic operation trace recording.
//
// The paper validates the DOE cycle approximation against an RTL hardware
// simulation with perfect branch prediction (Table II).  Our stand-in is a
// trace-driven, cycle-accurate microarchitecture model (rtl_sim.h): a
// functional simulation first records the dynamic operation stream (this
// file), then the timing model replays it cycle by cycle.  Perfect branch
// prediction falls out naturally: the trace is the actual execution path.
#pragma once

#include <cstdint>
#include <vector>

#include "cycle/cycle_model.h"

namespace ksim::rtl {

enum class OpKind : uint8_t { Alu, Mul, Div, Load, Store, Branch, System };

/// One dynamic operation.
struct TraceOp {
  uint32_t instr_index = 0; ///< dynamic instruction (group) number
  uint8_t slot = 0;
  uint8_t dst = 0xFF;       ///< destination register, 0xFF = none
  uint8_t srcs[8];          ///< source registers
  uint8_t num_srcs = 0;
  OpKind kind = OpKind::Alu;
  uint8_t latency = 1;      ///< static latency; loads/stores use the hierarchy
  uint32_t mem_addr = 0;    ///< valid for Load/Store
};

struct Trace {
  std::vector<TraceOp> ops;       ///< program order
  uint32_t num_instructions = 0;
  int max_slots = 1;
};

/// CycleModel adapter that records the trace during a functional run
/// (cycles() stays 0 — this model only observes).
class TraceRecorder final : public cycle::CycleModel {
public:
  void on_instruction(const isa::DecodedInstr& di, const isa::ExecCtx& ctx) override;
  uint64_t cycles() const override { return 0; }
  uint64_t operations() const override { return trace_.ops.size(); }
  void reset() override;
  std::string name() const override { return "trace-recorder"; }

  const Trace& trace() const { return trace_; }
  Trace take_trace() { return std::move(trace_); }

private:
  Trace trace_;
};

} // namespace ksim::rtl
