// Cycle-accurate reference model of the KAHRISMA DOE microarchitecture
// (Table II baseline — see DESIGN.md §2 for the RTL substitution rationale).
//
// Models, cycle by cycle, exactly the resource constraints the DOE cycle
// approximation (§VI-C) declares itself heuristic about:
//   1. resource constraints — e.g. a multiplier shared between two slots
//      (EDPE pairs) and a single-ported L1,
//   2. bounded drift between the issue slots (precise interrupts),
//   3. memory operations issuing in hardware (in-order LSU) rather than in
//      behavioural program order,
// plus finite per-slot issue queues fed by a fetch stage with limited
// bandwidth.  The memory hierarchy timing reuses the modules of
// cycle/mem_hierarchy.h with identical latencies so that the comparison
// isolates the pipeline model.
#pragma once

#include <cstdint>

#include "cycle/mem_hierarchy.h"
#include "rtl/trace_recorder.h"

namespace ksim::rtl {

struct RtlConfig {
  int queue_depth = 8;        ///< per-slot issue queue entries
  int fetch_per_cycle = 1;    ///< instructions (groups) fetched per cycle
  int max_drift = 15;         ///< max instruction-index distance between slots
  bool shared_multiplier = true; ///< one multiplier per EDPE pair
  int mem_issue_per_cycle = 1;   ///< L1 is single ported
  cycle::HierarchyConfig memory; ///< same defaults as the approximation
};

struct RtlStats {
  uint64_t cycles = 0;
  uint64_t operations = 0;
  uint64_t fetch_stalls = 0;   ///< cycles the fetch could not push a group
  uint64_t data_stalls = 0;    ///< head-of-queue ops blocked on operands
  uint64_t resource_stalls = 0;///< blocked on mul/div/memory port
  uint64_t drift_stalls = 0;   ///< blocked by the drift bound
  uint64_t order_stalls = 0;   ///< memory ops waiting for in-order issue
};

/// Replays a recorded trace through the microarchitecture; returns timing.
class RtlSimulator {
public:
  explicit RtlSimulator(const RtlConfig& config = {}) : config_(config) {}

  RtlStats run(const Trace& trace);

private:
  RtlConfig config_;
};

} // namespace ksim::rtl
