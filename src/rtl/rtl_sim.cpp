#include "rtl/rtl_sim.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "support/error.h"

namespace ksim::rtl {

RtlStats RtlSimulator::run(const Trace& trace) {
  RtlStats stats;
  stats.operations = trace.ops.size();
  if (trace.ops.empty()) return stats;

  const int nslots = trace.max_slots;

  // Per-instruction op ranges (ops are recorded in program order).
  struct InstrRange {
    uint32_t first = 0;
    uint8_t count = 0;
  };
  std::vector<InstrRange> instrs(trace.num_instructions);
  // Memory issue order (the hardware LSU issues strictly in program order).
  std::vector<uint32_t> mem_seq(trace.ops.size(), 0xFFFFFFFFu);
  uint32_t mem_count = 0;
  for (uint32_t i = 0; i < trace.ops.size(); ++i) {
    const TraceOp& op = trace.ops[i];
    InstrRange& r = instrs[op.instr_index];
    if (r.count == 0) r.first = i;
    ++r.count;
    if (op.kind == OpKind::Load || op.kind == OpKind::Store) mem_seq[i] = mem_count++;
  }

  cycle::MemoryHierarchy memory(config_.memory);

  std::vector<std::deque<uint32_t>> queues(static_cast<size_t>(nslots));
  std::vector<uint64_t> reg_ready(32, 0);
  std::vector<uint64_t> div_busy_until(static_cast<size_t>(nslots), 0);
  std::vector<uint64_t> mul_last_issue(static_cast<size_t>((nslots + 1) / 2),
                                       ~uint64_t{0});
  uint32_t fetch_index = 0;
  uint32_t next_mem = 0;
  uint64_t cycle = 0;
  uint64_t max_completion = 0;
  size_t outstanding = 0;

  auto all_drained = [&] { return fetch_index >= instrs.size() && outstanding == 0; };

  while (!all_drained()) {
    // -- fetch stage ----------------------------------------------------------
    for (int f = 0; f < config_.fetch_per_cycle && fetch_index < instrs.size(); ++f) {
      const InstrRange& r = instrs[fetch_index];
      bool fits = true;
      for (uint8_t k = 0; k < r.count; ++k) {
        const TraceOp& op = trace.ops[r.first + k];
        if (queues[op.slot].size() >= static_cast<size_t>(config_.queue_depth))
          fits = false;
      }
      if (!fits) {
        ++stats.fetch_stalls;
        break;
      }
      for (uint8_t k = 0; k < r.count; ++k) {
        queues[trace.ops[r.first + k].slot].push_back(r.first + k);
        ++outstanding;
      }
      ++fetch_index;
    }

    // -- issue stage ------------------------------------------------------------
    // Oldest unissued instruction across all slots (for the drift bound).
    uint32_t oldest = 0xFFFFFFFFu;
    for (const auto& q : queues)
      if (!q.empty()) oldest = std::min(oldest, trace.ops[q.front()].instr_index);

    int mem_issued = 0;
    for (int s = 0; s < nslots; ++s) {
      auto& q = queues[static_cast<size_t>(s)];
      if (q.empty()) continue;
      const TraceOp& op = trace.ops[q.front()];

      // Bounded slot drift (enables precise interrupts in hardware).
      if (op.instr_index - oldest > static_cast<uint32_t>(config_.max_drift)) {
        ++stats.drift_stalls;
        continue;
      }
      // True data dependencies via the register scoreboard.
      bool ready = true;
      for (int i = 0; i < op.num_srcs; ++i)
        if (reg_ready[op.srcs[i]] > cycle) ready = false;
      if (!ready) {
        ++stats.data_stalls;
        continue;
      }
      // Structural hazards.
      uint64_t completion;
      switch (op.kind) {
        case OpKind::Mul: {
          const size_t pair = static_cast<size_t>(s) / 2;
          if (config_.shared_multiplier && mul_last_issue[pair] == cycle) {
            ++stats.resource_stalls;
            continue;
          }
          mul_last_issue[pair] = cycle;
          completion = cycle + op.latency;
          break;
        }
        case OpKind::Div: {
          if (div_busy_until[static_cast<size_t>(s)] > cycle) {
            ++stats.resource_stalls;
            continue;
          }
          completion = cycle + op.latency;
          div_busy_until[static_cast<size_t>(s)] = completion;
          break;
        }
        case OpKind::Load:
        case OpKind::Store: {
          if (mem_seq[q.front()] != next_mem) {
            ++stats.order_stalls;
            continue;
          }
          if (mem_issued >= config_.mem_issue_per_cycle) {
            ++stats.resource_stalls;
            continue;
          }
          completion = memory.entry().access(
              op.mem_addr,
              op.kind == OpKind::Store ? cycle::AccessType::Write
                                       : cycle::AccessType::Read,
              s, cycle);
          ++mem_issued;
          ++next_mem;
          break;
        }
        default:
          completion = cycle + op.latency;
          break;
      }

      if (op.dst != 0xFF)
        reg_ready[op.dst] = std::max(reg_ready[op.dst], completion);
      max_completion = std::max(max_completion, completion);
      q.pop_front();
      --outstanding;
    }

    ++cycle;
    check(cycle < (uint64_t{1} << 40), "RtlSimulator: runaway simulation");
  }

  stats.cycles = std::max(max_completion, cycle);
  return stats;
}

} // namespace ksim::rtl
