// Minimal ELF32 object model, writer and reader (TIS ELF 1.2).
//
// The paper stores object files and application binaries in standard ELF
// (§IV).  We implement the subset the toolchain needs: little-endian ELF32
// relocatable and executable files with section headers, one string table,
// a symbol table, custom relocation sections (machine-specific relocations
// for K-ISA) and custom debug sections (.kdbg.asm / .kdbg.src, the paper's
// "custom data section" carrying assembler/source line mappings, §V-C).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ksim::elf {

// -- ELF constants (subset) ---------------------------------------------------
inline constexpr uint16_t ET_REL = 1;
inline constexpr uint16_t ET_EXEC = 2;
/// Unofficial machine number for the reconstructed KAHRISMA ISA family.
inline constexpr uint16_t EM_KISA = 0x4B41; // "KA"

inline constexpr uint32_t SHT_NULL = 0;
inline constexpr uint32_t SHT_PROGBITS = 1;
inline constexpr uint32_t SHT_SYMTAB = 2;
inline constexpr uint32_t SHT_STRTAB = 3;
inline constexpr uint32_t SHT_NOBITS = 8;
/// Custom relocation section type (RELA-style, see Reloc).
inline constexpr uint32_t SHT_KISA_RELA = 0x70000001;

inline constexpr uint32_t SHF_WRITE = 0x1;
inline constexpr uint32_t SHF_ALLOC = 0x2;
inline constexpr uint32_t SHF_EXECINSTR = 0x4;

inline constexpr uint8_t STB_LOCAL = 0;
inline constexpr uint8_t STB_GLOBAL = 1;
inline constexpr uint8_t STT_NOTYPE = 0;
inline constexpr uint8_t STT_OBJECT = 1;
inline constexpr uint8_t STT_FUNC = 2;

inline constexpr uint16_t SHN_UNDEF = 0;
inline constexpr uint16_t SHN_ABS = 0xFFF1;

constexpr uint8_t st_info(uint8_t bind, uint8_t type) {
  return static_cast<uint8_t>((bind << 4) | (type & 0xF));
}
constexpr uint8_t st_bind(uint8_t info) { return info >> 4; }
constexpr uint8_t st_type(uint8_t info) { return info & 0xF; }

// -- K-ISA relocation types ---------------------------------------------------
enum KisaReloc : uint32_t {
  R_KISA_ABS32 = 1,  ///< 32-bit absolute address in data
  R_KISA_HI16 = 2,   ///< bits 31:16 of address into a U-format imm field
  R_KISA_LO16 = 3,   ///< bits 15:0 of address into a U-format imm field
  R_KISA_PCREL15 = 4,///< signed word offset into a B/I-format imm field
  R_KISA_ABS25 = 5,  ///< word address into a J-format imm field
};

// -- object model --------------------------------------------------------------
struct Section {
  std::string name;
  uint32_t type = SHT_PROGBITS;
  uint32_t flags = 0;
  uint32_t addr = 0;
  uint32_t size = 0; ///< meaningful for SHT_NOBITS; otherwise data.size()
  uint32_t link = 0;
  uint32_t info = 0;
  uint32_t addralign = 4;
  uint32_t entsize = 0;
  std::vector<uint8_t> data;

  uint32_t effective_size() const {
    return type == SHT_NOBITS ? size : static_cast<uint32_t>(data.size());
  }
};

struct Symbol {
  std::string name;
  uint32_t value = 0;
  uint32_t size = 0;
  uint8_t info = 0;
  uint16_t shndx = SHN_UNDEF; ///< 1-based section index as serialized
};

/// RELA-style relocation: patch `section[offset]` with the address of
/// `symbol` + `addend`, encoded according to `type`.
struct Reloc {
  uint32_t offset = 0;
  uint32_t type = 0;
  uint32_t symbol = 0; ///< index into the symbol vector
  int32_t addend = 0;
};

/// An ELF file in memory.  Section indices used in Symbol::shndx and in
/// relocation `info` refer to positions in `sections` + 1 (index 0 is the
/// mandatory NULL section, which is implicit here).
class ElfFile {
public:
  uint16_t type = ET_REL;
  uint32_t entry = 0;
  uint32_t flags = 0; ///< we store the entry ISA id here
  std::vector<Section> sections;
  std::vector<Symbol> symbols;
  /// Relocations per target section (key: 1-based section index).
  std::vector<std::pair<uint16_t, std::vector<Reloc>>> relocations;

  Section* find_section(std::string_view name);
  const Section* find_section(std::string_view name) const;
  const Symbol* find_symbol(std::string_view name) const;

  /// 1-based index of a section, 0 if absent.
  uint16_t section_index(std::string_view name) const;

  /// Serializes to ELF32 bytes (adds NULL section, .shstrtab, .strtab and
  /// .symtab automatically; relocation lists become SHT_KISA_RELA sections).
  std::vector<uint8_t> serialize() const;

  /// Parses ELF32 bytes produced by serialize() (or compatible).
  /// Throws ksim::Error on malformed input.
  static ElfFile parse(std::span<const uint8_t> bytes);
};

// -- debug line maps (.kdbg.asm / .kdbg.src) ----------------------------------
struct LineEntry {
  uint32_t addr = 0;
  uint32_t file = 0; ///< index into LineMap::files
  uint32_t line = 0;
};

/// Address→line mapping, serialized into a custom section.
struct LineMap {
  std::vector<std::string> files;
  std::vector<LineEntry> entries; ///< sorted by addr

  std::vector<uint8_t> serialize() const;
  static LineMap parse(std::span<const uint8_t> bytes);

  /// Index of a file name, adding it if needed.
  uint32_t intern_file(std::string_view name);

  /// Finds the entry covering `addr` (greatest entry.addr <= addr); nullptr
  /// if none.
  const LineEntry* lookup(uint32_t addr) const;
};

} // namespace ksim::elf
