// Loads a K-ISA ELF executable into simulated memory (paper §V: "The ELF
// file is loaded into the simulated memory of the processor. The start
// address is extracted and used to initialize the IP.") and extracts the
// debug metadata the simulator uses for address→line mapping and profiling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "elf/elf.h"
#include "isa/arch_state.h"

namespace ksim::elf {

/// A function known from the executable's symbol table (start/end addresses
/// are stored in the ELF per paper §V-C).
struct FuncInfo {
  std::string name;
  uint32_t addr = 0;
  uint32_t size = 0;

  bool contains(uint32_t a) const { return a >= addr && a < addr + size; }
};

/// Everything the simulator needs to know about a loaded executable.
struct LoadedImage {
  uint32_t entry = 0;
  int entry_isa = 0;      ///< from e_flags; initial active ISA
  uint32_t image_end = 0; ///< first address past loaded data (heap start)
  std::vector<FuncInfo> functions; ///< sorted by address
  LineMap asm_lines;  ///< instruction address → assembly file/line
  LineMap src_lines;  ///< instruction address → C source file/line

  /// Function covering `addr`, or nullptr.
  const FuncInfo* find_function(uint32_t addr) const;
  const FuncInfo* find_function(std::string_view name) const;

  /// Human-readable "function (file:line)" description of an address.
  std::string describe(uint32_t addr) const;
};

/// Copies all allocatable sections into `state`'s RAM, zeroes NOBITS
/// sections, and returns the image metadata.  Throws ksim::Error for
/// non-executable or out-of-range images.
LoadedImage load_executable(const ElfFile& file, isa::ArchState& state);

} // namespace ksim::elf
