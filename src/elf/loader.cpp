#include "elf/loader.h"

#include <algorithm>

#include "support/error.h"
#include "support/strings.h"

namespace ksim::elf {

const FuncInfo* LoadedImage::find_function(uint32_t addr) const {
  const auto it = std::upper_bound(
      functions.begin(), functions.end(), addr,
      [](uint32_t a, const FuncInfo& f) { return a < f.addr; });
  if (it == functions.begin()) return nullptr;
  const FuncInfo& f = *(it - 1);
  return f.contains(addr) ? &f : nullptr;
}

const FuncInfo* LoadedImage::find_function(std::string_view name) const {
  for (const FuncInfo& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

std::string LoadedImage::describe(uint32_t addr) const {
  std::string out = hex32(addr);
  if (const FuncInfo* f = find_function(addr)) out += " in " + f->name;
  if (const LineEntry* e = src_lines.lookup(addr))
    out += " (" + src_lines.files[e->file] + ":" + std::to_string(e->line) + ")";
  else if (const LineEntry* a = asm_lines.lookup(addr))
    out += " (" + asm_lines.files[a->file] + ":" + std::to_string(a->line) + ")";
  return out;
}

LoadedImage load_executable(const ElfFile& file, isa::ArchState& state) {
  check(file.type == ET_EXEC, "loader: not an executable ELF file");

  LoadedImage image;
  image.entry = file.entry;
  image.entry_isa = static_cast<int>(file.flags);

  for (const Section& s : file.sections) {
    if ((s.flags & SHF_ALLOC) == 0) continue;
    if (s.type == SHT_PROGBITS && !s.data.empty()) {
      state.write_block(s.addr, s.data.data(), s.data.size());
    } else if (s.type == SHT_NOBITS && s.size > 0) {
      check(state.in_ram(s.addr, s.size), "loader: bss outside RAM");
      std::fill_n(state.ram_data() + s.addr, s.size, uint8_t{0});
    }
    image.image_end = std::max(image.image_end, s.addr + s.effective_size());
  }

  for (const Symbol& sym : file.symbols) {
    if (st_type(sym.info) != STT_FUNC) continue;
    image.functions.push_back({sym.name, sym.value, sym.size});
  }
  std::sort(image.functions.begin(), image.functions.end(),
            [](const FuncInfo& a, const FuncInfo& b) { return a.addr < b.addr; });

  if (const Section* s = file.find_section(".kdbg.asm"))
    image.asm_lines = LineMap::parse(s->data);
  if (const Section* s = file.find_section(".kdbg.src"))
    image.src_lines = LineMap::parse(s->data);

  return image;
}

} // namespace ksim::elf
