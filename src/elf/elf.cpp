#include "elf/elf.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "support/error.h"
#include "support/strings.h"

namespace ksim::elf {
namespace {

// Serialized structure sizes (ELF32).
constexpr uint32_t kEhdrSize = 52;
constexpr uint32_t kPhdrSize = 32;
constexpr uint32_t kShdrSize = 40;
constexpr uint32_t kSymSize = 16;
constexpr uint32_t kRelaSize = 16;

constexpr uint32_t PT_LOAD = 1;

class ByteWriter {
public:
  explicit ByteWriter(std::vector<uint8_t>& out) : out_(out) {}

  void u8(uint8_t v) { out_.push_back(v); }
  void u16(uint16_t v) {
    out_.push_back(static_cast<uint8_t>(v));
    out_.push_back(static_cast<uint8_t>(v >> 8));
  }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void bytes(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  void pad_to(size_t offset) {
    check(out_.size() <= offset, "ELF writer: backward padding");
    out_.resize(offset, 0);
  }
  size_t pos() const { return out_.size(); }

  /// Patches a previously written u32 at `offset`.
  void patch_u32(size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) out_[offset + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }

private:
  std::vector<uint8_t>& out_;
};

class ByteReader {
public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  uint8_t u8(size_t off) const {
    bound(off, 1);
    return bytes_[off];
  }
  uint16_t u16(size_t off) const {
    bound(off, 2);
    return static_cast<uint16_t>(bytes_[off] | (bytes_[off + 1] << 8));
  }
  uint32_t u32(size_t off) const {
    bound(off, 4);
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | bytes_[off + static_cast<size_t>(i)];
    return v;
  }
  std::span<const uint8_t> slice(size_t off, size_t n) const {
    bound(off, n);
    return bytes_.subspan(off, n);
  }
  size_t size() const { return bytes_.size(); }

private:
  void bound(size_t off, size_t n) const {
    check(off + n <= bytes_.size(), "ELF reader: truncated file");
  }
  std::span<const uint8_t> bytes_;
};

/// Simple string table builder.
class StrTab {
public:
  StrTab() { data_.push_back('\0'); }
  uint32_t add(std::string_view s) {
    if (s.empty()) return 0;
    const auto it = index_.find(std::string(s));
    if (it != index_.end()) return it->second;
    const uint32_t off = static_cast<uint32_t>(data_.size());
    data_.insert(data_.end(), s.begin(), s.end());
    data_.push_back('\0');
    index_.emplace(std::string(s), off);
    return off;
  }
  const std::vector<char>& data() const { return data_; }

private:
  std::vector<char> data_;
  std::map<std::string, uint32_t> index_;
};

std::string read_str(std::span<const uint8_t> strtab, uint32_t off) {
  check(off < strtab.size(), "ELF reader: string offset out of range");
  const char* begin = reinterpret_cast<const char*>(strtab.data()) + off;
  const size_t max = strtab.size() - off;
  const size_t len = ::strnlen(begin, max);
  check(len < max, "ELF reader: unterminated string");
  return std::string(begin, len);
}

} // namespace

Section* ElfFile::find_section(std::string_view name) {
  for (Section& s : sections)
    if (s.name == name) return &s;
  return nullptr;
}

const Section* ElfFile::find_section(std::string_view name) const {
  for (const Section& s : sections)
    if (s.name == name) return &s;
  return nullptr;
}

const Symbol* ElfFile::find_symbol(std::string_view name) const {
  for (const Symbol& s : symbols)
    if (s.name == name) return &s;
  return nullptr;
}

uint16_t ElfFile::section_index(std::string_view name) const {
  for (size_t i = 0; i < sections.size(); ++i)
    if (sections[i].name == name) return static_cast<uint16_t>(i + 1);
  return 0;
}

std::vector<uint8_t> ElfFile::serialize() const {
  // ELF requires local symbols to precede globals in the symbol table.
  std::vector<uint32_t> order; // positions into `symbols`, locals first
  for (uint32_t i = 0; i < symbols.size(); ++i)
    if (st_bind(symbols[i].info) == STB_LOCAL) order.push_back(i);
  const uint32_t first_global = static_cast<uint32_t>(order.size()) + 1; // +1: null sym
  for (uint32_t i = 0; i < symbols.size(); ++i)
    if (st_bind(symbols[i].info) != STB_LOCAL) order.push_back(i);
  std::vector<uint32_t> new_index(symbols.size());
  for (uint32_t n = 0; n < order.size(); ++n) new_index[order[n]] = n + 1;

  StrTab strtab;
  for (const Symbol& s : symbols) strtab.add(s.name);

  // Assemble the final section list: user sections, rela sections, symtab,
  // strtab, shstrtab.
  struct OutSec {
    Section meta;
    std::vector<uint8_t> owned;                 ///< for synthesized sections
    const std::vector<uint8_t>* external = nullptr; ///< for user sections

    /// Stable accessor: user sections reference the caller's data (which
    /// outlives serialization); synthesized sections own theirs (moved along
    /// with the OutSec when the vector grows).
    const std::vector<uint8_t>& payload() const { return external ? *external : owned; }
  };
  std::vector<OutSec> out;
  for (const Section& s : sections) {
    OutSec o;
    o.meta = s;
    o.meta.data.clear();
    o.external = &s.data;
    out.push_back(std::move(o));
  }

  const uint16_t symtab_index = static_cast<uint16_t>(sections.size() + relocations.size() + 1);
  const uint16_t strtab_index = static_cast<uint16_t>(symtab_index + 1);

  for (const auto& [target, relocs] : relocations) {
    check(target >= 1 && target <= sections.size(),
          "ELF writer: relocation targets invalid section");
    OutSec o;
    o.meta.name = ".krela" + sections[target - 1].name;
    o.meta.type = SHT_KISA_RELA;
    o.meta.link = symtab_index;
    o.meta.info = target;
    o.meta.entsize = kRelaSize;
    std::vector<uint8_t> buf;
    ByteWriter w(buf);
    for (const Reloc& r : relocs) {
      w.u32(r.offset);
      w.u32(r.type);
      check(r.symbol < symbols.size(), "ELF writer: relocation names invalid symbol");
      w.u32(new_index[r.symbol]);
      w.u32(static_cast<uint32_t>(r.addend));
    }
    o.owned = std::move(buf);
    out.push_back(std::move(o));
  }

  { // .symtab
    OutSec o;
    o.meta.name = ".symtab";
    o.meta.type = SHT_SYMTAB;
    o.meta.link = strtab_index;
    o.meta.info = first_global;
    o.meta.entsize = kSymSize;
    std::vector<uint8_t> buf;
    ByteWriter w(buf);
    w.u32(0); w.u32(0); w.u32(0); w.u8(0); w.u8(0); w.u16(0); // null symbol
    for (uint32_t idx : order) {
      const Symbol& s = symbols[idx];
      w.u32(strtab.add(s.name));
      w.u32(s.value);
      w.u32(s.size);
      w.u8(s.info);
      w.u8(0);
      w.u16(s.shndx);
    }
    o.owned = std::move(buf);
    out.push_back(std::move(o));
  }

  { // .strtab
    OutSec o;
    o.meta.name = ".strtab";
    o.meta.type = SHT_STRTAB;
    o.meta.addralign = 1;
    o.owned.assign(strtab.data().begin(), strtab.data().end());
    out.push_back(std::move(o));
  }

  StrTab shstrtab;
  for (const OutSec& o : out) shstrtab.add(o.meta.name);
  shstrtab.add(".shstrtab");
  { // .shstrtab
    OutSec o;
    o.meta.name = ".shstrtab";
    o.meta.type = SHT_STRTAB;
    o.meta.addralign = 1;
    o.owned.assign(shstrtab.data().begin(), shstrtab.data().end());
    out.push_back(std::move(o));
  }

  // Program headers: one PT_LOAD per allocatable PROGBITS section (exec only).
  std::vector<uint32_t> load_sections;
  if (type == ET_EXEC)
    for (uint32_t i = 0; i < sections.size(); ++i)
      if ((sections[i].flags & SHF_ALLOC) != 0 && sections[i].type == SHT_PROGBITS)
        load_sections.push_back(i);

  // Layout: ehdr | phdrs | section data ... | shdrs.
  std::vector<uint8_t> bytes;
  ByteWriter w(bytes);
  const uint32_t phoff = load_sections.empty() ? 0 : kEhdrSize;
  uint32_t off = kEhdrSize + static_cast<uint32_t>(load_sections.size()) * kPhdrSize;

  std::vector<uint32_t> sec_offsets(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    const uint32_t align = std::max<uint32_t>(1, out[i].meta.addralign);
    off = (off + align - 1) & ~(align - 1);
    sec_offsets[i] = off;
    if (out[i].meta.type != SHT_NOBITS)
      off += static_cast<uint32_t>(out[i].payload().size());
  }
  const uint32_t shoff = (off + 3u) & ~3u;

  // ELF header.
  const uint8_t ident[16] = {0x7F, 'E', 'L', 'F', 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  w.bytes(ident, 16);
  w.u16(type);
  w.u16(EM_KISA);
  w.u32(1); // EV_CURRENT
  w.u32(entry);
  w.u32(phoff);
  w.u32(shoff);
  w.u32(flags);
  w.u16(kEhdrSize);
  w.u16(kPhdrSize);
  w.u16(static_cast<uint16_t>(load_sections.size()));
  w.u16(kShdrSize);
  w.u16(static_cast<uint16_t>(out.size() + 1));
  w.u16(static_cast<uint16_t>(out.size())); // .shstrtab is last

  // Program headers.
  for (uint32_t si : load_sections) {
    const Section& s = sections[si];
    w.u32(PT_LOAD);
    w.u32(sec_offsets[si]);
    w.u32(s.addr);
    w.u32(s.addr);
    w.u32(static_cast<uint32_t>(s.data.size()));
    w.u32(s.effective_size());
    w.u32((s.flags & SHF_EXECINSTR) != 0 ? 0x5u : 0x6u); // R+X / R+W
    w.u32(4);
  }

  // Section payloads.
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].meta.type == SHT_NOBITS) continue;
    w.pad_to(sec_offsets[i]);
    w.bytes(out[i].payload().data(), out[i].payload().size());
  }

  // Section headers.
  w.pad_to(shoff);
  // Null section header.
  for (int i = 0; i < 10; ++i) w.u32(0);
  for (size_t i = 0; i < out.size(); ++i) {
    const Section& m = out[i].meta;
    w.u32(shstrtab.add(m.name)); // deduplicated: same offset as before
    w.u32(m.type);
    w.u32(m.flags);
    w.u32(m.addr);
    w.u32(sec_offsets[i]);
    w.u32(m.type == SHT_NOBITS ? m.size : static_cast<uint32_t>(out[i].payload().size()));
    w.u32(m.link);
    w.u32(m.info);
    w.u32(m.addralign);
    w.u32(m.entsize);
  }
  return bytes;
}

ElfFile ElfFile::parse(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  check(r.size() >= kEhdrSize, "ELF reader: file too small");
  check(r.u8(0) == 0x7F && r.u8(1) == 'E' && r.u8(2) == 'L' && r.u8(3) == 'F',
        "ELF reader: bad magic");
  check(r.u8(4) == 1 && r.u8(5) == 1, "ELF reader: not little-endian ELF32");

  ElfFile f;
  f.type = r.u16(16);
  const uint16_t machine = r.u16(18);
  check(machine == EM_KISA, "ELF reader: not a K-ISA file (machine " +
                                std::to_string(machine) + ")");
  f.entry = r.u32(24);
  const uint32_t shoff = r.u32(32);
  f.flags = r.u32(36);
  const uint16_t shentsize = r.u16(46);
  const uint16_t shnum = r.u16(48);
  const uint16_t shstrndx = r.u16(50);
  check(shentsize == kShdrSize, "ELF reader: unexpected shentsize");
  check(shnum >= 1 && shstrndx < shnum, "ELF reader: bad section header table");

  struct RawShdr {
    uint32_t name, type, flags, addr, offset, size, link, info, addralign, entsize;
  };
  std::vector<RawShdr> shdrs(shnum);
  for (uint16_t i = 0; i < shnum; ++i) {
    const size_t base = shoff + static_cast<size_t>(i) * kShdrSize;
    shdrs[i] = {r.u32(base),      r.u32(base + 4),  r.u32(base + 8),  r.u32(base + 12),
                r.u32(base + 16), r.u32(base + 20), r.u32(base + 24), r.u32(base + 28),
                r.u32(base + 32), r.u32(base + 36)};
  }
  const RawShdr& shstr = shdrs[shstrndx];
  const auto shstr_data = r.slice(shstr.offset, shstr.size);

  // First pass: map serialized indices to user-section indices, load payloads.
  std::vector<int> user_index(shnum, -1); // serialized idx -> f.sections idx
  std::vector<uint16_t> symtab_order;     // not needed beyond the null drop
  int symtab_at = -1;
  for (uint16_t i = 1; i < shnum; ++i) {
    const RawShdr& sh = shdrs[i];
    const std::string name = read_str(shstr_data, sh.name);
    if (sh.type == SHT_SYMTAB) {
      symtab_at = i;
      continue;
    }
    if (sh.type == SHT_STRTAB || sh.type == SHT_KISA_RELA) continue;
    Section s;
    s.name = name;
    s.type = sh.type;
    s.flags = sh.flags;
    s.addr = sh.addr;
    s.link = 0;
    s.info = 0;
    s.addralign = sh.addralign;
    s.entsize = sh.entsize;
    if (sh.type == SHT_NOBITS) {
      s.size = sh.size;
    } else {
      const auto payload = r.slice(sh.offset, sh.size);
      s.data.assign(payload.begin(), payload.end());
    }
    user_index[i] = static_cast<int>(f.sections.size());
    f.sections.push_back(std::move(s));
  }

  // Symbols.
  if (symtab_at >= 0) {
    const RawShdr& sh = shdrs[symtab_at];
    check(sh.entsize == kSymSize, "ELF reader: bad symtab entsize");
    check(sh.link < shnum, "ELF reader: bad symtab link");
    const RawShdr& str = shdrs[sh.link];
    const auto str_data = r.slice(str.offset, str.size);
    const uint32_t count = sh.size / kSymSize;
    for (uint32_t i = 1; i < count; ++i) { // skip null symbol
      const size_t base = sh.offset + static_cast<size_t>(i) * kSymSize;
      Symbol s;
      s.name = read_str(str_data, r.u32(base));
      s.value = r.u32(base + 4);
      s.size = r.u32(base + 8);
      s.info = r.u8(base + 12);
      uint16_t shndx = r.u16(base + 14);
      if (shndx != SHN_UNDEF && shndx < shnum && shndx != SHN_ABS) {
        check(user_index[shndx] >= 0, "ELF reader: symbol in synthesized section");
        shndx = static_cast<uint16_t>(user_index[shndx] + 1);
      }
      s.shndx = shndx;
      f.symbols.push_back(std::move(s));
    }
  }

  // Relocations.
  for (uint16_t i = 1; i < shnum; ++i) {
    const RawShdr& sh = shdrs[i];
    if (sh.type != SHT_KISA_RELA) continue;
    check(sh.entsize == kRelaSize && sh.info < shnum && user_index[sh.info] >= 0,
          "ELF reader: bad relocation section");
    std::vector<Reloc> relocs;
    const uint32_t count = sh.size / kRelaSize;
    for (uint32_t n = 0; n < count; ++n) {
      const size_t base = sh.offset + static_cast<size_t>(n) * kRelaSize;
      Reloc rel;
      rel.offset = r.u32(base);
      rel.type = r.u32(base + 4);
      const uint32_t symidx = r.u32(base + 8);
      check(symidx >= 1 && symidx <= f.symbols.size(), "ELF reader: bad reloc symbol");
      rel.symbol = symidx - 1;
      rel.addend = static_cast<int32_t>(r.u32(base + 12));
      relocs.push_back(rel);
    }
    f.relocations.emplace_back(static_cast<uint16_t>(user_index[sh.info] + 1),
                               std::move(relocs));
  }
  return f;
}

// -- LineMap ------------------------------------------------------------------

std::vector<uint8_t> LineMap::serialize() const {
  std::vector<uint8_t> buf;
  ByteWriter w(buf);
  w.u32(static_cast<uint32_t>(files.size()));
  for (const std::string& fname : files) {
    w.u32(static_cast<uint32_t>(fname.size()));
    w.bytes(fname.data(), fname.size());
  }
  w.u32(static_cast<uint32_t>(entries.size()));
  for (const LineEntry& e : entries) {
    w.u32(e.addr);
    w.u32(e.file);
    w.u32(e.line);
  }
  return buf;
}

LineMap LineMap::parse(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  LineMap map;
  size_t off = 0;
  const uint32_t nfiles = r.u32(off);
  off += 4;
  for (uint32_t i = 0; i < nfiles; ++i) {
    const uint32_t len = r.u32(off);
    off += 4;
    const auto s = r.slice(off, len);
    map.files.emplace_back(reinterpret_cast<const char*>(s.data()), len);
    off += len;
  }
  const uint32_t nentries = r.u32(off);
  off += 4;
  for (uint32_t i = 0; i < nentries; ++i) {
    LineEntry e{r.u32(off), r.u32(off + 4), r.u32(off + 8)};
    check(e.file < map.files.size(), "LineMap: bad file index");
    map.entries.push_back(e);
    off += 12;
  }
  return map;
}

uint32_t LineMap::intern_file(std::string_view name) {
  for (uint32_t i = 0; i < files.size(); ++i)
    if (files[i] == name) return i;
  files.emplace_back(name);
  return static_cast<uint32_t>(files.size() - 1);
}

const LineEntry* LineMap::lookup(uint32_t addr) const {
  const auto it = std::upper_bound(
      entries.begin(), entries.end(), addr,
      [](uint32_t a, const LineEntry& e) { return a < e.addr; });
  if (it == entries.begin()) return nullptr;
  return &*(it - 1);
}

} // namespace ksim::elf
