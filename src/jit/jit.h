// kjit — dynamic binary translation of hot superblocks to host x86-64
// (DESIGN.md §9).  The translator is a template emitter: each DecodedInstr of
// a JIT-safe superblock is specialized into a short host-code sequence
// against pinned guest-state offsets; the result runs as one native function
// per block, dispatched from the superblock run loop.
//
// Contract with the interpreter (the correctness anchor):
//   * Translated blocks are *observation-transparent*: registers, memory,
//     the instruction pointer, the IP-history ring and every serialized
//     SimStats counter advance exactly as the superblock interpreter would.
//     Anything the generated code cannot reproduce exactly (possible traps,
//     unsafe SIMOPs, ISA switches) is either declined at translation time or
//     handed back to the interpreter via a side exit before any state of the
//     offending instruction is committed.  VLIW issue groups are translated
//     with the interpreter's two-phase bundle semantics: every source
//     register is read (and every guard checked) before any destination is
//     written, results staged in JitContext::wbuf and committed in slot
//     order.
//   * Translated blocks chain to each other inline: when a successor edge is
//     itself translated, the block's exit is patched into a direct jmp that
//     re-checks, in emitted code, exactly the conditions the dispatch loop
//     checks in C++ (checkpoint boundary, successor identity, instruction
//     budget) and accumulates the same counters (JitContext::chain_hits /
//     side_exits), so the accounting stays bit-identical to the interpreter.
//   * Translations bake the decode-cache contents of their block, so they
//     are exactly as stale as the interpreter's decode cache — and they are
//     invalidated by exactly the same call (Simulator::clear_decode_cache).
//     Chain patches only ever point inside one CodeCache generation; clear()
//     drops code and patch table together, so no stale jmp can survive.
//   * Checkpoints never serialize host code or hotness: after a restore the
//     code cache is empty and blocks re-earn translation lazily, mirroring
//     the superblock-graph rebuild.
//
// Host requirements: x86-64 SysV. On other hosts (or under sanitizers, which
// cannot instrument generated code) the CMake arch check compiles the stub
// translator and the engine reports host_supported() == false, so the whole
// subsystem degrades to the plain superblock interpreter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/exec.h"
#include "isa/kisa.h"

namespace ksim::jit {

/// True when this build carries the real x86-64 emitter (CMake sets
/// KSIM_JIT_HOST on x86-64 non-sanitizer builds; see src/jit/CMakeLists.txt).
constexpr bool host_supported() {
#ifdef KSIM_JIT_HOST
  return true;
#else
  return false;
#endif
}

/// Dispatches of a cold block before translation is attempted.  Low enough
/// that benchmarks spend almost all instructions in translated code, high
/// enough that one-shot startup code is never compiled.
inline constexpr uint32_t kHotThreshold = 16;

/// SIMOPs the translator emits inline (the narrowed kJitSimop veto,
/// DESIGN.md §9).  Safe means: the libc emulator's handler touches only
/// state JitContext exposes by pointer (call counter, LCG state, heap
/// cursor), reads its argument from a plain register, writes at most one
/// register, and can neither trap, produce output, halt, nor depend on
/// host-side buffers.  Everything else (exit/putchar/printf/memcpy/...)
/// stays vetoed.  Host-independent on purpose: the static translatability
/// report (and its lint goldens) must not vary with the build's JIT arch.
constexpr bool simop_fast_path(int op_number) {
  switch (static_cast<isa::LibcOp>(op_number)) {
    case isa::LibcOp::kMalloc:
    case isa::LibcOp::kFree:
    case isa::LibcOp::kRand:
    case isa::LibcOp::kSrand:
      return true;
    default:
      return false;
  }
}

/// Guest state handed to generated code in a fixed register (rdi).  The
/// layout is ABI: the emitter hardcodes these offsets, so the struct is
/// pinned by static_asserts in translator_x86.cpp.
///
/// executed/ops/chain_hits/side_exits are *per-call deltas*: the dispatcher
/// zeroes them before every call and emitted exits accumulate with add, so a
/// single host call that chains through several blocks reports the combined
/// totals.  ckpt_room/budget are per-call headroom (UINT64_MAX = unlimited):
/// an inline chain is taken only while executed stays below ckpt_room and
/// executed + next block's length stays within budget — the same checks the
/// C++ dispatch loop performs.
struct JitContext {
  uint32_t* regs = nullptr;     ///< +0   guest register file (32 x u32)
  uint8_t* ram = nullptr;       ///< +8   simulated RAM base
  uint32_t* ring = nullptr;     ///< +16  IP-history ring base (null = off)
  uint64_t executed = 0;        ///< +24  instructions retired this call
  uint64_t ops = 0;             ///< +32  operations retired this call
  uint32_t ip = 0;              ///< +40  guest IP at exit
  uint32_t ring_pos = 0;        ///< +44  IP-history cursor (live across calls)
  uint32_t ring_full = 0;       ///< +48  IP-history wrapped flag
  uint32_t reserved = 0;        ///< +52  padding, keeps wbuf 8-aligned
  uint32_t wbuf[8] = {};        ///< +56  VLIW bundle write-back staging slots
  uint64_t chain_hits = 0;      ///< +88  inline block->block chains this call
  uint64_t side_exits = 0;      ///< +96  mid-block taken exits chained past
  uint64_t ckpt_room = 0;       ///< +104 instrs until the next checkpoint
  uint64_t budget = 0;          ///< +112 instrs until --max-instr
  const void* exit_block = nullptr; ///< +120 Superblock* the call exited from
  uint64_t* libc_calls = nullptr;   ///< +128 LibcEmulator call counter
  uint32_t* rand_state = nullptr;   ///< +136 LibcEmulator LCG state
  uint32_t* heap_ptr = nullptr;     ///< +144 LibcEmulator bump cursor
  uint32_t* heap_end = nullptr;     ///< +152 LibcEmulator heap limit
};

/// Exit protocol: generated code returns kind | (instr_index << 8) in eax.
/// instr_index (and JitContext::ip / exit_block) describe the *last* block
/// of the call — the one actually exited from after any inline chains.
enum ExitKind : uint32_t {
  kExitFallthrough = 0, ///< ran off the end; ip = next sequential address
  kExitTaken = 1,       ///< a branch fired at instr_index; ip = its target
  kExitBail = 2,        ///< guard failed at instr_index *before* it retired;
                        ///< the interpreter finishes the block from there
};
inline uint32_t exit_kind(uint64_t code) { return static_cast<uint32_t>(code) & 0xFFu; }
inline uint32_t exit_index(uint64_t code) { return static_cast<uint32_t>(code) >> 8; }

/// Signature of a translated block: SysV x86-64, context in rdi, exit code
/// in rax.  Generated code uses caller-saved registers only (no stack frame).
using BlockFn = uint64_t (*)(JitContext*);

/// Translation-time facts about the simulated machine that get baked into
/// the generated code as immediates.
struct TranslateEnv {
  uint32_t ram_size = 0;  ///< guest RAM size (memory-guard bound)
  uint32_t ring_size = 0; ///< IP-history length (0 = history disabled)
  /// Identity of the block being translated, baked into every exit so the
  /// dispatcher knows which block an inline chain ended in.  Required for
  /// installation into a CodeCache (tests that only inspect code may leave
  /// it null).
  const void* self_block = nullptr;
  /// Address of the block's successor-edge array (&Superblock::succ[0],
  /// two pointers: [0] fallthrough, [1] taken).  Chain stubs re-load the
  /// edge through this address at run time and compare against the patched
  /// expected successor, so a re-linked edge falls back to the dispatcher.
  const void* const* succ_edges = nullptr;
};

/// An address range the static translatability analysis vetoed
/// (analysis::classify_translatability reason mask != 0).
struct VetoRange {
  uint32_t start = 0;
  uint32_t end = 0; ///< first address past the range
};

/// A patchable exit recorded by the translator: once the successor for
/// (kind, succ_ip) is translated, CodeCache::patch_chain() fills in the
/// expected-successor immediate, the successor length, and the direct jmp,
/// then unlocks the stub by zeroing the bypass jmp's displacement.
/// All offsets are relative to the start of the translation's code.
struct ChainSite {
  uint8_t kind = 0;          ///< kExitFallthrough or kExitTaken (edge index)
  uint16_t index = 0;        ///< exit_index of this exit
  uint32_t succ_ip = 0;      ///< static guest address of the successor
  uint32_t jmp_rel = 0;      ///< rel32 of the stub-bypass jmp (0 = enabled)
  uint32_t expected_imm = 0; ///< imm64: expected Superblock* on the edge
  uint32_t next_n_imm = 0;   ///< imm32: successor num_instrs (budget check)
  uint32_t target_rel = 0;   ///< rel32 of the chain jmp to the successor
};

/// A finished translation: host code plus its patchable chain exits.
/// Empty code means the translator declined.
struct Translation {
  std::vector<uint8_t> code;
  std::vector<ChainSite> sites;
};

/// Translates one superblock trace (instrs[0..n)) to host code.  Declines
/// (empty code) on: unsupported operation, SWITCHTARGET/HALT, SIMOPs outside
/// simop_fast_path() or not in single-op tail position, or a stub build.
/// Declining is always observation-safe — the caller keeps interpreting.
Translation translate_block(const isa::DecodedInstr* const* instrs,
                            uint16_t num_instrs, const TranslateEnv& env);

/// Executable code cache (W^X) with a chain-patch table.  The whole budget
/// is reserved contiguously up front (PROT_NONE) and committed in chunks, so
/// any translation can reach any other with a rel32 jmp; chunks are flipped
/// RW for emission/patching and RX for execution — no page is ever both.
/// Entries are per-block — the owning Superblock (keyed by (addr, isa) like
/// the decode cache) holds the pointer — and are only ever invalidated
/// wholesale by clear(), together with the superblocks that reference them
/// and every chain patch between them.
class CodeCache {
public:
  CodeCache() = default;
  ~CodeCache();
  CodeCache(const CodeCache&) = delete;
  CodeCache& operator=(const CodeCache&) = delete;

  /// Overrides the arena budget (total reservation / commit granularity).
  /// Only effective before the first install; exists so tests can exercise
  /// cache exhaustion without emitting 64 MiB of code.
  void set_budget(size_t total_bytes, size_t chunk_bytes);

  /// Copies a translation into executable memory and registers its chain
  /// sites.  Returns null when the arena budget is exhausted or the host
  /// cannot map executable pages (the caller may flush and retry, or mark
  /// the block declined and keep interpreting).
  BlockFn install(const Translation& tr);

  /// Patches the chain site (kind, index) of `entry` into a direct jmp to
  /// `succ_entry`, guarded on the edge still holding `succ_block`.  No-op
  /// when already patched to the same successor; returns false when the
  /// site does not exist (exit not chainable — dispatcher keeps looping).
  bool patch_chain(BlockFn entry, uint32_t kind, uint32_t index,
                   const void* succ_block, BlockFn succ_entry,
                   uint32_t succ_num_instrs);

  /// Drops every translation and chain patch and recycles the arena (W^X
  /// flip back to RW happens lazily on the next install).  Callers must
  /// simultaneously null all Superblock::jit_entry pointers —
  /// clear_decode_cache() and the exhaustion flush both do.
  void clear();

  uint64_t blocks() const { return blocks_; }
  uint64_t code_bytes() const { return used_total_; }
  uint64_t chain_patches() const { return patches_; }

private:
  struct Chunk {
    uint8_t* base = nullptr;
    size_t size = 0;
    size_t used = 0;
    bool writable = false;
  };
  /// One installed ChainSite, rebased to absolute host addresses.
  struct Site {
    uint8_t kind = 0;
    uint16_t index = 0;
    uint8_t* jmp_rel = nullptr;
    uint8_t* expected_imm = nullptr;
    uint8_t* next_n_imm = nullptr;
    uint8_t* target_rel = nullptr;
    const void* patched_to = nullptr; ///< successor block currently linked
  };
  Chunk* writable_chunk(size_t need);
  bool make_writable(Chunk& c);
  bool make_executable(Chunk& c);
  Chunk* chunk_of(const uint8_t* p);

  uint8_t* reservation_ = nullptr;
  size_t reserved_ = 0;
  size_t total_budget_ = 0;
  size_t chunk_bytes_ = 0;
  std::vector<Chunk> chunks_;
  std::unordered_map<const void*, std::vector<Site>> sites_;
  uint64_t blocks_ = 0;
  uint64_t used_total_ = 0;
  uint64_t patches_ = 0;
};

} // namespace ksim::jit
