// kjit — dynamic binary translation of hot superblocks to host x86-64
// (DESIGN.md §9).  The translator is a template emitter: each DecodedInstr of
// a JIT-safe superblock is specialized into a short host-code sequence
// against pinned guest-state offsets; the result runs as one native function
// per block, dispatched from the superblock run loop.
//
// Contract with the interpreter (the correctness anchor):
//   * Translated blocks are *observation-transparent*: registers, memory,
//     the instruction pointer, the IP-history ring and every serialized
//     SimStats counter advance exactly as the superblock interpreter would.
//     Anything the generated code cannot reproduce exactly (possible traps,
//     SIMOPs, ISA switches, VLIW write-back semantics) is either declined at
//     translation time or handed back to the interpreter via a side exit
//     before any state of the offending instruction is committed.
//   * Translations bake the decode-cache contents of their block, so they
//     are exactly as stale as the interpreter's decode cache — and they are
//     invalidated by exactly the same call (Simulator::clear_decode_cache).
//   * Checkpoints never serialize host code or hotness: after a restore the
//     code cache is empty and blocks re-earn translation lazily, mirroring
//     the superblock-graph rebuild.
//
// Host requirements: x86-64 SysV. On other hosts (or under sanitizers, which
// cannot instrument generated code) the CMake arch check compiles the stub
// translator and the engine reports host_supported() == false, so the whole
// subsystem degrades to the plain superblock interpreter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/exec.h"

namespace ksim::jit {

/// True when this build carries the real x86-64 emitter (CMake sets
/// KSIM_JIT_HOST on x86-64 non-sanitizer builds; see src/jit/CMakeLists.txt).
constexpr bool host_supported() {
#ifdef KSIM_JIT_HOST
  return true;
#else
  return false;
#endif
}

/// Dispatches of a cold block before translation is attempted.  Low enough
/// that benchmarks spend almost all instructions in translated code, high
/// enough that one-shot startup code is never compiled.
inline constexpr uint32_t kHotThreshold = 16;

/// Guest state handed to generated code in a fixed register (rdi).  The
/// layout is ABI: the emitter hardcodes these offsets, so the struct is
/// pinned by static_asserts in translator_x86.cpp.
struct JitContext {
  uint32_t* regs = nullptr;  ///< +0  guest register file (32 x u32)
  uint8_t* ram = nullptr;    ///< +8  simulated RAM base
  uint32_t* ring = nullptr;  ///< +16 IP-history ring base (null = disabled)
  uint64_t executed = 0;     ///< +24 instructions retired by the last call
  uint64_t ops = 0;          ///< +32 operations retired by the last call
  uint32_t ip = 0;           ///< +40 guest IP at exit
  uint32_t ring_pos = 0;     ///< +44 IP-history cursor (live across calls)
  uint32_t ring_full = 0;    ///< +48 IP-history wrapped flag
  uint32_t reserved = 0;     ///< +52 padding, keeps the struct 8-aligned
};

/// Exit protocol: generated code returns kind | (instr_index << 8) in eax.
enum ExitKind : uint32_t {
  kExitFallthrough = 0, ///< ran off the end; ip = next sequential address
  kExitTaken = 1,       ///< a branch fired at instr_index; ip = its target
  kExitBail = 2,        ///< guard failed at instr_index *before* it retired;
                        ///< the interpreter finishes the block from there
};
inline uint32_t exit_kind(uint64_t code) { return static_cast<uint32_t>(code) & 0xFFu; }
inline uint32_t exit_index(uint64_t code) { return static_cast<uint32_t>(code) >> 8; }

/// Signature of a translated block: SysV x86-64, context in rdi, exit code
/// in rax.  Generated code uses caller-saved registers only (no stack frame).
using BlockFn = uint64_t (*)(JitContext*);

/// Translation-time facts about the simulated machine that get baked into
/// the generated code as immediates.
struct TranslateEnv {
  uint32_t ram_size = 0;  ///< guest RAM size (memory-guard bound)
  uint32_t ring_size = 0; ///< IP-history length (0 = history disabled)
};

/// An address range the static translatability analysis vetoed
/// (analysis::classify_translatability reason mask != 0).
struct VetoRange {
  uint32_t start = 0;
  uint32_t end = 0; ///< first address past the range
};

/// Translates one superblock trace (instrs[0..n)) to host code bytes.
/// Returns an empty vector to decline: unsupported operation, VLIW group
/// (num_ops > 1), SIMOP/HALT/SWITCHTARGET, or a stub build.  Declining is
/// always observation-safe — the caller keeps interpreting the block.
std::vector<uint8_t> translate_block(const isa::DecodedInstr* const* instrs,
                                     uint16_t num_instrs,
                                     const TranslateEnv& env);

/// Executable-arena code cache (W^X): chunks are mmap'd read-write for
/// emission and flipped to read-execute before use; install() copies a
/// translation in and returns the executable entry point.  Entries are
/// per-block — the owning Superblock (keyed by (addr, isa) like the decode
/// cache) holds the pointer — and are only ever invalidated wholesale by
/// clear(), together with the superblocks that reference them.
class CodeCache {
public:
  CodeCache() = default;
  ~CodeCache();
  CodeCache(const CodeCache&) = delete;
  CodeCache& operator=(const CodeCache&) = delete;

  /// Copies `code` into executable memory.  Returns null when the arena
  /// budget is exhausted or the host cannot map executable pages (the
  /// caller marks the block declined and keeps interpreting).
  BlockFn install(const std::vector<uint8_t>& code);

  /// Drops every translation and recycles the arena (W^X flip back to RW
  /// happens lazily on the next install).  Callers must simultaneously null
  /// all Superblock::jit_entry pointers — clear_decode_cache() does.
  void clear();

  uint64_t blocks() const { return blocks_; }
  uint64_t code_bytes() const { return used_total_; }

private:
  struct Chunk {
    uint8_t* base = nullptr;
    size_t size = 0;
    size_t used = 0;
    bool writable = false;
  };
  Chunk* writable_chunk(size_t need);

  std::vector<Chunk> chunks_;
  uint64_t blocks_ = 0;
  uint64_t used_total_ = 0;
};

} // namespace ksim::jit
