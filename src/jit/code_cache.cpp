#include "jit/jit.h"

#include <cstring>

#ifdef KSIM_JIT_HOST
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace ksim::jit {

namespace {

/// Arena chunk size.  Translations are a few hundred bytes each; one chunk
/// holds thousands of blocks, and a workload that overflows the total budget
/// simply stops translating (interpretation stays correct).
constexpr size_t kChunkSize = 1u << 20;
constexpr size_t kMaxChunks = 64; // 64 MiB hard budget

} // namespace

#ifdef KSIM_JIT_HOST

CodeCache::~CodeCache() {
  for (Chunk& c : chunks_)
    if (c.base != nullptr) ::munmap(c.base, c.size);
}

CodeCache::Chunk* CodeCache::writable_chunk(size_t need) {
  if (!chunks_.empty()) {
    Chunk& back = chunks_.back();
    if (back.size - back.used >= need) {
      if (!back.writable) {
        if (::mprotect(back.base, back.size, PROT_READ | PROT_WRITE) != 0)
          return nullptr;
        back.writable = true;
      }
      return &back;
    }
  }
  if (chunks_.size() >= kMaxChunks || need > kChunkSize) return nullptr;
  void* mem = ::mmap(nullptr, kChunkSize, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return nullptr;
  chunks_.push_back({static_cast<uint8_t*>(mem), kChunkSize, 0, true});
  return &chunks_.back();
}

BlockFn CodeCache::install(const std::vector<uint8_t>& code) {
  if (code.empty()) return nullptr;
  // Entry points stay 16-byte aligned (call-target friendly).
  const size_t need = (code.size() + 15u) & ~size_t{15};
  Chunk* c = writable_chunk(need);
  if (c == nullptr) return nullptr;
  uint8_t* dst = c->base + c->used;
  std::memcpy(dst, code.data(), code.size());
  c->used += need;
  // W^X: no page is ever writable and executable at once.  Flipping the
  // whole chunk is safe — no guest code is running during translation.
  if (::mprotect(c->base, c->size, PROT_READ | PROT_EXEC) != 0) {
    c->used -= need;
    return nullptr;
  }
  c->writable = false;
  ++blocks_;
  used_total_ += need;
  return reinterpret_cast<BlockFn>(dst);
}

void CodeCache::clear() {
  // Keep the mappings (they are recycled RW-first by the next install);
  // just reset the cursors so stale entry points are never handed out again.
  for (Chunk& c : chunks_) c.used = 0;
  blocks_ = 0;
  used_total_ = 0;
}

#else // !KSIM_JIT_HOST — stub build (non-x86-64 hosts, sanitizer builds)

CodeCache::~CodeCache() = default;
CodeCache::Chunk* CodeCache::writable_chunk(size_t) { return nullptr; }
BlockFn CodeCache::install(const std::vector<uint8_t>&) { return nullptr; }
void CodeCache::clear() {}

#endif

} // namespace ksim::jit
