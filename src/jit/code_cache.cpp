#include "jit/jit.h"

#include <cstring>

#ifdef KSIM_JIT_HOST
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace ksim::jit {

namespace {

/// Default arena geometry.  Translations are a few hundred bytes each; one
/// chunk holds thousands of blocks.  The whole budget is reserved as one
/// PROT_NONE mapping so chain jmps between any two translations always fit
/// in a rel32; address space is free, only committed chunks cost memory.
constexpr size_t kDefaultChunk = 1u << 20;
constexpr size_t kDefaultTotal = kDefaultChunk * 64; // 64 MiB hard budget

void patch_u32(uint8_t* at, uint32_t v) { std::memcpy(at, &v, sizeof v); }
void patch_u64(uint8_t* at, uint64_t v) { std::memcpy(at, &v, sizeof v); }

} // namespace

void CodeCache::set_budget(size_t total_bytes, size_t chunk_bytes) {
  if (reservation_ != nullptr) return; // too late, arena already live
  total_budget_ = total_bytes;
  chunk_bytes_ = chunk_bytes;
}

#ifdef KSIM_JIT_HOST

CodeCache::~CodeCache() {
  if (reservation_ != nullptr) ::munmap(reservation_, reserved_);
}

bool CodeCache::make_writable(Chunk& c) {
  if (c.writable) return true;
  if (::mprotect(c.base, c.size, PROT_READ | PROT_WRITE) != 0) return false;
  c.writable = true;
  return true;
}

bool CodeCache::make_executable(Chunk& c) {
  // W^X: no page is ever writable and executable at once.  Flipping the
  // whole chunk is safe — no guest code is running during translation.
  if (!c.writable) return true;
  if (::mprotect(c.base, c.size, PROT_READ | PROT_EXEC) != 0) return false;
  c.writable = false;
  return true;
}

CodeCache::Chunk* CodeCache::chunk_of(const uint8_t* p) {
  for (Chunk& c : chunks_)
    if (p >= c.base && p < c.base + c.size) return &c;
  return nullptr;
}

CodeCache::Chunk* CodeCache::writable_chunk(size_t need) {
  if (!chunks_.empty()) {
    Chunk& back = chunks_.back();
    if (back.size - back.used >= need) {
      if (!make_writable(back)) return nullptr;
      return &back;
    }
  }
  if (total_budget_ == 0) total_budget_ = kDefaultTotal;
  if (chunk_bytes_ == 0) chunk_bytes_ = kDefaultChunk;
  if (reservation_ == nullptr) {
    void* mem = ::mmap(nullptr, total_budget_, PROT_NONE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) return nullptr;
    reservation_ = static_cast<uint8_t*>(mem);
    reserved_ = total_budget_;
  }
  const size_t committed = chunks_.size() * chunk_bytes_;
  if (committed >= total_budget_ || need > chunk_bytes_) return nullptr;
  uint8_t* base = reservation_ + committed;
  const size_t size =
      chunk_bytes_ < total_budget_ - committed ? chunk_bytes_
                                               : total_budget_ - committed;
  if (::mprotect(base, size, PROT_READ | PROT_WRITE) != 0) return nullptr;
  chunks_.push_back({base, size, 0, true});
  return &chunks_.back();
}

BlockFn CodeCache::install(const Translation& tr) {
  if (tr.code.empty()) return nullptr;
  // Entry points stay 16-byte aligned (call-target friendly).
  const size_t need = (tr.code.size() + 15u) & ~size_t{15};
  Chunk* c = writable_chunk(need);
  if (c == nullptr) return nullptr;
  uint8_t* dst = c->base + c->used;
  std::memcpy(dst, tr.code.data(), tr.code.size());
  c->used += need;
  if (!make_executable(*c)) {
    c->used -= need;
    return nullptr;
  }
  ++blocks_;
  used_total_ += need;
  BlockFn fn = reinterpret_cast<BlockFn>(dst);
  if (!tr.sites.empty()) {
    std::vector<Site>& sites = sites_[reinterpret_cast<const void*>(fn)];
    sites.reserve(tr.sites.size());
    for (const ChainSite& s : tr.sites)
      sites.push_back({s.kind, s.index, dst + s.jmp_rel, dst + s.expected_imm,
                       dst + s.next_n_imm, dst + s.target_rel, nullptr});
  }
  return fn;
}

bool CodeCache::patch_chain(BlockFn entry, uint32_t kind, uint32_t index,
                            const void* succ_block, BlockFn succ_entry,
                            uint32_t succ_num_instrs) {
  auto it = sites_.find(reinterpret_cast<const void*>(entry));
  if (it == sites_.end()) return false;
  for (Site& s : it->second) {
    if (s.kind != kind || s.index != index) continue;
    if (s.patched_to == succ_block) return true; // already linked
    Chunk* c = chunk_of(s.jmp_rel);
    if (c == nullptr || !make_writable(*c)) return false;
    patch_u64(s.expected_imm, reinterpret_cast<uint64_t>(succ_block));
    patch_u32(s.next_n_imm, succ_num_instrs);
    uint8_t* succ = reinterpret_cast<uint8_t*>(succ_entry);
    patch_u32(s.target_rel,
              static_cast<uint32_t>(succ - (s.target_rel + 4)));
    // Enabling the stub last: a zero displacement makes the bypass jmp fall
    // straight into the (now fully initialized) chain stub.
    patch_u32(s.jmp_rel, 0);
    // The chain target can live in another chunk that is currently RW from
    // its own install; flip every writable chunk back before executing.
    bool ok = true;
    for (Chunk& ch : chunks_) ok = make_executable(ch) && ok;
    if (!ok) return false;
    s.patched_to = succ_block;
    ++patches_;
    return true;
  }
  return false;
}

void CodeCache::clear() {
  // Keep the mappings (they are recycled RW-first by the next install);
  // just reset the cursors so stale entry points are never handed out again.
  // Chain patches die with the code they pointed into.
  for (Chunk& c : chunks_) c.used = 0;
  sites_.clear();
  blocks_ = 0;
  used_total_ = 0;
}

#else // !KSIM_JIT_HOST — stub build (non-x86-64 hosts, sanitizer builds)

CodeCache::~CodeCache() = default;
bool CodeCache::make_writable(Chunk&) { return false; }
bool CodeCache::make_executable(Chunk&) { return false; }
CodeCache::Chunk* CodeCache::chunk_of(const uint8_t*) { return nullptr; }
CodeCache::Chunk* CodeCache::writable_chunk(size_t) { return nullptr; }
BlockFn CodeCache::install(const Translation&) { return nullptr; }
bool CodeCache::patch_chain(BlockFn, uint32_t, uint32_t, const void*, BlockFn,
                            uint32_t) {
  return false;
}
void CodeCache::clear() {}

#endif

} // namespace ksim::jit
