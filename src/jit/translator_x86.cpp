// Template translator: specializes each DecodedInstr of a superblock trace
// into a hand-assembled x86-64 sequence (DESIGN.md §9).  No assembler
// library is used; every encoding below is written out byte by byte.
//
// Guest-state ABI (all caller-saved; generated code needs no stack frame):
//   rdi  = JitContext* (argument, never clobbered)
//   rsi  = guest register file base (regs[0..31], u32 each -> disp8 reaches all)
//   r8   = simulated RAM base
//   r10  = IP-history ring base        (only when the ring is enabled)
//   r11d = IP-history ring cursor      (only when the ring is enabled)
//   r9   = VLIW pending-branch flag: (1<<32) | target when a bundle slot
//          took a branch, 0 otherwise (live only inside one bundle)
//   eax, ecx, edx = scratch
//
// Single-operation template shape (unchanged from kjit v1):
//   [guards -> bail stub]   traps must be re-raised by the interpreter, so
//                           any possibly-faulting access is guarded by the
//                           exact interpreter fault condition and bails
//                           *before* the instruction writes any state;
//   [compute + commit]      register results store straight into the guest
//                           register file (single-op instructions have no
//                           cross-slot read-before-write hazard);
//   [branch -> taken stub]  conditional exits jump to a per-instruction stub;
//   [ring write]            the retiring instruction is appended to the
//                           IP-history ring, matching record_ip() exactly.
//
// VLIW issue groups (num_ops > 1) translate with the interpreter's two-phase
// bundle semantics (exec_block_fast + ExecCtx::wb):
//   Phase A: every guard of every slot, in slot order — a failed guard bails
//            with *nothing* of the bundle committed (the interpreter re-runs
//            the whole group from pristine registers; RAM effects of earlier
//            slots are recomputed identically, so hoisting is idempotent);
//   Phase B: every slot's result computed from the *pre-bundle* register
//            file and staged into JitContext::wbuf[slot]; memory writes are
//            performed immediately in slot order (later loads in the same
//            group see them, exactly like the interpreter); taken branches
//            set r9 = (1<<32)|target, last taken wins;
//   Phase C: wbuf committed to the register file in slot order (r0 elided),
//            the ring entry written, then the pending branch resolved.
//
// Exit protocol v2 (inline chaining): the dispatcher zeroes the JitContext
// delta counters before every call, and every exit *accumulates* its block's
// retired instruction/operation counts with add.  Chainable exits (static
// fallthrough/taken successors) carry a patchable stub that re-checks the
// dispatch loop's chain conditions in emitted code — checkpoint room first,
// then successor-edge identity, then instruction budget — bumps
// chain_hits/side_exits, syncs the ring cursor and jumps straight into the
// successor's entry.  Until CodeCache::patch_chain() links a site, a bypass
// jmp skips the stub.  Every exit records which Superblock it left from
// (JitContext::exit_block) so the dispatcher can resume/bail correctly after
// any number of inline chains.
#include "jit/jit.h"

#include <string_view>

namespace ksim::jit {

#ifdef KSIM_JIT_HOST

static_assert(offsetof(JitContext, regs) == 0);
static_assert(offsetof(JitContext, ram) == 8);
static_assert(offsetof(JitContext, ring) == 16);
static_assert(offsetof(JitContext, executed) == 24);
static_assert(offsetof(JitContext, ops) == 32);
static_assert(offsetof(JitContext, ip) == 40);
static_assert(offsetof(JitContext, ring_pos) == 44);
static_assert(offsetof(JitContext, ring_full) == 48);
static_assert(offsetof(JitContext, wbuf) == 56);
static_assert(offsetof(JitContext, chain_hits) == 88);
static_assert(offsetof(JitContext, side_exits) == 96);
static_assert(offsetof(JitContext, ckpt_room) == 104);
static_assert(offsetof(JitContext, budget) == 112);
static_assert(offsetof(JitContext, exit_block) == 120);
static_assert(offsetof(JitContext, libc_calls) == 128);
static_assert(offsetof(JitContext, rand_state) == 136);
static_assert(offsetof(JitContext, heap_ptr) == 144);
static_assert(offsetof(JitContext, heap_end) == 152);

namespace {

// -- tiny emitter -----------------------------------------------------------

struct Emitter {
  std::vector<uint8_t> out;

  void b(uint8_t v) { out.push_back(v); }
  void bs(std::initializer_list<uint8_t> v) { out.insert(out.end(), v); }
  void imm32(uint32_t v) {
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
  }
  void imm64(uint64_t v) {
    imm32(static_cast<uint32_t>(v));
    imm32(static_cast<uint32_t>(v >> 32));
  }
  size_t pos() const { return out.size(); }
  void patch32(size_t at, uint32_t v) {
    out[at] = static_cast<uint8_t>(v);
    out[at + 1] = static_cast<uint8_t>(v >> 8);
    out[at + 2] = static_cast<uint8_t>(v >> 16);
    out[at + 3] = static_cast<uint8_t>(v >> 24);
  }
};

/// Forward-reference label: jumps emit a rel32 placeholder, bind() patches.
struct Label {
  int32_t bound = -1;
  std::vector<size_t> fixups;

  void jump_here_from(Emitter& e) {
    if (bound >= 0) {
      e.imm32(static_cast<uint32_t>(bound - static_cast<int32_t>(e.pos()) - 4));
    } else {
      fixups.push_back(e.pos());
      e.imm32(0);
    }
  }
  void bind(Emitter& e) {
    bound = static_cast<int32_t>(e.pos());
    for (const size_t at : fixups)
      e.patch32(at, static_cast<uint32_t>(bound - static_cast<int32_t>(at) - 4));
    fixups.clear();
  }
};

// x86 condition codes (for 0F 8x jcc / 0F 9x setcc).  Each pairs with its
// inverse via cc ^ 1.
enum Cc : uint8_t {
  kCcB = 0x2,  // unsigned <
  kCcAe = 0x3, // unsigned >=
  kCcE = 0x4,
  kCcNe = 0x5,
  kCcBe = 0x6, // unsigned <=
  kCcA = 0x7,  // unsigned >
  kCcL = 0xC,  // signed <
  kCcGe = 0xD,
  kCcLe = 0xE,
};

void jcc(Emitter& e, uint8_t cc, Label& l) {
  e.b(0x0F);
  e.b(static_cast<uint8_t>(0x80 | cc));
  l.jump_here_from(e);
}
void jmp(Emitter& e, Label& l) {
  e.b(0xE9);
  l.jump_here_from(e);
}

// Scratch register numbers (host).
constexpr uint8_t kEax = 0, kEcx = 1, kEdx = 2;

uint8_t modrm_regfile(uint8_t host_reg, uint8_t guest_reg) {
  (void)guest_reg;
  return static_cast<uint8_t>(0x40 | (host_reg << 3) | 0x6); // [rsi+disp8]
}

/// mov host32, [rsi + guest*4]
void load_guest(Emitter& e, uint8_t host, uint8_t g) {
  e.b(0x8B);
  e.b(modrm_regfile(host, g));
  e.b(static_cast<uint8_t>(g * 4));
}
/// mov [rsi + guest*4], host32
void store_guest(Emitter& e, uint8_t g, uint8_t host) {
  e.b(0x89);
  e.b(modrm_regfile(host, g));
  e.b(static_cast<uint8_t>(g * 4));
}
/// mov dword [rsi + guest*4], imm32
void store_guest_imm(Emitter& e, uint8_t g, uint32_t imm) {
  e.b(0xC7);
  e.b(modrm_regfile(0, g));
  e.b(static_cast<uint8_t>(g * 4));
  e.imm32(imm);
}
/// <alu> eax, [rsi + guest*4]  (opcode: 03 add, 2B sub, 23 and, 0B or,
/// 33 xor, 3B cmp)
void alu_eax_guest(Emitter& e, uint8_t opcode, uint8_t g) {
  e.b(opcode);
  e.b(modrm_regfile(kEax, g));
  e.b(static_cast<uint8_t>(g * 4));
}
/// <alu> eax, imm32 via 81 /ext (ext: 0 add, 1 or, 4 and, 5 sub, 6 xor, 7 cmp)
void alu_eax_imm(Emitter& e, uint8_t ext, uint32_t imm) {
  e.b(0x81);
  e.b(static_cast<uint8_t>(0xC0 | (ext << 3)));
  e.imm32(imm);
}
/// <alu> dword [rsi + guest*4], imm32 via 81 /ext (rd == ra fused form)
void alu_guest_imm(Emitter& e, uint8_t ext, uint8_t g, uint32_t imm) {
  e.b(0x81);
  e.b(static_cast<uint8_t>(0x40 | (ext << 3) | 0x6));
  e.b(static_cast<uint8_t>(g * 4));
  e.imm32(imm);
}
/// setcc al; movzx eax, al
void set_bool_eax(Emitter& e, uint8_t cc) {
  e.bs({0x0F, static_cast<uint8_t>(0x90 | cc), 0xC0, 0x0F, 0xB6, 0xC0});
}
/// mov [rdi + 56 + slot*4], host32  — stage a bundle result in wbuf
void spill_wbuf(Emitter& e, uint8_t slot, uint8_t host) {
  e.b(0x89);
  e.b(static_cast<uint8_t>(0x40 | (host << 3) | 0x7)); // [rdi+disp8]
  e.b(static_cast<uint8_t>(56 + slot * 4));
}
/// mov eax, [rdi + 56 + slot*4]
void load_wbuf_eax(Emitter& e, uint8_t slot) {
  e.bs({0x8B, 0x47, static_cast<uint8_t>(56 + slot * 4)});
}
/// add qword [rdi + off], imm  (off < 128; elided when imm == 0)
void add_ctx64(Emitter& e, uint8_t off, uint64_t imm) {
  if (imm == 0) return;
  if (imm <= 127) {
    e.bs({0x48, 0x83, 0x47, off, static_cast<uint8_t>(imm)});
  } else {
    e.bs({0x48, 0x81, 0x47, off});
    e.imm32(static_cast<uint32_t>(imm));
  }
}
/// mov rdx, [rdi + off32]  — reach the pointer fields past disp8 range
void load_ctx_ptr_rdx(Emitter& e, uint32_t off) {
  e.bs({0x48, 0x8B, 0x97});
  e.imm32(off);
}

} // namespace

Translation translate_block(const isa::DecodedInstr* const* instrs,
                            uint16_t num_instrs, const TranslateEnv& env) {
  using std::string_view;

  enum class K {
    AluRR,   // add..sleu, mul (two-operand host forms)
    Mulh, Mulhu, Div, Divu, Rem, Remu,
    AluRI,   // addi/andi/ori/xori (81 /ext forms)
    ShiftR, ShiftI, SetRR, SetRI,
    Lui, Orlo,
    Load, Store,
    CondBr, J, Jal, Jr, Jalr, Nop,
    Simop,   // translatable only via simop_fast_path, single-op tail position
    No,      // untranslatable
  };
  struct OpPlan {
    K k = K::No;
    uint8_t x = 0; ///< ALU opcode / 81-ext / shift-ext / cc / access size
    bool sign = false;
  };

  const auto classify = [](string_view n) -> OpPlan {
    if (n == "ADD") return {K::AluRR, 0x03, false};
    if (n == "SUB") return {K::AluRR, 0x2B, false};
    if (n == "AND") return {K::AluRR, 0x23, false};
    if (n == "OR") return {K::AluRR, 0x0B, false};
    if (n == "XOR") return {K::AluRR, 0x33, false};
    if (n == "NOR") return {K::AluRR, 0x0B, true}; // or + not
    if (n == "MUL") return {K::AluRR, 0xAF, true}; // 0F AF imul (two-byte)
    if (n == "MULH") return {K::Mulh, 0, false};
    if (n == "MULHU") return {K::Mulhu, 0, false};
    if (n == "DIV") return {K::Div, 0, false};
    if (n == "DIVU") return {K::Divu, 0, false};
    if (n == "REM") return {K::Rem, 0, false};
    if (n == "REMU") return {K::Remu, 0, false};
    if (n == "SLL") return {K::ShiftR, 4, false};
    if (n == "SRL") return {K::ShiftR, 5, false};
    if (n == "SRA") return {K::ShiftR, 7, false};
    if (n == "SLLI") return {K::ShiftI, 4, false};
    if (n == "SRLI") return {K::ShiftI, 5, false};
    if (n == "SRAI") return {K::ShiftI, 7, false};
    if (n == "SLT") return {K::SetRR, kCcL, false};
    if (n == "SLTU") return {K::SetRR, kCcB, false};
    if (n == "SEQ") return {K::SetRR, kCcE, false};
    if (n == "SNE") return {K::SetRR, kCcNe, false};
    if (n == "SLE") return {K::SetRR, kCcLe, false};
    if (n == "SLEU") return {K::SetRR, kCcBe, false};
    if (n == "SLTI") return {K::SetRI, kCcL, false};
    if (n == "SLTIU") return {K::SetRI, kCcB, false};
    if (n == "ADDI") return {K::AluRI, 0, false};
    if (n == "ANDI") return {K::AluRI, 4, false};
    if (n == "ORI") return {K::AluRI, 1, false};
    if (n == "XORI") return {K::AluRI, 6, false};
    if (n == "LUI") return {K::Lui, 0, false};
    if (n == "ORLO") return {K::Orlo, 0, false};
    if (n == "LB") return {K::Load, 1, true};
    if (n == "LBU") return {K::Load, 1, false};
    if (n == "LH") return {K::Load, 2, true};
    if (n == "LHU") return {K::Load, 2, false};
    if (n == "LW") return {K::Load, 4, false};
    if (n == "SB") return {K::Store, 1, false};
    if (n == "SH") return {K::Store, 2, false};
    if (n == "SW") return {K::Store, 4, false};
    if (n == "BEQ") return {K::CondBr, kCcE, false};
    if (n == "BNE") return {K::CondBr, kCcNe, false};
    if (n == "BLT") return {K::CondBr, kCcL, false};
    if (n == "BGE") return {K::CondBr, kCcGe, false};
    if (n == "BLTU") return {K::CondBr, kCcB, false};
    if (n == "BGEU") return {K::CondBr, kCcAe, false};
    if (n == "J") return {K::J, 0, false};
    if (n == "JAL") return {K::Jal, 0, false};
    if (n == "JR") return {K::Jr, 0, false};
    if (n == "JALR") return {K::Jalr, 0, false};
    if (n == "NOP") return {K::Nop, 0, false};
    if (n == "SIMOP") return {K::Simop, 0, false};
    return {K::No, 0, false}; // HALT, SWITCHTARGET, anything unknown
  };

  // -- decline pass ---------------------------------------------------------
  // v2 scope: single operations, VLIW issue groups, and the fast-path SIMOPs
  // (single-op tail position only: the libc handler reads its argument from
  // and writes its result to the register file directly, which is only
  // bundle-equivalent when there is no bundle).  HALT/SWITCHTARGET and
  // everything unknown stays on the interpreter.
  if (num_instrs == 0) return {};
  std::vector<OpPlan> plans(static_cast<size_t>(num_instrs) * isa::kMaxSlots);
  for (uint16_t i = 0; i < num_instrs; ++i) {
    const isa::DecodedInstr* di = instrs[i];
    if (di->num_ops < 1 || di->num_ops > isa::kMaxSlots) return {};
    for (uint8_t s = 0; s < di->num_ops; ++s) {
      const isa::DecodedOp& op = di->ops[s];
      if (op.rd > 31 || op.ra > 31 || op.rb > 31) return {};
      OpPlan plan = classify(op.info->name);
      if (plan.k == K::Simop &&
          (di->num_ops != 1 || i != num_instrs - 1 ||
           !simop_fast_path(static_cast<int>(op.imm))))
        plan.k = K::No;
      if (plan.k == K::No) return {};
      plans[static_cast<size_t>(i) * isa::kMaxSlots + s] = plan;
    }
  }

  const bool ring = env.ring_size > 0;
  Emitter e;
  Translation tr;

  // -- prologue -------------------------------------------------------------
  e.bs({0x48, 0x8B, 0x37});             // mov rsi, [rdi]       (guest regs)
  e.bs({0x4C, 0x8B, 0x47, 0x08});       // mov r8,  [rdi+8]     (ram)
  if (ring) {
    e.bs({0x4C, 0x8B, 0x57, 0x10});     // mov r10, [rdi+16]    (ring base)
    e.bs({0x44, 0x8B, 0x5F, 0x2C});     // mov r11d,[rdi+44]    (ring cursor)
  }

  // Appends the retiring instruction to the IP-history ring (record_ip()).
  const auto ring_write = [&](uint32_t addr) {
    if (!ring) return;
    e.bs({0x43, 0xC7, 0x04, 0x9A});     // mov dword [r10+r11*4], addr
    e.imm32(addr);
    e.bs({0x41, 0xFF, 0xC3});           // inc r11d
    e.bs({0x41, 0x81, 0xFB});           // cmp r11d, ring_size
    e.imm32(env.ring_size);
    e.bs({0x75, 0x0A});                 // jne +10 (skip wrap)
    e.bs({0x45, 0x31, 0xDB});           // xor r11d, r11d
    e.bs({0xC7, 0x47, 0x30});           // mov dword [rdi+48], 1 (ring_full)
    e.imm32(1);
  };

  struct ExitSpec {
    uint64_t retired = 0;  ///< instructions of *this* block retired here
    uint64_t ops = 0;      ///< operations of *this* block retired here
    bool ip_in_ecx = false;
    uint32_t ip = 0;
    uint32_t code = 0;
    bool chainable = false; ///< static successor: emit a patchable chain stub
    uint8_t kind = 0;       ///< successor-edge index (0 fallthrough, 1 taken)
    uint16_t index = 0;     ///< exit_index
    bool side_exit = false; ///< taken before the last instr (counts when chained)
  };

  // Exit epilogue v2.  Chained or not, the block's retired counts accumulate
  // into the per-call deltas first; the chain stub then replays the dispatch
  // loop's checks in order — checkpoint room, successor identity, budget —
  // and either jumps into the successor or falls back to the regular exit,
  // which records ip / ring cursor / exit block and returns the packed code.
  const bool can_chain = env.self_block != nullptr && env.succ_edges != nullptr;
  const auto emit_exit = [&](const ExitSpec& x) {
    add_ctx64(e, 24, x.retired);                  // executed += retired
    add_ctx64(e, 32, x.ops);                      // ops += ops
    if (x.chainable && can_chain) {
      Label regular;
      ChainSite site;
      site.kind = x.kind;
      site.index = x.index;
      site.succ_ip = x.ip;
      e.b(0xE9);                                  // jmp regular (bypass; a
      site.jmp_rel = static_cast<uint32_t>(e.pos()); // zero rel32 enables the
      regular.jump_here_from(e);                  //  stub once it is patched)
      e.bs({0x48, 0x8B, 0x47, 0x18});             // mov rax, [rdi+24]
      e.bs({0x48, 0x3B, 0x47, 0x68});             // cmp rax, [rdi+104] ckpt
      jcc(e, kCcAe, regular);                     // at/past a checkpoint: exit
      e.bs({0x48, 0xBA});                         // movabs rdx, &succ[kind]
      e.imm64(reinterpret_cast<uint64_t>(env.succ_edges + x.kind));
      e.bs({0x48, 0xB9});                         // movabs rcx, expected succ
      site.expected_imm = static_cast<uint32_t>(e.pos());
      e.imm64(0);
      e.bs({0x48, 0x39, 0x0A});                   // cmp [rdx], rcx
      jcc(e, kCcNe, regular);                     // edge re-linked: exit
      e.bs({0x48, 0x05});                         // add rax, succ num_instrs
      site.next_n_imm = static_cast<uint32_t>(e.pos());
      e.imm32(0);
      e.bs({0x48, 0x3B, 0x47, 0x70});             // cmp rax, [rdi+112] budget
      jcc(e, kCcA, regular);                      // would overshoot: exit
      e.bs({0x48, 0xFF, 0x47, 0x58});             // inc qword [rdi+88] chains
      if (x.side_exit)
        e.bs({0x48, 0xFF, 0x47, 0x60});           // inc qword [rdi+96] side
      if (ring) e.bs({0x44, 0x89, 0x5F, 0x2C});   // mov [rdi+44], r11d
      e.b(0xE9);                                  // jmp successor entry
      site.target_rel = static_cast<uint32_t>(e.pos());
      e.imm32(0);
      tr.sites.push_back(site);
      regular.bind(e);
    }
    if (x.ip_in_ecx) {
      e.bs({0x89, 0x4F, 0x28});                   // mov [rdi+40], ecx
    } else {
      e.bs({0xC7, 0x47, 0x28});                   // mov dword [rdi+40], ip
      e.imm32(x.ip);
    }
    if (ring) e.bs({0x44, 0x89, 0x5F, 0x2C});     // mov [rdi+44], r11d
    if (env.self_block != nullptr) {
      e.bs({0x48, 0xBA});                         // movabs rdx, self block
      e.imm64(reinterpret_cast<uint64_t>(env.self_block));
      e.bs({0x48, 0x89, 0x57, 0x78});             // mov [rdi+120], rdx
    }
    e.b(0xB8);                                    // mov eax, code
    e.imm32(x.code);
    e.b(0xC3);                                    // ret
  };

  struct PendingStub {
    Label label;
    ExitSpec spec;
    uint32_t ring_addr = 0;
    bool write_ring = false; ///< single-op taken exits retire in the stub
    bool ecx_from_r9 = false; ///< dynamic bundle exits: ip = r9d
    bool used = false;
  };
  std::vector<PendingStub> bails(num_instrs);
  std::vector<PendingStub> takens(num_instrs);

  // Guard-failure bail for instr i: nothing of instr i has committed and its
  // ring entry is not yet written; the interpreter re-runs it from scratch.
  const auto bail_to = [&](uint8_t cc, uint16_t i, uint64_t ops_before) {
    PendingStub& s = bails[i];
    s.spec.retired = i;
    s.spec.ops = ops_before;
    s.spec.ip = instrs[i]->addr;
    s.spec.code = kExitBail | (static_cast<uint32_t>(i) << 8);
    s.used = true;
    jcc(e, cc, s.label);
  };

  // Computes one slot's EA into eax and emits the interpreter-exact
  // alignment/range guards (shared by the single-op and bundle paths).
  const auto guard_mem_ea = [&](const isa::DecodedOp& op, uint8_t size,
                                uint16_t i, uint64_t ops_before) {
    load_guest(e, kEax, op.ra);
    const uint32_t imm = static_cast<uint32_t>(op.imm);
    if (imm != 0) alu_eax_imm(e, 0, imm);  // eax = ra + imm (zero-extends)
    if (size == 4) {
      e.bs({0xA8, 0x03});                  // test al, 3 (alignment)
      bail_to(kCcNe, i, ops_before);
      alu_eax_imm(e, 7, env.ram_size - 4); // addr+3 >= size <=> > size-4
      bail_to(kCcA, i, ops_before);
    } else if (size == 2) {
      e.bs({0xA8, 0x01});
      bail_to(kCcNe, i, ops_before);
      alu_eax_imm(e, 7, env.ram_size - 2);
      bail_to(kCcA, i, ops_before);
    } else {
      alu_eax_imm(e, 7, env.ram_size);     // addr >= size
      bail_to(kCcAe, i, ops_before);
    }
  };

  // Memory access at [r8 + eax] with the result / source value in ecx.
  const auto emit_load_ecx = [&](uint8_t size, bool sign) {
    if (size == 4) {
      e.bs({0x41, 0x8B, 0x0C, 0x00});      // mov ecx, [r8+rax]
    } else if (size == 2) {
      e.bs({0x41, 0x0F, sign ? uint8_t{0xBF} : uint8_t{0xB7}, 0x0C, 0x00});
    } else {
      e.bs({0x41, 0x0F, sign ? uint8_t{0xBE} : uint8_t{0xB6}, 0x0C, 0x00});
    }
  };
  const auto emit_store_ecx = [&](uint8_t size) {
    if (size == 4) {
      e.bs({0x41, 0x89, 0x0C, 0x00});      // mov [r8+rax], ecx
    } else if (size == 2) {
      e.bs({0x66, 0x41, 0x89, 0x0C, 0x00});// mov [r8+rax], cx
    } else {
      e.bs({0x41, 0x88, 0x0C, 0x00});      // mov [r8+rax], cl
    }
  };

  // Divide helpers shared by both paths: divisor in ecx (already guarded
  // non-zero), dividend loaded from ra; result left in eax (quotient) and
  // edx (remainder).
  const auto emit_udiv = [&](const isa::DecodedOp& op) {
    load_guest(e, kEax, op.ra);
    e.bs({0x31, 0xD2});                    // xor edx, edx
    e.bs({0xF7, 0xF1});                    // div ecx
  };
  const auto emit_sdiv = [&](const isa::DecodedOp& op) {
    load_guest(e, kEax, op.ra);
    Label general, done;
    e.bs({0x83, 0xF9, 0xFF});              // cmp ecx, -1
    jcc(e, kCcNe, general);
    e.b(0x3D);                             // cmp eax, INT32_MIN
    e.imm32(0x80000000u);
    jcc(e, kCcNe, general);
    e.bs({0x31, 0xD2});                    // INT32_MIN / -1: quot = eax
    jmp(e, done);                          //   (already MIN), rem = 0
    general.bind(e);
    e.b(0x99);                             // cdq
    e.bs({0xF7, 0xF9});                    // idiv ecx
    done.bind(e);
  };

  // SIMOP fast paths (simop_fast_path set): the emitted sequence is the
  // libc handler verbatim — bump the call counter through the JitContext
  // pointer, then the op's own effect on LCG/heap state and r4.
  const auto emit_simop = [&](const isa::DecodedOp& op) {
    load_ctx_ptr_rdx(e, 128);              // mov rdx, [rdi+128] &calls_
    e.bs({0x48, 0xFF, 0x02});              // inc qword [rdx]
    switch (static_cast<isa::LibcOp>(op.imm)) {
      case isa::LibcOp::kFree:
        break;                             // bump allocator: free is a no-op
      case isa::LibcOp::kRand: {
        load_ctx_ptr_rdx(e, 136);          // mov rdx, [rdi+136] &rand_state_
        e.bs({0x8B, 0x02});                // mov eax, [rdx]
        e.bs({0x69, 0xC0});                // imul eax, eax, 1103515245
        e.imm32(1103515245u);
        e.b(0x05);                         // add eax, 12345
        e.imm32(12345u);
        e.bs({0x89, 0x02});                // mov [rdx], eax
        e.bs({0xC1, 0xE8, 0x10});          // shr eax, 16
        e.b(0x25);                         // and eax, 0x7FFF
        e.imm32(0x7FFFu);
        store_guest(e, isa::abi::kArg0, kEax);
        break;
      }
      case isa::LibcOp::kSrand: {
        load_guest(e, kEax, isa::abi::kArg0);
        load_ctx_ptr_rdx(e, 136);
        e.bs({0x89, 0x02});                // mov [rdx], eax
        break;
      }
      case isa::LibcOp::kMalloc: {
        Label null_out, done;
        load_guest(e, kEax, isa::abi::kArg0);
        e.bs({0x83, 0xC0, 0x07});          // add eax, 7
        e.bs({0x83, 0xE0, 0xF8});          // and eax, ~7
        load_ctx_ptr_rdx(e, 144);          // mov rdx, [rdi+144] &heap_ptr_
        e.bs({0x8B, 0x0A});                // mov ecx, [rdx] (heap_ptr)
        e.bs({0x01, 0xC8});                // add eax, ecx (eax = new cursor)
        jcc(e, kCcB, null_out);            // carry: heap_ptr + size wrapped
        e.bs({0x4C, 0x8B, 0x8F});          // mov r9, [rdi+152] &heap_end_
        e.imm32(152);
        e.bs({0x41, 0x3B, 0x01});          // cmp eax, [r9]
        jcc(e, kCcA, null_out);            // past the heap: out of memory
        store_guest(e, isa::abi::kArg0, kEcx); // r4 = old heap_ptr
        e.bs({0x89, 0x02});                // heap_ptr = new cursor
        jmp(e, done);
        null_out.bind(e);
        store_guest_imm(e, isa::abi::kArg0, 0);
        done.bind(e);
        break;
      }
      default:
        break; // unreachable: the decline pass only admits the set above
    }
  };

  uint64_t ops_before = 0; // operation count of instrs [0, i)
  bool falls_off_end = true;
  for (uint16_t i = 0; i < num_instrs; ++i) {
    const isa::DecodedInstr* di = instrs[i];
    const uint32_t seq_next = di->addr + di->size_bytes;
    const uint64_t retired = i + 1u;
    const uint64_t retired_ops = ops_before + di->num_ops;
    const bool last = i + 1 == num_instrs;
    falls_off_end = true;

    if (di->num_ops > 1) {
      // ---- VLIW issue group: two-phase read-before-write ----
      const OpPlan* bplans = &plans[static_cast<size_t>(i) * isa::kMaxSlots];
      int branches = 0;
      int static_branch = -1; // slot of the sole static-target branch
      for (uint8_t s = 0; s < di->num_ops; ++s) {
        const K k = bplans[s].k;
        if (k == K::CondBr || k == K::J || k == K::Jal || k == K::Jr ||
            k == K::Jalr) {
          static_branch = (k == K::Jr || k == K::Jalr) ? -2 : static_cast<int>(s);
          ++branches;
        }
      }
      if (branches > 1) static_branch = -2; // several branches: target dynamic

      // Phase A: every guard, slot order, before anything commits.
      for (uint8_t s = 0; s < di->num_ops; ++s) {
        const isa::DecodedOp& op = di->ops[s];
        switch (bplans[s].k) {
          case K::Load:
          case K::Store:
            guard_mem_ea(op, bplans[s].x, i, ops_before);
            break;
          case K::Div:
          case K::Divu:
          case K::Rem:
          case K::Remu:
            load_guest(e, kEcx, op.rb);
            e.bs({0x85, 0xC9});            // test ecx, ecx
            bail_to(kCcE, i, ops_before);  // d == 0: interpreter traps
            break;
          default:
            break;
        }
      }

      if (branches > 0) e.bs({0x45, 0x31, 0xC9}); // xor r9d, r9d

      // Phase B: compute every slot from the pre-bundle register file into
      // wbuf; memory effects and pending branches happen in slot order.
      // dests[s] records the register the commit phase writes (0 = none).
      uint8_t dests[isa::kMaxSlots] = {};
      for (uint8_t s = 0; s < di->num_ops; ++s) {
        const isa::DecodedOp& op = di->ops[s];
        const OpPlan plan = bplans[s];
        const uint32_t imm = static_cast<uint32_t>(op.imm);
        uint8_t result_host = kEax; // host register holding the slot result
        bool have_result = false;
        switch (plan.k) {
          case K::AluRR:
            if (op.rd == 0) break;
            load_guest(e, kEax, op.ra);
            if (plan.x == 0xAF) {
              e.b(0x0F); // imul eax, [rsi + rb*4]
              alu_eax_guest(e, 0xAF, op.rb);
            } else {
              alu_eax_guest(e, plan.x, op.rb);
              if (plan.sign) e.bs({0xF7, 0xD0}); // NOR: not eax
            }
            have_result = true;
            break;
          case K::Mulh:
          case K::Mulhu:
            if (op.rd == 0) break;
            load_guest(e, kEax, op.ra);
            e.b(0xF7); // one-operand (i)mul dword [rsi + rb*4] -> edx:eax
            e.b(static_cast<uint8_t>(0x40 | ((plan.k == K::Mulh ? 5 : 4) << 3) |
                                     0x6));
            e.b(static_cast<uint8_t>(op.rb * 4));
            result_host = kEdx;
            have_result = true;
            break;
          case K::Div:
          case K::Rem:
            load_guest(e, kEcx, op.rb);
            emit_sdiv(op);
            result_host = plan.k == K::Div ? kEax : kEdx;
            have_result = op.rd != 0;
            break;
          case K::Divu:
          case K::Remu:
            load_guest(e, kEcx, op.rb);
            emit_udiv(op);
            result_host = plan.k == K::Divu ? kEax : kEdx;
            have_result = op.rd != 0;
            break;
          case K::ShiftR:
            if (op.rd == 0) break;
            load_guest(e, kEcx, op.rb);    // hardware masks cl by 31,
            load_guest(e, kEax, op.ra);    // exactly like the semantics
            e.bs({0xD3, static_cast<uint8_t>(0xC0 | (plan.x << 3))});
            have_result = true;
            break;
          case K::ShiftI:
            if (op.rd == 0) break;
            load_guest(e, kEax, op.ra);
            e.bs({0xC1, static_cast<uint8_t>(0xC0 | (plan.x << 3)),
                  static_cast<uint8_t>(imm & 31u)});
            have_result = true;
            break;
          case K::SetRR:
            if (op.rd == 0) break;
            load_guest(e, kEax, op.ra);
            alu_eax_guest(e, 0x3B, op.rb); // cmp eax, [rb]
            set_bool_eax(e, plan.x);
            have_result = true;
            break;
          case K::SetRI:
            if (op.rd == 0) break;
            load_guest(e, kEax, op.ra);
            alu_eax_imm(e, 7, imm);        // cmp eax, imm
            set_bool_eax(e, plan.x);
            have_result = true;
            break;
          case K::AluRI:
            if (op.rd == 0) break;
            load_guest(e, kEax, op.ra);    // r0 reads as 0: generic form is
            alu_eax_imm(e, plan.x, imm);   // exact for the mov special case
            have_result = true;
            break;
          case K::Lui:
            if (op.rd == 0) break;
            e.b(0xB8);                     // mov eax, imm << 16
            e.imm32(imm << 16);
            have_result = true;
            break;
          case K::Orlo:
            if (op.rd == 0) break;
            load_guest(e, kEax, op.rd);    // rd_in | (imm & 0xFFFF)
            alu_eax_imm(e, 1, imm & 0xFFFFu);
            have_result = true;
            break;
          case K::Load:
            if (op.rd == 0) break;         // guarded in phase A, no effect
            load_guest(e, kEax, op.ra);
            if (imm != 0) alu_eax_imm(e, 0, imm);
            emit_load_ecx(plan.x, plan.sign);
            result_host = kEcx;
            have_result = true;
            break;
          case K::Store:
            load_guest(e, kEcx, op.rd);    // value = pre-bundle rd
            load_guest(e, kEax, op.ra);
            if (imm != 0) alu_eax_imm(e, 0, imm);
            emit_store_ecx(plan.x);        // committed immediately: later
            break;                         // slots' loads see it (slot order)
          case K::CondBr: {
            load_guest(e, kEax, op.ra);
            alu_eax_guest(e, 0x3B, op.rb); // cmp eax, [rb]
            Label skip;
            jcc(e, static_cast<uint8_t>(plan.x ^ 1u), skip); // inverted cc:
                                           // fall through = taken
            e.bs({0x49, 0xB9});            // movabs r9, (1<<32) | target
            e.imm64((uint64_t{1} << 32) | (seq_next + (imm << 2)));
            skip.bind(e);
            break;
          }
          case K::J:
          case K::Jal:
            if (plan.k == K::Jal) {
              e.b(0xB8);                   // link value -> wbuf, commits to r1
              e.imm32(seq_next);
              dests[s] = 1;
              spill_wbuf(e, s, kEax);
            }
            e.bs({0x49, 0xB9});            // movabs r9, (1<<32) | target
            e.imm64((uint64_t{1} << 32) | (imm << 2));
            break;
          case K::Jr:
          case K::Jalr:
            if (plan.k == K::Jalr && op.rd != 0) {
              e.b(0xB8);                   // link value -> wbuf
              e.imm32(seq_next);
              dests[s] = op.rd;
              spill_wbuf(e, s, kEax);
            }
            e.bs({0x44, 0x8B, 0x4E,        // mov r9d, [rsi + ra*4] (pre-
                  static_cast<uint8_t>(op.ra * 4)}); // bundle target value)
            e.bs({0x49, 0x0F, 0xBA, 0xE9, 0x20});    // bts r9, 32
            break;
          case K::Nop:
            break;
          case K::Simop:
          case K::No:
            return {}; // unreachable (decline pass), keep the compiler happy
        }
        if (have_result) {
          dests[s] = op.rd;
          spill_wbuf(e, s, result_host);
        }
      }

      // Phase C: commit wbuf to the register file in slot order (set_reg
      // skips r0; duplicate destinations resolve last-writer-wins).
      for (uint8_t s = 0; s < di->num_ops; ++s) {
        if (dests[s] == 0) continue;
        load_wbuf_eax(e, s);
        store_guest(e, dests[s], kEax);
      }

      ring_write(di->addr);

      // Resolve the pending branch: r9 nonzero = taken (last writer won).
      if (branches > 0) {
        e.bs({0x4D, 0x85, 0xC9});          // test r9, r9
        PendingStub& s = takens[i];
        s.spec.retired = retired;
        s.spec.ops = retired_ops;
        s.spec.code = kExitTaken | (static_cast<uint32_t>(i) << 8);
        s.spec.index = i;
        s.spec.kind = 1;
        s.spec.side_exit = !last;
        s.used = true;
        if (static_branch >= 0) {
          const isa::DecodedOp& bop = di->ops[static_branch];
          const uint32_t t = static_cast<uint32_t>(bop.imm) << 2;
          s.spec.ip = bplans[static_branch].k == K::CondBr ? seq_next + t : t;
          s.spec.chainable = true;
        } else {
          s.spec.ip_in_ecx = true;
          s.ecx_from_r9 = true;
        }
        jcc(e, kCcNe, s.label);
      }
      ops_before = retired_ops;
      continue;
    }

    // ---- single operation (kjit v1 template, v2 exits) ----
    const isa::DecodedOp& op = di->ops[0];
    const OpPlan plan = plans[static_cast<size_t>(i) * isa::kMaxSlots];
    const uint32_t imm = static_cast<uint32_t>(op.imm);

    switch (plan.k) {
      case K::AluRR: { // add sub and or xor nor mul
        if (op.rd == 0) break;
        load_guest(e, kEax, op.ra);
        if (plan.x == 0xAF) {
          e.b(0x0F); // imul eax, [rsi + rb*4]
          alu_eax_guest(e, 0xAF, op.rb);
        } else {
          alu_eax_guest(e, plan.x, op.rb);
          if (plan.sign) e.bs({0xF7, 0xD0}); // NOR: not eax
        }
        store_guest(e, op.rd, kEax);
        break;
      }
      case K::Mulh:
      case K::Mulhu: {
        if (op.rd == 0) break;
        load_guest(e, kEax, op.ra);
        // one-operand (i)mul dword [rsi + rb*4] -> edx:eax
        e.b(0xF7);
        e.b(static_cast<uint8_t>(0x40 | ((plan.k == K::Mulh ? 5 : 4) << 3) | 0x6));
        e.b(static_cast<uint8_t>(op.rb * 4));
        store_guest(e, op.rd, kEdx);
        break;
      }
      case K::Divu:
      case K::Remu: {
        load_guest(e, kEcx, op.rb);
        e.bs({0x85, 0xC9});                    // test ecx, ecx
        bail_to(kCcE, i, ops_before);          // d == 0: interpreter traps
        emit_udiv(op);
        if (op.rd != 0)
          store_guest(e, op.rd, plan.k == K::Divu ? kEax : kEdx);
        break;
      }
      case K::Div:
      case K::Rem: {
        load_guest(e, kEcx, op.rb);
        e.bs({0x85, 0xC9});                    // test ecx, ecx
        bail_to(kCcE, i, ops_before);          // d == 0: interpreter traps
        emit_sdiv(op);
        if (op.rd != 0)
          store_guest(e, op.rd, plan.k == K::Div ? kEax : kEdx);
        break;
      }
      case K::ShiftR: {
        if (op.rd == 0) break;
        load_guest(e, kEcx, op.rb);            // hardware masks cl by 31,
        load_guest(e, kEax, op.ra);            // exactly like the semantics
        e.bs({0xD3, static_cast<uint8_t>(0xC0 | (plan.x << 3))});
        store_guest(e, op.rd, kEax);
        break;
      }
      case K::ShiftI: {
        if (op.rd == 0) break;
        load_guest(e, kEax, op.ra);
        e.bs({0xC1, static_cast<uint8_t>(0xC0 | (plan.x << 3)),
              static_cast<uint8_t>(imm & 31u)});
        store_guest(e, op.rd, kEax);
        break;
      }
      case K::SetRR: {
        if (op.rd == 0) break;
        load_guest(e, kEax, op.ra);
        alu_eax_guest(e, 0x3B, op.rb);         // cmp eax, [rb]
        set_bool_eax(e, plan.x);
        store_guest(e, op.rd, kEax);
        break;
      }
      case K::SetRI: {
        if (op.rd == 0) break;
        load_guest(e, kEax, op.ra);
        alu_eax_imm(e, 7, imm);                // cmp eax, imm
        set_bool_eax(e, plan.x);
        store_guest(e, op.rd, kEax);
        break;
      }
      case K::AluRI: { // addi andi ori xori
        if (op.rd == 0) break;
        if (plan.x == 0 && op.ra == 0) {       // addi rd, r0, imm -> mov
          store_guest_imm(e, op.rd, imm);
        } else if (op.rd == op.ra) {           // fused read-modify-write
          alu_guest_imm(e, plan.x, op.rd, imm);
        } else {
          load_guest(e, kEax, op.ra);
          alu_eax_imm(e, plan.x, imm);
          store_guest(e, op.rd, kEax);
        }
        break;
      }
      case K::Lui:
        if (op.rd != 0) store_guest_imm(e, op.rd, imm << 16);
        break;
      case K::Orlo:
        if (op.rd != 0) alu_guest_imm(e, 1, op.rd, imm & 0xFFFFu);
        break;
      case K::Load: {
        guard_mem_ea(op, plan.x, i, ops_before);
        emit_load_ecx(plan.x, plan.sign);
        if (op.rd != 0) store_guest(e, op.rd, kEcx);
        break;
      }
      case K::Store: {
        load_guest(e, kEcx, op.rd);            // store value = rd_in
        guard_mem_ea(op, plan.x, i, ops_before);
        emit_store_ecx(plan.x);
        break;
      }
      case K::CondBr: {
        load_guest(e, kEax, op.ra);
        alu_eax_guest(e, 0x3B, op.rb);         // cmp eax, [rb]
        PendingStub& s = takens[i];
        s.spec.retired = retired;
        s.spec.ops = retired_ops;
        s.spec.ip = seq_next + (imm << 2);
        s.spec.code = kExitTaken | (static_cast<uint32_t>(i) << 8);
        s.spec.chainable = true;
        s.spec.kind = 1;
        s.spec.index = i;
        s.spec.side_exit = !last;
        s.ring_addr = di->addr;
        s.write_ring = true;
        s.used = true;
        jcc(e, plan.x, s.label);
        break;                                 // not taken: fall through
      }
      case K::J:
      case K::Jal: {
        if (plan.k == K::Jal)
          store_guest_imm(e, 1, seq_next);     // link register r1
        ring_write(di->addr);
        emit_exit({retired, retired_ops, false, imm << 2,
                   kExitTaken | (static_cast<uint32_t>(i) << 8), true, 1, i,
                   !last});
        falls_off_end = false;
        break;
      }
      case K::Jr:
      case K::Jalr: {
        load_guest(e, kEcx, op.ra);            // target: ra *before* the link
        if (plan.k == K::Jalr && op.rd != 0)   // write (rd == ra is legal)
          store_guest_imm(e, op.rd, seq_next);
        ring_write(di->addr);
        emit_exit({retired, retired_ops, true, 0,
                   kExitTaken | (static_cast<uint32_t>(i) << 8), false, 1, i,
                   false});
        falls_off_end = false;
        break;
      }
      case K::Simop:
        emit_simop(op);
        break;
      case K::Nop:
        break;
      case K::No:
        return {}; // unreachable (decline pass), keep the compiler happy
    }

    if (falls_off_end) ring_write(di->addr);
    ops_before = retired_ops;
  }

  // Fall-through exit: the trace ran to its end without a taken branch.
  if (falls_off_end) {
    const isa::DecodedInstr* fin = instrs[num_instrs - 1];
    emit_exit({num_instrs, ops_before, false, fin->addr + fin->size_bytes,
               kExitFallthrough, true, 0, 0, false});
  }

  // Out-of-line stubs (taken exits first: they are hot, bails are cold).
  for (uint16_t i = 0; i < num_instrs; ++i) {
    if (takens[i].used) {
      PendingStub& s = takens[i];
      s.label.bind(e);
      if (s.write_ring) ring_write(s.ring_addr);
      if (s.ecx_from_r9) e.bs({0x44, 0x89, 0xC9}); // mov ecx, r9d
      emit_exit(s.spec);
    }
  }
  for (uint16_t i = 0; i < num_instrs; ++i) {
    if (bails[i].used) {
      PendingStub& s = bails[i];
      s.label.bind(e);
      emit_exit(s.spec);
    }
  }

  tr.code = std::move(e.out);
  return tr;
}

#else // !KSIM_JIT_HOST

Translation translate_block(const isa::DecodedInstr* const*, uint16_t,
                            const TranslateEnv&) {
  return {};
}

#endif

} // namespace ksim::jit
