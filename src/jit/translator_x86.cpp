// Template translator: specializes each DecodedInstr of a superblock trace
// into a hand-assembled x86-64 sequence (DESIGN.md §9).  No assembler
// library is used; every encoding below is written out byte by byte.
//
// Guest-state ABI (all caller-saved; generated code needs no stack frame):
//   rdi  = JitContext* (argument, never clobbered)
//   rsi  = guest register file base (regs[0..31], u32 each -> disp8 reaches all)
//   r8   = simulated RAM base
//   r10  = IP-history ring base        (only when the ring is enabled)
//   r11d = IP-history ring cursor      (only when the ring is enabled)
//   eax, ecx, edx = scratch
//
// Per-instruction template shape:
//   [guards -> bail stub]   traps must be re-raised by the interpreter, so
//                           any possibly-faulting access is guarded by the
//                           exact interpreter fault condition and bails
//                           *before* the instruction writes any state;
//   [compute + commit]      register results store straight into the guest
//                           register file (single-op instructions have no
//                           cross-slot read-before-write hazard);
//   [branch -> taken stub]  conditional exits jump to a per-instruction stub;
//   [ring write]            the retiring instruction is appended to the
//                           IP-history ring, matching record_ip() exactly.
//
// Exit stubs write the retired instruction/operation counts, the final IP
// and the ring cursor into the JitContext and return kind|(index<<8) (see
// jit.h).  Bail stubs report the *not yet retired* instruction, so the
// interpreter re-executes it from pristine state and raises the exact trap.
#include "jit/jit.h"

#include <string_view>

namespace ksim::jit {

#ifdef KSIM_JIT_HOST

static_assert(offsetof(JitContext, regs) == 0);
static_assert(offsetof(JitContext, ram) == 8);
static_assert(offsetof(JitContext, ring) == 16);
static_assert(offsetof(JitContext, executed) == 24);
static_assert(offsetof(JitContext, ops) == 32);
static_assert(offsetof(JitContext, ip) == 40);
static_assert(offsetof(JitContext, ring_pos) == 44);
static_assert(offsetof(JitContext, ring_full) == 48);

namespace {

// -- tiny emitter -----------------------------------------------------------

struct Emitter {
  std::vector<uint8_t> out;

  void b(uint8_t v) { out.push_back(v); }
  void bs(std::initializer_list<uint8_t> v) { out.insert(out.end(), v); }
  void imm32(uint32_t v) {
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
  }
  size_t pos() const { return out.size(); }
  void patch32(size_t at, uint32_t v) {
    out[at] = static_cast<uint8_t>(v);
    out[at + 1] = static_cast<uint8_t>(v >> 8);
    out[at + 2] = static_cast<uint8_t>(v >> 16);
    out[at + 3] = static_cast<uint8_t>(v >> 24);
  }
};

/// Forward-reference label: jumps emit a rel32 placeholder, bind() patches.
struct Label {
  int32_t bound = -1;
  std::vector<size_t> fixups;

  void jump_here_from(Emitter& e) {
    if (bound >= 0) {
      e.imm32(static_cast<uint32_t>(bound - static_cast<int32_t>(e.pos()) - 4));
    } else {
      fixups.push_back(e.pos());
      e.imm32(0);
    }
  }
  void bind(Emitter& e) {
    bound = static_cast<int32_t>(e.pos());
    for (const size_t at : fixups)
      e.patch32(at, static_cast<uint32_t>(bound - static_cast<int32_t>(at) - 4));
    fixups.clear();
  }
};

// x86 condition codes (for 0F 8x jcc / 0F 9x setcc).
enum Cc : uint8_t {
  kCcB = 0x2,  // unsigned <
  kCcAe = 0x3, // unsigned >=
  kCcE = 0x4,
  kCcNe = 0x5,
  kCcBe = 0x6, // unsigned <=
  kCcA = 0x7,  // unsigned >
  kCcL = 0xC,  // signed <
  kCcGe = 0xD,
  kCcLe = 0xE,
};

void jcc(Emitter& e, uint8_t cc, Label& l) {
  e.b(0x0F);
  e.b(static_cast<uint8_t>(0x80 | cc));
  l.jump_here_from(e);
}
void jmp(Emitter& e, Label& l) {
  e.b(0xE9);
  l.jump_here_from(e);
}

// Scratch register numbers (host).
constexpr uint8_t kEax = 0, kEcx = 1, kEdx = 2;

uint8_t modrm_regfile(uint8_t host_reg, uint8_t guest_reg) {
  (void)guest_reg;
  return static_cast<uint8_t>(0x40 | (host_reg << 3) | 0x6); // [rsi+disp8]
}

/// mov host32, [rsi + guest*4]
void load_guest(Emitter& e, uint8_t host, uint8_t g) {
  e.b(0x8B);
  e.b(modrm_regfile(host, g));
  e.b(static_cast<uint8_t>(g * 4));
}
/// mov [rsi + guest*4], host32
void store_guest(Emitter& e, uint8_t g, uint8_t host) {
  e.b(0x89);
  e.b(modrm_regfile(host, g));
  e.b(static_cast<uint8_t>(g * 4));
}
/// mov dword [rsi + guest*4], imm32
void store_guest_imm(Emitter& e, uint8_t g, uint32_t imm) {
  e.b(0xC7);
  e.b(modrm_regfile(0, g));
  e.b(static_cast<uint8_t>(g * 4));
  e.imm32(imm);
}
/// <alu> eax, [rsi + guest*4]  (opcode: 03 add, 2B sub, 23 and, 0B or,
/// 33 xor, 3B cmp)
void alu_eax_guest(Emitter& e, uint8_t opcode, uint8_t g) {
  e.b(opcode);
  e.b(modrm_regfile(kEax, g));
  e.b(static_cast<uint8_t>(g * 4));
}
/// <alu> eax, imm32 via 81 /ext (ext: 0 add, 1 or, 4 and, 5 sub, 6 xor, 7 cmp)
void alu_eax_imm(Emitter& e, uint8_t ext, uint32_t imm) {
  e.b(0x81);
  e.b(static_cast<uint8_t>(0xC0 | (ext << 3)));
  e.imm32(imm);
}
/// <alu> dword [rsi + guest*4], imm32 via 81 /ext (rd == ra fused form)
void alu_guest_imm(Emitter& e, uint8_t ext, uint8_t g, uint32_t imm) {
  e.b(0x81);
  e.b(static_cast<uint8_t>(0x40 | (ext << 3) | 0x6));
  e.b(static_cast<uint8_t>(g * 4));
  e.imm32(imm);
}
/// setcc al; movzx eax, al
void set_bool_eax(Emitter& e, uint8_t cc) {
  e.bs({0x0F, static_cast<uint8_t>(0x90 | cc), 0xC0, 0x0F, 0xB6, 0xC0});
}

} // namespace

std::vector<uint8_t> translate_block(const isa::DecodedInstr* const* instrs,
                                     uint16_t num_instrs,
                                     const TranslateEnv& env) {
  using std::string_view;

  enum class K {
    AluRR,   // add..sleu, mul (two-operand host forms)
    Mulh, Mulhu, Div, Divu, Rem, Remu,
    AluRI,   // addi/andi/ori/xori (81 /ext forms)
    ShiftR, ShiftI, SetRR, SetRI,
    Lui, Orlo,
    Load, Store,
    CondBr, J, Jal, Jr, Jalr, Nop,
    No,      // untranslatable
  };
  struct OpPlan {
    K k = K::No;
    uint8_t x = 0; ///< ALU opcode / 81-ext / shift-ext / cc / access size
    bool sign = false;
  };

  const auto classify = [](string_view n) -> OpPlan {
    if (n == "ADD") return {K::AluRR, 0x03, false};
    if (n == "SUB") return {K::AluRR, 0x2B, false};
    if (n == "AND") return {K::AluRR, 0x23, false};
    if (n == "OR") return {K::AluRR, 0x0B, false};
    if (n == "XOR") return {K::AluRR, 0x33, false};
    if (n == "NOR") return {K::AluRR, 0x0B, true}; // or + not
    if (n == "MUL") return {K::AluRR, 0xAF, true}; // 0F AF imul (two-byte)
    if (n == "MULH") return {K::Mulh, 0, false};
    if (n == "MULHU") return {K::Mulhu, 0, false};
    if (n == "DIV") return {K::Div, 0, false};
    if (n == "DIVU") return {K::Divu, 0, false};
    if (n == "REM") return {K::Rem, 0, false};
    if (n == "REMU") return {K::Remu, 0, false};
    if (n == "SLL") return {K::ShiftR, 4, false};
    if (n == "SRL") return {K::ShiftR, 5, false};
    if (n == "SRA") return {K::ShiftR, 7, false};
    if (n == "SLLI") return {K::ShiftI, 4, false};
    if (n == "SRLI") return {K::ShiftI, 5, false};
    if (n == "SRAI") return {K::ShiftI, 7, false};
    if (n == "SLT") return {K::SetRR, kCcL, false};
    if (n == "SLTU") return {K::SetRR, kCcB, false};
    if (n == "SEQ") return {K::SetRR, kCcE, false};
    if (n == "SNE") return {K::SetRR, kCcNe, false};
    if (n == "SLE") return {K::SetRR, kCcLe, false};
    if (n == "SLEU") return {K::SetRR, kCcBe, false};
    if (n == "SLTI") return {K::SetRI, kCcL, false};
    if (n == "SLTIU") return {K::SetRI, kCcB, false};
    if (n == "ADDI") return {K::AluRI, 0, false};
    if (n == "ANDI") return {K::AluRI, 4, false};
    if (n == "ORI") return {K::AluRI, 1, false};
    if (n == "XORI") return {K::AluRI, 6, false};
    if (n == "LUI") return {K::Lui, 0, false};
    if (n == "ORLO") return {K::Orlo, 0, false};
    if (n == "LB") return {K::Load, 1, true};
    if (n == "LBU") return {K::Load, 1, false};
    if (n == "LH") return {K::Load, 2, true};
    if (n == "LHU") return {K::Load, 2, false};
    if (n == "LW") return {K::Load, 4, false};
    if (n == "SB") return {K::Store, 1, false};
    if (n == "SH") return {K::Store, 2, false};
    if (n == "SW") return {K::Store, 4, false};
    if (n == "BEQ") return {K::CondBr, kCcE, false};
    if (n == "BNE") return {K::CondBr, kCcNe, false};
    if (n == "BLT") return {K::CondBr, kCcL, false};
    if (n == "BGE") return {K::CondBr, kCcGe, false};
    if (n == "BLTU") return {K::CondBr, kCcB, false};
    if (n == "BGEU") return {K::CondBr, kCcAe, false};
    if (n == "J") return {K::J, 0, false};
    if (n == "JAL") return {K::Jal, 0, false};
    if (n == "JR") return {K::Jr, 0, false};
    if (n == "JALR") return {K::Jalr, 0, false};
    if (n == "NOP") return {K::Nop, 0, false};
    return {K::No, 0, false}; // SIMOP, HALT, SWITCHTARGET, anything unknown
  };

  // -- decline pass ---------------------------------------------------------
  // v1 scope: single-operation instructions only.  VLIW groups (num_ops > 1)
  // need the §V-B read-before-write buffer across slots; they stay on the
  // interpreter (DESIGN.md §9 lists this as the next extension).
  if (num_instrs == 0) return {};
  std::vector<OpPlan> plans(num_instrs);
  for (uint16_t i = 0; i < num_instrs; ++i) {
    const isa::DecodedInstr* di = instrs[i];
    if (di->num_ops != 1) return {};
    const isa::DecodedOp& op = di->ops[0];
    if (op.rd > 31 || op.ra > 31 || op.rb > 31) return {};
    plans[i] = classify(op.info->name);
    if (plans[i].k == K::No) return {};
  }

  const bool ring = env.ring_size > 0;
  Emitter e;

  // -- prologue -------------------------------------------------------------
  e.bs({0x48, 0x8B, 0x37});             // mov rsi, [rdi]       (guest regs)
  e.bs({0x4C, 0x8B, 0x47, 0x08});       // mov r8,  [rdi+8]     (ram)
  if (ring) {
    e.bs({0x4C, 0x8B, 0x57, 0x10});     // mov r10, [rdi+16]    (ring base)
    e.bs({0x44, 0x8B, 0x5F, 0x2C});     // mov r11d,[rdi+44]    (ring cursor)
  }

  // Appends the retiring instruction to the IP-history ring (record_ip()).
  const auto ring_write = [&](uint32_t addr) {
    if (!ring) return;
    e.bs({0x43, 0xC7, 0x04, 0x9A});     // mov dword [r10+r11*4], addr
    e.imm32(addr);
    e.bs({0x41, 0xFF, 0xC3});           // inc r11d
    e.bs({0x41, 0x81, 0xFB});           // cmp r11d, ring_size
    e.imm32(env.ring_size);
    e.bs({0x75, 0x0A});                 // jne +10 (skip wrap)
    e.bs({0x45, 0x31, 0xDB});           // xor r11d, r11d
    e.bs({0xC7, 0x47, 0x30});           // mov dword [rdi+48], 1 (ring_full)
    e.imm32(1);
  };

  // Exit epilogue: retire counts, final IP (constant or from ecx), ring
  // cursor, exit code.  `executed`/`ops` are per-call absolutes (the stubs
  // overwrite, they never accumulate), so the dispatcher reads clean deltas.
  const auto emit_exit = [&](uint64_t executed, uint64_t ops, bool ip_in_ecx,
                             uint32_t ip_const, uint32_t code) {
    e.bs({0x48, 0xC7, 0x47, 0x18});     // mov qword [rdi+24], executed
    e.imm32(static_cast<uint32_t>(executed));
    e.bs({0x48, 0xC7, 0x47, 0x20});     // mov qword [rdi+32], ops
    e.imm32(static_cast<uint32_t>(ops));
    if (ip_in_ecx) {
      e.bs({0x89, 0x4F, 0x28});         // mov [rdi+40], ecx
    } else {
      e.bs({0xC7, 0x47, 0x28});         // mov dword [rdi+40], ip
      e.imm32(ip_const);
    }
    if (ring) e.bs({0x44, 0x89, 0x5F, 0x2C}); // mov [rdi+44], r11d
    e.b(0xB8);                          // mov eax, code
    e.imm32(code);
    e.b(0xC3);                          // ret
  };

  struct PendingStub {
    Label label;
    uint64_t executed = 0;
    uint64_t ops = 0;
    uint32_t ip = 0;
    uint32_t code = 0;
    uint32_t ring_addr = 0;
    bool write_ring = false; ///< taken exits retire the instr in the stub
    bool used = false;
  };
  std::vector<PendingStub> bails(num_instrs);
  std::vector<PendingStub> takens(num_instrs);

  // Guard-failure bail for instr i: nothing of instr i has committed and its
  // ring entry is not yet written; the interpreter re-runs it from scratch.
  const auto bail_to = [&](uint8_t cc, uint16_t i, uint64_t ops_before) {
    PendingStub& s = bails[i];
    s.executed = i;
    s.ops = ops_before;
    s.ip = instrs[i]->addr;
    s.code = kExitBail | (static_cast<uint32_t>(i) << 8);
    s.used = true;
    jcc(e, cc, s.label);
  };

  uint64_t ops_before = 0; // operation count of instrs [0, i)
  bool falls_off_end = true;
  for (uint16_t i = 0; i < num_instrs; ++i) {
    const isa::DecodedInstr* di = instrs[i];
    const isa::DecodedOp& op = di->ops[0];
    const OpPlan plan = plans[i];
    const uint32_t seq_next = di->addr + di->size_bytes;
    const uint32_t imm = static_cast<uint32_t>(op.imm);
    const uint64_t retired = i + 1u;
    const uint64_t retired_ops = ops_before + di->num_ops;
    falls_off_end = true;

    switch (plan.k) {
      case K::AluRR: { // add sub and or xor nor mul
        if (op.rd == 0) break;
        load_guest(e, kEax, op.ra);
        if (plan.x == 0xAF) {
          e.b(0x0F); // imul eax, [rsi + rb*4]
          alu_eax_guest(e, 0xAF, op.rb);
        } else {
          alu_eax_guest(e, plan.x, op.rb);
          if (plan.sign) e.bs({0xF7, 0xD0}); // NOR: not eax
        }
        store_guest(e, op.rd, kEax);
        break;
      }
      case K::Mulh:
      case K::Mulhu: {
        if (op.rd == 0) break;
        load_guest(e, kEax, op.ra);
        // one-operand (i)mul dword [rsi + rb*4] -> edx:eax
        e.b(0xF7);
        e.b(static_cast<uint8_t>(0x40 | ((plan.k == K::Mulh ? 5 : 4) << 3) | 0x6));
        e.b(static_cast<uint8_t>(op.rb * 4));
        store_guest(e, op.rd, kEdx);
        break;
      }
      case K::Divu:
      case K::Remu: {
        load_guest(e, kEcx, op.rb);
        e.bs({0x85, 0xC9});                    // test ecx, ecx
        bail_to(kCcE, i, ops_before);          // d == 0: interpreter traps
        load_guest(e, kEax, op.ra);
        e.bs({0x31, 0xD2});                    // xor edx, edx
        e.bs({0xF7, 0xF1});                    // div ecx
        if (op.rd != 0)
          store_guest(e, op.rd, plan.k == K::Divu ? kEax : kEdx);
        break;
      }
      case K::Div:
      case K::Rem: {
        load_guest(e, kEcx, op.rb);
        e.bs({0x85, 0xC9});                    // test ecx, ecx
        bail_to(kCcE, i, ops_before);          // d == 0: interpreter traps
        load_guest(e, kEax, op.ra);
        Label general, done;
        e.bs({0x83, 0xF9, 0xFF});              // cmp ecx, -1
        jcc(e, kCcNe, general);
        e.b(0x3D);                             // cmp eax, INT32_MIN
        e.imm32(0x80000000u);
        jcc(e, kCcNe, general);
        e.bs({0x31, 0xD2});                    // INT32_MIN / -1: quot = eax
        jmp(e, done);                          //   (already MIN), rem = 0
        general.bind(e);
        e.b(0x99);                             // cdq
        e.bs({0xF7, 0xF9});                    // idiv ecx
        done.bind(e);
        if (op.rd != 0)
          store_guest(e, op.rd, plan.k == K::Div ? kEax : kEdx);
        break;
      }
      case K::ShiftR: {
        if (op.rd == 0) break;
        load_guest(e, kEcx, op.rb);            // hardware masks cl by 31,
        load_guest(e, kEax, op.ra);            // exactly like the semantics
        e.bs({0xD3, static_cast<uint8_t>(0xC0 | (plan.x << 3))});
        store_guest(e, op.rd, kEax);
        break;
      }
      case K::ShiftI: {
        if (op.rd == 0) break;
        load_guest(e, kEax, op.ra);
        e.bs({0xC1, static_cast<uint8_t>(0xC0 | (plan.x << 3)),
              static_cast<uint8_t>(imm & 31u)});
        store_guest(e, op.rd, kEax);
        break;
      }
      case K::SetRR: {
        if (op.rd == 0) break;
        load_guest(e, kEax, op.ra);
        alu_eax_guest(e, 0x3B, op.rb);         // cmp eax, [rb]
        set_bool_eax(e, plan.x);
        store_guest(e, op.rd, kEax);
        break;
      }
      case K::SetRI: {
        if (op.rd == 0) break;
        load_guest(e, kEax, op.ra);
        alu_eax_imm(e, 7, imm);                // cmp eax, imm
        set_bool_eax(e, plan.x);
        store_guest(e, op.rd, kEax);
        break;
      }
      case K::AluRI: { // addi andi ori xori
        if (op.rd == 0) break;
        if (plan.x == 0 && op.ra == 0) {       // addi rd, r0, imm -> mov
          store_guest_imm(e, op.rd, imm);
        } else if (op.rd == op.ra) {           // fused read-modify-write
          alu_guest_imm(e, plan.x, op.rd, imm);
        } else {
          load_guest(e, kEax, op.ra);
          alu_eax_imm(e, plan.x, imm);
          store_guest(e, op.rd, kEax);
        }
        break;
      }
      case K::Lui:
        if (op.rd != 0) store_guest_imm(e, op.rd, imm << 16);
        break;
      case K::Orlo:
        if (op.rd != 0) alu_guest_imm(e, 1, op.rd, imm & 0xFFFFu);
        break;
      case K::Load: {
        load_guest(e, kEax, op.ra);
        if (imm != 0) alu_eax_imm(e, 0, imm);  // eax = ra + imm (zero-extends)
        if (plan.x == 4) {
          e.bs({0xA8, 0x03});                  // test al, 3 (alignment)
          bail_to(kCcNe, i, ops_before);
          alu_eax_imm(e, 7, env.ram_size - 4); // addr+3 >= size <=> > size-4
          bail_to(kCcA, i, ops_before);
          e.bs({0x41, 0x8B, 0x0C, 0x00});      // mov ecx, [r8+rax]
        } else if (plan.x == 2) {
          e.bs({0xA8, 0x01});
          bail_to(kCcNe, i, ops_before);
          alu_eax_imm(e, 7, env.ram_size - 2);
          bail_to(kCcA, i, ops_before);
          e.bs({0x41, 0x0F, plan.sign ? uint8_t{0xBF} : uint8_t{0xB7}, 0x0C,
                0x00});                        // movsx/movzx ecx, word [r8+rax]
        } else {
          alu_eax_imm(e, 7, env.ram_size);     // addr >= size
          bail_to(kCcAe, i, ops_before);
          e.bs({0x41, 0x0F, plan.sign ? uint8_t{0xBE} : uint8_t{0xB6}, 0x0C,
                0x00});                        // movsx/movzx ecx, byte [r8+rax]
        }
        if (op.rd != 0) store_guest(e, op.rd, kEcx);
        break;
      }
      case K::Store: {
        load_guest(e, kEcx, op.rd);            // store value = rd_in
        load_guest(e, kEax, op.ra);
        if (imm != 0) alu_eax_imm(e, 0, imm);
        if (plan.x == 4) {
          e.bs({0xA8, 0x03});
          bail_to(kCcNe, i, ops_before);
          alu_eax_imm(e, 7, env.ram_size - 4);
          bail_to(kCcA, i, ops_before);
          e.bs({0x41, 0x89, 0x0C, 0x00});      // mov [r8+rax], ecx
        } else if (plan.x == 2) {
          e.bs({0xA8, 0x01});
          bail_to(kCcNe, i, ops_before);
          alu_eax_imm(e, 7, env.ram_size - 2);
          bail_to(kCcA, i, ops_before);
          e.bs({0x66, 0x41, 0x89, 0x0C, 0x00});// mov [r8+rax], cx
        } else {
          alu_eax_imm(e, 7, env.ram_size);
          bail_to(kCcAe, i, ops_before);
          e.bs({0x41, 0x88, 0x0C, 0x00});      // mov [r8+rax], cl
        }
        break;
      }
      case K::CondBr: {
        load_guest(e, kEax, op.ra);
        alu_eax_guest(e, 0x3B, op.rb);         // cmp eax, [rb]
        PendingStub& s = takens[i];
        s.executed = retired;
        s.ops = retired_ops;
        s.ip = seq_next + (imm << 2);
        s.code = kExitTaken | (static_cast<uint32_t>(i) << 8);
        s.ring_addr = di->addr;
        s.write_ring = true;
        s.used = true;
        jcc(e, plan.x, s.label);
        break;                                 // not taken: fall through
      }
      case K::J:
      case K::Jal: {
        if (plan.k == K::Jal)
          store_guest_imm(e, 1, seq_next);     // link register r1
        ring_write(di->addr);
        emit_exit(retired, retired_ops, false, imm << 2,
                  kExitTaken | (static_cast<uint32_t>(i) << 8));
        falls_off_end = false;
        break;
      }
      case K::Jr:
      case K::Jalr: {
        load_guest(e, kEcx, op.ra);            // target: ra *before* the link
        if (plan.k == K::Jalr && op.rd != 0)   // write (rd == ra is legal)
          store_guest_imm(e, op.rd, seq_next);
        ring_write(di->addr);
        emit_exit(retired, retired_ops, true, 0,
                  kExitTaken | (static_cast<uint32_t>(i) << 8));
        falls_off_end = false;
        break;
      }
      case K::Nop:
        break;
      case K::No:
        return {}; // unreachable (decline pass), keep the compiler happy
    }

    if (falls_off_end) ring_write(di->addr);
    ops_before = retired_ops;
  }

  // Fall-through exit: the trace ran to its end without a taken branch.
  if (falls_off_end) {
    const isa::DecodedInstr* last = instrs[num_instrs - 1];
    emit_exit(num_instrs, ops_before, false, last->addr + last->size_bytes,
              kExitFallthrough);
  }

  // Out-of-line stubs (taken exits first: they are hot, bails are cold).
  for (uint16_t i = 0; i < num_instrs; ++i) {
    if (takens[i].used) {
      PendingStub& s = takens[i];
      s.label.bind(e);
      if (s.write_ring) ring_write(s.ring_addr);
      emit_exit(s.executed, s.ops, false, s.ip, s.code);
    }
  }
  for (uint16_t i = 0; i < num_instrs; ++i) {
    if (bails[i].used) {
      PendingStub& s = bails[i];
      s.label.bind(e);
      emit_exit(s.executed, s.ops, false, s.ip, s.code);
    }
  }

  return std::move(e.out);
}

#else // !KSIM_JIT_HOST

std::vector<uint8_t> translate_block(const isa::DecodedInstr* const*, uint16_t,
                                     const TranslateEnv&) {
  return {};
}

#endif

} // namespace ksim::jit
