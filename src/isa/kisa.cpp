#include "isa/kisa.h"

#include "adl/parser.h"
#include "isa/kisa_adl.h"
#include "isa/targetgen.h"
#include "support/error.h"

namespace ksim::isa {

const IsaSet& kisa() {
  static const IsaSet set = TargetGen::build(adl::parse_adl_or_throw(kisa_adl_text(), "kisa.adl"));
  return set;
}

std::string_view libc_op_name(LibcOp op) {
  switch (op) {
    case LibcOp::kExit: return "exit";
    case LibcOp::kPutchar: return "putchar";
    case LibcOp::kPuts: return "puts";
    case LibcOp::kPrintf: return "printf";
    case LibcOp::kMalloc: return "malloc";
    case LibcOp::kFree: return "free";
    case LibcOp::kMemcpy: return "memcpy";
    case LibcOp::kMemset: return "memset";
    case LibcOp::kStrlen: return "strlen";
    case LibcOp::kStrcmp: return "strcmp";
    case LibcOp::kStrcpy: return "strcpy";
    case LibcOp::kRand: return "rand";
    case LibcOp::kSrand: return "srand";
    case LibcOp::kAbort: return "abort";
    case LibcOp::kPutInt: return "put_int";
    case LibcOp::kPutHex: return "put_hex";
    case LibcOp::kCount: break;
  }
  throw Error("libc_op_name: invalid LibcOp");
}

} // namespace ksim::isa
