#include "isa/semantics.h"

#include <string>
#include <unordered_map>

namespace ksim::isa {
namespace {

// Shorthands for operand access inside simulation functions.  All reads go
// through the architectural register file (values before the instruction);
// all register writes go through the write-back buffer (committed after all
// slots executed), implementing the read-before-write semantics of §V-B.
inline uint32_t ra(ExecCtx& c) { return c.st->reg(c.op->ra); }
inline uint32_t rb(ExecCtx& c) { return c.st->reg(c.op->rb); }
inline uint32_t rd_in(ExecCtx& c) { return c.st->reg(c.op->rd); }
inline int32_t imm(ExecCtx& c) { return c.op->imm; }
inline void out(ExecCtx& c, uint32_t v) { c.write_reg(c.op->rd, v); }

inline int32_t s(uint32_t v) { return static_cast<int32_t>(v); }

// --- register-register ALU ---------------------------------------------------
void sem_add(ExecCtx& c) { out(c, ra(c) + rb(c)); }
void sem_sub(ExecCtx& c) { out(c, ra(c) - rb(c)); }
void sem_and(ExecCtx& c) { out(c, ra(c) & rb(c)); }
void sem_or(ExecCtx& c) { out(c, ra(c) | rb(c)); }
void sem_xor(ExecCtx& c) { out(c, ra(c) ^ rb(c)); }
void sem_nor(ExecCtx& c) { out(c, ~(ra(c) | rb(c))); }
void sem_sll(ExecCtx& c) { out(c, ra(c) << (rb(c) & 31u)); }
void sem_srl(ExecCtx& c) { out(c, ra(c) >> (rb(c) & 31u)); }
void sem_sra(ExecCtx& c) { out(c, static_cast<uint32_t>(s(ra(c)) >> (rb(c) & 31u))); }
void sem_slt(ExecCtx& c) { out(c, s(ra(c)) < s(rb(c)) ? 1u : 0u); }
void sem_sltu(ExecCtx& c) { out(c, ra(c) < rb(c) ? 1u : 0u); }
void sem_seq(ExecCtx& c) { out(c, ra(c) == rb(c) ? 1u : 0u); }
void sem_sne(ExecCtx& c) { out(c, ra(c) != rb(c) ? 1u : 0u); }
void sem_sle(ExecCtx& c) { out(c, s(ra(c)) <= s(rb(c)) ? 1u : 0u); }
void sem_sleu(ExecCtx& c) { out(c, ra(c) <= rb(c) ? 1u : 0u); }
void sem_mul(ExecCtx& c) { out(c, ra(c) * rb(c)); }
void sem_mulh(ExecCtx& c) {
  const int64_t p = static_cast<int64_t>(s(ra(c))) * static_cast<int64_t>(s(rb(c)));
  out(c, static_cast<uint32_t>(static_cast<uint64_t>(p) >> 32));
}
void sem_mulhu(ExecCtx& c) {
  const uint64_t p = static_cast<uint64_t>(ra(c)) * static_cast<uint64_t>(rb(c));
  out(c, static_cast<uint32_t>(p >> 32));
}
void sem_div(ExecCtx& c) {
  const int32_t d = s(rb(c));
  if (d == 0) {
    c.st->raise_trap("integer division by zero");
    return;
  }
  const int32_t n = s(ra(c));
  if (n == INT32_MIN && d == -1) {
    out(c, static_cast<uint32_t>(INT32_MIN)); // wraps, like most hardware
    return;
  }
  out(c, static_cast<uint32_t>(n / d));
}
void sem_divu(ExecCtx& c) {
  const uint32_t d = rb(c);
  if (d == 0) {
    c.st->raise_trap("integer division by zero");
    return;
  }
  out(c, ra(c) / d);
}
void sem_rem(ExecCtx& c) {
  const int32_t d = s(rb(c));
  if (d == 0) {
    c.st->raise_trap("integer remainder by zero");
    return;
  }
  const int32_t n = s(ra(c));
  if (n == INT32_MIN && d == -1) {
    out(c, 0);
    return;
  }
  out(c, static_cast<uint32_t>(n % d));
}
void sem_remu(ExecCtx& c) {
  const uint32_t d = rb(c);
  if (d == 0) {
    c.st->raise_trap("integer remainder by zero");
    return;
  }
  out(c, ra(c) % d);
}

// --- immediate ALU -------------------------------------------------------------
void sem_addi(ExecCtx& c) { out(c, ra(c) + static_cast<uint32_t>(imm(c))); }
void sem_andi(ExecCtx& c) { out(c, ra(c) & static_cast<uint32_t>(imm(c))); }
void sem_ori(ExecCtx& c) { out(c, ra(c) | static_cast<uint32_t>(imm(c))); }
void sem_xori(ExecCtx& c) { out(c, ra(c) ^ static_cast<uint32_t>(imm(c))); }
void sem_slli(ExecCtx& c) { out(c, ra(c) << (static_cast<uint32_t>(imm(c)) & 31u)); }
void sem_srli(ExecCtx& c) { out(c, ra(c) >> (static_cast<uint32_t>(imm(c)) & 31u)); }
void sem_srai(ExecCtx& c) {
  out(c, static_cast<uint32_t>(s(ra(c)) >> (static_cast<uint32_t>(imm(c)) & 31u)));
}
void sem_slti(ExecCtx& c) { out(c, s(ra(c)) < imm(c) ? 1u : 0u); }
void sem_sltiu(ExecCtx& c) { out(c, ra(c) < static_cast<uint32_t>(imm(c)) ? 1u : 0u); }
void sem_lui(ExecCtx& c) { out(c, static_cast<uint32_t>(imm(c)) << 16); }
void sem_orlo(ExecCtx& c) { out(c, rd_in(c) | (static_cast<uint32_t>(imm(c)) & 0xFFFFu)); }

// --- memory ----------------------------------------------------------------------
inline uint32_t ea(ExecCtx& c) { return ra(c) + static_cast<uint32_t>(imm(c)); }

void sem_lb(ExecCtx& c) {
  const uint32_t a = ea(c);
  c.record_mem(a, 1, false);
  out(c, static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(c.st->load8(a)))));
}
void sem_lbu(ExecCtx& c) {
  const uint32_t a = ea(c);
  c.record_mem(a, 1, false);
  out(c, c.st->load8(a));
}
void sem_lh(ExecCtx& c) {
  const uint32_t a = ea(c);
  c.record_mem(a, 2, false);
  out(c, static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(c.st->load16(a)))));
}
void sem_lhu(ExecCtx& c) {
  const uint32_t a = ea(c);
  c.record_mem(a, 2, false);
  out(c, c.st->load16(a));
}
void sem_lw(ExecCtx& c) {
  const uint32_t a = ea(c);
  c.record_mem(a, 4, false);
  out(c, c.st->load32(a));
}
void sem_sb(ExecCtx& c) {
  const uint32_t a = ea(c);
  c.record_mem(a, 1, true);
  c.st->store8(a, static_cast<uint8_t>(rd_in(c)));
}
void sem_sh(ExecCtx& c) {
  const uint32_t a = ea(c);
  c.record_mem(a, 2, true);
  c.st->store16(a, static_cast<uint16_t>(rd_in(c)));
}
void sem_sw(ExecCtx& c) {
  const uint32_t a = ea(c);
  c.record_mem(a, 4, true);
  c.st->store32(a, rd_in(c));
}

// --- control transfer ---------------------------------------------------------
// Branch targets are relative to the next sequential instruction, in units of
// operation words.
inline uint32_t branch_target(ExecCtx& c) {
  return c.seq_next_ip + (static_cast<uint32_t>(imm(c)) << 2);
}

void sem_beq(ExecCtx& c) {
  if (ra(c) == rb(c)) c.take_branch(branch_target(c));
}
void sem_bne(ExecCtx& c) {
  if (ra(c) != rb(c)) c.take_branch(branch_target(c));
}
void sem_blt(ExecCtx& c) {
  if (s(ra(c)) < s(rb(c))) c.take_branch(branch_target(c));
}
void sem_bge(ExecCtx& c) {
  if (s(ra(c)) >= s(rb(c))) c.take_branch(branch_target(c));
}
void sem_bltu(ExecCtx& c) {
  if (ra(c) < rb(c)) c.take_branch(branch_target(c));
}
void sem_bgeu(ExecCtx& c) {
  if (ra(c) >= rb(c)) c.take_branch(branch_target(c));
}
void sem_j(ExecCtx& c) { c.take_branch(static_cast<uint32_t>(imm(c)) << 2); }
void sem_jal(ExecCtx& c) {
  c.write_reg(1, c.seq_next_ip); // link register r1 (implicit write)
  c.take_branch(static_cast<uint32_t>(imm(c)) << 2);
}
void sem_jr(ExecCtx& c) { c.take_branch(ra(c)); }
void sem_jalr(ExecCtx& c) {
  c.write_reg(c.op->rd, c.seq_next_ip);
  c.take_branch(ra(c));
}

// --- system ----------------------------------------------------------------------
void sem_switchtarget(ExecCtx& c) {
  c.isa_switch = true;
  c.new_isa = imm(c);
}
void sem_simop(ExecCtx& c) {
  if (c.simop == nullptr) {
    c.st->raise_trap("SIMOP executed but no C-library emulation installed");
    return;
  }
  c.simop->handle(imm(c), c);
}
void sem_halt(ExecCtx& c) { c.halt = true; }
void sem_nop(ExecCtx&) {}

const std::unordered_map<std::string, ExecFn>& registry() {
  static const std::unordered_map<std::string, ExecFn> kMap = {
      {"add", sem_add},   {"sub", sem_sub},     {"and", sem_and},
      {"or", sem_or},     {"xor", sem_xor},     {"nor", sem_nor},
      {"sll", sem_sll},   {"srl", sem_srl},     {"sra", sem_sra},
      {"slt", sem_slt},   {"sltu", sem_sltu},   {"seq", sem_seq},
      {"sne", sem_sne},   {"sle", sem_sle},     {"sleu", sem_sleu},
      {"mul", sem_mul},   {"mulh", sem_mulh},   {"mulhu", sem_mulhu},
      {"div", sem_div},   {"divu", sem_divu},   {"rem", sem_rem},
      {"remu", sem_remu}, {"addi", sem_addi},   {"andi", sem_andi},
      {"ori", sem_ori},   {"xori", sem_xori},   {"slli", sem_slli},
      {"srli", sem_srli}, {"srai", sem_srai},   {"slti", sem_slti},
      {"sltiu", sem_sltiu},{"lui", sem_lui},    {"orlo", sem_orlo},
      {"lb", sem_lb},     {"lbu", sem_lbu},     {"lh", sem_lh},
      {"lhu", sem_lhu},   {"lw", sem_lw},       {"sb", sem_sb},
      {"sh", sem_sh},     {"sw", sem_sw},       {"beq", sem_beq},
      {"bne", sem_bne},   {"blt", sem_blt},     {"bge", sem_bge},
      {"bltu", sem_bltu}, {"bgeu", sem_bgeu},   {"j", sem_j},
      {"jal", sem_jal},   {"jr", sem_jr},       {"jalr", sem_jalr},
      {"switchtarget", sem_switchtarget},       {"simop", sem_simop},
      {"halt", sem_halt}, {"nop", sem_nop},
  };
  return kMap;
}

} // namespace

ExecFn find_semantic(std::string_view name) {
  const auto& map = registry();
  const auto it = map.find(std::string(name));
  return it == map.end() ? nullptr : it->second;
}

} // namespace ksim::isa
