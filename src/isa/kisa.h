// Convenience access to the built K-ISA family plus the software ABI
// (calling convention, emulated C-library operation numbers).
#pragma once

#include <array>
#include <string_view>

#include "isa/optable.h"

namespace ksim::isa {

/// The K-ISA operation tables, built once from the embedded ADL description.
const IsaSet& kisa();

/// ISA identification numbers (SWITCHTARGET operands), as declared in the ADL.
enum KIsaId : int {
  kIsaRisc = 0,
  kIsaVliw2 = 1,
  kIsaVliw4 = 2,
  kIsaVliw6 = 3,
  kIsaVliw8 = 4,
};

/// Calling convention register assignments.
namespace abi {
inline constexpr unsigned kZero = 0; ///< hardwired zero
inline constexpr unsigned kRa = 1;   ///< return address (JAL link register)
inline constexpr unsigned kSp = 2;   ///< stack pointer
inline constexpr unsigned kTmp = 3;  ///< assembler/compiler scratch
inline constexpr unsigned kArg0 = 4; ///< first argument & return value
inline constexpr unsigned kNumArgRegs = 6; ///< r4..r9 carry arguments
inline constexpr unsigned kFirstCalleeSaved = 18; ///< r18..r31 are callee-saved
inline constexpr unsigned kNumRegs = 32;
} // namespace abi

/// Emulated C standard library functions (immediates of SIMOP, paper §V-E).
enum class LibcOp : int {
  kExit = 0,
  kPutchar = 1,
  kPuts = 2,
  kPrintf = 3,
  kMalloc = 4,
  kFree = 5,
  kMemcpy = 6,
  kMemset = 7,
  kStrlen = 8,
  kStrcmp = 9,
  kStrcpy = 10,
  kRand = 11,
  kSrand = 12,
  kAbort = 13,
  kPutInt = 14, ///< print one int and a newline (cheap diagnostic output)
  kPutHex = 15, ///< print one value as 0x%08x and a newline
  kCount
};

/// Name of an emulated library function as a linker symbol.
std::string_view libc_op_name(LibcOp op);

/// Number of emulated library functions.
inline constexpr int kNumLibcOps = static_cast<int>(LibcOp::kCount);

} // namespace ksim::isa
