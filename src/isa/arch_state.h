// Architectural state of a simulated KAHRISMA hardware thread: general
// register file, instruction pointer, currently active ISA (paper §V-D
// extends the processor state with the active ISA), and the simulated RAM.
//
// Memory accessors never throw in the hot path; on a fault they record a trap
// that the interpreter surfaces with debug information (paper §IV goal 4:
// error detection within applications).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/byte_stream.h"

namespace ksim::isa {

/// Default simulated RAM size (16 MiB).
inline constexpr uint32_t kDefaultRamSize = 16u * 1024u * 1024u;

/// Base address where executables are loaded.
inline constexpr uint32_t kCodeBase = 0x1000;

/// Initial stack pointer (top of RAM, 16-byte aligned, minus a red zone).
inline constexpr uint32_t kStackTop = kDefaultRamSize - 16;

class ArchState {
public:
  explicit ArchState(uint32_t ram_size = kDefaultRamSize) : ram_(ram_size, 0) {}

  // -- registers -----------------------------------------------------------
  uint32_t reg(unsigned index) const { return regs_[index]; }
  void set_reg(unsigned index, uint32_t value) {
    regs_[index] = value;
    regs_[0] = 0; // r0 stays hardwired to zero
  }

  uint32_t ip() const { return ip_; }
  void set_ip(uint32_t value) { ip_ = value; }

  int isa_id() const { return isa_id_; }
  void set_isa_id(int id) { isa_id_ = id; }

  // -- traps -----------------------------------------------------------------
  bool trapped() const { return trapped_; }
  const std::string& trap_message() const { return trap_message_; }
  void raise_trap(std::string message) {
    if (!trapped_) {
      trapped_ = true;
      trap_message_ = std::move(message);
    }
  }
  void clear_trap() {
    trapped_ = false;
    trap_message_.clear();
  }

  // -- memory ----------------------------------------------------------------
  uint32_t ram_size() const { return static_cast<uint32_t>(ram_.size()); }

  uint8_t load8(uint32_t addr) {
    if (addr >= ram_.size()) return fault_load(addr, 1);
    return ram_[addr];
  }
  uint16_t load16(uint32_t addr) {
    if (addr + 1 >= ram_.size() || (addr & 1u)) return fault_load(addr, 2);
    uint16_t v;
    std::memcpy(&v, &ram_[addr], 2);
    return v;
  }
  uint32_t load32(uint32_t addr) {
    if (addr + 3 >= ram_.size() || (addr & 3u)) return fault_load(addr, 4);
    uint32_t v;
    std::memcpy(&v, &ram_[addr], 4);
    return v;
  }
  void store8(uint32_t addr, uint8_t value) {
    if (addr >= ram_.size()) {
      fault_store(addr, 1);
      return;
    }
    ram_[addr] = value;
  }
  void store16(uint32_t addr, uint16_t value) {
    if (addr + 1 >= ram_.size() || (addr & 1u)) {
      fault_store(addr, 2);
      return;
    }
    std::memcpy(&ram_[addr], &value, 2);
  }
  void store32(uint32_t addr, uint32_t value) {
    if (addr + 3 >= ram_.size() || (addr & 3u)) {
      fault_store(addr, 4);
      return;
    }
    std::memcpy(&ram_[addr], &value, 4);
  }

  /// Fetches one operation word; unlike load32 this does not trap (the caller
  /// reports a decode error with context instead). Returns false on fault.
  bool fetch32(uint32_t addr, uint32_t& word) const {
    if (addr + 3 >= ram_.size() || (addr & 3u)) return false;
    std::memcpy(&word, &ram_[addr], 4);
    return true;
  }

  /// Bulk copy into simulated memory (ELF loading). Throws ksim::Error on
  /// out-of-range addresses.
  void write_block(uint32_t addr, const void* data, size_t size);

  /// Reads a NUL-terminated string from simulated memory (bounded).
  std::string read_cstring(uint32_t addr, size_t max_len = 1u << 20);

  /// Direct access for the C-library emulation (memcpy/memset etc.).
  uint8_t* ram_data() { return ram_.data(); }
  const uint8_t* ram_data() const { return ram_.data(); }

  /// Direct access to the register file for JIT-generated code.  Writers
  /// must preserve the r0-hardwired-to-zero invariant themselves (the JIT
  /// skips every store to r0 at translation time).
  uint32_t* regs_data() { return regs_.data(); }

  /// True if [addr, addr+size) lies inside RAM.
  bool in_ram(uint32_t addr, uint32_t size) const {
    return addr < ram_.size() && size <= ram_.size() - addr;
  }

  /// Resets registers, IP, ISA and trap state (memory is preserved).
  void reset_cpu(uint32_t entry_ip, int isa_id);

  /// Serializes the complete architectural state (registers, IP, ISA, trap
  /// state and a sparse page image of RAM) for kckpt.  The encoding is
  /// deterministic: identical state produces identical bytes.
  void save(support::ByteWriter& w) const;

  /// Inverse of save().  Throws ksim::Error if the snapshot's RAM size does
  /// not match this instance.  Untouched pages are zeroed, so restoring over
  /// a used ArchState yields exactly the saved image.
  void restore(support::ByteReader& r);

private:
  uint32_t fault_load(uint32_t addr, unsigned size);
  void fault_store(uint32_t addr, unsigned size);

  std::vector<uint8_t> ram_;
  std::array<uint32_t, 32> regs_{};
  uint32_t ip_ = kCodeBase;
  int isa_id_ = 0;
  bool trapped_ = false;
  std::string trap_message_;
};

} // namespace ksim::isa
