// The reconstructed KAHRISMA ISA family ("K-ISA") as an ADL description.
//
// The original KAHRISMA ADL was a project-internal artifact.  K-ISA is a
// reconstruction with the properties the paper relies on:
//  * 32-bit operation words with a stop bit marking the end of an instruction,
//  * a RISC ISA (1 operation per instruction) and 2/4/6/8-issue VLIW ISAs,
//  * 32 general registers (r0 hardwired to zero) plus the instruction pointer,
//  * detection by constant fields (opcode, and funct for register-register
//    operations),
//  * implicit registers (e.g. every branch writes IP, JAL writes r1),
//  * a SWITCHTARGET operation for run-time ISA reconfiguration (§V-D) and a
//    SIMOP operation carrying emulated C-library calls (§V-E).
#pragma once

#include <string_view>

namespace ksim::isa {

/// Returns the complete ADL source text for the K-ISA family.
std::string_view kisa_adl_text();

} // namespace ksim::isa
