// Execution interface between decoded operations and simulation functions.
//
// The paper executes the operations of a VLIW instruction so that *all*
// source registers are read before *any* result is written (§V-B, realised
// there by recursive simulation-function calls).  We realise the same
// semantics iteratively in two phases: every simulation function pushes its
// register results into a write-back buffer; the interpreter commits the
// buffer after all slots of the instruction have executed.  Memory accesses
// happen in program (slot) order, matching the paper's memory model (§VI-C,
// point 3).
#pragma once

#include <cstdint>

#include "isa/arch_state.h"
#include "isa/optable.h"

namespace ksim::isa {

/// Maximum operations per instruction (8-issue VLIW).
inline constexpr int kMaxSlots = 8;

/// One fully decoded operation (part of a decode structure, §V).
struct DecodedOp {
  ExecFn fn = nullptr;
  const OpInfo* info = nullptr;
  uint8_t rd = 0;
  uint8_t ra = 0;
  uint8_t rb = 0;
  int32_t imm = 0;
};

/// Decode-time facts about an instruction group that the execution engines
/// test in their hot loops (cheaper than re-inspecting OpInfo per slot).
enum DecodedInstrFlags : uint8_t {
  kDiHasSimop = 1u << 0,  ///< some slot is a SIMOP (emulated C-library call)
  kDiHasBranch = 1u << 1, ///< some slot is a branch/call/return
};

/// A decode structure (paper §V): one decoded instruction, i.e. all parallel
/// operations plus the instruction-prediction link (§V-A).
struct DecodedInstr {
  uint32_t addr = 0;
  uint8_t num_ops = 0;
  uint8_t size_bytes = 0;
  uint8_t flags = 0; ///< DecodedInstrFlags
  int16_t isa_id = 0;
  DecodedOp ops[kMaxSlots];

  // Instruction prediction: IP and decode structure of the (predicted)
  // following instruction, updated like a 1-bit branch predictor.
  uint32_t pred_ip = 0xFFFFFFFFu;
  const DecodedInstr* pred_next = nullptr;
};

/// Memory access performed by one slot (input to the cycle models).
struct MemAccessInfo {
  uint32_t addr = 0;
  uint8_t size = 0;
  bool is_store = false;
  bool valid = false;
};

struct ExecCtx;

/// Hook implementing the emulated C standard library (§V-E). The immediate
/// operand of SIMOP selects the library function.
class SimOpHandler {
public:
  virtual ~SimOpHandler() = default;
  virtual void handle(int op_number, ExecCtx& ctx) = 0;
};

/// Deferred register write.
struct WbEntry {
  uint8_t reg = 0;
  uint32_t value = 0;
};

/// Per-instruction execution context handed to simulation functions.
struct ExecCtx {
  ArchState* st = nullptr;
  const DecodedOp* op = nullptr; ///< operation currently executing
  int slot = 0;                  ///< slot index of that operation
  uint32_t seq_next_ip = 0;      ///< address of the next sequential instruction

  bool branch_taken = false;
  uint32_t branch_target = 0;
  bool halt = false;
  bool isa_switch = false;
  int new_isa = 0;

  SimOpHandler* simop = nullptr;

  int wb_count = 0;
  WbEntry wb[kMaxSlots * 2]; ///< explicit dst + implicit link writes

  MemAccessInfo mem[kMaxSlots];

  /// Resets the per-instruction state (cheap; called before every instruction).
  void begin_instruction(uint32_t next_ip) {
    begin_instruction_fast(next_ip);
    for (auto& m : mem) m.valid = false;
  }

  /// begin_instruction without clearing the per-slot memory-access records.
  /// Only valid when nothing consumes `mem` afterwards (no cycle model and no
  /// trace writer attached): simulation functions overwrite their own slot,
  /// but slots of shorter subsequent instructions would read stale data.
  void begin_instruction_fast(uint32_t next_ip) {
    seq_next_ip = next_ip;
    branch_taken = false;
    halt = false;
    isa_switch = false;
    wb_count = 0;
  }

  void write_reg(uint8_t reg, uint32_t value) {
    wb[wb_count].reg = reg;
    wb[wb_count].value = value;
    ++wb_count;
  }

  void record_mem(uint32_t addr, uint8_t size, bool is_store) {
    mem[slot] = {addr, size, is_store, true};
  }

  void take_branch(uint32_t target) {
    branch_taken = true;
    branch_target = target;
  }
};

} // namespace ksim::isa
