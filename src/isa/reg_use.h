// Static register-use metadata derived from the operation tables: which
// general registers an operation reads and writes, and where its statically
// known branch target lies.  Shared by the cycle models (dynamic dependence
// tracking, §VI) and the klint static-analysis passes (src/analysis/), so
// both agree on one definition of "source" and "destination".
#pragma once

#include <cstdint>
#include <optional>

#include "isa/exec.h"
#include "isa/optable.h"

namespace ksim::isa {

/// Bit mask over the 32 general registers (bit i = register i).  Special
/// registers (the IP, bit kIpRegIndex of the implicit masks) are excluded.
using RegMask = uint32_t;

/// Registers read by an operation, given its decoded operand fields.
inline RegMask op_src_mask(const OpInfo& info, unsigned rd, unsigned ra, unsigned rb) {
  RegMask m = static_cast<RegMask>(info.implicit_reads & 0xFFFFFFFFull);
  if (info.ra_is_src) m |= 1u << (ra & 31u);
  if (info.rb_is_src) m |= 1u << (rb & 31u);
  if (info.rd_is_src) m |= 1u << (rd & 31u);
  return m;
}

/// Registers written by an operation.  The hardwired zero register is never
/// a meaningful destination and is excluded.
inline RegMask op_dst_mask(const OpInfo& info, unsigned rd, int zero_reg = 0) {
  RegMask m = static_cast<RegMask>(info.implicit_writes & 0xFFFFFFFFull);
  if (info.rd_is_dst) m |= 1u << (rd & 31u);
  if (zero_reg >= 0 && zero_reg < 32) m &= ~(1u << static_cast<unsigned>(zero_reg));
  return m;
}

inline RegMask op_src_mask(const DecodedOp& op) {
  return op_src_mask(*op.info, op.rd, op.ra, op.rb);
}
inline RegMask op_dst_mask(const DecodedOp& op, int zero_reg = 0) {
  return op_dst_mask(*op.info, op.rd, zero_reg);
}

/// Statically known branch target of an operation, if it has one.
/// `next_addr` is the address of the next sequential instruction (branch
/// offsets are relative to it, in operation words; see sem_beq & friends).
/// Indirect transfers (JR/JALR) have no static target.
inline std::optional<uint32_t> static_branch_target(const OpInfo& info, int32_t imm,
                                                    uint32_t next_addr) {
  if (!info.is_branch) return std::nullopt;
  switch (info.reloc) {
    case adl::RelocKind::PcRel:
      return next_addr + (static_cast<uint32_t>(imm) << 2);
    case adl::RelocKind::Abs25:
      return static_cast<uint32_t>(imm) << 2;
    case adl::RelocKind::None:
      return std::nullopt; // register-indirect (JR/JALR)
  }
  return std::nullopt;
}

} // namespace ksim::isa
