#include "isa/optable.h"

#include "support/bits.h"

namespace ksim::isa {

uint32_t OpField::extract(uint32_t word) const {
  const uint32_t raw = extract_bits(word, hi, lo);
  if (is_signed) return static_cast<uint32_t>(sign_extend(raw, hi - lo + 1u));
  return raw;
}

uint32_t IsaSet::encode_op(const OpInfo& op, const OpOperands& operands,
                           bool stop) const {
  uint32_t word = op.match_bits;
  auto insert = [&word](const OpField& f, uint32_t value) {
    if (f.valid) word = insert_bits(word, f.hi, f.lo, value);
  };
  insert(op.f_rd, operands.rd);
  insert(op.f_ra, operands.ra);
  insert(op.f_rb, operands.rb);
  insert(op.f_imm, static_cast<uint32_t>(operands.imm));
  if (stop) word |= 1u << stop_bit_;
  return word;
}

const IsaInfo* IsaSet::find_isa(int id) const {
  for (const IsaInfo& i : isas_)
    if (i.id == id) return &i;
  return nullptr;
}

const IsaInfo* IsaSet::find_isa(std::string_view name) const {
  for (const IsaInfo& i : isas_)
    if (i.name == name) return &i;
  return nullptr;
}

const IsaInfo& IsaSet::default_isa() const {
  for (const IsaInfo& i : isas_)
    if (i.is_default) return i;
  return isas_.front();
}

const OpInfo* IsaSet::find_op(std::string_view name) const {
  for (const OpInfo* op : all_op_ptrs_)
    if (op->name == name) return op;
  return nullptr;
}

const OpInfo* IsaSet::detect(const IsaInfo& isa, uint32_t word) const {
  // Deliberately the generic process of the paper's framework: for every
  // operation of the active ISA's table, extract each constant field of the
  // operation word and compare it (this cost is what the decode cache of
  // SV-A amortizes away).
  for (const OpInfo* op : isa.ops) {
    bool match = true;
    for (const OpInfo::MatchField& m : op->match_fields) {
      if (m.field.extract(word) != m.value) {
        match = false;
        break;
      }
    }
    if (match) return op;
  }
  return nullptr;
}

} // namespace ksim::isa
