#include "isa/arch_state.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "support/error.h"
#include "support/strings.h"

namespace ksim::isa {

void ArchState::write_block(uint32_t addr, const void* data, size_t size) {
  check(in_ram(addr, static_cast<uint32_t>(size)),
        "write_block outside simulated RAM at " + hex32(addr));
  std::memcpy(&ram_[addr], data, size);
}

std::string ArchState::read_cstring(uint32_t addr, size_t max_len) {
  std::string out;
  for (size_t i = 0; i < max_len; ++i) {
    if (addr + i >= ram_.size()) {
      raise_trap("string read past end of RAM at " + hex32(addr));
      break;
    }
    const char c = static_cast<char>(ram_[addr + i]);
    if (c == '\0') break;
    out.push_back(c);
  }
  return out;
}

void ArchState::reset_cpu(uint32_t entry_ip, int isa_id) {
  regs_.fill(0);
  ip_ = entry_ip;
  isa_id_ = isa_id;
  trapped_ = false;
  trap_message_.clear();
}

namespace {

/// RAM snapshot granularity.  Pages that are entirely zero are skipped, so a
/// snapshot costs roughly the program's working set, not the full RAM size.
constexpr uint32_t kPageSize = 4096;

bool page_is_zero(const uint8_t* page, uint32_t size) {
  // memcmp against a fixed zero page vectorizes; a byte loop with an early
  // return does not, and this scan covers the whole 16 MiB RAM per snapshot.
  static const std::array<uint8_t, kPageSize> zeros{};
  return std::memcmp(page, zeros.data(), std::min(size, kPageSize)) == 0;
}

} // namespace

void ArchState::save(support::ByteWriter& w) const {
  for (const uint32_t reg : regs_) w.u32(reg);
  w.u32(ip_);
  w.i32(isa_id_);
  w.u8(trapped_ ? 1 : 0);
  w.str(trap_message_);

  w.u32(static_cast<uint32_t>(ram_.size()));
  const uint32_t num_pages =
      (static_cast<uint32_t>(ram_.size()) + kPageSize - 1) / kPageSize;
  std::vector<uint32_t> used;
  for (uint32_t p = 0; p < num_pages; ++p) {
    const uint32_t offset = p * kPageSize;
    const uint32_t size = std::min<uint32_t>(kPageSize, ram_size() - offset);
    if (!page_is_zero(&ram_[offset], size)) used.push_back(p);
  }
  w.u32(static_cast<uint32_t>(used.size()));
  for (const uint32_t p : used) {
    const uint32_t offset = p * kPageSize;
    w.u32(p);
    w.bytes(&ram_[offset], std::min<uint32_t>(kPageSize, ram_size() - offset));
  }
}

void ArchState::restore(support::ByteReader& r) {
  for (uint32_t& reg : regs_) reg = r.u32();
  regs_[0] = 0;
  ip_ = r.u32();
  isa_id_ = r.i32();
  trapped_ = r.u8() != 0;
  trap_message_ = r.str();

  const uint32_t ram_bytes = r.u32();
  check(ram_bytes == ram_.size(),
        strf("checkpoint RAM size %u does not match simulator RAM size %zu",
             ram_bytes, ram_.size()));
  std::fill(ram_.begin(), ram_.end(), 0);
  const uint32_t num_pages = (ram_bytes + kPageSize - 1) / kPageSize;
  const uint32_t used = r.u32();
  for (uint32_t i = 0; i < used; ++i) {
    const uint32_t p = r.u32();
    check(p < num_pages, strf("checkpoint RAM page %u out of range", p));
    const uint32_t offset = p * kPageSize;
    const uint32_t size = std::min<uint32_t>(kPageSize, ram_bytes - offset);
    r.bytes(&ram_[offset], size);
  }
}

uint32_t ArchState::fault_load(uint32_t addr, unsigned size) {
  raise_trap(strf("invalid %u-byte load at address %s", size, hex32(addr).c_str()));
  return 0;
}

void ArchState::fault_store(uint32_t addr, unsigned size) {
  raise_trap(strf("invalid %u-byte store at address %s", size, hex32(addr).c_str()));
}

} // namespace ksim::isa
