#include "isa/arch_state.h"

#include "support/error.h"
#include "support/strings.h"

namespace ksim::isa {

void ArchState::write_block(uint32_t addr, const void* data, size_t size) {
  check(in_ram(addr, static_cast<uint32_t>(size)),
        "write_block outside simulated RAM at " + hex32(addr));
  std::memcpy(&ram_[addr], data, size);
}

std::string ArchState::read_cstring(uint32_t addr, size_t max_len) {
  std::string out;
  for (size_t i = 0; i < max_len; ++i) {
    if (addr + i >= ram_.size()) {
      raise_trap("string read past end of RAM at " + hex32(addr));
      break;
    }
    const char c = static_cast<char>(ram_[addr + i]);
    if (c == '\0') break;
    out.push_back(c);
  }
  return out;
}

void ArchState::reset_cpu(uint32_t entry_ip, int isa_id) {
  regs_.fill(0);
  ip_ = entry_ip;
  isa_id_ = isa_id;
  trapped_ = false;
  trap_message_.clear();
}

uint32_t ArchState::fault_load(uint32_t addr, unsigned size) {
  raise_trap(strf("invalid %u-byte load at address %s", size, hex32(addr).c_str()));
  return 0;
}

void ArchState::fault_store(uint32_t addr, unsigned size) {
  raise_trap(strf("invalid %u-byte store at address %s", size, hex32(addr).c_str()));
}

} // namespace ksim::isa
