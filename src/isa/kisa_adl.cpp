#include "isa/kisa_adl.h"

namespace ksim::isa {

std::string_view kisa_adl_text() {
  static constexpr std::string_view kText = R"ADL(
# K-ISA: reconstructed KAHRISMA ISA family.
# Operation word layout: [31] stop bit, [30:25] opcode, rest per format.
adl kisa
stopbit 31
opcodefield 30:25

# ISA configurations (id is the SWITCHTARGET operand).
isa RISC  id=0 issue=1 default
isa VLIW2 id=1 issue=2
isa VLIW4 id=2 issue=4
isa VLIW6 id=3 issue=6
isa VLIW8 id=4 issue=8

# Register file: 32 general registers, r0 hardwired to zero, plus IP.
regfile r count=32 zero=0
reg IP

# Instruction formats.
format R  fields=rd:24:20,ra:19:15,rb:14:10,funct:9:4
format I  fields=rd:24:20,ra:19:15,imm:14:0:s
format B  fields=ra:24:20,rb:19:15,imm:14:0:s
format U  fields=rd:24:20,imm:15:0:u
format J  fields=imm:24:0:u
format S  fields=imm:14:0:u

# --- register-register ALU operations (opcode 0, selected by funct) --------
op ADD   format=R match=opcode:0,funct:0  sem=add   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op SUB   format=R match=opcode:0,funct:1  sem=sub   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op AND   format=R match=opcode:0,funct:2  sem=and   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op OR    format=R match=opcode:0,funct:3  sem=or    delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op XOR   format=R match=opcode:0,funct:4  sem=xor   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op NOR   format=R match=opcode:0,funct:5  sem=nor   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op SLL   format=R match=opcode:0,funct:6  sem=sll   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op SRL   format=R match=opcode:0,funct:7  sem=srl   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op SRA   format=R match=opcode:0,funct:8  sem=sra   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op SLT   format=R match=opcode:0,funct:9  sem=slt   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op SLTU  format=R match=opcode:0,funct:10 sem=sltu  delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op SEQ   format=R match=opcode:0,funct:11 sem=seq   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op SNE   format=R match=opcode:0,funct:12 sem=sne   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op SLE   format=R match=opcode:0,funct:13 sem=sle   delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op SLEU  format=R match=opcode:0,funct:14 sem=sleu  delay=1 reads=ra,rb writes=rd syntax=rd,ra,rb
op MUL   format=R match=opcode:0,funct:15 sem=mul   delay=3 reads=ra,rb writes=rd syntax=rd,ra,rb
op MULH  format=R match=opcode:0,funct:16 sem=mulh  delay=3 reads=ra,rb writes=rd syntax=rd,ra,rb
op MULHU format=R match=opcode:0,funct:17 sem=mulhu delay=3 reads=ra,rb writes=rd syntax=rd,ra,rb
op DIV   format=R match=opcode:0,funct:18 sem=div   delay=12 reads=ra,rb writes=rd syntax=rd,ra,rb
op DIVU  format=R match=opcode:0,funct:19 sem=divu  delay=12 reads=ra,rb writes=rd syntax=rd,ra,rb
op REM   format=R match=opcode:0,funct:20 sem=rem   delay=12 reads=ra,rb writes=rd syntax=rd,ra,rb
op REMU  format=R match=opcode:0,funct:21 sem=remu  delay=12 reads=ra,rb writes=rd syntax=rd,ra,rb

# --- immediate ALU operations ----------------------------------------------
op ADDI  format=I match=opcode:1  sem=addi  delay=1 reads=ra writes=rd syntax=rd,ra,imm
op ANDI  format=I match=opcode:2  sem=andi  delay=1 reads=ra writes=rd syntax=rd,ra,imm
op ORI   format=I match=opcode:3  sem=ori   delay=1 reads=ra writes=rd syntax=rd,ra,imm
op XORI  format=I match=opcode:4  sem=xori  delay=1 reads=ra writes=rd syntax=rd,ra,imm
op SLLI  format=I match=opcode:5  sem=slli  delay=1 reads=ra writes=rd syntax=rd,ra,imm
op SRLI  format=I match=opcode:6  sem=srli  delay=1 reads=ra writes=rd syntax=rd,ra,imm
op SRAI  format=I match=opcode:7  sem=srai  delay=1 reads=ra writes=rd syntax=rd,ra,imm
op SLTI  format=I match=opcode:8  sem=slti  delay=1 reads=ra writes=rd syntax=rd,ra,imm
op SLTIU format=I match=opcode:9  sem=sltiu delay=1 reads=ra writes=rd syntax=rd,ra,imm
op LUI   format=U match=opcode:10 sem=lui   delay=1 writes=rd syntax=rd,imm
op ORLO  format=U match=opcode:11 sem=orlo  delay=1 reads=rd writes=rd syntax=rd,imm

# --- memory operations -------------------------------------------------------
op LB    format=I match=opcode:12 sem=lb  delay=mem mem=load  reads=ra writes=rd syntax=rd,imm(ra)
op LBU   format=I match=opcode:13 sem=lbu delay=mem mem=load  reads=ra writes=rd syntax=rd,imm(ra)
op LH    format=I match=opcode:14 sem=lh  delay=mem mem=load  reads=ra writes=rd syntax=rd,imm(ra)
op LHU   format=I match=opcode:15 sem=lhu delay=mem mem=load  reads=ra writes=rd syntax=rd,imm(ra)
op LW    format=I match=opcode:16 sem=lw  delay=mem mem=load  reads=ra writes=rd syntax=rd,imm(ra)
op SB    format=I match=opcode:17 sem=sb  delay=mem mem=store reads=rd,ra syntax=rd,imm(ra)
op SH    format=I match=opcode:18 sem=sh  delay=mem mem=store reads=rd,ra syntax=rd,imm(ra)
op SW    format=I match=opcode:19 sem=sw  delay=mem mem=store reads=rd,ra syntax=rd,imm(ra)

# --- control transfer --------------------------------------------------------
op BEQ   format=B match=opcode:20 sem=beq  delay=1 branch reads=ra,rb iwrites=IP syntax=ra,rb,imm reloc=pcrel
op BNE   format=B match=opcode:21 sem=bne  delay=1 branch reads=ra,rb iwrites=IP syntax=ra,rb,imm reloc=pcrel
op BLT   format=B match=opcode:22 sem=blt  delay=1 branch reads=ra,rb iwrites=IP syntax=ra,rb,imm reloc=pcrel
op BGE   format=B match=opcode:23 sem=bge  delay=1 branch reads=ra,rb iwrites=IP syntax=ra,rb,imm reloc=pcrel
op BLTU  format=B match=opcode:24 sem=bltu delay=1 branch reads=ra,rb iwrites=IP syntax=ra,rb,imm reloc=pcrel
op BGEU  format=B match=opcode:25 sem=bgeu delay=1 branch reads=ra,rb iwrites=IP syntax=ra,rb,imm reloc=pcrel
op J     format=J match=opcode:26 sem=j    delay=1 branch iwrites=IP syntax=imm reloc=abs25
op JAL   format=J match=opcode:27 sem=jal  delay=1 branch call iwrites=IP,r1 syntax=imm reloc=abs25
op JR    format=R match=opcode:28,funct:0 sem=jr   delay=1 branch ret reads=ra iwrites=IP syntax=ra
op JALR  format=R match=opcode:29,funct:0 sem=jalr delay=1 branch call reads=ra writes=rd iwrites=IP syntax=rd,ra

# --- system operations -------------------------------------------------------
# SWITCHTARGET reconfigures the active ISA (paper V-D).  It is encoded
# identically in every ISA and always terminates its instruction, so mixed-ISA
# control flow can cross ISA boundaries.
op SWITCHTARGET format=S match=opcode:30 sem=switchtarget delay=1 serial iwrites=IP syntax=imm
# SIMOP invokes an emulated C standard library function (paper V-E); the
# function number is the immediate.  Arguments/result follow the calling
# convention (r4..r9 in, r4 out).
op SIMOP format=S match=opcode:31 sem=simop delay=1 serial ireads=r4,r5,r6,r7,r8,r9 iwrites=r4 syntax=imm
op HALT  format=S match=opcode:32 sem=halt delay=1 serial syntax=
op NOP   format=S match=opcode:33 sem=nop  delay=1 syntax=
)ADL";
  return kText;
}

} // namespace ksim::isa
