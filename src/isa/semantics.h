// Registry of simulation functions.
//
// In the paper, TargetGen generates one C++ simulation function per operation
// from a code fragment embedded in the ADL.  Here the function bodies live in
// this registry and the ADL references them by name (sem= attribute); the
// TargetGen equivalent (src/isa/targetgen.h) binds names to function pointers
// when it builds the operation tables.  See DESIGN.md §2 for why this
// substitution is behaviour-preserving.
#pragma once

#include <string_view>

#include "isa/exec.h"

namespace ksim::isa {

/// Looks up a simulation function by its ADL name; nullptr if unknown.
ExecFn find_semantic(std::string_view name);

} // namespace ksim::isa
