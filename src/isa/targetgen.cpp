#include "isa/targetgen.h"

#include <algorithm>
#include <sstream>

#include "isa/semantics.h"
#include "support/bits.h"
#include "support/error.h"
#include "support/strings.h"

namespace ksim::isa {
namespace {

uint32_t field_mask(uint8_t hi, uint8_t lo) {
  uint32_t m = 0;
  for (uint8_t b = lo; b <= hi; ++b) m |= (1u << b);
  return m;
}

OpField to_opfield(const adl::FieldDef& f) {
  OpField of;
  of.hi = f.hi;
  of.lo = f.lo;
  of.valid = true;
  of.is_signed = f.is_signed;
  return of;
}

uint64_t register_mask(const adl::AdlModel& model, const std::vector<std::string>& names) {
  uint64_t mask = 0;
  for (const std::string& n : names) {
    const adl::RegisterDef* r = model.find_register(n);
    check(r != nullptr, "TargetGen: unknown register " + n);
    mask |= (uint64_t{1} << static_cast<unsigned>(r->index));
  }
  return mask;
}

} // namespace

IsaSet TargetGen::build(adl::AdlModel model) {
  return build(std::move(model), [](std::string_view name) { return find_semantic(name); });
}

IsaSet TargetGen::build(adl::AdlModel model, const SemanticResolver& resolver) {
  IsaSet set;
  set.stop_bit_ = model.stop_bit;
  set.register_count_ = model.general_register_count();
  check(set.register_count_ > 0 && set.register_count_ <= 32,
        "TargetGen: register count must be in 1..32");
  set.zero_register_ = 0;
  for (const adl::RegisterDef& r : model.registers)
    if (r.is_zero) set.zero_register_ = r.index;

  check(!model.isas.empty(), "TargetGen: model has no ISAs");
  check(model.opcode_field.hi >= model.opcode_field.lo,
        "TargetGen: model has no opcode field");

  // Build OpInfo entries.
  uint16_t index = 0;
  for (const adl::OperationDef& def : model.operations) {
    const adl::FormatDef* fmt = model.find_format(def.format);
    check(fmt != nullptr, "TargetGen: op " + def.name + " has unknown format");

    auto op = std::make_unique<OpInfo>();
    op->name = def.name;
    op->index = index++;

    for (const adl::MatchDef& m : def.match) {
      const adl::FieldDef* f =
          m.field == "opcode" ? &model.opcode_field : fmt->find_field(m.field);
      check(f != nullptr, "TargetGen: op " + def.name + " matches unknown field " + m.field);
      check(fits_unsigned(m.value, f->width()),
            "TargetGen: op " + def.name + " match value too wide for field " + m.field);
      op->match_mask |= field_mask(f->hi, f->lo);
      op->match_bits |= (m.value << f->lo);
      OpInfo::MatchField mf;
      mf.field = to_opfield(*f);
      mf.field.is_signed = false;
      mf.value = m.value;
      op->match_fields.push_back(mf);
    }

    for (const adl::FieldDef& f : fmt->fields) {
      if (f.name == "rd")
        op->f_rd = to_opfield(f);
      else if (f.name == "ra")
        op->f_ra = to_opfield(f);
      else if (f.name == "rb")
        op->f_rb = to_opfield(f);
      else if (f.name == "imm")
        op->f_imm = to_opfield(f);
      else if (f.name != "funct")
        throw Error("TargetGen: op " + def.name + " uses non-canonical field " + f.name +
                    " (K-ISA operations are limited to rd/ra/rb/imm/funct)");
    }

    for (const std::string& r : def.reads) {
      if (r == "rd")
        op->rd_is_src = true;
      else if (r == "ra")
        op->ra_is_src = true;
      else if (r == "rb")
        op->rb_is_src = true;
      else
        throw Error("TargetGen: op " + def.name + " reads non-register field " + r);
    }
    for (const std::string& w : def.writes) {
      check(w == "rd", "TargetGen: op " + def.name + " writes non-rd field " + w);
      op->rd_is_dst = true;
    }

    op->delay = def.delay;
    op->mem = def.mem;
    op->is_branch = def.is_branch;
    op->is_call = def.is_call;
    op->is_ret = def.is_ret;
    op->serial_only = def.serial_only;
    op->implicit_reads = register_mask(model, def.implicit_reads);
    op->implicit_writes = register_mask(model, def.implicit_writes);
    op->reloc = def.reloc;
    op->syntax = def.syntax;
    op->def = &def; // patched below once the model is moved into the set

    op->fn = resolver(def.semantic);
    check(op->fn != nullptr,
          "TargetGen: op " + def.name + " has unknown semantic '" + def.semantic + "'");

    set.ops_.push_back(std::move(op));
  }

  // Reject ambiguous encodings: two operations are ambiguous when no constant
  // bit they share distinguishes them.
  for (size_t i = 0; i < set.ops_.size(); ++i)
    for (size_t j = i + 1; j < set.ops_.size(); ++j) {
      const OpInfo& a = *set.ops_[i];
      const OpInfo& b = *set.ops_[j];
      const uint32_t common = a.match_mask & b.match_mask;
      if ((a.match_bits & common) == (b.match_bits & common))
        throw Error("TargetGen: ambiguous encodings for " + a.name + " and " + b.name);
    }

  for (const auto& op : set.ops_) set.all_op_ptrs_.push_back(op.get());

  // Per-ISA operation tables.
  for (const adl::IsaDef& idef : model.isas) {
    IsaInfo isa;
    isa.name = idef.name;
    isa.id = idef.id;
    isa.issue_width = idef.issue_width;
    isa.is_default = idef.is_default;
    for (size_t i = 0; i < set.ops_.size(); ++i) {
      const adl::OperationDef& def = model.operations[i];
      const bool in_isa =
          def.isas.empty() ||
          std::find(def.isas.begin(), def.isas.end(), idef.name) != def.isas.end();
      if (in_isa) isa.ops.push_back(set.ops_[i].get());
    }
    set.max_isa_id_ = std::max(set.max_isa_id_, idef.id);
    set.isas_.push_back(std::move(isa));
  }

  set.model_ = std::move(model);
  // Re-point def back-pointers at the moved-into-place operation definitions.
  for (size_t i = 0; i < set.ops_.size(); ++i)
    set.ops_[i]->def = &set.model_.operations[i];
  return set;
}

std::string TargetGen::emit_cpp(const IsaSet& set) {
  std::ostringstream os;
  os << "// Generated by TargetGen from ADL model '" << set.model().name << "'.\n";
  os << "// One entry per operation: {name, match_mask, match_bits, delay, sem}.\n";
  os << "static const GeneratedOp kOperationTable[] = {\n";
  for (const OpInfo* op : set.all_ops()) {
    os << "    {\"" << op->name << "\", " << hex32(op->match_mask) << ", "
       << hex32(op->match_bits) << ", " << op->delay << ", sem_" << op->def->semantic
       << "},\n";
  }
  os << "};\n\n";
  for (const IsaInfo& isa : set.isas()) {
    os << "// ISA " << isa.name << " (id " << isa.id << ", issue width " << isa.issue_width
       << "): " << isa.ops.size() << " operations.\n";
    os << "static const uint16_t kIsa" << isa.name << "Ops[] = {";
    for (size_t i = 0; i < isa.ops.size(); ++i) {
      if (i % 12 == 0) os << "\n    ";
      os << isa.ops[i]->index << ", ";
    }
    os << "\n};\n";
  }
  return os.str();
}

} // namespace ksim::isa
