// Runtime operation tables — the data structures the paper's TargetGen
// utility generates from the ADL (§V, Fig. 3): one operation table per ISA,
// each entry holding the operation's name, size, fields, implicit registers
// and a pointer to its simulation function.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adl/model.h"

namespace ksim::isa {

struct ExecCtx;
using ExecFn = void (*)(ExecCtx&);

/// Register index of the instruction pointer in implicit-register masks.
inline constexpr unsigned kIpRegIndex = 32;

/// Canonical operand field of an operation word.
struct OpField {
  uint8_t hi = 0;
  uint8_t lo = 0;
  bool valid = false;
  bool is_signed = false;

  uint32_t extract(uint32_t word) const;
};

/// One operation of the architecture, fully resolved for simulation.
struct OpInfo {
  std::string name;
  uint16_t index = 0; ///< dense index over all operations (trace/stat arrays)

  // Detection: constant fields (paper: "checking the constant fields for each
  // operation of the current active ISA").  Detection walks `match_fields`
  // generically, extracting and comparing one field at a time, exactly as a
  // retargetable, ADL-driven simulator must; `match_mask`/`match_bits` are the
  // fused form kept for encoders and consistency checks.
  struct MatchField {
    OpField field;
    uint32_t value = 0;
  };
  std::vector<MatchField> match_fields;
  uint32_t match_mask = 0;
  uint32_t match_bits = 0;

  // Canonical operand fields.  K-ISA operations have at most three register
  // operands (rd/ra/rb) and one immediate.
  OpField f_rd, f_ra, f_rb, f_imm;
  bool rd_is_dst = false;
  bool rd_is_src = false;
  bool ra_is_src = false;
  bool rb_is_src = false;

  int delay = 1; ///< latency in cycles; adl::kDelayMem = memory model
  adl::MemKind mem = adl::MemKind::None;
  bool is_branch = false;
  bool is_call = false;
  bool is_ret = false;
  bool serial_only = false;

  uint64_t implicit_reads = 0;  ///< bit i = register i (bit 32 = IP)
  uint64_t implicit_writes = 0;

  adl::RelocKind reloc = adl::RelocKind::None;
  std::vector<std::string> syntax; ///< assembler operand pattern

  ExecFn fn = nullptr;
  const adl::OperationDef* def = nullptr;

  bool is_load() const { return mem == adl::MemKind::Load; }
  bool is_store() const { return mem == adl::MemKind::Store; }
  bool uses_memory_model() const { return delay == adl::kDelayMem; }
};

/// The operation table of one ISA configuration.
struct IsaInfo {
  std::string name;
  int id = 0;
  int issue_width = 1;
  bool is_default = false;
  std::vector<const OpInfo*> ops; ///< operations valid in this ISA
};

/// Operand values for encode_op.
struct OpOperands {
  unsigned rd = 0;
  unsigned ra = 0;
  unsigned rb = 0;
  int32_t imm = 0;
};

/// All ISAs of an architecture plus shared metadata.
class IsaSet {
public:
  IsaSet() = default;
  IsaSet(IsaSet&&) = default;
  IsaSet& operator=(IsaSet&&) = default;

  const adl::AdlModel& model() const { return model_; }
  uint8_t stop_bit() const { return stop_bit_; }
  int register_count() const { return register_count_; }
  int zero_register() const { return zero_register_; }

  const std::vector<IsaInfo>& isas() const { return isas_; }
  const IsaInfo* find_isa(int id) const;
  const IsaInfo* find_isa(std::string_view name) const;
  const IsaInfo& default_isa() const;
  int max_isa_id() const { return max_isa_id_; }

  /// All operations (superset over all ISAs), in ADL order.
  const std::vector<const OpInfo*>& all_ops() const { return all_op_ptrs_; }
  const OpInfo* find_op(std::string_view name) const;

  /// Detects the operation encoded in `word` using the given ISA's table.
  /// Returns nullptr when no constant-field pattern matches.  This is the
  /// deliberately simple linear scan the decode cache amortises (§V-A).
  const OpInfo* detect(const IsaInfo& isa, uint32_t word) const;

  /// True if `word` has the stop bit set (last operation of an instruction).
  bool is_stop(uint32_t word) const { return ((word >> stop_bit_) & 1u) != 0; }

  /// Encodes one operation word: the operation's constant match fields plus
  /// the given operand values; `stop` sets the stop bit (instruction end).
  /// The inverse of detect + field extraction, used by consistency checks
  /// and test fixtures; the assembler keeps its own richer encoder.
  uint32_t encode_op(const OpInfo& op, const OpOperands& operands, bool stop) const;

private:
  friend class TargetGen;

  adl::AdlModel model_;
  uint8_t stop_bit_ = 31;
  int register_count_ = 32;
  int zero_register_ = 0;
  int max_isa_id_ = 0;
  std::vector<std::unique_ptr<OpInfo>> ops_;
  std::vector<const OpInfo*> all_op_ptrs_;
  std::vector<IsaInfo> isas_;
};

} // namespace ksim::isa
