// TargetGen — turns an ADL model into the runtime operation tables used by
// the simulator (paper Fig. 3: "TargetGen" generates the register table,
// operation tables and simulation functions from the ADL description).
//
// The paper's TargetGen emits C++ source that is compiled into the tools; we
// build the same tables at load time and bind simulation functions from the
// semantics registry.  emit_cpp() additionally renders the table as a C++
// fragment equivalent to what an offline generator would produce (exercised
// by tests and the quickstart example to document the correspondence).
#pragma once

#include <functional>
#include <string>

#include "adl/model.h"
#include "isa/optable.h"

namespace ksim::isa {

/// Resolves an ADL semantic name to a simulation function.
using SemanticResolver = std::function<ExecFn(std::string_view)>;

class TargetGen {
public:
  /// Builds the operation tables for `model`.  Throws ksim::Error on
  /// inconsistent models (unknown semantics, ambiguous encodings, operands
  /// outside the canonical rd/ra/rb/imm set).
  static IsaSet build(adl::AdlModel model);
  static IsaSet build(adl::AdlModel model, const SemanticResolver& resolver);

  /// Renders the operation tables of `set` as a C++ source fragment.
  static std::string emit_cpp(const IsaSet& set);
};

} // namespace ksim::isa
