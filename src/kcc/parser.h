// Recursive-descent parser for MiniC.
//
// Grammar (informal):
//   unit      := (funcdecl | vardecl)*
//   funcdecl  := [isa("NAME")] type ident '(' params ')' (block | ';')
//   vardecl   := [const] type ident ['[' intexpr ']'] ['=' init] ';'
//   stmt      := block | if | while | do-while | for | break; | continue;
//              | return [expr]; | vardecl | expr; | ;
//   expr      := assignment with the usual C operator precedence,
//                including ?:, && and || (short-circuit), casts, unary
//                & * - ~ ! ++ --, postfix ++ -- calls and indexing.
#pragma once

#include "kcc/ast.h"
#include "support/diag.h"

namespace ksim::kcc {

/// Parses a translation unit.  Problems go to `diags`; the returned tree is
/// only meaningful when !diags.has_errors().
TranslationUnit parse(std::string_view source, std::string_view file_name,
                      DiagEngine& diags);

} // namespace ksim::kcc
