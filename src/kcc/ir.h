// Three-address intermediate representation of the MiniC compiler.
// Virtual registers (non-SSA), basic blocks, explicit frame objects for
// address-taken locals and local arrays.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kcc/ast.h"

namespace ksim::kcc {

enum class IrOp : uint8_t {
  // dst = a OP b (or OP imm when has_imm)
  Add, Sub, Mul, DivS, DivU, RemS, RemU, And, Or, Xor, Shl, ShrL, ShrA,
  SltS, SltU, SleS, SleU, Seq, Sne,
  LiConst,   ///< dst = imm
  LaGlobal,  ///< dst = &sym + imm
  FrameAddr, ///< dst = sp-relative address of frame object `frame_id` (+imm)
  Mv,        ///< dst = a
  Load,      ///< dst = size-byte load from [a + imm] (is_signed: sign-extend)
  Store,     ///< size-byte store of b to [a + imm]
  Call,      ///< dst (optional, -1) = sym(args)
  Ret,       ///< return a (-1 for void)
  Br,        ///< unconditional jump to block `target`
  CondBr,    ///< if (a cc b) goto target else goto target2
};

/// Condition codes matching the branch operations of K-ISA.
enum class Cc : uint8_t { Eq, Ne, LtS, GeS, LtU, GeU };

Cc negate_cc(Cc cc);

struct IrInst {
  IrOp op = IrOp::Mv;
  int dst = -1;
  int a = -1;
  int b = -1;
  int32_t imm = 0;
  bool has_imm = false;
  uint8_t size = 4;       ///< Load/Store width
  bool is_signed = true;  ///< Load sign extension; DivS vs DivU chosen by op
  Cc cc = Cc::Eq;
  std::string sym;        ///< LaGlobal / Call
  std::vector<int> args;  ///< Call arguments
  int target = -1;        ///< Br / CondBr taken
  int target2 = -1;       ///< CondBr fallthrough
  int frame_id = -1;      ///< FrameAddr
  int line = 0;           ///< source line (.loc)
};

struct IrBlock {
  int id = 0;
  std::vector<IrInst> insts; ///< last instruction is the terminator
};

struct FrameObject {
  std::string name;
  int size = 4;
  int align = 4;
};

struct IrFunction {
  std::string name;
  std::string isa;           ///< "" = unit default
  Type ret;
  std::vector<int> param_vregs;
  int num_vregs = 0;
  std::vector<IrBlock> blocks; ///< block id == vector index
  std::vector<FrameObject> frame;
  int line = 0;
};

struct GlobalVar {
  std::string name;
  int size = 4;
  int align = 4;
  bool zero_init = true;          ///< true → .bss
  std::vector<uint8_t> init_data; ///< when !zero_init
};

struct FuncSig {
  Type ret;
  std::vector<Type> params;
  std::string isa;    ///< "" = unit default
  bool variadic = false;
  bool isa_any = false; ///< callable from any ISA without switching (libc stubs)
  bool defined = false;
  bool builtin = false; ///< implicit libc declaration; user code may override
                        ///< it with a simulated-ISA implementation (§V-E)
};

struct IrProgram {
  std::vector<GlobalVar> globals;
  std::vector<IrFunction> functions;
  std::map<std::string, FuncSig> signatures;
};

/// Human-readable dump (tests and -emit-ir debugging).
std::string dump(const IrFunction& fn);
std::string dump(const IrProgram& prog);

/// Reorders blocks into fallthrough-friendly chains (a branch's false edge
/// is placed right after it whenever possible), renumbers them, and drops
/// unreachable blocks.  Run after IR generation, before codegen.
void layout_blocks(IrFunction& fn);

} // namespace ksim::kcc
