#include "kcc/schedule.h"

#include <algorithm>

#include "support/error.h"
#include "support/strings.h"

namespace ksim::kcc {
namespace {

std::string lower(std::string s) {
  for (char& c : s)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return s;
}

uint64_t reads_mask(const MachineOp& op) {
  const isa::OpInfo& info = *op.info;
  uint64_t m = info.implicit_reads & 0xFFFFFFFFull;
  if (info.ra_is_src) m |= (uint64_t{1} << op.ra);
  if (info.rb_is_src) m |= (uint64_t{1} << op.rb);
  if (info.rd_is_src) m |= (uint64_t{1} << op.rd);
  return m & ~uint64_t{1}; // r0 never carries a dependence
}

uint64_t writes_mask(const MachineOp& op) {
  const isa::OpInfo& info = *op.info;
  uint64_t m = info.implicit_writes & 0xFFFFFFFFull;
  if (info.rd_is_dst) m |= (uint64_t{1} << op.rd);
  return m & ~uint64_t{1};
}

int op_latency(const MachineOp& op) {
  if (op.info->uses_memory_model()) return 3; // L1 hit latency
  return std::max(op.info->delay, 1);
}

} // namespace

std::string render(const MachineOp& op) {
  std::string out = lower(op.info->name);
  bool first = true;
  for (const std::string& pat : op.info->syntax) {
    out += first ? " " : ", ";
    first = false;
    if (pat == "rd") {
      out += "r" + std::to_string(op.rd);
    } else if (pat == "ra") {
      out += "r" + std::to_string(op.ra);
    } else if (pat == "rb") {
      out += "r" + std::to_string(op.rb);
    } else if (pat == "imm") {
      if (op.has_sym) {
        out += op.sym;
        if (op.sym_add != 0) out += strf("%+d", op.sym_add);
      } else {
        out += std::to_string(op.imm);
      }
    } else if (pat == "imm(ra)") {
      out += strf("%d(r%u)", op.imm, op.ra);
    }
  }
  return out;
}

std::vector<std::vector<MachineOp>> schedule_block(const std::vector<MachineOp>& ops,
                                                   int issue_width) {
  std::vector<std::vector<MachineOp>> groups;
  const size_t n = ops.size();
  if (n == 0) return groups;
  if (issue_width <= 1) {
    for (const MachineOp& op : ops) groups.push_back({op});
    return groups;
  }

  // -- dependence edges (i < j) -----------------------------------------------
  std::vector<std::vector<uint32_t>> strict_preds(n);
  std::vector<std::vector<uint32_t>> weak_preds(n);
  std::vector<std::vector<uint32_t>> succs(n); // union, for priorities

  for (size_t j = 0; j < n; ++j) {
    const uint64_t r_j = reads_mask(ops[j]);
    const uint64_t w_j = writes_mask(ops[j]);
    const bool mem_j = ops[j].info->mem != adl::MemKind::None;
    const bool store_j = ops[j].info->is_store();
    for (size_t i = 0; i < j; ++i) {
      const uint64_t r_i = reads_mask(ops[i]);
      const uint64_t w_i = writes_mask(ops[i]);
      const bool store_i = ops[i].info->is_store();
      const bool mem_i = ops[i].info->mem != adl::MemKind::None;

      bool strict = false;
      bool weak = false;
      if ((w_i & r_j) != 0) strict = true;                       // RAW
      if ((w_i & w_j) != 0) strict = true;                       // WAW
      if ((r_i & w_j) != 0) weak = true;                         // WAR
      if (store_i && mem_j) strict = true;                       // mem after store
      if (mem_i && store_j) strict = true;                       // store after mem
      if (ops[i].no_group || ops[j].no_group) strict = true;     // barriers
      if (ops[i].info->is_branch) strict = true;                 // nothing after a branch

      if (strict) {
        strict_preds[j].push_back(static_cast<uint32_t>(i));
        succs[i].push_back(static_cast<uint32_t>(j));
      } else if (weak) {
        weak_preds[j].push_back(static_cast<uint32_t>(i));
        succs[i].push_back(static_cast<uint32_t>(j));
      }
    }
  }

  // -- critical-path priorities -------------------------------------------------
  std::vector<int> priority(n, 0);
  for (size_t i = n; i-- > 0;) {
    int best = 0;
    for (uint32_t s : succs[i]) best = std::max(best, priority[s]);
    priority[i] = best + op_latency(ops[i]);
  }

  // -- greedy grouping -------------------------------------------------------------
  // group_of[i]: -1 unscheduled, otherwise the group index.
  std::vector<int> group_of(n, -1);
  size_t scheduled = 0;
  const size_t branch_index = ops.back().info->is_branch ? n - 1 : n;

  while (scheduled < n) {
    const int g = static_cast<int>(groups.size());
    std::vector<MachineOp> group;
    uint64_t group_writes = 0;

    while (static_cast<int>(group.size()) < issue_width) {
      int pick = -1;
      for (size_t j = 0; j < n; ++j) {
        if (group_of[j] >= 0) continue;
        if (ops[j].no_group && !group.empty()) continue;
        // The trailing branch may only join the final group (everything else
        // must already be scheduled, counting the current group's members).
        if (j == branch_index && scheduled + 1 < n) continue;
        bool ready = true;
        for (uint32_t p : strict_preds[j])
          if (group_of[p] < 0 || group_of[p] == g) {
            ready = false;
            break;
          }
        if (ready)
          for (uint32_t p : weak_preds[j])
            if (group_of[p] < 0) { // may share the group, but not be skipped
              ready = false;
              break;
            }
        // No same-group WAW/RAW against already chosen members (strict preds
        // cover RAW/WAW edges; this guards register reuse among *independent*
        // picks, e.g. two LiConst into the same register cannot happen, but a
        // same-destination pair without an edge cannot either — keep a cheap
        // write-set check for safety).
        if (ready && (writes_mask(ops[j]) & group_writes) != 0) ready = false;
        if (!ready) continue;
        if (pick < 0 || priority[j] > priority[static_cast<size_t>(pick)]) {
          pick = static_cast<int>(j);
        }
      }
      if (pick < 0) break;
      group_of[static_cast<size_t>(pick)] = g;
      group_writes |= writes_mask(ops[static_cast<size_t>(pick)]);
      group.push_back(ops[static_cast<size_t>(pick)]);
      ++scheduled;
      if (ops[static_cast<size_t>(pick)].no_group) break;
    }
    check(!group.empty(), "scheduler: no progress (cyclic dependences?)");
    groups.push_back(std::move(group));
  }
  return groups;
}

} // namespace ksim::kcc
