#include "kcc/ir.h"

#include "support/error.h"
#include "support/strings.h"

namespace ksim::kcc {

Cc negate_cc(Cc cc) {
  switch (cc) {
    case Cc::Eq: return Cc::Ne;
    case Cc::Ne: return Cc::Eq;
    case Cc::LtS: return Cc::GeS;
    case Cc::GeS: return Cc::LtS;
    case Cc::LtU: return Cc::GeU;
    case Cc::GeU: return Cc::LtU;
  }
  throw Error("negate_cc: bad cc");
}

namespace {

const char* op_name(IrOp op) {
  switch (op) {
    case IrOp::Add: return "add";
    case IrOp::Sub: return "sub";
    case IrOp::Mul: return "mul";
    case IrOp::DivS: return "divs";
    case IrOp::DivU: return "divu";
    case IrOp::RemS: return "rems";
    case IrOp::RemU: return "remu";
    case IrOp::And: return "and";
    case IrOp::Or: return "or";
    case IrOp::Xor: return "xor";
    case IrOp::Shl: return "shl";
    case IrOp::ShrL: return "shrl";
    case IrOp::ShrA: return "shra";
    case IrOp::SltS: return "slts";
    case IrOp::SltU: return "sltu";
    case IrOp::SleS: return "sles";
    case IrOp::SleU: return "sleu";
    case IrOp::Seq: return "seq";
    case IrOp::Sne: return "sne";
    case IrOp::LiConst: return "li";
    case IrOp::LaGlobal: return "la";
    case IrOp::FrameAddr: return "frameaddr";
    case IrOp::Mv: return "mv";
    case IrOp::Load: return "load";
    case IrOp::Store: return "store";
    case IrOp::Call: return "call";
    case IrOp::Ret: return "ret";
    case IrOp::Br: return "br";
    case IrOp::CondBr: return "condbr";
  }
  return "?";
}

const char* cc_name(Cc cc) {
  switch (cc) {
    case Cc::Eq: return "eq";
    case Cc::Ne: return "ne";
    case Cc::LtS: return "lt";
    case Cc::GeS: return "ge";
    case Cc::LtU: return "ltu";
    case Cc::GeU: return "geu";
  }
  return "?";
}

std::string inst_to_string(const IrInst& i) {
  switch (i.op) {
    case IrOp::LiConst: return strf("v%d = li %d", i.dst, i.imm);
    case IrOp::LaGlobal: return strf("v%d = la %s+%d", i.dst, i.sym.c_str(), i.imm);
    case IrOp::FrameAddr: return strf("v%d = frameaddr #%d+%d", i.dst, i.frame_id, i.imm);
    case IrOp::Mv: return strf("v%d = v%d", i.dst, i.a);
    case IrOp::Load:
      return strf("v%d = load%u%s [v%d+%d]", i.dst, i.size, i.is_signed ? "s" : "u",
                  i.a, i.imm);
    case IrOp::Store: return strf("store%u [v%d+%d], v%d", i.size, i.a, i.imm, i.b);
    case IrOp::Call: {
      std::string s = i.dst >= 0 ? strf("v%d = call %s(", i.dst, i.sym.c_str())
                                 : strf("call %s(", i.sym.c_str());
      for (size_t k = 0; k < i.args.size(); ++k)
        s += strf("%sv%d", k > 0 ? ", " : "", i.args[k]);
      return s + ")";
    }
    case IrOp::Ret: return i.a >= 0 ? strf("ret v%d", i.a) : "ret";
    case IrOp::Br: return strf("br b%d", i.target);
    case IrOp::CondBr:
      return strf("if (v%d %s v%d) br b%d else b%d", i.a, cc_name(i.cc), i.b, i.target,
                  i.target2);
    default:
      if (i.has_imm) return strf("v%d = %s v%d, %d", i.dst, op_name(i.op), i.a, i.imm);
      return strf("v%d = %s v%d, v%d", i.dst, op_name(i.op), i.a, i.b);
  }
}

} // namespace

std::string dump(const IrFunction& fn) {
  std::string out = strf("function %s (%zu params, %d vregs, isa=%s)\n", fn.name.c_str(),
                         fn.param_vregs.size(), fn.num_vregs,
                         fn.isa.empty() ? "<default>" : fn.isa.c_str());
  for (size_t i = 0; i < fn.frame.size(); ++i)
    out += strf("  frame #%zu: %s, %d bytes\n", i, fn.frame[i].name.c_str(),
                fn.frame[i].size);
  for (const IrBlock& b : fn.blocks) {
    out += strf("b%d:\n", b.id);
    for (const IrInst& inst : b.insts) out += "  " + inst_to_string(inst) + "\n";
  }
  return out;
}

std::string dump(const IrProgram& prog) {
  std::string out;
  for (const GlobalVar& g : prog.globals)
    out += strf("global %s: %d bytes%s\n", g.name.c_str(), g.size,
                g.zero_init ? " (bss)" : "");
  for (const IrFunction& fn : prog.functions) out += dump(fn);
  return out;
}

void layout_blocks(IrFunction& fn) {
  const size_t n = fn.blocks.size();
  if (n == 0) return;

  // Reachability from the entry block.
  std::vector<bool> reachable(n, false);
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    const int b = stack.back();
    stack.pop_back();
    if (reachable[static_cast<size_t>(b)]) continue;
    reachable[static_cast<size_t>(b)] = true;
    const IrInst& t = fn.blocks[static_cast<size_t>(b)].insts.back();
    if (t.op == IrOp::Br) stack.push_back(t.target);
    if (t.op == IrOp::CondBr) {
      stack.push_back(t.target);
      stack.push_back(t.target2);
    }
  }

  // Chain layout: follow each block's fallthrough edge while possible.
  std::vector<int> order;
  std::vector<bool> placed(n, false);
  std::vector<int> worklist = {0};
  size_t scan = 0;
  while (true) {
    int b = -1;
    while (!worklist.empty()) {
      const int cand = worklist.back();
      worklist.pop_back();
      if (!placed[static_cast<size_t>(cand)]) {
        b = cand;
        break;
      }
    }
    if (b < 0) {
      while (scan < n && (placed[scan] || !reachable[scan])) ++scan;
      if (scan == n) break;
      b = static_cast<int>(scan);
    }
    // Extend the chain through fallthrough edges.
    while (b >= 0 && !placed[static_cast<size_t>(b)]) {
      placed[static_cast<size_t>(b)] = true;
      order.push_back(b);
      const IrInst& t = fn.blocks[static_cast<size_t>(b)].insts.back();
      int next = -1;
      if (t.op == IrOp::Br) {
        next = t.target;
      } else if (t.op == IrOp::CondBr) {
        worklist.push_back(t.target);
        next = t.target2;
      }
      b = next;
    }
  }

  // Renumber and rewrite targets.
  std::vector<int> new_id(n, -1);
  for (size_t i = 0; i < order.size(); ++i)
    new_id[static_cast<size_t>(order[i])] = static_cast<int>(i);
  std::vector<IrBlock> blocks;
  blocks.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    IrBlock blk = std::move(fn.blocks[static_cast<size_t>(order[i])]);
    blk.id = static_cast<int>(i);
    IrInst& t = blk.insts.back();
    if (t.op == IrOp::Br) t.target = new_id[static_cast<size_t>(t.target)];
    if (t.op == IrOp::CondBr) {
      t.target = new_id[static_cast<size_t>(t.target)];
      t.target2 = new_id[static_cast<size_t>(t.target2)];
    }
    blocks.push_back(std::move(blk));
  }
  fn.blocks = std::move(blocks);
}

} // namespace ksim::kcc
