#include "kcc/irgen.h"

#include <functional>
#include <map>
#include <set>

#include "support/bits.h"
#include "support/error.h"
#include "support/strings.h"

namespace ksim::kcc {
namespace {

struct Value {
  int vreg = -1;
  Type type;
  /// True when vreg is a freshly created temporary owned by this expression
  /// (safe to adopt as a variable's register without a copy).
  bool fresh = false;
};

struct LValue {
  enum class Kind { Reg, Mem };
  Kind kind = Kind::Reg;
  int vreg = -1;      ///< Reg: the variable's vreg; Mem: the address base vreg
  int32_t offset = 0; ///< Mem only
  Type type;          ///< type of the stored value
};

struct VarInfo {
  enum class Kind { Global, LocalReg, LocalFrame };
  Kind kind = Kind::LocalReg;
  Type type;          ///< element type for arrays
  bool is_array = false;
  int vreg = -1;
  int frame_id = -1;
  std::string sym;
};

class IrGen {
public:
  IrGen(const TranslationUnit& unit, std::string_view file, DiagEngine& diags)
      : unit_(unit), file_(file), diags_(diags) {}

  IrProgram run() {
    declare_builtins();
    for (const auto& g : unit_.globals) gen_global(*g);
    for (const auto& f : unit_.functions) declare_function(*f);
    for (const auto& f : unit_.functions)
      if (f->body != nullptr) gen_function(*f);
    return std::move(prog_);
  }

private:
  void error(int line, std::string msg) {
    diags_.error({std::string(file_), line, 0}, std::move(msg));
  }

  // -- declarations -----------------------------------------------------------

  void declare_builtins() {
    const Type i{Type::Base::Int, 0};
    const Type u{Type::Base::UInt, 0};
    const Type v{Type::Base::Void, 0};
    const Type cp{Type::Base::Char, 1};
    auto add = [&](const char* name, Type ret, std::vector<Type> params,
                   bool variadic = false) {
      FuncSig sig;
      sig.ret = ret;
      sig.params = std::move(params);
      sig.variadic = variadic;
      sig.isa_any = true; // stop-bit stubs decode identically in every ISA
      sig.defined = true; // provided by the libc stub object
      sig.builtin = true; // may be overridden by a simulated implementation
      prog_.signatures[name] = std::move(sig);
    };
    add("exit", v, {i});
    add("putchar", i, {i});
    add("puts", i, {cp});
    add("printf", i, {cp}, /*variadic=*/true);
    add("malloc", cp, {u});
    add("free", v, {cp});
    add("memcpy", cp, {cp, cp, u});
    add("memset", cp, {cp, i, u});
    add("strlen", u, {cp});
    add("strcmp", i, {cp, cp});
    add("strcpy", cp, {cp, cp});
    add("rand", i, {});
    add("srand", v, {u});
    add("abort", v, {});
    add("put_int", v, {i});
    add("put_hex", v, {u});
  }

  void declare_function(const FuncDecl& f) {
    FuncSig sig;
    sig.ret = f.ret;
    for (const Param& p : f.params) sig.params.push_back(p.type);
    sig.isa = f.isa;
    sig.defined = f.body != nullptr;
    const auto it = prog_.signatures.find(f.name);
    if (it == prog_.signatures.end()) {
      prog_.signatures[f.name] = std::move(sig);
      return;
    }
    FuncSig& old = it->second;
    if (old.builtin && sig.defined) {
      // User code replaces a native library function with a real
      // implementation on the simulated ISA (paper §V-E).
      if (old.params.size() != sig.params.size())
        error(f.line, "replacement of builtin '" + f.name + "' changes its signature");
      prog_.signatures[f.name] = std::move(sig);
      return;
    }
    if (old.params.size() != sig.params.size() && !old.variadic)
      error(f.line, "conflicting declaration of '" + f.name + "'");
    if (old.defined && sig.defined)
      error(f.line, "redefinition of function '" + f.name + "'");
    if (sig.defined) {
      old.defined = true;
      if (!sig.isa.empty()) old.isa = sig.isa;
    }
    if (old.isa.empty() && !sig.isa.empty()) old.isa = sig.isa;
  }

  // -- constant evaluation -------------------------------------------------------

  bool const_eval(const Expr& e, int64_t& out) {
    switch (e.kind) {
      case Expr::Kind::IntLit:
        out = e.value;
        return true;
      case Expr::Kind::Unary: {
        int64_t v = 0;
        if (e.a == nullptr || !const_eval(*e.a, v)) return false;
        switch (e.op) {
          case Tok::Minus: out = -v; return true;
          case Tok::Tilde: out = ~v; return true;
          case Tok::Bang: out = v == 0 ? 1 : 0; return true;
          default: return false;
        }
      }
      case Expr::Kind::Cast: {
        int64_t v = 0;
        if (!const_eval(*e.a, v)) return false;
        if (e.cast_type.is_char() && e.cast_type.ptr == 0)
          out = e.cast_type.is_unsigned() ? (v & 0xFF)
                                          : static_cast<int8_t>(v & 0xFF);
        else
          out = static_cast<int32_t>(v);
        return true;
      }
      case Expr::Kind::Binary: {
        int64_t a = 0;
        int64_t b = 0;
        if (!const_eval(*e.a, a) || !const_eval(*e.b, b)) return false;
        const auto ua = static_cast<uint32_t>(a);
        const auto ub = static_cast<uint32_t>(b);
        switch (e.op) {
          case Tok::Plus: out = static_cast<int32_t>(ua + ub); return true;
          case Tok::Minus: out = static_cast<int32_t>(ua - ub); return true;
          case Tok::Star: out = static_cast<int32_t>(ua * ub); return true;
          case Tok::Slash:
            if (b == 0) return false;
            out = static_cast<int32_t>(a / b);
            return true;
          case Tok::Percent:
            if (b == 0) return false;
            out = static_cast<int32_t>(a % b);
            return true;
          case Tok::Amp: out = static_cast<int32_t>(ua & ub); return true;
          case Tok::Pipe: out = static_cast<int32_t>(ua | ub); return true;
          case Tok::Caret: out = static_cast<int32_t>(ua ^ ub); return true;
          case Tok::Shl: out = static_cast<int32_t>(ua << (ub & 31)); return true;
          case Tok::Shr: out = static_cast<int32_t>(ua >> (ub & 31)); return true;
          case Tok::Lt: out = a < b; return true;
          case Tok::Gt: out = a > b; return true;
          case Tok::Le: out = a <= b; return true;
          case Tok::Ge: out = a >= b; return true;
          case Tok::EqEq: out = a == b; return true;
          case Tok::NotEq: out = a != b; return true;
          default: return false;
        }
      }
      default:
        return false;
    }
  }

  // -- globals --------------------------------------------------------------------

  void append_scalar(std::vector<uint8_t>& bytes, int64_t value, int size) {
    for (int i = 0; i < size; ++i)
      bytes.push_back(static_cast<uint8_t>(static_cast<uint64_t>(value) >> (8 * i)));
  }

  void gen_global(const VarDecl& d) {
    if (globals_.count(d.name) != 0 || prog_.signatures.count(d.name) != 0) {
      error(d.line, "redefinition of '" + d.name + "'");
      return;
    }
    GlobalVar g;
    g.name = d.name;
    const int elem = d.type.size();
    const int count = d.array_size >= 0 ? d.array_size : 1;
    g.size = elem * count;
    g.align = elem >= 4 ? 4 : elem;

    if (d.has_init_string) {
      g.zero_init = false;
      for (char c : d.init_string) g.init_data.push_back(static_cast<uint8_t>(c));
      g.init_data.resize(static_cast<size_t>(g.size), 0);
    } else if (!d.init_list.empty()) {
      if (static_cast<int>(d.init_list.size()) > count)
        error(d.line, "too many initializers for '" + d.name + "'");
      g.zero_init = false;
      for (const ExprPtr& e : d.init_list) {
        int64_t v = 0;
        if (!const_eval(*e, v)) {
          error(e->line, "global initializer must be constant");
          v = 0;
        }
        append_scalar(g.init_data, v, elem);
      }
      g.init_data.resize(static_cast<size_t>(g.size), 0);
    } else if (d.init != nullptr) {
      int64_t v = 0;
      if (!const_eval(*d.init, v)) {
        error(d.init->line, "global initializer must be constant");
        v = 0;
      }
      if (v != 0) {
        g.zero_init = false;
        append_scalar(g.init_data, v, elem);
        g.init_data.resize(static_cast<size_t>(g.size), 0);
      }
    }

    VarInfo info;
    info.kind = VarInfo::Kind::Global;
    info.type = d.type;
    info.is_array = d.array_size >= 0;
    info.sym = d.name;
    globals_[d.name] = info;
    prog_.globals.push_back(std::move(g));
  }

  std::string intern_string(const std::string& text) {
    const auto it = string_pool_.find(text);
    if (it != string_pool_.end()) return it->second;
    const std::string name = strf(".Lstr%zu", string_pool_.size());
    GlobalVar g;
    g.name = name;
    g.size = static_cast<int>(text.size()) + 1;
    g.align = 1;
    g.zero_init = false;
    for (char c : text) g.init_data.push_back(static_cast<uint8_t>(c));
    g.init_data.push_back(0);
    prog_.globals.push_back(std::move(g));
    string_pool_[text] = name;
    return name;
  }

  // -- function generation -----------------------------------------------------------

  int new_vreg() { return fn_->num_vregs++; }

  int new_block() {
    const int id = static_cast<int>(fn_->blocks.size());
    fn_->blocks.push_back({id, {}});
    return id;
  }

  IrInst& emit(IrInst inst) {
    inst.line = cur_line_;
    fn_->blocks[static_cast<size_t>(cur_block_)].insts.push_back(std::move(inst));
    return fn_->blocks[static_cast<size_t>(cur_block_)].insts.back();
  }

  bool block_terminated() const {
    const auto& insts = fn_->blocks[static_cast<size_t>(cur_block_)].insts;
    if (insts.empty()) return false;
    const IrOp op = insts.back().op;
    return op == IrOp::Br || op == IrOp::CondBr || op == IrOp::Ret;
  }

  void switch_to(int block) {
    if (!block_terminated()) {
      IrInst br;
      br.op = IrOp::Br;
      br.target = block;
      emit(br);
    }
    cur_block_ = block;
    const_cache_.clear();
    global_addr_cache_.clear();
  }

  /// Starts emitting into `block` without adding a fallthrough branch
  /// (used after explicit terminators).
  void start_block(int block) {
    cur_block_ = block;
    const_cache_.clear();
    global_addr_cache_.clear();
  }

  int materialize_const(int32_t value) {
    const auto it = const_cache_.find(value);
    if (it != const_cache_.end()) return it->second;
    IrInst li;
    li.op = IrOp::LiConst;
    li.dst = new_vreg();
    li.imm = value;
    emit(li);
    const_cache_[value] = li.dst;
    return li.dst;
  }

  // Scope management.
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }
  VarInfo* find_var(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    const auto g = globals_.find(name);
    return g == globals_.end() ? nullptr : &g->second;
  }

  /// Collects names of locals whose address is taken anywhere in the function
  /// (conservative, name-based).
  void collect_addr_taken(const Stmt& s, std::set<std::string>& out) {
    const std::function<void(const Expr&)> walk_expr = [&](const Expr& e) {
      if (e.kind == Expr::Kind::Unary && e.op == Tok::Amp && e.a != nullptr &&
          e.a->kind == Expr::Kind::Var)
        out.insert(e.a->text);
      for (const Expr* child : {e.a.get(), e.b.get(), e.c.get()})
        if (child != nullptr) walk_expr(*child);
      for (const ExprPtr& arg : e.args) walk_expr(*arg);
    };
    const std::function<void(const Stmt&)> walk = [&](const Stmt& st) {
      for (const Expr* e :
           {st.cond.get(), st.step.get(), st.expr.get()})
        if (e != nullptr) walk_expr(*e);
      if (st.decl != nullptr) {
        if (st.decl->init != nullptr) walk_expr(*st.decl->init);
        for (const ExprPtr& e : st.decl->init_list) walk_expr(*e);
      }
      for (const Stmt* child :
           {st.then_stmt.get(), st.else_stmt.get(), st.init_stmt.get()})
        if (child != nullptr) walk(*child);
      for (const StmtPtr& child : st.body) walk(*child);
    };
    walk(s);
  }

  void gen_function(const FuncDecl& f) {
    IrFunction fn;
    fn.name = f.name;
    fn.isa = f.isa;
    fn.ret = f.ret;
    fn.line = f.line;
    fn_ = &fn;
    cur_fn_decl_ = &f;
    addr_taken_.clear();
    collect_addr_taken(*f.body, addr_taken_);

    scopes_.clear();
    push_scope();
    start_block(new_block());

    for (const Param& p : f.params) {
      const int vreg = new_vreg();
      fn.param_vregs.push_back(vreg);
      VarInfo info;
      info.type = p.type;
      if (addr_taken_.count(p.name) != 0) {
        info.kind = VarInfo::Kind::LocalFrame;
        info.frame_id = static_cast<int>(fn.frame.size());
        fn.frame.push_back({p.name, 4, 4});
        // Copy the incoming value to its frame slot.
        IrInst addr;
        addr.op = IrOp::FrameAddr;
        addr.dst = new_vreg();
        addr.frame_id = info.frame_id;
        emit(addr);
        IrInst store;
        store.op = IrOp::Store;
        store.a = addr.dst;
        store.b = vreg;
        store.size = 4;
        emit(store);
      } else {
        info.kind = VarInfo::Kind::LocalReg;
        info.vreg = vreg;
      }
      scopes_.back()[p.name] = info;
    }

    gen_stmt(*f.body);

    if (!block_terminated()) {
      // Implicit return (0 for value-returning functions, as for main in C99).
      IrInst ret;
      ret.op = IrOp::Ret;
      ret.a = f.ret.is_void() ? -1 : materialize_const(0);
      emit(ret);
    }
    // Every block must end in a terminator for the layout pass; blocks that
    // were created but never reached (dead join points) get a plain return.
    for (IrBlock& b : fn.blocks) {
      const bool terminated =
          !b.insts.empty() && (b.insts.back().op == IrOp::Br ||
                               b.insts.back().op == IrOp::CondBr ||
                               b.insts.back().op == IrOp::Ret);
      if (!terminated) {
        IrInst ret;
        ret.op = IrOp::Ret;
        ret.a = -1;
        b.insts.push_back(ret);
      }
    }
    layout_blocks(fn);
    pop_scope();
    prog_.functions.push_back(std::move(fn));
    fn_ = nullptr;
  }

  // -- statements -----------------------------------------------------------------------

  void gen_stmt(const Stmt& s) {
    cur_line_ = s.line;
    switch (s.kind) {
      case Stmt::Kind::Empty:
        return;
      case Stmt::Kind::Block: {
        push_scope();
        for (const StmtPtr& child : s.body) gen_stmt(*child);
        pop_scope();
        return;
      }
      case Stmt::Kind::Decl:
        gen_local_decl(*s.decl);
        return;
      case Stmt::Kind::ExprStmt:
        gen_expr(*s.expr);
        return;
      case Stmt::Kind::Return: {
        IrInst ret;
        ret.op = IrOp::Ret;
        if (s.expr != nullptr) {
          if (cur_fn_decl_->ret.is_void())
            error(s.line, "returning a value from a void function");
          ret.a = gen_expr(*s.expr).vreg;
        } else if (!cur_fn_decl_->ret.is_void()) {
          error(s.line, "non-void function must return a value");
          ret.a = materialize_const(0);
        }
        emit(ret);
        start_block(new_block());
        return;
      }
      case Stmt::Kind::If: {
        const int then_b = new_block();
        const int else_b = s.else_stmt != nullptr ? new_block() : -1;
        const int join_b = new_block();
        gen_cond(*s.cond, then_b, else_b >= 0 ? else_b : join_b);
        start_block(then_b);
        gen_stmt(*s.then_stmt);
        switch_to(join_b);
        if (else_b >= 0) {
          start_block(else_b);
          gen_stmt(*s.else_stmt);
          switch_to(join_b);
        }
        start_block(join_b);
        return;
      }
      case Stmt::Kind::While: {
        // Rotated loop: entry test, then a bottom-tested body (one branch per
        // iteration instead of a conditional branch plus a jump).
        const int body = new_block();
        const int check = new_block();
        const int exit = new_block();
        gen_cond(*s.cond, body, exit);
        start_block(body);
        loop_stack_.push_back({check, exit});
        gen_stmt(*s.then_stmt);
        loop_stack_.pop_back();
        switch_to(check);
        gen_cond(*s.cond, body, exit);
        start_block(exit);
        return;
      }
      case Stmt::Kind::DoWhile: {
        const int body = new_block();
        const int cond_b = new_block();
        const int exit = new_block();
        switch_to(body);
        loop_stack_.push_back({cond_b, exit});
        gen_stmt(*s.then_stmt);
        loop_stack_.pop_back();
        switch_to(cond_b);
        gen_cond(*s.cond, body, exit);
        start_block(exit);
        return;
      }
      case Stmt::Kind::For: {
        // Rotated: entry test, body, step, bottom test.
        push_scope();
        if (s.init_stmt != nullptr) gen_stmt(*s.init_stmt);
        const int body = new_block();
        const int step_b = new_block();
        const int exit = new_block();
        if (s.cond != nullptr)
          gen_cond(*s.cond, body, exit);
        else
          switch_to(body);
        start_block(body);
        loop_stack_.push_back({step_b, exit});
        gen_stmt(*s.then_stmt);
        loop_stack_.pop_back();
        switch_to(step_b);
        if (s.step != nullptr) gen_expr(*s.step);
        if (s.cond != nullptr) {
          gen_cond(*s.cond, body, exit);
        } else {
          IrInst br;
          br.op = IrOp::Br;
          br.target = body;
          emit(br);
        }
        start_block(exit);
        pop_scope();
        return;
      }
      case Stmt::Kind::Break: {
        if (loop_stack_.empty()) {
          error(s.line, "break outside a loop");
          return;
        }
        IrInst br;
        br.op = IrOp::Br;
        br.target = loop_stack_.back().break_target;
        emit(br);
        start_block(new_block());
        return;
      }
      case Stmt::Kind::Continue: {
        if (loop_stack_.empty()) {
          error(s.line, "continue outside a loop");
          return;
        }
        IrInst br;
        br.op = IrOp::Br;
        br.target = loop_stack_.back().continue_target;
        emit(br);
        start_block(new_block());
        return;
      }
    }
  }

  void gen_local_decl(const VarDecl& d) {
    VarInfo info;
    info.type = d.type;
    if (d.array_size >= 0 || addr_taken_.count(d.name) != 0) {
      info.kind = VarInfo::Kind::LocalFrame;
      info.is_array = d.array_size >= 0;
      const int elem = d.type.size();
      const int bytes = d.array_size >= 0 ? elem * d.array_size : 4;
      info.frame_id = static_cast<int>(fn_->frame.size());
      fn_->frame.push_back({d.name, std::max(bytes, 4), 4});
      if (d.has_init_string) {
        // Copy the string into the array element by element.
        const int addr = frame_addr(info.frame_id, 0);
        for (size_t i = 0; i <= d.init_string.size(); ++i) {
          const char c = i < d.init_string.size() ? d.init_string[i] : '\0';
          IrInst store;
          store.op = IrOp::Store;
          store.a = addr;
          store.b = materialize_const(c);
          store.imm = static_cast<int32_t>(i);
          store.size = 1;
          emit(store);
        }
      } else if (!d.init_list.empty()) {
        const int addr = frame_addr(info.frame_id, 0);
        for (size_t i = 0; i < d.init_list.size(); ++i) {
          IrInst store;
          store.op = IrOp::Store;
          store.a = addr;
          store.b = coerce(gen_expr(*d.init_list[i]), d.type).vreg;
          store.imm = static_cast<int32_t>(i) * elem;
          store.size = static_cast<uint8_t>(elem);
          emit(store);
        }
      } else if (d.init != nullptr) {
        const int addr = frame_addr(info.frame_id, 0);
        IrInst store;
        store.op = IrOp::Store;
        store.a = addr;
        store.b = coerce(gen_expr(*d.init), d.type).vreg;
        store.size = static_cast<uint8_t>(d.array_size >= 0 ? elem : 4);
        emit(store);
      }
    } else {
      info.kind = VarInfo::Kind::LocalReg;
      if (d.init != nullptr) {
        const Value v = coerce(gen_expr(*d.init), d.type);
        if (v.fresh) {
          // Move coalescing: adopt the freshly produced temporary directly.
          info.vreg = v.vreg;
        } else {
          info.vreg = new_vreg();
          IrInst mv;
          mv.op = IrOp::Mv;
          mv.dst = info.vreg;
          mv.a = v.vreg;
          emit(mv);
        }
      } else {
        info.vreg = new_vreg();
      }
    }
    if (scopes_.back().count(d.name) != 0)
      error(d.line, "redefinition of '" + d.name + "' in the same scope");
    scopes_.back()[d.name] = info;
  }

  int frame_addr(int frame_id, int32_t offset) {
    IrInst addr;
    addr.op = IrOp::FrameAddr;
    addr.dst = new_vreg();
    addr.frame_id = frame_id;
    addr.imm = offset;
    emit(addr);
    return addr.dst;
  }

  // -- conditions ------------------------------------------------------------------------

  struct LoopTargets {
    int continue_target;
    int break_target;
  };

  void emit_cond_br(Cc cc, int a, int b, int t, int f) {
    IrInst br;
    br.op = IrOp::CondBr;
    br.cc = cc;
    br.a = a;
    br.b = b;
    br.target = t;
    br.target2 = f;
    emit(br);
  }

  void gen_cond(const Expr& e, int true_b, int false_b) {
    cur_line_ = e.line;
    if (e.kind == Expr::Kind::Unary && e.op == Tok::Bang) {
      gen_cond(*e.a, false_b, true_b);
      return;
    }
    if (e.kind == Expr::Kind::Binary && e.op == Tok::AndAnd) {
      const int mid = new_block();
      gen_cond(*e.a, mid, false_b);
      start_block(mid);
      gen_cond(*e.b, true_b, false_b);
      return;
    }
    if (e.kind == Expr::Kind::Binary && e.op == Tok::OrOr) {
      const int mid = new_block();
      gen_cond(*e.a, true_b, mid);
      start_block(mid);
      gen_cond(*e.b, true_b, false_b);
      return;
    }
    if (e.kind == Expr::Kind::Binary && is_comparison(e.op)) {
      Value a = gen_expr(*e.a);
      Value b = gen_expr(*e.b);
      const bool uns = a.type.is_unsigned() || b.type.is_unsigned();
      Cc cc;
      bool swap = false;
      switch (e.op) {
        case Tok::EqEq: cc = Cc::Eq; break;
        case Tok::NotEq: cc = Cc::Ne; break;
        case Tok::Lt: cc = uns ? Cc::LtU : Cc::LtS; break;
        case Tok::Ge: cc = uns ? Cc::GeU : Cc::GeS; break;
        case Tok::Gt: cc = uns ? Cc::LtU : Cc::LtS; swap = true; break;
        case Tok::Le: cc = uns ? Cc::GeU : Cc::GeS; swap = true; break;
        default: cc = Cc::Ne; break;
      }
      if (swap) std::swap(a, b);
      emit_cond_br(cc, a.vreg, b.vreg, true_b, false_b);
      return;
    }
    int64_t cval = 0;
    if (const_eval(e, cval)) {
      IrInst br;
      br.op = IrOp::Br;
      br.target = cval != 0 ? true_b : false_b;
      emit(br);
      return;
    }
    const Value v = gen_expr(e);
    emit_cond_br(Cc::Ne, v.vreg, materialize_const(0), true_b, false_b);
  }

  static bool is_comparison(Tok op) {
    switch (op) {
      case Tok::Lt:
      case Tok::Gt:
      case Tok::Le:
      case Tok::Ge:
      case Tok::EqEq:
      case Tok::NotEq: return true;
      default: return false;
    }
  }

  // -- expressions ------------------------------------------------------------------------

  /// Inserts conversions for assignments (currently types share one 32-bit
  /// representation; this normalizes char truncation on demand).
  Value coerce(Value v, const Type& to) {
    v.type = to;
    return v;
  }

  Value gen_expr(const Expr& e) {
    cur_line_ = e.line;
    int64_t cval = 0;
    if (e.kind != Expr::Kind::IntLit && const_eval(e, cval)) {
      Value v;
      v.vreg = materialize_const(static_cast<int32_t>(cval));
      v.type = Type{Type::Base::Int, 0};
      return v;
    }
    switch (e.kind) {
      case Expr::Kind::IntLit: {
        Value v;
        v.vreg = materialize_const(static_cast<int32_t>(e.value));
        v.type = Type{Type::Base::Int, 0};
        return v;
      }
      case Expr::Kind::StrLit: {
        IrInst la;
        la.op = IrOp::LaGlobal;
        la.dst = new_vreg();
        la.sym = intern_string(e.text);
        emit(la);
        Value v;
        v.vreg = la.dst;
        v.type = Type{Type::Base::Char, 1};
        v.fresh = true;
        return v;
      }
      case Expr::Kind::Var: {
        const VarInfo* info = find_var(e.text);
        if (info == nullptr) {
          error(e.line, "use of undeclared identifier '" + e.text + "'");
          return {materialize_const(0), Type{Type::Base::Int, 0}};
        }
        if (info->is_array) {
          // Arrays decay to a pointer to their first element.
          Value v;
          v.vreg = address_of(*info, 0);
          v.type = info->type.pointer_to();
          return v;
        }
        if (info->kind == VarInfo::Kind::LocalReg)
          return {info->vreg, info->type};
        // Frame or global scalar: load it.
        const int addr = address_of(*info, 0);
        IrInst load;
        load.op = IrOp::Load;
        load.dst = new_vreg();
        load.a = addr;
        load.size = static_cast<uint8_t>(info->type.size());
        load.is_signed = !info->type.is_unsigned();
        emit(load);
        return {load.dst, info->type, /*fresh=*/true};
      }
      case Expr::Kind::Unary:
        return gen_unary(e);
      case Expr::Kind::Binary:
        return gen_binary(e);
      case Expr::Kind::Assign:
        return gen_assign(e);
      case Expr::Kind::Cond: {
        const int then_b = new_block();
        const int else_b = new_block();
        const int join_b = new_block();
        const int result = new_vreg();
        gen_cond(*e.a, then_b, else_b);
        start_block(then_b);
        const Value tv = gen_expr(*e.b);
        IrInst mv1;
        mv1.op = IrOp::Mv;
        mv1.dst = result;
        mv1.a = tv.vreg;
        emit(mv1);
        switch_to(join_b);
        start_block(else_b);
        const Value fv = gen_expr(*e.c);
        IrInst mv2;
        mv2.op = IrOp::Mv;
        mv2.dst = result;
        mv2.a = fv.vreg;
        emit(mv2);
        switch_to(join_b);
        start_block(join_b);
        return {result, tv.type, /*fresh=*/true};
      }
      case Expr::Kind::Call:
        return gen_call(e);
      case Expr::Kind::Index: {
        const LValue lv = gen_index_lvalue(e);
        return load_lvalue(lv);
      }
      case Expr::Kind::Cast: {
        Value v = gen_expr(*e.a);
        if (e.cast_type.is_char() && e.cast_type.ptr == 0) {
          // Truncate to 8 bits with the right extension.
          IrInst and8;
          and8.op = IrOp::And;
          and8.dst = new_vreg();
          and8.a = v.vreg;
          and8.imm = 0xFF;
          and8.has_imm = true;
          emit(and8);
          int out = and8.dst;
          if (!e.cast_type.is_unsigned()) {
            IrInst shl;
            shl.op = IrOp::Shl;
            shl.dst = new_vreg();
            shl.a = out;
            shl.imm = 24;
            shl.has_imm = true;
            emit(shl);
            IrInst sra;
            sra.op = IrOp::ShrA;
            sra.dst = new_vreg();
            sra.a = shl.dst;
            sra.imm = 24;
            sra.has_imm = true;
            emit(sra);
            out = sra.dst;
          }
          return {out, e.cast_type, /*fresh=*/true};
        }
        v.type = e.cast_type;
        return v; // freshness inherited for representation-preserving casts
      }
    }
    return {materialize_const(0), Type{Type::Base::Int, 0}};
  }

  /// Address of a variable (+byte offset): frame, or global.
  int address_of(const VarInfo& info, int32_t offset) {
    if (info.kind == VarInfo::Kind::LocalFrame) return frame_addr(info.frame_id, offset);
    if (info.kind == VarInfo::Kind::Global) {
      // Reuse an already materialized address of the same global within the
      // current block (hot for table-heavy code such as the AES T-tables).
      const std::pair<std::string, int32_t> key{info.sym, offset};
      const auto it = global_addr_cache_.find(key);
      if (it != global_addr_cache_.end()) return it->second;
      IrInst la;
      la.op = IrOp::LaGlobal;
      la.dst = new_vreg();
      la.sym = info.sym;
      la.imm = offset;
      emit(la);
      global_addr_cache_[key] = la.dst;
      return la.dst;
    }
    throw Error("address_of register variable");
  }

  LValue gen_lvalue(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Var: {
        const VarInfo* info = find_var(e.text);
        if (info == nullptr) {
          error(e.line, "use of undeclared identifier '" + e.text + "'");
          return {};
        }
        if (info->is_array) {
          error(e.line, "cannot assign to array '" + e.text + "'");
          return {};
        }
        if (info->kind == VarInfo::Kind::LocalReg) {
          LValue lv;
          lv.kind = LValue::Kind::Reg;
          lv.vreg = info->vreg;
          lv.type = info->type;
          return lv;
        }
        LValue lv;
        lv.kind = LValue::Kind::Mem;
        lv.vreg = address_of(*info, 0);
        lv.type = info->type;
        return lv;
      }
      case Expr::Kind::Index:
        return gen_index_lvalue(e);
      case Expr::Kind::Unary:
        if (e.op == Tok::Star) {
          const Value p = gen_expr(*e.a);
          if (!p.type.is_pointer()) error(e.line, "dereferencing a non-pointer");
          LValue lv;
          lv.kind = LValue::Kind::Mem;
          lv.vreg = p.vreg;
          lv.type = p.type.is_pointer() ? p.type.deref() : Type{Type::Base::Int, 0};
          return lv;
        }
        break;
      default:
        break;
    }
    error(e.line, "expression is not assignable");
    return {};
  }

  LValue gen_index_lvalue(const Expr& e) {
    const Value base = gen_expr(*e.a);
    if (!base.type.is_pointer()) {
      error(e.line, "indexing a non-pointer");
      return {};
    }
    const Type elem = base.type.deref();
    const int esize = elem.size();

    LValue lv;
    lv.kind = LValue::Kind::Mem;
    lv.type = elem;

    int64_t cidx = 0;
    if (const_eval(*e.b, cidx) && fits_signed(cidx * esize, 15)) {
      lv.vreg = base.vreg;
      lv.offset = static_cast<int32_t>(cidx * esize);
      return lv;
    }
    const Value idx = gen_expr(*e.b);
    int scaled = idx.vreg;
    if (esize > 1) {
      IrInst shl;
      shl.op = IrOp::Shl;
      shl.dst = new_vreg();
      shl.a = idx.vreg;
      shl.imm = static_cast<int32_t>(log2_pow2(static_cast<uint64_t>(esize)));
      shl.has_imm = true;
      emit(shl);
      scaled = shl.dst;
    }
    IrInst add;
    add.op = IrOp::Add;
    add.dst = new_vreg();
    add.a = base.vreg;
    add.b = scaled;
    emit(add);
    lv.vreg = add.dst;
    return lv;
  }

  Value load_lvalue(const LValue& lv) {
    if (lv.kind == LValue::Kind::Reg) return {lv.vreg, lv.type};
    IrInst load;
    load.op = IrOp::Load;
    load.dst = new_vreg();
    load.a = lv.vreg;
    load.imm = lv.offset;
    load.size = static_cast<uint8_t>(lv.type.size());
    load.is_signed = !lv.type.is_unsigned();
    emit(load);
    return {load.dst, lv.type, /*fresh=*/true};
  }

  void store_lvalue(const LValue& lv, int vreg) {
    if (lv.kind == LValue::Kind::Reg) {
      IrInst mv;
      mv.op = IrOp::Mv;
      mv.dst = lv.vreg;
      mv.a = vreg;
      emit(mv);
      return;
    }
    IrInst store;
    store.op = IrOp::Store;
    store.a = lv.vreg;
    store.b = vreg;
    store.imm = lv.offset;
    store.size = static_cast<uint8_t>(lv.type.size());
    emit(store);
  }

  Value gen_unary(const Expr& e) {
    switch (e.op) {
      case Tok::Minus: {
        const Value a = gen_expr(*e.a);
        IrInst sub;
        sub.op = IrOp::Sub;
        sub.dst = new_vreg();
        sub.a = materialize_const(0);
        sub.b = a.vreg;
        emit(sub);
        return {sub.dst, a.type, /*fresh=*/true};
      }
      case Tok::Tilde: {
        const Value a = gen_expr(*e.a);
        IrInst x;
        x.op = IrOp::Xor;
        x.dst = new_vreg();
        x.a = a.vreg;
        x.imm = -1;
        x.has_imm = true;
        emit(x);
        return {x.dst, a.type, /*fresh=*/true};
      }
      case Tok::Bang: {
        const Value a = gen_expr(*e.a);
        IrInst s;
        s.op = IrOp::Seq;
        s.dst = new_vreg();
        s.a = a.vreg;
        s.b = materialize_const(0);
        emit(s);
        return {s.dst, Type{Type::Base::Int, 0}, /*fresh=*/true};
      }
      case Tok::Amp: {
        // &var / &arr[i] / &*p
        if (e.a->kind == Expr::Kind::Var) {
          const VarInfo* info = find_var(e.a->text);
          if (info == nullptr) {
            error(e.line, "use of undeclared identifier '" + e.a->text + "'");
            return {materialize_const(0), Type{Type::Base::Int, 1}};
          }
          if (info->kind == VarInfo::Kind::LocalReg) {
            error(e.line, "internal: address-taken variable not in memory");
            return {materialize_const(0), info->type.pointer_to()};
          }
          return {address_of(*info, 0), info->type.pointer_to()};
        }
        const LValue lv = gen_lvalue(*e.a);
        if (lv.kind != LValue::Kind::Mem) {
          error(e.line, "cannot take the address of this expression");
          return {materialize_const(0), Type{Type::Base::Int, 1}};
        }
        if (lv.offset == 0) return {lv.vreg, lv.type.pointer_to()};
        IrInst add;
        add.op = IrOp::Add;
        add.dst = new_vreg();
        add.a = lv.vreg;
        add.imm = lv.offset;
        add.has_imm = true;
        emit(add);
        return {add.dst, lv.type.pointer_to()};
      }
      case Tok::Star: {
        const LValue lv = gen_lvalue(e);
        return load_lvalue(lv);
      }
      case Tok::Inc:
      case Tok::Dec: {
        const LValue lv = gen_lvalue(*e.a);
        Value old = load_lvalue(lv);
        if (e.postfix && lv.kind == LValue::Kind::Reg) {
          // The loaded "value" is the variable's own register; preserve the
          // pre-increment value in a fresh register.
          IrInst copy;
          copy.op = IrOp::Mv;
          copy.dst = new_vreg();
          copy.a = old.vreg;
          emit(copy);
          old.vreg = copy.dst;
        }
        const int step =
            lv.type.is_pointer() ? lv.type.deref().size() : 1;
        IrInst add;
        add.op = IrOp::Add;
        add.dst = new_vreg();
        add.a = old.vreg;
        add.imm = e.op == Tok::Inc ? step : -step;
        add.has_imm = true;
        emit(add);
        store_lvalue(lv, add.dst);
        return {e.postfix ? old.vreg : add.dst, lv.type, /*fresh=*/true};
      }
      default:
        error(e.line, "unsupported unary operator");
        return {materialize_const(0), Type{Type::Base::Int, 0}};
    }
  }

  Value gen_binary(const Expr& e) {
    // Short-circuit operators materialized through control flow.
    if (e.op == Tok::AndAnd || e.op == Tok::OrOr) {
      const int true_b = new_block();
      const int false_b = new_block();
      const int join_b = new_block();
      const int result = new_vreg();
      gen_cond(e, true_b, false_b);
      start_block(true_b);
      IrInst one;
      one.op = IrOp::LiConst;
      one.dst = result;
      one.imm = 1;
      emit(one);
      switch_to(join_b);
      start_block(false_b);
      IrInst zero;
      zero.op = IrOp::LiConst;
      zero.dst = result;
      zero.imm = 0;
      emit(zero);
      switch_to(join_b);
      start_block(join_b);
      return {result, Type{Type::Base::Int, 0}, /*fresh=*/true};
    }

    if (is_comparison(e.op)) return gen_comparison(e);

    // Normalize a constant left operand of commutative operators to the
    // right, so `2 * x` gets the same shift strength reduction as `x * 2`.
    const Expr* lhs_expr = e.a.get();
    const Expr* rhs_expr = e.b.get();
    if (e.op == Tok::Plus || e.op == Tok::Star || e.op == Tok::Amp ||
        e.op == Tok::Pipe || e.op == Tok::Caret) {
      int64_t tmp = 0;
      if (const_eval(*lhs_expr, tmp) && !const_eval(*rhs_expr, tmp))
        std::swap(lhs_expr, rhs_expr);
    }

    const Value a = gen_expr(*lhs_expr);

    // Immediate form when the right operand is a small constant.
    int64_t cb = 0;
    const bool b_const = const_eval(*rhs_expr, cb);
    const Type result_type = arith_type(a.type, *rhs_expr, b_const);

    if (b_const) {
      if (Value v; gen_binary_imm(e.op, a, static_cast<int32_t>(cb), result_type, v))
        return v;
    }

    Value b = gen_expr(*rhs_expr);
    // Pointer arithmetic: scale the integer side.
    if (e.op == Tok::Plus || e.op == Tok::Minus) {
      if (a.type.is_pointer() && !b.type.is_pointer()) {
        b.vreg = scale(b.vreg, a.type.deref().size());
      } else if (!a.type.is_pointer() && b.type.is_pointer() && e.op == Tok::Plus) {
        return gen_simple(IrOp::Add, scale(a.vreg, b.type.deref().size()), b.vreg,
                          b.type);
      } else if (a.type.is_pointer() && b.type.is_pointer() && e.op == Tok::Minus) {
        const Value diff = gen_simple(IrOp::Sub, a.vreg, b.vreg, Type{Type::Base::Int, 0});
        const int esize = a.type.deref().size();
        if (esize == 1) return diff;
        IrInst shr;
        shr.op = IrOp::ShrA;
        shr.dst = new_vreg();
        shr.a = diff.vreg;
        shr.imm = static_cast<int32_t>(log2_pow2(static_cast<uint64_t>(esize)));
        shr.has_imm = true;
        emit(shr);
        return {shr.dst, Type{Type::Base::Int, 0}};
      }
    }

    const bool uns = a.type.is_unsigned() || b.type.is_unsigned();
    IrOp op;
    switch (e.op) {
      case Tok::Plus: op = IrOp::Add; break;
      case Tok::Minus: op = IrOp::Sub; break;
      case Tok::Star: op = IrOp::Mul; break;
      case Tok::Slash: op = uns ? IrOp::DivU : IrOp::DivS; break;
      case Tok::Percent: op = uns ? IrOp::RemU : IrOp::RemS; break;
      case Tok::Amp: op = IrOp::And; break;
      case Tok::Pipe: op = IrOp::Or; break;
      case Tok::Caret: op = IrOp::Xor; break;
      case Tok::Shl: op = IrOp::Shl; break;
      case Tok::Shr: op = a.type.is_unsigned() ? IrOp::ShrL : IrOp::ShrA; break;
      default:
        error(e.line, "unsupported binary operator");
        return a;
    }
    return gen_simple(op, a.vreg, b.vreg, result_type);
  }

  Type arith_type(const Type& a, const Expr& b_expr, bool b_const) {
    if (a.is_pointer()) return a;
    if (b_const) return a.is_char() ? Type{Type::Base::Int, 0} : a;
    // Without evaluating b twice we approximate C's usual conversions: the
    // signedness union of both sides, at int width.
    (void)b_expr;
    return a;
  }

  Value gen_simple(IrOp op, int a, int b, Type type) {
    IrInst inst;
    inst.op = op;
    inst.dst = new_vreg();
    inst.a = a;
    inst.b = b;
    emit(inst);
    return {inst.dst, type, /*fresh=*/true};
  }

  /// Emits `a op imm` when a fused immediate form exists; returns false to
  /// fall back to the register-register path.
  bool gen_binary_imm(Tok op, const Value& a, int32_t imm, const Type& result_type,
                      Value& out) {
    const bool uns = a.type.is_unsigned();
    IrOp ir;
    int32_t value = imm;
    switch (op) {
      case Tok::Plus:
        ir = IrOp::Add;
        if (a.type.is_pointer()) value = imm * a.type.deref().size();
        break;
      case Tok::Minus:
        ir = IrOp::Add;
        value = a.type.is_pointer() ? -imm * a.type.deref().size() : -imm;
        break;
      case Tok::Amp: ir = IrOp::And; break;
      case Tok::Pipe: ir = IrOp::Or; break;
      case Tok::Caret: ir = IrOp::Xor; break;
      case Tok::Shl: ir = IrOp::Shl; break;
      case Tok::Shr: ir = uns ? IrOp::ShrL : IrOp::ShrA; break;
      case Tok::Star:
        // Multiplication by a power of two becomes a shift.
        if (value > 0 && is_pow2(static_cast<uint64_t>(value))) {
          ir = IrOp::Shl;
          value = static_cast<int32_t>(log2_pow2(static_cast<uint64_t>(value)));
          break;
        }
        return false;
      case Tok::Slash:
        if (uns && value > 0 && is_pow2(static_cast<uint64_t>(value))) {
          ir = IrOp::ShrL;
          value = static_cast<int32_t>(log2_pow2(static_cast<uint64_t>(value)));
          break;
        }
        return false;
      case Tok::Percent:
        if (uns && value > 0 && is_pow2(static_cast<uint64_t>(value))) {
          ir = IrOp::And;
          value = value - 1;
          break;
        }
        return false;
      default:
        return false;
    }
    if (!fits_signed(value, 15)) return false;
    IrInst inst;
    inst.op = ir;
    inst.dst = new_vreg();
    inst.a = a.vreg;
    inst.imm = value;
    inst.has_imm = true;
    emit(inst);
    out = {inst.dst, result_type, /*fresh=*/true};
    return true;
  }

  Value gen_comparison(const Expr& e) {
    Value a = gen_expr(*e.a);
    Value b = gen_expr(*e.b);
    const bool uns = a.type.is_unsigned() || b.type.is_unsigned();
    IrOp op;
    bool swap = false;
    switch (e.op) {
      case Tok::EqEq: op = IrOp::Seq; break;
      case Tok::NotEq: op = IrOp::Sne; break;
      case Tok::Lt: op = uns ? IrOp::SltU : IrOp::SltS; break;
      case Tok::Le: op = uns ? IrOp::SleU : IrOp::SleS; break;
      case Tok::Gt: op = uns ? IrOp::SltU : IrOp::SltS; swap = true; break;
      case Tok::Ge: op = uns ? IrOp::SleU : IrOp::SleS; swap = true; break;
      default: op = IrOp::Sne; break;
    }
    if (swap) std::swap(a, b);
    return gen_simple(op, a.vreg, b.vreg, Type{Type::Base::Int, 0});
  }

  Value gen_assign(const Expr& e) {
    const LValue lv = gen_lvalue(*e.a);
    Value rhs;
    if (e.op == Tok::Assign) {
      rhs = coerce(gen_expr(*e.b), lv.type);
    } else {
      // Compound assignment: load, apply, store.
      const Value old = load_lvalue(lv);
      Expr synthetic;
      synthetic.kind = Expr::Kind::Binary;
      synthetic.line = e.line;
      switch (e.op) {
        case Tok::PlusAssign: synthetic.op = Tok::Plus; break;
        case Tok::MinusAssign: synthetic.op = Tok::Minus; break;
        case Tok::StarAssign: synthetic.op = Tok::Star; break;
        case Tok::SlashAssign: synthetic.op = Tok::Slash; break;
        case Tok::PercentAssign: synthetic.op = Tok::Percent; break;
        case Tok::AmpAssign: synthetic.op = Tok::Amp; break;
        case Tok::PipeAssign: synthetic.op = Tok::Pipe; break;
        case Tok::CaretAssign: synthetic.op = Tok::Caret; break;
        case Tok::ShlAssign: synthetic.op = Tok::Shl; break;
        case Tok::ShrAssign: synthetic.op = Tok::Shr; break;
        default: synthetic.op = Tok::Plus; break;
      }
      rhs = apply_binop(synthetic.op, old, *e.b, e.line);
      rhs = coerce(rhs, lv.type);
    }
    store_lvalue(lv, rhs.vreg);
    return {rhs.vreg, lv.type, rhs.fresh};
  }

  /// old OP rhs_expr, reusing the binary lowering.
  Value apply_binop(Tok op, const Value& old, const Expr& rhs, int line) {
    int64_t cb = 0;
    if (const_eval(rhs, cb)) {
      Value out;
      if (gen_binary_imm(op, old, static_cast<int32_t>(cb), old.type, out)) return out;
    }
    Value b = gen_expr(rhs);
    if ((op == Tok::Plus || op == Tok::Minus) && old.type.is_pointer())
      b.vreg = scale(b.vreg, old.type.deref().size());
    const bool uns = old.type.is_unsigned() || b.type.is_unsigned();
    IrOp ir;
    switch (op) {
      case Tok::Plus: ir = IrOp::Add; break;
      case Tok::Minus: ir = IrOp::Sub; break;
      case Tok::Star: ir = IrOp::Mul; break;
      case Tok::Slash: ir = uns ? IrOp::DivU : IrOp::DivS; break;
      case Tok::Percent: ir = uns ? IrOp::RemU : IrOp::RemS; break;
      case Tok::Amp: ir = IrOp::And; break;
      case Tok::Pipe: ir = IrOp::Or; break;
      case Tok::Caret: ir = IrOp::Xor; break;
      case Tok::Shl: ir = IrOp::Shl; break;
      case Tok::Shr: ir = old.type.is_unsigned() ? IrOp::ShrL : IrOp::ShrA; break;
      default:
        error(line, "unsupported compound assignment");
        ir = IrOp::Add;
        break;
    }
    return gen_simple(ir, old.vreg, b.vreg, old.type);
  }

  int scale(int vreg, int esize) {
    if (esize == 1) return vreg;
    IrInst shl;
    shl.op = IrOp::Shl;
    shl.dst = new_vreg();
    shl.a = vreg;
    shl.imm = static_cast<int32_t>(log2_pow2(static_cast<uint64_t>(esize)));
    shl.has_imm = true;
    emit(shl);
    return shl.dst;
  }

  Value gen_call(const Expr& e) {
    const auto it = prog_.signatures.find(e.text);
    if (it == prog_.signatures.end()) {
      error(e.line, "call to undeclared function '" + e.text + "'");
      return {materialize_const(0), Type{Type::Base::Int, 0}};
    }
    const FuncSig& sig = it->second;
    if (e.args.size() < sig.params.size() ||
        (e.args.size() > sig.params.size() && !sig.variadic))
      error(e.line, strf("wrong number of arguments to '%s' (expected %zu, got %zu)",
                         e.text.c_str(), sig.params.size(), e.args.size()));

    IrInst call;
    call.op = IrOp::Call;
    call.sym = e.text;
    for (const ExprPtr& arg : e.args) call.args.push_back(gen_expr(*arg).vreg);
    call.dst = sig.ret.is_void() ? -1 : new_vreg();
    emit(call);
    const_cache_.clear(); // a call may clobber nothing here, but keep it simple
    Value v;
    v.vreg = call.dst >= 0 ? call.dst : materialize_const(0);
    v.type = sig.ret;
    v.fresh = call.dst >= 0;
    return v;
  }

  const TranslationUnit& unit_;
  std::string_view file_;
  DiagEngine& diags_;
  IrProgram prog_;

  std::map<std::string, VarInfo> globals_;
  std::map<std::string, std::string> string_pool_;

  IrFunction* fn_ = nullptr;
  const FuncDecl* cur_fn_decl_ = nullptr;
  int cur_block_ = 0;
  int cur_line_ = 0;
  std::vector<std::map<std::string, VarInfo>> scopes_;
  std::set<std::string> addr_taken_;
  std::vector<LoopTargets> loop_stack_;
  std::map<int32_t, int> const_cache_; ///< per-block constant reuse
  std::map<std::pair<std::string, int32_t>, int> global_addr_cache_;
};

} // namespace

IrProgram generate_ir(const TranslationUnit& unit, std::string_view file_name,
                      DiagEngine& diags) {
  return IrGen(unit, file_name, diags).run();
}

} // namespace ksim::kcc
