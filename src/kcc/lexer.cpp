#include "kcc/lexer.h"

#include <cctype>
#include <unordered_map>

namespace ksim::kcc {
namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kMap = {
      {"int", Tok::KwInt},         {"unsigned", Tok::KwUnsigned},
      {"char", Tok::KwChar},       {"void", Tok::KwVoid},
      {"const", Tok::KwConst},     {"if", Tok::KwIf},
      {"else", Tok::KwElse},       {"while", Tok::KwWhile},
      {"for", Tok::KwFor},         {"do", Tok::KwDo},
      {"break", Tok::KwBreak},     {"continue", Tok::KwContinue},
      {"return", Tok::KwReturn},   {"isa", Tok::KwIsa},
  };
  return kMap;
}

class Lexer {
public:
  Lexer(std::string_view source, std::string_view file, DiagEngine& diags)
      : src_(source), file_(file), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_ws_and_comments();
      Token t = next();
      out.push_back(t);
      if (t.kind == Tok::Eof) break;
    }
    return out;
  }

private:
  char peek(int ahead = 0) const {
    return pos_ + static_cast<size_t>(ahead) < src_.size()
               ? src_[pos_ + static_cast<size_t>(ahead)]
               : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  bool match(char expect) {
    if (peek() != expect) return false;
    advance();
    return true;
  }
  void error(std::string msg) { diags_.error({std::string(file_), line_, col_}, std::move(msg)); }

  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (pos_ < src_.size() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (pos_ < src_.size() && !(peek() == '*' && peek(1) == '/')) advance();
        if (pos_ < src_.size()) {
          advance();
          advance();
        } else {
          error("unterminated block comment");
        }
      } else {
        break;
      }
    }
  }

  Token make(Tok kind) {
    Token t;
    t.kind = kind;
    t.line = tok_line_;
    t.column = tok_col_;
    return t;
  }

  Token next() {
    tok_line_ = line_;
    tok_col_ = col_;
    if (pos_ >= src_.size()) return make(Tok::Eof);
    const char c = advance();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident(1, c);
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        ident.push_back(advance());
      const auto it = keywords().find(ident);
      if (it != keywords().end()) return make(it->second);
      Token t = make(Tok::Ident);
      t.text = std::move(ident);
      return t;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) return number(c);

    switch (c) {
      case '\'': return char_literal();
      case '"': return string_literal();
      case '(': return make(Tok::LParen);
      case ')': return make(Tok::RParen);
      case '{': return make(Tok::LBrace);
      case '}': return make(Tok::RBrace);
      case '[': return make(Tok::LBracket);
      case ']': return make(Tok::RBracket);
      case ';': return make(Tok::Semi);
      case ',': return make(Tok::Comma);
      case '~': return make(Tok::Tilde);
      case '?': return make(Tok::Question);
      case ':': return make(Tok::Colon);
      case '+':
        if (match('+')) return make(Tok::Inc);
        if (match('=')) return make(Tok::PlusAssign);
        return make(Tok::Plus);
      case '-':
        if (match('-')) return make(Tok::Dec);
        if (match('=')) return make(Tok::MinusAssign);
        return make(Tok::Minus);
      case '*': return make(match('=') ? Tok::StarAssign : Tok::Star);
      case '/': return make(match('=') ? Tok::SlashAssign : Tok::Slash);
      case '%': return make(match('=') ? Tok::PercentAssign : Tok::Percent);
      case '^': return make(match('=') ? Tok::CaretAssign : Tok::Caret);
      case '!': return make(match('=') ? Tok::NotEq : Tok::Bang);
      case '=': return make(match('=') ? Tok::EqEq : Tok::Assign);
      case '&':
        if (match('&')) return make(Tok::AndAnd);
        if (match('=')) return make(Tok::AmpAssign);
        return make(Tok::Amp);
      case '|':
        if (match('|')) return make(Tok::OrOr);
        if (match('=')) return make(Tok::PipeAssign);
        return make(Tok::Pipe);
      case '<':
        if (match('<')) return make(match('=') ? Tok::ShlAssign : Tok::Shl);
        if (match('=')) return make(Tok::Le);
        return make(Tok::Lt);
      case '>':
        if (match('>')) return make(match('=') ? Tok::ShrAssign : Tok::Shr);
        if (match('=')) return make(Tok::Ge);
        return make(Tok::Gt);
      default:
        error(std::string("stray character '") + c + "'");
        return next();
    }
  }

  Token number(char first) {
    int64_t value = 0;
    if (first == '0' && (peek() == 'x' || peek() == 'X')) {
      advance();
      bool any = false;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        const char d = advance();
        const int digit = d <= '9' ? d - '0' : (d | 0x20) - 'a' + 10;
        value = value * 16 + digit;
        any = true;
      }
      if (!any) error("malformed hex literal");
    } else {
      value = first - '0';
      while (std::isdigit(static_cast<unsigned char>(peek())))
        value = value * 10 + (advance() - '0');
    }
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
      advance(); // accept and ignore suffixes
    Token t = make(Tok::IntLit);
    t.value = value;
    return t;
  }

  bool escape(char& out) {
    const char e = advance();
    switch (e) {
      case 'n': out = '\n'; return true;
      case 't': out = '\t'; return true;
      case 'r': out = '\r'; return true;
      case '0': out = '\0'; return true;
      case '\\': out = '\\'; return true;
      case '\'': out = '\''; return true;
      case '"': out = '"'; return true;
      default:
        error(std::string("unknown escape '\\") + e + "'");
        return false;
    }
  }

  Token char_literal() {
    char value = '\0';
    if (peek() == '\\') {
      advance();
      escape(value);
    } else if (pos_ < src_.size()) {
      value = advance();
    }
    if (!match('\'')) error("unterminated character literal");
    Token t = make(Tok::CharLit);
    t.value = value;
    return t;
  }

  Token string_literal() {
    std::string s;
    while (pos_ < src_.size() && peek() != '"') {
      if (peek() == '\\') {
        advance();
        char e = '\0';
        if (escape(e)) s.push_back(e);
      } else {
        s.push_back(advance());
      }
    }
    if (!match('"')) error("unterminated string literal");
    Token t = make(Tok::StrLit);
    t.text = std::move(s);
    return t;
  }

  std::string_view src_;
  std::string_view file_;
  DiagEngine& diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int tok_line_ = 1;
  int tok_col_ = 1;
};

} // namespace

std::vector<Token> lex(std::string_view source, std::string_view file_name,
                       DiagEngine& diags) {
  return Lexer(source, file_name, diags).run();
}

const char* tok_name(Tok kind) {
  switch (kind) {
    case Tok::Eof: return "end of file";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::CharLit: return "character literal";
    case Tok::StrLit: return "string literal";
    case Tok::KwInt: return "'int'";
    case Tok::KwUnsigned: return "'unsigned'";
    case Tok::KwChar: return "'char'";
    case Tok::KwVoid: return "'void'";
    case Tok::KwConst: return "'const'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwFor: return "'for'";
    case Tok::KwDo: return "'do'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwIsa: return "'isa'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semi: return "';'";
    case Tok::Comma: return "','";
    case Tok::Assign: return "'='";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
    case Tok::PercentAssign: return "'%='";
    case Tok::AmpAssign: return "'&='";
    case Tok::PipeAssign: return "'|='";
    case Tok::CaretAssign: return "'^='";
    case Tok::ShlAssign: return "'<<='";
    case Tok::ShrAssign: return "'>>='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Tilde: return "'~'";
    case Tok::Bang: return "'!'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::Lt: return "'<'";
    case Tok::Gt: return "'>'";
    case Tok::Le: return "'<='";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Inc: return "'++'";
    case Tok::Dec: return "'--'";
    case Tok::Question: return "'?'";
    case Tok::Colon: return "':'";
  }
  return "?";
}

} // namespace ksim::kcc
