// MiniC compiler driver: C source → K-ISA assembly.
//
// Mirrors the paper's retargetable compiler interface (§IV): per-function ISA
// targeting via isa("NAME") attributes, a translation-unit default ISA, `.isa`
// pseudo directives in the output, and .file/.loc debug directives feeding the
// simulator's source-line mapping.
#pragma once

#include <string>

#include "kcc/codegen.h"
#include "support/diag.h"

namespace ksim::kcc {

struct CompileOptions {
  std::string file_name = "<minic>";
  CodegenOptions codegen;
};

struct CompileResult {
  std::string assembly;
  std::string ir_dump; ///< filled when dump_ir was requested
};

/// Compiles MiniC source to assembly.  Errors go to `diags`.
CompileResult compile(std::string_view source, const CompileOptions& options,
                      DiagEngine& diags, bool dump_ir = false);

/// Convenience wrapper that throws ksim::Error on any diagnostic.
std::string compile_or_throw(std::string_view source, const CompileOptions& options = {});

} // namespace ksim::kcc
