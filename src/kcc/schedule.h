// Machine-operation representation and the per-block VLIW list scheduler.
//
// The scheduler runs after register allocation and packs operations into
// stop-bit delimited instruction groups for an n-issue target.  Dependence
// rules reflect the execution semantics of §V-B (all sources are read before
// any write-back within one instruction):
//   * RAW, WAW, memory and barrier dependences are *strict* — producer and
//     consumer must sit in different groups,
//   * WAR dependences are *weak* — the reader may share a group with the
//     later writer (the old value is still read), but must never be reordered
//     after it.
// Memory dependences are pessimistic, exactly like the compiler model the
// paper describes (§VI-A: no alias analysis — every memory operation depends
// on the last store).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/optable.h"

namespace ksim::kcc {

struct MachineOp {
  const isa::OpInfo* info = nullptr;
  uint8_t rd = 0;
  uint8_t ra = 0;
  uint8_t rb = 0;
  int32_t imm = 0;
  std::string sym;     ///< symbolic immediate (labels, globals, call targets)
  int32_t sym_add = 0;
  bool has_sym = false;
  bool no_group = false; ///< must be the only op of its group (calls, SIMOP, ...)
  int line = 0;          ///< source line (0 = none)
};

/// Renders one operation as assembly text.
std::string render(const MachineOp& op);

/// Packs `ops` into instruction groups of at most `issue_width` operations.
/// The input order must be a correct sequential order; the output preserves
/// all strict/weak dependences.  A trailing branch stays in the final group.
std::vector<std::vector<MachineOp>> schedule_block(const std::vector<MachineOp>& ops,
                                                   int issue_width);

} // namespace ksim::kcc
