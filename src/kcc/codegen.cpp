#include "kcc/codegen.h"

#include <algorithm>

#include "isa/kisa.h"
#include "kcc/regalloc.h"
#include "kcc/schedule.h"
#include "support/bits.h"
#include "support/error.h"
#include "support/strings.h"

namespace ksim::kcc {
namespace {

/// Cached OpInfo pointers for every mnemonic codegen emits.
struct Ops {
  const isa::IsaSet& set = isa::kisa();
  const isa::OpInfo* get(const char* name) const {
    const isa::OpInfo* op = set.find_op(name);
    check(op != nullptr, std::string("codegen: unknown op ") + name);
    return op;
  }
#define KOP(N) const isa::OpInfo* N = get(#N)
  KOP(ADD); KOP(SUB); KOP(AND); KOP(OR); KOP(XOR); KOP(SLL); KOP(SRL); KOP(SRA);
  KOP(SLT); KOP(SLTU); KOP(SEQ); KOP(SNE); KOP(SLE); KOP(SLEU);
  KOP(MUL); KOP(DIV); KOP(DIVU); KOP(REM); KOP(REMU);
  KOP(ADDI); KOP(ANDI); KOP(ORI); KOP(XORI); KOP(SLLI); KOP(SRLI); KOP(SRAI);
  KOP(SLTI); KOP(SLTIU); KOP(LUI); KOP(ORLO);
  KOP(LB); KOP(LBU); KOP(LH); KOP(LHU); KOP(LW); KOP(SB); KOP(SH); KOP(SW);
  KOP(BEQ); KOP(BNE); KOP(BLT); KOP(BGE); KOP(BLTU); KOP(BGEU);
  KOP(J); KOP(JAL); KOP(JR); KOP(SWITCHTARGET);
#undef KOP
};

const Ops& ops() {
  static const Ops kOps;
  return kOps;
}

struct MBlock {
  std::string label;
  std::vector<MachineOp> body;     ///< schedulable operations
  std::vector<MachineOp> trailing; ///< unconditional jump etc., never grouped
};

class FuncCodegen {
public:
  FuncCodegen(const IrProgram& prog, const IrFunction& fn, const CodegenOptions& options,
              DiagEngine& diags)
      : prog_(prog), fn_(fn), options_(options), diags_(diags) {}

  std::string run() {
    alloc_ = allocate_registers(fn_);
    layout_frame();
    lower_blocks();
    return emit();
  }

private:
  void error(std::string msg) {
    diags_.error({fn_.name, fn_.line, 0}, std::move(msg));
  }

  const std::string& func_isa() const {
    return fn_.isa.empty() ? options_.default_isa : fn_.isa;
  }

  int issue_width() const {
    const isa::IsaInfo* isa = ops().set.find_isa(func_isa());
    return isa != nullptr ? isa->issue_width : 1;
  }

  // -- frame layout -----------------------------------------------------------
  //
  //   sp + 0 ..                 outgoing stack arguments
  //        + out_args_          frame objects (arrays, address-taken locals)
  //        + spill_base_        spill slots
  //        + saved_base_        saved callee-saved registers
  //        + ra_off_            saved return address (if the function calls)
  //   sp + frame_size_          caller frame / incoming stack arguments

  void layout_frame() {
    int out_args = 0;
    needs_ra_ = false;
    for (const IrBlock& b : fn_.blocks)
      for (const IrInst& inst : b.insts)
        if (inst.op == IrOp::Call) {
          needs_ra_ = true;
          out_args = std::max(
              out_args,
              4 * std::max(0, static_cast<int>(inst.args.size()) -
                                  static_cast<int>(isa::abi::kNumArgRegs)));
        }
    out_args_ = out_args;

    int off = out_args_;
    frame_obj_off_.resize(fn_.frame.size());
    for (size_t i = 0; i < fn_.frame.size(); ++i) {
      off = (off + 3) & ~3;
      frame_obj_off_[i] = off;
      off += fn_.frame[i].size;
    }
    off = (off + 3) & ~3;
    spill_base_ = off;
    off += 4 * alloc_.num_spill_slots;
    saved_base_ = off;
    saved_regs_.clear();
    for (int r = regs::kCalleeFirst; r <= regs::kCalleeLast; ++r)
      if (alloc_.callee_used[static_cast<size_t>(r)]) saved_regs_.push_back(r);
    off += 4 * static_cast<int>(saved_regs_.size());
    if (needs_ra_) {
      ra_off_ = off;
      off += 4;
    }
    frame_size_ = (off + 7) & ~7;
  }

  int spill_off(int slot) const { return spill_base_ + 4 * slot; }

  // -- machine-op helpers -------------------------------------------------------

  MachineOp mop(const isa::OpInfo* info, int rd = 0, int ra = 0, int rb = 0,
                int32_t imm = 0) {
    MachineOp op;
    op.info = info;
    op.rd = static_cast<uint8_t>(rd);
    op.ra = static_cast<uint8_t>(ra);
    op.rb = static_cast<uint8_t>(rb);
    op.imm = imm;
    op.line = cur_line_;
    return op;
  }

  void push(MachineOp op) { cur_->body.push_back(std::move(op)); }

  void push_jump(const std::string& label) {
    MachineOp j = mop(ops().J);
    j.has_sym = true;
    j.sym = label;
    cur_->trailing.push_back(std::move(j));
  }

  void emit_mv(int dst, int src) {
    if (dst != src) push(mop(ops().ADD, dst, src, 0));
  }

  /// Materializes a 32-bit constant into `reg`.
  void emit_li(int reg, int32_t value) {
    if (fits_signed(value, 15)) {
      push(mop(ops().ADDI, reg, 0, 0, value));
      return;
    }
    const uint32_t v = static_cast<uint32_t>(value);
    push(mop(ops().LUI, reg, 0, 0, static_cast<int32_t>(v >> 16)));
    if ((v & 0xFFFFu) != 0)
      push(mop(ops().ORLO, reg, 0, 0, static_cast<int32_t>(v & 0xFFFFu)));
  }

  void emit_la(int reg, const std::string& sym, int32_t add) {
    MachineOp hi = mop(ops().LUI, reg);
    hi.has_sym = true;
    hi.sym = sym;
    hi.sym_add = add;
    push(std::move(hi));
    MachineOp lo = mop(ops().ORLO, reg);
    lo.has_sym = true;
    lo.sym = sym;
    lo.sym_add = add;
    push(std::move(lo));
  }

  void emit_sp_add(int32_t delta) {
    if (delta == 0) return;
    if (fits_signed(delta, 15)) {
      push(mop(ops().ADDI, 2, 2, 0, delta));
    } else {
      emit_li(regs::kScratch0, delta);
      push(mop(ops().ADD, 2, 2, regs::kScratch0));
    }
  }

  bool check_frame_offset(int off) {
    if (fits_signed(off, 15)) return true;
    error(strf("frame of %s too large (offset %d does not fit)", fn_.name.c_str(), off));
    return false;
  }

  // -- register access --------------------------------------------------------------

  bool has_loc(int vreg) const {
    return alloc_.reg[static_cast<size_t>(vreg)] >= 0 ||
           alloc_.spill_slot[static_cast<size_t>(vreg)] >= 0;
  }

  /// Register holding `vreg`'s value; spilled values are reloaded into
  /// `scratch` first.
  int use_reg(int vreg, int scratch) {
    const int r = alloc_.reg[static_cast<size_t>(vreg)];
    if (r >= 0) return r;
    const int slot = alloc_.spill_slot[static_cast<size_t>(vreg)];
    check(slot >= 0, "codegen: use of value without a location");
    check_frame_offset(spill_off(slot));
    push(mop(ops().LW, scratch, 2, 0, spill_off(slot)));
    return scratch;
  }

  /// Register a result for `vreg` should be computed into; -1 if the value is
  /// dead (instruction may be skipped for pure ops).
  int def_reg(int vreg) {
    const int r = alloc_.reg[static_cast<size_t>(vreg)];
    if (r >= 0) return r;
    if (alloc_.spill_slot[static_cast<size_t>(vreg)] >= 0) return regs::kSpillD;
    return -1;
  }

  /// Completes a definition (stores spilled results).
  void finish_def(int vreg) {
    const int slot = alloc_.spill_slot[static_cast<size_t>(vreg)];
    if (slot < 0) return;
    check_frame_offset(spill_off(slot));
    push(mop(ops().SW, regs::kSpillD, 2, 0, spill_off(slot)));
  }

  // -- parallel moves -----------------------------------------------------------------

  /// Emits moves realizing dst←src for all pairs "in parallel" (reads before
  /// writes), breaking cycles via kScratch0.
  void parallel_move(std::vector<std::pair<int, int>> moves) {
    for (auto it = moves.begin(); it != moves.end();)
      it = (it->first == it->second) ? moves.erase(it) : std::next(it);
    while (!moves.empty()) {
      bool progress = false;
      for (auto it = moves.begin(); it != moves.end(); ++it) {
        const int dst = it->first;
        bool dst_is_source = false;
        for (const auto& m : moves)
          if (m.second == dst && &m != &*it) dst_is_source = true;
        if (!dst_is_source) {
          emit_mv(dst, it->second);
          moves.erase(it);
          progress = true;
          break;
        }
      }
      if (progress) continue;
      // Cycle: save the first destination's current value in scratch and
      // redirect its readers there.
      const int dst = moves.front().first;
      emit_mv(regs::kScratch0, dst);
      emit_mv(dst, moves.front().second);
      moves.erase(moves.begin());
      for (auto& m : moves)
        if (m.second == dst) m.second = regs::kScratch0;
    }
  }

  // -- lowering -----------------------------------------------------------------------

  std::string block_label(int id) const {
    return ".L" + fn_.name + "_" + std::to_string(id);
  }
  std::string exit_label() const { return ".L" + fn_.name + "_exit"; }

  void lower_blocks() {
    blocks_.clear();
    blocks_.resize(fn_.blocks.size() + 1); // +1 for the epilogue

    for (size_t i = 0; i < fn_.blocks.size(); ++i) {
      cur_ = &blocks_[i];
      cur_->label = block_label(fn_.blocks[i].id);
      if (i == 0) emit_prologue();
      const bool is_last_ir_block = (i + 1 == fn_.blocks.size());
      lower_block(fn_.blocks[i], is_last_ir_block);
    }

    // Epilogue.
    cur_ = &blocks_.back();
    cur_->label = exit_label();
    cur_line_ = 0;
    for (size_t i = 0; i < saved_regs_.size(); ++i)
      push(mop(ops().LW, saved_regs_[i], 2, 0, saved_base_ + 4 * static_cast<int>(i)));
    if (needs_ra_) push(mop(ops().LW, 1, 2, 0, ra_off_));
    emit_sp_add(frame_size_);
    MachineOp ret = mop(ops().JR, 0, 1);
    cur_->trailing.push_back(std::move(ret));
  }

  void emit_prologue() {
    cur_line_ = fn_.line;
    emit_sp_add(-frame_size_);
    if (needs_ra_) {
      check_frame_offset(ra_off_);
      push(mop(ops().SW, 1, 2, 0, ra_off_));
    }
    for (size_t i = 0; i < saved_regs_.size(); ++i)
      push(mop(ops().SW, saved_regs_[i], 2, 0, saved_base_ + 4 * static_cast<int>(i)));

    // Incoming parameters: spill stores first (they read the argument
    // registers), then the register parallel move, then stack-parameter loads.
    std::vector<std::pair<int, int>> moves;
    for (size_t i = 0; i < fn_.param_vregs.size(); ++i) {
      const int vreg = fn_.param_vregs[i];
      if (!has_loc(vreg)) continue; // unused parameter
      if (i < isa::abi::kNumArgRegs) {
        const int src = static_cast<int>(isa::abi::kArg0 + i);
        const int slot = alloc_.spill_slot[static_cast<size_t>(vreg)];
        if (slot >= 0) {
          check_frame_offset(spill_off(slot));
          push(mop(ops().SW, src, 2, 0, spill_off(slot)));
        } else {
          moves.emplace_back(alloc_.reg[static_cast<size_t>(vreg)], src);
        }
      }
    }
    parallel_move(std::move(moves));
    for (size_t i = isa::abi::kNumArgRegs; i < fn_.param_vregs.size(); ++i) {
      const int vreg = fn_.param_vregs[i];
      if (!has_loc(vreg)) continue;
      const int in_off =
          frame_size_ + 4 * static_cast<int>(i - isa::abi::kNumArgRegs);
      if (!check_frame_offset(in_off)) continue;
      const int r = def_reg(vreg);
      push(mop(ops().LW, r, 2, 0, in_off));
      finish_def(vreg);
    }
  }

  void lower_block(const IrBlock& b, bool is_last) {
    for (const IrInst& inst : b.insts) {
      cur_line_ = inst.line;
      lower_inst(inst, b, is_last);
    }
  }

  void lower_inst(const IrInst& inst, const IrBlock& b, bool is_last_block) {
    switch (inst.op) {
      case IrOp::LiConst: {
        const int rd = def_reg(inst.dst);
        if (rd < 0) return;
        emit_li(rd, inst.imm);
        finish_def(inst.dst);
        return;
      }
      case IrOp::LaGlobal: {
        const int rd = def_reg(inst.dst);
        if (rd < 0) return;
        emit_la(rd, inst.sym, inst.imm);
        finish_def(inst.dst);
        return;
      }
      case IrOp::FrameAddr: {
        const int rd = def_reg(inst.dst);
        if (rd < 0) return;
        const int off = frame_obj_off_[static_cast<size_t>(inst.frame_id)] + inst.imm;
        if (!check_frame_offset(off)) return;
        push(mop(ops().ADDI, rd, 2, 0, off));
        finish_def(inst.dst);
        return;
      }
      case IrOp::Mv: {
        const int rd = def_reg(inst.dst);
        if (rd < 0) return;
        const int ra = use_reg(inst.a, regs::kSpillA);
        emit_mv(rd, ra);
        finish_def(inst.dst);
        return;
      }
      case IrOp::Load: {
        const int rd = def_reg(inst.dst);
        if (rd < 0) return;
        const int ra = use_reg(inst.a, regs::kSpillA);
        const isa::OpInfo* op =
            inst.size == 1 ? (inst.is_signed ? ops().LB : ops().LBU)
            : inst.size == 2 ? (inst.is_signed ? ops().LH : ops().LHU)
                             : ops().LW;
        push(mop(op, rd, ra, 0, inst.imm));
        finish_def(inst.dst);
        return;
      }
      case IrOp::Store: {
        const int ra = use_reg(inst.a, regs::kSpillA);
        const int rv = use_reg(inst.b, regs::kSpillB);
        const isa::OpInfo* op =
            inst.size == 1 ? ops().SB : inst.size == 2 ? ops().SH : ops().SW;
        push(mop(op, rv, ra, 0, inst.imm));
        return;
      }
      case IrOp::Call:
        lower_call(inst);
        return;
      case IrOp::Ret: {
        if (inst.a >= 0) {
          const int r = use_reg(inst.a, regs::kSpillA);
          emit_mv(static_cast<int>(isa::abi::kArg0), r);
        }
        push_jump(exit_label());
        return;
      }
      case IrOp::Br: {
        const bool fallthrough = !is_last_block && inst.target == b.id + 1;
        if (!fallthrough) push_jump(block_label(inst.target));
        return;
      }
      case IrOp::CondBr: {
        const int ra = use_reg(inst.a, regs::kSpillA);
        const int rb = use_reg(inst.b, regs::kSpillB);
        const isa::OpInfo* op = nullptr;
        switch (inst.cc) {
          case Cc::Eq: op = ops().BEQ; break;
          case Cc::Ne: op = ops().BNE; break;
          case Cc::LtS: op = ops().BLT; break;
          case Cc::GeS: op = ops().BGE; break;
          case Cc::LtU: op = ops().BLTU; break;
          case Cc::GeU: op = ops().BGEU; break;
        }
        MachineOp br = mop(op, 0, ra, rb);
        br.has_sym = true;
        br.sym = block_label(inst.target);
        push(std::move(br));
        const bool fallthrough = !is_last_block && inst.target2 == b.id + 1;
        if (!fallthrough) push_jump(block_label(inst.target2));
        return;
      }
      default:
        lower_alu(inst);
        return;
    }
  }

  void lower_alu(const IrInst& inst) {
    const int rd = def_reg(inst.dst);
    if (rd < 0) return; // dead pure computation
    const int ra = use_reg(inst.a, regs::kSpillA);

    if (inst.has_imm) {
      const isa::OpInfo* op = nullptr;
      switch (inst.op) {
        case IrOp::Add: op = ops().ADDI; break;
        case IrOp::And: op = ops().ANDI; break;
        case IrOp::Or: op = ops().ORI; break;
        case IrOp::Xor: op = ops().XORI; break;
        case IrOp::Shl: op = ops().SLLI; break;
        case IrOp::ShrL: op = ops().SRLI; break;
        case IrOp::ShrA: op = ops().SRAI; break;
        case IrOp::SltS: op = ops().SLTI; break;
        case IrOp::SltU: op = ops().SLTIU; break;
        default: break;
      }
      if (op != nullptr) {
        push(mop(op, rd, ra, 0, inst.imm));
        finish_def(inst.dst);
        return;
      }
      // No immediate form: materialize into scratch B.
      emit_li(regs::kSpillB, inst.imm);
      lower_alu_rr(inst, rd, ra, regs::kSpillB);
      finish_def(inst.dst);
      return;
    }

    const int rb = use_reg(inst.b, regs::kSpillB);
    lower_alu_rr(inst, rd, ra, rb);
    finish_def(inst.dst);
  }

  void lower_alu_rr(const IrInst& inst, int rd, int ra, int rb) {
    const isa::OpInfo* op = nullptr;
    switch (inst.op) {
      case IrOp::Add: op = ops().ADD; break;
      case IrOp::Sub: op = ops().SUB; break;
      case IrOp::Mul: op = ops().MUL; break;
      case IrOp::DivS: op = ops().DIV; break;
      case IrOp::DivU: op = ops().DIVU; break;
      case IrOp::RemS: op = ops().REM; break;
      case IrOp::RemU: op = ops().REMU; break;
      case IrOp::And: op = ops().AND; break;
      case IrOp::Or: op = ops().OR; break;
      case IrOp::Xor: op = ops().XOR; break;
      case IrOp::Shl: op = ops().SLL; break;
      case IrOp::ShrL: op = ops().SRL; break;
      case IrOp::ShrA: op = ops().SRA; break;
      case IrOp::SltS: op = ops().SLT; break;
      case IrOp::SltU: op = ops().SLTU; break;
      case IrOp::SleS: op = ops().SLE; break;
      case IrOp::SleU: op = ops().SLEU; break;
      case IrOp::Seq: op = ops().SEQ; break;
      case IrOp::Sne: op = ops().SNE; break;
      default:
        error("codegen: unhandled IR operation");
        return;
    }
    push(mop(op, rd, ra, rb));
  }

  void lower_call(const IrInst& inst) {
    const auto sig_it = prog_.signatures.find(inst.sym);
    const FuncSig* sig = sig_it != prog_.signatures.end() ? &sig_it->second : nullptr;

    // Stack arguments first (they read argument sources before any moves).
    for (size_t i = isa::abi::kNumArgRegs; i < inst.args.size(); ++i) {
      const int src = use_reg(inst.args[i], regs::kScratch0);
      push(mop(ops().SW, src, 2, 0,
               4 * static_cast<int>(i - isa::abi::kNumArgRegs)));
    }

    // Register arguments: parallel move for register-resident sources,
    // direct loads for spilled ones.
    std::vector<std::pair<int, int>> moves;
    std::vector<std::pair<int, int>> loads; // target reg ← spill slot
    for (size_t i = 0; i < std::min<size_t>(inst.args.size(), isa::abi::kNumArgRegs);
         ++i) {
      const int target = static_cast<int>(isa::abi::kArg0 + i);
      const int vreg = inst.args[i];
      const int r = alloc_.reg[static_cast<size_t>(vreg)];
      if (r >= 0)
        moves.emplace_back(target, r);
      else
        loads.emplace_back(target, alloc_.spill_slot[static_cast<size_t>(vreg)]);
    }
    parallel_move(std::move(moves));
    for (const auto& [target, slot] : loads) {
      check(slot >= 0, "codegen: argument without a location");
      push(mop(ops().LW, target, 2, 0, spill_off(slot)));
    }

    // Cross-ISA call sequence (§V-D): all three are single-operation
    // instructions whose encodings are ISA-invariant, so control can cross
    // the reconfiguration boundary safely.
    const std::string& cur_isa = func_isa();
    std::string callee_isa =
        sig != nullptr && !sig->isa.empty() ? sig->isa : options_.default_isa;
    const bool switch_isa =
        sig != nullptr && !sig->isa_any && callee_isa != cur_isa;
    if (switch_isa) {
      MachineOp swt = mop(ops().SWITCHTARGET);
      const isa::IsaInfo* isa = ops().set.find_isa(callee_isa);
      if (isa == nullptr) {
        error("unknown ISA '" + callee_isa + "' for function " + inst.sym);
        return;
      }
      swt.imm = isa->id;
      swt.no_group = true;
      push(std::move(swt));
    }

    MachineOp jal = mop(ops().JAL);
    jal.has_sym = true;
    jal.sym = inst.sym;
    jal.no_group = true;
    push(std::move(jal));

    if (switch_isa) {
      MachineOp swt = mop(ops().SWITCHTARGET);
      swt.imm = ops().set.find_isa(cur_isa)->id;
      swt.no_group = true;
      push(std::move(swt));
    }

    // Result.
    if (inst.dst >= 0 && has_loc(inst.dst)) {
      const int r = alloc_.reg[static_cast<size_t>(inst.dst)];
      if (r >= 0) {
        emit_mv(r, static_cast<int>(isa::abi::kArg0));
      } else {
        const int slot = alloc_.spill_slot[static_cast<size_t>(inst.dst)];
        push(mop(ops().SW, static_cast<int>(isa::abi::kArg0), 2, 0, spill_off(slot)));
      }
    }
  }

  // -- emission ------------------------------------------------------------------------

  std::string emit() {
    std::string out;
    out += ".text\n.isa " + func_isa() + "\n";
    out += ".global " + fn_.name + "\n";
    out += ".func " + fn_.name + "\n";
    const int width = options_.schedule ? issue_width() : 1;
    int last_loc = -1;
    for (size_t bi = 0; bi < blocks_.size(); ++bi) {
      const MBlock& b = blocks_[bi];
      out += b.label + ":\n";
      const auto groups = schedule_block(b.body, width);
      for (const auto& group : groups) {
        int line = 0;
        for (const MachineOp& op : group)
          if (op.line > 0) {
            line = line == 0 ? op.line : std::min(line, op.line);
          }
        if (options_.emit_loc && line > 0 && line != last_loc) {
          out += strf("  .loc %d\n", line);
          last_loc = line;
        }
        out += "  ";
        for (size_t k = 0; k < group.size(); ++k) {
          if (k > 0) out += " || ";
          out += render(group[k]);
        }
        out += "\n";
      }
      for (const MachineOp& op : b.trailing) out += "  " + render(op) + "\n";
    }
    out += ".endfunc\n";
    return out;
  }

  const IrProgram& prog_;
  const IrFunction& fn_;
  const CodegenOptions& options_;
  DiagEngine& diags_;
  Allocation alloc_;

  int out_args_ = 0;
  std::vector<int> frame_obj_off_;
  int spill_base_ = 0;
  int saved_base_ = 0;
  int ra_off_ = 0;
  int frame_size_ = 0;
  bool needs_ra_ = false;
  std::vector<int> saved_regs_;

  std::vector<MBlock> blocks_;
  MBlock* cur_ = nullptr;
  int cur_line_ = 0;
};

void emit_globals(const IrProgram& prog, std::string& out) {
  bool any_data = false;
  bool any_bss = false;
  for (const GlobalVar& g : prog.globals) (g.zero_init ? any_bss : any_data) = true;

  if (any_data) {
    out += ".data\n";
    for (const GlobalVar& g : prog.globals) {
      if (g.zero_init) continue;
      out += strf(".align %d\n", std::max(g.align, 1));
      out += g.name + ":\n";
      // Words where possible, bytes otherwise.
      size_t i = 0;
      while (i + 4 <= g.init_data.size() && g.align >= 4) {
        std::string line = "  .word ";
        int n = 0;
        for (; n < 8 && i + 4 <= g.init_data.size(); ++n, i += 4) {
          uint32_t w = 0;
          for (int k = 3; k >= 0; --k) w = (w << 8) | g.init_data[i + static_cast<size_t>(k)];
          line += strf("%s0x%x", n > 0 ? ", " : "", w);
        }
        out += line + "\n";
      }
      while (i < g.init_data.size()) {
        std::string line = "  .byte ";
        int n = 0;
        for (; n < 12 && i < g.init_data.size(); ++n, ++i)
          line += strf("%s%u", n > 0 ? ", " : "", g.init_data[i]);
        out += line + "\n";
      }
    }
  }
  if (any_bss) {
    out += ".bss\n";
    for (const GlobalVar& g : prog.globals) {
      if (!g.zero_init) continue;
      out += strf(".align %d\n", std::max(g.align, 1));
      out += g.name + ":\n  .space " + std::to_string(g.size) + "\n";
    }
  }
}

} // namespace

std::string generate_assembly(const IrProgram& prog, const CodegenOptions& options,
                              std::string_view source_file, DiagEngine& diags) {
  std::string out = "# generated by kcc\n";
  if (options.emit_loc) out += ".file \"" + std::string(source_file) + "\"\n";
  emit_globals(prog, out);
  for (const IrFunction& fn : prog.functions) {
    out += "\n";
    out += FuncCodegen(prog, fn, options, diags).run();
  }
  return out;
}

} // namespace ksim::kcc
