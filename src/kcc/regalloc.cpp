#include "kcc/regalloc.h"

#include <algorithm>
#include <deque>
#include <set>

#include "support/error.h"

namespace ksim::kcc {

void ir_uses(const IrInst& inst, std::vector<int>& out) {
  switch (inst.op) {
    case IrOp::LiConst:
    case IrOp::LaGlobal:
    case IrOp::FrameAddr:
    case IrOp::Br:
      return;
    case IrOp::Call:
      for (int a : inst.args) out.push_back(a);
      return;
    case IrOp::Ret:
      if (inst.a >= 0) out.push_back(inst.a);
      return;
    case IrOp::CondBr:
      out.push_back(inst.a);
      if (inst.b >= 0) out.push_back(inst.b);
      return;
    case IrOp::Mv:
    case IrOp::Load:
      out.push_back(inst.a);
      return;
    case IrOp::Store:
      out.push_back(inst.a);
      out.push_back(inst.b);
      return;
    default: // binary ALU
      out.push_back(inst.a);
      if (!inst.has_imm) out.push_back(inst.b);
      return;
  }
}

int ir_def(const IrInst& inst) {
  switch (inst.op) {
    case IrOp::Store:
    case IrOp::Ret:
    case IrOp::Br:
    case IrOp::CondBr:
      return -1;
    case IrOp::Call:
      return inst.dst; // may be -1 for void calls
    default:
      return inst.dst;
  }
}

namespace {

struct Interval {
  int vreg = -1;
  int start = -1;
  int end = -1; ///< inclusive of the last position
  bool crosses_call = false;
};

} // namespace

Allocation allocate_registers(const IrFunction& fn) {
  Allocation optimistic = allocate_registers_once(fn, /*with_scratch_pool=*/true);
  if (optimistic.num_spill_slots == 0) return optimistic;
  return allocate_registers_once(fn, /*with_scratch_pool=*/false);
}

Allocation allocate_registers_once(const IrFunction& fn, bool with_scratch_pool) {
  const int n = fn.num_vregs;
  Allocation alloc;
  alloc.reg.assign(static_cast<size_t>(n), -1);
  alloc.spill_slot.assign(static_cast<size_t>(n), -1);

  // -- linearize: global position of each instruction ---------------------------
  std::vector<int> block_start(fn.blocks.size(), 0);
  std::vector<int> block_end(fn.blocks.size(), 0);
  int pos = 0;
  for (const IrBlock& b : fn.blocks) {
    block_start[static_cast<size_t>(b.id)] = pos;
    pos += static_cast<int>(b.insts.size());
    block_end[static_cast<size_t>(b.id)] = pos;
  }
  const int total = pos;

  // -- block-level liveness -------------------------------------------------------
  std::vector<std::set<int>> use_b(fn.blocks.size());
  std::vector<std::set<int>> def_b(fn.blocks.size());
  std::vector<std::set<int>> live_in(fn.blocks.size());
  std::vector<std::set<int>> live_out(fn.blocks.size());
  std::vector<std::vector<int>> succs(fn.blocks.size());

  std::vector<int> scratch;
  for (const IrBlock& b : fn.blocks) {
    const size_t i = static_cast<size_t>(b.id);
    for (const IrInst& inst : b.insts) {
      scratch.clear();
      ir_uses(inst, scratch);
      for (int u : scratch)
        if (def_b[i].count(u) == 0) use_b[i].insert(u);
      const int d = ir_def(inst);
      if (d >= 0) def_b[i].insert(d);
      if (inst.op == IrOp::Br) succs[i].push_back(inst.target);
      if (inst.op == IrOp::CondBr) {
        succs[i].push_back(inst.target);
        succs[i].push_back(inst.target2);
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = fn.blocks.size(); i-- > 0;) {
      std::set<int> out;
      for (int s : succs[i])
        out.insert(live_in[static_cast<size_t>(s)].begin(),
                   live_in[static_cast<size_t>(s)].end());
      std::set<int> in = use_b[i];
      for (int v : out)
        if (def_b[i].count(v) == 0) in.insert(v);
      if (out != live_out[i] || in != live_in[i]) {
        live_out[i] = std::move(out);
        live_in[i] = std::move(in);
        changed = true;
      }
    }
  }

  // -- hull intervals ----------------------------------------------------------------
  std::vector<Interval> intervals(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) intervals[static_cast<size_t>(v)].vreg = v;
  auto extend = [&](int v, int from, int to) {
    Interval& iv = intervals[static_cast<size_t>(v)];
    if (iv.start < 0 || from < iv.start) iv.start = from;
    if (to > iv.end) iv.end = to;
  };
  // Parameters are defined at position -1 (function entry).
  for (int p : fn.param_vregs) extend(p, -1, -1);

  std::vector<int> call_positions;
  for (const IrBlock& b : fn.blocks) {
    const size_t i = static_cast<size_t>(b.id);
    int p = block_start[i];
    for (const IrInst& inst : b.insts) {
      scratch.clear();
      ir_uses(inst, scratch);
      for (int u : scratch) extend(u, p, p);
      const int d = ir_def(inst);
      if (d >= 0) extend(d, p, p);
      if (inst.op == IrOp::Call) call_positions.push_back(p);
      ++p;
    }
    for (int v : live_out[i]) extend(v, block_start[i], block_end[i]);
    for (int v : live_in[i]) extend(v, block_start[i], block_start[i]);
  }
  (void)total;

  for (Interval& iv : intervals) {
    if (iv.start < 0) continue;
    const auto it = std::lower_bound(call_positions.begin(), call_positions.end(),
                                     iv.start);
    // A call strictly inside (start, end) splits the value's life across it.
    iv.crosses_call =
        it != call_positions.end() && *it < iv.end;
  }

  // -- linear scan ----------------------------------------------------------------------
  std::vector<Interval> order;
  for (const Interval& iv : intervals)
    if (iv.start >= 0 || iv.end >= 0) order.push_back(iv);
  std::sort(order.begin(), order.end(), [](const Interval& a, const Interval& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.vreg < b.vreg;
  });

  std::deque<int> caller_free;
  for (int r = regs::kCallerFirst; r <= regs::kCallerLast; ++r) caller_free.push_back(r);
  caller_free.push_back(regs::kExtraCaller);
  if (with_scratch_pool) {
    caller_free.push_back(regs::kSpillA);
    caller_free.push_back(regs::kSpillB);
    caller_free.push_back(regs::kSpillD);
  }
  std::deque<int> callee_free;
  for (int r = regs::kCalleeFirst; r <= regs::kCalleeLast; ++r) callee_free.push_back(r);

  struct Active {
    int end;
    int vreg;
    int reg;
    bool operator<(const Active& other) const {
      if (end != other.end) return end < other.end;
      return vreg < other.vreg;
    }
  };
  std::set<Active> active;

  auto release = [&](int r) {
    if (r >= regs::kCalleeFirst && r <= regs::kCalleeLast)
      callee_free.push_back(r);
    else
      caller_free.push_back(r);
  };

  for (const Interval& iv : order) {
    // Expire intervals that ended before this one starts.
    while (!active.empty() && active.begin()->end < iv.start) {
      release(active.begin()->reg);
      active.erase(active.begin());
    }

    int chosen = -1;
    if (iv.crosses_call) {
      if (!callee_free.empty()) {
        chosen = callee_free.front();
        callee_free.pop_front();
      }
    } else {
      if (!caller_free.empty()) {
        chosen = caller_free.front();
        caller_free.pop_front();
      } else if (!callee_free.empty()) {
        chosen = callee_free.front();
        callee_free.pop_front();
      }
    }

    if (chosen < 0) {
      // Spill: prefer evicting the active interval with the furthest end if it
      // is longer-lived than the current one and pool-compatible.
      const Active* victim = nullptr;
      for (auto it = active.rbegin(); it != active.rend(); ++it) {
        const bool compatible =
            !iv.crosses_call ||
            (it->reg >= regs::kCalleeFirst && it->reg <= regs::kCalleeLast);
        if (compatible) {
          victim = &*it;
          break;
        }
      }
      if (victim != nullptr && victim->end > iv.end) {
        alloc.reg[static_cast<size_t>(victim->vreg)] = -1;
        alloc.spill_slot[static_cast<size_t>(victim->vreg)] = alloc.num_spill_slots++;
        chosen = victim->reg;
        active.erase(*victim);
      } else {
        alloc.spill_slot[static_cast<size_t>(iv.vreg)] = alloc.num_spill_slots++;
        continue;
      }
    }

    alloc.reg[static_cast<size_t>(iv.vreg)] = chosen;
    if (chosen >= regs::kCalleeFirst && chosen <= regs::kCalleeLast)
      alloc.callee_used[static_cast<size_t>(chosen)] = true;
    active.insert({intervals[static_cast<size_t>(iv.vreg)].end, iv.vreg, chosen});
  }

  return alloc;
}

} // namespace ksim::kcc
