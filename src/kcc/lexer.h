// Lexer for MiniC, the C subset accepted by the retargetable compiler
// substitute (see DESIGN.md §2 for what it replaces).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/diag.h"

namespace ksim::kcc {

enum class Tok : uint8_t {
  // literals / identifiers
  Eof, Ident, IntLit, CharLit, StrLit,
  // keywords
  KwInt, KwUnsigned, KwChar, KwVoid, KwConst, KwIf, KwElse, KwWhile, KwFor,
  KwDo, KwBreak, KwContinue, KwReturn, KwIsa,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket, Semi, Comma,
  // operators
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
  Plus, Minus, Star, Slash, Percent, Amp, Pipe, Caret, Tilde, Bang,
  Shl, Shr, Lt, Gt, Le, Ge, EqEq, NotEq, AndAnd, OrOr,
  Inc, Dec, Question, Colon,
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;   ///< identifier / string contents
  int64_t value = 0;  ///< integer / char literal value
  int line = 0;
  int column = 0;
};

/// Tokenizes `source`.  Reports malformed tokens to `diags` and skips them.
/// The result always ends with an Eof token.
std::vector<Token> lex(std::string_view source, std::string_view file_name,
                       DiagEngine& diags);

/// Token spelling for diagnostics.
const char* tok_name(Tok kind);

} // namespace ksim::kcc
