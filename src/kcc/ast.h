// Abstract syntax tree for MiniC.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kcc/lexer.h"

namespace ksim::kcc {

/// Scalar/pointer types.  Arrays appear only in declarations (they decay to
/// pointers in expressions).
struct Type {
  enum class Base : uint8_t { Void, Int, UInt, Char, UChar };
  Base base = Base::Int;
  int ptr = 0; ///< pointer depth

  bool is_void() const { return base == Base::Void && ptr == 0; }
  bool is_pointer() const { return ptr > 0; }
  bool is_unsigned() const {
    return is_pointer() || base == Base::UInt || base == Base::UChar;
  }
  bool is_char() const { return !is_pointer() && (base == Base::Char || base == Base::UChar); }

  /// Size of a value of this type (pointers are 4 bytes).
  int size() const { return is_pointer() ? 4 : (is_char() ? 1 : 4); }

  /// Size of the pointee (for pointer arithmetic / indexing).
  Type deref() const {
    Type t = *this;
    t.ptr -= 1;
    return t;
  }
  Type pointer_to() const {
    Type t = *this;
    t.ptr += 1;
    return t;
  }

  bool operator==(const Type&) const = default;

  std::string to_string() const;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : uint8_t {
    IntLit,  ///< value
    StrLit,  ///< text (lowered to an anonymous global)
    Var,     ///< text = name
    Unary,   ///< op (Minus/Tilde/Bang/Amp/Star/Inc/Dec), a; postfix flag for ++/--
    Binary,  ///< op, a, b
    Assign,  ///< op (Assign or compound), a = lvalue, b = rhs
    Cond,    ///< a ? b : c
    Call,    ///< text = callee, args
    Index,   ///< a[b]
    Cast,    ///< (type) a
  };
  Kind kind = Kind::IntLit;
  Tok op = Tok::Eof;
  int64_t value = 0;
  std::string text;
  ExprPtr a, b, c;
  std::vector<ExprPtr> args;
  bool postfix = false;
  Type cast_type;
  int line = 0;

  // Filled by semantic analysis (irgen).
  Type type;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// A variable declaration (local or global).
struct VarDecl {
  Type type;         ///< element type for arrays
  std::string name;
  int array_size = -1; ///< -1: scalar; otherwise number of elements
  ExprPtr init;        ///< scalar initializer
  std::vector<ExprPtr> init_list; ///< array initializer
  std::string init_string;        ///< char-array string initializer
  bool has_init_string = false;
  int line = 0;
};

struct Stmt {
  enum class Kind : uint8_t {
    Block, If, While, DoWhile, For, Break, Continue, Return, ExprStmt, Decl, Empty,
  };
  Kind kind = Kind::Empty;
  std::vector<StmtPtr> body;  ///< Block
  ExprPtr cond;               ///< If/While/DoWhile/For
  StmtPtr then_stmt, else_stmt;
  StmtPtr init_stmt;          ///< For (declaration or expression statement)
  ExprPtr step;               ///< For
  ExprPtr expr;               ///< Return/ExprStmt
  std::unique_ptr<VarDecl> decl;
  int line = 0;
};

struct Param {
  Type type;
  std::string name;
};

struct FuncDecl {
  Type ret;
  std::string name;
  std::vector<Param> params;
  StmtPtr body;      ///< null for prototypes
  std::string isa;   ///< target ISA name ("" = translation-unit default)
  bool is_variadic = false; ///< only builtin printf
  int line = 0;
};

/// A translation unit: globals and functions in source order.
struct TranslationUnit {
  std::vector<std::unique_ptr<VarDecl>> globals;
  std::vector<std::unique_ptr<FuncDecl>> functions;
};

} // namespace ksim::kcc
