#include "kcc/parser.h"

#include "support/strings.h"

namespace ksim::kcc {
namespace {

/// Binary operator precedence (higher binds tighter); 0 = not a binary op.
int precedence(Tok t) {
  switch (t) {
    case Tok::Star:
    case Tok::Slash:
    case Tok::Percent: return 10;
    case Tok::Plus:
    case Tok::Minus: return 9;
    case Tok::Shl:
    case Tok::Shr: return 8;
    case Tok::Lt:
    case Tok::Gt:
    case Tok::Le:
    case Tok::Ge: return 7;
    case Tok::EqEq:
    case Tok::NotEq: return 6;
    case Tok::Amp: return 5;
    case Tok::Caret: return 4;
    case Tok::Pipe: return 3;
    case Tok::AndAnd: return 2;
    case Tok::OrOr: return 1;
    default: return 0;
  }
}

bool is_assign_op(Tok t) {
  switch (t) {
    case Tok::Assign:
    case Tok::PlusAssign:
    case Tok::MinusAssign:
    case Tok::StarAssign:
    case Tok::SlashAssign:
    case Tok::PercentAssign:
    case Tok::AmpAssign:
    case Tok::PipeAssign:
    case Tok::CaretAssign:
    case Tok::ShlAssign:
    case Tok::ShrAssign: return true;
    default: return false;
  }
}

class Parser {
public:
  Parser(std::string_view source, std::string_view file, DiagEngine& diags)
      : file_(file), diags_(diags) {
    tokens_ = lex(source, file, diags);
  }

  TranslationUnit run() {
    TranslationUnit unit;
    while (!at(Tok::Eof)) {
      const size_t before = pos_;
      parse_top_level(unit);
      if (pos_ == before) advance(); // ensure progress on errors
    }
    return unit;
  }

private:
  const Token& cur() const { return tokens_[pos_]; }
  const Token& peek(int ahead = 1) const {
    const size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at(Tok k) const { return cur().kind == k; }
  Token advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    advance();
    return true;
  }
  void error(std::string msg) {
    diags_.error({std::string(file_), cur().line, cur().column}, std::move(msg));
  }
  Token expect(Tok k, const char* context) {
    if (at(k)) return advance();
    error(strf("expected %s %s, got %s", tok_name(k), context, tok_name(cur().kind)));
    return cur();
  }

  bool at_type() const {
    return at(Tok::KwInt) || at(Tok::KwUnsigned) || at(Tok::KwChar) || at(Tok::KwVoid) ||
           at(Tok::KwConst);
  }

  Type parse_type() {
    accept(Tok::KwConst);
    Type t;
    if (accept(Tok::KwVoid)) {
      t.base = Type::Base::Void;
    } else if (accept(Tok::KwInt)) {
      t.base = Type::Base::Int;
    } else if (accept(Tok::KwChar)) {
      t.base = Type::Base::Char;
    } else if (accept(Tok::KwUnsigned)) {
      if (accept(Tok::KwChar))
        t.base = Type::Base::UChar;
      else {
        accept(Tok::KwInt);
        t.base = Type::Base::UInt;
      }
    } else {
      error("expected a type");
      advance();
    }
    while (accept(Tok::Star)) ++t.ptr;
    return t;
  }

  // -- top level ----------------------------------------------------------------

  void parse_top_level(TranslationUnit& unit) {
    std::string isa_attr;
    if (accept(Tok::KwIsa)) {
      expect(Tok::LParen, "after isa");
      const Token name = expect(Tok::StrLit, "as ISA name");
      isa_attr = name.text;
      expect(Tok::RParen, "after ISA name");
    }
    if (!at_type()) {
      error("expected a declaration");
      return;
    }
    const int line = cur().line;
    Type type = parse_type();
    const Token name = expect(Tok::Ident, "in declaration");

    if (at(Tok::LParen)) {
      parse_function(unit, type, name.text, isa_attr, line);
      return;
    }
    if (!isa_attr.empty()) error("isa() attribute only applies to functions");
    unit.globals.push_back(parse_var_rest(type, name.text, line));
  }

  void parse_function(TranslationUnit& unit, Type ret, const std::string& name,
                      const std::string& isa_attr, int line) {
    auto fn = std::make_unique<FuncDecl>();
    fn->ret = ret;
    fn->name = name;
    fn->isa = isa_attr;
    fn->line = line;
    expect(Tok::LParen, "in function declaration");
    if (!accept(Tok::RParen)) {
      if (at(Tok::KwVoid) && peek().kind == Tok::RParen) {
        advance();
      } else {
        do {
          Param p;
          p.type = parse_type();
          const Token pname = expect(Tok::Ident, "as parameter name");
          p.name = pname.text;
          // Array parameters decay to pointers.
          if (accept(Tok::LBracket)) {
            if (!at(Tok::RBracket)) parse_expr(); // tolerate a size, ignored
            expect(Tok::RBracket, "after array parameter");
            p.type.ptr += 1;
          }
          fn->params.push_back(std::move(p));
        } while (accept(Tok::Comma));
      }
      expect(Tok::RParen, "after parameters");
    }
    if (accept(Tok::Semi)) {
      unit.functions.push_back(std::move(fn)); // prototype
      return;
    }
    fn->body = parse_block();
    unit.functions.push_back(std::move(fn));
  }

  std::unique_ptr<VarDecl> parse_var_rest(Type type, const std::string& name, int line) {
    auto decl = std::make_unique<VarDecl>();
    decl->type = type;
    decl->name = name;
    decl->line = line;
    if (accept(Tok::LBracket)) {
      if (at(Tok::RBracket)) {
        decl->array_size = 0; // size from initializer
      } else {
        ExprPtr size = parse_expr();
        int64_t v = 0;
        if (!const_eval(*size, v) || v <= 0)
          error("array size must be a positive constant");
        else
          decl->array_size = static_cast<int>(v);
      }
      expect(Tok::RBracket, "after array size");
    }
    if (accept(Tok::Assign)) {
      if (accept(Tok::LBrace)) {
        if (decl->array_size < 0) error("initializer list requires an array");
        if (!at(Tok::RBrace)) {
          do {
            decl->init_list.push_back(parse_assignment());
          } while (accept(Tok::Comma) && !at(Tok::RBrace));
        }
        expect(Tok::RBrace, "after initializer list");
        if (decl->array_size == 0)
          decl->array_size = static_cast<int>(decl->init_list.size());
      } else if (at(Tok::StrLit) && decl->array_size >= 0 && decl->type.is_char()) {
        decl->init_string = advance().text;
        decl->has_init_string = true;
        if (decl->array_size == 0)
          decl->array_size = static_cast<int>(decl->init_string.size()) + 1;
      } else {
        decl->init = parse_assignment();
      }
    } else if (decl->array_size == 0) {
      error("array of unknown size needs an initializer");
    }
    expect(Tok::Semi, "after declaration");
    return decl;
  }

  /// Best-effort constant evaluation for array sizes.
  bool const_eval(const Expr& e, int64_t& out) {
    switch (e.kind) {
      case Expr::Kind::IntLit:
        out = e.value;
        return true;
      case Expr::Kind::Unary:
        if (e.op == Tok::Minus) {
          int64_t v = 0;
          if (!const_eval(*e.a, v)) return false;
          out = -v;
          return true;
        }
        return false;
      case Expr::Kind::Binary: {
        int64_t a = 0;
        int64_t b = 0;
        if (!const_eval(*e.a, a) || !const_eval(*e.b, b)) return false;
        switch (e.op) {
          case Tok::Plus: out = a + b; return true;
          case Tok::Minus: out = a - b; return true;
          case Tok::Star: out = a * b; return true;
          case Tok::Slash:
            if (b == 0) return false;
            out = a / b;
            return true;
          case Tok::Shl: out = a << b; return true;
          default: return false;
        }
      }
      default:
        return false;
    }
  }

  // -- statements ----------------------------------------------------------------

  StmtPtr parse_block() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Block;
    s->line = cur().line;
    expect(Tok::LBrace, "to open block");
    while (!at(Tok::RBrace) && !at(Tok::Eof)) {
      const size_t before = pos_;
      s->body.push_back(parse_stmt());
      if (pos_ == before) advance();
    }
    expect(Tok::RBrace, "to close block");
    return s;
  }

  StmtPtr parse_stmt() {
    auto s = std::make_unique<Stmt>();
    s->line = cur().line;
    if (at(Tok::LBrace)) return parse_block();
    if (accept(Tok::Semi)) {
      s->kind = Stmt::Kind::Empty;
      return s;
    }
    if (at_type()) {
      s->kind = Stmt::Kind::Decl;
      Type type = parse_type();
      const Token name = expect(Tok::Ident, "in declaration");
      s->decl = parse_var_rest(type, name.text, s->line);
      return s;
    }
    if (accept(Tok::KwIf)) {
      s->kind = Stmt::Kind::If;
      expect(Tok::LParen, "after if");
      s->cond = parse_expr();
      expect(Tok::RParen, "after condition");
      s->then_stmt = parse_stmt();
      if (accept(Tok::KwElse)) s->else_stmt = parse_stmt();
      return s;
    }
    if (accept(Tok::KwWhile)) {
      s->kind = Stmt::Kind::While;
      expect(Tok::LParen, "after while");
      s->cond = parse_expr();
      expect(Tok::RParen, "after condition");
      s->then_stmt = parse_stmt();
      return s;
    }
    if (accept(Tok::KwDo)) {
      s->kind = Stmt::Kind::DoWhile;
      s->then_stmt = parse_stmt();
      expect(Tok::KwWhile, "after do body");
      expect(Tok::LParen, "after while");
      s->cond = parse_expr();
      expect(Tok::RParen, "after condition");
      expect(Tok::Semi, "after do-while");
      return s;
    }
    if (accept(Tok::KwFor)) {
      s->kind = Stmt::Kind::For;
      expect(Tok::LParen, "after for");
      if (!accept(Tok::Semi)) {
        if (at_type()) {
          auto init = std::make_unique<Stmt>();
          init->kind = Stmt::Kind::Decl;
          init->line = cur().line;
          Type type = parse_type();
          const Token name = expect(Tok::Ident, "in declaration");
          init->decl = parse_var_rest(type, name.text, init->line); // eats ';'
          s->init_stmt = std::move(init);
        } else {
          auto init = std::make_unique<Stmt>();
          init->kind = Stmt::Kind::ExprStmt;
          init->line = cur().line;
          init->expr = parse_expr();
          expect(Tok::Semi, "after for initializer");
          s->init_stmt = std::move(init);
        }
      }
      if (!at(Tok::Semi)) s->cond = parse_expr();
      expect(Tok::Semi, "after for condition");
      if (!at(Tok::RParen)) s->step = parse_expr();
      expect(Tok::RParen, "after for clauses");
      s->then_stmt = parse_stmt();
      return s;
    }
    if (accept(Tok::KwBreak)) {
      s->kind = Stmt::Kind::Break;
      expect(Tok::Semi, "after break");
      return s;
    }
    if (accept(Tok::KwContinue)) {
      s->kind = Stmt::Kind::Continue;
      expect(Tok::Semi, "after continue");
      return s;
    }
    if (accept(Tok::KwReturn)) {
      s->kind = Stmt::Kind::Return;
      if (!at(Tok::Semi)) s->expr = parse_expr();
      expect(Tok::Semi, "after return");
      return s;
    }
    s->kind = Stmt::Kind::ExprStmt;
    s->expr = parse_expr();
    expect(Tok::Semi, "after expression");
    return s;
  }

  // -- expressions ----------------------------------------------------------------

  ExprPtr make_expr(Expr::Kind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = cur().line;
    return e;
  }

  ExprPtr parse_expr() { return parse_assignment(); }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_conditional();
    if (is_assign_op(cur().kind)) {
      auto e = make_expr(Expr::Kind::Assign);
      e->op = advance().kind;
      e->a = std::move(lhs);
      e->b = parse_assignment();
      return e;
    }
    return lhs;
  }

  ExprPtr parse_conditional() {
    ExprPtr cond = parse_binary(1);
    if (!accept(Tok::Question)) return cond;
    auto e = make_expr(Expr::Kind::Cond);
    e->a = std::move(cond);
    e->b = parse_assignment();
    expect(Tok::Colon, "in conditional expression");
    e->c = parse_assignment();
    return e;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    while (true) {
      const int prec = precedence(cur().kind);
      if (prec < min_prec || prec == 0) return lhs;
      const Tok op = advance().kind;
      ExprPtr rhs = parse_binary(prec + 1);
      auto e = make_expr(Expr::Kind::Binary);
      e->op = op;
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
  }

  ExprPtr parse_unary() {
    if (at(Tok::Minus) || at(Tok::Tilde) || at(Tok::Bang) || at(Tok::Amp) ||
        at(Tok::Star) || at(Tok::Inc) || at(Tok::Dec)) {
      auto e = make_expr(Expr::Kind::Unary);
      e->op = advance().kind;
      e->a = parse_unary();
      return e;
    }
    // Cast: '(' type ')' unary — only when a type keyword follows '('.
    if (at(Tok::LParen) &&
        (peek().kind == Tok::KwInt || peek().kind == Tok::KwUnsigned ||
         peek().kind == Tok::KwChar || peek().kind == Tok::KwVoid)) {
      auto e = make_expr(Expr::Kind::Cast);
      advance(); // '('
      e->cast_type = parse_type();
      expect(Tok::RParen, "after cast type");
      e->a = parse_unary();
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    while (true) {
      if (accept(Tok::LBracket)) {
        auto idx = make_expr(Expr::Kind::Index);
        idx->a = std::move(e);
        idx->b = parse_expr();
        expect(Tok::RBracket, "after index");
        e = std::move(idx);
      } else if (at(Tok::LParen) && e->kind == Expr::Kind::Var) {
        auto call = make_expr(Expr::Kind::Call);
        call->text = e->text;
        advance(); // '('
        if (!at(Tok::RParen)) {
          do {
            call->args.push_back(parse_assignment());
          } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "after call arguments");
        e = std::move(call);
      } else if (at(Tok::Inc) || at(Tok::Dec)) {
        auto post = make_expr(Expr::Kind::Unary);
        post->op = advance().kind;
        post->postfix = true;
        post->a = std::move(e);
        e = std::move(post);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_primary() {
    if (at(Tok::IntLit) || at(Tok::CharLit)) {
      auto e = make_expr(Expr::Kind::IntLit);
      e->value = advance().value;
      return e;
    }
    if (at(Tok::StrLit)) {
      auto e = make_expr(Expr::Kind::StrLit);
      e->text = advance().text;
      return e;
    }
    if (at(Tok::Ident)) {
      auto e = make_expr(Expr::Kind::Var);
      e->text = advance().text;
      return e;
    }
    if (accept(Tok::LParen)) {
      ExprPtr e = parse_expr();
      expect(Tok::RParen, "after parenthesized expression");
      return e;
    }
    error(strf("unexpected %s in expression", tok_name(cur().kind)));
    advance();
    return make_expr(Expr::Kind::IntLit);
  }

  std::string_view file_;
  DiagEngine& diags_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

} // namespace

TranslationUnit parse(std::string_view source, std::string_view file_name,
                      DiagEngine& diags) {
  return Parser(source, file_name, diags).run();
}

} // namespace ksim::kcc
