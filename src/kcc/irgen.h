// Semantic analysis + IR generation for MiniC.
#pragma once

#include "kcc/ir.h"
#include "support/diag.h"

namespace ksim::kcc {

/// Lowers a parsed translation unit to IR.  Type errors, undeclared
/// identifiers etc. are reported via `diags`.
IrProgram generate_ir(const TranslationUnit& unit, std::string_view file_name,
                      DiagEngine& diags);

} // namespace ksim::kcc
