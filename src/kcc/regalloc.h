// Register allocation for the MiniC compiler: liveness analysis and linear
// scan over hull intervals with call-awareness.
//
// Register pools:
//   caller-saved r4..r17 and r31 — intervals that do not cross a call,
//   callee-saved r18..r27 — intervals that cross a call (saved in prologue).
// r0..r2 are fixed (zero, ra, sp); r3/r28/r29 are spill scratch registers;
// r30 is codegen scratch; r4..r9 carry arguments and return values (they may
// hold call-free intervals because the call sequences read their argument
// sources through a parallel move before writing any argument register).
//
// Registers are handed out least-recently-freed (FIFO) so that consecutive
// short-lived temporaries land in different registers — this keeps false
// (WAR/WAW) dependencies low for the post-allocation VLIW scheduler.
#pragma once

#include <vector>

#include "kcc/ir.h"

namespace ksim::kcc {

namespace regs {
inline constexpr int kSpillA = 3;   ///< scratch for spilled operand a
inline constexpr int kSpillB = 29;  ///< scratch for spilled operand b
inline constexpr int kSpillD = 28;  ///< scratch for spilled destinations
inline constexpr int kScratch0 = 30;///< codegen temp (parallel moves, addresses)
inline constexpr int kExtraCaller = 31; ///< joins the caller-saved pool
inline constexpr int kCallerFirst = 4;
inline constexpr int kCallerLast = 17;
inline constexpr int kCalleeFirst = 18;
inline constexpr int kCalleeLast = 27;
} // namespace regs

struct Allocation {
  std::vector<int> reg;        ///< vreg → physical register, -1 if spilled
  std::vector<int> spill_slot; ///< vreg → spill slot index, -1 if in a register
  int num_spill_slots = 0;
  std::vector<bool> callee_used = std::vector<bool>(32, false);

  bool is_spilled(int vreg) const { return reg[static_cast<size_t>(vreg)] < 0; }
};

/// Allocates registers for `fn`.  Runs optimistically with the spill-scratch
/// registers (r3/r28/r29) in the allocatable pool; if that attempt spills, it
/// reruns with them reserved for spill code.
Allocation allocate_registers(const IrFunction& fn);

/// Single allocation pass. `with_scratch_pool` adds r3/r28/r29 to the
/// caller-saved pool (only valid when the result has no spills).
Allocation allocate_registers_once(const IrFunction& fn, bool with_scratch_pool);

/// Registers read by `inst` (IR level), appended to `out`.
void ir_uses(const IrInst& inst, std::vector<int>& out);
/// Register defined by `inst`, or -1.
int ir_def(const IrInst& inst);

} // namespace ksim::kcc
