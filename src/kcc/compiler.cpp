#include "kcc/compiler.h"

#include "kcc/irgen.h"
#include "kcc/parser.h"

namespace ksim::kcc {

CompileResult compile(std::string_view source, const CompileOptions& options,
                      DiagEngine& diags, bool dump_ir) {
  CompileResult result;
  const TranslationUnit unit = parse(source, options.file_name, diags);
  if (diags.has_errors()) return result;
  const IrProgram prog = generate_ir(unit, options.file_name, diags);
  if (diags.has_errors()) return result;
  if (dump_ir) result.ir_dump = dump(prog);
  result.assembly = generate_assembly(prog, options.codegen, options.file_name, diags);
  return result;
}

std::string compile_or_throw(std::string_view source, const CompileOptions& options) {
  DiagEngine diags;
  CompileResult result = compile(source, options, diags);
  diags.throw_if_errors();
  return std::move(result.assembly);
}

} // namespace ksim::kcc
