// Code generation: IR → K-ISA assembly text (consumed by the assembler).
// Handles frame layout, calling convention, spill code, mixed-ISA call
// sequences (SWITCHTARGET around JAL for cross-ISA calls) and per-block VLIW
// scheduling for the target ISA's issue width.
#pragma once

#include <string>

#include "kcc/ir.h"
#include "support/diag.h"

namespace ksim::kcc {

struct CodegenOptions {
  std::string default_isa = "RISC"; ///< ISA for functions without isa("...")
  bool schedule = true;             ///< pack VLIW groups (false: one op per instr)
  bool emit_loc = true;             ///< emit .loc directives for debug info
};

/// Generates a complete assembly file for `prog`.
std::string generate_assembly(const IrProgram& prog, const CodegenOptions& options,
                              std::string_view source_file, DiagEngine& diags);

} // namespace ksim::kcc
