// ksim — command line driver for the KAHRISMA toolchain and simulator.
//
//   ksim run [options] <file.c|file.s|file.elf>   compile/assemble, link, run
//   ksim run --workload <name> [options]          run a built-in workload
//   ksim build -o out.elf [options] <inputs...>   build an executable
//   ksim cc <file.c>                              print generated assembly
//   ksim disasm <file.elf>                        disassemble an executable
//   ksim lint [options] <file.c|file.s|file.elf>  statically analyze a program
//   ksim lint --workload <name>|all [--isa NAME|all]
//   ksim workloads                                list built-in workloads
//   ksim resume <ckpt|dir> [options]              resume a checkpointed run
//   ksim replay <ckpt|dir>                        deterministic replay self-check
//
// lint options (klint, see src/analysis/):
//   --format text|json  report format (default text)
//   --ilp               include the static per-function ILP upper bounds
//   --ilp-compare       also run the §VI-A ILP model and print both numbers
//   --verbose           include notes (informational findings)
//   --max-findings N    truncate the report after N findings
//
// run options:
//   --isa NAME       target/entry ISA (RISC, VLIW2, VLIW4, VLIW6, VLIW8)
//   --model NAME     cycle model: none (default), ilp, aie, doe, rtl
//   --trace FILE     write an operation trace (paper §V, goal 3)
//   --profile        print a per-function profile (paper §IV, goal 2)
//   --no-decode-cache / --no-prediction   disable §V-A optimizations
//   --no-superblocks disable the superblock execution engine (fall back to
//                    the §V-A per-instruction prediction path)
//   --bp KIND        branch predictor for AIE/DOE (not-taken, taken, 1bit,
//                    2bit, gshare); default: perfect prediction
//   --bp-penalty N   mispredict refill penalty in cycles (default 3)
//   --opstats        print a per-operation execution histogram
//   --max-instr N    stop after N instructions
//   --seed N         emulated-libc rand() seed (default 1; recorded in
//                    checkpoints so resumed runs keep the same stream)
//   --checkpoint-every N   snapshot simulator state every N instructions
//                    (kckpt, DESIGN.md §5c); requires --ckpt-dir
//   --ckpt-dir DIR   directory for ckpt-<n>.kckpt snapshots
//   --ckpt-keep K    how many snapshots to keep (default 3)
//
// resume options: the run configuration (model, predictor, seed, engine
// flags) is restored from the checkpoint; --trace/--profile/--opstats apply
// to the resumed portion, and --checkpoint-every/--ckpt-dir continue
// periodic snapshotting.  The recorded --max-instr is NOT reapplied (it is
// what interrupted the original run); pass --max-instr to bound the resumed
// run again.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "analysis/lint.h"
#include "ckpt/checkpoint.h"
#include "cycle/branch_predict.h"
#include "cycle/models.h"
#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/disasm.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "kcc/compiler.h"
#include "rtl/rtl_sim.h"
#include "sim/simulator.h"
#include "support/error.h"
#include "support/strings.h"
#include "workloads/build.h"

namespace ksim {
namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: ksim <run|build|cc|disasm|lint|workloads|resume|replay>"
               " [options] [files]\n"
               "  run --workload <name> | <file.c|.s|.elf>  [--isa NAME]\n"
               "      [--model none|ilp|aie|doe|rtl] [--trace FILE] [--profile]\n"
               "      [--no-decode-cache] [--no-prediction] [--no-superblocks]\n"
               "      [--max-instr N] [--seed N]\n"
               "      [--checkpoint-every N --ckpt-dir DIR [--ckpt-keep K]]\n"
               "  build -o <out.elf> [--isa NAME] <file.c|.s ...>\n"
               "  cc [--isa NAME] <file.c>\n"
               "  disasm <file.elf>\n"
               "  lint --workload <name>|all | <file.c|.s|.elf>  [--isa NAME|all]\n"
               "       [--format text|json] [--ilp] [--ilp-compare] [--verbose]\n"
               "       [--max-findings N]\n"
               "  resume <file.kckpt|dir>  [--trace FILE] [--profile] [--max-instr N]\n"
               "         [--checkpoint-every N --ckpt-dir DIR [--ckpt-keep K]]\n"
               "  replay <file.kckpt|dir>  re-run from scratch, compare bit-for-bit\n";
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

struct Options {
  std::string isa = "RISC";
  std::string model = "none";
  std::string trace_file;
  std::string output;
  std::string workload;
  bool profile = false;
  bool opstats = false;
  std::string format = "text";
  bool lint_ilp = false;
  bool lint_ilp_compare = false;
  bool verbose = false;
  int max_findings = 0;
  std::string bp_kind;
  int bp_penalty = 3;
  bool decode_cache = true;
  bool prediction = true;
  bool superblocks = true;
  uint64_t max_instr = 0;
  uint32_t seed = 1;
  uint64_t ckpt_every = 0;
  std::string ckpt_dir;
  unsigned ckpt_keep = 3;
  std::vector<std::string> inputs;
};

Options parse_options(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--isa") {
      opt.isa = next();
    } else if (arg == "--model") {
      opt.model = next();
    } else if (arg == "--trace") {
      opt.trace_file = next();
    } else if (arg == "--workload") {
      opt.workload = next();
    } else if (arg == "-o") {
      opt.output = next();
    } else if (arg == "--profile") {
      opt.profile = true;
    } else if (arg == "--opstats") {
      opt.opstats = true;
    } else if (arg == "--bp") {
      opt.bp_kind = next();
    } else if (arg == "--bp-penalty") {
      int64_t v = 0;
      check(parse_int(next(), v) && v >= 0, "--bp-penalty expects a cycle count");
      opt.bp_penalty = static_cast<int>(v);
    } else if (arg == "--format") {
      opt.format = next();
    } else if (arg == "--ilp") {
      opt.lint_ilp = true;
    } else if (arg == "--ilp-compare") {
      opt.lint_ilp = true;
      opt.lint_ilp_compare = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--max-findings") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0, "--max-findings expects a count");
      opt.max_findings = static_cast<int>(v);
    } else if (arg == "--no-decode-cache") {
      opt.decode_cache = false;
    } else if (arg == "--no-prediction") {
      opt.prediction = false;
    } else if (arg == "--no-superblocks") {
      opt.superblocks = false;
    } else if (arg == "--max-instr") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0, "--max-instr expects a count");
      opt.max_instr = static_cast<uint64_t>(v);
    } else if (arg == "--seed") {
      int64_t v = 0;
      check(parse_int(next(), v) && v >= 0 && v <= INT64_C(0xFFFFFFFF),
            "--seed expects a 32-bit value");
      opt.seed = static_cast<uint32_t>(v);
    } else if (arg == "--checkpoint-every") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0,
            "--checkpoint-every expects an instruction count");
      opt.ckpt_every = static_cast<uint64_t>(v);
    } else if (arg == "--ckpt-dir") {
      opt.ckpt_dir = next();
    } else if (arg == "--ckpt-keep") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0, "--ckpt-keep expects a count");
      opt.ckpt_keep = static_cast<unsigned>(v);
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      opt.inputs.push_back(arg);
    }
  }
  return opt;
}

elf::ElfFile build_from_inputs(const Options& opt) {
  std::vector<elf::ElfFile> objects;
  objects.push_back(kasm::assemble_or_throw(kasm::start_stub_assembly(opt.isa)));
  for (const std::string& path : opt.inputs) {
    if (ends_with(path, ".elf")) {
      // Already-linked executables cannot be re-linked.
      throw Error("cannot link an executable: " + path);
    }
    std::string assembly;
    if (ends_with(path, ".c")) {
      kcc::CompileOptions copt;
      copt.file_name = path;
      copt.codegen.default_isa = opt.isa;
      assembly = kcc::compile_or_throw(read_file(path), copt);
    } else {
      assembly = read_file(path);
    }
    kasm::AsmOptions aopt;
    aopt.file_name = path;
    objects.push_back(kasm::assemble_or_throw(assembly, aopt));
  }
  objects.push_back(kasm::assemble_or_throw(kasm::libc_stub_assembly()));
  kasm::LinkOptions lopt;
  const isa::IsaInfo* isa = isa::kisa().find_isa(opt.isa);
  check(isa != nullptr, "unknown ISA " + opt.isa);
  lopt.entry_isa = isa->id;
  return kasm::link_or_throw(objects, lopt);
}

/// One resolved run/lint/resume input: the executable plus a display label
/// ("<workload>@<ISA>", "<file>@<ISA>" or the .elf path) used in reports and
/// recorded into checkpoints.  Shared by cmd_run, cmd_lint and (through the
/// checkpoint RUN section) cmd_resume.
struct ResolvedInput {
  elf::ElfFile exe;
  std::string label;
};

ResolvedInput resolve_input(const Options& opt) {
  if (!opt.workload.empty())
    return {workloads::build_workload(workloads::by_name(opt.workload), opt.isa),
            opt.workload + "@" + opt.isa};
  check(!opt.inputs.empty(), "no input file");
  if (opt.inputs.size() == 1 && ends_with(opt.inputs[0], ".elf")) {
    // The entry ISA is baked into the executable; --isa is ignored.
    const std::string bytes = read_file(opt.inputs[0]);
    return {elf::ElfFile::parse(std::span(
                reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size())),
            opt.inputs[0]};
  }
  return {build_from_inputs(opt), opt.inputs[0] + "@" + opt.isa};
}

/// A fully wired simulation session (simulator + cycle model + memory +
/// predictor), built from a checkpoint RunRecord so `run`, `resume` and
/// `replay` construct bit-identical setups from the same description.
struct Session {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<cycle::MemoryHierarchy> memory;
  std::unique_ptr<cycle::CycleModel> model;
  std::unique_ptr<cycle::BranchPredictor> predictor;
  std::unique_ptr<rtl::TraceRecorder> recorder; ///< --model rtl only
  int bp_penalty = 0;

  ckpt::Participants participants() {
    ckpt::Participants p;
    p.sim = sim.get();
    p.model = model.get();
    p.memory = model != nullptr && memory != nullptr ? memory.get() : nullptr;
    p.predictor = predictor.get();
    return p;
  }
};

ckpt::RunRecord make_run_record(const Options& opt, const elf::ElfFile& exe,
                                const std::string& label) {
  ckpt::RunRecord run;
  run.workload = label;
  run.elf_bytes = exe.serialize();
  run.model = opt.model == "none" ? "" : opt.model;
  run.bp_kind = opt.bp_kind;
  run.bp_penalty = static_cast<uint32_t>(opt.bp_penalty);
  run.seed = opt.seed;
  run.use_decode_cache = opt.decode_cache ? 1 : 0;
  run.use_prediction = opt.prediction ? 1 : 0;
  run.use_superblocks = opt.superblocks ? 1 : 0;
  run.collect_op_stats = opt.opstats ? 1 : 0;
  run.max_instructions = opt.max_instr;
  return run;
}

Session make_session(const ckpt::RunRecord& run, const elf::ElfFile& exe) {
  Session s;
  sim::SimOptions sopt;
  sopt.use_decode_cache = run.use_decode_cache != 0;
  sopt.use_prediction = run.use_prediction != 0;
  sopt.use_superblocks = run.use_superblocks != 0;
  sopt.collect_op_stats = run.collect_op_stats != 0;
  sopt.max_instructions = run.max_instructions;
  sopt.libc_seed = run.seed;
  s.sim = std::make_unique<sim::Simulator>(isa::kisa(), sopt);
  s.sim->load(exe);
  s.sim->libc().set_echo(true);
  s.bp_penalty = static_cast<int>(run.bp_penalty);

  if (run.model == "ilp") {
    s.model = std::make_unique<cycle::IlpModel>();
  } else if (run.model == "aie") {
    s.memory = std::make_unique<cycle::MemoryHierarchy>();
    s.model = std::make_unique<cycle::AieModel>(s.memory.get());
  } else if (run.model == "doe" || run.model == "rtl") {
    s.memory = std::make_unique<cycle::MemoryHierarchy>();
    s.model = std::make_unique<cycle::DoeModel>(s.memory.get());
  } else {
    check(run.model.empty(), "unknown cycle model " + run.model);
  }

  if (!run.bp_kind.empty()) {
    s.predictor = cycle::make_predictor(run.bp_kind);
    if (auto* doe = dynamic_cast<cycle::DoeModel*>(s.model.get()); doe != nullptr)
      doe->set_branch_prediction(s.predictor.get(), run.bp_penalty);
    else if (auto* aie = dynamic_cast<cycle::AieModel*>(s.model.get()); aie != nullptr)
      aie->set_branch_prediction(s.predictor.get(), run.bp_penalty);
    else
      check(false, "--bp requires --model aie or --model doe");
  }

  if (run.model == "rtl") {
    s.recorder = std::make_unique<rtl::TraceRecorder>();
    s.sim->set_cycle_model(s.recorder.get());
  } else if (s.model != nullptr) {
    s.sim->set_cycle_model(s.model.get());
  }
  return s;
}

/// Stop handling + statistics reporting shared by cmd_run and cmd_resume.
int report_outcome(Session& s, const Options& opt, sim::StopReason reason,
                   const sim::Profiler* profiler) {
  sim::Simulator& simulator = *s.sim;
  if (reason == sim::StopReason::Trap || reason == sim::StopReason::DecodeError) {
    std::cerr << simulator.error_report();
    return 1;
  }

  const sim::SimStats& stats = simulator.stats();
  std::cerr << strf("[ksim] %s after %llu instructions (%llu operations)\n",
                    sim::to_string(reason),
                    static_cast<unsigned long long>(stats.instructions),
                    static_cast<unsigned long long>(stats.operations));
  if (simulator.options().use_superblocks)
    std::cerr << strf("[ksim] superblocks: %llu formed, %llu dispatches"
                      " (%.1f%% chained), %.2f%% lookups avoided\n",
                      static_cast<unsigned long long>(stats.blocks_formed),
                      static_cast<unsigned long long>(stats.block_dispatches),
                      100.0 * stats.block_chain_avoidance(),
                      100.0 * stats.lookup_avoidance());
  if (s.recorder != nullptr) {
    rtl::RtlSimulator rtl_sim;
    const rtl::RtlStats rstats = rtl_sim.run(s.recorder->trace());
    std::cerr << strf("[ksim] RTL reference: %llu cycles\n",
                      static_cast<unsigned long long>(rstats.cycles));
  } else if (s.model != nullptr) {
    std::cerr << strf("[ksim] %s cycles: %llu (%.3f ops/cycle)\n",
                      s.model->name().c_str(),
                      static_cast<unsigned long long>(s.model->cycles()),
                      s.model->ops_per_cycle());
  }
  if (s.predictor != nullptr) {
    std::cerr << strf("[ksim] branch predictor %s: %llu branches, %llu mispredicts"
                      " (%.2f%%), penalty %d\n",
                      s.predictor->name().c_str(),
                      static_cast<unsigned long long>(s.predictor->stats().branches),
                      static_cast<unsigned long long>(s.predictor->stats().mispredictions),
                      100.0 * s.predictor->stats().miss_rate(), s.bp_penalty);
  }
  if (opt.opstats) {
    std::cerr << "[ksim] operation histogram:\n";
    const auto hist = simulator.op_histogram();
    for (size_t i = 0; i < hist.size() && i < 16; ++i)
      std::cerr << strf("  %-14s %12llu (%.1f%%)\n", hist[i].first->name.c_str(),
                        static_cast<unsigned long long>(hist[i].second),
                        100.0 * static_cast<double>(hist[i].second) /
                            static_cast<double>(simulator.stats().operations));
  }
  if (profiler != nullptr) {
    std::cerr << "[ksim] profile (cycles instructions calls function):\n";
    for (const sim::FuncProfile& p : profiler->report())
      std::cerr << strf("  %10llu %10llu %8llu  %s\n",
                        static_cast<unsigned long long>(p.cycles),
                        static_cast<unsigned long long>(p.instructions),
                        static_cast<unsigned long long>(p.calls), p.name.c_str());
  }
  return simulator.exit_code();
}

/// Validates the --checkpoint-every/--ckpt-dir combination; true if this
/// invocation should write periodic snapshots.
bool checkpointing_requested(const Options& opt) {
  if (opt.ckpt_every == 0 && opt.ckpt_dir.empty()) return false;
  check(opt.ckpt_every != 0 && !opt.ckpt_dir.empty(),
        "--checkpoint-every and --ckpt-dir must be used together");
  check(opt.model != "rtl",
        "--model rtl records a full operation trace and cannot be checkpointed");
  return true;
}

int cmd_run(const Options& opt) {
  const bool checkpointing = checkpointing_requested(opt);
  ResolvedInput in = resolve_input(opt);
  const ckpt::RunRecord run = make_run_record(opt, in.exe, in.label);
  Session s = make_session(run, in.exe);

  std::optional<ckpt::CheckpointSink> sink;
  if (checkpointing) {
    sink.emplace(opt.ckpt_dir, opt.ckpt_keep);
    s.sim->set_checkpoint_hook(opt.ckpt_every, [&](sim::Simulator&) {
      sink->write(run, s.participants());
      return false; // keep running; snapshots are passive
    });
  }

  std::ofstream trace_stream;
  std::unique_ptr<sim::TraceWriter> trace;
  if (!opt.trace_file.empty()) {
    trace_stream.open(opt.trace_file);
    check(trace_stream.good(), "cannot write " + opt.trace_file);
    trace = std::make_unique<sim::TraceWriter>(trace_stream);
    s.sim->set_trace(trace.get());
  }
  sim::Profiler profiler;
  if (opt.profile) s.sim->set_profiler(&profiler);

  const sim::StopReason reason = s.sim->run();
  return report_outcome(s, opt, reason, opt.profile ? &profiler : nullptr);
}

/// Resolves a `resume`/`replay` positional argument: either a checkpoint
/// file or a directory holding ckpt-<n>.kckpt snapshots (newest wins).
std::string resolve_checkpoint_path(const Options& opt, const char* verb) {
  check(opt.inputs.size() == 1,
        std::string(verb) + " expects one checkpoint file or directory");
  std::string path = opt.inputs[0];
  if (std::filesystem::is_directory(path)) {
    path = ckpt::latest_checkpoint(path);
    check(!path.empty(), "no checkpoints found in " + opt.inputs[0]);
  }
  return path;
}

int cmd_resume(const Options& opt) {
  const std::string path = resolve_checkpoint_path(opt, "resume");
  ckpt::Checkpoint ck = ckpt::read_checkpoint(path);
  // The recorded limit is whatever interrupted the original run; reapplying
  // it would stop the resumed run on the spot.  Resume runs to completion
  // unless the user bounds it again.
  ck.run.max_instructions = opt.max_instr;

  const elf::ElfFile exe = elf::ElfFile::parse(ck.run.elf_bytes);
  Session s = make_session(ck.run, exe);
  ckpt::apply_checkpoint(ck, s.participants());
  std::cerr << strf("[ksim] resumed %s from %s at %llu instructions\n",
                    ck.run.workload.c_str(), path.c_str(),
                    static_cast<unsigned long long>(ck.instructions));

  std::optional<ckpt::CheckpointSink> sink;
  if (opt.ckpt_every != 0 || !opt.ckpt_dir.empty()) {
    check(opt.ckpt_every != 0 && !opt.ckpt_dir.empty(),
          "--checkpoint-every and --ckpt-dir must be used together");
    sink.emplace(opt.ckpt_dir, opt.ckpt_keep);
    s.sim->set_checkpoint_hook(opt.ckpt_every, [&](sim::Simulator&) {
      sink->write(ck.run, s.participants());
      return false;
    });
  }

  std::ofstream trace_stream;
  std::unique_ptr<sim::TraceWriter> trace;
  if (!opt.trace_file.empty()) {
    trace_stream.open(opt.trace_file);
    check(trace_stream.good(), "cannot write " + opt.trace_file);
    trace = std::make_unique<sim::TraceWriter>(trace_stream);
    s.sim->set_trace(trace.get());
  }
  sim::Profiler profiler; // profiles the resumed portion only
  if (opt.profile) s.sim->set_profiler(&profiler);

  const sim::StopReason reason = s.sim->run();
  return report_outcome(s, opt, reason, opt.profile ? &profiler : nullptr);
}

int cmd_replay(const Options& opt) {
  const std::string path = resolve_checkpoint_path(opt, "replay");
  const std::string original = read_file(path);
  const ckpt::Checkpoint ck = ckpt::parse_checkpoint(std::span(
      reinterpret_cast<const uint8_t*>(original.data()), original.size()));
  check(ck.instructions > 0, "checkpoint records no executed instructions");

  // Re-run the recorded program from the beginning and stop at the exact
  // block/step boundary the snapshot was taken at.  The boundary sequence is
  // deterministic, so the first boundary at or past ck.instructions is the
  // snapshot point itself; anything else is a determinism violation.
  const elf::ElfFile exe = elf::ElfFile::parse(ck.run.elf_bytes);
  Session s = make_session(ck.run, exe);
  s.sim->libc().set_echo(false); // the original run already printed this
  bool exact = false;
  s.sim->set_checkpoint_hook(ck.instructions, [&](sim::Simulator& simulator) {
    exact = simulator.stats().instructions == ck.instructions;
    return true;
  });
  const sim::StopReason reason = s.sim->run();
  if (reason != sim::StopReason::Checkpoint || !exact) {
    std::cerr << strf("[ksim] replay MISMATCH: re-run stopped at %llu"
                      " instructions (%s), checkpoint was taken at %llu\n",
                      static_cast<unsigned long long>(s.sim->stats().instructions),
                      sim::to_string(reason),
                      static_cast<unsigned long long>(ck.instructions));
    return 1;
  }

  const std::vector<uint8_t> replayed =
      ckpt::encode_checkpoint(ck.run, s.participants());
  const bool identical =
      replayed.size() == original.size() &&
      std::memcmp(replayed.data(), original.data(), replayed.size()) == 0;
  if (!identical) {
    std::cerr << strf("[ksim] replay MISMATCH: re-encoded state differs from"
                      " %s (%zu vs %zu bytes)\n",
                      path.c_str(), replayed.size(), original.size());
    return 1;
  }
  std::cerr << strf("[ksim] replay OK: %s reproduced bit-identically at %llu"
                    " instructions (%zu bytes)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(ck.instructions),
                    replayed.size());
  return 0;
}

int cmd_build(const Options& opt) {
  check(!opt.output.empty(), "build requires -o <out.elf>");
  const elf::ElfFile exe = build_from_inputs(opt);
  const std::vector<uint8_t> bytes = exe.serialize();
  std::ofstream out(opt.output, std::ios::binary);
  check(out.good(), "cannot write " + opt.output);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::cerr << strf("[ksim] wrote %s (%zu bytes, entry ISA %s)\n", opt.output.c_str(),
                    bytes.size(), opt.isa.c_str());
  return 0;
}

int cmd_cc(const Options& opt) {
  check(opt.inputs.size() == 1, "cc expects one .c file");
  kcc::CompileOptions copt;
  copt.file_name = opt.inputs[0];
  copt.codegen.default_isa = opt.isa;
  std::cout << kcc::compile_or_throw(read_file(opt.inputs[0]), copt);
  return 0;
}

int cmd_disasm(const Options& opt) {
  check(opt.inputs.size() == 1, "disasm expects one .elf file");
  const std::string bytes = read_file(opt.inputs[0]);
  const elf::ElfFile exe = elf::ElfFile::parse(
      std::span(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()));
  const elf::Section* text = exe.find_section(".text");
  check(text != nullptr, "no .text section");
  const isa::IsaSet& set = isa::kisa();
  const isa::IsaInfo* isa = set.find_isa(static_cast<int>(exe.flags));
  check(isa != nullptr, "executable names an unknown entry ISA");
  std::cout << "# entry " << hex32(exe.entry) << ", ISA " << isa->name << "\n";
  std::vector<uint32_t> words(text->data.size() / 4);
  for (size_t i = 0; i < words.size(); ++i)
    for (int b = 3; b >= 0; --b)
      words[i] = (words[i] << 8) | text->data[i * 4 + static_cast<size_t>(b)];
  size_t i = 0;
  while (i < words.size()) {
    size_t consumed = 0;
    const std::string line = kasm::disassemble_instr(
        set, *isa, std::span(words).subspan(i), consumed);
    std::cout << hex32(text->addr + static_cast<uint32_t>(i * 4)) << "  " << line
              << "\n";
    i += consumed == 0 ? 1 : consumed;
  }
  return 0;
}

int cmd_lint(const Options& opt) {
  check(opt.format == "text" || opt.format == "json",
        "unknown --format " + opt.format);
  const isa::IsaSet& set = isa::kisa();

  std::vector<std::string> isas;
  if (opt.isa == "all") {
    for (const isa::IsaInfo& i : set.isas()) isas.push_back(i.name);
  } else {
    check(set.find_isa(opt.isa) != nullptr, "unknown ISA " + opt.isa);
    isas.push_back(opt.isa);
  }

  analysis::LintOptions lopt;
  lopt.ilp = opt.lint_ilp;
  lopt.max_findings = opt.max_findings;

  bool all_clean = true;
  bool first = true;
  const bool json = opt.format == "json";
  if (json) std::cout << "[\n";
  auto lint_one = [&](const elf::ElfFile& exe, const std::string& label) {
    const analysis::LintResult result = analysis::run_lint(exe, set, lopt);
    if (!result.clean()) all_clean = false;
    if (json) {
      if (!first) std::cout << ",\n";
      std::cout << analysis::render_json(result, label);
    } else {
      if (!first) std::cout << "\n";
      std::cout << analysis::render_text(result, label, opt.verbose);
      if (opt.lint_ilp_compare) {
        // Independent cross-check of Fig. 4: the dynamic §VI-A measurement
        // can approach but not exceed the static per-block bounds.
        cycle::IlpModel model;
        const workloads::RunOutcome outcome = workloads::run_executable(exe, &model);
        double max_bound = 0.0;
        for (const analysis::FuncIlp& fi : result.ilp)
          max_bound = std::max(max_bound, fi.max_block_bound);
        std::cout << strf("%s: measured ILP %.3f (%llu ops / %llu cycles), "
                          "static max-block bound %.3f\n",
                          label.c_str(), model.ilp(),
                          static_cast<unsigned long long>(model.operations()),
                          static_cast<unsigned long long>(model.cycles()),
                          max_bound);
      }
    }
    first = false;
  };

  std::vector<const workloads::Workload*> wls;
  if (opt.workload == "all") {
    for (const workloads::Workload& w : workloads::all()) wls.push_back(&w);
  } else if (!opt.workload.empty()) {
    wls.push_back(&workloads::by_name(opt.workload));
  }

  if (!wls.empty()) {
    for (const workloads::Workload* w : wls)
      for (const std::string& isa_name : isas)
        lint_one(workloads::build_workload(*w, isa_name), w->name + "@" + isa_name);
  } else if (opt.inputs.size() == 1 && ends_with(opt.inputs[0], ".elf")) {
    const ResolvedInput in = resolve_input(opt);
    lint_one(in.exe, in.label);
  } else {
    for (const std::string& isa_name : isas) {
      Options per_isa = opt;
      per_isa.isa = isa_name;
      const ResolvedInput in = resolve_input(per_isa);
      lint_one(in.exe, in.label);
    }
  }
  if (json) std::cout << "]\n";
  return all_clean ? 0 : 1;
}

int cmd_workloads() {
  for (const workloads::Workload& w : workloads::all())
    std::cout << strf("%-8s %s\n", w.name.c_str(), w.description.c_str());
  return 0;
}

int main_impl(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Options opt = parse_options(argc, argv, 2);
  if (cmd == "run") return cmd_run(opt);
  if (cmd == "build") return cmd_build(opt);
  if (cmd == "cc") return cmd_cc(opt);
  if (cmd == "disasm") return cmd_disasm(opt);
  if (cmd == "lint") return cmd_lint(opt);
  if (cmd == "workloads") return cmd_workloads();
  if (cmd == "resume") return cmd_resume(opt);
  if (cmd == "replay") return cmd_replay(opt);
  usage();
}

} // namespace
} // namespace ksim

int main(int argc, char** argv) {
  try {
    return ksim::main_impl(argc, argv);
  } catch (const ksim::Error& e) {
    std::cerr << "ksim: error: " << e.what() << "\n";
    return 1;
  }
}
