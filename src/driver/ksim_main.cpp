// ksim — command line driver for the KAHRISMA toolchain and simulator.
//
// The driver is a thin client of libksim (src/api/): every subcommand maps
// its flags onto an api::RunConfig / api::SweepSpec and delegates session
// construction, execution and reporting to the library.
//
//   ksim run [options] <file.c|file.s|file.elf>   compile/assemble, link, run
//   ksim run --workload <name> [options]          run a built-in workload
//   ksim sweep [options]                          parallel configuration sweep
//   ksim build -o out.elf [options] <inputs...>   build an executable
//   ksim cc <file.c>                              print generated assembly
//   ksim disasm <file.elf>                        disassemble an executable
//   ksim lint [options] <file.c|file.s|file.elf>  statically analyze a program
//   ksim lint --workload <name>|all [--isa NAME|all]
//   ksim workloads                                list built-in workloads
//   ksim resume <ckpt|dir> [options]              resume a checkpointed run
//   ksim replay <ckpt|dir>                        deterministic replay self-check
//   ksim serve [options]                          ksimd multi-tenant service daemon
//   ksim submit --port N [options]                submit a job, stream its events
//   ksim jobs --port N [--tenant T]               list daemon jobs
//   ksim cancel --port N <id>                     cancel a job
//   ksim shutdown --port N [--no-drain]           stop the daemon (drain first)
//
// lint options (klint, see src/analysis/):
//   --format text|json  report format (default text)
//   --ilp               include the static per-function ILP upper bounds
//   --ilp-compare       also run the §VI-A ILP model and print both numbers
//   --verbose           include notes (informational findings)
//   --max-findings N    truncate the report after N findings
//
// run options:
//   --isa NAME       target/entry ISA (RISC, VLIW2, VLIW4, VLIW6, VLIW8)
//   --model NAME     cycle model: none (default), ilp, aie, doe, rtl
//   --trace FILE     write an operation trace (paper §V, goal 3)
//   --profile        print a per-function profile (paper §IV, goal 2)
//   --no-decode-cache / --no-prediction   disable §V-A optimizations
//   --no-superblocks disable the superblock execution engine (fall back to
//                    the §V-A per-instruction prediction path)
//   --no-jit         disable kjit binary translation (interpret superblocks;
//                    automatic off x86-64 hosts and under sanitizers)
//   --bp KIND        branch predictor for AIE/DOE (not-taken, taken, 1bit,
//                    2bit, gshare); default: perfect prediction
//   --bp-penalty N   mispredict refill penalty in cycles (default 3)
//   --opstats        print a per-operation execution histogram
//   --max-instr N    stop after N instructions
//   --seed N         emulated-libc rand() seed (default 1; recorded in
//                    checkpoints so resumed runs keep the same stream)
//   --json FILE      also write the versioned ksim.run report (DESIGN.md §7)
//                    to FILE ("-" = stdout)
//   --checkpoint-every N   snapshot simulator state every N instructions
//                    (kckpt, DESIGN.md §5c); requires --ckpt-dir
//   --ckpt-dir DIR   directory for ckpt-<n>.kckpt snapshots
//   --ckpt-keep K    how many snapshots to keep (default 3)
//
// sweep options (ksweep + kdse, see src/api/sweep.h):
//   --manifest FILE  the sweep manifest: grids, memory-geometry axis
//                    ("memories"), base configuration.  The manifest is the
//                    primary interface; the grid flags below are sugar that
//                    synthesizes one internally, so both go through a single
//                    expansion/validation path.  Mutually exclusive with the
//                    grid flags.
//   --workloads A,B  comma-separated built-in workloads (default: all)
//   --isas A,B       ISA configurations (default: RISC,VLIW2,VLIW4,VLIW6,VLIW8)
//   --models A,B     cycle models: none,ilp,aie,doe (default: ilp)
//   --threads N      worker threads (default 1; an explicit flag wins over
//                    the manifest's "threads")
//   --dump-manifest FILE  write the canonical manifest ("-" = stdout) that
//                    this invocation would run — ranges expanded, defaults
//                    explicit — and exit without running anything
//   --journal DIR    make the sweep resumable: pin the canonical manifest as
//                    DIR/manifest.json and append every finished point to a
//                    CRC'd journal (DIR/journal.kswpj)
//   --resume DIR     resume a --journal sweep: skip the journaled points and
//                    render final JSON byte-identical to an uninterrupted
//                    run.  Conflicts with --manifest/grid flags/--journal.
//   --json FILE      write the aggregate ksim.sweep report ("-" = stdout);
//                    includes per-geometry cycles/area_proxy pairs and the
//                    Pareto front per (workload, isa, model) group
//   --port N [--host A] [--tenant T] [--priority P]  run the sweep on a
//                    ksimd daemon (sweep-as-a-service): the canonical
//                    manifest ships as one ksim.sweep.submit request and the
//                    daemon fans it out under its quotas and preemption;
//                    --json receives the daemon's ksim.sweep report
//   engine switches, --seed and --max-instr apply to every point (with
//   --manifest the manifest's base configuration wins)
//
// resume options: the run configuration (model, predictor, seed, engine
// flags) is restored from the checkpoint; --trace/--profile/--opstats apply
// to the resumed portion, and --checkpoint-every/--ckpt-dir continue
// periodic snapshotting.  The recorded --max-instr is NOT reapplied (it is
// what interrupted the original run); pass --max-instr to bound the resumed
// run again.  The limit counts total instructions since program start (the
// same axis the original --max-instr counted on), so a job preempted at
// 600k instructions and resumed with --max-instr 1000000 runs 400k more —
// bounded slices for preempted service jobs.
//
// Signals: `ksim run` stops at the next block/step boundary on the first
// SIGINT/SIGTERM — a bit-identical checkpoint point — writes a final
// snapshot when checkpointing is configured, prints the usual report with
// stop reason "checkpoint" and exits 130; a second signal hard-exits.
// `ksim serve` drains on the first signal and hard-exits on the second.
//
// ksimd service (DESIGN.md §10):
//   serve options: --port N (0 = ephemeral), --host A, --workers K,
//     --queue-cap N, --slice N (progress/preemption cadence, instructions),
//     --quota-queued N, --quota-running N, --quota-instr N (per-tenant),
//     --port-file FILE (write the bound port, for scripts wrapping port 0)
//   submit options: --port N [--host A] [--tenant T] [--priority P] plus the
//     run flags that name a built-in workload configuration; streams the
//     job's progress/preempted/resumed events and exits with the job's exit
//     code (3 = rejected by admission control).  --json FILE writes the
//     job's ksim.run report, byte-identical to a local `ksim run --json`.
//
// Deprecated environment knobs: KSIM_NO_SUPERBLOCKS, KSIM_NO_DECODE_CACHE,
// KSIM_NO_PREDICTION and KSIM_SEED still work for run/sweep but print a
// one-line warning; use the corresponding flags.
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <variant>
#include <vector>

#include "analysis/lint.h"
#include "api/report.h"
#include "api/run_config.h"
#include "api/session.h"
#include "api/sweep.h"
#include "ckpt/checkpoint.h"
#include "cycle/models.h"
#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/disasm.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "kcc/compiler.h"
#include "ksimd/server.h"
#include "sim/simulator.h"
#include "support/error.h"
#include "support/strings.h"
#include "workloads/build.h"

namespace ksim {
namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: ksim <run|sweep|build|cc|disasm|lint|workloads|resume|replay>"
               " [options] [files]\n"
               "  run --workload <name> | <file.c|.s|.elf>  [--isa NAME]\n"
               "      [--model none|ilp|aie|doe|rtl] [--trace FILE] [--profile]\n"
               "      [--no-decode-cache] [--no-prediction] [--no-superblocks]\n"
               "      [--no-jit] [--jit-dump-asm FILE]\n"
               "      [--max-instr N] [--seed N] [--json FILE]\n"
               "      [--checkpoint-every N --ckpt-dir DIR [--ckpt-keep K]]\n"
               "  sweep [--manifest FILE | --workloads A,B --isas A,B --models A,B]\n"
               "        [--threads N] [--dump-manifest FILE] [--journal DIR]\n"
               "        [--resume DIR] [--json FILE]\n"
               "        [--port N [--host A] [--tenant T] [--priority P]]\n"
               "  build -o <out.elf> [--isa NAME] <file.c|.s ...>\n"
               "  cc [--isa NAME] <file.c>\n"
               "  disasm <file.elf>\n"
               "  lint --workload <name>|all | <file.c|.s|.elf>  [--isa NAME|all]\n"
               "       [--format text|json] [--ilp] [--ilp-compare] [--verbose]\n"
               "       [--max-findings N]\n"
               "  resume <file.kckpt|dir>  [--trace FILE] [--profile] [--max-instr N]\n"
               "         [--checkpoint-every N --ckpt-dir DIR [--ckpt-keep K]]\n"
               "  replay <file.kckpt|dir>  re-run from scratch, compare bit-for-bit\n"
               "  serve [--port N] [--host A] [--workers K] [--queue-cap N]\n"
               "        [--slice N] [--quota-queued N] [--quota-running N]\n"
               "        [--quota-instr N] [--port-file FILE]\n"
               "  submit --port N [--host A] [--tenant T] [--priority P]\n"
               "         --workload <name> [run options] [--json FILE]\n"
               "  jobs --port N [--host A] [--tenant T]\n"
               "  cancel --port N [--host A] <id>\n"
               "  shutdown --port N [--host A] [--no-drain]\n";
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  for (std::string_view field : split(s, ','))
    if (!field.empty()) out.emplace_back(field);
  return out;
}

struct Options {
  std::string isa = "RISC";
  std::string model = "none";
  std::string trace_file;
  std::string jit_dump_asm;
  std::string output;
  std::string workload;
  bool profile = false;
  bool opstats = false;
  std::string format = "text";
  bool lint_ilp = false;
  bool lint_ilp_compare = false;
  bool verbose = false;
  int max_findings = 0;
  std::string bp_kind;
  int bp_penalty = 3;
  bool decode_cache = true;
  bool prediction = true;
  bool superblocks = true;
  bool jit = true;
  uint64_t max_instr = 0;
  uint32_t seed = 1;
  uint64_t ckpt_every = 0;
  std::string ckpt_dir;
  unsigned ckpt_keep = 3;
  std::string json_path;       ///< run/resume/sweep report destination
  std::string manifest;        ///< sweep JSON manifest
  std::string dump_manifest;   ///< sweep: write canonical manifest, don't run
  std::string journal_dir;     ///< sweep: fresh resumable journal directory
  std::string resume_dir;      ///< sweep: resume an interrupted journal
  std::vector<std::string> sweep_workloads;
  std::vector<std::string> sweep_isas;
  std::vector<std::string> sweep_models;
  int threads = 1;
  bool threads_set = false;    ///< --threads given explicitly (wins over manifest)
  // ksimd service (serve/submit/jobs/cancel/shutdown)
  std::string host = "127.0.0.1";
  int port = 0;
  std::string port_file;
  int workers = 4;
  int queue_cap = 64;
  uint64_t slice = 1'000'000;
  int quota_queued = 16;
  int quota_running = 4;
  uint64_t quota_instr = 0;
  std::string tenant;
  int priority = 0;
  bool no_drain = false;
  std::vector<std::string> inputs;
};

Options parse_options(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--isa") {
      opt.isa = next();
    } else if (arg == "--model") {
      opt.model = next();
    } else if (arg == "--trace") {
      opt.trace_file = next();
    } else if (arg == "--workload") {
      opt.workload = next();
    } else if (arg == "-o") {
      opt.output = next();
    } else if (arg == "--profile") {
      opt.profile = true;
    } else if (arg == "--opstats") {
      opt.opstats = true;
    } else if (arg == "--bp") {
      opt.bp_kind = next();
    } else if (arg == "--bp-penalty") {
      int64_t v = 0;
      check(parse_int(next(), v) && v >= 0, "--bp-penalty expects a cycle count");
      opt.bp_penalty = static_cast<int>(v);
    } else if (arg == "--format") {
      opt.format = next();
    } else if (arg == "--ilp") {
      opt.lint_ilp = true;
    } else if (arg == "--ilp-compare") {
      opt.lint_ilp = true;
      opt.lint_ilp_compare = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--max-findings") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0, "--max-findings expects a count");
      opt.max_findings = static_cast<int>(v);
    } else if (arg == "--no-decode-cache") {
      opt.decode_cache = false;
    } else if (arg == "--no-prediction") {
      opt.prediction = false;
    } else if (arg == "--no-superblocks") {
      opt.superblocks = false;
    } else if (arg == "--no-jit") {
      opt.jit = false;
    } else if (arg == "--jit-dump-asm") {
      opt.jit_dump_asm = next();
    } else if (arg.rfind("--jit-dump-asm=", 0) == 0) {
      opt.jit_dump_asm = arg.substr(sizeof("--jit-dump-asm=") - 1);
      check(!opt.jit_dump_asm.empty(), "--jit-dump-asm expects a file name");
    } else if (arg == "--max-instr") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0, "--max-instr expects a count");
      opt.max_instr = static_cast<uint64_t>(v);
    } else if (arg == "--seed") {
      int64_t v = 0;
      check(parse_int(next(), v) && v >= 0 && v <= INT64_C(0xFFFFFFFF),
            "--seed expects a 32-bit value");
      opt.seed = static_cast<uint32_t>(v);
    } else if (arg == "--checkpoint-every") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0,
            "--checkpoint-every expects an instruction count");
      opt.ckpt_every = static_cast<uint64_t>(v);
    } else if (arg == "--ckpt-dir") {
      opt.ckpt_dir = next();
    } else if (arg == "--ckpt-keep") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0, "--ckpt-keep expects a count");
      opt.ckpt_keep = static_cast<unsigned>(v);
    } else if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--manifest") {
      opt.manifest = next();
    } else if (arg == "--dump-manifest") {
      opt.dump_manifest = next();
    } else if (arg == "--journal") {
      opt.journal_dir = next();
    } else if (arg == "--resume") {
      opt.resume_dir = next();
    } else if (arg == "--workloads") {
      opt.sweep_workloads = split_list(next());
    } else if (arg == "--isas") {
      opt.sweep_isas = split_list(next());
    } else if (arg == "--models") {
      opt.sweep_models = split_list(next());
    } else if (arg == "--threads") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0, "--threads expects a positive count");
      opt.threads = static_cast<int>(v);
      opt.threads_set = true;
    } else if (arg == "--host") {
      opt.host = next();
    } else if (arg == "--port") {
      int64_t v = 0;
      check(parse_int(next(), v) && v >= 0 && v <= 65535,
            "--port expects 0..65535");
      opt.port = static_cast<int>(v);
    } else if (arg == "--port-file") {
      opt.port_file = next();
    } else if (arg == "--workers") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0, "--workers expects a positive count");
      opt.workers = static_cast<int>(v);
    } else if (arg == "--queue-cap") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0, "--queue-cap expects a positive count");
      opt.queue_cap = static_cast<int>(v);
    } else if (arg == "--slice") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0,
            "--slice expects an instruction count");
      opt.slice = static_cast<uint64_t>(v);
    } else if (arg == "--quota-queued") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0, "--quota-queued expects a count");
      opt.quota_queued = static_cast<int>(v);
    } else if (arg == "--quota-running") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0, "--quota-running expects a count");
      opt.quota_running = static_cast<int>(v);
    } else if (arg == "--quota-instr") {
      int64_t v = 0;
      check(parse_int(next(), v) && v > 0,
            "--quota-instr expects an instruction count");
      opt.quota_instr = static_cast<uint64_t>(v);
    } else if (arg == "--tenant") {
      opt.tenant = next();
    } else if (arg == "--priority") {
      int64_t v = 0;
      check(parse_int(next(), v), "--priority expects an integer");
      opt.priority = static_cast<int>(v);
    } else if (arg == "--no-drain") {
      opt.no_drain = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      opt.inputs.push_back(arg);
    }
  }
  return opt;
}

/// The RunConfig equivalent of this invocation's flags.
api::RunConfig to_run_config(const Options& opt) {
  api::RunConfig cfg;
  cfg.workload = opt.workload;
  cfg.inputs = opt.inputs;
  cfg.isa = opt.isa;
  cfg.model = opt.model;
  cfg.bp_kind = opt.bp_kind;
  cfg.bp_penalty = opt.bp_penalty;
  cfg.use_decode_cache = opt.decode_cache;
  cfg.use_prediction = opt.prediction;
  cfg.use_superblocks = opt.superblocks;
  cfg.use_jit = opt.jit;
  cfg.collect_op_stats = opt.opstats;
  cfg.max_instructions = opt.max_instr;
  cfg.seed = opt.seed;
  cfg.profile = opt.profile;
  cfg.trace_file = opt.trace_file;
  cfg.jit_dump_asm = opt.jit_dump_asm;
  cfg.ckpt_every = opt.ckpt_every;
  cfg.ckpt_dir = opt.ckpt_dir;
  cfg.ckpt_keep = opt.ckpt_keep;
  return cfg;
}

void write_text_or_stdout(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::cout << text;
    return;
  }
  std::ofstream out(path);
  check(out.good(), "cannot write " + path);
  out << text;
  check(out.good(), "error writing " + path);
}

/// Stop handling + statistics reporting shared by cmd_run and cmd_resume.
int report_outcome(api::Session& s, const Options& opt, sim::StopReason reason) {
  if (reason == sim::StopReason::Trap || reason == sim::StopReason::DecodeError) {
    std::cerr << s.error_report();
    return 1;
  }
  const api::Report report = s.report(reason);
  std::cerr << api::render_report_text(report);
  if (opt.opstats) std::cerr << api::render_op_histogram(s.simulator());
  if (const sim::Profiler* profiler = s.profiler(); profiler != nullptr)
    std::cerr << api::render_profile(*profiler);
  if (!opt.json_path.empty())
    write_text_or_stdout(opt.json_path, api::render_report_json(report));
  return s.exit_code();
}

// First SIGINT/SIGTERM: stop `ksim run` at the next cooperative boundary
// (handler-safe flag, polled by the progress hook).  Second: hard exit.
volatile std::sig_atomic_t g_run_interrupted = 0;

void on_run_signal(int) {
  if (g_run_interrupted != 0) ::_exit(130);
  g_run_interrupted = 1;
}

int cmd_run(const Options& opt) {
  // Install before compiling the workload so a signal during startup is
  // still caught (the flag is simply observed at the first hook poll).
  std::signal(SIGINT, on_run_signal);
  std::signal(SIGTERM, on_run_signal);
  api::RunConfig cfg = to_run_config(opt);
  api::warn_env_overrides(api::apply_env_overrides(cfg));
  cfg.validate();
  api::Session s(cfg);
  // Poll the signal flag at the checkpoint-safe cadence: the configured
  // snapshot period when checkpointing, a fixed fine grain otherwise.
  s.set_progress_hook(cfg.ckpt_every != 0 ? 0 : 65536,
                      [](api::Session&) { return g_run_interrupted != 0; });
  const sim::StopReason reason = s.run();
  if (g_run_interrupted != 0 && reason == sim::StopReason::Checkpoint) {
    const auto n =
        static_cast<unsigned long long>(s.simulator().stats().instructions);
    if (!cfg.ckpt_dir.empty())
      std::cerr << strf("[ksim] interrupted at %llu instructions; wrote %s\n",
                        n, s.snapshot_now().c_str());
    else
      std::cerr << strf("[ksim] interrupted at %llu instructions"
                        " (no --ckpt-dir, state not saved)\n", n);
    report_outcome(s, opt, reason);
    return 130;
  }
  return report_outcome(s, opt, reason);
}

/// The flag-grid sugar path: synthesizes the SweepSpec a manifest would
/// describe — flag grids with defaults filled, base configuration from the
/// run flags, the memory axis pinned to the base geometry.  cmd_sweep
/// renders this spec to the canonical manifest and re-parses it, so flags
/// and manifests share one expansion/validation path.
api::SweepSpec spec_from_flags(const Options& opt) {
  api::SweepSpec spec;
  spec.workloads = opt.sweep_workloads;
  spec.isas = opt.sweep_isas;
  spec.models = opt.sweep_models;
  if (spec.workloads.empty())
    for (const workloads::Workload& w : workloads::all())
      spec.workloads.push_back(w.name);
  if (spec.isas.empty())
    spec.isas = {"RISC", "VLIW2", "VLIW4", "VLIW6", "VLIW8"};
  if (spec.models.empty()) spec.models = {"ilp"};
  api::RunConfig base = to_run_config(opt);
  base.workload.clear();
  base.inputs.clear();
  base.model = "none";
  spec.base = base;
  spec.geometries = {base.memory};
  spec.threads = opt.threads;
  return spec;
}

/// `ksim sweep --port N`: sweep-as-a-service.  Ships the canonical manifest
/// to a ksimd daemon as one ksim.sweep.submit request, streams per-point
/// progress to stderr, and writes the daemon's ksim.sweep report (rendered
/// from the same spec-ordered points as a local sweep) to --json.
int cmd_sweep_remote(const Options& opt, const std::string& manifest_text) {
  ksimd::SweepSubmitRequest request;
  request.tenant = opt.tenant;
  request.priority = opt.priority;
  request.manifest = manifest_text;
  ksimd::Client client(opt.host, static_cast<uint16_t>(opt.port));
  client.send_line(ksimd::encode(request));
  for (;;) {
    const std::optional<ksimd::Message> msg = client.read_message();
    check(msg.has_value(), "daemon closed the connection mid-sweep");
    if (const auto* accepted = std::get_if<ksimd::Accepted>(&*msg)) {
      std::cerr << strf("[ksimd] sweep %llu accepted\n",
                        static_cast<unsigned long long>(accepted->id));
    } else if (const auto* rejected = std::get_if<ksimd::Rejected>(&*msg)) {
      std::cerr << strf("ksim: sweep rejected (%s): %s\n",
                        rejected->code.c_str(), rejected->error.c_str());
      if (rejected->retry_after_ms > 0)
        std::cerr << strf("ksim: retry after %d ms\n", rejected->retry_after_ms);
      return 3;
    } else if (const auto* progress = std::get_if<ksimd::SweepProgress>(&*msg)) {
      std::cerr << strf("[sweep] (%llu/%llu) %s%s\n",
                        static_cast<unsigned long long>(progress->done),
                        static_cast<unsigned long long>(progress->total),
                        progress->label.c_str(),
                        progress->ok ? "" : ": FAILED");
    } else if (const auto* done = std::get_if<ksimd::SweepDone>(&*msg)) {
      std::cerr << strf("[sweep] sweep %llu %s, %llu point%s failed\n",
                        static_cast<unsigned long long>(done->id),
                        ksimd::to_string(done->state),
                        static_cast<unsigned long long>(done->points_failed),
                        done->points_failed == 1 ? "" : "s");
      if (!opt.json_path.empty())
        write_text_or_stdout(opt.json_path, done->report);
      return done->state == ksimd::JobState::Done && done->points_failed == 0
                 ? 0
                 : 1;
    }
    // Other replies are not part of the sweep conversation; ignore.
  }
}

int cmd_sweep(const Options& opt) {
  const bool grid_flags = !opt.sweep_workloads.empty() ||
                          !opt.sweep_isas.empty() || !opt.sweep_models.empty();
  api::SweepSpec spec;
  std::optional<api::SweepJournal> journal;
  if (!opt.resume_dir.empty()) {
    check(opt.manifest.empty() && !grid_flags && opt.journal_dir.empty() &&
              opt.dump_manifest.empty(),
          "--resume re-reads the manifest pinned in the sweep directory; it "
          "conflicts with --manifest, --workloads/--isas/--models, --journal "
          "and --dump-manifest");
    journal = api::SweepJournal::resume(opt.resume_dir);
    spec = api::SweepSpec::from_manifest(
        journal->manifest_text(),
        opt.resume_dir + "/" + api::kManifestFileName);
  } else if (!opt.manifest.empty()) {
    check(!grid_flags,
          "--manifest and --workloads/--isas/--models are mutually exclusive"
          " (the flags are sugar that synthesizes a manifest; see"
          " --dump-manifest)");
    spec = api::SweepSpec::from_manifest(read_file(opt.manifest), opt.manifest);
  } else {
    spec = api::SweepSpec::from_manifest(
        api::render_sweep_manifest(spec_from_flags(opt)), "<flags>");
  }
  if (opt.threads_set) spec.threads = opt.threads; // explicit flag wins
  api::warn_env_overrides(api::apply_env_overrides(spec.base));
  spec.validate();

  if (!opt.dump_manifest.empty()) {
    write_text_or_stdout(opt.dump_manifest, api::render_sweep_manifest(spec));
    return 0;
  }
  if (opt.port != 0) {
    check(opt.journal_dir.empty() && opt.resume_dir.empty(),
          "--journal/--resume manage a local sweep directory and cannot be "
          "combined with --port (the daemon owns remote sweep state)");
    return cmd_sweep_remote(opt, api::render_sweep_manifest(spec));
  }
  if (!opt.journal_dir.empty())
    journal = api::SweepJournal::create(opt.journal_dir,
                                        api::render_sweep_manifest(spec));

  const bool many_geometries = spec.geometries.size() > 1;
  const api::SweepResult result = api::run_sweep(
      spec,
      [many_geometries](const api::SweepPoint& p, size_t done, size_t total) {
        const std::string label =
            many_geometries
                ? strf("%s@%s %s [%s]", p.workload.c_str(), p.isa.c_str(),
                       p.model.c_str(), p.memory.id().c_str())
                : strf("%s@%s %s", p.workload.c_str(), p.isa.c_str(),
                       p.model.c_str());
        if (p.ok)
          std::cerr << strf(
              "[sweep] (%zu/%zu) %s: %llu instructions%s in %.2fs\n",
              done, total, label.c_str(),
              static_cast<unsigned long long>(p.report.stats.instructions),
              p.report.has_cycles
                  ? strf(", %llu cycles",
                         static_cast<unsigned long long>(p.report.cycles))
                        .c_str()
                  : "",
              p.wall_seconds);
        else
          std::cerr << strf("[sweep] (%zu/%zu) %s: FAILED (%s)\n", done, total,
                            label.c_str(), p.error.c_str());
      },
      journal.has_value() ? &*journal : nullptr);

  if (result.resumed != 0)
    std::cerr << strf("[sweep] resumed %zu of %zu points from %s\n",
                      result.resumed, result.points.size(),
                      opt.resume_dir.c_str());
  std::cerr << strf("[sweep] %zu points on %d threads in %.2fs (%.2f points/s)"
                    ", %zu failed\n",
                    result.points.size(), result.threads, result.wall_seconds,
                    result.points_per_second(), result.failed);
  std::cout << api::render_sweep_table(spec, result);
  if (!opt.json_path.empty())
    write_text_or_stdout(opt.json_path, api::render_sweep_json(spec, result));
  return result.failed == 0 ? 0 : 1;
}

/// Resolves a `resume`/`replay` positional argument: either a checkpoint
/// file or a directory holding ckpt-<n>.kckpt snapshots (newest wins).
std::string resolve_checkpoint_path(const Options& opt, const char* verb) {
  check(opt.inputs.size() == 1,
        std::string(verb) + " expects one checkpoint file or directory");
  std::string path = opt.inputs[0];
  if (std::filesystem::is_directory(path)) {
    path = ckpt::latest_checkpoint(path);
    check(!path.empty(), "no checkpoints found in " + opt.inputs[0]);
  }
  return path;
}

int cmd_resume(const Options& opt) {
  const std::string path = resolve_checkpoint_path(opt, "resume");
  const ckpt::Checkpoint ck = ckpt::read_checkpoint(path);
  api::ResumeOverrides overrides;
  // Total-instruction semantics: the bound counts from program start, so a
  // resumed slice runs (N - checkpoint instructions) more.  The recorded
  // limit is whatever interrupted the original run; Session::resume never
  // reapplies it.
  overrides.max_instructions = opt.max_instr;
  overrides.profile = opt.profile;
  overrides.trace_file = opt.trace_file;
  overrides.jit_dump_asm = opt.jit_dump_asm;
  if (opt.ckpt_every != 0 || !opt.ckpt_dir.empty()) {
    check(opt.ckpt_every != 0 && !opt.ckpt_dir.empty(),
          "--checkpoint-every and --ckpt-dir must be used together");
    overrides.ckpt_every = opt.ckpt_every;
    overrides.ckpt_dir = opt.ckpt_dir;
    overrides.ckpt_keep = opt.ckpt_keep;
  }

  const std::unique_ptr<api::Session> s = api::Session::resume(ck, overrides);
  std::cerr << strf("[ksim] resumed %s from %s at %llu instructions\n",
                    ck.run.workload.c_str(), path.c_str(),
                    static_cast<unsigned long long>(ck.instructions));

  const sim::StopReason reason = s->run();
  return report_outcome(*s, opt, reason);
}

int cmd_replay(const Options& opt) {
  const std::string path = resolve_checkpoint_path(opt, "replay");
  const std::string original = read_file(path);
  const ckpt::Checkpoint ck = ckpt::parse_checkpoint(std::span(
      reinterpret_cast<const uint8_t*>(original.data()), original.size()));
  check(ck.instructions > 0, "checkpoint records no executed instructions");

  // Re-run the recorded program from the beginning and stop at the exact
  // block/step boundary the snapshot was taken at.  The boundary sequence is
  // deterministic, so the first boundary at or past ck.instructions is the
  // snapshot point itself; anything else is a determinism violation.
  api::RunConfig cfg = api::RunConfig::from_run_record(ck.run);
  cfg.echo_output = false; // the original run already printed this
  const elf::ElfFile exe = elf::ElfFile::parse(ck.run.elf_bytes);
  api::Session s(cfg, ck.run, exe);
  bool exact = false;
  s.simulator().set_checkpoint_hook(
      ck.instructions, [&](sim::Simulator& simulator) {
        exact = simulator.stats().instructions == ck.instructions;
        return true;
      });
  const sim::StopReason reason = s.run();
  if (reason != sim::StopReason::Checkpoint || !exact) {
    std::cerr << strf("[ksim] replay MISMATCH: re-run stopped at %llu"
                      " instructions (%s), checkpoint was taken at %llu\n",
                      static_cast<unsigned long long>(
                          s.simulator().stats().instructions),
                      sim::to_string(reason),
                      static_cast<unsigned long long>(ck.instructions));
    return 1;
  }

  const std::vector<uint8_t> replayed =
      ckpt::encode_checkpoint(ck.run, s.participants());
  const bool identical =
      replayed.size() == original.size() &&
      std::memcmp(replayed.data(), original.data(), replayed.size()) == 0;
  if (!identical) {
    std::cerr << strf("[ksim] replay MISMATCH: re-encoded state differs from"
                      " %s (%zu vs %zu bytes)\n",
                      path.c_str(), replayed.size(), original.size());
    return 1;
  }
  std::cerr << strf("[ksim] replay OK: %s reproduced bit-identically at %llu"
                    " instructions (%zu bytes)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(ck.instructions),
                    replayed.size());
  return 0;
}

int cmd_build(const Options& opt) {
  check(!opt.output.empty(), "build requires -o <out.elf>");
  api::RunConfig cfg = to_run_config(opt);
  check(!cfg.inputs.empty(), "no input file");
  check(!(cfg.inputs.size() == 1 && ends_with(cfg.inputs[0], ".elf")),
        "cannot link an executable: " + (cfg.inputs.empty() ? "" : cfg.inputs[0]));
  const elf::ElfFile exe = api::resolve_input(cfg).exe;
  const std::vector<uint8_t> bytes = exe.serialize();
  std::ofstream out(opt.output, std::ios::binary);
  check(out.good(), "cannot write " + opt.output);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::cerr << strf("[ksim] wrote %s (%zu bytes, entry ISA %s)\n", opt.output.c_str(),
                    bytes.size(), opt.isa.c_str());
  return 0;
}

int cmd_cc(const Options& opt) {
  check(opt.inputs.size() == 1, "cc expects one .c file");
  kcc::CompileOptions copt;
  copt.file_name = opt.inputs[0];
  copt.codegen.default_isa = opt.isa;
  std::cout << kcc::compile_or_throw(read_file(opt.inputs[0]), copt);
  return 0;
}

int cmd_disasm(const Options& opt) {
  check(opt.inputs.size() == 1, "disasm expects one .elf file");
  const std::string bytes = read_file(opt.inputs[0]);
  const elf::ElfFile exe = elf::ElfFile::parse(
      std::span(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()));
  const elf::Section* text = exe.find_section(".text");
  check(text != nullptr, "no .text section");
  const isa::IsaSet& set = isa::kisa();
  const isa::IsaInfo* isa = set.find_isa(static_cast<int>(exe.flags));
  check(isa != nullptr, "executable names an unknown entry ISA");
  std::cout << "# entry " << hex32(exe.entry) << ", ISA " << isa->name << "\n";
  std::vector<uint32_t> words(text->data.size() / 4);
  for (size_t i = 0; i < words.size(); ++i)
    for (int b = 3; b >= 0; --b)
      words[i] = (words[i] << 8) | text->data[i * 4 + static_cast<size_t>(b)];
  size_t i = 0;
  while (i < words.size()) {
    size_t consumed = 0;
    const std::string line = kasm::disassemble_instr(
        set, *isa, std::span(words).subspan(i), consumed);
    std::cout << hex32(text->addr + static_cast<uint32_t>(i * 4)) << "  " << line
              << "\n";
    i += consumed == 0 ? 1 : consumed;
  }
  return 0;
}

int cmd_lint(const Options& opt) {
  check(opt.format == "text" || opt.format == "json",
        "unknown --format " + opt.format);
  const isa::IsaSet& set = isa::kisa();

  std::vector<std::string> isas;
  if (opt.isa == "all") {
    for (const isa::IsaInfo& i : set.isas()) isas.push_back(i.name);
  } else {
    check(set.find_isa(opt.isa) != nullptr, "unknown ISA " + opt.isa);
    isas.push_back(opt.isa);
  }

  analysis::LintOptions lopt;
  lopt.ilp = opt.lint_ilp;
  lopt.max_findings = opt.max_findings;

  bool all_clean = true;
  bool first = true;
  const bool json = opt.format == "json";
  if (json) std::cout << "[\n";
  auto lint_one = [&](const elf::ElfFile& exe, const std::string& label) {
    const analysis::LintResult result = analysis::run_lint(exe, set, lopt);
    if (!result.clean()) all_clean = false;
    if (json) {
      if (!first) std::cout << ",\n";
      std::cout << analysis::render_json(result, label);
    } else {
      if (!first) std::cout << "\n";
      std::cout << analysis::render_text(result, label, opt.verbose);
      if (opt.lint_ilp_compare) {
        // Independent cross-check of Fig. 4: the dynamic §VI-A measurement
        // can approach but not exceed the static per-block bounds.
        cycle::IlpModel model;
        const workloads::RunOutcome outcome = workloads::run_executable(exe, &model);
        double max_bound = 0.0;
        for (const analysis::FuncIlp& fi : result.ilp)
          max_bound = std::max(max_bound, fi.max_block_bound);
        std::cout << strf("%s: measured ILP %.3f (%llu ops / %llu cycles), "
                          "static max-block bound %.3f\n",
                          label.c_str(), model.ilp(),
                          static_cast<unsigned long long>(model.operations()),
                          static_cast<unsigned long long>(model.cycles()),
                          max_bound);
      }
    }
    first = false;
  };

  std::vector<const workloads::Workload*> wls;
  if (opt.workload == "all") {
    for (const workloads::Workload& w : workloads::all()) wls.push_back(&w);
  } else if (!opt.workload.empty()) {
    wls.push_back(&workloads::by_name(opt.workload));
  }

  if (!wls.empty()) {
    for (const workloads::Workload* w : wls)
      for (const std::string& isa_name : isas)
        lint_one(workloads::build_workload(*w, isa_name), w->name + "@" + isa_name);
  } else if (opt.inputs.size() == 1 && ends_with(opt.inputs[0], ".elf")) {
    const api::ProgramImage in = api::resolve_input(to_run_config(opt));
    lint_one(in.exe, in.label);
  } else {
    for (const std::string& isa_name : isas) {
      Options per_isa = opt;
      per_isa.isa = isa_name;
      const api::ProgramImage in = api::resolve_input(to_run_config(per_isa));
      lint_one(in.exe, in.label);
    }
  }
  if (json) std::cout << "]\n";
  return all_clean ? 0 : 1;
}

int cmd_workloads() {
  for (const workloads::Workload& w : workloads::all())
    std::cout << strf("%-8s %s\n", w.name.c_str(), w.description.c_str());
  return 0;
}

// -- ksimd service commands (DESIGN.md §10) ----------------------------------

// First SIGINT/SIGTERM: ask the daemon to drain (request_stop only touches
// an atomic and the self-pipe, both async-signal-safe).  Second: hard exit.
ksimd::Server* g_server = nullptr;
volatile std::sig_atomic_t g_serve_signalled = 0;

void on_serve_signal(int) {
  if (g_serve_signalled != 0) ::_exit(130);
  g_serve_signalled = 1;
  if (g_server != nullptr) g_server->request_stop(true);
}

int cmd_serve(const Options& opt) {
  ksimd::SchedulerOptions sched;
  sched.workers = static_cast<size_t>(opt.workers);
  sched.queue_capacity = static_cast<size_t>(opt.queue_cap);
  sched.slice_instructions = opt.slice;
  sched.quota.max_queued = static_cast<size_t>(opt.quota_queued);
  sched.quota.max_running = static_cast<size_t>(opt.quota_running);
  sched.quota.max_instructions = opt.quota_instr;
  ksimd::ServerOptions net;
  net.host = opt.host;
  net.port = static_cast<uint16_t>(opt.port);

  ksimd::Server server(sched, net);
  g_server = &server;
  std::signal(SIGINT, on_serve_signal);
  std::signal(SIGTERM, on_serve_signal);
  std::cerr << strf("[ksimd] listening on %s:%u (%d workers, queue %d,"
                    " slice %llu)\n",
                    opt.host.c_str(), server.port(), opt.workers,
                    opt.queue_cap,
                    static_cast<unsigned long long>(opt.slice));
  if (!opt.port_file.empty())
    write_text_or_stdout(opt.port_file, std::to_string(server.port()) + "\n");
  server.run();
  g_server = nullptr;
  std::cerr << "[ksimd] drained, exiting\n";
  return 0;
}

int cmd_submit(const Options& opt) {
  check(opt.port != 0, "submit requires --port");
  check(!opt.workload.empty(), "submit requires --workload <built-in name>");
  ksimd::SubmitRequest request;
  if (!opt.tenant.empty()) request.tenant = opt.tenant;
  request.priority = opt.priority;
  request.config = to_run_config(opt);

  ksimd::Client client(opt.host, static_cast<uint16_t>(opt.port));
  client.send_line(ksimd::encode(request));
  for (;;) {
    const std::optional<ksimd::Message> msg = client.read_message();
    check(msg.has_value(), "daemon closed the connection mid-job");
    if (const auto* accepted = std::get_if<ksimd::Accepted>(&*msg)) {
      std::cerr << strf("[ksimd] job %llu accepted\n",
                        static_cast<unsigned long long>(accepted->id));
    } else if (const auto* rejected = std::get_if<ksimd::Rejected>(&*msg)) {
      std::cerr << strf("ksim: submit rejected (%s): %s\n",
                        rejected->code.c_str(), rejected->error.c_str());
      if (rejected->retry_after_ms > 0)
        std::cerr << strf("ksim: retry after %d ms\n", rejected->retry_after_ms);
      return 3;
    } else if (const auto* progress = std::get_if<ksimd::Progress>(&*msg)) {
      const char* what = progress->kind == ksimd::Progress::Kind::Preempted
                             ? "preempted"
                             : progress->kind == ksimd::Progress::Kind::Resumed
                                   ? "resumed"
                                   : "running";
      std::cerr << strf("[ksimd] job %llu %s at %llu instructions\n",
                        static_cast<unsigned long long>(progress->id), what,
                        static_cast<unsigned long long>(progress->instructions));
    } else if (const auto* done = std::get_if<ksimd::Done>(&*msg)) {
      if (done->state == ksimd::JobState::Done) {
        std::cerr << strf("[ksimd] job %llu finished (exit %d)\n",
                          static_cast<unsigned long long>(done->id),
                          done->exit_code);
        if (!opt.json_path.empty())
          write_text_or_stdout(opt.json_path, done->report);
        return done->exit_code;
      }
      if (done->state == ksimd::JobState::Cancelled) {
        std::cerr << strf("[ksimd] job %llu cancelled\n",
                          static_cast<unsigned long long>(done->id));
        return 1;
      }
      std::cerr << strf("[ksimd] job %llu FAILED\n",
                        static_cast<unsigned long long>(done->id));
      if (!done->error.empty()) std::cerr << done->error;
      return 1;
    }
    // Status/Ok replies are not part of the submit conversation; ignore.
  }
}

int cmd_jobs(const Options& opt) {
  check(opt.port != 0, "jobs requires --port");
  ksimd::ListRequest request;
  request.tenant = opt.tenant;
  ksimd::Client client(opt.host, static_cast<uint16_t>(opt.port));
  client.send_line(ksimd::encode(request));
  const std::optional<ksimd::Message> msg = client.read_message();
  check(msg.has_value(), "daemon closed the connection");
  const auto* status = std::get_if<ksimd::StatusReply>(&*msg);
  check(status != nullptr, "unexpected reply to jobs request");
  std::cout << strf("%-5s %-10s %-4s %-10s %-16s %12s %5s\n", "ID", "TENANT",
                    "PRI", "STATE", "JOB", "INSTRUCTIONS", "EVICT");
  for (const ksimd::JobInfo& j : status->jobs)
    std::cout << strf("%-5llu %-10s %-4d %-10s %-16s %12llu %5llu\n",
                      static_cast<unsigned long long>(j.id), j.tenant.c_str(),
                      j.priority, ksimd::to_string(j.state), j.label.c_str(),
                      static_cast<unsigned long long>(j.instructions),
                      static_cast<unsigned long long>(j.preemptions));
  return 0;
}

int cmd_cancel(const Options& opt) {
  check(opt.port != 0, "cancel requires --port");
  check(opt.inputs.size() == 1, "cancel expects one job id");
  int64_t id = 0;
  check(parse_int(opt.inputs[0], id) && id > 0, "cancel expects a job id");
  ksimd::CancelRequest request;
  request.id = static_cast<uint64_t>(id);
  ksimd::Client client(opt.host, static_cast<uint16_t>(opt.port));
  client.send_line(ksimd::encode(request));
  const std::optional<ksimd::Message> msg = client.read_message();
  check(msg.has_value(), "daemon closed the connection");
  if (const auto* ok = std::get_if<ksimd::Ok>(&*msg)) {
    std::cerr << "[ksimd] " << ok->message << "\n";
    return 0;
  }
  if (const auto* rejected = std::get_if<ksimd::Rejected>(&*msg)) {
    std::cerr << strf("ksim: cancel rejected (%s): %s\n",
                      rejected->code.c_str(), rejected->error.c_str());
    return 1;
  }
  throw Error("unexpected reply to cancel request");
}

int cmd_shutdown(const Options& opt) {
  check(opt.port != 0, "shutdown requires --port");
  ksimd::ShutdownRequest request;
  request.drain = !opt.no_drain;
  ksimd::Client client(opt.host, static_cast<uint16_t>(opt.port));
  client.send_line(ksimd::encode(request));
  const std::optional<ksimd::Message> msg = client.read_message();
  check(msg.has_value(), "daemon closed the connection");
  const auto* ok = std::get_if<ksimd::Ok>(&*msg);
  check(ok != nullptr, "unexpected reply to shutdown request");
  std::cerr << "[ksimd] " << ok->message << "\n";
  // The daemon closes every connection once the drain completes; waiting for
  // EOF makes `ksim shutdown` synchronous for scripts.
  while (client.read_line().has_value()) {
  }
  return 0;
}

int main_impl(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  if (cmd == "lint") {
    // lint has a three-way exit contract (0 clean / 1 findings / 2 usage or
    // input error) so CI gates can tell "dirty program" from "broken
    // invocation"; the generic catch below would fold errors into 1.
    try {
      return cmd_lint(parse_options(argc, argv, 2));
    } catch (const Error& e) {
      std::cerr << "ksim: error: " << e.what() << "\n";
      return 2;
    }
  }
  const Options opt = parse_options(argc, argv, 2);
  if (cmd == "run") return cmd_run(opt);
  if (cmd == "sweep") return cmd_sweep(opt);
  if (cmd == "build") return cmd_build(opt);
  if (cmd == "cc") return cmd_cc(opt);
  if (cmd == "disasm") return cmd_disasm(opt);
  if (cmd == "workloads") return cmd_workloads();
  if (cmd == "resume") return cmd_resume(opt);
  if (cmd == "replay") return cmd_replay(opt);
  if (cmd == "serve") return cmd_serve(opt);
  if (cmd == "submit") return cmd_submit(opt);
  if (cmd == "jobs") return cmd_jobs(opt);
  if (cmd == "cancel") return cmd_cancel(opt);
  if (cmd == "shutdown") return cmd_shutdown(opt);
  usage();
}

} // namespace
} // namespace ksim

int main(int argc, char** argv) {
  try {
    return ksim::main_impl(argc, argv);
  } catch (const ksim::ConfigError& e) {
    // Impossible configurations (e.g. a non-power-of-two cache geometry)
    // share lint's exit-2 "broken invocation" contract.
    std::cerr << "ksim: error: " << e.what() << "\n";
    return 2;
  } catch (const ksim::Error& e) {
    std::cerr << "ksim: error: " << e.what() << "\n";
    return 1;
  }
}
