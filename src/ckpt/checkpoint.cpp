#include "ckpt/checkpoint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "cycle/branch_predict.h"
#include "cycle/cycle_model.h"
#include "cycle/mem_hierarchy.h"
#include "sim/simulator.h"
#include "support/error.h"
#include "support/strings.h"

namespace fs = std::filesystem;

namespace ksim::ckpt {

namespace {

using support::ByteReader;
using support::ByteWriter;

constexpr char kMagic[8] = {'K', 'S', 'I', 'M', 'C', 'K', 'P', 'T'};

constexpr uint32_t fourcc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
         static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

constexpr uint32_t kTagRun = fourcc('R', 'U', 'N', ' ');
constexpr uint32_t kTagSim = fourcc('S', 'I', 'M', ' ');
constexpr uint32_t kTagCyc = fourcc('C', 'Y', 'C', ' ');
constexpr uint32_t kTagMem = fourcc('M', 'E', 'M', ' ');
constexpr uint32_t kTagBprd = fourcc('B', 'P', 'R', 'D');

std::string tag_name(uint32_t tag) {
  std::string s;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    s += std::isprint(static_cast<unsigned char>(c)) ? c : '?';
  }
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

} // namespace

// -- RunRecord ---------------------------------------------------------------

void RunRecord::save(ByteWriter& w) const {
  w.str(workload);
  w.u64(elf_bytes.size());
  w.bytes(elf_bytes.data(), elf_bytes.size());
  w.str(model);
  w.str(bp_kind);
  w.u32(bp_penalty);
  w.u32(seed);
  w.u8(use_decode_cache);
  w.u8(use_prediction);
  w.u8(use_superblocks);
  w.u8(use_jit);
  w.u8(collect_op_stats);
  w.u64(max_instructions);
  memory.save(w);
}

void RunRecord::restore(ByteReader& r) {
  workload = r.str();
  const uint64_t elf_size = r.u64();
  check(elf_size <= r.remaining(), "checkpoint RUN section: truncated data");
  elf_bytes.resize(static_cast<size_t>(elf_size));
  r.bytes(elf_bytes.data(), elf_bytes.size());
  model = r.str();
  bp_kind = r.str();
  bp_penalty = r.u32();
  seed = r.u32();
  use_decode_cache = r.u8();
  use_prediction = r.u8();
  use_superblocks = r.u8();
  use_jit = r.u8();
  collect_op_stats = r.u8();
  max_instructions = r.u64();
  memory.restore(r);
}

// -- encode ------------------------------------------------------------------

std::vector<uint8_t> encode_checkpoint(const RunRecord& run, const Participants& p) {
  check(p.sim != nullptr, "encode_checkpoint: no simulator attached");

  struct Section {
    uint32_t tag;
    std::vector<uint8_t> payload;
  };
  std::vector<Section> sections;
  {
    ByteWriter w;
    run.save(w);
    sections.push_back({kTagRun, w.take()});
  }
  {
    ByteWriter w;
    p.sim->save_state(w);
    sections.push_back({kTagSim, w.take()});
  }
  if (p.model != nullptr) {
    ByteWriter w;
    w.str(p.model->name());
    p.model->save(w);
    sections.push_back({kTagCyc, w.take()});
  }
  if (p.memory != nullptr) {
    ByteWriter w;
    p.memory->save(w);
    sections.push_back({kTagMem, w.take()});
  }
  if (p.predictor != nullptr) {
    ByteWriter w;
    w.str(p.predictor->name());
    p.predictor->save(w);
    sections.push_back({kTagBprd, w.take()});
  }

  ByteWriter out;
  out.bytes(kMagic, sizeof kMagic);
  out.u32(kFormatVersion);
  out.u64(p.sim->stats().instructions);
  out.u32(static_cast<uint32_t>(sections.size()));
  for (const Section& s : sections) {
    out.u32(s.tag);
    out.u64(s.payload.size());
    out.u32(support::crc32(s.payload.data(), s.payload.size()));
    out.bytes(s.payload.data(), s.payload.size());
  }
  return out.take();
}

// -- parse -------------------------------------------------------------------

uint64_t checkpoint_instructions(std::span<const uint8_t> bytes) {
  ByteReader r(bytes, "checkpoint");
  uint8_t magic[sizeof kMagic];
  r.bytes(magic, sizeof magic);
  check(std::memcmp(magic, kMagic, sizeof kMagic) == 0,
        "not a ksim checkpoint (bad magic)");
  const uint32_t version = r.u32();
  check(version == kFormatVersion,
        strf("unsupported checkpoint format version %u (this build reads version %u)",
             version, kFormatVersion));
  return r.u64();
}

Checkpoint parse_checkpoint(std::span<const uint8_t> bytes) {
  ByteReader r(bytes, "checkpoint");
  uint8_t magic[sizeof kMagic];
  r.bytes(magic, sizeof magic);
  check(std::memcmp(magic, kMagic, sizeof kMagic) == 0,
        "not a ksim checkpoint (bad magic)");
  const uint32_t version = r.u32();
  check(version == kFormatVersion,
        strf("unsupported checkpoint format version %u (this build reads version %u)",
             version, kFormatVersion));

  Checkpoint ck;
  ck.instructions = r.u64();
  const uint32_t num_sections = r.u32();

  bool seen_run = false;
  bool seen_sim = false;
  for (uint32_t i = 0; i < num_sections; ++i) {
    const uint32_t tag = r.u32();
    const uint64_t size = r.u64();
    const uint32_t crc = r.u32();
    check(size <= r.remaining(),
          strf("checkpoint section '%s' is truncated", tag_name(tag).c_str()));
    const std::span<const uint8_t> payload = r.view(static_cast<size_t>(size));
    check(support::crc32(payload.data(), payload.size()) == crc,
          strf("checkpoint section '%s' checksum mismatch (corrupt file)",
               tag_name(tag).c_str()));

    if (tag == kTagRun) {
      ByteReader pr(payload, "checkpoint RUN section");
      ck.run.restore(pr);
      pr.expect_end();
      seen_run = true;
    } else if (tag == kTagSim) {
      ck.sim_state.assign(payload.begin(), payload.end());
      seen_sim = true;
    } else if (tag == kTagCyc) {
      ByteReader pr(payload, "checkpoint CYC section");
      ck.model_name = pr.str();
      const std::span<const uint8_t> rest = pr.view(pr.remaining());
      ck.model_state.assign(rest.begin(), rest.end());
      ck.has_model = true;
    } else if (tag == kTagMem) {
      ck.memory_state.assign(payload.begin(), payload.end());
      ck.has_memory = true;
    } else if (tag == kTagBprd) {
      ByteReader pr(payload, "checkpoint BPRD section");
      ck.predictor_name = pr.str();
      const std::span<const uint8_t> rest = pr.view(pr.remaining());
      ck.predictor_state.assign(rest.begin(), rest.end());
      ck.has_predictor = true;
    } else {
      throw Error(strf("checkpoint contains unknown section '%s'",
                       tag_name(tag).c_str()));
    }
  }
  r.expect_end();
  check(seen_run && seen_sim,
        "checkpoint is missing a required section (RUN/SIM)");
  return ck;
}

Checkpoint read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check(in.good(), strf("cannot open checkpoint '%s'", path.c_str()));
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  check(!in.bad(), strf("error reading checkpoint '%s'", path.c_str()));
  try {
    return parse_checkpoint(bytes);
  } catch (const Error& e) {
    throw Error(std::string(path) + ": " + e.what());
  }
}

// -- apply -------------------------------------------------------------------

void apply_checkpoint(const Checkpoint& ck, const Participants& p) {
  check(p.sim != nullptr, "apply_checkpoint: no simulator attached");
  check((p.model != nullptr) == ck.has_model,
        ck.has_model
            ? "checkpoint was taken with a cycle model, but none is attached"
            : "checkpoint was taken without a cycle model, but one is attached");
  if (p.model != nullptr)
    check(p.model->name() == ck.model_name,
          strf("checkpoint cycle model is '%s', attached model is '%s'",
               ck.model_name.c_str(), p.model->name().c_str()));
  check((p.memory != nullptr) == ck.has_memory,
        "checkpoint memory-hierarchy presence does not match the session");
  check((p.predictor != nullptr) == ck.has_predictor,
        "checkpoint branch-predictor presence does not match the session");
  if (p.predictor != nullptr)
    check(p.predictor->name() == ck.predictor_name,
          strf("checkpoint branch predictor is '%s', attached predictor is '%s'",
               ck.predictor_name.c_str(), p.predictor->name().c_str()));

  ByteReader sr(ck.sim_state, "checkpoint SIM section");
  p.sim->restore_state(sr);
  sr.expect_end();
  if (p.model != nullptr) {
    ByteReader mr(ck.model_state, "checkpoint CYC section");
    p.model->restore(mr);
    mr.expect_end();
  }
  if (p.memory != nullptr) {
    ByteReader hr(ck.memory_state, "checkpoint MEM section");
    p.memory->restore(hr);
    hr.expect_end();
  }
  if (p.predictor != nullptr) {
    ByteReader br(ck.predictor_state, "checkpoint BPRD section");
    p.predictor->restore(br);
    br.expect_end();
  }
}

// -- files -------------------------------------------------------------------

void write_checkpoint_atomic(const std::string& path, std::span<const uint8_t> bytes) {
  const fs::path target(path);
  fs::path tmp(target);
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    check(out.good(), strf("cannot create '%s'", tmp.string().c_str()));
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    check(out.good(), strf("error writing '%s'", tmp.string().c_str()));
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error(strf("cannot move checkpoint into place at '%s'", path.c_str()));
  }
}

CheckpointSink::CheckpointSink(std::string dir, unsigned keep_last)
    : dir_(std::move(dir)), keep_(keep_last == 0 ? 1 : keep_last) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  check(!ec, strf("cannot create checkpoint directory '%s'", dir_.c_str()));
}

std::string CheckpointSink::write(const RunRecord& run, const Participants& p) {
  const std::vector<uint8_t> bytes = encode_checkpoint(run, p);
  const std::string name =
      strf("ckpt-%llu%s",
           static_cast<unsigned long long>(p.sim->stats().instructions),
           kFileSuffix);
  const std::string path = (fs::path(dir_) / name).string();
  write_checkpoint_atomic(path, bytes);
  ++count_;
  if (live_.empty() || live_.back() != path) live_.push_back(path);
  while (live_.size() > keep_) {
    std::error_code ec;
    fs::remove(live_.front(), ec); // best effort; the new snapshot is safe
    live_.erase(live_.begin());
  }
  return path;
}

std::string latest_checkpoint(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return "";
  std::string best;
  uint64_t best_n = 0;
  for (const fs::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    const std::string_view suffix(kFileSuffix);
    if (name.size() <= 5 + suffix.size() || name.compare(0, 5, "ckpt-") != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string digits = name.substr(5, name.size() - 5 - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    const uint64_t n = std::stoull(digits);
    if (best.empty() || n >= best_n) {
      best = entry.path().string();
      best_n = n;
    }
  }
  return best;
}

} // namespace ksim::ckpt
