// kckpt — checkpoint/restore and deterministic replay (DESIGN.md §5c).
//
// A checkpoint file captures everything needed to resume a simulation
// bit-identically: the run configuration *including the executable bytes*
// (the RUN section, so a snapshot is self-contained), the simulator's
// complete execution state, and the state of every attached cycle-model
// participant.  The format is sectioned, versioned and per-section
// checksummed; readers validate the whole file before mutating any live
// object, so a damaged or mismatched snapshot is rejected with a clear
// diagnostic and no partial state change.
//
// Determinism: the simulator has no external nondeterministic inputs — the
// emulated C library is pure (rand() is a seeded LCG, no real syscalls) —
// so the RUN section's configuration record *is* the full replay log.
// `ksim replay` re-runs the recorded program from the beginning up to the
// snapshot's instruction count and byte-compares the re-encoded state
// against the file; all serializers use canonical (sorted) encodings to
// make that comparison meaningful.
//
// File layout (all little-endian):
//   "KSIMCKPT"  8-byte magic
//   u32         format version (kFormatVersion)
//   u64         instruction count at the snapshot point
//   u32         section count
//   sections:   u32 tag (fourcc) | u64 payload size | u32 CRC-32 | payload
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cycle/mem_hierarchy.h"
#include "support/byte_stream.h"

namespace ksim::sim {
class Simulator;
}
namespace ksim::cycle {
class CycleModel;
class BranchPredictor;
}

namespace ksim::ckpt {

// Version history: 1 = initial format; 2 = RUN section gained use_jit (the
// kjit engine switch — configuration only, checkpoints never carry host code
// or translation state); 3 = RUN section gained the kdse MemGeometry, so a
// snapshot pins the exact memory hierarchy it was taken on.
inline constexpr uint32_t kFormatVersion = 3;
inline constexpr char kFileSuffix[] = ".kckpt";

/// The run configuration recorded into every checkpoint (RUN section): all
/// inputs that determine the simulation, so `ksim resume` and `ksim replay`
/// can rebuild an identical session without the original command line.
struct RunRecord {
  std::string workload;            ///< display name (file or workload id)
  std::vector<uint8_t> elf_bytes;  ///< the executable, verbatim
  std::string model;               ///< cycle model name ("" = none)
  std::string bp_kind;             ///< branch predictor kind ("" = none)
  uint32_t bp_penalty = 0;         ///< mispredict refill penalty (cycles)
  uint32_t seed = 1;               ///< emulated-libc rand() seed (--seed)
  uint8_t use_decode_cache = 1;
  uint8_t use_prediction = 1;
  uint8_t use_superblocks = 1;
  uint8_t use_jit = 1;
  uint8_t collect_op_stats = 0;
  uint64_t max_instructions = 0;   ///< original --max-instr (0 = unlimited)
  cycle::MemGeometry memory;       ///< kdse memory geometry (format v3)

  void save(support::ByteWriter& w) const;
  void restore(support::ByteReader& r);
};

/// The live objects a checkpoint covers.  `sim` is mandatory; the rest are
/// optional and must be attached consistently across save and restore (a
/// checkpoint taken with a DOE model cannot restore into a bare run).
struct Participants {
  sim::Simulator* sim = nullptr;
  cycle::CycleModel* model = nullptr;
  cycle::MemoryHierarchy* memory = nullptr;
  cycle::BranchPredictor* predictor = nullptr;
};

/// A parsed, validated checkpoint: header fields plus raw section payloads.
/// Payloads are kept as bytes so validation (magic, version, checksums,
/// section framing) is complete before apply_checkpoint() touches anything.
struct Checkpoint {
  uint64_t instructions = 0;
  RunRecord run;
  std::vector<uint8_t> sim_state;
  bool has_model = false;
  std::string model_name;
  std::vector<uint8_t> model_state;
  bool has_memory = false;
  std::vector<uint8_t> memory_state;
  bool has_predictor = false;
  std::string predictor_name;
  std::vector<uint8_t> predictor_state;
};

/// Serializes the participants' current state under `run` into checkpoint
/// bytes.  Identical states encode to identical bytes (the replay check).
std::vector<uint8_t> encode_checkpoint(const RunRecord& run, const Participants& p);

/// Parses and fully validates checkpoint bytes.  Throws ksim::Error with a
/// specific diagnostic (bad magic, version mismatch, truncation, checksum
/// failure, unknown section) — never returns a partially valid result.
Checkpoint parse_checkpoint(std::span<const uint8_t> bytes);

/// Header-only peek at the snapshot's instruction count (validating magic
/// and version but no section payloads).  The ksimd scheduler reports each
/// evicted job's resume point from its retained checkpoint bytes without
/// re-parsing whole snapshots on every listing.
uint64_t checkpoint_instructions(std::span<const uint8_t> bytes);

/// Reads + parses a checkpoint file.  Throws ksim::Error on I/O or format
/// problems, naming the file in the message.
Checkpoint read_checkpoint(const std::string& path);

/// Restores `ck` into live participants.  The simulator must already have
/// load()ed the executable from ck.run.elf_bytes with matching options; the
/// attached model/memory/predictor set must match the sections present.
/// Throws ksim::Error on any mismatch.
void apply_checkpoint(const Checkpoint& ck, const Participants& p);

/// Writes `bytes` to `path` crash-safely: the data goes to a temporary file
/// in the same directory first and is renamed over `path` only once fully
/// written, so readers never observe a torn checkpoint.
void write_checkpoint_atomic(const std::string& path, std::span<const uint8_t> bytes);

/// Periodic snapshot writer for `ksim run --checkpoint-every`: emits
/// `<dir>/ckpt-<instructions>.kckpt` atomically and keeps only the newest
/// `keep_last` snapshots (older ones are unlinked after a successful write,
/// so at least one complete checkpoint always exists once any was written).
class CheckpointSink {
public:
  CheckpointSink(std::string dir, unsigned keep_last);

  /// Snapshots the participants; returns the path written.
  std::string write(const RunRecord& run, const Participants& p);

  unsigned written() const { return count_; }

private:
  std::string dir_;
  unsigned keep_;
  unsigned count_ = 0;
  std::vector<std::string> live_; ///< oldest first
};

/// Highest-instruction-count `ckpt-<n>.kckpt` in `dir`, or "" if none.
std::string latest_checkpoint(const std::string& dir);

} // namespace ksim::ckpt
