// The benchmark applications of the paper's evaluation (§VII), rewritten in
// MiniC (see DESIGN.md §2): JPEG-like encoder/decoder, recursive fixed-point
// FFT, recursive quicksort, fully-unrolled AES-128 with T-tables (working set
// larger than the 2 KiB L1, as the paper highlights), and the H.264 4x4
// integer DCT.  Every program is self-checking and prints "<name> OK ..." on
// success, so functional correctness is validated on every ISA.
#pragma once

#include <string>
#include <vector>

namespace ksim::workloads {

struct Workload {
  std::string name;        ///< "cjpeg", "djpeg", "fft", "qsort", "aes", "dct"
  std::string description;
  std::string source;      ///< MiniC source text
};

/// All workloads, in the paper's order.
const std::vector<Workload>& all();

/// Lookup by name; throws ksim::Error if unknown.
const Workload& by_name(const std::string& name);

} // namespace ksim::workloads
