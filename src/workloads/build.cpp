#include "workloads/build.h"

#include "isa/kisa.h"
#include "kasm/assembler.h"
#include "kasm/linker.h"
#include "kasm/stubs.h"
#include "kcc/compiler.h"
#include "support/error.h"

namespace ksim::workloads {

const std::string& simulated_libc_source() {
  static const std::string kSource = R"(
/* Simulated-ISA implementations of the memory/string library functions
   (paper SV-E): unlike the native SIMOP stubs, these execute on the
   simulated processor and their cycles are counted by the cycle models. */
char *memcpy(char *dst, char *src, unsigned n) {
  for (unsigned i = 0u; i < n; i++) dst[i] = src[i];
  return dst;
}
char *memset(char *dst, int v, unsigned n) {
  for (unsigned i = 0u; i < n; i++) dst[i] = (char)v;
  return dst;
}
unsigned strlen(char *s) {
  unsigned n = 0u;
  while (s[n]) n++;
  return n;
}
int strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] && a[i] == b[i]) i++;
  int ca = a[i] & 255;
  int cb = b[i] & 255;
  return ca < cb ? -1 : (ca > cb ? 1 : 0);
}
char *strcpy(char *dst, char *src) {
  int i = 0;
  while ((dst[i] = src[i]) != 0) i++;
  return dst;
}
)";
  return kSource;
}

const std::vector<std::string>& simulated_libc_functions() {
  static const std::vector<std::string> kNames = {"memcpy", "memset", "strlen",
                                                  "strcmp", "strcpy"};
  return kNames;
}

elf::ElfFile build_executable(const std::string& minic_source,
                              const std::string& isa_name,
                              const std::string& file_name,
                              const BuildOptions& options) {
  const isa::IsaInfo* isa = isa::kisa().find_isa(isa_name);
  check(isa != nullptr, "build_executable: unknown ISA " + isa_name);

  std::string source = minic_source;
  std::vector<std::string> replaced;
  if (options.simulated_libc) {
    source += simulated_libc_source();
    replaced = simulated_libc_functions();
  }

  kcc::CompileOptions copt;
  copt.file_name = file_name;
  copt.codegen.default_isa = isa_name;
  const std::string assembly = kcc::compile_or_throw(source, copt);

  kasm::AsmOptions aopt;
  aopt.file_name = file_name + ".s";
  const elf::ElfFile user = kasm::assemble_or_throw(assembly, aopt);
  const elf::ElfFile start = kasm::assemble_or_throw(kasm::start_stub_assembly(isa_name));
  const elf::ElfFile libc = kasm::assemble_or_throw(kasm::libc_stub_assembly(replaced));

  kasm::LinkOptions lopt;
  lopt.entry_isa = isa->id;
  return kasm::link_or_throw({start, user, libc}, lopt);
}

elf::ElfFile build_workload(const Workload& workload, const std::string& isa_name) {
  return build_executable(workload.source, isa_name, workload.name + ".c");
}

RunOutcome run_executable(const elf::ElfFile& exe, cycle::CycleModel* model,
                          const sim::SimOptions& options) {
  sim::Simulator simulator(isa::kisa(), options);
  simulator.load(exe);
  if (model != nullptr) simulator.set_cycle_model(model);
  RunOutcome outcome;
  outcome.reason = simulator.run();
  if (outcome.reason == sim::StopReason::Trap ||
      outcome.reason == sim::StopReason::DecodeError)
    throw Error("workload run failed:\n" + simulator.error_report());
  outcome.exit_code = simulator.exit_code();
  outcome.output = simulator.libc().output();
  outcome.stats = simulator.stats();
  if (model != nullptr) outcome.cycles = model->cycles();
  return outcome;
}

} // namespace ksim::workloads
