// Helpers to build and run workload executables: MiniC source → compiler →
// assembler → linker (with start/libc stubs) → simulator.
#pragma once

#include <string>

#include "cycle/cycle_model.h"
#include "elf/elf.h"
#include "sim/simulator.h"
#include "workloads/workloads.h"

namespace ksim::workloads {

struct BuildOptions {
  /// Link real MiniC implementations of the memory/string functions instead
  /// of the native SIMOP stubs, so their cycles are counted (paper §V-E:
  /// "we support to replace any native C library function with real
  /// implementations on the simulated ISA").
  bool simulated_libc = false;
};

/// Compiles MiniC source and links it with the start and libc stubs into an
/// executable for `isa_name` (RISC/VLIW2/VLIW4/VLIW6/VLIW8).
/// Throws ksim::Error on any compile/assemble/link diagnostic.
elf::ElfFile build_executable(const std::string& minic_source,
                              const std::string& isa_name,
                              const std::string& file_name = "<minic>",
                              const BuildOptions& options = {});

/// MiniC source of the simulated-ISA library implementations (memcpy,
/// memset, strlen, strcmp, strcpy).
const std::string& simulated_libc_source();
/// Names of the functions simulated_libc_source() defines.
const std::vector<std::string>& simulated_libc_functions();

/// build_executable for a named workload.
elf::ElfFile build_workload(const Workload& workload, const std::string& isa_name);

/// Outcome of one simulated run.
struct RunOutcome {
  sim::StopReason reason = sim::StopReason::Halted;
  int exit_code = 0;
  std::string output;
  sim::SimStats stats;
  uint64_t cycles = 0; ///< from the cycle model, if one was attached
};

/// Loads `exe` into a fresh simulator, optionally attaches `model`, runs to
/// completion and returns the outcome.  Throws ksim::Error if the program
/// traps or hits a decode error (including the simulator's error report).
RunOutcome run_executable(const elf::ElfFile& exe, cycle::CycleModel* model = nullptr,
                          const sim::SimOptions& options = {});

} // namespace ksim::workloads
