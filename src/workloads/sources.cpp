#include "workloads/workloads.h"

#include <cmath>

#include "support/error.h"
#include "support/strings.h"

namespace ksim::workloads {
namespace {

/// Renders an int array initializer for embedding in MiniC source.
std::string int_table(const std::string& name, const std::vector<int>& values) {
  std::string out = "int " + name + "[" + std::to_string(values.size()) + "] = {";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i % 12 == 0) out += "\n  ";
    out += std::to_string(values[i]) + ",";
  }
  out += "\n};\n";
  return out;
}

/// Shared MiniC helper: FNV-1a style checksum step.
constexpr const char* kFnvHelper = R"(
unsigned fnv(unsigned h, int v) { return (h ^ (unsigned)v) * 16777619u; }
)";

// ---------------------------------------------------------------------------
// dct: H.264 4x4 integer transform, fully unrolled (high ILP).
// ---------------------------------------------------------------------------

std::string dct_source() {
  return std::string(R"(// 4x4 integer DCT approximation as used in H.264 (paper SVII).
int blocks[1024];
int coef[1024];
int rec[1024];
/* Dequantization scale: Ci*Cf^T = diag(4,5,4,5), so exact reconstruction
   needs coefficients scaled by 2^18/(d_u*d_v) before the inverse pass; the
   scale factors (16384, 13107, 10486) are folded into the inverse kernel. */
)") + kFnvHelper + R"(
void forward_all(int *xs, int *ys, int nblocks) {
 for (int b = 0; b < nblocks; b++) {
  int *x = xs + b * 16;
  int *y = ys + b * 16;
  /* Rows are loaded and transformed one at a time to keep register
     pressure banded (at most one row of inputs live at once). */
  int x0 = x[0];  int x1 = x[1];  int x2 = x[2];  int x3 = x[3];
  int a0 = x0 + x3;  int a1 = x1 + x2;  int a2 = x1 - x2;  int a3 = x0 - x3;
  int r0 = a0 + a1;  int r2 = a0 - a1;  int r1 = 2*a3 + a2; int r3 = a3 - 2*a2;
  int x4 = x[4];  int x5 = x[5];  int x6 = x[6];  int x7 = x[7];
  int b0 = x4 + x7;  int b1 = x5 + x6;  int b2 = x5 - x6;  int b3 = x4 - x7;
  int r4 = b0 + b1;  int r6 = b0 - b1;  int r5 = 2*b3 + b2; int r7 = b3 - 2*b2;
  int x8 = x[8];  int x9 = x[9];  int x10 = x[10]; int x11 = x[11];
  int c0 = x8 + x11; int c1 = x9 + x10; int c2 = x9 - x10; int c3 = x8 - x11;
  int r8 = c0 + c1;  int r10 = c0 - c1; int r9 = 2*c3 + c2; int r11 = c3 - 2*c2;
  int x12 = x[12]; int x13 = x[13]; int x14 = x[14]; int x15 = x[15];
  int d0 = x12 + x15; int d1 = x13 + x14; int d2 = x13 - x14; int d3 = x12 - x15;
  int r12 = d0 + d1; int r14 = d0 - d1; int r13 = 2*d3 + d2; int r15 = d3 - 2*d2;

  int e0 = r0 + r12; int e1 = r4 + r8;  int e2 = r4 - r8;  int e3 = r0 - r12;
  y[0] = e0 + e1;    y[8] = e0 - e1;    y[4] = 2*e3 + e2;  y[12] = e3 - 2*e2;
  int f0 = r1 + r13; int f1 = r5 + r9;  int f2 = r5 - r9;  int f3 = r1 - r13;
  y[1] = f0 + f1;    y[9] = f0 - f1;    y[5] = 2*f3 + f2;  y[13] = f3 - 2*f2;
  int g0 = r2 + r14; int g1 = r6 + r10; int g2 = r6 - r10; int g3 = r2 - r14;
  y[2] = g0 + g1;    y[10] = g0 - g1;   y[6] = 2*g3 + g2;  y[14] = g3 - 2*g2;
  int h0 = r3 + r15; int h1 = r7 + r11; int h2 = r7 - r11; int h3 = r3 - r15;
  y[3] = h0 + h1;    y[11] = h0 - h1;   y[7] = 2*h3 + h2;  y[15] = h3 - 2*h2;
 }
}

void inverse_all(int *ys, int *xs, int nblocks) {
 for (int b = 0; b < nblocks; b++) {
  int *y = ys + b * 16;
  int *x = xs + b * 16;
  int y0 = y[0] * 16384;   int y1 = y[1] * 13107;
  int y2 = y[2] * 16384;   int y3 = y[3] * 13107;
  int a0 = y0 + y2;  int a1 = y0 - y2;  int a2 = (y1 >> 1) - y3; int a3 = y1 + (y3 >> 1);
  int r0 = a0 + a3;  int r3 = a0 - a3;  int r1 = a1 + a2;  int r2 = a1 - a2;
  int y4 = y[4] * 13107;   int y5 = y[5] * 10486;
  int y6 = y[6] * 13107;   int y7 = y[7] * 10486;
  int b0 = y4 + y6;  int b1 = y4 - y6;  int b2 = (y5 >> 1) - y7; int b3 = y5 + (y7 >> 1);
  int r4 = b0 + b3;  int r7 = b0 - b3;  int r5 = b1 + b2;  int r6 = b1 - b2;
  int y8 = y[8] * 16384;   int y9 = y[9] * 13107;
  int y10 = y[10] * 16384; int y11 = y[11] * 13107;
  int c0 = y8 + y10; int c1 = y8 - y10; int c2 = (y9 >> 1) - y11; int c3 = y9 + (y11 >> 1);
  int r8 = c0 + c3;  int r11 = c0 - c3; int r9 = c1 + c2;  int r10 = c1 - c2;
  int y12 = y[12] * 13107; int y13 = y[13] * 10486;
  int y14 = y[14] * 13107; int y15 = y[15] * 10486;
  int d0 = y12 + y14; int d1 = y12 - y14; int d2 = (y13 >> 1) - y15; int d3 = y13 + (y15 >> 1);
  int r12 = d0 + d3; int r15 = d0 - d3; int r13 = d1 + d2; int r14 = d1 - d2;

  int e0 = r0 + r8;  int e1 = r0 - r8;  int e2 = (r4 >> 1) - r12; int e3 = r4 + (r12 >> 1);
  x[0] = (e0 + e3 + 131072) >> 18;  x[12] = (e0 - e3 + 131072) >> 18;
  x[4] = (e1 + e2 + 131072) >> 18;  x[8] = (e1 - e2 + 131072) >> 18;
  int f0 = r1 + r9;  int f1 = r1 - r9;  int f2 = (r5 >> 1) - r13; int f3 = r5 + (r13 >> 1);
  x[1] = (f0 + f3 + 131072) >> 18;  x[13] = (f0 - f3 + 131072) >> 18;
  x[5] = (f1 + f2 + 131072) >> 18;  x[9] = (f1 - f2 + 131072) >> 18;
  int g0 = r2 + r10; int g1 = r2 - r10; int g2 = (r6 >> 1) - r14; int g3 = r6 + (r14 >> 1);
  x[2] = (g0 + g3 + 131072) >> 18;  x[14] = (g0 - g3 + 131072) >> 18;
  x[6] = (g1 + g2 + 131072) >> 18;  x[10] = (g1 - g2 + 131072) >> 18;
  int h0 = r3 + r11; int h1 = r3 - r11; int h2 = (r7 >> 1) - r15; int h3 = r7 + (r15 >> 1);
  x[3] = (h0 + h3 + 131072) >> 18;  x[15] = (h0 - h3 + 131072) >> 18;
  x[7] = (h1 + h2 + 131072) >> 18;  x[11] = (h1 - h2 + 131072) >> 18;
 }
}

int main() {
  unsigned seed = 12345u;
  for (int i = 0; i < 1024; i++) {
    seed = seed * 1103515245u + 12345u;
    blocks[i] = (int)((seed >> 16) & 255u) - 128;
  }
  for (int rep = 0; rep < 16; rep++) {
    forward_all(blocks, coef, 64);
    inverse_all(coef, rec, 64);
  }
  int err = 0;
  unsigned h = 2166136261u;
  for (int i = 0; i < 1024; i++) {
    int d = rec[i] - blocks[i];
    if (d < 0) d = -d;
    if (d > err) err = d;
    h = (h ^ (unsigned)coef[i]) * 16777619u;
  }
  if (err > 1) { printf("dct FAIL err=%d\n", err); return 1; }
  printf("dct OK err=%d checksum=%x\n", err, h);
  return 0;
}
)";
}

// ---------------------------------------------------------------------------
// aes: fully-unrolled AES-128 with runtime-generated T-tables (~4.3 KiB
// working set, exceeding the 2 KiB L1 — the effect the paper discusses).
// ---------------------------------------------------------------------------

std::string aes_source() {
  return std::string(R"(// Fully-unrolled AES-128 encryption with T-tables (paper SVII).
unsigned char sbox[256];
unsigned te0[256];
unsigned te1[256];
unsigned te2[256];
unsigned te3[256];
unsigned rk[44];
)") + kFnvHelper + R"(
int xtime_(int x) {
  x = x << 1;
  if (x & 256) x = x ^ 283;   /* 0x11B */
  return x & 255;
}

void init_sbox(void) {
  int p = 1;
  int q = 1;
  do {
    p = (p ^ ((p << 1) & 255) ^ ((p & 128) ? 27 : 0)) & 255;
    q = (q ^ (q << 1)) & 255;
    q = (q ^ (q << 2)) & 255;
    q = (q ^ (q << 4)) & 255;
    if (q & 128) q = (q ^ 9) & 255;
    int r1 = ((q << 1) | (q >> 7)) & 255;
    int r2 = ((q << 2) | (q >> 6)) & 255;
    int r3 = ((q << 3) | (q >> 5)) & 255;
    int r4 = ((q << 4) | (q >> 4)) & 255;
    sbox[p] = (char)((q ^ r1 ^ r2 ^ r3 ^ r4 ^ 99) & 255);
  } while (p != 1);
  sbox[0] = (char)99;
}

void init_tables(void) {
  init_sbox();
  for (int i = 0; i < 256; i++) {
    int s = sbox[i];
    int s2 = xtime_(s);
    int s3 = s2 ^ s;
    unsigned t = ((unsigned)s2 << 24) | ((unsigned)s << 16) | ((unsigned)s << 8)
               | (unsigned)s3;
    te0[i] = t;
    te1[i] = (t >> 8) | (t << 24);
    te2[i] = (t >> 16) | (t << 16);
    te3[i] = (t >> 24) | (t << 8);
  }
}

unsigned subword(unsigned w) {
  return ((unsigned)sbox[(w >> 24) & 255u] << 24)
       | ((unsigned)sbox[(w >> 16) & 255u] << 16)
       | ((unsigned)sbox[(w >> 8) & 255u] << 8)
       | (unsigned)sbox[w & 255u];
}

void expand_key(unsigned k0, unsigned k1, unsigned k2, unsigned k3) {
  rk[0] = k0; rk[1] = k1; rk[2] = k2; rk[3] = k3;
  int rc = 1;
  for (int i = 4; i < 44; i++) {
    unsigned t = rk[i - 1];
    if ((i & 3) == 0) {
      t = (t << 8) | (t >> 24);
      t = subword(t);
      t = t ^ ((unsigned)rc << 24);
      rc = xtime_(rc);
    }
    rk[i] = rk[i - 4] ^ t;
  }
}

void encrypt(unsigned *in, unsigned *out) {
  unsigned s0 = in[0] ^ rk[0];
  unsigned s1 = in[1] ^ rk[1];
  unsigned s2 = in[2] ^ rk[2];
  unsigned s3 = in[3] ^ rk[3];
  unsigned t0; unsigned t1; unsigned t2; unsigned t3;

  t0 = te0[s0 >> 24] ^ te1[(s1 >> 16) & 255u] ^ te2[(s2 >> 8) & 255u] ^ te3[s3 & 255u] ^ rk[4];
  t1 = te0[s1 >> 24] ^ te1[(s2 >> 16) & 255u] ^ te2[(s3 >> 8) & 255u] ^ te3[s0 & 255u] ^ rk[5];
  t2 = te0[s2 >> 24] ^ te1[(s3 >> 16) & 255u] ^ te2[(s0 >> 8) & 255u] ^ te3[s1 & 255u] ^ rk[6];
  t3 = te0[s3 >> 24] ^ te1[(s0 >> 16) & 255u] ^ te2[(s1 >> 8) & 255u] ^ te3[s2 & 255u] ^ rk[7];
  s0 = te0[t0 >> 24] ^ te1[(t1 >> 16) & 255u] ^ te2[(t2 >> 8) & 255u] ^ te3[t3 & 255u] ^ rk[8];
  s1 = te0[t1 >> 24] ^ te1[(t2 >> 16) & 255u] ^ te2[(t3 >> 8) & 255u] ^ te3[t0 & 255u] ^ rk[9];
  s2 = te0[t2 >> 24] ^ te1[(t3 >> 16) & 255u] ^ te2[(t0 >> 8) & 255u] ^ te3[t1 & 255u] ^ rk[10];
  s3 = te0[t3 >> 24] ^ te1[(t0 >> 16) & 255u] ^ te2[(t1 >> 8) & 255u] ^ te3[t2 & 255u] ^ rk[11];
  t0 = te0[s0 >> 24] ^ te1[(s1 >> 16) & 255u] ^ te2[(s2 >> 8) & 255u] ^ te3[s3 & 255u] ^ rk[12];
  t1 = te0[s1 >> 24] ^ te1[(s2 >> 16) & 255u] ^ te2[(s3 >> 8) & 255u] ^ te3[s0 & 255u] ^ rk[13];
  t2 = te0[s2 >> 24] ^ te1[(s3 >> 16) & 255u] ^ te2[(s0 >> 8) & 255u] ^ te3[s1 & 255u] ^ rk[14];
  t3 = te0[s3 >> 24] ^ te1[(s0 >> 16) & 255u] ^ te2[(s1 >> 8) & 255u] ^ te3[s2 & 255u] ^ rk[15];
  s0 = te0[t0 >> 24] ^ te1[(t1 >> 16) & 255u] ^ te2[(t2 >> 8) & 255u] ^ te3[t3 & 255u] ^ rk[16];
  s1 = te0[t1 >> 24] ^ te1[(t2 >> 16) & 255u] ^ te2[(t3 >> 8) & 255u] ^ te3[t0 & 255u] ^ rk[17];
  s2 = te0[t2 >> 24] ^ te1[(t3 >> 16) & 255u] ^ te2[(t0 >> 8) & 255u] ^ te3[t1 & 255u] ^ rk[18];
  s3 = te0[t3 >> 24] ^ te1[(t0 >> 16) & 255u] ^ te2[(t1 >> 8) & 255u] ^ te3[t2 & 255u] ^ rk[19];
  t0 = te0[s0 >> 24] ^ te1[(s1 >> 16) & 255u] ^ te2[(s2 >> 8) & 255u] ^ te3[s3 & 255u] ^ rk[20];
  t1 = te0[s1 >> 24] ^ te1[(s2 >> 16) & 255u] ^ te2[(s3 >> 8) & 255u] ^ te3[s0 & 255u] ^ rk[21];
  t2 = te0[s2 >> 24] ^ te1[(s3 >> 16) & 255u] ^ te2[(s0 >> 8) & 255u] ^ te3[s1 & 255u] ^ rk[22];
  t3 = te0[s3 >> 24] ^ te1[(s0 >> 16) & 255u] ^ te2[(s1 >> 8) & 255u] ^ te3[s2 & 255u] ^ rk[23];
  s0 = te0[t0 >> 24] ^ te1[(t1 >> 16) & 255u] ^ te2[(t2 >> 8) & 255u] ^ te3[t3 & 255u] ^ rk[24];
  s1 = te0[t1 >> 24] ^ te1[(t2 >> 16) & 255u] ^ te2[(t3 >> 8) & 255u] ^ te3[t0 & 255u] ^ rk[25];
  s2 = te0[t2 >> 24] ^ te1[(t3 >> 16) & 255u] ^ te2[(t0 >> 8) & 255u] ^ te3[t1 & 255u] ^ rk[26];
  s3 = te0[t3 >> 24] ^ te1[(t0 >> 16) & 255u] ^ te2[(t1 >> 8) & 255u] ^ te3[t2 & 255u] ^ rk[27];
  t0 = te0[s0 >> 24] ^ te1[(s1 >> 16) & 255u] ^ te2[(s2 >> 8) & 255u] ^ te3[s3 & 255u] ^ rk[28];
  t1 = te0[s1 >> 24] ^ te1[(s2 >> 16) & 255u] ^ te2[(s3 >> 8) & 255u] ^ te3[s0 & 255u] ^ rk[29];
  t2 = te0[s2 >> 24] ^ te1[(s3 >> 16) & 255u] ^ te2[(s0 >> 8) & 255u] ^ te3[s1 & 255u] ^ rk[30];
  t3 = te0[s3 >> 24] ^ te1[(s0 >> 16) & 255u] ^ te2[(s1 >> 8) & 255u] ^ te3[s2 & 255u] ^ rk[31];
  s0 = te0[t0 >> 24] ^ te1[(t1 >> 16) & 255u] ^ te2[(t2 >> 8) & 255u] ^ te3[t3 & 255u] ^ rk[32];
  s1 = te0[t1 >> 24] ^ te1[(t2 >> 16) & 255u] ^ te2[(t3 >> 8) & 255u] ^ te3[t0 & 255u] ^ rk[33];
  s2 = te0[t2 >> 24] ^ te1[(t3 >> 16) & 255u] ^ te2[(t0 >> 8) & 255u] ^ te3[t1 & 255u] ^ rk[34];
  s3 = te0[t3 >> 24] ^ te1[(t0 >> 16) & 255u] ^ te2[(t1 >> 8) & 255u] ^ te3[t2 & 255u] ^ rk[35];
  t0 = te0[s0 >> 24] ^ te1[(s1 >> 16) & 255u] ^ te2[(s2 >> 8) & 255u] ^ te3[s3 & 255u] ^ rk[36];
  t1 = te0[s1 >> 24] ^ te1[(s2 >> 16) & 255u] ^ te2[(s3 >> 8) & 255u] ^ te3[s0 & 255u] ^ rk[37];
  t2 = te0[s2 >> 24] ^ te1[(s3 >> 16) & 255u] ^ te2[(s0 >> 8) & 255u] ^ te3[s1 & 255u] ^ rk[38];
  t3 = te0[s3 >> 24] ^ te1[(s0 >> 16) & 255u] ^ te2[(s1 >> 8) & 255u] ^ te3[s2 & 255u] ^ rk[39];

  out[0] = (((unsigned)sbox[t0 >> 24] << 24) | ((unsigned)sbox[(t1 >> 16) & 255u] << 16)
          | ((unsigned)sbox[(t2 >> 8) & 255u] << 8) | (unsigned)sbox[t3 & 255u]) ^ rk[40];
  out[1] = (((unsigned)sbox[t1 >> 24] << 24) | ((unsigned)sbox[(t2 >> 16) & 255u] << 16)
          | ((unsigned)sbox[(t3 >> 8) & 255u] << 8) | (unsigned)sbox[t0 & 255u]) ^ rk[41];
  out[2] = (((unsigned)sbox[t2 >> 24] << 24) | ((unsigned)sbox[(t3 >> 16) & 255u] << 16)
          | ((unsigned)sbox[(t0 >> 8) & 255u] << 8) | (unsigned)sbox[t1 & 255u]) ^ rk[42];
  out[3] = (((unsigned)sbox[t3 >> 24] << 24) | ((unsigned)sbox[(t0 >> 16) & 255u] << 16)
          | ((unsigned)sbox[(t1 >> 8) & 255u] << 8) | (unsigned)sbox[t2 & 255u]) ^ rk[43];
}

unsigned pt[4];
unsigned ct[4];

int main() {
  init_tables();
  expand_key(0x00010203u, 0x04050607u, 0x08090a0bu, 0x0c0d0e0fu);

  /* FIPS-197 known-answer test. */
  pt[0] = 0x00112233u; pt[1] = 0x44556677u; pt[2] = 0x8899aabbu; pt[3] = 0xccddeeffu;
  encrypt(pt, ct);
  if (ct[0] != 0x69c4e0d8u || ct[1] != 0x6a7b0430u ||
      ct[2] != 0xd8cdb780u || ct[3] != 0x70b4c55au) {
    printf("aes FAIL kat %x %x %x %x\n", ct[0], ct[1], ct[2], ct[3]);
    return 1;
  }

  /* Counter-mode style bulk encryption for the workload. */
  unsigned h = 2166136261u;
  for (int i = 0; i < 96; i++) {
    pt[0] = (unsigned)i; pt[1] = (unsigned)(i * 7 + 1);
    pt[2] = (unsigned)(i * 13 + 2); pt[3] = (unsigned)(i * 29 + 3);
    encrypt(pt, ct);
    h = fnv(h, (int)ct[0]); h = fnv(h, (int)ct[1]);
    h = fnv(h, (int)ct[2]); h = fnv(h, (int)ct[3]);
  }
  printf("aes OK checksum=%x\n", h);
  return 0;
}
)";
}

// ---------------------------------------------------------------------------
// fft: recursive fixed-point radix-2 FFT (the recursion limits ILP, as the
// paper points out in SVII-B).
// ---------------------------------------------------------------------------

std::string fft_source() {
  constexpr int kN = 256;
  std::vector<int> twc(kN / 2);
  std::vector<int> tws(kN / 2);
  for (int k = 0; k < kN / 2; ++k) {
    const double ang = 2.0 * M_PI * k / kN;
    twc[static_cast<size_t>(k)] = static_cast<int>(std::lround(std::cos(ang) * 16384.0));
    tws[static_cast<size_t>(k)] = static_cast<int>(std::lround(std::sin(ang) * 16384.0));
  }
  return "// Recursive fixed-point FFT, N=256, Q14 twiddles (paper SVII).\n" +
         int_table("twc", twc) + int_table("tws", tws) + R"(
int xr[256];
int xi[256];
int fr[256];
int fi[256];
int scr[256];
int sci[256];
)" + kFnvHelper + R"(
void fft_rec(int *re, int *im, int n, int st, int *sre, int *sim, int inv) {
  if (n < 2) return;
  int h = n >> 1;
  for (int i = 0; i < h; i++) {
    sre[i] = re[2 * i];     sim[i] = im[2 * i];
    sre[h + i] = re[2 * i + 1]; sim[h + i] = im[2 * i + 1];
  }
  for (int i = 0; i < n; i++) { re[i] = sre[i]; im[i] = sim[i]; }
  fft_rec(re, im, h, st * 2, sre, sim, inv);
  fft_rec(re + h, im + h, h, st * 2, sre + h, sim + h, inv);
  for (int k = 0; k < h; k++) {
    int c = twc[k * st];
    int s = tws[k * st];
    int orr = re[h + k];
    int oii = im[h + k];
    int tr; int ti;
    if (inv) {
      tr = (orr * c - oii * s) >> 14;
      ti = (oii * c + orr * s) >> 14;
    } else {
      tr = (orr * c + oii * s) >> 14;
      ti = (oii * c - orr * s) >> 14;
    }
    int ar = re[k];
    int ai = im[k];
    if (inv) {
      re[k] = ar + tr;      im[k] = ai + ti;
      re[h + k] = ar - tr;  im[h + k] = ai - ti;
    } else {
      re[k] = (ar + tr) >> 1;     im[k] = (ai + ti) >> 1;
      re[h + k] = (ar - tr) >> 1; im[h + k] = (ai - ti) >> 1;
    }
  }
}

int main() {
  for (int i = 0; i < 256; i++) {
    /* Two tones plus a ramp, from the twiddle tables (no floats needed). */
    xr[i] = (twc[(i * 3) & 127] >> 2) + (tws[(i * 7) & 127] >> 3) + (i & 15);
    xi[i] = 0;
    fr[i] = xr[i];
    fi[i] = 0;
  }
  fft_rec(fr, fi, 256, 1, scr, sci, 0);
  unsigned h = 2166136261u;
  for (int i = 0; i < 256; i++) { h = fnv(h, fr[i]); h = fnv(h, fi[i]); }
  fft_rec(fr, fi, 256, 1, scr, sci, 1);
  int err = 0;
  for (int i = 0; i < 256; i++) {
    int d = fr[i] - xr[i];
    if (d < 0) d = -d;
    if (d > err) err = d;
    d = fi[i];
    if (d < 0) d = -d;
    if (d > err) err = d;
  }
  if (err > 96) { printf("fft FAIL err=%d\n", err); return 1; }
  printf("fft OK err=%d checksum=%x\n", err, h);
  return 0;
}
)";
}

// ---------------------------------------------------------------------------
// qsort: recursive quicksort.
// ---------------------------------------------------------------------------

std::string qsort_source() {
  return std::string(R"(// Recursive quicksort (paper SVII).
int data[2048];
)") + kFnvHelper + R"(
void qs(int *a, int lo, int hi) {
  if (lo >= hi) return;
  int p = a[(lo + hi) >> 1];
  int i = lo;
  int j = hi;
  while (i <= j) {
    while (a[i] < p) i++;
    while (a[j] > p) j--;
    if (i <= j) {
      int t = a[i];
      a[i] = a[j];
      a[j] = t;
      i++;
      j--;
    }
  }
  qs(a, lo, j);
  qs(a, i, hi);
}

int main() {
  unsigned seed = 99991u;
  for (int i = 0; i < 2048; i++) {
    seed = seed * 1103515245u + 12345u;
    data[i] = (int)(seed >> 8) % 100000;
  }
  qs(data, 0, 2047);
  unsigned h = 2166136261u;
  for (int i = 0; i < 2048; i++) {
    if (i > 0 && data[i - 1] > data[i]) {
      printf("qsort FAIL at %d\n", i);
      return 1;
    }
    h = fnv(h, data[i]);
  }
  printf("qsort OK checksum=%x\n", h);
  return 0;
}
)";
}

// ---------------------------------------------------------------------------
// cjpeg / djpeg: JPEG-like codec (8x8 integer DCT, quantization, zigzag,
// run-length coding).  Shared core emitted into both programs.
// ---------------------------------------------------------------------------

std::string jpeg_tables() {
  // Orthonormal 8x8 DCT-II matrix in Q13.
  std::vector<int> dctm(64);
  for (int u = 0; u < 8; ++u)
    for (int x = 0; x < 8; ++x) {
      const double cu = u == 0 ? std::sqrt(0.5) : 1.0;
      const double v = 0.5 * cu * std::cos((2 * x + 1) * u * M_PI / 16.0);
      dctm[static_cast<size_t>(u * 8 + x)] = static_cast<int>(std::lround(v * 8192.0));
    }
  // Standard JPEG luminance quantization table (quality 50).
  const std::vector<int> qtab = {
      16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
      14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
      18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
      49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};
  const std::vector<int> zz = {
      0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
      12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
      35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
      58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};
  return int_table("dctm", dctm) + int_table("qtab", qtab) + int_table("zz", zz);
}

/// Core shared by cjpeg and djpeg: image generation, fdct, quantize, RLE.
std::string jpeg_core() {
  return std::string(R"(
int img[1024];        /* 32x32 pixels, level shifted */
int blk[64];
int tmp8[64];
int coef[64];
int qc[1024];         /* quantized coefficients, 16 blocks x 64 */
unsigned char stream[6144];
int nbytes;
)") + kFnvHelper + R"(
void make_image(void) {
  unsigned seed = 777u;
  for (int y = 0; y < 32; y++) {
    for (int x = 0; x < 32; x++) {
      seed = seed * 1103515245u + 12345u;
      int v = ((x * 3 + y * 5) & 127) + (int)((seed >> 20) & 15u);
      img[y * 32 + x] = v - 64;
    }
  }
}

void fdct8(int *b, int *out) {
  for (int u = 0; u < 8; u++) {
    for (int x = 0; x < 8; x++) {
      int acc = 0;
      for (int k = 0; k < 8; k++) acc += dctm[u * 8 + k] * b[k * 8 + x];
      tmp8[u * 8 + x] = (acc + 4096) >> 13;
    }
  }
  for (int u = 0; u < 8; u++) {
    for (int v = 0; v < 8; v++) {
      int acc = 0;
      for (int k = 0; k < 8; k++) acc += tmp8[u * 8 + k] * dctm[v * 8 + k];
      out[u * 8 + v] = (acc + 4096) >> 13;
    }
  }
}

int quant1(int c, int q) {
  if (c >= 0) return (c + (q >> 1)) / q;
  return -((-c + (q >> 1)) / q);
}

void emit_byte(int v) {
  stream[nbytes] = (char)(v & 255);
  nbytes++;
}

void encode_block(int *q, int blkidx) {
  int run = 0;
  for (int i = 0; i < 64; i++) {
    int v = q[zz[i]];
    qc[blkidx * 64 + i] = v;     /* zigzag order for the decoder test */
    if (v == 0) {
      run++;
    } else {
      while (run > 14) { emit_byte(254); run -= 15; } /* zero-run marker */
      emit_byte(run << 4 | (v < 0 ? 1 : 0));
      int a = v < 0 ? -v : v;
      emit_byte(a & 255);
      emit_byte((a >> 8) & 255);
      run = 0;
    }
  }
  emit_byte(255); /* end of block */
}

void encode_image(void) {
  nbytes = 0;
  for (int by = 0; by < 4; by++) {
    for (int bx = 0; bx < 4; bx++) {
      for (int r = 0; r < 8; r++)
        for (int c = 0; c < 8; c++)
          blk[r * 8 + c] = img[(by * 8 + r) * 32 + bx * 8 + c];
      fdct8(blk, coef);
      for (int i = 0; i < 64; i++) coef[i] = quant1(coef[i], qtab[i]);
      encode_block(coef, by * 4 + bx);
    }
  }
}
)";
}

std::string cjpeg_source() {
  return "// JPEG-like encoder (paper SVII, cjpeg stand-in).\n" + jpeg_tables() +
         jpeg_core() + R"(
int main() {
  make_image();
  for (int rep = 0; rep < 4; rep++) encode_image();
  if (nbytes <= 0 || nbytes >= 2048) { printf("cjpeg FAIL bytes=%d\n", nbytes); return 1; }
  unsigned h = 2166136261u;
  for (int i = 0; i < nbytes; i++) h = fnv(h, stream[i]);
  printf("cjpeg OK bytes=%d checksum=%x\n", nbytes, h);
  return 0;
}
)";
}

std::string djpeg_source() {
  return "// JPEG-like decoder (paper SVII, djpeg stand-in).\n" + jpeg_tables() +
         jpeg_core() + R"(
int dq[64];
int rec[1024];
int spos;

int next_byte(void) {
  int v = stream[spos];
  spos++;
  return v;
}

void decode_block(int *out) {
  for (int i = 0; i < 64; i++) out[i] = 0;
  int i = 0;
  while (i < 64) {
    int b = next_byte();
    if (b == 255) return;
    if (b == 254) { i += 15; continue; }
    int run = b >> 4;
    int neg = b & 1;
    int lo = next_byte();
    int hi = next_byte();
    int a = (hi << 8) | lo;
    i += run;
    out[zz[i]] = neg ? -a : a;
    i++;
  }
  next_byte(); /* consume end marker */
}

void idct8(int *in, int *out) {
  for (int x = 0; x < 8; x++) {
    for (int v = 0; v < 8; v++) {
      int acc = 0;
      for (int u = 0; u < 8; u++) acc += dctm[u * 8 + x] * in[u * 8 + v];
      tmp8[x * 8 + v] = (acc + 4096) >> 13;
    }
  }
  for (int x = 0; x < 8; x++) {
    for (int y = 0; y < 8; y++) {
      int acc = 0;
      for (int v = 0; v < 8; v++) acc += tmp8[x * 8 + v] * dctm[v * 8 + y];
      out[x * 8 + y] = (acc + 4096) >> 13;
    }
  }
}

int main() {
  make_image();
  encode_image();             /* produce the stream to decode */
  spos = 0;
  for (int by = 0; by < 4; by++) {
    for (int bx = 0; bx < 4; bx++) {
      decode_block(dq);
      for (int i = 0; i < 64; i++) dq[i] = dq[i] * qtab[i];
      idct8(dq, blk);
      for (int r = 0; r < 8; r++)
        for (int c = 0; c < 8; c++)
          rec[(by * 8 + r) * 32 + bx * 8 + c] = blk[r * 8 + c];
    }
  }
  int err = 0;
  unsigned h = 2166136261u;
  for (int i = 0; i < 1024; i++) {
    int d = rec[i] - img[i];
    if (d < 0) d = -d;
    if (d > err) err = d;
    h = fnv(h, rec[i]);
  }
  if (err > 120) { printf("djpeg FAIL err=%d\n", err); return 1; }
  printf("djpeg OK err=%d checksum=%x\n", err, h);
  return 0;
}
)";
}

} // namespace

const std::vector<Workload>& all() {
  static const std::vector<Workload> kWorkloads = {
      {"cjpeg", "JPEG-like encoder (8x8 DCT + quantization + RLE)", cjpeg_source()},
      {"djpeg", "JPEG-like decoder (RLE + dequantization + IDCT)", djpeg_source()},
      {"fft", "recursive fixed-point radix-2 FFT, N=256", fft_source()},
      {"qsort", "recursive quicksort of 2048 integers", qsort_source()},
      {"aes", "fully-unrolled AES-128 with T-tables", aes_source()},
      {"dct", "H.264 4x4 integer DCT, fully unrolled", dct_source()},
  };
  return kWorkloads;
}

const Workload& by_name(const std::string& name) {
  for (const Workload& w : all())
    if (w.name == name) return w;
  throw Error("unknown workload '" + name + "'");
}

} // namespace ksim::workloads
