#include "cycle/mem_hierarchy.h"

#include <algorithm>

#include "support/bits.h"
#include "support/error.h"
#include "support/strings.h"

namespace ksim::cycle {

namespace {

void save_stats(support::ByteWriter& w, const MemModuleStats& stats) {
  w.u64(stats.accesses);
  w.u64(stats.hits);
  w.u64(stats.misses);
  w.u64(stats.writebacks);
  w.u64(stats.port_stalls);
}

void restore_stats(support::ByteReader& r, MemModuleStats& stats) {
  stats.accesses = r.u64();
  stats.hits = r.u64();
  stats.misses = r.u64();
  stats.writebacks = r.u64();
  stats.port_stalls = r.u64();
}

} // namespace

// -- MainMemory ----------------------------------------------------------------

uint64_t MainMemory::access(uint32_t /*addr*/, AccessType /*type*/, int /*slot*/,
                            uint64_t start) {
  ++stats_.accesses;
  return start + delay_;
}

void MainMemory::reset() { stats_ = {}; }

std::string MainMemory::describe() const { return strf("memory(delay=%u)", delay_); }

void MainMemory::save(support::ByteWriter& w) const { save_stats(w, stats_); }

void MainMemory::restore(support::ByteReader& r) { restore_stats(r, stats_); }

// -- CacheModule ----------------------------------------------------------------

CacheModule::CacheModule(const CacheConfig& config, MemModule* next)
    : config_(config), next_(next) {
  check(is_pow2(config.size_bytes) && is_pow2(config.line_size) &&
            config.associativity > 0 && config.line_size > 0,
        "CacheModule: size and line size must be powers of two");
  check(config.size_bytes % (config.line_size * config.associativity) == 0,
        "CacheModule: size not divisible by line_size*associativity");
  check(next != nullptr, "CacheModule: missing next-level module");
  num_sets_ = config.size_bytes / (config.line_size * config.associativity);
  lines_.resize(static_cast<size_t>(num_sets_) * config.associativity);
}

uint64_t CacheModule::access(uint32_t addr, AccessType type, int slot, uint64_t start) {
  ++stats_.accesses;
  // "Within the delay function the current cycle is initialized by the start
  // cycle plus the access delay."
  uint64_t current = start + config_.delay;

  const uint32_t set = set_index(addr);
  const uint32_t tag = tag_of(addr);
  Line* set_base = &lines_[static_cast<size_t>(set) * config_.associativity];

  // Hit: completion is the maximum of the current cycle and the cycle the
  // line was written (the line may have been filled by a "later" call that
  // executed earlier — out-of-order call support).
  for (uint32_t w = 0; w < config_.associativity; ++w) {
    Line& line = set_base[w];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      line.lru = ++lru_counter_;
      if (type == AccessType::Write) line.dirty = true;
      return std::max(current, line.write_cycle);
    }
  }

  // Miss: fetch the line from the next level (write-allocate).
  ++stats_.misses;
  uint32_t victim = 0;
  for (uint32_t w = 1; w < config_.associativity; ++w) {
    const Line& cand = set_base[w];
    const Line& best = set_base[victim];
    if (!cand.valid) {
      victim = w;
      break;
    }
    if (best.valid && cand.lru < best.lru) victim = w;
  }
  Line& line = set_base[victim];

  current = next_->access(addr, AccessType::Read, slot, current);
  if (line.valid && line.dirty) {
    ++stats_.writebacks;
    const uint32_t victim_addr =
        (line.tag * num_sets_ + set) * config_.line_size;
    current = next_->access(victim_addr, AccessType::Write, slot, current);
  }
  // "After the subaccess the data must be stored inside the cache, so the
  // cache delay is added again."
  current += config_.delay;

  line.valid = true;
  line.dirty = (type == AccessType::Write);
  line.tag = tag;
  line.write_cycle = current;
  line.lru = ++lru_counter_;
  return current;
}

void CacheModule::reset() {
  std::fill(lines_.begin(), lines_.end(), Line{});
  lru_counter_ = 0;
  stats_ = {};
}

void CacheModule::save(support::ByteWriter& w) const {
  save_stats(w, stats_);
  w.u64(lru_counter_);
  w.u64(lines_.size());
  for (const Line& line : lines_) {
    w.u32(line.tag);
    w.u8(static_cast<uint8_t>((line.valid ? 1u : 0u) | (line.dirty ? 2u : 0u)));
    w.u64(line.write_cycle);
    w.u64(line.lru);
  }
}

void CacheModule::restore(support::ByteReader& r) {
  restore_stats(r, stats_);
  lru_counter_ = r.u64();
  const uint64_t count = r.u64();
  check(count == lines_.size(),
        strf("checkpoint %s geometry mismatch (%llu lines vs %zu)",
             config_.name.c_str(), static_cast<unsigned long long>(count),
             lines_.size()));
  for (Line& line : lines_) {
    line.tag = r.u32();
    const uint8_t flags = r.u8();
    line.valid = (flags & 1u) != 0;
    line.dirty = (flags & 2u) != 0;
    line.write_cycle = r.u64();
    line.lru = r.u64();
  }
}

std::string CacheModule::describe() const {
  return strf("%s(%u B, %u-way, %u B lines, delay=%u)", config_.name.c_str(),
              config_.size_bytes, config_.associativity, config_.line_size, config_.delay);
}

// -- ConnectionLimit ---------------------------------------------------------------

uint64_t ConnectionLimit::claim(uint64_t cycle) {
  // Find the first cycle >= `cycle` with a free port and reserve it.
  while (true) {
    unsigned& used = used_[cycle];
    if (used < ports_) {
      ++used;
      max_cycle_seen_ = std::max(max_cycle_seen_, cycle);
      return cycle;
    }
    ++stats_.port_stalls;
    ++cycle;
  }
}

void ConnectionLimit::prune(uint64_t below) {
  for (auto it = used_.begin(); it != used_.end();)
    it = (it->first < below) ? used_.erase(it) : std::next(it);
}

uint64_t ConnectionLimit::access(uint32_t addr, AccessType type, int slot,
                                 uint64_t start) {
  ++stats_.accesses;
  const uint64_t granted_start = claim(start);
  uint64_t completion = next_->access(addr, type, slot, granted_start);
  // "The same mechanism is applied to the completion cycle that is returned
  // from the submodule."
  completion = claim(completion);
  // Keep the reservation table bounded; accesses arrive in roughly
  // monotonic program order, so far-past cycles can be dropped.
  if (used_.size() > (1u << 16) && max_cycle_seen_ > (1u << 15))
    prune(max_cycle_seen_ - (1u << 15));
  return completion;
}

void ConnectionLimit::reset() {
  used_.clear();
  max_cycle_seen_ = 0;
  stats_ = {};
}

std::string ConnectionLimit::describe() const {
  return strf("connection_limit(ports=%u)", ports_);
}

void ConnectionLimit::save(support::ByteWriter& w) const {
  save_stats(w, stats_);
  w.u64(max_cycle_seen_);
  // Canonical (sorted) order so identical reservation state always encodes
  // to identical bytes regardless of hash-map layout.
  std::vector<std::pair<uint64_t, unsigned>> entries(used_.begin(), used_.end());
  std::sort(entries.begin(), entries.end());
  w.u64(entries.size());
  for (const auto& [cycle, ports] : entries) {
    w.u64(cycle);
    w.u32(ports);
  }
}

void ConnectionLimit::restore(support::ByteReader& r) {
  restore_stats(r, stats_);
  max_cycle_seen_ = r.u64();
  used_.clear();
  const uint64_t count = r.u64();
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t cycle = r.u64();
    used_[cycle] = r.u32();
  }
}

// -- MemGeometry ---------------------------------------------------------------------

void MemGeometry::validate() const {
  auto fail = [](const std::string& message) { throw ConfigError(message); };
  if (line_size < 4 || !is_pow2(line_size))
    fail(strf("memory.line_size must be a power of two >= 4 (got %u)", line_size));
  auto level = [&](const char* name, const LevelGeometry& g) {
    if (g.sets == 0 || !is_pow2(g.sets))
      fail(strf("memory.%s.sets must be a power of two (got %u)", name, g.sets));
    if (g.ways == 0 || !is_pow2(g.ways))
      fail(strf("memory.%s.ways must be a power of two (got %u)", name, g.ways));
    if (g.hit_latency == 0)
      fail(strf("memory.%s.hit_latency must be >= 1 cycle", name));
    const uint64_t bytes = uint64_t{g.sets} * g.ways * line_size;
    if (bytes > (1u << 30))
      fail(strf("memory.%s capacity %llu B exceeds 1 GiB", name,
                static_cast<unsigned long long>(bytes)));
  };
  level("l1", l1);
  level("l2", l2);
  if (ports == 0) fail("memory.ports must be >= 1");
  if (miss_latency == 0) fail("memory.miss_latency must be >= 1 cycle");
}

HierarchyConfig MemGeometry::hierarchy_config() const {
  HierarchyConfig config;
  config.l1_ports = ports;
  config.l1 = CacheConfig{l1.sets * l1.ways * line_size, line_size, l1.ways,
                          l1.hit_latency, "L1"};
  config.l2 = CacheConfig{l2.sets * l2.ways * line_size, line_size, l2.ways,
                          l2.hit_latency, "L2"};
  config.memory_delay = miss_latency;
  return config;
}

uint64_t MemGeometry::area_proxy() const {
  const uint64_t l1_bytes = uint64_t{l1.sets} * l1.ways * line_size;
  const uint64_t l2_bytes = uint64_t{l2.sets} * l2.ways * line_size;
  const uint64_t lines =
      uint64_t{l1.sets} * l1.ways + uint64_t{l2.sets} * l2.ways;
  return l1_bytes + l2_bytes + 4 * lines + (ports - 1) * (l1_bytes / 2);
}

std::string MemGeometry::id() const {
  return strf("l1:%ux%u@%u,l2:%ux%u@%u,line:%u,ports:%u,mem:%u", l1.sets,
              l1.ways, l1.hit_latency, l2.sets, l2.ways, l2.hit_latency,
              line_size, ports, miss_latency);
}

void MemGeometry::save(support::ByteWriter& w) const {
  w.u32(line_size);
  w.u32(l1.sets);
  w.u32(l1.ways);
  w.u32(l1.hit_latency);
  w.u32(l2.sets);
  w.u32(l2.ways);
  w.u32(l2.hit_latency);
  w.u32(ports);
  w.u32(miss_latency);
}

void MemGeometry::restore(support::ByteReader& r) {
  line_size = r.u32();
  l1.sets = r.u32();
  l1.ways = r.u32();
  l1.hit_latency = r.u32();
  l2.sets = r.u32();
  l2.ways = r.u32();
  l2.hit_latency = r.u32();
  ports = r.u32();
  miss_latency = r.u32();
}

// -- MemoryHierarchy -----------------------------------------------------------------

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config) {
  memory_ = std::make_unique<MainMemory>(config.memory_delay);
  l2_ = std::make_unique<CacheModule>(config.l2, memory_.get());
  l1_ = std::make_unique<CacheModule>(config.l1, l2_.get());
  limit_ = std::make_unique<ConnectionLimit>(config.l1_ports, l1_.get());
  entry_ = limit_.get();
}

void MemoryHierarchy::reset() {
  memory_->reset();
  l2_->reset();
  l1_->reset();
  limit_->reset();
}

void MemoryHierarchy::save(support::ByteWriter& w) const {
  limit_->save(w);
  l1_->save(w);
  l2_->save(w);
  memory_->save(w);
}

void MemoryHierarchy::restore(support::ByteReader& r) {
  limit_->restore(r);
  l1_->restore(r);
  l2_->restore(r);
  memory_->restore(r);
}

} // namespace ksim::cycle
