// The three cycle-approximation models of the paper (§VI):
//   * IlpModel — theoretical ILP upper bound (infinite issue width, infinite
//     renaming registers, ideal 3-cycle memory, unlimited parallel memory
//     accesses; limited only by true data dependencies, branch boundaries and
//     the pessimistic store ordering, §VI-A),
//   * AieModel — Atomic Instruction Execution (§VI-B),
//   * DoeModel — Dynamic Operation Execution with drifting slots (§VI-C).
// AIE and DOE use the memory delay approximation (§VI-D); ILP uses a fixed
// three-cycle memory delay.
#pragma once

#include <array>

#include "cycle/branch_predict.h"
#include "cycle/cycle_model.h"
#include "cycle/mem_hierarchy.h"

namespace ksim::cycle {

namespace detail {

/// Tracks per-register last-write cycles (32 general registers; the IP is
/// excluded — control dependencies are modelled separately).
class RegCycles {
public:
  uint64_t max_of_sources(const isa::DecodedOp& op) const;
  void write_destinations(const isa::DecodedOp& op, uint64_t completion);
  void reset() { cycles_.fill(0); }

  void save(support::ByteWriter& w) const {
    for (const uint64_t c : cycles_) w.u64(c);
  }
  void restore(support::ByteReader& r) {
    for (uint64_t& c : cycles_) c = r.u64();
  }

private:
  std::array<uint64_t, 32> cycles_{};
};

} // namespace detail

/// Theoretical ILP measurement (§VI-A).  Intended to run over a RISC
/// instruction stream.
class IlpModel final : public CycleModel {
public:
  /// `memory_delay` is the ideal memory latency (3 = the paper's L1 delay).
  explicit IlpModel(unsigned memory_delay = 3) : memory_delay_(memory_delay) {}

  void on_instruction(const isa::DecodedInstr& di, const isa::ExecCtx& ctx) override;
  uint64_t cycles() const override { return max_completion_; }
  uint64_t operations() const override { return operations_; }
  void reset() override;
  std::string name() const override { return "ILP"; }
  void save(support::ByteWriter& w) const override;
  void restore(support::ByteReader& r) override;

  /// The theoretical ILP value: operations / cycles.
  double ilp() const { return ops_per_cycle(); }

private:
  unsigned memory_delay_;
  detail::RegCycles regs_;
  uint64_t last_branch_completion_ = 0;
  uint64_t last_store_start_ = 0;
  uint64_t max_completion_ = 0;
  uint64_t operations_ = 0;
};

/// Atomic Instruction Execution (§VI-B): all operations of an instruction
/// issue together; the next instruction waits for all of them to finish.
class AieModel final : public CycleModel {
public:
  explicit AieModel(MemoryHierarchy* memory) : memory_(memory) {}

  /// Attaches a branch-misprediction model (default: perfect prediction).
  /// A mispredicted branch stalls instruction delivery for `penalty` cycles
  /// after the branch completes.
  void set_branch_prediction(BranchPredictor* predictor, unsigned penalty) {
    predictor_ = predictor;
    mispredict_penalty_ = penalty;
  }

  void on_instruction(const isa::DecodedInstr& di, const isa::ExecCtx& ctx) override;
  uint64_t cycles() const override { return completion_; }
  uint64_t operations() const override { return operations_; }
  void reset() override;
  std::string name() const override { return "AIE"; }
  void save(support::ByteWriter& w) const override;
  void restore(support::ByteReader& r) override;

private:
  MemoryHierarchy* memory_;
  BranchPredictor* predictor_ = nullptr;
  unsigned mispredict_penalty_ = 0;
  uint64_t completion_ = 0;
  uint64_t operations_ = 0;
};

/// Dynamic Operation Execution (§VI-C): slots issue independently and may
/// drift; an operation issues once the previous operation of its slot has
/// issued (+1 cycle) and its true data dependencies are fulfilled.
class DoeModel final : public CycleModel {
public:
  explicit DoeModel(MemoryHierarchy* memory) : memory_(memory) {}

  /// Attaches a branch-misprediction model (default: perfect prediction, as
  /// used for Table II).  On a mispredict no operation can issue earlier
  /// than the branch's completion plus `penalty` (pipeline refill).
  void set_branch_prediction(BranchPredictor* predictor, unsigned penalty) {
    predictor_ = predictor;
    mispredict_penalty_ = penalty;
  }

  void on_instruction(const isa::DecodedInstr& di, const isa::ExecCtx& ctx) override;
  uint64_t cycles() const override { return max_completion_; }
  uint64_t operations() const override { return operations_; }
  void reset() override;
  std::string name() const override { return "DOE"; }
  void save(support::ByteWriter& w) const override;
  void restore(support::ByteReader& r) override;

private:
  MemoryHierarchy* memory_;
  BranchPredictor* predictor_ = nullptr;
  unsigned mispredict_penalty_ = 0;
  uint64_t fetch_ready_ = 0; ///< earliest issue after the last mispredict
  detail::RegCycles regs_;
  std::array<uint64_t, isa::kMaxSlots> slot_last_issue_{};
  uint64_t max_completion_ = 0;
  uint64_t operations_ = 0;
};

} // namespace ksim::cycle
