#include "cycle/branch_predict.h"

#include "support/bits.h"
#include "support/error.h"

namespace ksim::cycle {

namespace {

void save_table(support::ByteWriter& w, const std::vector<uint8_t>& table) {
  w.u64(table.size());
  w.bytes(table.data(), table.size());
}

void restore_table(support::ByteReader& r, std::vector<uint8_t>& table,
                   const char* who) {
  const uint64_t size = r.u64();
  check(size == table.size(),
        std::string(who) + ": checkpoint predictor table size mismatch");
  r.bytes(table.data(), table.size());
}

} // namespace

OneBitPredictor::OneBitPredictor(size_t entries) : table_(entries, 0) {
  check(is_pow2(entries), "OneBitPredictor: table size must be a power of two");
}

bool OneBitPredictor::predict(uint32_t pc) { return table_[index(pc)] != 0; }

void OneBitPredictor::update(uint32_t pc, bool taken) {
  table_[index(pc)] = taken ? 1 : 0;
}

void OneBitPredictor::reset() {
  std::fill(table_.begin(), table_.end(), 0);
  reset_stats();
}

void OneBitPredictor::do_save(support::ByteWriter& w) const { save_table(w, table_); }

void OneBitPredictor::do_restore(support::ByteReader& r) {
  restore_table(r, table_, "1-bit");
}

TwoBitPredictor::TwoBitPredictor(size_t entries) : table_(entries, 1) {
  check(is_pow2(entries), "TwoBitPredictor: table size must be a power of two");
}

bool TwoBitPredictor::predict(uint32_t pc) { return table_[index(pc)] >= 2; }

void TwoBitPredictor::update(uint32_t pc, bool taken) {
  uint8_t& counter = table_[index(pc)];
  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
}

void TwoBitPredictor::reset() {
  std::fill(table_.begin(), table_.end(), 1);
  reset_stats();
}

void TwoBitPredictor::do_save(support::ByteWriter& w) const { save_table(w, table_); }

void TwoBitPredictor::do_restore(support::ByteReader& r) {
  restore_table(r, table_, "2-bit");
}

GsharePredictor::GsharePredictor(unsigned history_bits)
    : table_(size_t{1} << history_bits, 1),
      history_mask_((1u << history_bits) - 1u) {
  check(history_bits >= 1 && history_bits <= 20, "GsharePredictor: bad history size");
}

bool GsharePredictor::predict(uint32_t pc) { return table_[index(pc)] >= 2; }

void GsharePredictor::update(uint32_t pc, bool taken) {
  uint8_t& counter = table_[index(pc)];
  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

void GsharePredictor::reset() {
  std::fill(table_.begin(), table_.end(), 1);
  history_ = 0;
  reset_stats();
}

void GsharePredictor::do_save(support::ByteWriter& w) const {
  save_table(w, table_);
  w.u32(history_);
}

void GsharePredictor::do_restore(support::ByteReader& r) {
  restore_table(r, table_, "gshare");
  history_ = r.u32();
}

std::unique_ptr<BranchPredictor> make_predictor(const std::string& kind) {
  if (kind == "not-taken") return std::make_unique<NotTakenPredictor>();
  if (kind == "taken") return std::make_unique<TakenPredictor>();
  if (kind == "1bit") return std::make_unique<OneBitPredictor>();
  if (kind == "2bit") return std::make_unique<TwoBitPredictor>();
  if (kind == "gshare") return std::make_unique<GsharePredictor>();
  throw Error("unknown branch predictor '" + kind + "'");
}

} // namespace ksim::cycle
