// Memory delay approximation (paper §VI-D).
//
// A memory hierarchy is composed from three module types sharing one
// interface — a function that returns the completion cycle of a memory
// access given its start cycle:
//   * MainMemory       — fixed access delay,
//   * CacheModule      — n-way set-associative, write-back, LRU; each line
//                        remembers the cycle it was written so the module
//                        stays correct when called out of (cycle) order,
//   * ConnectionLimit  — bounded number of ports per cycle, applied to both
//                        the start and the returned completion cycle.
//
// The delay functions are called in *program order* while the modelled
// hardware may execute accesses out of order; the line write-cycle and port
// bookkeeping absorb that, as described in the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/byte_stream.h"

namespace ksim::cycle {

enum class AccessType : uint8_t { Read, Write };

/// Statistics of one module (reported by the ablation benches).
struct MemModuleStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;       ///< caches only
  uint64_t misses = 0;     ///< caches only
  uint64_t writebacks = 0; ///< caches only
  uint64_t port_stalls = 0;///< connection limits only
};

class MemModule {
public:
  virtual ~MemModule() = default;

  /// Returns the completion cycle of the access starting at `start`.
  virtual uint64_t access(uint32_t addr, AccessType type, int slot, uint64_t start) = 0;

  /// Clears all state (cache contents, port reservations) and statistics.
  virtual void reset() = 0;

  virtual const MemModuleStats& stats() const = 0;
  virtual std::string describe() const = 0;

  /// Serializes / restores the module's dynamic state (line contents, port
  /// reservations, statistics) for kckpt.  Configuration (geometry, delays)
  /// is not serialized — restore() targets an identically configured module
  /// and throws ksim::Error on a shape mismatch.  Default: stateless.
  virtual void save(support::ByteWriter&) const {}
  virtual void restore(support::ByteReader&) {}
};

/// Main memory: completion = start + delay.
class MainMemory final : public MemModule {
public:
  explicit MainMemory(unsigned delay) : delay_(delay) {}

  uint64_t access(uint32_t addr, AccessType type, int slot, uint64_t start) override;
  void reset() override;
  const MemModuleStats& stats() const override { return stats_; }
  std::string describe() const override;
  void save(support::ByteWriter& w) const override;
  void restore(support::ByteReader& r) override;

private:
  unsigned delay_;
  MemModuleStats stats_;
};

struct CacheConfig {
  uint32_t size_bytes = 2048;
  uint32_t line_size = 32;
  uint32_t associativity = 4;
  unsigned delay = 3;
  std::string name = "cache";
};

/// n-way set-associative cache with write-back policy and LRU replacement.
class CacheModule final : public MemModule {
public:
  CacheModule(const CacheConfig& config, MemModule* next);

  uint64_t access(uint32_t addr, AccessType type, int slot, uint64_t start) override;
  void reset() override;
  const MemModuleStats& stats() const override { return stats_; }
  std::string describe() const override;
  void save(support::ByteWriter& w) const override;
  void restore(support::ByteReader& r) override;

  const CacheConfig& config() const { return config_; }
  double miss_rate() const {
    return stats_.accesses == 0
               ? 0.0
               : static_cast<double>(stats_.misses) / static_cast<double>(stats_.accesses);
  }

private:
  struct Line {
    uint32_t tag = 0;
    bool valid = false;
    bool dirty = false;
    uint64_t write_cycle = 0; ///< cycle the line was (re)filled
    uint64_t lru = 0;         ///< last-use stamp
  };

  uint32_t set_index(uint32_t addr) const { return (addr / config_.line_size) % num_sets_; }
  uint32_t tag_of(uint32_t addr) const { return addr / config_.line_size / num_sets_; }

  CacheConfig config_;
  MemModule* next_;
  uint32_t num_sets_;
  std::vector<Line> lines_; ///< num_sets_ * associativity
  uint64_t lru_counter_ = 0;
  MemModuleStats stats_;
};

/// Limits the number of accesses entering its submodule per cycle.
class ConnectionLimit final : public MemModule {
public:
  ConnectionLimit(unsigned ports, MemModule* next)
      : ports_(ports), next_(next) {}

  uint64_t access(uint32_t addr, AccessType type, int slot, uint64_t start) override;
  void reset() override;
  const MemModuleStats& stats() const override { return stats_; }
  std::string describe() const override;
  void save(support::ByteWriter& w) const override;
  void restore(support::ByteReader& r) override;

private:
  /// Claims a port at or after `cycle`; returns the cycle actually used.
  uint64_t claim(uint64_t cycle);
  void prune(uint64_t below);

  unsigned ports_;
  MemModule* next_;
  std::unordered_map<uint64_t, unsigned> used_; ///< cycle → ports taken
  uint64_t max_cycle_seen_ = 0;
  MemModuleStats stats_;
};

/// The paper's evaluation hierarchy (§VII): 1-port connection limit in front
/// of an L1 (2 KiB, 4-way, 3 cycles), L2 (256 KiB, 4-way, 6 cycles) and main
/// memory (18 cycles).
struct HierarchyConfig {
  unsigned l1_ports = 1;
  CacheConfig l1{2048, 32, 4, 3, "L1"};
  CacheConfig l2{256 * 1024, 32, 4, 6, "L2"};
  unsigned memory_delay = 18;
};

/// Geometry of one cache level, in sets × ways (capacity = sets * ways *
/// line_size bytes; the line size is shared by both levels).
struct LevelGeometry {
  uint32_t sets = 0;
  uint32_t ways = 0;
  uint32_t hit_latency = 0;  ///< access delay in cycles

  bool operator==(const LevelGeometry&) const = default;
};

/// The kdse design-space parameterization of the memory hierarchy: everything
/// that makes one memory configuration a different machine.  The defaults
/// reproduce the paper's §VII evaluation hierarchy exactly (16×4×32 B = 2 KiB
/// L1 at 3 cycles, 2048×4×32 B = 256 KiB L2 at 6 cycles, one L1 port, 18
/// cycles to main memory), so a default-constructed geometry behaves — and
/// checkpoints — identically to the pre-kdse fixed hierarchy.  The ILP
/// model's "ideal memory" delay is the L1 hit latency.
struct MemGeometry {
  uint32_t line_size = 32;           ///< bytes, shared by L1 and L2
  LevelGeometry l1{16, 4, 3};
  LevelGeometry l2{2048, 4, 6};
  uint32_t ports = 1;                ///< L1 connection limit (accesses/cycle)
  uint32_t miss_latency = 18;        ///< main-memory access delay, cycles

  bool operator==(const MemGeometry&) const = default;

  /// Throws ksim::ConfigError (the exit-2 contract) on geometries the cache
  /// model cannot represent: non-power-of-two sets/ways/line sizes, zero
  /// ports, zero latencies, or capacities past 1 GiB per level.
  void validate() const;

  /// The composed-hierarchy configuration this geometry describes.
  HierarchyConfig hierarchy_config() const;

  /// Deterministic integer area proxy (byte-equivalents) for Pareto fronts:
  /// data bytes of both levels, plus 4 tag/state bytes per line, plus half
  /// the L1 data bytes again per L1 port beyond the first (multi-porting
  /// replicates sense amps and decoders, not capacity).
  uint64_t area_proxy() const;

  /// Canonical short identifier, e.g.
  /// "l1:16x4@3,l2:2048x4@6,line:32,ports:1,mem:18" — the stable point key
  /// in sweep reports and journals.
  std::string id() const;

  void save(support::ByteWriter& w) const;
  void restore(support::ByteReader& r);
};

/// Owns a composed hierarchy; entry() is the module the cycle models call.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const HierarchyConfig& config = {});

  MemModule& entry() { return *entry_; }
  void reset();

  /// Serializes / restores every module of the composed hierarchy, in a
  /// fixed order (limit, L1, L2, main memory).
  void save(support::ByteWriter& w) const;
  void restore(support::ByteReader& r);

  const CacheModule& l1() const { return *l1_; }
  const CacheModule& l2() const { return *l2_; }
  const ConnectionLimit& limit() const { return *limit_; }
  const MainMemory& memory() const { return *memory_; }

private:
  std::unique_ptr<MainMemory> memory_;
  std::unique_ptr<CacheModule> l2_;
  std::unique_ptr<CacheModule> l1_;
  std::unique_ptr<ConnectionLimit> limit_;
  MemModule* entry_;
};

} // namespace ksim::cycle
