// Cycle-model interface (paper §VI).  The interpreter calls on_instruction()
// after each executed instruction ("After an instruction is executed optional
// tasks are performed. These optional tasks include the cycle approximation").
#pragma once

#include <cstdint>
#include <string>

#include "isa/exec.h"
#include "support/byte_stream.h"

namespace ksim::cycle {

class CycleModel {
public:
  virtual ~CycleModel() = default;

  /// Accounts one executed instruction.  `di` carries the static operation
  /// info, `ctx` the dynamic facts (memory addresses, branch outcome).
  virtual void on_instruction(const isa::DecodedInstr& di, const isa::ExecCtx& ctx) = 0;

  /// Approximated cycle count so far.
  virtual uint64_t cycles() const = 0;

  /// Operations accounted so far.
  virtual uint64_t operations() const = 0;

  virtual void reset() = 0;
  virtual std::string name() const = 0;

  /// Serializes / restores the model's internal accounting so a checkpointed
  /// run resumes with bit-identical cycle approximation (kckpt).  The memory
  /// hierarchy and branch predictor are shared objects checkpointed
  /// separately; models must only cover their own state here.  The default
  /// suits stateless observers (e.g. the RTL trace recorder opts out and is
  /// rejected by the driver when checkpointing is requested).
  virtual void save(support::ByteWriter&) const {}
  virtual void restore(support::ByteReader&) {}

  /// Operations per cycle (0 when nothing ran).
  double ops_per_cycle() const {
    const uint64_t c = cycles();
    return c == 0 ? 0.0 : static_cast<double>(operations()) / static_cast<double>(c);
  }
};

} // namespace ksim::cycle
