#include "cycle/models.h"

#include <algorithm>

#include "isa/reg_use.h"

namespace ksim::cycle {

namespace detail {

uint64_t RegCycles::max_of_sources(const isa::DecodedOp& op) const {
  // One definition of "source register" shared with the static analyzer.
  uint64_t m = 0;
  isa::RegMask mask = isa::op_src_mask(op);
  while (mask != 0) {
    const unsigned r = static_cast<unsigned>(__builtin_ctz(mask));
    mask &= mask - 1;
    m = std::max(m, cycles_[r]);
  }
  return m;
}

void RegCycles::write_destinations(const isa::DecodedOp& op, uint64_t completion) {
  isa::RegMask mask = isa::op_dst_mask(op);
  while (mask != 0) {
    const unsigned r = static_cast<unsigned>(__builtin_ctz(mask));
    mask &= mask - 1;
    cycles_[r] = completion;
  }
}

} // namespace detail

// -- IlpModel -------------------------------------------------------------------

void IlpModel::on_instruction(const isa::DecodedInstr& di, const isa::ExecCtx& ctx) {
  // The ILP model treats every operation individually (it is meant to run on
  // a RISC stream, but handles groups by applying the same rules per op).
  // Two-phase within a group so ops read pre-instruction write cycles.
  uint64_t new_branch_completion = last_branch_completion_;
  uint64_t new_store_start = last_store_start_;
  struct Upd {
    const isa::DecodedOp* op;
    uint64_t completion;
  } updates[isa::kMaxSlots];

  for (int s = 0; s < di.num_ops; ++s) {
    const isa::DecodedOp& op = di.ops[s];
    const isa::OpInfo& info = *op.info;

    uint64_t start = regs_.max_of_sources(op);
    // Operations cannot be scheduled past a branch boundary.
    start = std::max(start, last_branch_completion_);
    // Pessimistic memory model: every memory operation depends on the last
    // store and can execute earliest at that store's start cycle.
    if (info.mem != adl::MemKind::None) start = std::max(start, last_store_start_);

    const unsigned delay =
        info.uses_memory_model() ? memory_delay_ : static_cast<unsigned>(info.delay);
    const uint64_t completion = start + delay;

    if (info.is_branch) new_branch_completion = std::max(new_branch_completion, completion);
    if (info.is_store()) new_store_start = std::max(new_store_start, start);

    updates[s] = {&op, completion};
    max_completion_ = std::max(max_completion_, completion);
    ++operations_;
    (void)ctx;
  }
  for (int s = 0; s < di.num_ops; ++s)
    regs_.write_destinations(*updates[s].op, updates[s].completion);
  last_branch_completion_ = new_branch_completion;
  last_store_start_ = new_store_start;
}

void IlpModel::reset() {
  regs_.reset();
  last_branch_completion_ = 0;
  last_store_start_ = 0;
  max_completion_ = 0;
  operations_ = 0;
}

void IlpModel::save(support::ByteWriter& w) const {
  regs_.save(w);
  w.u64(last_branch_completion_);
  w.u64(last_store_start_);
  w.u64(max_completion_);
  w.u64(operations_);
}

void IlpModel::restore(support::ByteReader& r) {
  regs_.restore(r);
  last_branch_completion_ = r.u64();
  last_store_start_ = r.u64();
  max_completion_ = r.u64();
  operations_ = r.u64();
}

// -- AieModel -------------------------------------------------------------------

void AieModel::on_instruction(const isa::DecodedInstr& di, const isa::ExecCtx& ctx) {
  const uint64_t issue = completion_;
  uint64_t instr_completion = issue;
  uint64_t refill = 0;
  for (int s = 0; s < di.num_ops; ++s) {
    const isa::DecodedOp& op = di.ops[s];
    const isa::OpInfo& info = *op.info;
    uint64_t op_completion;
    if (info.uses_memory_model() && ctx.mem[s].valid && memory_ != nullptr) {
      op_completion = memory_->entry().access(
          ctx.mem[s].addr,
          ctx.mem[s].is_store ? AccessType::Write : AccessType::Read, s, issue);
    } else {
      op_completion = issue + static_cast<unsigned>(std::max(info.delay, 1));
    }
    if (info.is_branch && predictor_ != nullptr &&
        predictor_->observe(di.addr + static_cast<uint32_t>(s) * 4, ctx.branch_taken))
      refill = mispredict_penalty_;
    instr_completion = std::max(instr_completion, op_completion);
    ++operations_;
  }
  completion_ = std::max(instr_completion + refill, issue + 1);
}

void AieModel::reset() {
  completion_ = 0;
  operations_ = 0;
}

void AieModel::save(support::ByteWriter& w) const {
  w.u64(completion_);
  w.u64(operations_);
}

void AieModel::restore(support::ByteReader& r) {
  completion_ = r.u64();
  operations_ = r.u64();
}

// -- DoeModel -------------------------------------------------------------------

void DoeModel::on_instruction(const isa::DecodedInstr& di, const isa::ExecCtx& ctx) {
  struct Upd {
    const isa::DecodedOp* op;
    uint64_t completion;
  } updates[isa::kMaxSlots];

  for (int s = 0; s < di.num_ops; ++s) {
    const isa::DecodedOp& op = di.ops[s];
    const isa::OpInfo& info = *op.info;

    // Issue once the previous operation of this slot has issued (one issue
    // per slot and cycle), all true data dependencies are fulfilled, and —
    // with a branch predictor attached — the front end has recovered from
    // the last mispredict.
    uint64_t issue = std::max(regs_.max_of_sources(op), slot_last_issue_[s] + 1);
    issue = std::max(issue, fetch_ready_);

    uint64_t completion;
    if (info.uses_memory_model() && ctx.mem[s].valid && memory_ != nullptr) {
      completion = memory_->entry().access(
          ctx.mem[s].addr,
          ctx.mem[s].is_store ? AccessType::Write : AccessType::Read, s, issue);
    } else {
      completion = issue + static_cast<unsigned>(std::max(info.delay, 1));
    }

    if (info.is_branch && predictor_ != nullptr &&
        predictor_->observe(di.addr + static_cast<uint32_t>(s) * 4, ctx.branch_taken))
      fetch_ready_ = std::max(fetch_ready_, completion + mispredict_penalty_);

    slot_last_issue_[s] = issue;
    updates[s] = {&op, completion};
    max_completion_ = std::max(max_completion_, completion);
    ++operations_;
  }
  for (int s = 0; s < di.num_ops; ++s)
    regs_.write_destinations(*updates[s].op, updates[s].completion);
}

void DoeModel::reset() {
  regs_.reset();
  slot_last_issue_.fill(0);
  fetch_ready_ = 0;
  max_completion_ = 0;
  operations_ = 0;
  if (predictor_ != nullptr) predictor_->reset();
}

void DoeModel::save(support::ByteWriter& w) const {
  regs_.save(w);
  for (const uint64_t issue : slot_last_issue_) w.u64(issue);
  w.u64(fetch_ready_);
  w.u64(max_completion_);
  w.u64(operations_);
}

void DoeModel::restore(support::ByteReader& r) {
  regs_.restore(r);
  for (uint64_t& issue : slot_last_issue_) issue = r.u64();
  fetch_ready_ = r.u64();
  max_completion_ = r.u64();
  operations_ = r.u64();
}

} // namespace ksim::cycle
