// Branch prediction models — the paper's stated future work (§VIII: "we plan
// to integrate cycle-approximation models for branch misprediction into our
// simulator").  A predictor guesses each branch's direction; the DOE/AIE
// models charge a configurable refill penalty on a mispredict by stalling
// instruction delivery (Table II's evaluation used perfect prediction, which
// remains the default: no predictor attached).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/byte_stream.h"

namespace ksim::cycle {

struct PredictorStats {
  uint64_t branches = 0;
  uint64_t mispredictions = 0;

  double miss_rate() const {
    return branches == 0
               ? 0.0
               : static_cast<double>(mispredictions) / static_cast<double>(branches);
  }
};

class BranchPredictor {
public:
  virtual ~BranchPredictor() = default;

  /// Predicted direction for the branch at `pc`.
  virtual bool predict(uint32_t pc) = 0;
  /// Trains the predictor with the actual outcome.
  virtual void update(uint32_t pc, bool taken) = 0;

  virtual std::string name() const = 0;
  virtual void reset() = 0;

  /// Convenience: predict + update + stats. Returns true on a mispredict.
  bool observe(uint32_t pc, bool taken) {
    ++stats_.branches;
    const bool predicted = predict(pc);
    update(pc, taken);
    if (predicted != taken) {
      ++stats_.mispredictions;
      return true;
    }
    return false;
  }

  const PredictorStats& stats() const { return stats_; }

  /// Serializes / restores the predictor's dynamic state (statistics plus
  /// whatever tables/history the concrete predictor keeps) for kckpt.
  /// restore() targets an identically configured predictor and throws
  /// ksim::Error on a table-shape mismatch.
  void save(support::ByteWriter& w) const {
    w.u64(stats_.branches);
    w.u64(stats_.mispredictions);
    do_save(w);
  }
  void restore(support::ByteReader& r) {
    stats_.branches = r.u64();
    stats_.mispredictions = r.u64();
    do_restore(r);
  }

protected:
  void reset_stats() { stats_ = {}; }

  /// Concrete predictor state; the static predictors keep none.
  virtual void do_save(support::ByteWriter&) const {}
  virtual void do_restore(support::ByteReader&) {}

private:
  PredictorStats stats_;
};

/// Static predictor: always predicts not-taken (fall through).
class NotTakenPredictor final : public BranchPredictor {
public:
  bool predict(uint32_t) override { return false; }
  void update(uint32_t, bool) override {}
  std::string name() const override { return "static-not-taken"; }
  void reset() override { reset_stats(); }
};

/// Static predictor: backward taken, forward not-taken (loops).
/// Needs the target direction; we approximate with "taken" since K-ISA loop
/// branches are overwhelmingly backward — see BackwardTakenPredictor::predict.
class TakenPredictor final : public BranchPredictor {
public:
  bool predict(uint32_t) override { return true; }
  void update(uint32_t, bool) override {}
  std::string name() const override { return "static-taken"; }
  void reset() override { reset_stats(); }
};

/// 1-bit last-outcome predictor, direct-mapped table indexed by pc.
class OneBitPredictor final : public BranchPredictor {
public:
  explicit OneBitPredictor(size_t entries = 1024);
  bool predict(uint32_t pc) override;
  void update(uint32_t pc, bool taken) override;
  std::string name() const override { return "1-bit"; }
  void reset() override;

protected:
  void do_save(support::ByteWriter& w) const override;
  void do_restore(support::ByteReader& r) override;

private:
  size_t index(uint32_t pc) const { return (pc >> 2) & (table_.size() - 1); }
  std::vector<uint8_t> table_;
};

/// 2-bit saturating-counter predictor.
class TwoBitPredictor final : public BranchPredictor {
public:
  explicit TwoBitPredictor(size_t entries = 1024);
  bool predict(uint32_t pc) override;
  void update(uint32_t pc, bool taken) override;
  std::string name() const override { return "2-bit"; }
  void reset() override;

protected:
  void do_save(support::ByteWriter& w) const override;
  void do_restore(support::ByteReader& r) override;

private:
  size_t index(uint32_t pc) const { return (pc >> 2) & (table_.size() - 1); }
  std::vector<uint8_t> table_; ///< 0..3, >=2 predicts taken
};

/// Gshare: global history XORed into the table index, 2-bit counters.
class GsharePredictor final : public BranchPredictor {
public:
  explicit GsharePredictor(unsigned history_bits = 10);
  bool predict(uint32_t pc) override;
  void update(uint32_t pc, bool taken) override;
  std::string name() const override { return "gshare"; }
  void reset() override;

protected:
  void do_save(support::ByteWriter& w) const override;
  void do_restore(support::ByteReader& r) override;

private:
  size_t index(uint32_t pc) const {
    return ((pc >> 2) ^ history_) & (table_.size() - 1);
  }
  std::vector<uint8_t> table_;
  uint32_t history_ = 0;
  uint32_t history_mask_;
};

/// Factory by name ("not-taken", "taken", "1bit", "2bit", "gshare").
std::unique_ptr<BranchPredictor> make_predictor(const std::string& kind);

} // namespace ksim::cycle
