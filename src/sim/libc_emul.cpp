#include "sim/libc_emul.h"

#include <cstdio>

#include "support/strings.h"

namespace ksim::sim {

using isa::LibcOp;
namespace abi = isa::abi;

uint32_t LibcEmulator::arg(const isa::ExecCtx& ctx, unsigned index) const {
  if (index < abi::kNumArgRegs) return ctx.st->reg(abi::kArg0 + index);
  // Further arguments live on the stack (pushed by the caller at sp+0..).
  return ctx.st->load32(ctx.st->reg(abi::kSp) + 4 * (index - abi::kNumArgRegs));
}

void LibcEmulator::emit(std::string_view text) {
  output_.append(text);
  if (echo_) std::fwrite(text.data(), 1, text.size(), stdout);
}

void LibcEmulator::do_printf(isa::ExecCtx& ctx) {
  const std::string fmt = ctx.st->read_cstring(arg(ctx, 0));
  std::string out;
  unsigned next_arg = 1;
  int written = 0;
  for (size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') {
      out.push_back(fmt[i]);
      ++written;
      continue;
    }
    ++i;
    if (i >= fmt.size()) break;
    if (fmt[i] == '%') {
      out.push_back('%');
      ++written;
      continue;
    }
    // Parse [0][width] then the conversion character.
    bool zero_pad = false;
    bool left = false;
    if (fmt[i] == '-') {
      left = true;
      ++i;
    }
    if (i < fmt.size() && fmt[i] == '0') {
      zero_pad = true;
      ++i;
    }
    unsigned width = 0;
    while (i < fmt.size() && fmt[i] >= '0' && fmt[i] <= '9') {
      width = width * 10 + static_cast<unsigned>(fmt[i] - '0');
      ++i;
    }
    if (i >= fmt.size()) break;
    std::string field;
    switch (fmt[i]) {
      case 'd':
      case 'i':
        field = std::to_string(static_cast<int32_t>(arg(ctx, next_arg++)));
        break;
      case 'u':
        field = std::to_string(arg(ctx, next_arg++));
        break;
      case 'x':
        field = strf("%x", arg(ctx, next_arg++));
        break;
      case 'X':
        field = strf("%X", arg(ctx, next_arg++));
        break;
      case 'c':
        field.push_back(static_cast<char>(arg(ctx, next_arg++)));
        break;
      case 's':
        field = ctx.st->read_cstring(arg(ctx, next_arg++));
        break;
      default:
        field = std::string("%") + fmt[i]; // unknown conversion: literal
        break;
    }
    if (field.size() < width) {
      const std::string pad(width - field.size(), zero_pad && !left ? '0' : ' ');
      field = left ? field + pad : pad + field;
    }
    out += field;
    written += static_cast<int>(field.size());
  }
  emit(out);
  ctx.st->set_reg(abi::kArg0, static_cast<uint32_t>(written));
}

void LibcEmulator::handle(int op_number, isa::ExecCtx& ctx) {
  ++calls_;
  isa::ArchState& st = *ctx.st;
  if (op_number < 0 || op_number >= isa::kNumLibcOps) {
    st.raise_trap(strf("SIMOP with unknown library function %d", op_number));
    return;
  }
  switch (static_cast<LibcOp>(op_number)) {
    case LibcOp::kExit:
      exited_ = true;
      exit_code_ = static_cast<int32_t>(arg(ctx, 0));
      ctx.halt = true;
      break;
    case LibcOp::kPutchar: {
      const char c = static_cast<char>(arg(ctx, 0));
      emit(std::string_view(&c, 1));
      st.set_reg(abi::kArg0, arg(ctx, 0));
      break;
    }
    case LibcOp::kPuts: {
      emit(st.read_cstring(arg(ctx, 0)));
      emit("\n");
      st.set_reg(abi::kArg0, 0);
      break;
    }
    case LibcOp::kPrintf:
      do_printf(ctx);
      break;
    case LibcOp::kMalloc: {
      const uint32_t size = (arg(ctx, 0) + 7u) & ~7u;
      if (heap_ptr_ + size > heap_end_ || heap_ptr_ + size < heap_ptr_) {
        st.set_reg(abi::kArg0, 0); // out of memory → NULL
      } else {
        st.set_reg(abi::kArg0, heap_ptr_);
        heap_ptr_ += size;
      }
      break;
    }
    case LibcOp::kFree:
      break; // bump allocator: free is a no-op
    case LibcOp::kMemcpy: {
      const uint32_t dst = arg(ctx, 0);
      const uint32_t src = arg(ctx, 1);
      const uint32_t n = arg(ctx, 2);
      if (!st.in_ram(dst, n) || !st.in_ram(src, n)) {
        st.raise_trap("memcpy outside simulated RAM");
        break;
      }
      std::memmove(st.ram_data() + dst, st.ram_data() + src, n);
      st.set_reg(abi::kArg0, dst);
      break;
    }
    case LibcOp::kMemset: {
      const uint32_t dst = arg(ctx, 0);
      const uint32_t value = arg(ctx, 1);
      const uint32_t n = arg(ctx, 2);
      if (!st.in_ram(dst, n)) {
        st.raise_trap("memset outside simulated RAM");
        break;
      }
      std::memset(st.ram_data() + dst, static_cast<int>(value & 0xFF), n);
      st.set_reg(abi::kArg0, dst);
      break;
    }
    case LibcOp::kStrlen:
      st.set_reg(abi::kArg0,
                 static_cast<uint32_t>(st.read_cstring(arg(ctx, 0)).size()));
      break;
    case LibcOp::kStrcmp: {
      const std::string a = st.read_cstring(arg(ctx, 0));
      const std::string b = st.read_cstring(arg(ctx, 1));
      st.set_reg(abi::kArg0,
                 static_cast<uint32_t>(a < b ? -1 : (a > b ? 1 : 0)));
      break;
    }
    case LibcOp::kStrcpy: {
      const uint32_t dst = arg(ctx, 0);
      const std::string src = st.read_cstring(arg(ctx, 1));
      if (!st.in_ram(dst, static_cast<uint32_t>(src.size() + 1))) {
        st.raise_trap("strcpy outside simulated RAM");
        break;
      }
      std::memcpy(st.ram_data() + dst, src.c_str(), src.size() + 1);
      st.set_reg(abi::kArg0, dst);
      break;
    }
    case LibcOp::kRand:
      // Deterministic LCG (C89 reference implementation).
      rand_state_ = rand_state_ * 1103515245u + 12345u;
      st.set_reg(abi::kArg0, (rand_state_ >> 16) & 0x7FFFu);
      break;
    case LibcOp::kSrand:
      rand_state_ = arg(ctx, 0);
      break;
    case LibcOp::kAbort:
      st.raise_trap("abort() called by simulated program");
      break;
    case LibcOp::kPutInt:
      emit(std::to_string(static_cast<int32_t>(arg(ctx, 0))));
      emit("\n");
      break;
    case LibcOp::kPutHex:
      emit(hex32(arg(ctx, 0)));
      emit("\n");
      break;
    case LibcOp::kCount:
      break;
  }
}

void LibcEmulator::reset() {
  output_.clear();
  exited_ = false;
  exit_code_ = 0;
  calls_ = 0;
  heap_ptr_ = heap_start_;
  rand_state_ = seed_;
}

void LibcEmulator::save(support::ByteWriter& w) const {
  w.str(output_);
  w.u8(exited_ ? 1 : 0);
  w.i32(exit_code_);
  w.u64(calls_);
  w.u32(heap_start_);
  w.u32(heap_ptr_);
  w.u32(heap_end_);
  w.u32(seed_);
  w.u32(rand_state_);
}

void LibcEmulator::restore(support::ByteReader& r) {
  output_ = r.str();
  exited_ = r.u8() != 0;
  exit_code_ = r.i32();
  calls_ = r.u64();
  heap_start_ = r.u32();
  heap_ptr_ = r.u32();
  heap_end_ = r.u32();
  seed_ = r.u32();
  rand_state_ = r.u32();
}

} // namespace ksim::sim
