#include "sim/simulator.h"

#include <algorithm>
#include <optional>

#include "kasm/disasm.h"
#include "support/error.h"
#include "support/strings.h"

namespace ksim::sim {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::Exited: return "exited";
    case StopReason::Halted: return "halted";
    case StopReason::Trap: return "trap";
    case StopReason::DecodeError: return "decode error";
    case StopReason::InstructionLimit: return "instruction limit";
  }
  return "?";
}

Simulator::Simulator(const isa::IsaSet& set, SimOptions options)
    : set_(set), options_(options) {
  // Prediction caches pointers into the decode cache; it cannot work without it.
  if (!options_.use_decode_cache) options_.use_prediction = false;
  active_isa_ = &set_.default_isa();
  ctx_.st = &state_;
  ctx_.simop = &libc_;
  if (options_.ip_history > 0) ip_ring_.resize(options_.ip_history, 0);
  if (options_.collect_op_stats) op_counts_.assign(set_.all_ops().size(), 0);
}

void Simulator::load(const elf::ElfFile& executable) {
  image_ = elf::load_executable(executable, state_);
  const isa::IsaInfo* isa = isa_by_id(image_.entry_isa);
  check(isa != nullptr,
        strf("executable requests unknown entry ISA %d", image_.entry_isa));
  active_isa_ = isa;
  state_.reset_cpu(image_.entry, isa->id);
  const uint32_t heap_start = (image_.image_end + 15u) & ~15u;
  const uint32_t heap_end = isa::kStackTop - (1u << 20); // 1 MiB stack guard
  check(heap_start < heap_end, "executable leaves no room for the heap");
  libc_.set_heap(heap_start, heap_end);
  libc_.reset();
  decode_cache_.clear();
  prev_instr_ = nullptr;
  stats_ = {};
  ip_ring_pos_ = 0;
  ip_ring_full_ = false;
  if (profiler_ != nullptr) {
    profiler_->reset();
    profiler_->attach(&image_);
  }
  loaded_ = true;
}

void Simulator::set_profiler(Profiler* profiler) {
  profiler_ = profiler;
  if (profiler_ != nullptr && loaded_) profiler_->attach(&image_);
}

const isa::IsaInfo* Simulator::isa_by_id(int id) const { return set_.find_isa(id); }

void Simulator::record_ip(uint32_t ip) {
  if (ip_ring_.empty()) return;
  ip_ring_[ip_ring_pos_] = ip;
  ip_ring_pos_ = (ip_ring_pos_ + 1) % ip_ring_.size();
  if (ip_ring_pos_ == 0) ip_ring_full_ = true;
}

std::vector<uint32_t> Simulator::ip_history() const {
  std::vector<uint32_t> out;
  if (ip_ring_.empty()) return out;
  const size_t count = ip_ring_full_ ? ip_ring_.size() : ip_ring_pos_;
  const size_t start = ip_ring_full_ ? ip_ring_pos_ : 0;
  for (size_t i = 0; i < count; ++i)
    out.push_back(ip_ring_[(start + i) % ip_ring_.size()]);
  return out;
}

bool Simulator::decode_at(uint32_t ip, isa::DecodedInstr& out, std::string& error) {
  out.addr = ip;
  out.isa_id = static_cast<int16_t>(active_isa_->id);
  out.num_ops = 0;
  out.pred_ip = 0xFFFFFFFFu;
  out.pred_next = nullptr;

  const int width = active_isa_->issue_width;
  for (int slot = 0; slot < width; ++slot) {
    uint32_t word = 0;
    if (!state_.fetch32(ip + static_cast<uint32_t>(slot) * 4, word)) {
      error = "instruction fetch outside RAM at " + hex32(ip);
      return false;
    }
    // Operation detection by checking the constant fields of each operation
    // of the active ISA's table (paper §V).
    const isa::OpInfo* info = set_.detect(*active_isa_, word);
    if (info == nullptr) {
      error = strf("undecodable operation word %s at %s (ISA %s)",
                   hex32(word).c_str(),
                   hex32(ip + static_cast<uint32_t>(slot) * 4).c_str(),
                   active_isa_->name.c_str());
      return false;
    }
    isa::DecodedOp& op = out.ops[slot];
    op.info = info;
    op.fn = info->fn;
    op.rd = info->f_rd.valid ? static_cast<uint8_t>(info->f_rd.extract(word)) : 0;
    op.ra = info->f_ra.valid ? static_cast<uint8_t>(info->f_ra.extract(word)) : 0;
    op.rb = info->f_rb.valid ? static_cast<uint8_t>(info->f_rb.extract(word)) : 0;
    op.imm = info->f_imm.valid ? static_cast<int32_t>(info->f_imm.extract(word)) : 0;
    ++out.num_ops;
    if (set_.is_stop(word)) break;
    if (slot + 1 == width) {
      error = strf("instruction group at %s exceeds the %d-issue width of %s",
                   hex32(ip).c_str(), width, active_isa_->name.c_str());
      return false;
    }
  }
  out.size_bytes = static_cast<uint8_t>(out.num_ops * 4);
  ++stats_.decodes;
  return true;
}

std::optional<StopReason> Simulator::step() {
  const uint32_t ip = state_.ip();
  record_ip(ip);

  // -- instruction prediction (§V-A) ----------------------------------------
  isa::DecodedInstr* di = nullptr;
  if (options_.use_prediction && prev_instr_ != nullptr && prev_instr_->pred_ip == ip) {
    di = const_cast<isa::DecodedInstr*>(prev_instr_->pred_next);
    ++stats_.pred_hits;
  } else if (options_.use_decode_cache) {
    ++stats_.cache_lookups;
    di = decode_cache_.lookup(ip, active_isa_->id);
    if (di == nullptr) {
      auto fresh = std::make_unique<isa::DecodedInstr>();
      if (!decode_at(ip, *fresh, decode_error_)) return StopReason::DecodeError;
      di = decode_cache_.insert(ip, active_isa_->id, std::move(fresh));
    }
    if (options_.use_prediction && prev_instr_ != nullptr) {
      prev_instr_->pred_ip = ip;
      prev_instr_->pred_next = di;
    }
  } else {
    if (!decode_at(ip, scratch_instr_, decode_error_)) return StopReason::DecodeError;
    di = &scratch_instr_;
  }

  // -- execute (§V-B: read all sources before any write-back) -----------------
  ctx_.begin_instruction(ip + di->size_bytes);
  int wb_before[isa::kMaxSlots];
  for (int slot = 0; slot < di->num_ops; ++slot) {
    ctx_.op = &di->ops[slot];
    ctx_.slot = slot;
    wb_before[slot] = ctx_.wb_count;
    di->ops[slot].fn(ctx_);
    if (state_.trapped()) return StopReason::Trap;
  }

  // -- optional tasks before commit (trace sees pre-commit register values) ---
  if (trace_ != nullptr) {
    const uint64_t cycle =
        cycle_model_ != nullptr ? cycle_model_->cycles() : stats_.instructions;
    for (int slot = 0; slot < di->num_ops; ++slot)
      trace_->record_op(cycle, ip + static_cast<uint32_t>(slot) * 4, slot,
                        di->ops[slot], ctx_, wb_before[slot],
                        slot + 1 < di->num_ops ? wb_before[slot + 1] : ctx_.wb_count);
  }

  // -- commit ---------------------------------------------------------------
  for (int i = 0; i < ctx_.wb_count; ++i)
    state_.set_reg(ctx_.wb[i].reg, ctx_.wb[i].value);
  state_.set_ip(ctx_.branch_taken ? ctx_.branch_target : ctx_.seq_next_ip);

  ++stats_.instructions;
  stats_.operations += di->num_ops;
  if (options_.collect_op_stats)
    for (int slot = 0; slot < di->num_ops; ++slot)
      ++op_counts_[di->ops[slot].info->index];
  if (libc_.calls() != stats_.libc_calls) stats_.libc_calls = libc_.calls();

  // -- optional tasks (§V: cycle approximation, trace, profiling) -------------
  if (cycle_model_ != nullptr) cycle_model_->on_instruction(*di, ctx_);
  if (profiler_ != nullptr) {
    profiler_->on_instruction(ip, di->num_ops,
                              cycle_model_ != nullptr ? cycle_model_->cycles() : 0);
    for (int slot = 0; slot < di->num_ops; ++slot)
      if (di->ops[slot].info->is_call && ctx_.branch_taken)
        profiler_->on_call(ctx_.branch_target);
  }

  prev_instr_ = di;

  // -- ISA reconfiguration (§V-D) ---------------------------------------------
  if (ctx_.isa_switch) {
    const isa::IsaInfo* isa = isa_by_id(ctx_.new_isa);
    if (isa == nullptr) {
      state_.raise_trap(strf("SWITCHTARGET to unknown ISA id %d", ctx_.new_isa));
      return StopReason::Trap;
    }
    active_isa_ = isa;
    state_.set_isa_id(isa->id);
    ++stats_.isa_switches;
    // Never link predictions across an ISA switch: the successor decodes
    // under a different operation table.
    prev_instr_ = nullptr;
  }

  if (ctx_.halt)
    return libc_.exited() ? StopReason::Exited : StopReason::Halted;
  if (options_.max_instructions != 0 && stats_.instructions >= options_.max_instructions)
    return StopReason::InstructionLimit;
  return std::nullopt;
}

StopReason Simulator::run() {
  check(loaded_, "Simulator::run without a loaded executable");
  while (true) {
    if (const auto stop = step(); stop.has_value()) return *stop;
  }
}

std::vector<std::pair<const isa::OpInfo*, uint64_t>> Simulator::op_histogram() const {
  std::vector<std::pair<const isa::OpInfo*, uint64_t>> out;
  for (size_t i = 0; i < op_counts_.size(); ++i)
    if (op_counts_[i] > 0) out.emplace_back(set_.all_ops()[i], op_counts_[i]);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::string Simulator::error_report() const {
  std::string out;
  if (state_.trapped())
    out += "trap: " + state_.trap_message() + "\n";
  else if (!decode_error_.empty())
    out += "decode error: " + decode_error_ + "\n";
  out += "  at " + image_.describe(state_.ip()) + "\n";

  uint32_t word = 0;
  if (state_.fetch32(state_.ip(), word) && active_isa_ != nullptr)
    out += "  instruction: " + kasm::disassemble_op(set_, *active_isa_, word) + "\n";

  const auto history = ip_history();
  if (!history.empty()) {
    out += "instruction pointer history (oldest first):\n";
    const size_t show = std::min<size_t>(history.size(), 16);
    for (size_t i = history.size() - show; i < history.size(); ++i)
      out += "  " + image_.describe(history[i]) + "\n";
  }
  return out;
}

} // namespace ksim::sim
