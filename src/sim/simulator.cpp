#include "sim/simulator.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <ostream>

#include "kasm/disasm.h"
#include "support/error.h"
#include "support/strings.h"

namespace ksim::sim {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::Exited: return "exited";
    case StopReason::Halted: return "halted";
    case StopReason::Trap: return "trap";
    case StopReason::DecodeError: return "decode error";
    case StopReason::InstructionLimit: return "instruction limit";
    case StopReason::Checkpoint: return "checkpoint";
  }
  return "?";
}

Simulator::Simulator(const isa::IsaSet& set, SimOptions options)
    : set_(set), options_(options) {
  // Prediction and superblocks cache pointers into the decode cache; neither
  // can work without it.
  if (!options_.use_decode_cache) {
    options_.use_prediction = false;
    options_.use_superblocks = false;
  }
  // Escape hatch for running an unmodified test suite against the fallback
  // engine (ci.sh exercises both).
  if (std::getenv("KSIM_NO_SUPERBLOCKS") != nullptr) options_.use_superblocks = false;
  if (std::getenv("KSIM_NO_JIT") != nullptr) options_.use_jit = false;
  // The JIT dispatches from the superblock loop and its translations are
  // superblock traces; without blocks (or a capable host) it is inert.
  if (!options_.use_superblocks || !jit::host_supported()) options_.use_jit = false;
  active_isa_ = &set_.default_isa();
  simop_info_ = set_.find_op("SIMOP");
  ctx_.st = &state_;
  ctx_.simop = &libc_;
  if (options_.ip_history > 0) ip_ring_.resize(options_.ip_history, 0);
  if (options_.collect_op_stats) op_counts_.assign(set_.all_ops().size(), 0);
}

void Simulator::load(const elf::ElfFile& executable) {
  image_ = elf::load_executable(executable, state_);
  const isa::IsaInfo* isa = isa_by_id(image_.entry_isa);
  check(isa != nullptr,
        strf("executable requests unknown entry ISA %d", image_.entry_isa));
  active_isa_ = isa;
  state_.reset_cpu(image_.entry, isa->id);
  const uint32_t heap_start = (image_.image_end + 15u) & ~15u;
  const uint32_t heap_end = isa::kStackTop - (1u << 20); // 1 MiB stack guard
  check(heap_start < heap_end, "executable leaves no room for the heap");
  libc_.set_heap(heap_start, heap_end);
  libc_.set_seed(options_.libc_seed);
  libc_.reset();
  clear_decode_cache();
  stats_ = {};
  if (ckpt_every_ != 0) ckpt_next_ = ckpt_every_;
  ip_ring_pos_ = 0;
  ip_ring_full_ = false;
  if (profiler_ != nullptr) {
    profiler_->reset();
    profiler_->attach(&image_);
  }
  // Guest-state pointers baked into the JIT ABI.  All these allocations are
  // fixed for the simulator's lifetime (RAM, the ring and the libc emulator
  // are sized/placed once and never reallocated), so translated code can
  // cache them across calls.  The libc fields are pointers, not snapshots,
  // so a checkpoint restore updates what generated code sees for free.
  jit_ctx_ = {};
  jit_ctx_.regs = state_.regs_data();
  jit_ctx_.ram = state_.ram_data();
  jit_ctx_.ring = ip_ring_.empty() ? nullptr : ip_ring_.data();
  jit_ctx_.libc_calls = libc_.jit_calls();
  jit_ctx_.rand_state = libc_.jit_rand_state();
  jit_ctx_.heap_ptr = libc_.jit_heap_ptr();
  jit_ctx_.heap_end = libc_.jit_heap_end();
  loaded_ = true;
}

void Simulator::set_profiler(Profiler* profiler) {
  profiler_ = profiler;
  if (profiler_ != nullptr && loaded_) profiler_->attach(&image_);
}

const isa::IsaInfo* Simulator::isa_by_id(int id) const { return set_.find_isa(id); }

void Simulator::record_ip(uint32_t ip) {
  if (ip_ring_.empty()) return;
  ip_ring_[ip_ring_pos_] = ip;
  if (++ip_ring_pos_ == ip_ring_.size()) {
    ip_ring_pos_ = 0;
    ip_ring_full_ = true;
  }
}

std::vector<uint32_t> Simulator::ip_history() const {
  std::vector<uint32_t> out;
  if (ip_ring_.empty()) return out;
  const size_t count = ip_ring_full_ ? ip_ring_.size() : ip_ring_pos_;
  const size_t start = ip_ring_full_ ? ip_ring_pos_ : 0;
  for (size_t i = 0; i < count; ++i)
    out.push_back(ip_ring_[(start + i) % ip_ring_.size()]);
  return out;
}

bool Simulator::decode_at(uint32_t ip, isa::DecodedInstr& out, std::string& error) {
  out.addr = ip;
  out.isa_id = static_cast<int16_t>(active_isa_->id);
  out.num_ops = 0;
  out.flags = 0;
  out.pred_ip = 0xFFFFFFFFu;
  out.pred_next = nullptr;

  const int width = active_isa_->issue_width;
  for (int slot = 0; slot < width; ++slot) {
    uint32_t word = 0;
    if (!state_.fetch32(ip + static_cast<uint32_t>(slot) * 4, word)) {
      error = "instruction fetch outside RAM at " + hex32(ip);
      return false;
    }
    // Operation detection by checking the constant fields of each operation
    // of the active ISA's table (paper §V).
    const isa::OpInfo* info = set_.detect(*active_isa_, word);
    if (info == nullptr) {
      error = strf("undecodable operation word %s at %s (ISA %s)",
                   hex32(word).c_str(),
                   hex32(ip + static_cast<uint32_t>(slot) * 4).c_str(),
                   active_isa_->name.c_str());
      return false;
    }
    isa::DecodedOp& op = out.ops[slot];
    op.info = info;
    op.fn = info->fn;
    op.rd = info->f_rd.valid ? static_cast<uint8_t>(info->f_rd.extract(word)) : 0;
    op.ra = info->f_ra.valid ? static_cast<uint8_t>(info->f_ra.extract(word)) : 0;
    op.rb = info->f_rb.valid ? static_cast<uint8_t>(info->f_rb.extract(word)) : 0;
    op.imm = info->f_imm.valid ? static_cast<int32_t>(info->f_imm.extract(word)) : 0;
    if (info == simop_info_) out.flags |= isa::kDiHasSimop;
    if (info->is_branch || info->is_call || info->is_ret)
      out.flags |= isa::kDiHasBranch;
    ++out.num_ops;
    if (set_.is_stop(word)) break;
    if (slot + 1 == width) {
      error = strf("instruction group at %s exceeds the %d-issue width of %s",
                   hex32(ip).c_str(), width, active_isa_->name.c_str());
      return false;
    }
  }
  out.size_bytes = static_cast<uint8_t>(out.num_ops * 4);
  ++stats_.decodes;
  return true;
}

std::optional<StopReason> Simulator::apply_isa_switch() {
  const isa::IsaInfo* isa = isa_by_id(ctx_.new_isa);
  if (isa == nullptr) {
    state_.raise_trap(strf("SWITCHTARGET to unknown ISA id %d", ctx_.new_isa));
    return StopReason::Trap;
  }
  active_isa_ = isa;
  state_.set_isa_id(isa->id);
  ++stats_.isa_switches;
  // Never link predictions across an ISA switch: the successor decodes
  // under a different operation table.
  prev_instr_ = nullptr;
  return std::nullopt;
}

std::optional<StopReason> Simulator::exec_and_retire(isa::DecodedInstr* di,
                                                     bool update_prev) {
  const uint32_t ip = state_.ip();

  // -- execute (§V-B: read all sources before any write-back) -----------------
  ctx_.begin_instruction(ip + di->size_bytes);
  int wb_before[isa::kMaxSlots];
  for (int slot = 0; slot < di->num_ops; ++slot) {
    ctx_.op = &di->ops[slot];
    ctx_.slot = slot;
    wb_before[slot] = ctx_.wb_count;
    di->ops[slot].fn(ctx_);
    if (state_.trapped()) return StopReason::Trap;
  }

  // -- optional tasks before commit (trace sees pre-commit register values) ---
  if (trace_ != nullptr) {
    const uint64_t cycle =
        cycle_model_ != nullptr ? cycle_model_->cycles() : stats_.instructions;
    for (int slot = 0; slot < di->num_ops; ++slot)
      trace_->record_op(cycle, ip + static_cast<uint32_t>(slot) * 4, slot,
                        di->ops[slot], ctx_, wb_before[slot],
                        slot + 1 < di->num_ops ? wb_before[slot + 1] : ctx_.wb_count);
  }

  // -- commit ---------------------------------------------------------------
  for (int i = 0; i < ctx_.wb_count; ++i)
    state_.set_reg(ctx_.wb[i].reg, ctx_.wb[i].value);
  state_.set_ip(ctx_.branch_taken ? ctx_.branch_target : ctx_.seq_next_ip);

  ++stats_.instructions;
  stats_.operations += di->num_ops;
  if (options_.collect_op_stats)
    for (int slot = 0; slot < di->num_ops; ++slot)
      ++op_counts_[di->ops[slot].info->index];
  // The libc-call counter only moves when a SIMOP executes; polling it on
  // every instruction (as the seed did) is wasted work in the hot loop.
  if ((di->flags & isa::kDiHasSimop) != 0) stats_.libc_calls = libc_.calls();

  // -- optional tasks (§V: cycle approximation, trace, profiling) -------------
  if (cycle_model_ != nullptr) cycle_model_->on_instruction(*di, ctx_);
  if (profiler_ != nullptr) {
    profiler_->on_instruction(ip, di->num_ops,
                              cycle_model_ != nullptr ? cycle_model_->cycles() : 0);
    for (int slot = 0; slot < di->num_ops; ++slot)
      if (di->ops[slot].info->is_call && ctx_.branch_taken)
        profiler_->on_call(ctx_.branch_target);
  }

  if (update_prev) prev_instr_ = di;

  // -- ISA reconfiguration (§V-D) ---------------------------------------------
  if (ctx_.isa_switch) {
    if (const auto stop = apply_isa_switch(); stop.has_value()) return stop;
  }

  if (ctx_.halt)
    return libc_.exited() ? StopReason::Exited : StopReason::Halted;
  if (options_.max_instructions != 0 && stats_.instructions >= options_.max_instructions)
    return StopReason::InstructionLimit;
  return std::nullopt;
}

std::optional<StopReason> Simulator::step() {
  const uint32_t ip = state_.ip();
  record_ip(ip);

  // -- instruction prediction (§V-A) ----------------------------------------
  isa::DecodedInstr* di = nullptr;
  if (options_.use_prediction && prev_instr_ != nullptr && prev_instr_->pred_ip == ip) {
    di = const_cast<isa::DecodedInstr*>(prev_instr_->pred_next);
    ++stats_.pred_hits;
  } else if (options_.use_decode_cache) {
    ++stats_.cache_lookups;
    di = decode_cache_.lookup(ip, active_isa_->id);
    if (di == nullptr) {
      if (!decode_at(ip, scratch_instr_, decode_error_)) return StopReason::DecodeError;
      di = decode_cache_.insert(ip, active_isa_->id, scratch_instr_);
    }
    if (options_.use_prediction && prev_instr_ != nullptr) {
      prev_instr_->pred_ip = ip;
      prev_instr_->pred_next = di;
    }
  } else {
    if (!decode_at(ip, scratch_instr_, decode_error_)) return StopReason::DecodeError;
    di = &scratch_instr_;
  }

  return exec_and_retire(di, /*update_prev=*/true);
}

StopReason Simulator::run() {
  check(loaded_, "Simulator::run without a loaded executable");
  if (options_.use_superblocks) return run_superblocks();
  while (true) {
    if (checkpoint_due() && fire_checkpoint()) return StopReason::Checkpoint;
    if (const auto stop = step(); stop.has_value()) return *stop;
  }
}

bool Simulator::fire_checkpoint() {
  // Advance past the boundary first so a hook that saves state (and a later
  // resume) sees the next due point, not the one being serviced.
  ckpt_next_ = (stats_.instructions / ckpt_every_ + 1) * ckpt_every_;
  return ckpt_fn_ && ckpt_fn_(*this);
}

// ---------------------------------------------------------------------------
// Superblock engine.
//
// Dispatch resolves the next block in three tiers: (1) the previous block's
// cached successor edge for the exit kind (taken / fall-through) — the
// generalization of §V-A instruction prediction to whole traces; (2) the
// block table; (3) formation, which executes instructions through the decode
// cache while recording them into a fresh block.  Statistics keep the §V-A
// meaning: every executed instruction is accounted either as a hash lookup
// (cache_lookups) or as a lookup avoided (pred_hits), so decode/lookup
// avoidance rates stay comparable across all engine configurations.
// ---------------------------------------------------------------------------

StopReason Simulator::run_superblocks() {
  // Prediction links and block chaining don't mix; drop any state a prior
  // step() sequence left behind (the links themselves stay valid in cache).
  prev_instr_ = nullptr;
  if (options_.max_instructions != 0 &&
      stats_.instructions >= options_.max_instructions)
    return StopReason::InstructionLimit;

  while (true) {
    // Checkpoint boundary: no block is mid-flight here, so serialized state
    // (including last_block_'s pending chain edge) resumes bit-identically.
    if (checkpoint_due() && fire_checkpoint()) return StopReason::Checkpoint;

    const uint32_t ip = state_.ip();
    const int isa_id = active_isa_->id;

    Superblock* sb = nullptr;
    bool chained = false;
    if (last_block_ != nullptr) {
      Superblock* edge = last_block_->succ[last_exit_taken_];
      if (edge != nullptr && edge->entry_addr == ip && edge->isa_id == isa_id) {
        sb = edge;
        chained = true;
        ++stats_.block_chain_hits;
      }
    }
    if (sb == nullptr) {
      sb = block_cache_.lookup(ip, isa_id);
      if (sb == nullptr) {
        if (const auto stop = form_block(ip); stop.has_value()) return *stop;
        continue;
      }
      ++stats_.cache_lookups;
      if (last_block_ != nullptr) last_block_->succ[last_exit_taken_] = sb;
    }

    // -- kjit: hot blocks execute as host code (DESIGN.md §9) ---------------
    // Only on the hook-free fast path (hooks need per-instruction
    // bookkeeping), and only with enough instruction budget to retire the
    // whole block: translated code cannot stop mid-block at a limit the way
    // exec_block_fast can, so short-budget dispatches stay interpreted.
    if (options_.use_jit && trace_ == nullptr && cycle_model_ == nullptr &&
        profiler_ == nullptr && !options_.collect_op_stats) {
      if (sb->jit_state == 0 && ++sb->exec_count >= jit::kHotThreshold)
        try_translate(sb);
      if (sb->jit_entry != nullptr &&
          (options_.max_instructions == 0 ||
           options_.max_instructions - stats_.instructions >= sb->num_instrs)) {
        if (const auto stop = run_jit_loop(sb, chained); stop.has_value())
          return *stop;
        continue; // run_jit_loop did all post-block bookkeeping
      }
    }

    ++stats_.block_dispatches;
    const uint64_t before = stats_.instructions;
    const auto stop = exec_block(sb);
    const uint64_t executed = stats_.instructions - before;
    stats_.pred_hits += chained ? executed : (executed > 0 ? executed - 1 : 0);
    if (stop.has_value()) {
      last_block_ = nullptr;
      return *stop;
    }
    if (ctx_.isa_switch) {
      last_block_ = nullptr; // never chain across a reconfiguration
    } else {
      last_block_ = sb;
      last_exit_taken_ = ctx_.branch_taken ? 1 : 0;
    }
  }
}

std::optional<StopReason> Simulator::form_block(uint32_t entry_ip) {
  Superblock* sb = block_cache_.create(entry_ip, active_isa_->id);
  ++stats_.blocks_formed;

  std::optional<StopReason> stop;
  while (true) {
    const uint32_t ip = state_.ip();
    record_ip(ip);
    ++stats_.cache_lookups;
    isa::DecodedInstr* di = decode_cache_.lookup(ip, active_isa_->id);
    if (di == nullptr) {
      if (!decode_at(ip, scratch_instr_, decode_error_)) {
        stop = StopReason::DecodeError;
        break;
      }
      di = decode_cache_.insert(ip, active_isa_->id, scratch_instr_);
    }
    sb->instrs[sb->num_instrs++] = di;
    stop = exec_and_retire(di, /*update_prev=*/false);
    if (stop.has_value()) break;
    // Trace terminators: taken branch, ISA switch, emulated libc call, or
    // the formation length cap.
    if (ctx_.branch_taken || ctx_.isa_switch ||
        (di->flags & isa::kDiHasSimop) != 0 || sb->num_instrs >= kMaxBlockInstrs)
      break;
  }

  // Install the block (also when a stop cut formation short: the recorded
  // prefix is a valid trace) and chain it from the edge that led here.
  // Empty blocks (first decode failed) are never installed — an installed
  // block must guarantee forward progress when dispatched.
  if (sb->num_instrs > 0) {
    block_cache_.insert(sb);
    if (last_block_ != nullptr) last_block_->succ[last_exit_taken_] = sb;
  }

  if (stop.has_value()) {
    last_block_ = nullptr;
    return stop;
  }
  if (ctx_.isa_switch) {
    last_block_ = nullptr;
  } else {
    last_block_ = sb;
    last_exit_taken_ = ctx_.branch_taken ? 1 : 0;
  }
  return std::nullopt;
}

std::optional<StopReason> Simulator::exec_block(Superblock* sb) {
  // Any attached hook needs per-instruction bookkeeping (exact trace lines,
  // cycle-model callbacks, profiling, op histograms); without hooks the
  // tight loop skips all of it and batches the statistics.
  if (trace_ == nullptr && cycle_model_ == nullptr && profiler_ == nullptr &&
      !options_.collect_op_stats)
    return exec_block_fast(sb);
  return exec_block_slow(sb);
}

std::optional<StopReason> Simulator::exec_block_slow(Superblock* sb) {
  const uint16_t n = sb->num_instrs;
  for (uint16_t i = 0; i < n; ++i) {
    isa::DecodedInstr* di = const_cast<isa::DecodedInstr*>(sb->instrs[i]);
    record_ip(state_.ip());
    if (const auto stop = exec_and_retire(di, /*update_prev=*/false);
        stop.has_value())
      return stop;
    // A conditional branch not taken at formation time may be taken now:
    // leave the block early; dispatch resolves the side exit.
    if (ctx_.branch_taken || ctx_.isa_switch) break;
  }
  return std::nullopt;
}

std::optional<StopReason> Simulator::exec_block_fast(Superblock* sb,
                                                     uint16_t start_index) {
  const uint64_t limit = options_.max_instructions;
  // run_superblocks() never dispatches at the limit, so budget >= 1 here.
  // (On a JIT bail-resume the caller folded the translated prefix into the
  // statistics first, and the JIT entry guard reserved budget for the whole
  // block, so the invariant holds for start_index > 0 too.)
  uint64_t budget = limit == 0 ? UINT64_MAX : limit - stats_.instructions;
  uint64_t executed = 0;
  uint64_t ops = 0;
  std::optional<StopReason> stop;

  const uint16_t n = sb->num_instrs;
  for (uint16_t i = start_index; i < n; ++i) {
    const isa::DecodedInstr* di = sb->instrs[i];
    record_ip(di->addr);
    ctx_.begin_instruction_fast(di->addr + di->size_bytes);
    const int num_ops = di->num_ops;
    int slot = 0;
    for (; slot < num_ops; ++slot) {
      ctx_.op = &di->ops[slot];
      ctx_.slot = slot;
      di->ops[slot].fn(ctx_);
      if (state_.trapped()) break;
    }
    if (slot < num_ops) { // trapped: the instruction does not retire
      stop = StopReason::Trap;
      break;
    }
    for (int k = 0; k < ctx_.wb_count; ++k)
      state_.set_reg(ctx_.wb[k].reg, ctx_.wb[k].value);
    state_.set_ip(ctx_.branch_taken ? ctx_.branch_target : ctx_.seq_next_ip);
    ++executed;
    ops += static_cast<unsigned>(num_ops);
    if ((di->flags & isa::kDiHasSimop) != 0) stats_.libc_calls = libc_.calls();
    if (ctx_.branch_taken || ctx_.halt || ctx_.isa_switch || executed == budget)
      break;
  }

  stats_.instructions += executed;
  stats_.operations += ops;
  if (stop.has_value()) return stop;

  if (ctx_.isa_switch) {
    if (const auto s = apply_isa_switch(); s.has_value()) return s;
  }
  if (ctx_.halt)
    return libc_.exited() ? StopReason::Exited : StopReason::Halted;
  if (limit != 0 && stats_.instructions >= limit)
    return StopReason::InstructionLimit;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// kjit: dynamic binary translation of hot superblocks (DESIGN.md §9).
//
// Translation is purely an execution-engine substitution: a translated block
// retires exactly the instructions the interpreter would, writes the same
// registers/memory/IP/ring, and advances the same statistics.  Anything it
// cannot reproduce bit-for-bit bails out to exec_block_fast *before* the
// offending instruction commits any state.  Nothing here is ever serialized
// (hotness only accrues on the hook-free path, and checkpoint resumes run
// without the original hooks), so checkpoints stay byte-identical whether
// the JIT ran or not.
// ---------------------------------------------------------------------------

void Simulator::try_translate(Superblock* sb) {
  sb->jit_state = 2; // declined unless every step below succeeds
  if (!jit::host_supported()) return;
  // Static policy (PR 6): blocks overlapping a range the translatability
  // analysis vetoed (unsafe SIMOPs, trap-risky or self-modifying code) are
  // never compiled.  Superblock traces are contiguous, so an interval test
  // is exact.
  const isa::DecodedInstr* last = sb->instrs[sb->num_instrs - 1];
  const uint32_t start = sb->entry_addr;
  const uint32_t end = last->addr + last->size_bytes;
  for (const jit::VetoRange& v : jit_vetoes_)
    if (start < v.end && v.start < end) return;
  jit::TranslateEnv env;
  env.ram_size = state_.ram_size();
  env.ring_size = static_cast<uint32_t>(ip_ring_.size());
  env.self_block = sb;
  env.succ_edges = reinterpret_cast<const void* const*>(&sb->succ[0]);
  const jit::Translation tr =
      jit::translate_block(sb->instrs, sb->num_instrs, env);
  if (tr.code.empty()) return; // translator declined (unsupported op, ...)
  jit::BlockFn fn = jit_cache_.install(tr);
  if (fn == nullptr && jit_cache_.blocks() > 0) {
    // Arena exhausted.  The working set moved past what fits, so the oldest
    // translations are the least likely to be hot again: flush everything
    // and let the current working set re-earn translation.  At most one
    // flush per attempt — if even an empty arena cannot hold this block,
    // it is declined like any other untranslatable block.
    flush_jit_translations();
    ++stats_.jit_cache_flushes;
    fn = jit_cache_.install(tr);
  }
  if (fn == nullptr) {
    sb->jit_state = 2; // flush_jit_translations() reset it to cold
    return;
  }
  sb->jit_entry = reinterpret_cast<const void*>(fn);
  sb->jit_state = 1;
  ++stats_.jit_blocks_translated;
  if (jit_dump_ != nullptr) dump_jit_translation(sb, tr, fn);
}

void Simulator::flush_jit_translations() {
  // Dropping the code drops every chain patch with it, so all jit_entry
  // pointers — including ones on blocks displaced from the index that only
  // chain edges still reach — must be nulled in the same breath.  Hotness
  // restarts from zero: the blocks that are still hot re-earn translation
  // within kHotThreshold dispatches.
  jit_cache_.clear();
  block_cache_.for_each_block([](Superblock& b) {
    b.exec_count = 0;
    b.jit_state = 0;
    b.jit_entry = nullptr;
  });
}

void Simulator::dump_jit_translation(const Superblock* sb,
                                     const jit::Translation& tr,
                                     jit::BlockFn fn) const {
  const isa::IsaInfo* isa = isa_by_id(sb->isa_id);
  std::ostream& os = *jit_dump_;
  os << "block " << hex32(sb->entry_addr) << " isa "
     << (isa != nullptr ? isa->name : "?") << " instrs " << sb->num_instrs
     << " code_bytes " << tr.code.size() << " chain_sites " << tr.sites.size()
     << " host " << reinterpret_cast<const void*>(fn) << "\n";
  static const char* kHex = "0123456789abcdef";
  for (size_t i = 0; i < tr.code.size(); i += 16) {
    os << " ";
    for (size_t k = i; k < tr.code.size() && k < i + 16; ++k)
      os << ' ' << kHex[tr.code[k] >> 4] << kHex[tr.code[k] & 0xF];
    os << "\n";
  }
}

std::optional<StopReason> Simulator::run_jit_loop(Superblock* sb, bool chained) {
  // Executes `sb` as host code and keeps chaining translated successor
  // blocks without returning to the outer dispatcher, with all statistics in
  // locals — per-dispatch overhead is what separates a 2x from a 4x JIT.
  // One host call can itself chain through many blocks inline (patched jmps,
  // DESIGN.md §9): JitContext carries the call's combined deltas and the
  // identity of the block the call finally exited from.  The accounting
  // replicates run_superblocks()/exec_block_fast() exactly: per block one
  // dispatch, a chain hit when the successor edge resolved it, and pred_hits
  // for every instruction whose hash lookup was avoided.
  const uint64_t limit = options_.max_instructions;
  jit::JitContext& jc = jit_ctx_;
  jc.ring_pos = static_cast<uint32_t>(ip_ring_pos_);
  jc.ring_full = ip_ring_full_ ? 1u : 0u;

  uint64_t instructions = stats_.instructions;
  uint64_t operations = stats_.operations;
  uint64_t dispatches = 0;
  uint64_t chain_hits = 0;
  uint64_t pred_hits = 0;
  uint64_t jit_dispatches = 0;
  uint64_t side_exits = 0;

  Superblock* cur = sb;
  Superblock* exit_blk = sb;
  uint32_t kind = jit::kExitFallthrough;
  std::optional<StopReason> result;
  bool bailed = false;

  for (;;) {
    // Per-call delta protocol: C++ zeroes the accumulators and publishes the
    // call's headroom; emitted code chains inline only while `executed` stays
    // below ckpt_room and executed + next block's length stays within budget
    // — the same checks this loop performs, in the same order.
    jc.executed = 0;
    jc.ops = 0;
    jc.chain_hits = 0;
    jc.side_exits = 0;
    jc.ckpt_room =
        ckpt_next_ == UINT64_MAX ? UINT64_MAX : ckpt_next_ - instructions;
    jc.budget = limit == 0 ? UINT64_MAX : limit - instructions;
    const uint64_t code = reinterpret_cast<jit::BlockFn>(
        const_cast<void*>(cur->jit_entry))(&jc);
    kind = jit::exit_kind(code);
    const uint32_t index = jit::exit_index(code);
    exit_blk = static_cast<Superblock*>(const_cast<void*>(jc.exit_block));

    // Each inline chain was one dispatch + one chain hit (and, when it left
    // mid-block, one side exit) this loop never saw; `index` and jc.ip
    // describe exit_blk, the block the call actually ended in.
    dispatches += 1 + jc.chain_hits;
    jit_dispatches += 1 + jc.chain_hits;
    chain_hits += jc.chain_hits;
    side_exits += jc.side_exits;

    if (kind == jit::kExitBail) {
      // A guard failed before instruction `index` of exit_blk retired.  Fold
      // everything accumulated so far back into the simulator
      // (exec_block_fast derives its budget from stats_), sync IP and ring,
      // and let the interpreter finish that block from the un-retired
      // instruction — it re-records and re-executes it from pristine state,
      // so the trap (or the slow path) is bit-identical to a JIT-off run.
      stats_.instructions = instructions + jc.executed;
      stats_.operations = operations + jc.ops;
      stats_.block_dispatches += dispatches;
      stats_.block_chain_hits += chain_hits;
      stats_.pred_hits += pred_hits;
      stats_.jit_dispatches += jit_dispatches;
      stats_.jit_side_exits += side_exits;
      ++stats_.jit_bailouts;
      stats_.libc_calls = libc_.calls();
      ip_ring_pos_ = jc.ring_pos;
      ip_ring_full_ = jc.ring_full != 0;
      state_.set_ip(jc.ip);
      result = exec_block_fast(exit_blk, static_cast<uint16_t>(index));
      // Dispatch accounting for the whole call + interpreter tail: only the
      // call's first block (when un-chained) paid a hash lookup; everything
      // else — inline-chained blocks and the resumed tail — was predicted.
      const uint64_t executed = stats_.instructions - instructions;
      stats_.pred_hits += chained ? executed : (executed > 0 ? executed - 1 : 0);
      bailed = true;
      break;
    }

    // Fallthrough/taken exits retire at least one instruction, so the
    // un-chained first dispatch pays exactly one hash lookup (`executed - 1`
    // avoided), as in the interpreter path.
    instructions += jc.executed;
    operations += jc.ops;
    pred_hits += chained ? jc.executed : jc.executed - 1;
    if (kind == jit::kExitTaken && index + 1u < exit_blk->num_instrs)
      ++side_exits;

    // Chain in C++: same checks as the outer dispatcher (checkpoint
    // boundary, matching successor edge, instruction budget), plus "is
    // translated" — anything else returns to the outer loop, which
    // re-resolves this very edge and interprets or forms as needed.
    if (instructions >= ckpt_next_) break;
    Superblock* next = exit_blk->succ[kind == jit::kExitTaken ? 1 : 0];
    if (next == nullptr || next->entry_addr != jc.ip ||
        next->isa_id != exit_blk->isa_id || next->jit_entry == nullptr)
      break;
    if (limit != 0 && limit - instructions < next->num_instrs) break;
    ++chain_hits;
    chained = true;
    // Both sides of a hot edge are translated: patch exit_blk's exit stub
    // into a direct jmp so the next pass over this edge never leaves host
    // code.  (No-op when this very edge is already linked; a re-linked edge
    // falls back here through the stub's successor-identity guard and gets
    // repatched.)
    jit_cache_.patch_chain(
        reinterpret_cast<jit::BlockFn>(const_cast<void*>(exit_blk->jit_entry)),
        kind, index, next,
        reinterpret_cast<jit::BlockFn>(const_cast<void*>(next->jit_entry)),
        next->num_instrs);
    cur = next;
  }

  if (!bailed) {
    stats_.instructions = instructions;
    stats_.operations = operations;
    stats_.block_dispatches += dispatches;
    stats_.block_chain_hits += chain_hits;
    stats_.pred_hits += pred_hits;
    stats_.jit_dispatches += jit_dispatches;
    stats_.jit_side_exits += side_exits;
    // SIMOP fast paths advance the emulator's call counter from generated
    // code; re-sync the derived statistic exactly like the interpreter does
    // after a SIMOP-carrying instruction (idempotent when none ran).
    stats_.libc_calls = libc_.calls();
    ip_ring_pos_ = jc.ring_pos;
    ip_ring_full_ = jc.ring_full != 0;
    state_.set_ip(jc.ip);
    if (limit != 0 && stats_.instructions >= limit)
      result = StopReason::InstructionLimit;
  }

  if (result.has_value()) {
    last_block_ = nullptr;
    return result;
  }
  // Translated blocks never contain SWITCHTARGET, but a bail-resume runs the
  // tail through the interpreter, which can (in principle) leave any exit
  // condition behind — mirror the outer loop's bookkeeping exactly.
  if (bailed && ctx_.isa_switch) {
    last_block_ = nullptr;
  } else {
    last_block_ = exit_blk;
    last_exit_taken_ = bailed ? (ctx_.branch_taken ? 1 : 0)
                              : (kind == jit::kExitTaken ? 1 : 0);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Checkpoint serialization (kckpt).
//
// save_state() captures everything the execution engine derives from the
// program *plus* the links among those structures, because the §V-A / block
// statistics depend on which prediction links and chain edges exist, not
// just on the architectural state.  Cache contents themselves are not
// written byte-for-byte: restore_state() re-decodes every cached (addr, isa)
// from the restored memory image, which both validates that the checkpoint
// matches the loaded program and keeps the format free of in-memory pointer
// layouts.  All orders are canonical (sorted by key), so two simulators in
// identical states serialize to identical bytes.
// ---------------------------------------------------------------------------

namespace {

uint64_t instr_key(const isa::DecodedInstr* di) {
  return AddrIsaMap<isa::DecodedInstr>::make_key(di->addr, di->isa_id);
}

uint64_t block_key(const Superblock* sb) {
  return AddrIsaMap<Superblock>::make_key(sb->entry_addr, sb->isa_id);
}

constexpr uint64_t kNoLink = UINT64_MAX;

} // namespace

void Simulator::save_state(support::ByteWriter& w) const {
  check(loaded_, "Simulator::save_state without a loaded executable");
  state_.save(w);
  libc_.save(w);

  w.u64(ip_ring_.size());
  for (const uint32_t ip : ip_ring_) w.u32(ip);
  w.u64(ip_ring_pos_);
  w.u8(ip_ring_full_ ? 1 : 0);

  // Decode cache: keys plus prediction links (targets identified by key).
  std::vector<std::pair<uint64_t, const isa::DecodedInstr*>> instrs;
  instrs.reserve(decode_cache_.size());
  decode_cache_.for_each([&](uint64_t key, const isa::DecodedInstr* di) {
    instrs.emplace_back(key, di);
  });
  std::sort(instrs.begin(), instrs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(instrs.size());
  for (const auto& [key, di] : instrs) {
    w.u64(key);
    w.u32(di->pred_ip);
    w.u64(di->pred_next != nullptr ? instr_key(di->pred_next) : kNoLink);
  }

  // Superblocks: instruction sequences and chain edges, all by key.  Every
  // installed block's instructions live in the decode cache, and every chain
  // edge targets an installed block (form_block never links empty blocks),
  // so keys are sufficient to rebuild the whole graph.
  std::vector<std::pair<uint64_t, const Superblock*>> blocks;
  blocks.reserve(block_cache_.size());
  block_cache_.for_each([&](uint64_t key, const Superblock* sb) {
    blocks.emplace_back(key, sb);
  });
  std::sort(blocks.begin(), blocks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(blocks.size());
  for (const auto& [key, sb] : blocks) {
    w.u64(key);
    w.u16(sb->num_instrs);
    for (uint16_t i = 0; i < sb->num_instrs; ++i) w.u64(instr_key(sb->instrs[i]));
    for (const Superblock* succ : sb->succ)
      w.u64(succ != nullptr ? block_key(succ) : kNoLink);
  }

  // Engine cursors.  A prev_instr_ pointing at scratch_instr_ (cache-less
  // stepping) is not re-creatable by key; prediction is off in that
  // configuration, so dropping the link is exact.
  const isa::DecodedInstr* prev = prev_instr_;
  if (prev != nullptr && decode_cache_.lookup(prev->addr, prev->isa_id) != prev)
    prev = nullptr;
  w.u64(prev != nullptr ? instr_key(prev) : kNoLink);
  w.u64(last_block_ != nullptr ? block_key(last_block_) : kNoLink);
  w.u8(static_cast<uint8_t>(last_exit_taken_));

  w.u64(op_counts_.size());
  for (const uint64_t count : op_counts_) w.u64(count);

  // Statistics go last so restore_state() can overwrite whatever the cache
  // rebuild accumulated.
  w.u64(stats_.instructions);
  w.u64(stats_.operations);
  w.u64(stats_.decodes);
  w.u64(stats_.cache_lookups);
  w.u64(stats_.pred_hits);
  w.u64(stats_.isa_switches);
  w.u64(stats_.libc_calls);
  w.u64(stats_.blocks_formed);
  w.u64(stats_.block_dispatches);
  w.u64(stats_.block_chain_hits);
}

void Simulator::restore_state(support::ByteReader& r) {
  check(loaded_, "Simulator::restore_state without a loaded executable");
  state_.restore(r);
  libc_.restore(r);

  const uint64_t ring = r.u64();
  check(ring == ip_ring_.size(), "checkpoint ip-history length mismatch");
  for (uint32_t& ip : ip_ring_) ip = r.u32();
  ip_ring_pos_ = static_cast<size_t>(r.u64());
  ip_ring_full_ = r.u8() != 0;
  check(ip_ring_.empty() ? ip_ring_pos_ == 0 : ip_ring_pos_ < ip_ring_.size(),
        "checkpoint ip-history cursor out of range");

  clear_decode_cache();
  decode_error_.clear();

  // Rebuild the decode cache by re-decoding from the restored memory image.
  const uint64_t num_instrs = r.u64();
  struct PredLink {
    uint64_t key;
    uint32_t pred_ip;
    uint64_t pred_key;
  };
  std::vector<PredLink> links;
  links.reserve(static_cast<size_t>(num_instrs));
  for (uint64_t i = 0; i < num_instrs; ++i) {
    const uint64_t key = r.u64();
    const uint32_t pred_ip = r.u32();
    const uint64_t pred_key = r.u64();
    const uint32_t addr = static_cast<uint32_t>(key);
    const int isa_id = static_cast<int>(static_cast<uint32_t>(key >> 32));
    const isa::IsaInfo* isa = isa_by_id(isa_id);
    check(isa != nullptr, strf("checkpoint references unknown ISA id %d", isa_id));
    active_isa_ = isa;
    std::string error;
    if (!decode_at(addr, scratch_instr_, error))
      throw Error("checkpoint does not match the loaded program: " + error);
    decode_cache_.insert(addr, isa_id, scratch_instr_);
    if (pred_key != kNoLink) links.push_back({key, pred_ip, pred_key});
  }
  for (const PredLink& link : links) {
    isa::DecodedInstr* from = decode_cache_.lookup(
        static_cast<uint32_t>(link.key),
        static_cast<int>(static_cast<uint32_t>(link.key >> 32)));
    isa::DecodedInstr* to = decode_cache_.lookup(
        static_cast<uint32_t>(link.pred_key),
        static_cast<int>(static_cast<uint32_t>(link.pred_key >> 32)));
    check(from != nullptr && to != nullptr, "checkpoint prediction link dangles");
    from->pred_ip = link.pred_ip;
    from->pred_next = to;
  }

  // Rebuild superblocks over the rebuilt decode cache, then the chain edges.
  const uint64_t num_blocks = r.u64();
  struct ChainEdge {
    uint64_t key;
    uint64_t succ[2];
  };
  std::vector<ChainEdge> edges;
  edges.reserve(static_cast<size_t>(num_blocks));
  for (uint64_t i = 0; i < num_blocks; ++i) {
    const uint64_t key = r.u64();
    const uint16_t count = r.u16();
    check(count > 0 && count <= kMaxBlockInstrs,
          "checkpoint superblock has an impossible length");
    Superblock* sb = block_cache_.create(
        static_cast<uint32_t>(key),
        static_cast<int>(static_cast<uint32_t>(key >> 32)));
    for (uint16_t k = 0; k < count; ++k) {
      const uint64_t ikey = r.u64();
      const isa::DecodedInstr* di = decode_cache_.lookup(
          static_cast<uint32_t>(ikey),
          static_cast<int>(static_cast<uint32_t>(ikey >> 32)));
      check(di != nullptr, "checkpoint superblock references an uncached instruction");
      sb->instrs[sb->num_instrs++] = di;
    }
    block_cache_.insert(sb);
    ChainEdge edge{key, {r.u64(), r.u64()}};
    if (edge.succ[0] != kNoLink || edge.succ[1] != kNoLink) edges.push_back(edge);
  }
  for (const ChainEdge& edge : edges) {
    Superblock* sb = block_cache_.lookup(
        static_cast<uint32_t>(edge.key),
        static_cast<int>(static_cast<uint32_t>(edge.key >> 32)));
    check(sb != nullptr, "checkpoint superblock edge dangles");
    for (int e = 0; e < 2; ++e) {
      if (edge.succ[e] == kNoLink) continue;
      Superblock* succ = block_cache_.lookup(
          static_cast<uint32_t>(edge.succ[e]),
          static_cast<int>(static_cast<uint32_t>(edge.succ[e] >> 32)));
      check(succ != nullptr, "checkpoint superblock edge dangles");
      sb->succ[e] = succ;
    }
  }

  const uint64_t prev_key = r.u64();
  if (prev_key != kNoLink) {
    prev_instr_ = decode_cache_.lookup(
        static_cast<uint32_t>(prev_key),
        static_cast<int>(static_cast<uint32_t>(prev_key >> 32)));
    check(prev_instr_ != nullptr, "checkpoint prediction cursor dangles");
  }
  const uint64_t last_key = r.u64();
  if (last_key != kNoLink) {
    last_block_ = block_cache_.lookup(
        static_cast<uint32_t>(last_key),
        static_cast<int>(static_cast<uint32_t>(last_key >> 32)));
    check(last_block_ != nullptr, "checkpoint block cursor dangles");
  }
  last_exit_taken_ = r.u8() != 0 ? 1 : 0;

  const uint64_t num_counts = r.u64();
  check(num_counts == op_counts_.size(),
        "checkpoint operation-histogram size mismatch");
  for (uint64_t& count : op_counts_) count = r.u64();

  // The active ISA follows the architectural state, not whatever the cache
  // rebuild left behind.
  const isa::IsaInfo* isa = isa_by_id(state_.isa_id());
  check(isa != nullptr,
        strf("checkpoint restores unknown active ISA id %d", state_.isa_id()));
  active_isa_ = isa;

  stats_.instructions = r.u64();
  stats_.operations = r.u64();
  stats_.decodes = r.u64();
  stats_.cache_lookups = r.u64();
  stats_.pred_hits = r.u64();
  stats_.isa_switches = r.u64();
  stats_.libc_calls = r.u64();
  stats_.blocks_formed = r.u64();
  stats_.block_dispatches = r.u64();
  stats_.block_chain_hits = r.u64();
  // kjit counters are volatile by contract (never serialized): they describe
  // the current process, which restarts from an empty code cache after every
  // restore (clear_decode_cache above also dropped all translations).
  stats_.jit_blocks_translated = 0;
  stats_.jit_dispatches = 0;
  stats_.jit_side_exits = 0;
  stats_.jit_bailouts = 0;
  stats_.jit_cache_flushes = 0;

  if (ckpt_every_ != 0)
    ckpt_next_ = (stats_.instructions / ckpt_every_ + 1) * ckpt_every_;
  if (profiler_ != nullptr) profiler_->reset();
}

std::vector<std::pair<const isa::OpInfo*, uint64_t>> Simulator::op_histogram() const {
  std::vector<std::pair<const isa::OpInfo*, uint64_t>> out;
  for (size_t i = 0; i < op_counts_.size(); ++i)
    if (op_counts_[i] > 0) out.emplace_back(set_.all_ops()[i], op_counts_[i]);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::string Simulator::error_report() const {
  std::string out;
  if (state_.trapped())
    out += "trap: " + state_.trap_message() + "\n";
  else if (!decode_error_.empty())
    out += "decode error: " + decode_error_ + "\n";
  out += "  at " + image_.describe(state_.ip()) + "\n";

  uint32_t word = 0;
  if (state_.fetch32(state_.ip(), word) && active_isa_ != nullptr)
    out += "  instruction: " + kasm::disassemble_op(set_, *active_isa_, word) + "\n";

  const auto history = ip_history();
  if (!history.empty()) {
    out += "instruction pointer history (oldest first):\n";
    const size_t show = std::min<size_t>(history.size(), 16);
    for (size_t i = history.size() - show; i < history.size(); ++i)
      out += "  " + image_.describe(history[i]) + "\n";
  }
  return out;
}

} // namespace ksim::sim
