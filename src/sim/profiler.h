// Function-level profiler (paper §IV goal 2: "cycle-approximate performance
// results in combination with dynamic program analysis, e.g. profiling. This
// is ... especially important for the selection of appropriate ISAs for an
// application on function granularity").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "elf/loader.h"

namespace ksim::sim {

struct FuncProfile {
  std::string name;
  uint64_t instructions = 0;
  uint64_t operations = 0;
  uint64_t cycles = 0; ///< attributed from the active cycle model (if any)
  uint64_t calls = 0;
};

class Profiler {
public:
  void attach(const elf::LoadedImage* image) { image_ = image; }

  /// Accounts one instruction at `addr` with `ops` operations; `cycles_now`
  /// is the running cycle-model total (0 if no model is active).
  void on_instruction(uint32_t addr, int ops, uint64_t cycles_now);

  /// Accounts a call to the function containing `target`.
  void on_call(uint32_t target);

  /// Profiles sorted by cycles (descending), then instructions.
  std::vector<FuncProfile> report() const;

  void reset();

private:
  int func_index(uint32_t addr);

  const elf::LoadedImage* image_ = nullptr;
  std::vector<FuncProfile> profiles_; ///< parallel to image_->functions, +1 "<unknown>"
  uint64_t last_cycles_ = 0;
  // One-entry lookup cache: instruction streams stay inside one function for
  // long stretches.
  uint32_t cached_lo_ = 1;
  uint32_t cached_hi_ = 0;
  int cached_index_ = -1;
};

} // namespace ksim::sim
