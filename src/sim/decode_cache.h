// Decode cache (paper §V-A): all detected and decoded instructions are
// stored in a hash map tagged by the instruction address, so each executed
// instruction is detected and decoded only once.  The map key additionally
// includes the active ISA id because the same address decodes differently
// after a SWITCHTARGET.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "isa/exec.h"

namespace ksim::sim {

class DecodeCache {
public:
  /// Returns the cached decode structure for (addr, isa) or nullptr.
  isa::DecodedInstr* lookup(uint32_t addr, int isa_id) {
    const auto it = map_.find(key(addr, isa_id));
    return it == map_.end() ? nullptr : it->second.get();
  }

  /// Inserts a decode structure; returns the owned pointer.
  isa::DecodedInstr* insert(uint32_t addr, int isa_id,
                            std::unique_ptr<isa::DecodedInstr> di) {
    auto [it, inserted] = map_.emplace(key(addr, isa_id), std::move(di));
    return it->second.get();
  }

  /// Invalidates everything (e.g. after self-modifying code or a reload).
  void clear() { map_.clear(); }

  size_t size() const { return map_.size(); }

private:
  static uint64_t key(uint32_t addr, int isa_id) {
    return static_cast<uint64_t>(addr) | (static_cast<uint64_t>(isa_id) << 32);
  }

  std::unordered_map<uint64_t, std::unique_ptr<isa::DecodedInstr>> map_;
};

} // namespace ksim::sim
