// Decode cache (paper §V-A): all detected and decoded instructions are
// stored tagged by the instruction address, so each executed instruction is
// detected and decoded only once.  The key additionally includes the active
// ISA id because the same address decodes differently after a SWITCHTARGET.
//
// Storage is an arena plus an open-addressing hash table (see arena.h)
// instead of the former `std::unordered_map<uint64_t, unique_ptr<...>>`:
// decode structures live contiguously in memory (so superblock formation
// walks neighbouring cache lines), a miss costs a pointer bump instead of a
// malloc, and lookups probe a flat slot array.
#pragma once

#include <cstdint>

#include "isa/exec.h"
#include "sim/arena.h"

namespace ksim::sim {

class DecodeCache {
public:
  /// Returns the cached decode structure for (addr, isa) or nullptr.
  isa::DecodedInstr* lookup(uint32_t addr, int isa_id) const {
    return map_.find(AddrIsaMap<isa::DecodedInstr>::make_key(addr, isa_id));
  }

  /// Copies `di` into arena-backed storage and indexes it under (addr, isa).
  ///
  /// Duplicate-key semantics (explicit, unlike the seed's `emplace`, which
  /// silently dropped the fresh decode): inserting an existing key
  /// *overwrites the entry in place* and returns the same pointer that the
  /// first insert returned.  Pointer identity is preserved on purpose —
  /// prediction links and superblocks cache raw `DecodedInstr*` and must
  /// observe the refreshed decode rather than dangle.  Callers re-decoding
  /// genuinely changed code (self-modifying programs) must still invalidate
  /// derived state via Simulator::clear_decode_cache().
  isa::DecodedInstr* insert(uint32_t addr, int isa_id, const isa::DecodedInstr& di) {
    const uint64_t key = AddrIsaMap<isa::DecodedInstr>::make_key(addr, isa_id);
    if (isa::DecodedInstr* existing = map_.find(key)) {
      *existing = di;
      return existing;
    }
    isa::DecodedInstr* fresh = arena_.alloc();
    *fresh = di;
    map_.insert(key, fresh);
    return fresh;
  }

  /// Invalidates everything (e.g. after self-modifying code or a reload).
  void clear() {
    map_.clear();
    arena_.clear();
  }

  size_t size() const { return map_.size(); }
  size_t table_capacity() const { return map_.capacity(); }

  /// Visits every (key, entry) mapping in layout order (not canonical; see
  /// AddrIsaMap::for_each).  Used by checkpoint serialization.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each(std::forward<Fn>(fn));
  }

private:
  AddrIsaMap<isa::DecodedInstr> map_;
  ChunkArena<isa::DecodedInstr> arena_;
};

} // namespace ksim::sim
