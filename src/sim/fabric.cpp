#include "sim/fabric.h"

#include "support/error.h"

namespace ksim::sim {

struct Fabric::Thread {
  std::string name;
  Simulator sim;
  ThreadState state = ThreadState::Running;
  std::optional<StopReason> stop;
  uint64_t waited = 0;

  Thread(const isa::IsaSet& set, const SimOptions& options) : sim(set, options) {}

  int width(const isa::IsaSet& set) const {
    const isa::IsaInfo* isa = set.find_isa(sim.state().isa_id());
    return isa != nullptr ? isa->issue_width : 1;
  }
};

Fabric::Fabric(const isa::IsaSet& set, FabricConfig config)
    : set_(set), config_(config) {
  check(config_.total_edpes >= 1, "Fabric: need at least one EDPE");
}

Fabric::~Fabric() = default;

int Fabric::edpes_in_use() const {
  int used = 0;
  for (const auto& t : threads_)
    if (t->state != ThreadState::Finished) used += t->width(set_);
  return used;
}

int Fabric::spawn(const elf::ElfFile& exe, std::string name) {
  const isa::IsaInfo* entry = set_.find_isa(static_cast<int>(exe.flags));
  check(entry != nullptr, "Fabric::spawn: executable names an unknown entry ISA");
  if (entry->issue_width > edpes_free()) return -1;

  auto thread = std::make_unique<Thread>(set_, config_.sim_options);
  thread->name = std::move(name);
  thread->sim.load(exe);
  threads_.push_back(std::move(thread));
  return static_cast<int>(threads_.size()) - 1;
}

int Fabric::pending_demand(const Thread& t) const {
  // Peek the next instruction: if it is a SWITCHTARGET the thread is about
  // to change its EDPE footprint; make the scheduler aware so an up-switch
  // can wait for capacity instead of over-subscribing the array.
  const isa::IsaInfo* cur = set_.find_isa(t.sim.state().isa_id());
  if (cur == nullptr) return t.width(set_);
  // In the steady state the thread's decode cache already holds the next
  // instruction — peek the cached decode and only fall back to the linear
  // operation-detection scan on a cold address.
  const isa::OpInfo* op = nullptr;
  int target_id = -1;
  if (const isa::DecodedInstr* di = t.sim.cached_decode(t.sim.state().ip());
      di != nullptr && di->num_ops > 0) {
    op = di->ops[0].info;
    target_id = di->ops[0].imm;
  } else {
    uint32_t word = 0;
    if (!t.sim.state().fetch32(t.sim.state().ip(), word)) return t.width(set_);
    op = set_.detect(*cur, word);
    if (op != nullptr) target_id = static_cast<int>(op->f_imm.extract(word));
  }
  if (op == nullptr || op->name != "SWITCHTARGET") return cur->issue_width;
  const isa::IsaInfo* target = set_.find_isa(target_id);
  return target != nullptr ? target->issue_width : cur->issue_width;
}

int Fabric::step_all() {
  int unfinished = 0;
  progressed_ = false;
  for (auto& t : threads_) {
    if (t->state == ThreadState::Finished) continue;
    ++unfinished;

    const int current = t->width(set_);
    const int demand = pending_demand(*t);
    if (demand > current && demand - current > edpes_free()) {
      // Reconfiguration to a wider instance must wait for free EDPEs.
      t->state = ThreadState::WaitingForEdpes;
      ++t->waited;
      continue;
    }
    t->state = ThreadState::Running;
    progressed_ = true;
    const auto stop = t->sim.step();
    if (stop.has_value()) {
      t->state = ThreadState::Finished;
      t->stop = stop;
    }
  }
  ++steps_;
  return unfinished;
}

void Fabric::run_to_completion() {
  while (step_all() > 0) {
    check(progressed_,
          "Fabric: reconfiguration deadlock — every unfinished thread is "
          "waiting for EDPEs");
    check(steps_ < config_.max_steps, "Fabric: step limit reached");
  }
}

ThreadStatus Fabric::status(int thread_id) const {
  check(thread_id >= 0 && static_cast<size_t>(thread_id) < threads_.size(),
        "Fabric::status: bad thread id");
  const Thread& t = *threads_[static_cast<size_t>(thread_id)];
  ThreadStatus s;
  s.name = t.name;
  s.state = t.state;
  s.edpes = t.state == ThreadState::Finished ? 0 : t.width(set_);
  s.stop = t.stop;
  s.exit_code = t.sim.exit_code();
  s.instructions = t.sim.stats().instructions;
  s.waited_steps = t.waited;
  return s;
}

const std::string& Fabric::output(int thread_id) const {
  check(thread_id >= 0 && static_cast<size_t>(thread_id) < threads_.size(),
        "Fabric::output: bad thread id");
  return threads_[static_cast<size_t>(thread_id)]->sim.libc().output();
}

} // namespace ksim::sim
