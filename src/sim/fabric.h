// Resource-level model of the KAHRISMA fabric (paper Fig. 1 and §III):
// a pool of EDPEs (encapsulated datapath elements) from which hardware
// threads are instantiated.  Each thread is a processor instance whose ISA
// configuration determines how many EDPEs it occupies (RISC = 1, n-issue
// VLIW = n).  Threads can be spawned at run time as long as EDPEs are
// available, and a thread's SWITCHTARGET reconfigurations change its
// footprint dynamically — switching to a wider ISA blocks until the fabric
// has capacity (the hardware would likewise wait for tiles to free up).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace ksim::sim {

struct FabricConfig {
  int total_edpes = 8;           ///< EDPE array size
  SimOptions sim_options;        ///< per-thread simulator options
  uint64_t max_steps = 50'000'000; ///< global scheduling-step safety limit
};

enum class ThreadState { Running, WaitingForEdpes, Finished };

struct ThreadStatus {
  std::string name;
  ThreadState state = ThreadState::Running;
  int edpes = 0;                ///< current footprint
  std::optional<StopReason> stop;
  int exit_code = 0;
  uint64_t instructions = 0;
  uint64_t waited_steps = 0;    ///< scheduler rounds spent waiting for EDPEs
};

class Fabric {
public:
  explicit Fabric(const isa::IsaSet& set, FabricConfig config = {});
  ~Fabric();

  /// Instantiates a hardware thread.  Fails (returns -1) when the entry
  /// ISA's EDPE demand exceeds the currently free capacity.
  int spawn(const elf::ElfFile& exe, std::string name);

  /// EDPEs currently occupied / free.
  int edpes_in_use() const;
  int edpes_free() const { return config_.total_edpes - edpes_in_use(); }

  /// Advances every runnable thread by one instruction (round robin).
  /// Returns the number of threads still unfinished.
  int step_all();

  /// Runs until every thread finished (or the step limit is reached).
  void run_to_completion();

  ThreadStatus status(int thread_id) const;
  size_t thread_count() const { return threads_.size(); }

  /// The program output of a finished (or running) thread.
  const std::string& output(int thread_id) const;

private:
  struct Thread;

  /// EDPE demand of the ISA a thread is about to need (peeks SWITCHTARGET).
  int pending_demand(const Thread& t) const;

  const isa::IsaSet& set_;
  FabricConfig config_;
  std::vector<std::unique_ptr<Thread>> threads_;
  uint64_t steps_ = 0;
  bool progressed_ = false;
};

} // namespace ksim::sim
