// Emulated C standard library (paper §V-E): SIMOP operations are dispatched
// here; the emulator reads arguments from registers/stack according to the
// calling convention, performs the library function natively on the simulated
// memory, and writes the result back to r4.
#pragma once

#include <cstdint>
#include <string>

#include "isa/exec.h"
#include "isa/kisa.h"
#include "support/byte_stream.h"

namespace ksim::sim {

class LibcEmulator final : public isa::SimOpHandler {
public:
  LibcEmulator() = default;

  /// Configures the heap region used by malloc (set by the simulator after
  /// loading an executable: image end .. below the stack).
  void set_heap(uint32_t start, uint32_t end) {
    heap_start_ = heap_ptr_ = start;
    heap_end_ = end;
  }

  /// Program output (stdout of the simulated program) accumulates here.
  const std::string& output() const { return output_; }
  void clear_output() { output_.clear(); }

  /// Also echo program output to the host's stdout.
  void set_echo(bool echo) { echo_ = echo; }

  bool exited() const { return exited_; }
  int exit_code() const { return exit_code_; }

  uint64_t calls() const { return calls_; }
  uint32_t heap_used() const { return heap_ptr_ - heap_start_; }

  // kjit SIMOP fast paths (jit::simop_fast_path) mutate emulator state
  // directly from generated code; these expose the exact fields the inline
  // sequences need, by pointer so a checkpoint restore can never stale them.
  uint64_t* jit_calls() { return &calls_; }
  uint32_t* jit_rand_state() { return &rand_state_; }
  uint32_t* jit_heap_ptr() { return &heap_ptr_; }
  uint32_t* jit_heap_end() { return &heap_end_; }

  void handle(int op_number, isa::ExecCtx& ctx) override;

  /// Initial rand() state applied by reset() (SimOptions::libc_seed; the
  /// simulated program can still override it via srand()).  Recorded in
  /// checkpoints so replayed runs are self-describing.
  void set_seed(uint32_t seed) { seed_ = seed; }
  uint32_t seed() const { return seed_; }

  /// Resets dynamic state (heap pointer, rand state, exit flag, output).
  void reset();

  /// Serializes / restores all emulation state a simulated program can
  /// observe (heap break, rand state, exit status, accumulated output) for
  /// kckpt.  Host-side configuration (echo) is not part of a snapshot.
  void save(support::ByteWriter& w) const;
  void restore(support::ByteReader& r);

private:
  uint32_t arg(const isa::ExecCtx& ctx, unsigned index) const;
  void emit(std::string_view text);
  void do_printf(isa::ExecCtx& ctx);

  std::string output_;
  bool echo_ = false;
  bool exited_ = false;
  int exit_code_ = 0;
  uint64_t calls_ = 0;
  uint32_t heap_start_ = 0;
  uint32_t heap_ptr_ = 0;
  uint32_t heap_end_ = 0;
  uint32_t seed_ = 1;
  uint32_t rand_state_ = 1;
};

} // namespace ksim::sim
