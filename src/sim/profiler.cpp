#include "sim/profiler.h"

#include <algorithm>

namespace ksim::sim {

int Profiler::func_index(uint32_t addr) {
  if (image_ == nullptr) return -1;
  if (profiles_.empty()) {
    profiles_.resize(image_->functions.size() + 1);
    for (size_t i = 0; i < image_->functions.size(); ++i)
      profiles_[i].name = image_->functions[i].name;
    profiles_.back().name = "<unknown>";
  }
  if (addr >= cached_lo_ && addr <= cached_hi_) return cached_index_;
  const elf::FuncInfo* f = image_->find_function(addr);
  if (f == nullptr) {
    cached_lo_ = 1;
    cached_hi_ = 0;
    return static_cast<int>(profiles_.size()) - 1;
  }
  cached_lo_ = f->addr;
  cached_hi_ = f->addr + f->size - 1;
  cached_index_ = static_cast<int>(f - image_->functions.data());
  return cached_index_;
}

void Profiler::on_instruction(uint32_t addr, int ops, uint64_t cycles_now) {
  const int idx = func_index(addr);
  if (idx < 0) return;
  FuncProfile& p = profiles_[static_cast<size_t>(idx)];
  ++p.instructions;
  p.operations += static_cast<uint64_t>(ops);
  p.cycles += cycles_now - last_cycles_;
  last_cycles_ = cycles_now;
}

void Profiler::on_call(uint32_t target) {
  const int idx = func_index(target);
  if (idx >= 0) ++profiles_[static_cast<size_t>(idx)].calls;
}

std::vector<FuncProfile> Profiler::report() const {
  std::vector<FuncProfile> out;
  for (const FuncProfile& p : profiles_)
    if (p.instructions > 0 || p.calls > 0) out.push_back(p);
  std::sort(out.begin(), out.end(), [](const FuncProfile& a, const FuncProfile& b) {
    if (a.cycles != b.cycles) return a.cycles > b.cycles;
    return a.instructions > b.instructions;
  });
  return out;
}

void Profiler::reset() {
  profiles_.clear();
  last_cycles_ = 0;
  cached_lo_ = 1;
  cached_hi_ = 0;
  cached_index_ = -1;
}

} // namespace ksim::sim
