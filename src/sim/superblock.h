// Superblocks: straight-line traces of decoded instructions executed by a
// tight inner loop (see DESIGN.md).  This generalizes the paper's §V-A
// single-edge "instruction prediction" into many-edge block chaining: a
// block records the dynamic instruction sequence up to the next taken
// branch, ISA switch, emulated C-library call or trap, and its epilogue
// caches the taken and fall-through successor *blocks*, so steady-state
// execution dispatches block-to-block without touching any hash table.
#pragma once

#include <cstdint>

#include "isa/exec.h"
#include "sim/arena.h"

namespace ksim::sim {

/// Formation stops after this many instruction groups even without a block
/// terminator; long straight-line code is simply split across several blocks.
inline constexpr int kMaxBlockInstrs = 32;

struct Superblock {
  uint32_t entry_addr = 0;
  int16_t isa_id = 0;
  uint16_t num_instrs = 0;

  /// Cached successor blocks, updated like the paper's 1-bit instruction
  /// prediction: succ[1] is consulted when the block exited on a taken
  /// branch, succ[0] when it fell through (or a mid-block conditional was
  /// not taken at formation but taken later — then succ[1] covers that side
  /// exit).  A stale edge (e.g. an indirect jump changing targets) is
  /// detected by re-checking entry_addr/isa_id and simply overwritten.
  Superblock* succ[2] = {nullptr, nullptr};

  /// Pointers into the decode-cache arena; valid until the cache is cleared.
  const isa::DecodedInstr* instrs[kMaxBlockInstrs] = {};

  // -- kjit (see jit/jit.h) -------------------------------------------------
  // All three fields are process-local and never serialized: checkpoints
  // carry no host code and no hotness, so a restored run re-earns
  // translation lazily (the counters are also hook-dependent — they only
  // advance on the hook-free fast path).
  uint32_t exec_count = 0;         ///< fast-path dispatches (hotness)
  uint8_t jit_state = 0;           ///< 0 cold, 1 translated, 2 declined
  const void* jit_entry = nullptr; ///< jit::BlockFn when jit_state == 1
};

/// Arena + open-addressing table of superblocks keyed by (entry address,
/// ISA id).  Blocks are only ever invalidated wholesale (clear()), together
/// with the decode cache whose storage they point into.
class SuperblockCache {
public:
  Superblock* lookup(uint32_t entry_addr, int isa_id) {
    return map_.find(AddrIsaMap<Superblock>::make_key(entry_addr, isa_id));
  }

  /// Arena-allocates an empty, unindexed block (formation fills it in).
  Superblock* create(uint32_t entry_addr, int isa_id) {
    Superblock* sb = arena_.alloc();
    sb->entry_addr = entry_addr;
    sb->isa_id = static_cast<int16_t>(isa_id);
    sb->num_instrs = 0;
    sb->succ[0] = sb->succ[1] = nullptr;
    sb->exec_count = 0;
    sb->jit_state = 0;
    sb->jit_entry = nullptr;
    return sb;
  }

  /// Indexes a formed block under its entry key.  Duplicate keys overwrite
  /// the mapping (the newest formation wins); the displaced block stays
  /// alive in the arena because chained edges may still reference it.
  void insert(Superblock* sb) {
    map_.insert(AddrIsaMap<Superblock>::make_key(sb->entry_addr, sb->isa_id), sb);
  }

  void clear() {
    map_.clear();
    arena_.clear();
  }

  size_t size() const { return map_.size(); }

  /// Visits every (key, block) mapping in layout order (not canonical; see
  /// AddrIsaMap::for_each).  Used by checkpoint serialization.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each(std::forward<Fn>(fn));
  }

  /// Visits every block in the arena — including blocks displaced from the
  /// index by a re-formation, which chain edges may still reference.  A
  /// JIT-wide invalidation (the code-cache exhaustion flush) must null
  /// jit_entry on all of them, not just the indexed ones.
  template <typename Fn>
  void for_each_block(Fn&& fn) {
    arena_.for_each(std::forward<Fn>(fn));
  }

private:
  AddrIsaMap<Superblock> map_;
  ChunkArena<Superblock, 64> arena_;
};

} // namespace ksim::sim
