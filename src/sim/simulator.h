// The cycle-approximate, mixed-ISA, interpretation-based instruction set
// simulator (paper §V): detect → decode → execute loop with a decode cache
// and instruction prediction, optional cycle approximation, trace generation,
// profiling and debugging support.
//
// On top of the paper's §V-A optimizations, run() executes through a
// superblock engine (see superblock.h and DESIGN.md): consecutively executed
// instruction groups are linked into straight-line traces dispatched by a
// tight inner loop, and block epilogues cache their successor blocks so
// steady-state execution never touches a hash table.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cycle/cycle_model.h"
#include "elf/loader.h"
#include "isa/arch_state.h"
#include "isa/exec.h"
#include "jit/jit.h"
#include "sim/decode_cache.h"
#include "sim/libc_emul.h"
#include "sim/profiler.h"
#include "sim/superblock.h"
#include "sim/trace.h"

namespace ksim::sim {

struct SimOptions {
  bool use_decode_cache = true; ///< §V-A decode cache
  bool use_prediction = true;   ///< §V-A instruction prediction (needs the cache)
  bool use_superblocks = true;  ///< superblock execution in run() (needs the cache)
  bool use_jit = true;          ///< kjit binary translation (needs superblocks;
                                ///< inert off x86-64 and under sanitizers)
  bool collect_op_stats = false;///< per-operation execution histogram
  uint64_t max_instructions = 0;///< safety limit; 0 = unlimited
  size_t ip_history = 64;       ///< instruction pointer history length (0 = off)
  uint32_t libc_seed = 1;       ///< initial rand() state (ksim run --seed)
};

struct SimStats {
  uint64_t instructions = 0; ///< executed instructions (groups)
  uint64_t operations = 0;   ///< executed operations (slots)
  uint64_t decodes = 0;      ///< instructions actually detected & decoded
  uint64_t cache_lookups = 0;///< decode/block-cache hash lookups performed
  uint64_t pred_hits = 0;    ///< lookups avoided by prediction or block chaining
  uint64_t isa_switches = 0; ///< SWITCHTARGET executions
  uint64_t libc_calls = 0;   ///< emulated C library calls

  // Superblock engine (only advance when SimOptions::use_superblocks).
  uint64_t blocks_formed = 0;    ///< superblocks built from executed traces
  uint64_t block_dispatches = 0; ///< block executions of already-formed blocks
  uint64_t block_chain_hits = 0; ///< dispatches resolved via a cached successor edge

  // kjit (see jit/jit.h).  These counters describe the *current process's*
  // translation activity; they are volatile by contract — reset by load()
  // and restore_state() and never serialized — because hotness is
  // hook-dependent and checkpoints carry no host code (DESIGN.md §9).
  uint64_t jit_blocks_translated = 0; ///< superblocks compiled to host code
  uint64_t jit_dispatches = 0;        ///< executions entered through host code
  uint64_t jit_side_exits = 0;        ///< mid-block taken-branch exits
  uint64_t jit_bailouts = 0;          ///< guard failures handed to the interpreter
  uint64_t jit_cache_flushes = 0;     ///< code-cache exhaustion flush-and-rewarm

  /// Fraction of executed instructions whose detect & decode was avoided.
  double decode_avoidance() const {
    return instructions == 0
               ? 0.0
               : 1.0 - static_cast<double>(decodes) / static_cast<double>(instructions);
  }
  /// Fraction of potential hash lookups avoided by prediction/block chaining.
  double lookup_avoidance() const {
    const uint64_t total = cache_lookups + pred_hits;
    return total == 0 ? 0.0 : static_cast<double>(pred_hits) / static_cast<double>(total);
  }
  /// Fraction of block dispatches that skipped the block table entirely.
  double block_chain_avoidance() const {
    return block_dispatches == 0
               ? 0.0
               : static_cast<double>(block_chain_hits) /
                     static_cast<double>(block_dispatches);
  }
};

enum class StopReason {
  Exited,           ///< program called exit()
  Halted,           ///< HALT instruction
  Trap,             ///< runtime error (bad memory access, div by zero, ...)
  DecodeError,      ///< undecodable instruction or bad instruction address
  InstructionLimit, ///< SimOptions::max_instructions reached
  Checkpoint,       ///< a checkpoint hook requested the run to stop (kckpt replay)
};

const char* to_string(StopReason reason);

class Simulator {
public:
  explicit Simulator(const isa::IsaSet& set, SimOptions options = {});

  isa::ArchState& state() { return state_; }
  const isa::ArchState& state() const { return state_; }
  LibcEmulator& libc() { return libc_; }
  const elf::LoadedImage& image() const { return image_; }
  const SimStats& stats() const { return stats_; }
  const SimOptions& options() const { return options_; }

  /// Loads an executable, initializes IP/ISA per the ELF header, sets up the
  /// emulated heap and resets run state.
  void load(const elf::ElfFile& executable);

  /// Optional hooks (may be null).  The cycle model is consulted after every
  /// instruction; the profiler attributes instructions/cycles to functions;
  /// the trace writer logs every operation.  All hooks stay exact under
  /// superblock execution (blocks fall back to full per-instruction
  /// bookkeeping while any hook is attached).
  void set_cycle_model(cycle::CycleModel* model) { cycle_model_ = model; }
  void set_trace(TraceWriter* trace) { trace_ = trace; }
  void set_profiler(Profiler* profiler);

  /// Raises or lowers SimOptions::max_instructions mid-run (e.g. to resume
  /// after StopReason::InstructionLimit).
  void set_max_instructions(uint64_t limit) { options_.max_instructions = limit; }

  /// Address ranges the static translatability analysis vetoed for the JIT
  /// (analysis::classify_translatability reason masks).  Blocks intersecting
  /// any range are never translated; everything else is eligible once hot.
  void set_jit_policy(std::vector<jit::VetoRange> vetoes) {
    jit_vetoes_ = std::move(vetoes);
  }

  /// Streams every installed translation (superblock header + host code hex)
  /// to `os` — `ksim run --jit-dump-asm`.  Null detaches.  Host-side debug
  /// output only; it never influences translation or execution.
  void set_jit_dump(std::ostream* os) { jit_dump_ = os; }

  /// Overrides the JIT code-cache budget (see jit::CodeCache::set_budget).
  /// Only effective before the first translation; exists so tests can
  /// exercise cache exhaustion cheaply.
  void set_jit_cache_budget(size_t total_bytes, size_t chunk_bytes) {
    jit_cache_.set_budget(total_bytes, chunk_bytes);
  }

  /// Checkpoint hook (kckpt): every `every_instrs` executed instructions the
  /// hook fires at the next block/step boundary — a point where no superblock
  /// is mid-flight, so saved state resumes bit-identically.  Returning true
  /// stops the run with StopReason::Checkpoint (replay); returning false
  /// continues (periodic snapshots).  every_instrs == 0 detaches the hook.
  void set_checkpoint_hook(uint64_t every_instrs,
                           std::function<bool(Simulator&)> fn) {
    ckpt_every_ = every_instrs;
    ckpt_fn_ = std::move(fn);
    ckpt_next_ = every_instrs == 0 ? UINT64_MAX
                                   : (stats_.instructions / every_instrs + 1) *
                                         every_instrs;
  }

  /// Serializes the complete execution state: architectural state, libc
  /// emulation, IP history, decode cache, prediction link, superblocks with
  /// their chain edges, and statistics.  The encoding is canonical (sorted
  /// cache orders), so identical simulator states produce identical bytes.
  void save_state(support::ByteWriter& w) const;

  /// Restores state saved by save_state() into a simulator that has load()ed
  /// the same executable with the same options.  Decode cache and superblocks
  /// are rebuilt by re-decoding from the restored memory image, then
  /// re-linked; statistics are restored last so the rebuild does not perturb
  /// them.  Throws ksim::Error (leaving the simulator in need of a fresh
  /// load()) if the checkpoint does not match the loaded program.
  void restore_state(support::ByteReader& r);

  /// Runs until exit/halt/trap/limit.
  StopReason run();

  /// Executes exactly one instruction; returns nullopt while runnable.
  /// Stepping uses the §V-A decode-cache + prediction path (superblocks only
  /// accelerate run()); the two may be interleaved freely.
  std::optional<StopReason> step();

  int exit_code() const { return libc_.exit_code(); }

  /// Multi-line report describing why and where the simulation stopped
  /// (trap message, IP, function/source mapping, IP history, disassembly) —
  /// the paper's §IV goal 4 (error detection within applications).
  std::string error_report() const;

  /// Recently executed instruction addresses, oldest first.
  std::vector<uint32_t> ip_history() const;

  /// Clears the decode cache (e.g. after self-modifying code or to measure
  /// cold-start behaviour).  Also drops the instruction-prediction link and
  /// all superblocks with their chain edges, which point into the cache —
  /// and every JIT translation, which bakes the cache contents into host
  /// code (the staleness contract in jit/jit.h: translations are exactly as
  /// stale as the decode cache, never staler).
  void clear_decode_cache() {
    decode_cache_.clear();
    block_cache_.clear(); // also drops all Superblock::jit_entry pointers
    jit_cache_.clear();
    prev_instr_ = nullptr;
    last_block_ = nullptr;
  }

  /// Cached decode structure at `ip` under the current ISA, or nullptr.
  /// Lets external schedulers (the fabric) peek upcoming instructions
  /// without re-running operation detection.
  const isa::DecodedInstr* cached_decode(uint32_t ip) const {
    return decode_cache_.lookup(ip, state_.isa_id());
  }

  /// Per-operation execution counts (requires SimOptions::collect_op_stats),
  /// sorted by count descending.  Useful for the high-level-counter style of
  /// performance estimation the paper contrasts itself with (§II, [12]).
  std::vector<std::pair<const isa::OpInfo*, uint64_t>> op_histogram() const;

private:
  bool decode_at(uint32_t ip, isa::DecodedInstr& out, std::string& error);
  const isa::IsaInfo* isa_by_id(int id) const;
  void record_ip(uint32_t ip);

  /// Everything step() does after the decode structure is in hand: execute
  /// all slots, trace, commit, statistics, hooks, ISA reconfiguration and
  /// stop conditions.  `update_prev` maintains the §V-A prediction link
  /// (true only on the step() path).
  std::optional<StopReason> exec_and_retire(isa::DecodedInstr* di, bool update_prev);

  /// ISA reconfiguration after an instruction with ctx_.isa_switch set.
  std::optional<StopReason> apply_isa_switch();

  // -- checkpoint hook (see set_checkpoint_hook) ----------------------------
  bool checkpoint_due() const { return stats_.instructions >= ckpt_next_; }
  bool fire_checkpoint();

  // -- superblock engine (see DESIGN.md) ------------------------------------
  StopReason run_superblocks();
  std::optional<StopReason> form_block(uint32_t entry_ip);
  std::optional<StopReason> exec_block(Superblock* sb);
  std::optional<StopReason> exec_block_fast(Superblock* sb, uint16_t start_index = 0);
  std::optional<StopReason> exec_block_slow(Superblock* sb);

  // -- kjit (see jit/jit.h and DESIGN.md §9) --------------------------------
  void try_translate(Superblock* sb);
  void flush_jit_translations();
  void dump_jit_translation(const Superblock* sb, const jit::Translation& tr,
                            jit::BlockFn fn) const;
  std::optional<StopReason> run_jit_loop(Superblock* sb, bool chained);

  const isa::IsaSet& set_;
  SimOptions options_;
  isa::ArchState state_;
  elf::LoadedImage image_;
  DecodeCache decode_cache_;
  LibcEmulator libc_;
  isa::ExecCtx ctx_;
  SimStats stats_;

  const isa::IsaInfo* active_isa_ = nullptr;
  const isa::OpInfo* simop_info_ = nullptr; ///< for DecodedInstr flag tagging
  isa::DecodedInstr* prev_instr_ = nullptr; ///< for instruction prediction
  isa::DecodedInstr scratch_instr_;         ///< decode target before caching

  SuperblockCache block_cache_;
  Superblock* last_block_ = nullptr; ///< block whose epilogue edge to chain next
  int last_exit_taken_ = 0;          ///< which edge: 1 = taken branch, 0 = fall-through

  jit::CodeCache jit_cache_;
  jit::JitContext jit_ctx_;
  std::vector<jit::VetoRange> jit_vetoes_;
  std::ostream* jit_dump_ = nullptr;

  cycle::CycleModel* cycle_model_ = nullptr;
  TraceWriter* trace_ = nullptr;
  Profiler* profiler_ = nullptr;

  std::vector<uint64_t> op_counts_;
  std::vector<uint32_t> ip_ring_;
  size_t ip_ring_pos_ = 0;
  bool ip_ring_full_ = false;

  uint64_t ckpt_every_ = 0;
  uint64_t ckpt_next_ = UINT64_MAX;
  std::function<bool(Simulator&)> ckpt_fn_;

  std::string decode_error_;
  bool loaded_ = false;
};

} // namespace ksim::sim
