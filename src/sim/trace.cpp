#include "sim/trace.h"

#include "support/strings.h"

namespace ksim::sim {

void TraceWriter::record_op(uint64_t cycle, uint32_t addr, int slot,
                            const isa::DecodedOp& op, const isa::ExecCtx& ctx,
                            int wb_begin, int wb_end) {
  const isa::OpInfo& info = *op.info;
  std::string line = strf("%llu %s s%d %s", static_cast<unsigned long long>(cycle),
                          hex32(addr).c_str(), slot, info.name.c_str());
  if (info.ra_is_src)
    line += strf(" in r%u=%s", op.ra, hex32(ctx.st->reg(op.ra)).c_str());
  if (info.rb_is_src)
    line += strf(" in r%u=%s", op.rb, hex32(ctx.st->reg(op.rb)).c_str());
  if (info.rd_is_src)
    line += strf(" in r%u=%s", op.rd, hex32(ctx.st->reg(op.rd)).c_str());
  if (info.f_imm.valid) line += strf(" imm=%d", op.imm);
  for (int i = wb_begin; i < wb_end; ++i)
    line += strf(" out r%u=%s", ctx.wb[i].reg, hex32(ctx.wb[i].value).c_str());
  if (ctx.mem[slot].valid)
    line += strf(" mem %s%u @%s", ctx.mem[slot].is_store ? "w" : "r", ctx.mem[slot].size,
                 hex32(ctx.mem[slot].addr).c_str());
  line += '\n';
  os_ << line;
  ++records_;
}

} // namespace ksim::sim
