// Storage primitives shared by the decode cache and the superblock cache:
// a chunked arena that hands out pointer-stable, (mostly) contiguous objects
// with a pointer bump, and a small open-addressing hash table mapping
// (address, ISA id) keys to arena pointers.  Together they replace the
// seed's `std::unordered_map<uint64_t, std::unique_ptr<...>>`, whose
// node-per-entry allocation scattered decode structures across the heap and
// made every miss pay a malloc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ksim::sim {

/// Bump allocator over fixed-size chunks.  Objects are value-constructed,
/// never individually freed, and their addresses stay stable until clear()
/// (callers cache raw pointers across lookups, e.g. prediction and block
/// links).  Consecutive allocations land consecutively in memory, so a
/// superblock formed from freshly decoded instructions walks a contiguous
/// range.
template <typename T, size_t ChunkSize = 256>
class ChunkArena {
public:
  T* alloc() {
    if (used_ == ChunkSize) {
      chunks_.push_back(std::make_unique<Chunk>());
      used_ = 0;
    }
    return &chunks_.back()->items[used_++];
  }

  void clear() {
    chunks_.clear();
    used_ = ChunkSize;
  }

  size_t size() const {
    return chunks_.empty() ? 0 : (chunks_.size() - 1) * ChunkSize + used_;
  }

  /// Visits every allocated object in allocation order — including objects
  /// no longer reachable through any index (callers may hold raw pointers to
  /// them).  Used for whole-arena invalidation sweeps.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (size_t c = 0; c < chunks_.size(); ++c) {
      const size_t n = c + 1 == chunks_.size() ? used_ : ChunkSize;
      for (size_t i = 0; i < n; ++i) fn(chunks_[c]->items[i]);
    }
  }

private:
  struct Chunk {
    T items[ChunkSize]{};
  };
  std::vector<std::unique_ptr<Chunk>> chunks_;
  size_t used_ = ChunkSize;
};

/// Open-addressing (linear probing) hash table from a 64-bit key to a T*.
/// No deletion — entries only accumulate until clear(), which matches the
/// decode-cache lifecycle (invalidation is all-or-nothing).  Empty slots are
/// marked by a null value pointer, so every key value is usable.
template <typename T>
class AddrIsaMap {
public:
  AddrIsaMap() { slots_.resize(kInitialCapacity); }

  static uint64_t make_key(uint32_t addr, int isa_id) {
    return static_cast<uint64_t>(addr) |
           (static_cast<uint64_t>(static_cast<uint32_t>(isa_id)) << 32);
  }

  T* find(uint64_t key) const {
    size_t i = index(key);
    while (slots_[i].value != nullptr) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & (slots_.size() - 1);
    }
    return nullptr;
  }

  /// Maps `key` to `value`.  An existing mapping is replaced (the table holds
  /// non-owning pointers, so replacing never frees anything).
  void insert(uint64_t key, T* value) {
    if ((count_ + 1) * 4 > slots_.size() * 3) grow(); // keep load factor <= 75%
    size_t i = index(key);
    while (slots_[i].value != nullptr) {
      if (slots_[i].key == key) {
        slots_[i].value = value;
        return;
      }
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i] = {key, value};
    ++count_;
  }

  void clear() {
    slots_.assign(kInitialCapacity, Slot{});
    count_ = 0;
  }

  size_t size() const { return count_; }
  size_t capacity() const { return slots_.size(); }

  /// Visits every (key, value) mapping.  Iteration order is table order and
  /// thus layout-dependent; callers needing a canonical order (checkpoint
  /// serialization) must sort by key themselves.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_)
      if (s.value != nullptr) fn(s.key, s.value);
  }

private:
  static constexpr size_t kInitialCapacity = 1024; // power of two

  struct Slot {
    uint64_t key = 0;
    T* value = nullptr;
  };

  size_t index(uint64_t key) const {
    // Fibonacci hashing spreads the low-entropy (word-aligned address, tiny
    // ISA id) keys across the table.
    return static_cast<size_t>((key * 0x9E3779B97F4A7C15ull) >> 17) &
           (slots_.size() - 1);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    count_ = 0;
    for (const Slot& s : old)
      if (s.value != nullptr) insert(s.key, s.value);
  }

  std::vector<Slot> slots_;
  size_t count_ = 0;
};

} // namespace ksim::sim
