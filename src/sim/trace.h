// Trace file generation (paper §V, goal 3): for each executed operation the
// cycle number, opcode, input/output register numbers and values, and
// immediate values are appended to the trace.  The trace validates other
// implementations of the ISA (e.g. an RTL model) and can serve as stimuli for
// partial implementations.
#pragma once

#include <cstdint>
#include <ostream>

#include "isa/exec.h"

namespace ksim::sim {

class TraceWriter {
public:
  explicit TraceWriter(std::ostream& os) : os_(os) {}

  /// Records one executed operation.  `wb_begin`/`wb_end` delimit the entries
  /// this operation appended to the write-back buffer.
  void record_op(uint64_t cycle, uint32_t addr, int slot, const isa::DecodedOp& op,
                 const isa::ExecCtx& ctx, int wb_begin, int wb_end);

  uint64_t records() const { return records_; }

private:
  std::ostream& os_;
  uint64_t records_ = 0;
};

} // namespace ksim::sim
