#include "sim/superblock.h"
