#include "sim/decode_cache.h"
