// libksim — the embeddable public surface of the simulator (DESIGN.md §7).
//
// RunConfig is the single source of truth for everything that determines a
// simulation: program selection, target ISA, cycle model, branch prediction,
// the §V-A engine switches, run bounds, the emulated-libc seed, host-side I/O
// behaviour and checkpointing.  The CLI flags of `ksim run`, the checkpoint
// RUN section and the sweep engine all map onto this one value type, so a
// configuration can be round-tripped between them without loss.
//
// Environment knobs (KSIM_NO_SUPERBLOCKS, ...) are DEPRECATED in favour of
// RunConfig fields and their CLI flags; apply_env_overrides() keeps them
// working and tells the caller which ones were used so it can print a
// one-line deprecation warning per knob.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "cycle/mem_hierarchy.h"
#include "elf/elf.h"
#include "sim/simulator.h"

namespace ksim::api {

struct RunConfig {
  // -- program selection (exactly one of workload / inputs) -----------------
  std::string workload;            ///< built-in workload name ("" = use inputs)
  std::vector<std::string> inputs; ///< .c/.s files to build, or one .elf
  std::string isa = "RISC";        ///< entry ISA (ignored for .elf inputs)

  // -- cycle approximation ---------------------------------------------------
  std::string model = "none";      ///< none | ilp | aie | doe | rtl
  std::string bp_kind;             ///< predictor for AIE/DOE ("" = perfect)
  int bp_penalty = 3;              ///< mispredict refill penalty (cycles)
  cycle::MemGeometry memory;       ///< kdse memory geometry (defaults = paper
                                   ///< §VII hierarchy; ILP uses l1.hit_latency)

  // -- engine switches (paper §V-A + superblock engine + kjit) --------------
  bool use_decode_cache = true;
  bool use_prediction = true;
  bool use_superblocks = true;
  bool use_jit = true;             ///< kjit binary translation (needs
                                   ///< superblocks; inert off x86-64)
  bool collect_op_stats = false;

  // -- run bounds & determinism ---------------------------------------------
  uint64_t max_instructions = 0;   ///< 0 = unlimited
  uint32_t seed = 1;               ///< emulated-libc rand() seed

  // -- host-side behaviour (not part of simulated state) --------------------
  bool echo_output = true;         ///< echo simulated stdout to host stdout
  bool profile = false;            ///< attach the function-level profiler
  std::string trace_file;          ///< operation trace destination ("" = off)
  std::string jit_dump_asm;        ///< kjit host-code dump destination ("" = off)

  // -- checkpointing (kckpt, DESIGN.md §5c) ---------------------------------
  uint64_t ckpt_every = 0;         ///< snapshot period in instructions (0 = off)
  std::string ckpt_dir;            ///< ckpt-<n>.kckpt directory
  unsigned ckpt_keep = 3;          ///< snapshots retained

  /// Checks internal consistency (known ISA/model/predictor names, flag
  /// combinations such as --bp without aie/doe, checkpointing vs rtl).
  /// Throws ksim::Error with a user-facing message; program selection is
  /// NOT checked here (resolve_input reports missing inputs).
  void validate() const;

  /// The simulator-core subset of this configuration.
  sim::SimOptions sim_options() const;

  /// The checkpoint RUN section for this configuration (elf_bytes left
  /// empty; sessions fill it only when they actually snapshot).
  ckpt::RunRecord run_record(const std::string& label) const;

  /// The checkpoint RUN section for this configuration + resolved program.
  ckpt::RunRecord run_record(const elf::ElfFile& exe,
                             const std::string& label) const;

  /// Rebuilds the configuration a checkpoint was taken under (host-side
  /// fields take their defaults; `workload`/`inputs` stay empty because the
  /// executable bytes live in the record itself).
  static RunConfig from_run_record(const ckpt::RunRecord& run);
};

/// One deprecated environment knob that was found set and applied.
struct EnvOverride {
  std::string var;         ///< e.g. "KSIM_NO_SUPERBLOCKS"
  std::string replacement; ///< the flag/field superseding it
};

/// Applies the deprecated KSIM_* environment knobs to `cfg` and returns the
/// ones that were set, so CLI entry points can warn:
///   KSIM_NO_SUPERBLOCKS  -> use_superblocks = false  (--no-superblocks)
///   KSIM_NO_DECODE_CACHE -> use_decode_cache = false (--no-decode-cache)
///   KSIM_NO_PREDICTION   -> use_prediction = false   (--no-prediction)
///   KSIM_NO_JIT          -> use_jit = false          (--no-jit)
///   KSIM_SEED=<n>        -> seed = n                 (--seed)
std::vector<EnvOverride> apply_env_overrides(RunConfig& cfg);

/// Writes the standard one-line deprecation warning per override to stderr.
void warn_env_overrides(const std::vector<EnvOverride>& overrides);

/// Writes the standard `[ksim] warning: X is deprecated; use Y instead` line
/// for any deprecated spelling (env knob, flat manifest key, legacy flag),
/// at most once per process per `what` — sweeps parse many manifests and
/// embedders construct many configs; repeating the same line is pure noise.
void warn_deprecated(const std::string& what, const std::string& replacement);

} // namespace ksim::api
