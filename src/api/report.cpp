#include "api/report.h"

#include "support/json.h"
#include "support/strings.h"

namespace ksim::api {

std::string render_report_json(const Report& r) {
  support::JsonWriter w;
  w.begin_object();
  w.field("schema", "ksim.run");
  w.field("schema_version", kSchemaVersion);
  w.field("target", r.target);
  w.field("model", r.model);
  w.field("stop_reason", r.stop_reason);
  w.field("exit_code", r.exit_code);
  w.field("instructions", r.stats.instructions);
  w.field("operations", r.stats.operations);
  w.field("decodes", r.stats.decodes);
  w.field("cache_lookups", r.stats.cache_lookups);
  w.field("pred_hits", r.stats.pred_hits);
  w.field("isa_switches", r.stats.isa_switches);
  w.field("libc_calls", r.stats.libc_calls);
  w.field("blocks_formed", r.stats.blocks_formed);
  w.field("block_dispatches", r.stats.block_dispatches);
  w.field("block_chain_hits", r.stats.block_chain_hits);
  w.field("jit_blocks_translated", r.stats.jit_blocks_translated);
  w.field("jit_dispatches", r.stats.jit_dispatches);
  w.field("jit_side_exits", r.stats.jit_side_exits);
  w.field("jit_bailouts", r.stats.jit_bailouts);
  w.field("jit_cache_flushes", r.stats.jit_cache_flushes);
  w.field("output_bytes", r.output_bytes);
  if (r.has_cycles) {
    w.field("cycles", r.cycles);
    w.field("ops_per_cycle", r.ops_per_cycle);
  }
  if (r.has_predictor) {
    w.begin_object("branch_predictor");
    w.field("kind", r.bp_kind);
    w.field("branches", r.bp_branches);
    w.field("mispredictions", r.bp_mispredictions);
    w.field("penalty", r.bp_penalty);
    w.end();
  }
  w.end();
  return w.str();
}

std::string render_report_text(const Report& r) {
  std::string out;
  out += strf("[ksim] %s after %llu instructions (%llu operations)\n",
              r.stop_reason.c_str(),
              static_cast<unsigned long long>(r.stats.instructions),
              static_cast<unsigned long long>(r.stats.operations));
  if (r.superblocks)
    out += strf("[ksim] superblocks: %llu formed, %llu dispatches"
                " (%.1f%% chained), %.2f%% lookups avoided\n",
                static_cast<unsigned long long>(r.stats.blocks_formed),
                static_cast<unsigned long long>(r.stats.block_dispatches),
                100.0 * r.stats.block_chain_avoidance(),
                100.0 * r.stats.lookup_avoidance());
  if (r.jit)
    out += strf("[ksim] jit: %llu blocks translated, %llu dispatches"
                " (%llu side exits, %llu bailouts, %llu cache flushes)\n",
                static_cast<unsigned long long>(r.stats.jit_blocks_translated),
                static_cast<unsigned long long>(r.stats.jit_dispatches),
                static_cast<unsigned long long>(r.stats.jit_side_exits),
                static_cast<unsigned long long>(r.stats.jit_bailouts),
                static_cast<unsigned long long>(r.stats.jit_cache_flushes));
  if (r.rtl_reference)
    out += strf("[ksim] RTL reference: %llu cycles\n",
                static_cast<unsigned long long>(r.cycles));
  else if (r.has_cycles)
    out += strf("[ksim] %s cycles: %llu (%.3f ops/cycle)\n",
                r.model_display.c_str(),
                static_cast<unsigned long long>(r.cycles), r.ops_per_cycle);
  if (r.has_predictor)
    out += strf("[ksim] branch predictor %s: %llu branches, %llu mispredicts"
                " (%.2f%%), penalty %d\n",
                r.bp_kind.c_str(),
                static_cast<unsigned long long>(r.bp_branches),
                static_cast<unsigned long long>(r.bp_mispredictions),
                r.bp_branches == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(r.bp_mispredictions) /
                          static_cast<double>(r.bp_branches),
                r.bp_penalty);
  return out;
}

} // namespace ksim::api
